// Benchmarks regenerating every figure of the paper's evaluation (§6.2)
// plus the ablations DESIGN.md calls out. Each benchmark runs the
// corresponding experiment and reports the figure's headline numbers as
// custom metrics, so `go test -bench=. -benchmem` reproduces the paper's
// evaluation end to end. Durations are kept short per iteration; the
// shapes are what is under test (see EXPERIMENTS.md for the full-scale
// paper-vs-measured record).
package tcb_test

import (
	"testing"

	"tcb/internal/experiments"
)

// benchOpt keeps per-iteration experiment cost bounded.
func benchOpt() experiments.Options { return experiments.Options{Duration: 3, Seed: 1} }

// reportSaturated reports each series' value at the final (saturated) x.
func reportSaturated(b *testing.B, fig, unit string, run func() (*experiments.Figure, error)) {
	b.Helper()
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		f, err := run()
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	for _, s := range last.Series {
		b.ReportMetric(s.Y[len(s.Y)-1], s.Name+"_"+unit)
	}
}

// BenchmarkFig09UtilityVsRate regenerates Fig. 9: total utility vs arrival
// rate for DAS-{TNB,TTB,TCB}; reported metrics are the saturated (1500
// req/s) utilities. Paper: TCB 2.20×/1.29× over TNB/TTB after saturation.
func BenchmarkFig09UtilityVsRate(b *testing.B) {
	reportSaturated(b, "fig09", "utility", func() (*experiments.Figure, error) {
		return experiments.Fig09(benchOpt())
	})
}

// BenchmarkFig10ThroughputVsRate regenerates Fig. 10: serving throughput vs
// arrival rate. Paper: maximum gaps 2.22× (TNB) and 1.48× (TTB).
func BenchmarkFig10ThroughputVsRate(b *testing.B) {
	reportSaturated(b, "fig10", "resp_per_s", func() (*experiments.Figure, error) {
		return experiments.Fig10(benchOpt())
	})
}

// BenchmarkFig11FCFSVar20 regenerates Fig. 11: throughput under FCFS with
// length variance 20. Paper: TCB 3.33×/1.52× over TNB/TTB at maximum.
func BenchmarkFig11FCFSVar20(b *testing.B) {
	reportSaturated(b, "fig11", "resp_per_s", func() (*experiments.Figure, error) {
		return experiments.Fig11(benchOpt())
	})
}

// BenchmarkFig12FCFSVar100 regenerates Fig. 12: variance 100, where the
// TCB:TTB gap widens. Paper: gap grows to 1.72×.
func BenchmarkFig12FCFSVar100(b *testing.B) {
	reportSaturated(b, "fig12", "resp_per_s", func() (*experiments.Figure, error) {
		return experiments.Fig12(benchOpt())
	})
}

// slottedBench measures Fig. 13/14-style speedups on the real engine at a
// reduced model scale (full scale is cmd/tcb-bench's job) and reports the
// best speedup across slot counts.
func slottedBench(b *testing.B, rows int) {
	opt := experiments.DefaultSlottedOptions(rows)
	opt.RowLen = 200
	opt.ReqLen = 20
	opt.SlotCounts = []int{1, 2, 5, 10}
	opt.Reps = 1
	var best float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.SlottedSpeedup(opt)
		if err != nil {
			b.Fatal(err)
		}
		best = 1.0
		for _, s := range fig.Series {
			for _, y := range s.Y {
				if y > best {
					best = y
				}
			}
		}
	}
	b.ReportMetric(best, "max_speedup")
}

// BenchmarkFig13SlottedB10 regenerates Fig. 13 (batch size 10). Paper: up
// to ~1.18× from slotting.
func BenchmarkFig13SlottedB10(b *testing.B) { slottedBench(b, 10) }

// BenchmarkFig14SlottedB32 regenerates Fig. 14 (batch size 32). Paper: up
// to 2.31× at 7 slots.
func BenchmarkFig14SlottedB32(b *testing.B) { slottedBench(b, 32) }

// reportMean reports each series' mean across the sweep.
func reportMean(b *testing.B, run func() (*experiments.Figure, error)) {
	b.Helper()
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		f, err := run()
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	for _, s := range last.Series {
		var sum float64
		for _, y := range s.Y {
			sum += y
		}
		b.ReportMetric(sum/float64(len(s.Y)), s.Name+"_utility")
	}
}

// BenchmarkFig15aBatchSize regenerates Fig. 15a: utility vs batch size for
// DAS/SJF/FCFS/DEF on the TCB engine. Paper: DAS best at all batch sizes.
func BenchmarkFig15aBatchSize(b *testing.B) {
	reportMean(b, func() (*experiments.Figure, error) { return experiments.Fig15a(benchOpt()) })
}

// BenchmarkFig15bVariance regenerates Fig. 15b: utility vs length variance
// at batch size 16.
func BenchmarkFig15bVariance(b *testing.B) {
	reportMean(b, func() (*experiments.Figure, error) { return experiments.Fig15b(benchOpt()) })
}

// BenchmarkFig15cRowLength regenerates Fig. 15c: utility vs batch row
// length. Paper: DAS ≈ 40% above SJF.
func BenchmarkFig15cRowLength(b *testing.B) {
	reportMean(b, func() (*experiments.Figure, error) { return experiments.Fig15c(benchOpt()) })
}

// BenchmarkFig16DASOverhead regenerates Fig. 16: DAS runtime as a
// percentage of batch inference time, at 100–400 req/s. Paper: ≤ 2%.
func BenchmarkFig16DASOverhead(b *testing.B) {
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig16(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	v, err := last.Get("DAS/batch (%)", len(last.X)-1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(v, "overhead_pct_at_400rps")
}

// BenchmarkAblationEtaSweep sweeps DAS's η (q = 1−η).
func BenchmarkAblationEtaSweep(b *testing.B) {
	reportMean(b, func() (*experiments.Figure, error) { return experiments.AblationEta(benchOpt()) })
}

// BenchmarkAblationSlotPolicy compares Algorithm 2's adaptive slot size
// against fixed sizes.
func BenchmarkAblationSlotPolicy(b *testing.B) {
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		f, err := experiments.AblationSlotPolicy(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	adaptive, err := last.Get("utility", 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(adaptive, "adaptive_utility")
}

// BenchmarkAblationEarlyCleaning measures §4.2.2's byte-step savings on
// the real engine.
func BenchmarkAblationEarlyCleaning(b *testing.B) {
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		f, err := experiments.AblationEarlyCleaning(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	i := len(last.X) - 1
	whole, _ := last.Get("whole-batch", i)
	early, _ := last.Get("early-slot", i)
	if whole > 0 {
		b.ReportMetric(early/whole, "bytesteps_ratio")
	}
}

// BenchmarkAblationPacking compares priority first-fit packing with FFD.
func BenchmarkAblationPacking(b *testing.B) {
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		f, err := experiments.AblationPacking()
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	i := len(last.X) - 1
	ff, _ := last.Get("first-fit", i)
	ffd, _ := last.Get("ffd", i)
	b.ReportMetric(ff, "firstfit_utilization")
	b.ReportMetric(ffd, "ffd_utilization")
}

// BenchmarkExtOverlap measures §4.2.2's end-to-end effect in the simulator
// (busy-ms per request with and without early-cleaning overlap).
func BenchmarkExtOverlap(b *testing.B) {
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		f, err := experiments.ExtOverlap(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	i := len(last.X) - 1
	plain, _ := last.Get("slotted", i)
	overlap, _ := last.Get("slotted+overlap", i)
	b.ReportMetric(plain, "busy_ms_per_req")
	b.ReportMetric(overlap, "busy_ms_per_req_overlap")
}

// BenchmarkExtBimodal runs the bimodal-workload robustness sweep.
func BenchmarkExtBimodal(b *testing.B) {
	reportSaturated(b, "ext-bimodal", "resp_per_s", func() (*experiments.Figure, error) {
		return experiments.ExtBimodal(benchOpt())
	})
}

// BenchmarkExtEfficiency certifies DAS against the fractional upper bound.
func BenchmarkExtEfficiency(b *testing.B) {
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		f, err := experiments.ExtEfficiency(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	v, _ := last.Get("DAS/UB", len(last.X)-1)
	b.ReportMetric(v, "efficiency_ratio")
}

// BenchmarkExtScaling measures multi-device scale-out.
func BenchmarkExtScaling(b *testing.B) {
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		f, err := experiments.ExtScaling(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	one, _ := last.Get("throughput", 0)
	eight, _ := last.Get("throughput", len(last.X)-1)
	if one > 0 {
		b.ReportMetric(eight/one, "speedup_8_devices")
	}
}

// BenchmarkExtLatency reports p95 latency per scheme at 400 req/s.
func BenchmarkExtLatency(b *testing.B) {
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		f, err := experiments.ExtLatency(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	for _, s := range last.Series {
		b.ReportMetric(s.Y[1], s.Name+"_p95_s")
	}
}

// BenchmarkExtWeighted reports DAS's premium-served fraction under SLA
// tiers.
func BenchmarkExtWeighted(b *testing.B) {
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		f, err := experiments.ExtWeighted(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	v, _ := last.Get("DAS", 1)
	b.ReportMetric(v, "das_premium_served_frac")
}

// BenchmarkExtFusedDecode runs the fused-vs-per-row cached decode A/B on the
// real engine and reports the speedup at the largest batch size.
func BenchmarkExtFusedDecode(b *testing.B) {
	var last *experiments.Figure
	for i := 0; i < b.N; i++ {
		f, err := experiments.ExtFusedDecode(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	v, _ := last.Get("speedup", len(last.X)-1)
	b.ReportMetric(v, "fused_speedup_b8")
}
