// Package tcb is a from-scratch Go reproduction of "TCB: Accelerating
// Transformer Inference Services with Request Concatenation" (Fu, Chen,
// Li, Zeng — ICPP 2022): a transformer inference serving system built
// around two coupled ideas —
//
//   - ConcatBatching: concatenate several variable-length requests in one
//     batch row, with separate per-request positional encoding and a
//     block-diagonal attention mask so results are exactly what each
//     request would get alone; the slotted refinement computes attention
//     per slot and enables early GPU-memory cleaning; and
//   - DAS: an online deadline-aware scheduler with a provable
//     ηq/(ηq+1) competitive ratio that decides which requests join each
//     batch.
//
// This package is the public façade: it re-exports the stable surface of
// the internal packages. Three layers are exposed:
//
//   - the model/engine layer (NewModel, NewEngine) — real float32
//     transformer inference with all three batching schemes;
//   - the serving layer (NewServer) — a live goroutine pipeline with
//     deadlines, pluggable scheduling and batching; and
//   - the evaluation layer (GenerateWorkload, Simulate, RunExperiments) —
//     the discrete-event simulator and the paper's figures.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-vs-measured record.
package tcb

import (
	"io"
	"net/http"

	"tcb/internal/batch"
	"tcb/internal/cost"
	"tcb/internal/engine"
	"tcb/internal/experiments"
	"tcb/internal/model"
	"tcb/internal/sched"
	"tcb/internal/serve"
	"tcb/internal/sim"
	"tcb/internal/train"
	"tcb/internal/vocab"
	"tcb/internal/workload"
)

// Model layer.
type (
	// ModelConfig describes the Seq2Seq transformer (§6.1's shape by
	// default; every dimension is configurable).
	ModelConfig = model.Config
	// Model is a transformer with ConcatBatching-aware inference.
	Model = model.Model
	// Engine executes batch layouts on a Model.
	Engine = engine.Engine
	// EngineResult is the per-request output of one batch execution.
	EngineResult = engine.Result
	// EngineReport summarizes one batch execution (results, wall-clock,
	// memory-cleaning accounting).
	EngineReport = engine.Report
)

// PaperModelConfig returns the §6.1 evaluation model: 3 encoders, 3
// decoders, d_model 3072, 8 heads, max 400 words.
func PaperModelConfig(vocabSize int) ModelConfig { return model.PaperConfig(vocabSize) }

// SmallModelConfig returns a laptop-scale configuration with the same
// architecture.
func SmallModelConfig(vocabSize int) ModelConfig { return model.TestConfig(vocabSize) }

// NewModel builds a model with deterministic random weights.
func NewModel(cfg ModelConfig, seed uint64) *Model { return model.New(cfg, seed) }

// NewEngine wraps a model in an inference engine generating at most maxNew
// tokens per request.
func NewEngine(m *Model, maxNew int) *Engine { return engine.New(m, maxNew) }

// Batching layer.
type (
	// Scheme selects a batching scheme: Naive (TNB), Turbo (TTB), Concat
	// (pure ConcatBatching) or SlottedConcat.
	Scheme = batch.Scheme
	// Item is one request as the batcher sees it.
	Item = batch.Item
	// Batch is a packed layout ready for the engine.
	Batch = batch.Batch
)

// Batching schemes (Fig. 1 of the paper plus §4.2's slotted variant).
const (
	Naive         = batch.Naive
	Turbo         = batch.Turbo
	Concat        = batch.Concat
	SlottedConcat = batch.SlottedConcat
)

// PackNaive lays items out one per row, padded to the longest (TNB).
func PackNaive(items []Item, maxRows, maxLen int) (*Batch, []Item) {
	return batch.PackNaive(items, maxRows, maxLen)
}

// PackConcat concatenates items into rows of capacity rowLen (pure TCB).
func PackConcat(items []Item, maxRows, rowLen int) (*Batch, []Item) {
	return batch.PackConcat(items, maxRows, rowLen)
}

// PackSlotted concatenates items within fixed-size slots (slotted TCB).
func PackSlotted(items []Item, maxRows, rowLen, slotSize int) (*Batch, []Item) {
	return batch.PackSlotted(items, maxRows, rowLen, slotSize)
}

// Scheduling layer.
type (
	// Request is one inference request with arrival, deadline and length.
	Request = sched.Request
	// Scheduler selects requests for each batch slot.
	Scheduler = sched.Scheduler
	// Decision is a scheduler's per-row assignment.
	Decision = sched.Decision
	// DAS is Algorithm 1 with tunable η and q.
	DAS = sched.DAS
	// SlottedDAS is Algorithm 2.
	SlottedDAS = sched.SlottedDAS
	// FCFS, SJF and DEF are the baseline schedulers of §6.2.4.
	FCFS = sched.FCFS
	SJF  = sched.SJF
	DEF  = sched.DEF
)

// NewDAS returns the paper's deadline-aware scheduler with η = q = ½
// (the ⅕-competitive configuration of Theorem 5.1).
func NewDAS() *DAS { return sched.NewDAS() }

// NewSlottedDAS returns Algorithm 2 with the default DAS parameters.
func NewSlottedDAS() *SlottedDAS { return sched.NewSlottedDAS() }

// Serving layer.
type (
	// ServerConfig configures the live server.
	ServerConfig = serve.Config
	// Server is a running TCB serving instance.
	Server = serve.Server
	// Response is the outcome of one submitted request.
	Response = serve.Response
)

// Serving errors.
var (
	ErrDeadlineExceeded = serve.ErrDeadlineExceeded
	ErrServerClosed     = serve.ErrServerClosed
	ErrQueueFull        = serve.ErrQueueFull
)

// NewServer validates cfg and returns an unstarted server.
func NewServer(cfg ServerConfig) (*Server, error) { return serve.New(cfg) }

// ServerStats is a point-in-time snapshot of server counters.
type ServerStats = serve.Stats

// EngineRunner abstracts the engine for the server (fault injection,
// alternative backends).
type EngineRunner = serve.Runner

// NewHTTPHandler exposes a server over HTTP (POST /v1/infer,
// GET /v1/stats, GET /healthz).
func NewHTTPHandler(srv *Server) http.Handler { return serve.NewHTTPHandler(srv) }

// Training layer (an extension beyond the paper, which serves pre-trained
// models): manual backprop through the full stack with Adam, verified by
// numerical gradient checks.
type (
	// TrainExample is one supervised (source, target) pair.
	TrainExample = train.Example
	// TrainConfig drives the Fit loop.
	TrainConfig = train.Config
)

// Fit trains the model on examples with teacher forcing + Adam and returns
// the per-step losses.
func Fit(m *Model, examples []TrainExample, cfg TrainConfig) ([]float64, error) {
	return train.Fit(m, examples, cfg)
}

// SaveModel / LoadModel persist checkpoints (config + weights).
func SaveModel(m *Model, path string) error { return m.SaveFile(path) }

// LoadModel reads a checkpoint written by SaveModel.
func LoadModel(path string) (*Model, error) { return model.LoadFile(path) }

// Vocabulary helpers for the examples.
type Vocab = vocab.Vocab

// Reserved token ids.
const (
	PadID       = vocab.PadID
	BosID       = vocab.BosID
	EosID       = vocab.EosID
	UnkID       = vocab.UnkID
	FirstWordID = vocab.FirstWordID
)

// BuildVocab constructs a word-level vocabulary over the corpus lines.
func BuildVocab(corpus []string) *Vocab { return vocab.Build(corpus) }

// Evaluation layer.
type (
	// CostParams are the constants of the simulated batch-time model.
	CostParams = cost.Params
	// WorkloadSpec describes a synthetic arrival/length/deadline process.
	WorkloadSpec = workload.Spec
	// SimSystem is one (scheduler, scheme) serving configuration.
	SimSystem = sim.System
	// SimMetrics aggregates one simulation run.
	SimMetrics = sim.Metrics
	// ExperimentOptions scales the paper-figure runners.
	ExperimentOptions = experiments.Options
)

// DefaultCostParams derives cost-model constants for a model shape on a
// simulated V100-class device.
func DefaultCostParams(cfg ModelConfig) CostParams { return cost.DefaultParams(cfg) }

// CalibratedCostParams returns the constants calibrated to reproduce the
// shapes of the paper's V100 serving measurements (see
// internal/experiments.V100Params).
func CalibratedCostParams() CostParams { return experiments.V100Params() }

// PaperWorkload returns §6.2.1's workload spec (lengths 3–100, mean 20,
// variance 20, Poisson arrivals) at the given rate.
func PaperWorkload(rate, duration float64, seed uint64) WorkloadSpec {
	return workload.PaperSpec(rate, duration, seed)
}

// GenerateWorkload produces a deterministic request trace.
func GenerateWorkload(spec WorkloadSpec) ([]*Request, error) { return workload.Generate(spec) }

// Length distributions for synthetic workloads beyond the paper's
// truncated normal (§1 motivates highly variable corpora).
type (
	LengthDist       = workload.LengthDist
	NormalLengths    = workload.NormalLengths
	BimodalLengths   = workload.BimodalLengths
	LogNormalLengths = workload.LogNormalLengths
)

// GenerateWorkloadWithDist is GenerateWorkload with an arbitrary length
// distribution.
func GenerateWorkloadWithDist(spec WorkloadSpec, dist LengthDist) ([]*Request, error) {
	return workload.GenerateWithDist(spec, dist)
}

// SaveWorkload / LoadWorkload persist traces as JSON for replay.
func SaveWorkload(path string, spec *WorkloadSpec, reqs []*Request) error {
	return workload.SaveFile(path, spec, reqs)
}

// LoadWorkload reads a JSON trace written by SaveWorkload.
func LoadWorkload(path string) (*WorkloadSpec, []*Request, error) {
	return workload.LoadFile(path)
}

// Simulate replays a trace against a serving configuration.
func Simulate(sys SimSystem, trace []*Request) (*SimMetrics, error) { return sim.Run(sys, trace) }

// RunExperiments regenerates the named paper figures (all when ids is
// empty), rendering text tables to w. See cmd/tcb-bench.
func RunExperiments(w io.Writer, opt ExperimentOptions, ids ...string) error {
	return experiments.RunAndRender(w, opt, ids...)
}

// RunSlottedSpeedup measures the Fig. 13/14 slotted-attention speedup on
// the real engine at the given batch shape and renders the table to w.
func RunSlottedSpeedup(w io.Writer, batchRows, rowLen int) error {
	opt := experiments.DefaultSlottedOptions(batchRows)
	opt.RowLen = rowLen
	if rowLen%opt.ReqLen != 0 {
		opt.ReqLen = rowLen / 20
		if opt.ReqLen < 1 {
			opt.ReqLen = 1
		}
	}
	fig, err := experiments.SlottedSpeedup(opt)
	if err != nil {
		return err
	}
	return fig.Render(w)
}
