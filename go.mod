module tcb

go 1.22
