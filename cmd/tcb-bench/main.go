// Command tcb-bench regenerates the paper's evaluation figures (and this
// repository's ablations) as text tables.
//
// Usage:
//
//	tcb-bench [-duration seconds] [-seed n] [-json] [-list] [id ...]
//
// With no ids it runs everything: fig09–fig16 plus the ablations. Figures
// 13–14 run the real Go engine and dominate the runtime.
//
// -cpuprofile and -memprofile write pprof profiles of the run (the usual
// `go tool pprof` inputs); -fusedecode=false forces real-engine decode
// experiments onto the per-row cached decoder for A/B against the fused
// batch-wide path; -pipeline=false does the same for the three-stage serve
// pipeline in ext-pipeline.
//
// When ext-pipeline runs under -json its figure (throughputs, speedup,
// stage-utilization notes) is also written to BENCH_pipeline.json for CI
// consumption, and -pipeline-gate fails the run if the measured pipelined
// speedup drops below the gate on a multi-core machine (on GOMAXPROCS=1
// there is nothing to overlap onto, so the gate is skipped with a warning).
//
// ext-refill gets the same treatment: under -json its figure lands in
// BENCH_refill.json, -refill=false forces the A/B onto the no-refill
// escape hatch, and -refill-gate fails the run if the sweep's best
// refill/no-refill speedup drops below the gate. Unlike the pipeline gate
// this one is NOT skipped on single-core runners — refill's win is
// utilization (fewer total decode steps), not parallelism, so it must hold
// on one core too.
//
// ext-prefix likewise: under -json its figure lands in BENCH_prefix.json,
// -prefix=false forces the A/B onto the no-cache escape hatch, and
// -prefix-gate fails the run unless the cached server holds the gate at 0%
// reuse (an idle cache must not slow bystanders) and 1.2× the gate at the
// top reuse fraction (a busy cache must win). Enforced single-core too:
// the win is skipped encode work, not parallelism.
//
// -kernel selects the float32 GEMM kernel (wide default, scalar reference;
// int8 selects wide and implies -quantize), and -quantize routes every
// real-engine experiment's projections through the int8 per-channel
// quantized GEMM. ext-quantized ignores both — it always measures float32
// vs int8 paired — writes BENCH_quantized.json under -json, and
// -quantized-gate fails the run if its best int8/float32 speedup drops
// below the gate (also enforced single-core: the int8 win is per-core).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"tcb/internal/experiments"
	"tcb/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run holds the whole program so that profile-flushing defers execute on
// every exit path (os.Exit would skip them).
func run() error {
	duration := flag.Float64("duration", 5, "trace length in simulated seconds per data point")
	seed := flag.Uint64("seed", 1, "workload seed")
	seeds := flag.Int("seeds", 1, "seeds to average per simulated data point")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON line per figure instead of text tables")
	csvDir := flag.String("csv", "", "also write each figure as <dir>/<id>.csv")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	fuseDecode := flag.Bool("fusedecode", true, "decode through the fused batch-wide path (false = per-row escape hatch)")
	pipeline := flag.Bool("pipeline", true, "serve ext-pipeline through the three-stage pipeline (false = serial escape hatch)")
	pipelineGate := flag.Float64("pipeline-gate", 0, "fail if ext-pipeline's minimum speedup is below this (0 = off; skipped on a single-core runner)")
	refill := flag.Bool("refill", true, "refill freed batch slots mid-flight in ext-refill (false = batch-at-a-time escape hatch)")
	refillGate := flag.Float64("refill-gate", 0, "fail if ext-refill's best speedup across the sweep is below this (0 = off)")
	prefix := flag.Bool("prefix", true, "serve ext-prefix through the prefix-sharing KV cache (false = no-cache escape hatch)")
	prefixGate := flag.Float64("prefix-gate", 0, "fail if ext-prefix's speedup is below this at 0% reuse or below 1.2× this at the top reuse fraction (0 = off)")
	clusterGate := flag.Float64("cluster-gate", 0, "fail if ext-cluster's 2-replica speedup over a single replica is below this (0 = off)")
	kernel := flag.String("kernel", "wide", "float32 GEMM kernel: scalar, wide, or int8 (wide float32 + quantized projections)")
	quantize := flag.Bool("quantize", false, "route real-engine experiments' projections through the int8 quantized GEMM")
	quantizedGate := flag.Float64("quantized-gate", 0, "fail if ext-quantized's best int8/float32 speedup across the sweep is below this (0 = off)")
	fairnessGate := flag.Float64("fairness-gate", 0, "fail if ext-fairness's flooded well-behaved goodput ratio or Jain index is below this (0 = off)")
	flag.Parse()

	k, err := tensor.ParseKernel(*kernel)
	if err != nil {
		return err
	}
	tensor.SetKernel(k)
	if *kernel == "int8" {
		*quantize = true
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	opt := experiments.Options{
		Duration: *duration, Seed: *seed, Seeds: *seeds,
		DisableFusedDecode: !*fuseDecode,
		DisablePipeline:    !*pipeline,
		DisableRefill:      !*refill,
		DisablePrefix:      !*prefix,
		Quantize:           *quantize,
	}
	if *list {
		for _, r := range experiments.All(opt) {
			fmt.Println(r.ID)
		}
		return nil
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	want := map[string]bool{}
	for _, id := range flag.Args() {
		want[id] = true
	}
	for _, r := range experiments.All(opt) {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		fig, err := r.Run()
		if err != nil {
			return err
		}
		if *jsonOut {
			if err := fig.WriteJSON(os.Stdout); err != nil {
				return err
			}
		} else if err := fig.Render(os.Stdout); err != nil {
			return err
		}
		if r.ID == "ext-pipeline" {
			if *jsonOut {
				if err := writeJSONFile("BENCH_pipeline.json", fig); err != nil {
					return err
				}
			}
			if err := checkPipelineGate(fig, *pipelineGate, !*pipeline); err != nil {
				return err
			}
		}
		if r.ID == "ext-refill" {
			if *jsonOut {
				if err := writeJSONFile("BENCH_refill.json", fig); err != nil {
					return err
				}
			}
			if err := checkRefillGate(fig, *refillGate, !*refill); err != nil {
				return err
			}
		}
		if r.ID == "ext-prefix" {
			if *jsonOut {
				if err := writeJSONFile("BENCH_prefix.json", fig); err != nil {
					return err
				}
			}
			if err := checkPrefixGate(fig, *prefixGate, !*prefix); err != nil {
				return err
			}
		}
		if r.ID == "ext-cluster" {
			if *jsonOut {
				if err := writeJSONFile("BENCH_cluster.json", fig); err != nil {
					return err
				}
			}
			if err := checkClusterGate(fig, *clusterGate); err != nil {
				return err
			}
		}
		if r.ID == "ext-quantized" {
			if *jsonOut {
				if err := writeJSONFile("BENCH_quantized.json", fig); err != nil {
					return err
				}
			}
			if err := checkQuantizedGate(fig, *quantizedGate); err != nil {
				return err
			}
		}
		if r.ID == "ext-fairness" {
			if *jsonOut {
				if err := writeJSONFile("BENCH_fairness.json", fig); err != nil {
					return err
				}
			}
			if err := checkFairnessGate(fig, *fairnessGate); err != nil {
				return err
			}
		}
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, r.ID+".csv"))
			if err != nil {
				return err
			}
			if err := fig.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			f.Close()
		}
	}
	return nil
}

// writeJSONFile writes one figure's JSON to a named file for CI pickup.
func writeJSONFile(name string, fig *experiments.Figure) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := fig.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// checkPipelineGate enforces -pipeline-gate against ext-pipeline's speedup
// series: the A/B smoke CI runs to catch a pipeline that slows serving
// down. The gate needs a second core to be meaningful — with GOMAXPROCS=1
// the three stages time-slice one core and the expected speedup is 1×.
func checkPipelineGate(fig *experiments.Figure, gate float64, disabled bool) error {
	if gate <= 0 {
		return nil
	}
	if disabled {
		fmt.Fprintln(os.Stderr, "tcb-bench: -pipeline-gate skipped: pipeline disabled (-pipeline=false)")
		return nil
	}
	if runtime.GOMAXPROCS(0) < 2 {
		fmt.Fprintln(os.Stderr, "tcb-bench: -pipeline-gate skipped: single-core runner has no overlap to win")
		return nil
	}
	for i := range fig.X {
		s, err := fig.Get("speedup", i)
		if err != nil {
			return err
		}
		if s < gate {
			return fmt.Errorf("tcb-bench: pipelined/serial speedup %.3f at %s=%g below gate %.3f",
				s, fig.XLabel, fig.X[i], gate)
		}
	}
	return nil
}

// checkRefillGate enforces -refill-gate against ext-refill's speedup
// series: the CI A/B gate that continuous batching must not slow serving
// down. The gate compares the sweep's best point — a real refill regression
// drags every batch size down together, while a single point grazing the
// line is shared-runner noise, not a regression. No single-core skip —
// refill's win is finishing the same token work in fewer decode steps,
// which holds regardless of core count.
func checkRefillGate(fig *experiments.Figure, gate float64, disabled bool) error {
	if gate <= 0 {
		return nil
	}
	if disabled {
		fmt.Fprintln(os.Stderr, "tcb-bench: -refill-gate skipped: refill disabled (-refill=false)")
		return nil
	}
	best, bestX := 0.0, 0.0
	for i := range fig.X {
		s, err := fig.Get("speedup", i)
		if err != nil {
			return err
		}
		if s > best {
			best, bestX = s, fig.X[i]
		}
	}
	if best < gate {
		return fmt.Errorf("tcb-bench: best refill/no-refill speedup %.3f (at %s=%g) below gate %.3f",
			best, fig.XLabel, bestX, gate)
	}
	fmt.Fprintf(os.Stderr, "tcb-bench: refill gate ok: best speedup %.3f at %s=%g (gate %.3f)\n",
		best, fig.XLabel, bestX, gate)
	return nil
}

// checkPrefixGate enforces -prefix-gate against ext-prefix's speedup
// series at its two ends. At 0% reuse nothing is ever resident, so the
// cached server must serve at least `gate` × the uncached one — an idle
// cache that slows bystander traffic is a regression. At the sweep's top
// reuse fraction the cache must deliver a real win: at least 1.2 × gate.
// Like the refill gate this is enforced on single-core runners too — the
// win is skipped encode work, not parallelism.
func checkPrefixGate(fig *experiments.Figure, gate float64, disabled bool) error {
	if gate <= 0 {
		return nil
	}
	if disabled {
		fmt.Fprintln(os.Stderr, "tcb-bench: -prefix-gate skipped: prefix cache disabled (-prefix=false)")
		return nil
	}
	if len(fig.X) == 0 {
		return fmt.Errorf("tcb-bench: ext-prefix produced no points to gate")
	}
	topIdx := 0
	for i := range fig.X {
		if fig.X[i] > fig.X[topIdx] {
			topIdx = i
		}
	}
	for i := range fig.X {
		if fig.X[i] == 0 {
			// At 0% reuse both sides do identical work, so a single pair's
			// ratio is pure runner noise around 1; the best pair isolates a
			// real bystander regression (which drags every pair down).
			s, err := fig.Get("speedup-best", i)
			if err != nil {
				return err
			}
			// 5% floor: the two sides are statistically identical here, so
			// even the best of three pairs sits within runner noise of 1.
			// A real bystander cost shifts every pair's mean and still trips.
			if s < 0.95*gate {
				return fmt.Errorf("tcb-bench: prefix-cache best speedup %.3f at 0%% reuse below gate %.3f (idle cache slows serving)", s, 0.95*gate)
			}
		}
		if i == topIdx {
			s, err := fig.Get("speedup", i)
			if err != nil {
				return err
			}
			if s < 1.2*gate {
				return fmt.Errorf("tcb-bench: prefix-cache speedup %.3f at reuse=%g below gate %.3f (cache is not winning)",
					s, fig.X[i], 1.2*gate)
			}
		}
	}
	top, _ := fig.Get("speedup", topIdx)
	fmt.Fprintf(os.Stderr, "tcb-bench: prefix gate ok: top-reuse speedup %.3f at reuse=%g (gate %.3f / %.3f)\n",
		top, fig.X[topIdx], gate, 1.2*gate)
	return nil
}

// checkClusterGate enforces -cluster-gate against ext-cluster's speedup
// series at the N=2 point: a two-replica cluster behind least-loaded
// routing must never serve less than a single replica at a saturating
// rate. The figure is simulated (no wall-clock noise, no core-count
// dependence), so there is no skip condition — a miss is a real routing
// or failover regression.
func checkClusterGate(fig *experiments.Figure, gate float64) error {
	if gate <= 0 {
		return nil
	}
	for i := range fig.X {
		if fig.X[i] != 2 {
			continue
		}
		s, err := fig.Get("speedup", i)
		if err != nil {
			return err
		}
		if s < gate {
			return fmt.Errorf("tcb-bench: 2-replica cluster speedup %.3f below gate %.3f", s, gate)
		}
		fmt.Fprintf(os.Stderr, "tcb-bench: cluster gate ok: 2-replica speedup %.3f (gate %.3f)\n", s, gate)
		return nil
	}
	return fmt.Errorf("tcb-bench: ext-cluster has no replicas=2 point to gate")
}

// checkFairnessGate enforces -fairness-gate against ext-fairness's flooded
// fair scenario (x=2): the well-behaved tenants must keep at least the gate
// fraction of their no-flood goodput, and split it with a Jain index at or
// above the gate. The figure is simulated (deterministic, no wall-clock
// noise), so a miss is a real isolation regression, never runner jitter.
func checkFairnessGate(fig *experiments.Figure, gate float64) error {
	if gate <= 0 {
		return nil
	}
	for i := range fig.X {
		if fig.X[i] != 2 {
			continue
		}
		ratio, err := fig.Get("ratio", i)
		if err != nil {
			return err
		}
		jain, err := fig.Get("jain-good", i)
		if err != nil {
			return err
		}
		if ratio < gate {
			return fmt.Errorf("tcb-bench: flooded well-behaved goodput ratio %.3f below gate %.3f", ratio, gate)
		}
		if jain < gate {
			return fmt.Errorf("tcb-bench: flooded well-behaved Jain index %.3f below gate %.3f", jain, gate)
		}
		fmt.Fprintf(os.Stderr, "tcb-bench: fairness gate ok: ratio %.3f, jain %.3f (gate %.3f)\n",
			ratio, jain, gate)
		return nil
	}
	return fmt.Errorf("tcb-bench: ext-fairness has no flooded fair scenario to gate")
}

// checkQuantizedGate enforces -quantized-gate against ext-quantized's
// speedup series: the CI A/B gate that the int8 path must not serve slower
// than the float32 kernels. Like the refill gate it compares the sweep's
// best point — a real quantized-GEMM regression drags every batch size down
// together, while one point grazing the line on a shared runner is noise.
// No single-core skip: the int8 win is per-core (less weight traffic per
// multiply-add), not parallelism.
func checkQuantizedGate(fig *experiments.Figure, gate float64) error {
	if gate <= 0 {
		return nil
	}
	best, bestX := 0.0, 0.0
	for i := range fig.X {
		s, err := fig.Get("speedup", i)
		if err != nil {
			return err
		}
		if s > best {
			best, bestX = s, fig.X[i]
		}
	}
	if best < gate {
		return fmt.Errorf("tcb-bench: best int8/float32 speedup %.3f (at %s=%g) below gate %.3f",
			best, fig.XLabel, bestX, gate)
	}
	fmt.Fprintf(os.Stderr, "tcb-bench: quantized gate ok: best speedup %.3f at %s=%g (gate %.3f)\n",
		best, fig.XLabel, bestX, gate)
	return nil
}
