// Command tcb-bench regenerates the paper's evaluation figures (and this
// repository's ablations) as text tables.
//
// Usage:
//
//	tcb-bench [-duration seconds] [-seed n] [-json] [-list] [id ...]
//
// With no ids it runs everything: fig09–fig16 plus the ablations. Figures
// 13–14 run the real Go engine and dominate the runtime.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tcb/internal/experiments"
)

func main() {
	duration := flag.Float64("duration", 5, "trace length in simulated seconds per data point")
	seed := flag.Uint64("seed", 1, "workload seed")
	seeds := flag.Int("seeds", 1, "seeds to average per simulated data point")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON line per figure instead of text tables")
	csvDir := flag.String("csv", "", "also write each figure as <dir>/<id>.csv")
	flag.Parse()

	opt := experiments.Options{Duration: *duration, Seed: *seed, Seeds: *seeds}
	if *list {
		for _, r := range experiments.All(opt) {
			fmt.Println(r.ID)
		}
		return
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	want := map[string]bool{}
	for _, id := range flag.Args() {
		want[id] = true
	}
	for _, r := range experiments.All(opt) {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		fig, err := r.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *jsonOut {
			if err := fig.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else if err := fig.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, r.ID+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := fig.WriteCSV(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
		}
	}
}
