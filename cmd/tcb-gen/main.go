// Command tcb-gen generates, inspects and replays workload traces.
//
// Usage:
//
//	tcb-gen -out trace.json [-rate 450] [-duration 10] [-mean 20] [-var 20] [-seed 1]
//	tcb-gen -in trace.json            # print summary statistics
package main

import (
	"flag"
	"fmt"
	"os"

	"tcb/internal/stats"
	"tcb/internal/workload"
)

func main() {
	out := flag.String("out", "", "write a generated trace to this path")
	in := flag.String("in", "", "read and summarize a trace from this path")
	rate := flag.Float64("rate", 450, "arrival rate (req/s)")
	duration := flag.Float64("duration", 10, "trace duration (s)")
	mean := flag.Float64("mean", 20, "mean request length (tokens)")
	variance := flag.Float64("var", 20, "request length variance")
	minLen := flag.Int("min", 3, "minimum request length")
	maxLen := flag.Int("max", 100, "maximum request length")
	dmin := flag.Float64("dmin", 0.5, "minimum deadline offset (s)")
	dmax := flag.Float64("dmax", 3.0, "maximum deadline offset (s)")
	seed := flag.Uint64("seed", 1, "generator seed")
	prefixPool := flag.Int("prefix-pool", 0, "number of distinct shared prompt prefixes (0 disables the prefix dimension)")
	prefixReuse := flag.Float64("prefix-reuse", 0.75, "probability a request reuses a pooled prefix")
	prefixLen := flag.Int("prefix-len", 32, "shared prefix length in tokens (request length = prefix + drawn suffix)")
	flag.Parse()

	switch {
	case *out != "":
		spec := workload.Spec{
			Rate: *rate, Duration: *duration,
			MinLen: *minLen, MaxLen: *maxLen,
			MeanLen: *mean, VarLen: *variance,
			DeadlineMin: *dmin, DeadlineMax: *dmax,
			Seed: *seed,
		}
		if *prefixPool > 0 {
			spec.PrefixPool = *prefixPool
			spec.PrefixReuse = *prefixReuse
			spec.PrefixLen = *prefixLen
		}
		reqs, err := workload.Generate(spec)
		if err != nil {
			fail(err)
		}
		if err := workload.SaveFile(*out, &spec, reqs); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d requests to %s\n", len(reqs), *out)
	case *in != "":
		spec, reqs, err := workload.LoadFile(*in)
		if err != nil {
			fail(err)
		}
		var lens, slacks stats.Running
		prefixed := 0
		prefixIDs := map[int64]bool{}
		for _, r := range reqs {
			lens.Add(float64(r.Len))
			slacks.Add(r.Deadline - r.Arrival)
			if r.PrefixID != 0 {
				prefixed++
				prefixIDs[r.PrefixID] = true
			}
		}
		fmt.Printf("requests: %d\n", len(reqs))
		if spec != nil {
			fmt.Printf("spec: rate=%g duration=%g seed=%d\n", spec.Rate, spec.Duration, spec.Seed)
		}
		if len(reqs) > 0 {
			fmt.Printf("span: %.3fs .. %.3fs\n", reqs[0].Arrival, reqs[len(reqs)-1].Arrival)
			fmt.Printf("length: %s\n", &lens)
			fmt.Printf("deadline slack: %s\n", &slacks)
		}
		if prefixed > 0 {
			fmt.Printf("prefixed: %d/%d requests over %d distinct prefixes\n",
				prefixed, len(reqs), len(prefixIDs))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
