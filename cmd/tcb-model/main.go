// Command tcb-model creates, inspects and smoke-tests model checkpoints.
//
// Usage:
//
//	tcb-model -new model.gob [-dmodel 64] [-heads 4] [-dff 128]
//	          [-enc 2] [-dec 2] [-vocab 256] [-maxlen 512] [-seed 42]
//	tcb-model -info model.gob       # print config and parameter count
//	tcb-model -smoke model.gob      # run a concat-vs-standalone check
package main

import (
	"flag"
	"fmt"
	"os"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/model"
	"tcb/internal/rng"
	"tcb/internal/vocab"
)

func main() {
	newPath := flag.String("new", "", "create a checkpoint at this path")
	infoPath := flag.String("info", "", "describe the checkpoint at this path")
	smokePath := flag.String("smoke", "", "smoke-test the checkpoint at this path")
	dmodel := flag.Int("dmodel", 64, "hidden width")
	heads := flag.Int("heads", 4, "attention heads")
	dff := flag.Int("dff", 128, "feed-forward width")
	enc := flag.Int("enc", 2, "encoder layers")
	dec := flag.Int("dec", 2, "decoder layers")
	vocabSize := flag.Int("vocab", 256, "vocabulary size")
	maxLen := flag.Int("maxlen", 512, "maximum row length")
	seed := flag.Uint64("seed", 42, "weight seed")
	flag.Parse()

	switch {
	case *newPath != "":
		cfg := model.Config{
			VocabSize: *vocabSize, DModel: *dmodel, NumHeads: *heads,
			DFF: *dff, EncLayers: *enc, DecLayers: *dec,
			MaxLen: *maxLen, Eps: 1e-5,
		}
		if err := cfg.Validate(); err != nil {
			fail(err)
		}
		m := model.New(cfg, *seed)
		if err := m.SaveFile(*newPath); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d parameters)\n", *newPath, paramCount(m))
	case *infoPath != "":
		m, err := model.LoadFile(*infoPath)
		if err != nil {
			fail(err)
		}
		c := m.Cfg
		fmt.Printf("vocab=%d d_model=%d heads=%d d_ff=%d enc=%d dec=%d max_len=%d\n",
			c.VocabSize, c.DModel, c.NumHeads, c.DFF, c.EncLayers, c.DecLayers, c.MaxLen)
		fmt.Printf("parameters: %d\n", paramCount(m))
	case *smokePath != "":
		m, err := model.LoadFile(*smokePath)
		if err != nil {
			fail(err)
		}
		if err := smoke(m); err != nil {
			fail(err)
		}
		fmt.Println("concat inference == standalone inference ✓")
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// paramCount counts float32 weights.
func paramCount(m *model.Model) int {
	count := len(m.P.Embedding.Data)
	lin := func(l *model.Linear) int { return len(l.W.Data) + len(l.B) }
	attn := func(a *model.AttentionWeights) int {
		return lin(a.WQ) + lin(a.WK) + lin(a.WV) + lin(a.WO)
	}
	for _, layer := range m.P.Encoder {
		count += attn(layer.SelfAttn) + lin(layer.FFN.In) + lin(layer.FFN.Out)
		count += len(layer.Norm1.Gain) + len(layer.Norm1.Bias)
		count += len(layer.Norm2.Gain) + len(layer.Norm2.Bias)
	}
	for _, layer := range m.P.Decoder {
		count += attn(layer.SelfAttn) + attn(layer.CrossAttn)
		count += lin(layer.FFN.In) + lin(layer.FFN.Out)
		count += len(layer.Norm1.Gain) + len(layer.Norm1.Bias)
		count += len(layer.Norm2.Gain) + len(layer.Norm2.Bias)
		count += len(layer.Norm3.Gain) + len(layer.Norm3.Bias)
	}
	count += lin(m.P.OutProj)
	return count
}

// smoke verifies the ConcatBatching equivalence on the loaded model.
func smoke(m *model.Model) error {
	e := engine.New(m, 3)
	src := rng.New(1)
	lens := []int{4, 7, 3}
	items := make([]batch.Item, len(lens))
	tokens := make(map[int64][]int)
	for i, l := range lens {
		id := int64(i + 1)
		seq := make([]int, l)
		for j := range seq {
			seq[j] = src.IntRange(vocab.FirstWordID, m.Cfg.VocabSize-1)
		}
		items[i] = batch.Item{ID: id, Len: l}
		tokens[id] = seq
	}
	b, rest := batch.PackConcat(items, 1, 20)
	if len(rest) != 0 {
		return fmt.Errorf("smoke: pack failed")
	}
	rep, err := e.Run(b, tokens)
	if err != nil {
		return err
	}
	for _, r := range rep.Results {
		solo, err := e.RunSingle(r.ID+100, tokens[r.ID])
		if err != nil {
			return err
		}
		if len(r.Output) != len(solo.Output) {
			return fmt.Errorf("smoke: request %d diverges from standalone", r.ID)
		}
		for i := range r.Output {
			if r.Output[i] != solo.Output[i] {
				return fmt.Errorf("smoke: request %d token %d diverges", r.ID, i)
			}
		}
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
