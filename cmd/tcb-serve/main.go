// Command tcb-serve runs the real TCB online server (goroutine pipeline +
// Go transformer engine) against a synthetic request stream and prints
// end-to-end statistics: a miniature live version of the paper's serving
// experiments.
//
// Usage:
//
//	tcb-serve [-n 64] [-rate 30] [-scheduler das|slotted|fcfs|sjf|def]
//	          [-scheme concat|slotted|naive] [-deadline 2s] [-dmodel 64]
//	tcb-serve -chaos err=0.2,panic=0.05 ...   # deterministic fault injection
//	tcb-serve -http :8080 ...                 # expose the server over HTTP
//	tcb-serve -refill ...                     # continuous batching (mid-flight refill)
//	tcb-serve -replicas 3 -route least ...    # multi-replica cluster with failover
//	tcb-serve -quantize ...                   # int8 per-channel quantized projections
//	tcb-serve -kernel scalar ...              # float32 GEMM kernel escape hatch
//	tcb-serve -fair -tenants "free:1,premium:4" ...  # weighted fair queueing
//
// Multi-tenant fairness: -fair turns on the WFQ candidate window and
// tenant-fair shedding; -tenants provisions tenants (name:weight:rate:burst,
// see fair.ParseTenants) and makes the demo stream round-robin its traffic
// over them; -slo-classes overrides the interactive/standard/batch SLO
// tiers; -bucket-rate/-bucket-burst set the admission token bucket applied
// to tenants without their own provisioning (HTTP 429 + Retry-After when a
// bucket runs dry). With -fair absent the server runs the original single
// global pool — tenant tags then only affect accounting, not scheduling.
//
// In HTTP mode the server listens until interrupted (tag requests with the
// X-Tenant header; pick an SLO class per request with "class"):
//
//	POST /v1/infer {"tokens": [5,6,7], "deadline_ms": 500, "class": "interactive"}
//	GET  /v1/stats
//	GET  /healthz
//	GET  /v1/replicas   (cluster mode only)
//
// The -chaos spec wraps the engine in a seeded serve.ChaosRunner
// (err/panic/slow/lose/killafter/wedgeafter modes); the supervision stack
// must keep the process alive and keep serving through every injected
// fault, which is exactly what the CI chaos smoke run asserts. With
// -replicas N the -chaos-target flag narrows the injection to one member's
// first engine generation — respawned replacements come up clean — so a
// run can kill or wedge exactly one replica and prove the cluster fails
// the traffic over without losing a request.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"sort"

	"tcb/internal/batch"
	"tcb/internal/cluster"
	"tcb/internal/engine"
	"tcb/internal/fair"
	"tcb/internal/gpu"
	"tcb/internal/model"
	"tcb/internal/prefixcache"
	"tcb/internal/rng"
	"tcb/internal/sched"
	"tcb/internal/serve"
	"tcb/internal/stats"
	"tcb/internal/tensor"
	"tcb/internal/vocab"
)

func main() {
	n := flag.Int("n", 64, "number of requests to send")
	rate := flag.Float64("rate", 30, "arrival rate (req/s)")
	schedName := flag.String("scheduler", "das", "das|slotted|fcfs|sjf|def")
	schemeName := flag.String("scheme", "concat", "concat|slotted|naive")
	deadline := flag.Duration("deadline", 2*time.Second, "per-request deadline")
	httpAddr := flag.String("http", "", "serve HTTP on this address instead of running the batch demo")
	dmodel := flag.Int("dmodel", 64, "model width")
	maxNew := flag.Int("maxnew", 4, "generated tokens per request")
	seed := flag.Uint64("seed", 1, "workload seed")
	chaosSpec := flag.String("chaos", "", "fault injection spec, e.g. err=0.2,panic=0.05,slow=0.1:50ms,lose=0.02,killafter=20,seed=7")
	retries := flag.Int("retries", 3, "engine attempts per request (1 disables retry)")
	breakerK := flag.Int("breaker", 5, "consecutive failures tripping the circuit breaker (<0 disables)")
	cooldown := flag.Duration("breaker-cooldown", 250*time.Millisecond, "open-state cooldown before a half-open probe")
	batchTimeout := flag.Duration("batch-timeout", 0, "fixed per-batch watchdog budget (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on the final drain (0 waits forever)")
	pipeline := flag.Bool("pipeline", false, "overlap scheduling/layout/cleanup with compute (three-stage pipeline)")
	reserve := flag.Int("reserve", 0, "cores withheld from kernel workers for the pipeline's non-compute stages (0 = default)")
	refill := flag.Bool("refill", false, "continuous batching: refill freed batch slots from the queue between decode steps")
	replicas := flag.Int("replicas", 1, "cluster members; >1 fronts them with health-checked routing and failover")
	routeName := flag.String("route", "rr", "cluster routing policy: rr|least|length")
	chaosTarget := flag.Int("chaos-target", -1, "replica index the -chaos spec applies to (-1 = every replica; cluster mode only)")
	stallTimeout := flag.Duration("stall-timeout", time.Second, "cluster watchdog: respawn a replica with pending work but no progress for this long")
	respawnDeadline := flag.Duration("respawn-deadline", 2*time.Second, "bound on a wedged replica's drain before it is torn down")
	kernelName := flag.String("kernel", "wide", "float32 GEMM kernel: scalar, wide, or int8 (wide float32 + quantized projections)")
	quantize := flag.Bool("quantize", false, "serve through int8 per-channel quantized projections (bounded-error, opt-in)")
	fairOn := flag.Bool("fair", false, "weighted fair queueing across tenants (off = original single global pool)")
	tenantsSpec := flag.String("tenants", "", "tenant provisioning name[:weight[:rate[:burst]]],...; the demo stream round-robins over them")
	classesSpec := flag.String("slo-classes", "", "SLO class overrides name:weight:deadline,... (default interactive/standard/batch tiers)")
	bucketRate := flag.Float64("bucket-rate", 0, "default admission bucket refill (request tokens/s) for tenants without their own (0 = unlimited)")
	bucketBurst := flag.Float64("bucket-burst", 0, "default admission bucket capacity in request tokens (0 = the rate)")
	prefixOn := flag.Bool("prefix-cache", false, "prefix sharing: encode shared prompt prefixes once and reuse their frozen KV across requests (forces the KV-cached decoder)")
	prefixBudget := flag.Int64("prefix-budget", 0, "prefix cache resident-byte budget (0 = unbounded)")
	prefixPool := flag.Int("prefix-pool", 4, "demo stream: distinct shared prefixes to rotate over (with -prefix-cache)")
	prefixReuse := flag.Float64("prefix-reuse", 0.75, "demo stream: probability a request carries a shared prefix (with -prefix-cache)")
	flag.Parse()

	kernel, err := tensor.ParseKernel(*kernelName)
	if err != nil {
		fail(err)
	}
	tensor.SetKernel(kernel)
	if *kernelName == "int8" {
		*quantize = true
	}

	var scheduler sched.Scheduler
	switch *schedName {
	case "das":
		scheduler = sched.NewDAS()
	case "slotted":
		scheduler = sched.NewSlottedDAS()
	case "fcfs":
		scheduler = sched.FCFS{}
	case "sjf":
		scheduler = sched.SJF{}
	case "def":
		scheduler = sched.DEF{}
	default:
		fail(fmt.Errorf("unknown scheduler %q", *schedName))
	}
	var scheme batch.Scheme
	switch *schemeName {
	case "concat":
		scheme = batch.Concat
	case "slotted":
		scheme = batch.SlottedConcat
	case "naive":
		scheme = batch.Naive
	default:
		fail(fmt.Errorf("unknown scheme %q", *schemeName))
	}

	chaosCfg, err := serve.ParseChaos(*chaosSpec)
	if err != nil {
		fail(err)
	}

	// Fairness configuration shared by both modes. The limiter is attached
	// at whichever HTTP front exists (server or cluster), never to cluster
	// replicas — internal resubmissions must not be double-charged.
	tenantCfgs, err := fair.ParseTenants(*tenantsSpec)
	if err != nil {
		fail(err)
	}
	var registry *fair.Registry
	if len(tenantCfgs) > 0 || *bucketRate > 0 || *bucketBurst > 0 {
		registry = fair.NewRegistry(tenantCfgs...)
		registry.DefaultRate = *bucketRate
		registry.DefaultBurst = *bucketBurst
	}
	var classes *fair.ClassSet
	if *classesSpec != "" {
		if classes, err = fair.ParseClasses(*classesSpec); err != nil {
			fail(err)
		}
	}
	var limiter *fair.Limiter
	if registry != nil {
		limiter = fair.NewLimiter(registry)
	}
	// demoTenants is the round-robin rotation the demo stream tags its
	// requests with; empty means untagged traffic.
	demoTenants := registry.Names()

	cfg := model.Config{
		VocabSize: 256, DModel: *dmodel, NumHeads: 4, DFF: 2 * *dmodel,
		EncLayers: 2, DecLayers: 2, MaxLen: 512, Eps: 1e-5,
	}

	// Chaos bookkeeping shared by both modes: every runner built is kept so
	// the final report can sum injected-fault counts.
	var chaosMu sync.Mutex
	var chaosRunners []*serve.ChaosRunner
	chaosCounts := func() (serve.ChaosCounts, bool) {
		chaosMu.Lock()
		defer chaosMu.Unlock()
		var total serve.ChaosCounts
		for _, ch := range chaosRunners {
			c := ch.Counts()
			total.Errs += c.Errs
			total.Panics += c.Panics
			total.Slows += c.Slows
			total.Lost += c.Lost
			total.Kills += c.Kills
			total.Wedges += c.Wedges
		}
		return total, len(chaosRunners) > 0
	}

	// Prefix-cache bookkeeping shared by both modes: one cache (and one
	// device-byte ledger) per engine generation, so the post-drain balance
	// check can prove no cache bytes leaked — even across chaos respawns.
	var prefixMu sync.Mutex
	var prefixMems []*gpu.MemoryManager
	prefixBalanced := func() bool {
		prefixMu.Lock()
		defer prefixMu.Unlock()
		for _, m := range prefixMems {
			if m.Used() != 0 || m.Outstanding() != 0 {
				return false
			}
		}
		return true
	}

	// newServer builds one engine + supervision stack; the cluster's Spawn
	// calls it once per replica generation.
	newServer := func(withChaos bool) (*serve.Server, *serve.ChaosRunner, error) {
		eng := engine.New(model.New(cfg, 42), *maxNew)
		eng.Quantize = *quantize
		if *refill {
			// Mid-flight refill runs on the fused KV-cached decode loop;
			// outputs are token-identical to the default path (DESIGN.md §11).
			eng.UseCache = true
		}
		var pc *prefixcache.Cache
		if *prefixOn {
			// The same cache serves both halves: the server pins and clears,
			// the engine reads and inserts. Charging a dedicated memory
			// manager keeps the cache's device accounting checkable without
			// imposing an admission budget on the demo's engine.
			mem := gpu.NewMemoryManager(0)
			pc = prefixcache.New(*prefixBudget, mem)
			eng.UseCache = true // prefix items require the KV-cached decoder
			eng.PrefixCache = pc
			prefixMu.Lock()
			prefixMems = append(prefixMems, mem)
			prefixMu.Unlock()
		}
		var runner serve.Runner = eng
		var chaos *serve.ChaosRunner
		if withChaos {
			chaos = serve.NewChaosRunner(eng, chaosCfg)
			runner = chaos
			chaosMu.Lock()
			chaosRunners = append(chaosRunners, chaos)
			chaosMu.Unlock()
		}
		srvCfg := serve.Config{
			Engine: runner, Scheduler: scheduler, Scheme: scheme,
			B: 8, L: 100,
			Retry:            serve.RetryPolicy{MaxAttempts: *retries},
			BreakerThreshold: *breakerK,
			BreakerCooldown:  *cooldown,
			DrainTimeout:     *drainTimeout,
			Pipeline:         *pipeline,
			ReserveCores:     *reserve,
			Refill:           *refill,
			Fair:             *fairOn,
			Registry:         registry,
			Classes:          classes,
			PrefixCache:      pc,
		}
		if *replicas <= 1 {
			// Single-server mode: this server IS the HTTP front, so it
			// carries the admission limiter. Cluster replicas never do.
			srvCfg.Limiter = limiter
		}
		if *batchTimeout > 0 {
			// A fixed budget: the Config-level PredictBatch hook exists for
			// calibrated cost-model predictions; a CLI run has no calibration
			// pass, so a flat watchdog is the honest option.
			fixed := *batchTimeout
			srvCfg.PredictBatch = func(*batch.Batch) time.Duration { return fixed }
			srvCfg.TimeoutSlack = 1
			srvCfg.MinBatchTimeout = fixed
			if *pipeline {
				// The non-compute stages get the same flat treatment: each is
				// expected well inside a quarter of the batch budget; past
				// that it counts as a stage overrun in the stats.
				srvCfg.PredictStages = func(*batch.Batch) (time.Duration, time.Duration) {
					return fixed / 4, fixed / 4
				}
			}
		}
		srv, err := serve.New(srvCfg)
		if err != nil {
			return nil, nil, err
		}
		return srv, chaos, nil
	}

	if *replicas > 1 {
		runClusterMode(clusterMode{
			replicas: *replicas, routeName: *routeName,
			chaosEnabled: chaosCfg.Enabled(), chaosTarget: *chaosTarget,
			chaosCounts: chaosCounts, newServer: newServer,
			stallTimeout: *stallTimeout, respawnDeadline: *respawnDeadline,
			n: *n, rate: *rate, deadline: *deadline, seed: *seed,
			httpAddr: *httpAddr, vocabSize: cfg.VocabSize,
			scheduler: scheduler, scheme: scheme,
			limiter: limiter, classes: classes,
			tenants: demoTenants, fairOn: *fairOn,
			prefixOn: *prefixOn, prefixPool: *prefixPool,
			prefixReuse: *prefixReuse, prefixBalanced: prefixBalanced,
		})
		return
	}

	srv, chaos, err := newServer(chaosCfg.Enabled())
	if err != nil {
		fail(err)
	}
	srv.Start()

	if *httpAddr != "" {
		fmt.Printf("serving HTTP on %s (scheduler=%s scheme=%s)\n",
			*httpAddr, scheduler.Name(), scheme)
		hs := &http.Server{
			Addr:              *httpAddr,
			Handler:           serve.NewHTTPHandler(srv),
			ReadHeaderTimeout: 5 * time.Second,  // slowloris bound
			ReadTimeout:       30 * time.Second, // full-request bound
		}
		if err := hs.ListenAndServe(); err != nil {
			srv.Stop()
			fail(err)
		}
		srv.Stop()
		return
	}

	src := rng.New(*seed)
	prefixes := demoPrefixes(src, *prefixOn, *prefixPool, cfg.VocabSize)
	type outcome struct {
		ch <-chan serve.Response
	}
	var outs []outcome
	start := time.Now()
	sent, rejected := 0, 0
	for i := 0; i < *n; i++ {
		l := src.TruncatedNormalInt(20, 4.5, 3, 100)
		tokens := make([]int, l)
		for j := range tokens {
			tokens[j] = src.IntRange(vocab.FirstWordID, cfg.VocabSize-1)
		}
		var opt serve.SubmitOptions
		if len(demoTenants) > 0 {
			opt.Tenant = demoTenants[i%len(demoTenants)]
		}
		tokens, opt.PrefixLen = maybePrefix(src, prefixes, *prefixReuse, tokens, 100)
		ch, err := srv.SubmitOpts(tokens, *deadline, opt)
		if err != nil {
			rejected++
			continue
		}
		sent++
		outs = append(outs, outcome{ch})
		time.Sleep(time.Duration(src.Exp(*rate) * float64(time.Second)))
	}

	var lat stats.Sample
	ok, missed, failed := 0, 0, 0
	for _, o := range outs {
		resp := <-o.ch
		switch {
		case resp.Err == serve.ErrDeadlineExceeded:
			missed++
		case resp.Err != nil:
			failed++
		default:
			ok++
			lat.Add(resp.Served.Sub(resp.Queued).Seconds() * 1000)
		}
	}
	elapsed := time.Since(start)
	srv.Drain()
	st := srv.Stats()

	fmt.Printf("scheduler=%s scheme=%s dmodel=%d\n", scheduler.Name(), scheme, *dmodel)
	fmt.Printf("sent=%d rejected=%d served=%d deadline-missed=%d failed=%d\n",
		sent, rejected, ok, missed, failed)
	fmt.Printf("wall=%.2fs throughput=%.1f resp/s\n", elapsed.Seconds(), float64(ok)/elapsed.Seconds())
	if lat.N() > 0 {
		fmt.Printf("latency ms: p50=%.1f p95=%.1f p99=%.1f\n",
			lat.Percentile(50), lat.Percentile(95), lat.Percentile(99))
	}
	fmt.Printf("supervision: retried=%d panics=%d timeouts=%d shed=%d breaker=%s trips=%d\n",
		st.Retried, st.Panics, st.Timeouts, st.Shed, st.BreakerState, st.BreakerTrips)
	mode := "serial"
	if st.Pipelined {
		mode = "pipelined"
	}
	fmt.Printf("stages (%s): schedule=%.1fms compute=%.1fms cleanup=%.1fms overruns=%d\n",
		mode, float64(st.ScheduleNs)/1e6, float64(st.ComputeNs)/1e6,
		float64(st.CleanupNs)/1e6, st.StageOverruns)
	fmt.Printf("kernels: scalar=%d wide=%d int8=%d\n",
		st.Kernels.Scalar, st.Kernels.Wide, st.Kernels.Int8)
	if st.Refilling {
		fmt.Printf("refill: admitted=%d retired-early=%d occupancy=%.0f%% slot-idle-steps=%d\n",
			st.RefillsAdmitted, st.SegmentsRetiredEarly, st.BatchOccupancyPct, st.SlotIdleSteps)
	}
	if st.PrefixEnabled {
		fmt.Printf("prefix: hits=%d misses=%d hit-rate=%.0f%% tokens-saved=%d inserts=%d evictions=%d resident=%dB\n",
			st.Prefix.Hits, st.Prefix.Misses, 100*st.Prefix.HitRate,
			st.Prefix.TokensSaved, st.Prefix.Inserts, st.Prefix.Evictions, st.Prefix.ResidentBytes)
		if !prefixBalanced() {
			fmt.Fprintln(os.Stderr, "prefix cache leaked device bytes after drain")
			os.Exit(1)
		}
	}
	if *fairOn || len(demoTenants) > 0 {
		fmt.Printf("fairness: wfq=%v jain=%.3f\n", st.FairEnabled, st.JainGoodput)
		printTenantTable(st.Tenants)
		printClassP99(st.ClassP99MS)
	}
	if chaos != nil {
		c := chaos.Counts()
		fmt.Printf("chaos injected: errs=%d panics=%d slows=%d lost=%d kills=%d wedges=%d\n",
			c.Errs, c.Panics, c.Slows, c.Lost, c.Kills, c.Wedges)
		// Under injected faults some requests legitimately fail; the pass
		// condition is that the process survived and still served traffic.
		if sent > 0 && ok == 0 {
			fmt.Fprintln(os.Stderr, "chaos run served nothing")
			os.Exit(1)
		}
		return
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// clusterMode carries the flag state the cluster demo needs.
type clusterMode struct {
	replicas        int
	routeName       string
	chaosEnabled    bool
	chaosTarget     int
	chaosCounts     func() (serve.ChaosCounts, bool)
	newServer       func(withChaos bool) (*serve.Server, *serve.ChaosRunner, error)
	stallTimeout    time.Duration
	respawnDeadline time.Duration
	n               int
	rate            float64
	deadline        time.Duration
	seed            uint64
	httpAddr        string
	vocabSize       int
	scheduler       sched.Scheduler
	scheme          batch.Scheme
	limiter         *fair.Limiter
	classes         *fair.ClassSet
	tenants         []string
	fairOn          bool
	prefixOn        bool
	prefixPool      int
	prefixReuse     float64
	prefixBalanced  func() bool
}

// runClusterMode fronts N replicas with the cluster router and replays the
// demo stream through it. The exit status is the zero-lost check: every
// accepted request must reach a terminal outcome (Delivered == Submitted),
// and under chaos the cluster must still have served traffic.
func runClusterMode(cm clusterMode) {
	policy, err := cluster.ParsePolicy(cm.routeName)
	if err != nil {
		fail(err)
	}
	// Chaos targets only the first generation of the chosen replica (or of
	// every replica with -chaos-target -1): a respawned replacement comes up
	// clean, which is what lets the kill/wedge smoke prove recovery.
	var genMu sync.Mutex
	gens := make(map[int]int)
	spawn := func(i int) (*serve.Server, func(), error) {
		genMu.Lock()
		gen := gens[i]
		gens[i]++
		genMu.Unlock()
		withChaos := cm.chaosEnabled && gen == 0 &&
			(cm.chaosTarget < 0 || cm.chaosTarget == i)
		srv, chaos, err := cm.newServer(withChaos)
		if err != nil {
			return nil, nil, err
		}
		var cleanup func()
		if chaos != nil {
			cleanup = chaos.Close // releases wedged engine calls on teardown
		}
		return srv, cleanup, nil
	}
	c, err := cluster.New(cluster.Config{
		Replicas: cm.replicas, Spawn: spawn, Policy: policy,
		MaxLen:          100, // the servers' L
		StallTimeout:    cm.stallTimeout,
		RespawnDeadline: cm.respawnDeadline,
		Limiter:         cm.limiter, // cluster front owns admission
		Classes:         cm.classes,
	})
	if err != nil {
		fail(err)
	}
	c.Start()

	if cm.httpAddr != "" {
		fmt.Printf("serving HTTP on %s (cluster: replicas=%d route=%s scheduler=%s scheme=%s)\n",
			cm.httpAddr, cm.replicas, policy, cm.scheduler.Name(), cm.scheme)
		hs := &http.Server{
			Addr:              cm.httpAddr,
			Handler:           cluster.NewHTTPHandler(c),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
		}
		if err := hs.ListenAndServe(); err != nil {
			c.Stop()
			fail(err)
		}
		c.Stop()
		return
	}

	src := rng.New(cm.seed)
	prefixes := demoPrefixes(src, cm.prefixOn, cm.prefixPool, cm.vocabSize)
	var outs []<-chan serve.Response
	start := time.Now()
	sent, rejected := 0, 0
	for i := 0; i < cm.n; i++ {
		l := src.TruncatedNormalInt(20, 4.5, 3, 100)
		tokens := make([]int, l)
		for j := range tokens {
			tokens[j] = src.IntRange(vocab.FirstWordID, cm.vocabSize-1)
		}
		var opt serve.SubmitOptions
		if len(cm.tenants) > 0 {
			opt.Tenant = cm.tenants[i%len(cm.tenants)]
		}
		tokens, opt.PrefixLen = maybePrefix(src, prefixes, cm.prefixReuse, tokens, 100)
		ch, err := c.SubmitOpts(tokens, cm.deadline, opt)
		if err != nil {
			rejected++
			continue
		}
		sent++
		outs = append(outs, ch)
		time.Sleep(time.Duration(src.Exp(cm.rate) * float64(time.Second)))
	}

	var lat stats.Sample
	ok, missed, failed := 0, 0, 0
	for _, ch := range outs {
		resp := <-ch
		switch {
		case resp.Err == serve.ErrDeadlineExceeded:
			missed++
		case resp.Err != nil:
			failed++
		default:
			ok++
			lat.Add(resp.Served.Sub(resp.Queued).Seconds() * 1000)
		}
	}
	elapsed := time.Since(start)
	c.Drain()
	st := c.Stats()

	fmt.Printf("cluster: replicas=%d route=%s scheduler=%s scheme=%s\n",
		cm.replicas, policy, cm.scheduler.Name(), cm.scheme)
	fmt.Printf("sent=%d rejected=%d served=%d deadline-missed=%d failed=%d\n",
		sent, rejected, ok, missed, failed)
	fmt.Printf("wall=%.2fs throughput=%.1f resp/s\n", elapsed.Seconds(), float64(ok)/elapsed.Seconds())
	if lat.N() > 0 {
		fmt.Printf("latency ms: p50=%.1f p95=%.1f p99=%.1f\n",
			lat.Percentile(50), lat.Percentile(95), lat.Percentile(99))
	}
	fmt.Printf("lifecycle: submitted=%d delivered=%d failovers=%d ejections=%d respawns=%d probe-failures=%d\n",
		st.Submitted, st.Delivered, st.Failovers, st.Ejections, st.Respawns, st.ProbeFailures)
	for _, rs := range st.Replicas {
		fmt.Printf("  replica %d: state=%s respawns=%d served=%d failed=%d shed=%d breaker=%s trips=%d\n",
			rs.Index, rs.State, rs.Respawns, rs.Stats.Served, rs.Stats.Failed,
			rs.Stats.Shed, rs.Stats.BreakerState, rs.Stats.BreakerTrips)
	}
	if counts, any := cm.chaosCounts(); any {
		fmt.Printf("chaos injected: errs=%d panics=%d slows=%d lost=%d kills=%d wedges=%d\n",
			counts.Errs, counts.Panics, counts.Slows, counts.Lost, counts.Kills, counts.Wedges)
	}
	if cm.prefixOn {
		var hits, misses, saved int64
		for _, rs := range st.Replicas {
			hits += rs.Stats.Prefix.Hits
			misses += rs.Stats.Prefix.Misses
			saved += rs.Stats.Prefix.TokensSaved
		}
		fmt.Printf("prefix (all replicas): hits=%d misses=%d tokens-saved=%d\n", hits, misses, saved)
		if !cm.prefixBalanced() {
			fmt.Fprintln(os.Stderr, "prefix cache leaked device bytes after drain")
			os.Exit(1)
		}
	}
	if cm.fairOn || len(cm.tenants) > 0 {
		fmt.Printf("fairness: jain=%.3f\n", st.JainGoodput)
		printTenantTable(st.Tenants)
	}

	// The zero-lost invariant, counter-verified: every accepted request got
	// exactly one terminal outcome.
	if st.Delivered != st.Submitted {
		fmt.Fprintf(os.Stderr, "LOST REQUESTS: submitted=%d delivered=%d\n", st.Submitted, st.Delivered)
		os.Exit(1)
	}
	if int64(sent) != st.Submitted || sent != len(outs) {
		fmt.Fprintf(os.Stderr, "accounting mismatch: sent=%d submitted=%d outcomes=%d\n",
			sent, st.Submitted, len(outs))
		os.Exit(1)
	}
	if cm.chaosEnabled {
		// Under injected faults some requests legitimately fail; the pass
		// condition is surviving and still serving.
		if sent > 0 && ok == 0 {
			fmt.Fprintln(os.Stderr, "chaos run served nothing")
			os.Exit(1)
		}
		return
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// printTenantTable prints one line per tenant, sorted by name.
func printTenantTable(tenants map[string]serve.TenantStats) {
	names := make([]string, 0, len(tenants))
	for name := range tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := tenants[name]
		fmt.Printf("  tenant %s: admitted=%d throttled=%d delivered=%d missed=%d failed=%d shed=%d\n",
			name, ts.Admitted, ts.Throttled, ts.Delivered, ts.Missed, ts.Failed, ts.Shed)
	}
}

// printClassP99 prints the per-SLO-class delivered-latency tails.
func printClassP99(p99 map[string]float64) {
	if len(p99) == 0 {
		return
	}
	names := make([]string, 0, len(p99))
	for name := range p99 {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("  class p99 ms:")
	for _, name := range names {
		fmt.Printf(" %s=%.1f", name, p99[name])
	}
	fmt.Println()
}

// demoPrefixes pre-draws the shared prompt prefixes the demo stream rotates
// over; nil when prefix sharing is off (drawing nothing keeps the default
// stream byte-identical to earlier releases).
func demoPrefixes(src *rng.Source, on bool, pool, vocabSize int) [][]int {
	if !on || pool <= 0 {
		return nil
	}
	const prefixLen = 12
	out := make([][]int, pool)
	for i := range out {
		pfx := make([]int, prefixLen)
		for j := range pfx {
			pfx[j] = src.IntRange(vocab.FirstWordID, vocabSize-1)
		}
		out[i] = pfx
	}
	return out
}

// maybePrefix prepends one of the shared prefixes with probability reuse,
// truncating the suffix so the prefixed request still fits the row capacity
// L. It returns the (possibly prefixed) tokens and the declared prefix
// length.
func maybePrefix(src *rng.Source, prefixes [][]int, reuse float64, tokens []int, L int) ([]int, int) {
	if len(prefixes) == 0 || src.Float64() >= reuse {
		return tokens, 0
	}
	pfx := prefixes[src.Intn(len(prefixes))]
	if max := L - len(pfx); len(tokens) > max {
		tokens = tokens[:max]
	}
	return append(append(make([]int, 0, len(pfx)+len(tokens)), pfx...), tokens...), len(pfx)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
