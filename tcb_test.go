package tcb_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tcb"
)

// The façade test exercises the whole public API surface end to end: build
// a model, pack a concat batch, run the engine, serve live requests, and
// simulate a workload.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := tcb.ModelConfig{
		VocabSize: 64, DModel: 32, NumHeads: 4, DFF: 64,
		EncLayers: 1, DecLayers: 1, MaxLen: 128, Eps: 1e-5,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	m := tcb.NewModel(cfg, 1)
	eng := tcb.NewEngine(m, 3)

	// Pack and run a concat batch.
	items := []tcb.Item{{ID: 1, Len: 4}, {ID: 2, Len: 6}}
	b, rest := tcb.PackConcat(items, 1, 16)
	if len(rest) != 0 {
		t.Fatalf("rest = %v", rest)
	}
	tokens := map[int64][]int{
		1: {tcb.FirstWordID, tcb.FirstWordID + 1, tcb.FirstWordID + 2, tcb.FirstWordID + 3},
		2: {tcb.FirstWordID + 4, tcb.FirstWordID + 5, tcb.FirstWordID + 6, tcb.FirstWordID + 7, tcb.FirstWordID + 8, tcb.FirstWordID + 9},
	}
	rep, err := eng.Run(b, tokens)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d", len(rep.Results))
	}

	// Live server round trip.
	srv, err := tcb.NewServer(tcb.ServerConfig{
		Engine: eng, Scheduler: tcb.NewDAS(), Scheme: tcb.Concat,
		B: 2, L: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	ch, err := srv.Submit(tokens[1], 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case resp := <-ch:
		if resp.Err != nil {
			t.Fatalf("serve error: %v", resp.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server timed out")
	}
}

func TestPublicSimulation(t *testing.T) {
	spec := tcb.PaperWorkload(300, 1, 7)
	trace, err := tcb.GenerateWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tcb.Simulate(tcb.SimSystem{
		Name:      "DAS-TCB",
		Scheduler: tcb.NewDAS(),
		Scheme:    tcb.Concat,
		B:         8,
		L:         100,
		Cost:      tcb.CalibratedCostParams(),
	}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if m.Scheduled == 0 {
		t.Fatal("nothing scheduled")
	}
}

func TestPublicExperiments(t *testing.T) {
	var buf bytes.Buffer
	err := tcb.RunExperiments(&buf, tcb.ExperimentOptions{Duration: 1, Seed: 1}, "ablation-packing")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ablation-packing") {
		t.Fatal("experiment output missing")
	}
}

func TestVocabFacade(t *testing.T) {
	v := tcb.BuildVocab([]string{"hello world"})
	ids := v.Encode("hello world")
	if len(ids) != 2 || ids[0] < tcb.FirstWordID {
		t.Fatalf("encode = %v", ids)
	}
	if v.Decode(ids) != "hello world" {
		t.Fatal("round trip failed")
	}
}

func TestSchedulerFacade(t *testing.T) {
	das := tcb.NewDAS()
	if das.CompetitiveRatio() != 0.2 {
		t.Fatalf("ratio = %v", das.CompetitiveRatio())
	}
	reqs := []*tcb.Request{
		{ID: 1, Arrival: 0, Deadline: 10, Len: 5},
		{ID: 2, Arrival: 0, Deadline: 10, Len: 7},
	}
	dec := das.Schedule(0, reqs, 2, 20)
	if len(dec.Chosen()) != 2 {
		t.Fatalf("chosen = %d", len(dec.Chosen()))
	}
	for _, s := range []tcb.Scheduler{tcb.FCFS{}, tcb.SJF{}, tcb.DEF{}, tcb.NewSlottedDAS()} {
		if s.Name() == "" {
			t.Fatal("scheduler missing name")
		}
	}
}

func TestPublicTrainingAndCheckpoint(t *testing.T) {
	cfg := tcb.ModelConfig{
		VocabSize: 16, DModel: 16, NumHeads: 2, DFF: 32,
		EncLayers: 1, DecLayers: 1, MaxLen: 16, Eps: 1e-5,
	}
	m := tcb.NewModel(cfg, 3)
	seq := []int{tcb.FirstWordID, tcb.FirstWordID + 1}
	losses, err := tcb.Fit(m, []tcb.TrainExample{{Src: seq, Tgt: seq}},
		tcb.TrainConfig{Steps: 5, BatchSize: 2, LR: 1e-3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 5 || losses[0] <= 0 {
		t.Fatalf("losses = %v", losses)
	}
	path := t.TempDir() + "/m.gob"
	if err := tcb.SaveModel(m, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := tcb.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg.DModel != cfg.DModel {
		t.Fatal("checkpoint lost config")
	}
}

func TestPublicWorkloadDistAndPersistence(t *testing.T) {
	spec := tcb.PaperWorkload(100, 1, 5)
	dist := tcb.BimodalLengths{
		Low:          tcb.NormalLengths{Mean: 10, Variance: 4, Min: 3, Max: 100},
		High:         tcb.NormalLengths{Mean: 80, Variance: 16, Min: 3, Max: 100},
		HighFraction: 0.3,
	}
	reqs, err := tcb.GenerateWorkloadWithDist(spec, dist)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 {
		t.Fatal("no requests")
	}
	path := t.TempDir() + "/trace.json"
	if err := tcb.SaveWorkload(path, &spec, reqs); err != nil {
		t.Fatal(err)
	}
	_, again, err := tcb.LoadWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(reqs) {
		t.Fatal("trace round trip lost requests")
	}
}

func TestPublicCostParams(t *testing.T) {
	if err := tcb.DefaultCostParams(tcb.SmallModelConfig(100)).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tcb.CalibratedCostParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicPackersAndConfigs(t *testing.T) {
	items := []tcb.Item{{ID: 1, Len: 4}, {ID: 2, Len: 5}}
	nb, rest := tcb.PackNaive(items, 4, 100)
	if len(rest) != 0 || nb.NumItems() != 2 {
		t.Fatalf("naive pack: %d items, rest %v", nb.NumItems(), rest)
	}
	sb, rest := tcb.PackSlotted(items, 1, 10, 5)
	if len(rest) != 0 || sb.SlotSize != 5 {
		t.Fatalf("slotted pack: %+v rest %v", sb, rest)
	}
	if err := tcb.PaperModelConfig(100).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, s := range []tcb.Scheme{tcb.Naive, tcb.Turbo, tcb.Concat, tcb.SlottedConcat} {
		if s.String() == "" {
			t.Fatal("scheme must render")
		}
	}
}

func TestPublicSlottedSpeedupRunner(t *testing.T) {
	var buf bytes.Buffer
	if err := tcb.RunSlottedSpeedup(&buf, 1, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatalf("missing table: %s", buf.String())
	}
}
