// Trace-replay: generate a reproducible workload trace, persist it to
// JSON, reload it, and replay the identical trace against the three
// batching schemes in the discrete-event simulator — the workflow for
// comparing systems on a fixed captured workload.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"tcb"
)

func main() {
	rate := flag.Float64("rate", 900, "arrival rate (req/s)")
	duration := flag.Float64("duration", 5, "trace duration (s)")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	dir, err := os.MkdirTemp("", "tcb-trace-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "trace.json")

	spec := tcb.PaperWorkload(*rate, *duration, *seed)
	spec.DeadlineMin, spec.DeadlineMax = 0.5, 3.0
	reqs, err := tcb.GenerateWorkload(spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := tcb.SaveWorkload(path, &spec, reqs); err != nil {
		log.Fatal(err)
	}
	_, replay, err := tcb.LoadWorkload(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d requests at %.0f req/s, persisted and reloaded from %s\n\n",
		len(replay), *rate, path)

	fmt.Printf("%-10s %12s %10s %10s %12s\n", "system", "utility", "scheduled", "expired", "resp/s")
	for _, sys := range []struct {
		name   string
		scheme tcb.Scheme
	}{
		{"DAS-TNB", tcb.Naive},
		{"DAS-TTB", tcb.Turbo},
		{"DAS-TCB", tcb.Concat},
	} {
		m, err := tcb.Simulate(tcb.SimSystem{
			Name:      sys.name,
			Scheduler: tcb.NewDAS(),
			Scheme:    sys.scheme,
			B:         64,
			L:         100,
			Cost:      tcb.CalibratedCostParams(),
		}, replay)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.1f %10d %10d %12.1f\n",
			sys.name, m.Utility, m.Scheduled, m.Expired, m.Throughput())
	}
	fmt.Println("\nreplayed the identical trace through all three schemes ✓")
}
