// Quickstart: build a small transformer, serve three sentences through
// ConcatBatching, and verify the outputs are identical to running each
// sentence alone — the correctness property §4.1 of the paper establishes
// with separate positional encoding and the block-diagonal attention mask.
package main

import (
	"fmt"
	"log"

	"tcb"
)

func main() {
	corpus := []string{
		"the quick brown fox jumps over the lazy dog",
		"concatenation reduces padded zeros",
		"transformers serve requests in batches",
	}
	v := tcb.BuildVocab(corpus)

	cfg := tcb.ModelConfig{
		VocabSize: v.Size(), DModel: 64, NumHeads: 4, DFF: 128,
		EncLayers: 2, DecLayers: 2, MaxLen: 256, Eps: 1e-5,
	}
	m := tcb.NewModel(cfg, 42)
	eng := tcb.NewEngine(m, 6)

	// Encode the three sentences and concatenate them into ONE batch row.
	var items []tcb.Item
	tokens := make(map[int64][]int)
	for i, line := range corpus {
		ids := v.Encode(line)
		id := int64(i + 1)
		items = append(items, tcb.Item{ID: id, Len: len(ids)})
		tokens[id] = ids
	}
	b, rest := tcb.PackConcat(items, 1, 32)
	if len(rest) != 0 {
		log.Fatalf("requests did not fit one row: %v", rest)
	}
	fmt.Printf("one row holds %d requests, %d/%d tokens used (%.0f%% utilization)\n",
		b.NumItems(), b.UsedTokens(), b.TotalTokens(), 100*b.Utilization())

	rep, err := eng.Run(b, tokens)
	if err != nil {
		log.Fatal(err)
	}

	// Compare against standalone inference, request by request.
	allMatch := true
	for _, r := range rep.Results {
		solo, err := eng.RunSingle(r.ID+100, tokens[r.ID])
		if err != nil {
			log.Fatal(err)
		}
		match := len(r.Output) == len(solo.Output)
		if match {
			for i := range r.Output {
				if r.Output[i] != solo.Output[i] {
					match = false
					break
				}
			}
		}
		if !match {
			allMatch = false
		}
		fmt.Printf("request %d: in=%q out=%q (matches standalone: %v)\n",
			r.ID, corpus[r.ID-1], v.Decode(r.Output), match)
	}
	if !allMatch {
		log.Fatal("ConcatBatching output diverged from standalone inference")
	}
	fmt.Println("ConcatBatching == standalone inference for every request ✓")
}
