// Scheduler-shootout: compare DAS against SJF, FCFS and DEF on the same
// TCB engine using the discrete-event serving simulator — the Fig. 15
// experiment as a runnable example with adjustable workload pressure.
package main

import (
	"flag"
	"fmt"
	"log"

	"tcb"
)

func main() {
	rate := flag.Float64("rate", 700, "arrival rate (req/s)")
	duration := flag.Float64("duration", 5, "trace duration (s)")
	b := flag.Int("b", 16, "batch rows")
	l := flag.Int("l", 100, "row length (tokens)")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	spec := tcb.PaperWorkload(*rate, *duration, *seed)
	spec.DeadlineMin, spec.DeadlineMax = 0.5, 3.0
	trace, err := tcb.GenerateWorkload(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d requests at %.0f req/s; engine: %d rows × %d tokens\n\n",
		len(trace), *rate, *b, *l)

	schedulers := []tcb.Scheduler{
		&tcb.DAS{Eta: 0.3, Q: 0.7},
		tcb.SJF{},
		tcb.FCFS{},
		tcb.DEF{},
	}
	fmt.Printf("%-8s %10s %10s %10s %12s %12s\n",
		"sched", "utility", "scheduled", "expired", "resp/s", "p95-lat(s)")
	for _, s := range schedulers {
		m, err := tcb.Simulate(tcb.SimSystem{
			Name:      s.Name(),
			Scheduler: s,
			Scheme:    tcb.Concat,
			B:         *b,
			L:         *l,
			Cost:      tcb.CalibratedCostParams(),
		}, trace)
		if err != nil {
			log.Fatal(err)
		}
		p95 := 0.0
		if m.Latency.N() > 0 {
			p95 = m.Latency.Percentile(95)
		}
		fmt.Printf("%-8s %10.1f %10d %10d %12.1f %12.3f\n",
			s.Name(), m.Utility, m.Scheduled, m.Expired, m.Throughput(), p95)
	}
	fmt.Println("\nDAS should lead on utility (the paper's Fig. 15 claim).")
}
