// Train-and-serve: the full lifecycle in one file. Train a small
// transformer on an echo task (target = source) with the backprop module,
// checkpoint it, reload it, and serve it through the TCB online server
// with DAS scheduling and ConcatBatching — then verify the served outputs
// are the learned echoes. This is the paper's serving system wrapped
// around a model that actually learned something.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"tcb"
)

const (
	vocabSize = 24
	maxSeqLen = 5
)

func main() {
	cfg := tcb.ModelConfig{
		VocabSize: vocabSize, DModel: 32, NumHeads: 4, DFF: 64,
		EncLayers: 1, DecLayers: 1, MaxLen: 64, Eps: 1e-5,
	}
	m := tcb.NewModel(cfg, 11)

	// Echo corpus: every short sequence maps to itself.
	var examples []tcb.TrainExample
	for a := tcb.FirstWordID; a < vocabSize; a++ {
		for b := tcb.FirstWordID; b < vocabSize; b += 3 {
			seq := []int{a, b, (a+b)%(vocabSize-tcb.FirstWordID) + tcb.FirstWordID}
			examples = append(examples, tcb.TrainExample{Src: seq, Tgt: seq})
		}
	}
	fmt.Printf("training on %d echo examples …\n", len(examples))
	losses, err := tcb.Fit(m, examples, tcb.TrainConfig{
		Steps: 300, BatchSize: 16, LR: 3e-3, Seed: 1,
		Progress: func(step int, loss float64) {
			if step%75 == 0 {
				fmt.Printf("  step %3d loss %.4f\n", step, loss)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  final loss %.4f\n", losses[len(losses)-1])

	// Checkpoint round trip.
	dir, err := os.MkdirTemp("", "tcb-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "echo.gob")
	if err := tcb.SaveModel(m, path); err != nil {
		log.Fatal(err)
	}
	loaded, err := tcb.LoadModel(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed and reloaded %s\n", path)

	// Serve the trained model under DAS + ConcatBatching.
	eng := tcb.NewEngine(loaded, maxSeqLen+1)
	eng.UseCache = true
	srv, err := tcb.NewServer(tcb.ServerConfig{
		Engine: eng, Scheduler: tcb.NewDAS(), Scheme: tcb.Concat,
		B: 2, L: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	tests := [][]int{
		{tcb.FirstWordID, tcb.FirstWordID + 4, tcb.FirstWordID + 7},
		{tcb.FirstWordID + 9, tcb.FirstWordID + 3, tcb.FirstWordID + 12},
		{tcb.FirstWordID + 2, tcb.FirstWordID + 15, tcb.FirstWordID + 6},
	}
	correct := 0
	for i, seq := range tests {
		ch, err := srv.Submit(seq, 5*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		resp := <-ch
		if resp.Err != nil {
			log.Fatal(resp.Err)
		}
		match := len(resp.Output) == len(seq)
		if match {
			for j := range seq {
				if resp.Output[j] != seq[j] {
					match = false
					break
				}
			}
		}
		if match {
			correct++
		}
		fmt.Printf("request %d: in=%v out=%v echo=%v\n", i+1, seq, resp.Output, match)
	}
	fmt.Printf("\n%d/%d served responses are correct echoes\n", correct, len(tests))
	if correct < 2 {
		log.Fatal("trained model failed to echo — training regressed")
	}
}
