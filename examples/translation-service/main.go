// Translation-service: run the live TCB server (DAS scheduling + pure
// ConcatBatching on the real Go transformer) against a bursty stream of
// translation-style requests, then run the identical stream through a
// FCFS + NaiveBatching server and compare served counts, deadline misses
// and latency — the paper's motivating scenario at laptop scale.
package main

import (
	"fmt"
	"log"
	"time"

	"tcb"
)

const (
	numRequests = 48
	deadline    = 1500 * time.Millisecond
	meanGapMS   = 12
)

type result struct {
	served, missed int
	p50, p95       time.Duration
}

func main() {
	cfg := tcb.ModelConfig{
		VocabSize: 512, DModel: 64, NumHeads: 4, DFF: 128,
		EncLayers: 2, DecLayers: 2, MaxLen: 256, Eps: 1e-5,
	}
	m := tcb.NewModel(cfg, 7)

	fmt.Println("running DAS + ConcatBatching …")
	das := run(m, tcb.NewDAS(), tcb.Concat)
	fmt.Println("running FCFS + NaiveBatching …")
	fcfs := run(m, tcb.FCFS{}, tcb.Naive)

	fmt.Printf("\n%-22s %8s %8s %10s %10s\n", "system", "served", "missed", "p50", "p95")
	fmt.Printf("%-22s %8d %8d %10s %10s\n", "DAS-TCB (concat)", das.served, das.missed, das.p50.Round(time.Millisecond), das.p95.Round(time.Millisecond))
	fmt.Printf("%-22s %8d %8d %10s %10s\n", "FCFS-TNB (naive)", fcfs.served, fcfs.missed, fcfs.p50.Round(time.Millisecond), fcfs.p95.Round(time.Millisecond))
	if das.served < fcfs.served {
		fmt.Println("\nnote: at this scale the gap is noisy; rerun or raise numRequests")
	} else {
		fmt.Println("\nDAS-TCB served at least as many requests within deadlines ✓")
	}
}

func run(m *tcb.Model, scheduler tcb.Scheduler, scheme tcb.Scheme) result {
	eng := tcb.NewEngine(m, 4)
	srv, err := tcb.NewServer(tcb.ServerConfig{
		Engine: eng, Scheduler: scheduler, Scheme: scheme,
		B: 4, L: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	// Deterministic bursty workload: sentence lengths cycle through a
	// "translation" mix of short chats and longer paragraphs.
	lengths := []int{5, 8, 21, 6, 34, 9, 13, 7, 40, 11, 5, 17}
	var chans []<-chan tcb.Response
	for i := 0; i < numRequests; i++ {
		l := lengths[i%len(lengths)]
		sentence := make([]int, l)
		for j := range sentence {
			sentence[j] = tcb.FirstWordID + (i*31+j*7)%400
		}
		ch, err := srv.Submit(sentence, deadline)
		if err != nil {
			log.Fatal(err)
		}
		chans = append(chans, ch)
		time.Sleep(time.Duration((i%3)+1) * meanGapMS * time.Millisecond / 2)
	}

	var latencies []time.Duration
	var res result
	for _, ch := range chans {
		resp := <-ch
		switch resp.Err {
		case nil:
			res.served++
			latencies = append(latencies, resp.Served.Sub(resp.Queued))
		case tcb.ErrDeadlineExceeded:
			res.missed++
		default:
			log.Fatalf("request failed: %v", resp.Err)
		}
	}
	if len(latencies) > 0 {
		// Insertion sort: tiny slice.
		for i := 1; i < len(latencies); i++ {
			for j := i; j > 0 && latencies[j] < latencies[j-1]; j-- {
				latencies[j], latencies[j-1] = latencies[j-1], latencies[j]
			}
		}
		res.p50 = latencies[len(latencies)/2]
		res.p95 = latencies[len(latencies)*95/100]
	}
	return res
}
