// Http-service: run the TCB server behind its stdlib HTTP front, fire a
// burst of concurrent JSON requests at it from this same process, and
// print the stats endpoint's view — the shape of a production deployment
// in one file.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"

	"tcb"
)

func main() {
	cfg := tcb.ModelConfig{
		VocabSize: 256, DModel: 48, NumHeads: 4, DFF: 96,
		EncLayers: 2, DecLayers: 2, MaxLen: 256, Eps: 1e-5,
	}
	eng := tcb.NewEngine(tcb.NewModel(cfg, 13), 4)
	eng.UseCache = true // KV-cached incremental decoding
	srv, err := tcb.NewServer(tcb.ServerConfig{
		Engine: eng, Scheduler: tcb.NewDAS(), Scheme: tcb.Concat,
		B: 4, L: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	ts := httptest.NewServer(tcb.NewHTTPHandler(srv))
	defer ts.Close()
	fmt.Println("HTTP server up at", ts.URL)

	// Fire 24 concurrent clients.
	var wg sync.WaitGroup
	var mu sync.Mutex
	ok, failed := 0, 0
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := 3 + i%9
			tokens := make([]int, n)
			for j := range tokens {
				tokens[j] = tcb.FirstWordID + (i*13+j)%200
			}
			body, _ := json.Marshal(map[string]any{
				"tokens": tokens, "deadline_ms": 3000,
			})
			resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
			mu.Lock()
			defer mu.Unlock()
			if err != nil || resp.StatusCode != http.StatusOK {
				failed++
				if resp != nil {
					resp.Body.Close()
				}
				return
			}
			var out struct {
				Output    []int   `json:"output"`
				LatencyMS float64 `json:"latency_ms"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			ok++
			if i < 3 {
				fmt.Printf("client %2d: %2d tokens in → %2d tokens out, %.1f ms\n",
					i, n, len(out.Output), out.LatencyMS)
			}
		}(i)
	}
	wg.Wait()

	stats, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer stats.Body.Close()
	var st map[string]any
	_ = json.NewDecoder(stats.Body).Decode(&st)
	fmt.Printf("\nclients: %d ok, %d failed\n", ok, failed)
	fmt.Printf("server stats: %v\n", st)
	if failed > 0 {
		log.Fatal("some requests failed")
	}
	fmt.Println("all HTTP requests served ✓")
}
