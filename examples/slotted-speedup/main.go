// Slotted-speedup: reproduce the shape of the paper's Figures 13–14 on
// your machine — the wall-clock speedup of slotted ConcatBatching over
// pure ConcatBatching as the number of slots grows, measured on the real
// Go transformer engine (identical batch content at every slot count).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tcb"
)

func main() {
	rows := flag.Int("rows", 10, "batch rows (paper: 10 for Fig. 13, 32 for Fig. 14)")
	rowLen := flag.Int("rowlen", 400, "row length in tokens (paper: 400)")
	flag.Parse()

	fmt.Printf("slotted ConcatBatching speedup, batch %d × %d tokens (real engine)\n\n",
		*rows, *rowLen)
	if err := tcb.RunSlottedSpeedup(os.Stdout, *rows, *rowLen); err != nil {
		log.Fatal(err)
	}
	fmt.Println("expected shape: speedup ≥ 1, rising with slot count, then flattening")
	fmt.Println("(paper: ≤1.18× at batch 10; ≤2.31× at batch 32, saturating near 7 slots)")
}
