package model

import (
	"math"
	"testing"
	"testing/quick"

	"tcb/internal/rng"
	"tcb/internal/tensor"
	"tcb/internal/vocab"
)

const testVocab = 50

func testModel(t testing.TB) *Model {
	t.Helper()
	cfg := Config{
		VocabSize: testVocab, DModel: 32, NumHeads: 4, DFF: 64,
		EncLayers: 2, DecLayers: 2, MaxLen: 256, Eps: 1e-5,
	}
	return New(cfg, 1234)
}

func randTokens(src *rng.Source, n int) []int {
	toks := make([]int, n)
	for i := range toks {
		toks[i] = src.IntRange(vocab.FirstWordID, testVocab-1)
	}
	return toks
}

// buildConcatRow concatenates requests into one padded row.
func buildConcatRow(requests [][]int, total int) ([]int, RowLayout) {
	lengths := make([]int, len(requests))
	for i, r := range requests {
		lengths[i] = len(r)
	}
	layout := ConcatLayout(lengths, total)
	row := make([]int, total) // zero == vocab.PadID
	off := 0
	for _, r := range requests {
		copy(row[off:], r)
		off += len(r)
	}
	return row, layout
}

func TestConfigValidate(t *testing.T) {
	good := TestConfig(100)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{VocabSize: 0, DModel: 8, NumHeads: 2, DFF: 8, MaxLen: 8, Eps: 1e-5},
		{VocabSize: 10, DModel: 0, NumHeads: 2, DFF: 8, MaxLen: 8, Eps: 1e-5},
		{VocabSize: 10, DModel: 9, NumHeads: 2, DFF: 8, MaxLen: 8, Eps: 1e-5},
		{VocabSize: 10, DModel: 8, NumHeads: 2, DFF: 0, MaxLen: 8, Eps: 1e-5},
		{VocabSize: 10, DModel: 8, NumHeads: 2, DFF: 8, MaxLen: 0, Eps: 1e-5},
		{VocabSize: 10, DModel: 8, NumHeads: 2, DFF: 8, MaxLen: 8, Eps: 0},
		{VocabSize: 10, DModel: 8, NumHeads: 2, DFF: 8, MaxLen: 8, Eps: 1e-5, EncLayers: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("config %d should fail validation: %+v", i, c)
		}
	}
	if PaperConfig(100).Validate() != nil {
		t.Fatal("PaperConfig should validate")
	}
}

func TestPositionalEncodingValues(t *testing.T) {
	pe := PositionalEncoding(10, 8)
	// Position 0: sin(0)=0 on even dims, cos(0)=1 on odd dims.
	for d := 0; d < 8; d++ {
		want := float32(0)
		if d%2 == 1 {
			want = 1
		}
		if pe.At(0, d) != want {
			t.Fatalf("PE(0,%d) = %v, want %v", d, pe.At(0, d), want)
		}
	}
	// Spot-check Eq. 1 at pos=3, dim=2: sin(3 / 10000^(2/8)).
	want := float32(math.Sin(3 / math.Pow(10000, 2.0/8)))
	if got := pe.At(3, 2); math.Abs(float64(got-want)) > 1e-6 {
		t.Fatalf("PE(3,2) = %v, want %v", got, want)
	}
	// Eq. 2 at pos=3, dim=5: cos(3 / 10000^(5/8)).
	want = float32(math.Cos(3 / math.Pow(10000, 5.0/8)))
	if got := pe.At(3, 5); math.Abs(float64(got-want)) > 1e-6 {
		t.Fatalf("PE(3,5) = %v, want %v", got, want)
	}
}

func TestSeparatePEMatchesStandalonePositions(t *testing.T) {
	pe := PositionalEncoding(32, 8)
	layout := ConcatLayout([]int{3, 4}, 10)
	x := tensor.New(10, 8) // zeros: output == the PE added
	AddPositionalSeparate(x, pe, layout)
	// Second segment's token k must carry PE(k), not PE(3+k).
	for k := 0; k < 4; k++ {
		for d := 0; d < 8; d++ {
			if x.At(3+k, d) != pe.At(k, d) {
				t.Fatalf("segment 2 token %d dim %d: got %v, want PE(%d)=%v",
					k, d, x.At(3+k, d), k, pe.At(k, d))
			}
		}
	}
	// Padding rows must stay zero.
	for p := 7; p < 10; p++ {
		for d := 0; d < 8; d++ {
			if x.At(p, d) != 0 {
				t.Fatalf("padding row %d received positional encoding", p)
			}
		}
	}
}

func TestTraditionalPEUsesRowOffsets(t *testing.T) {
	pe := PositionalEncoding(32, 8)
	x := tensor.New(10, 8)
	AddPositionalTraditional(x, pe)
	for p := 0; p < 10; p++ {
		if x.At(p, 0) != pe.At(p, 0) {
			t.Fatalf("traditional PE row %d wrong", p)
		}
	}
}

// The central correctness claim of §4.1: encoding a concatenated row with
// separate PE + block-diagonal mask gives, for every request, exactly the
// hidden states it would get when served alone.
func TestConcatEncodeEqualsStandalone(t *testing.T) {
	m := testModel(t)
	src := rng.New(7)
	requests := [][]int{
		randTokens(src, 5),
		randTokens(src, 9),
		randTokens(src, 3),
	}
	row, layout := buildConcatRow(requests, 24)
	out := m.EncodeRow(row, layout, nil, AttDense, true)
	for i, req := range requests {
		solo := m.EncodeSingle(req)
		seg := layout.Segments[i]
		got := out.Slice(seg.Start, seg.End())
		if !got.AllClose(solo, 1e-3) {
			t.Fatalf("request %d: concat encode differs from standalone by %g",
				i, got.MaxAbsDiff(solo))
		}
	}
}

// Negative control: with the traditional whole-row PE the results must NOT
// match standalone inference — this is exactly why §4.1.1 exists.
func TestTraditionalPEBreaksConcat(t *testing.T) {
	m := testModel(t)
	src := rng.New(8)
	requests := [][]int{randTokens(src, 4), randTokens(src, 6)}
	row, layout := buildConcatRow(requests, 10)
	// Bypass the safety check by encoding manually with traditional PE.
	x := m.P.Embed(row)
	AddPositionalTraditional(x, m.P.PosEnc)
	mask := layout.BuildMask()
	for _, layer := range m.P.Encoder {
		attn := MultiHeadAttention(layer.SelfAttn, m.Cfg.NumHeads, x, x, mask)
		tensor.AddInPlace(x, attn)
		layer.Norm1.Apply(x)
		ff := layer.FFN.Apply(x)
		tensor.AddInPlace(x, ff)
		layer.Norm2.Apply(x)
	}
	seg := layout.Segments[1]
	got := x.Slice(seg.Start, seg.End())
	solo := m.EncodeSingle(requests[1])
	if got.AllClose(solo, 1e-3) {
		t.Fatal("traditional PE should corrupt the second request's encoding")
	}
}

// Negative control: without the mask, inter-request attention corrupts
// results — why §4.1.2 exists.
func TestMissingMaskBreaksConcat(t *testing.T) {
	m := testModel(t)
	src := rng.New(9)
	requests := [][]int{randTokens(src, 4), randTokens(src, 6)}
	row, layout := buildConcatRow(requests, 10)
	x := m.embedRow(row, layout, true)
	for _, layer := range m.P.Encoder {
		attn := MultiHeadAttention(layer.SelfAttn, m.Cfg.NumHeads, x, x, nil)
		tensor.AddInPlace(x, attn)
		layer.Norm1.Apply(x)
		ff := layer.FFN.Apply(x)
		tensor.AddInPlace(x, ff)
		layer.Norm2.Apply(x)
	}
	seg := layout.Segments[0]
	got := x.Slice(seg.Start, seg.End())
	solo := m.EncodeSingle(requests[0])
	if got.AllClose(solo, 1e-3) {
		t.Fatal("unmasked concat attention should corrupt results")
	}
}

// Slotted attention (Eq. 8) must be numerically equivalent to dense masked
// attention for any slot partition.
func TestSlottedEqualsDense(t *testing.T) {
	m := testModel(t)
	src := rng.New(10)
	requests := [][]int{
		randTokens(src, 4), randTokens(src, 3),
		randTokens(src, 5), randTokens(src, 2),
	}
	row, layout := buildConcatRow(requests, 18)
	dense := m.EncodeRow(row, layout, nil, AttDense, true)
	for _, size := range []int{5, 7, 9, 14} {
		slots, err := layout.SlotsOfSize(size)
		if err != nil {
			t.Fatal(err)
		}
		slotted := m.EncodeRow(row, layout, slots, AttSlotted, true)
		if !slotted.AllClose(dense, 1e-3) {
			t.Fatalf("slot size %d: slotted differs from dense by %g",
				size, slotted.MaxAbsDiff(dense))
		}
	}
}

func TestSlottedWithWholeRowSlotEqualsDense(t *testing.T) {
	m := testModel(t)
	src := rng.New(11)
	requests := [][]int{randTokens(src, 6), randTokens(src, 4)}
	row, layout := buildConcatRow(requests, 12)
	dense := m.EncodeRow(row, layout, nil, AttDense, true)
	slotted := m.EncodeRow(row, layout, layout.WholeRowSlot(), AttSlotted, true)
	if !slotted.AllClose(dense, 1e-3) {
		t.Fatalf("whole-row slot differs from dense by %g", slotted.MaxAbsDiff(dense))
	}
}

func TestEncodeRowRejectsConcatWithoutSeparatePE(t *testing.T) {
	m := testModel(t)
	row, layout := buildConcatRow([][]int{{5, 6}, {7, 8}}, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: concat rows need separate PE")
		}
	}()
	m.EncodeRow(row, layout, nil, AttDense, false)
}

// Padding must not influence results: the same requests with different
// amounts of trailing padding encode identically.
func TestPaddingInvariance(t *testing.T) {
	m := testModel(t)
	src := rng.New(12)
	requests := [][]int{randTokens(src, 4), randTokens(src, 5)}
	rowA, layoutA := buildConcatRow(requests, 9) // exactly full
	rowB, layoutB := buildConcatRow(requests, 20)
	outA := m.EncodeRow(rowA, layoutA, nil, AttDense, true)
	outB := m.EncodeRow(rowB, layoutB, nil, AttDense, true)
	if !outB.Slice(0, 9).AllClose(outA, 1e-3) {
		t.Fatalf("padding changed results by %g", outB.Slice(0, 9).MaxAbsDiff(outA))
	}
}

// Generation over a concatenated row must emit the same tokens as running
// each request alone.
func TestGenerateRowEqualsStandalone(t *testing.T) {
	m := testModel(t)
	src := rng.New(13)
	requests := [][]int{randTokens(src, 5), randTokens(src, 7), randTokens(src, 3)}
	row, layout := buildConcatRow(requests, 20)
	encOut := m.EncodeRow(row, layout, nil, AttDense, true)
	batch := m.GenerateRow(encOut, layout, nil, 6, AttDense)

	for i, req := range requests {
		soloLayout := SingleSegment(len(req), len(req))
		soloEnc := m.EncodeRow(req, soloLayout, nil, AttDense, true)
		solo := m.GenerateRow(soloEnc, soloLayout, nil, 6, AttDense)
		if len(solo) != 1 {
			t.Fatalf("solo results = %d", len(solo))
		}
		if len(batch[i].Tokens) != len(solo[0].Tokens) {
			t.Fatalf("request %d: batch generated %v, solo %v",
				i, batch[i].Tokens, solo[0].Tokens)
		}
		for j := range solo[0].Tokens {
			if batch[i].Tokens[j] != solo[0].Tokens[j] {
				t.Fatalf("request %d token %d: batch %d != solo %d",
					i, j, batch[i].Tokens[j], solo[0].Tokens[j])
			}
		}
	}
}

// Slotted generation must agree with dense generation token for token.
func TestGenerateRowSlottedEqualsDense(t *testing.T) {
	m := testModel(t)
	src := rng.New(14)
	requests := [][]int{randTokens(src, 4), randTokens(src, 4), randTokens(src, 6)}
	row, layout := buildConcatRow(requests, 16)
	slots, err := layout.SlotsOfSize(8)
	if err != nil {
		t.Fatal(err)
	}
	encDense := m.EncodeRow(row, layout, nil, AttDense, true)
	encSlot := m.EncodeRow(row, layout, slots, AttSlotted, true)
	dense := m.GenerateRow(encDense, layout, nil, 5, AttDense)
	slotted := m.GenerateRow(encSlot, layout, slots, 5, AttSlotted)
	for i := range dense {
		if len(dense[i].Tokens) != len(slotted[i].Tokens) {
			t.Fatalf("request %d: dense %v vs slotted %v", i, dense[i].Tokens, slotted[i].Tokens)
		}
		for j := range dense[i].Tokens {
			if dense[i].Tokens[j] != slotted[i].Tokens[j] {
				t.Fatalf("request %d token %d differs", i, j)
			}
		}
	}
}

func TestGenerateRowRespectsMaxNew(t *testing.T) {
	m := testModel(t)
	src := rng.New(15)
	req := randTokens(src, 5)
	layout := SingleSegment(5, 5)
	encOut := m.EncodeRow(req, layout, nil, AttDense, true)
	for _, maxNew := range []int{0, 1, 3} {
		res := m.GenerateRow(encOut, layout, nil, maxNew, AttDense)
		if len(res[0].Tokens) > maxNew {
			t.Fatalf("maxNew %d: generated %d tokens", maxNew, len(res[0].Tokens))
		}
		if res[0].Steps > maxNew {
			t.Fatalf("maxNew %d: took %d steps", maxNew, res[0].Steps)
		}
	}
}

func TestRegroupSlots(t *testing.T) {
	encLayout := ConcatLayout([]int{3, 4, 2}, 12)
	encSlots, err := encLayout.SlotsOfSize(7)
	if err != nil {
		t.Fatal(err)
	}
	decLayout := ConcatLayout([]int{1, 2, 5}, 8)
	dec := regroupSlots(encSlots, decLayout)
	if len(dec) != len(encSlots) {
		t.Fatalf("regrouped %d slots, want %d", len(dec), len(encSlots))
	}
	// Slot 0 groups segments {0,1}: decoder offsets 0..3.
	if dec[0].Start != 0 || dec[0].Len != 3 {
		t.Fatalf("dec slot 0 = %+v", dec[0])
	}
	// Slot 1 groups segment {2}: decoder offsets 3..8.
	if dec[1].Start != 3 || dec[1].Len != 5 {
		t.Fatalf("dec slot 1 = %+v", dec[1])
	}
}

func TestEmbedRowLengthMismatchPanics(t *testing.T) {
	m := testModel(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on token/layout mismatch")
		}
	}()
	m.embedRow([]int{1, 2, 3}, SingleSegment(2, 2), true)
}

// Property: for random request sets, concat encoding equals standalone
// encoding for every request. Small dims keep the property test fast.
func TestConcatEquivalenceProperty(t *testing.T) {
	cfg := Config{VocabSize: 30, DModel: 16, NumHeads: 2, DFF: 32,
		EncLayers: 1, DecLayers: 1, MaxLen: 64, Eps: 1e-5}
	m := New(cfg, 99)
	f := func(seed uint16, n uint8) bool {
		src := rng.New(uint64(seed) + 1)
		count := int(n%3) + 1
		var requests [][]int
		total := 0
		for i := 0; i < count; i++ {
			l := src.IntRange(1, 8)
			toks := make([]int, l)
			for j := range toks {
				toks[j] = src.IntRange(vocab.FirstWordID, 29)
			}
			requests = append(requests, toks)
			total += l
		}
		row, layout := buildConcatRow(requests, total+int(n%4))
		out := m.EncodeRow(row, layout, nil, AttDense, true)
		for i, req := range requests {
			solo := m.EncodeSingle(req)
			seg := layout.Segments[i]
			if !out.Slice(seg.Start, seg.End()).AllClose(solo, 5e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAttentionModeString(t *testing.T) {
	if AttDense.String() != "dense" || AttSlotted.String() != "slotted" {
		t.Fatal("mode names wrong")
	}
	if AttentionMode(9).String() == "" {
		t.Fatal("unknown mode should still render")
	}
}

func BenchmarkEncodeDense(b *testing.B) {
	m := testModel(b)
	src := rng.New(1)
	requests := [][]int{randTokens(src, 20), randTokens(src, 20), randTokens(src, 20), randTokens(src, 20)}
	row, layout := buildConcatRow(requests, 80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EncodeRow(row, layout, nil, AttDense, true)
	}
}

func BenchmarkEncodeSlotted(b *testing.B) {
	m := testModel(b)
	src := rng.New(1)
	requests := [][]int{randTokens(src, 20), randTokens(src, 20), randTokens(src, 20), randTokens(src, 20)}
	row, layout := buildConcatRow(requests, 80)
	slots, err := layout.SlotsOfSize(20)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EncodeRow(row, layout, slots, AttSlotted, true)
	}
}
