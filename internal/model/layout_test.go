package model

import (
	"testing"
	"testing/quick"

	"tcb/internal/tensor"
)

func TestConcatLayoutOffsets(t *testing.T) {
	l := ConcatLayout([]int{3, 5, 2}, 12)
	want := []Segment{{0, 3}, {3, 5}, {8, 2}}
	if len(l.Segments) != 3 {
		t.Fatalf("segments = %d, want 3", len(l.Segments))
	}
	for i, s := range want {
		if l.Segments[i] != s {
			t.Fatalf("segment %d = %+v, want %+v", i, l.Segments[i], s)
		}
	}
	if l.Used() != 10 || l.PaddedTokens() != 2 {
		t.Fatalf("used/padded = %d/%d, want 10/2", l.Used(), l.PaddedTokens())
	}
}

func TestConcatLayoutOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overflow")
		}
	}()
	ConcatLayout([]int{5, 6}, 10)
}

func TestConcatLayoutZeroLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero-length segment")
		}
	}()
	ConcatLayout([]int{3, 0}, 10)
}

func TestSingleSegment(t *testing.T) {
	l := SingleSegment(4, 10)
	if l.Used() != 4 || l.PaddedTokens() != 6 || len(l.Segments) != 1 {
		t.Fatalf("unexpected layout %+v", l)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsNonContiguous(t *testing.T) {
	l := RowLayout{Segments: []Segment{{0, 3}, {4, 2}}, Total: 10}
	if l.Validate() == nil {
		t.Fatal("gap between segments should fail validation")
	}
	l = RowLayout{Segments: []Segment{{0, 3}, {2, 2}}, Total: 10}
	if l.Validate() == nil {
		t.Fatal("overlapping segments should fail validation")
	}
	l = RowLayout{Segments: []Segment{{0, 11}}, Total: 10}
	if l.Validate() == nil {
		t.Fatal("overflowing segment should fail validation")
	}
}

func TestSegmentOf(t *testing.T) {
	l := ConcatLayout([]int{2, 3}, 8)
	cases := map[int]int{0: 0, 1: 0, 2: 1, 4: 1, 5: -1, 7: -1}
	for pos, want := range cases {
		if got := l.SegmentOf(pos); got != want {
			t.Fatalf("SegmentOf(%d) = %d, want %d", pos, got, want)
		}
	}
}

func TestBuildMaskBlockDiagonal(t *testing.T) {
	l := ConcatLayout([]int{2, 2}, 5)
	m := l.BuildMask()
	if m.Rows != 5 || m.Cols != 5 {
		t.Fatalf("mask shape %dx%d", m.Rows, m.Cols)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			si, sj := l.SegmentOf(i), l.SegmentOf(j)
			wantOpen := si >= 0 && si == sj
			isOpen := m.At(i, j) == 0
			if isOpen != wantOpen {
				t.Fatalf("mask[%d][%d] open=%v, want %v", i, j, isOpen, wantOpen)
			}
			if !isOpen && m.At(i, j) != tensor.NegInf {
				t.Fatalf("closed entry should be NegInf, got %v", m.At(i, j))
			}
		}
	}
}

func TestBuildCausalMask(t *testing.T) {
	l := ConcatLayout([]int{3, 2}, 5)
	m := l.BuildCausalMask()
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			si, sj := l.SegmentOf(i), l.SegmentOf(j)
			wantOpen := si >= 0 && si == sj && j <= i
			if (m.At(i, j) == 0) != wantOpen {
				t.Fatalf("causal mask[%d][%d] wrong", i, j)
			}
		}
	}
}

func TestBuildCrossMask(t *testing.T) {
	dec := ConcatLayout([]int{2, 2}, 4)
	enc := ConcatLayout([]int{3, 4}, 8)
	m := dec.BuildCrossMask(enc)
	if m.Rows != 4 || m.Cols != 8 {
		t.Fatalf("cross mask shape %dx%d", m.Rows, m.Cols)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			wantOpen := dec.SegmentOf(i) >= 0 && dec.SegmentOf(i) == enc.SegmentOf(j)
			if (m.At(i, j) == 0) != wantOpen {
				t.Fatalf("cross mask[%d][%d] wrong", i, j)
			}
		}
	}
}

func TestBuildCrossMaskSegmentCountMismatchPanics(t *testing.T) {
	dec := ConcatLayout([]int{2}, 2)
	enc := ConcatLayout([]int{2, 2}, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on segment count mismatch")
		}
	}()
	dec.BuildCrossMask(enc)
}

func TestSlotsOfSizeBasic(t *testing.T) {
	l := ConcatLayout([]int{3, 4, 2, 5}, 20)
	slots, err := l.SlotsOfSize(7)
	if err != nil {
		t.Fatal(err)
	}
	// 3+4=7 fits slot 1; 2+5=7 fits slot 2.
	if len(slots) != 2 {
		t.Fatalf("slots = %d, want 2: %+v", len(slots), slots)
	}
	if slots[0].Start != 0 || slots[0].Len != 7 || len(slots[0].SegIdx) != 2 {
		t.Fatalf("slot0 = %+v", slots[0])
	}
	if slots[1].Start != 7 || slots[1].Len != 7 {
		t.Fatalf("slot1 = %+v", slots[1])
	}
}

func TestSlotsOfSizeNeverSplitsSegments(t *testing.T) {
	l := ConcatLayout([]int{4, 4, 4}, 12)
	slots, err := l.SlotsOfSize(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 3 {
		t.Fatalf("each 4-token segment needs its own 6-slot, got %+v", slots)
	}
}

func TestSlotsOfSizeRejectsOversizedSegment(t *testing.T) {
	l := ConcatLayout([]int{10}, 10)
	if _, err := l.SlotsOfSize(5); err == nil {
		t.Fatal("expected error for segment longer than slot")
	}
	if _, err := l.SlotsOfSize(0); err == nil {
		t.Fatal("expected error for non-positive slot size")
	}
}

func TestWholeRowSlot(t *testing.T) {
	l := ConcatLayout([]int{3, 2}, 10)
	slots := l.WholeRowSlot()
	if len(slots) != 1 || slots[0].Start != 0 || slots[0].Len != 5 || len(slots[0].SegIdx) != 2 {
		t.Fatalf("WholeRowSlot = %+v", slots)
	}
	empty := RowLayout{Total: 5}
	if empty.WholeRowSlot() != nil {
		t.Fatal("empty layout should yield no slots")
	}
}

func TestScoreAreaShrinksWithSlots(t *testing.T) {
	l := ConcatLayout([]int{4, 4, 4, 4}, 16)
	whole := ScoreArea(l.WholeRowSlot())
	slots, err := l.SlotsOfSize(4)
	if err != nil {
		t.Fatal(err)
	}
	slotted := ScoreArea(slots)
	if whole != 256 || slotted != 64 {
		t.Fatalf("areas = %d/%d, want 256/64", whole, slotted)
	}
}

// Property: any slot partition covers every segment exactly once, keeps
// slots within the size bound, and never reduces below the per-segment area.
func TestSlotsPartitionProperty(t *testing.T) {
	f := func(raw []uint8, sizeRaw uint8) bool {
		var lengths []int
		total := 0
		for _, r := range raw {
			l := int(r%9) + 1 // lengths 1..9
			if total+l > 200 {
				break
			}
			lengths = append(lengths, l)
			total += l
		}
		if len(lengths) == 0 {
			return true
		}
		size := int(sizeRaw%20) + 9 // ≥ max possible segment length
		layout := ConcatLayout(lengths, total)
		slots, err := layout.SlotsOfSize(size)
		if err != nil {
			return false
		}
		covered := make(map[int]bool)
		for _, s := range slots {
			if s.Len > size || s.Len <= 0 {
				return false
			}
			for _, si := range s.SegIdx {
				if covered[si] {
					return false // segment in two slots
				}
				covered[si] = true
			}
			// Slot must exactly span its segments.
			first := layout.Segments[s.SegIdx[0]]
			last := layout.Segments[s.SegIdx[len(s.SegIdx)-1]]
			if s.Start != first.Start || s.Start+s.Len != last.End() {
				return false
			}
		}
		if len(covered) != len(lengths) {
			return false
		}
		// Slotting can only shrink the score area vs the whole row.
		return ScoreArea(slots) <= ScoreArea(layout.WholeRowSlot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
