package model

import (
	"fmt"
	"math"

	"tcb/internal/tensor"
	"tcb/internal/vocab"
)

// DecodeState is the KV-cached incremental decoder for one (possibly
// concatenated) row: instead of re-running the decoder stack over the full
// prefix at every step (O(T²) token passes, what GenerateRow does), it
// caches each layer's self-attention keys/values per segment and the
// cross-attention keys/values once, advancing every live segment by one
// token per Step.
//
// Correctness relies on the same isolation ConcatBatching establishes for
// the batch case: a segment's cached keys/values are exactly the rows the
// block-diagonal mask would have exposed, so cached decoding produces the
// same tokens as mask-based decoding (tested to exact token equality).
type DecodeState struct {
	m         *Model
	encLayout RowLayout
	nSeg      int

	// Per decoder layer caches.
	layers []*layerCache

	prefixLen []int  // tokens decoded so far per segment (BOS included)
	finished  []bool // segment has emitted EOS or hit its cap
}

// layerCache holds one decoder layer's attention caches.
type layerCache struct {
	// selfK[i] / selfV[i]: cached projected key/value rows (d wide) of
	// segment i, one per decoded position.
	selfK, selfV [][][]float32
	// crossK[i] / crossV[i]: fixed projected encoder keys/values of
	// segment i.
	crossK, crossV []*tensor.Matrix
}

// NewDecodeState precomputes the cross-attention caches from the encoder
// output and returns a state ready for Step.
func (m *Model) NewDecodeState(encOut *tensor.Matrix, encLayout RowLayout) *DecodeState {
	nSeg := len(encLayout.Segments)
	s := &DecodeState{
		m:         m,
		encLayout: encLayout,
		nSeg:      nSeg,
		prefixLen: make([]int, nSeg),
		finished:  make([]bool, nSeg),
	}
	for range m.P.Decoder {
		s.layers = append(s.layers, &layerCache{
			selfK:  make([][][]float32, nSeg),
			selfV:  make([][][]float32, nSeg),
			crossK: make([]*tensor.Matrix, nSeg),
			crossV: make([]*tensor.Matrix, nSeg),
		})
	}
	for li, layer := range m.P.Decoder {
		k := layer.CrossAttn.WK.Apply(encOut)
		v := layer.CrossAttn.WV.Apply(encOut)
		for i, seg := range encLayout.Segments {
			s.layers[li].crossK[i] = k.Slice(seg.Start, seg.End())
			s.layers[li].crossV[i] = v.Slice(seg.Start, seg.End())
		}
	}
	return s
}

// Finished reports whether segment i has stopped decoding.
func (s *DecodeState) Finished(i int) bool { return s.finished[i] }

// MarkFinished stops segment i (cap reached or EOS seen by the caller).
func (s *DecodeState) MarkFinished(i int) { s.finished[i] = true }

// AllFinished reports whether every segment has stopped.
func (s *DecodeState) AllFinished() bool {
	for _, f := range s.finished {
		if !f {
			return false
		}
	}
	return true
}

// Step feeds one token per segment (tokens[i] is ignored for finished
// segments) and returns the vocabulary logits for each live segment
// (nil rows for finished ones). The first call must pass vocab.BosID for
// every segment.
func (s *DecodeState) Step(tokens []int) ([][]float32, error) {
	if len(tokens) != s.nSeg {
		return nil, fmt.Errorf("model: Step got %d tokens for %d segments", len(tokens), s.nSeg)
	}
	// Gather the live segments.
	var live []int
	for i := 0; i < s.nSeg; i++ {
		if !s.finished[i] {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return make([][]float32, s.nSeg), nil
	}
	// Embed the new token of every live segment at its own position —
	// separate positional encoding, per segment, by construction.
	d := s.m.Cfg.DModel
	x := tensor.New(len(live), d)
	for r, i := range live {
		id := tokens[i]
		if id < 0 || id >= s.m.Cfg.VocabSize {
			return nil, fmt.Errorf("model: token %d out of vocabulary", id)
		}
		copy(x.Row(r), s.m.P.Embedding.Row(id))
		pos := s.prefixLen[i]
		if pos >= s.m.P.PosEnc.Rows {
			return nil, fmt.Errorf("model: segment %d position %d beyond MaxLen", i, pos)
		}
		peRow := s.m.P.PosEnc.Row(pos)
		row := x.Row(r)
		for j := range row {
			row[j] += peRow[j]
		}
		s.prefixLen[i]++
	}

	heads := s.m.Cfg.NumHeads
	dh := s.m.Cfg.HeadDim()
	scale := float32(1 / math.Sqrt(float64(dh)))
	for li, layer := range s.m.P.Decoder {
		cache := s.layers[li]
		// Self-attention with per-segment KV cache (causal by
		// construction: the cache only holds the past).
		q := layer.SelfAttn.WQ.Apply(x)
		k := layer.SelfAttn.WK.Apply(x)
		v := layer.SelfAttn.WV.Apply(x)
		attn := tensor.New(len(live), d)
		for r, i := range live {
			kRow := append([]float32(nil), k.Row(r)...)
			vRow := append([]float32(nil), v.Row(r)...)
			cache.selfK[i] = append(cache.selfK[i], kRow)
			cache.selfV[i] = append(cache.selfV[i], vRow)
			attendCached(attn.Row(r), q.Row(r), cache.selfK[i], cache.selfV[i], heads, dh, scale)
		}
		proj := layer.SelfAttn.WO.Apply(attn)
		tensor.AddInPlace(x, proj)
		layer.Norm1.Apply(x)

		// Cross-attention against the fixed encoder cache of the own
		// segment only.
		q = layer.CrossAttn.WQ.Apply(x)
		attn = tensor.New(len(live), d)
		for r, i := range live {
			attendMatrix(attn.Row(r), q.Row(r), cache.crossK[i], cache.crossV[i], heads, dh, scale)
		}
		proj = layer.CrossAttn.WO.Apply(attn)
		tensor.AddInPlace(x, proj)
		layer.Norm2.Apply(x)

		ff := layer.FFN.Apply(x)
		tensor.AddInPlace(x, ff)
		layer.Norm3.Apply(x)
	}

	logits := s.m.P.OutProj.Apply(x)
	out := make([][]float32, s.nSeg)
	for r, i := range live {
		out[i] = append([]float32(nil), logits.Row(r)...)
	}
	return out, nil
}

// attendCached computes multi-head attention of a single query row over
// cached key/value rows, writing the concatenated head outputs to dst.
func attendCached(dst, q []float32, keys, vals [][]float32, heads, dh int, scale float32) {
	n := len(keys)
	scores := make([]float32, n)
	for h := 0; h < heads; h++ {
		c0 := h * dh
		// Scores for this head.
		maxv := float32(math.Inf(-1))
		for t := 0; t < n; t++ {
			var sum float32
			kRow := keys[t]
			for j := 0; j < dh; j++ {
				sum += q[c0+j] * kRow[c0+j]
			}
			sum *= scale
			scores[t] = sum
			if sum > maxv {
				maxv = sum
			}
		}
		var norm float32
		for t := 0; t < n; t++ {
			e := float32(math.Exp(float64(scores[t] - maxv)))
			scores[t] = e
			norm += e
		}
		inv := 1 / norm
		for j := 0; j < dh; j++ {
			dst[c0+j] = 0
		}
		for t := 0; t < n; t++ {
			a := scores[t] * inv
			vRow := vals[t]
			for j := 0; j < dh; j++ {
				dst[c0+j] += a * vRow[c0+j]
			}
		}
	}
}

// attendMatrix is attendCached over matrix-backed keys/values.
func attendMatrix(dst, q []float32, keys, vals *tensor.Matrix, heads, dh int, scale float32) {
	n := keys.Rows
	scores := make([]float32, n)
	for h := 0; h < heads; h++ {
		c0 := h * dh
		maxv := float32(math.Inf(-1))
		for t := 0; t < n; t++ {
			var sum float32
			kRow := keys.Row(t)
			for j := 0; j < dh; j++ {
				sum += q[c0+j] * kRow[c0+j]
			}
			sum *= scale
			scores[t] = sum
			if sum > maxv {
				maxv = sum
			}
		}
		var norm float32
		for t := 0; t < n; t++ {
			e := float32(math.Exp(float64(scores[t] - maxv)))
			scores[t] = e
			norm += e
		}
		inv := 1 / norm
		for j := 0; j < dh; j++ {
			dst[c0+j] = 0
		}
		for t := 0; t < n; t++ {
			a := scores[t] * inv
			vRow := vals.Row(t)
			for j := 0; j < dh; j++ {
				dst[c0+j] += a * vRow[c0+j]
			}
		}
	}
}

// GenerateRowCached mirrors GenerateRowCapped using the KV-cached
// incremental decoder: same greedy decoding, same outputs, O(T) token
// passes per segment instead of O(T²).
func (m *Model) GenerateRowCached(encOut *tensor.Matrix, encLayout RowLayout, caps []int) ([]GenerateResult, error) {
	nSeg := len(encLayout.Segments)
	if len(caps) != nSeg {
		return nil, fmt.Errorf("model: %d caps for %d segments", len(caps), nSeg)
	}
	st := m.NewDecodeState(encOut, encLayout)
	results := make([]GenerateResult, nSeg)
	next := make([]int, nSeg)
	for i := range next {
		next[i] = vocab.BosID
		if caps[i] <= 0 {
			st.MarkFinished(i)
		}
	}
	maxNew := 0
	for _, c := range caps {
		if c > maxNew {
			maxNew = c
		}
	}
	for step := 0; step < maxNew && !st.AllFinished(); step++ {
		logits, err := st.Step(next)
		if err != nil {
			return nil, err
		}
		for i := 0; i < nSeg; i++ {
			if st.Finished(i) || logits[i] == nil {
				continue
			}
			best, bestj := float32(math.Inf(-1)), 0
			for j, v := range logits[i] {
				if v > best {
					best, bestj = v, j
				}
			}
			results[i].Steps = step + 1
			if bestj == vocab.EosID {
				st.MarkFinished(i)
				continue
			}
			results[i].Tokens = append(results[i].Tokens, bestj)
			next[i] = bestj
			if len(results[i].Tokens) >= caps[i] {
				st.MarkFinished(i)
			}
		}
	}
	return results, nil
}
