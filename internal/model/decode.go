package model

import (
	"fmt"
	"math"

	"tcb/internal/tensor"
	"tcb/internal/vocab"
)

// DecodeState is the KV-cached incremental decoder for one (possibly
// concatenated) row: instead of re-running the decoder stack over the full
// prefix at every step (O(T²) token passes, what GenerateRow does), it
// caches each layer's self-attention keys/values per segment and the
// cross-attention keys/values once, advancing every live segment by one
// token per Step.
//
// Correctness relies on the same isolation ConcatBatching establishes for
// the batch case: a segment's cached keys/values are exactly the rows the
// block-diagonal mask would have exposed, so cached decoding produces the
// same tokens as mask-based decoding (tested to exact token equality).
//
// All step buffers and KV caches are allocated once at construction, sized
// by the model's MaxLen bound on decode positions, so a warm state performs
// zero heap allocations per Step — the property the alloc regression tests
// pin down.
type DecodeState struct {
	m         *Model
	encLayout RowLayout
	nSeg      int

	// Per decoder layer caches.
	layers []*layerCache

	prefixLen []int  // tokens decoded so far per segment (BOS included)
	finished  []bool // segment has emitted EOS or hit its cap

	// Preallocated step buffers, resized (never reallocated) to the number
	// of live segments each Step.
	x      *tensor.Matrix // live × dModel hidden states
	q      *tensor.Matrix // live × dModel projection scratch
	attn   *tensor.Matrix // live × dModel attention output
	proj   *tensor.Matrix // live × dModel WO projection / FFN output
	ff     *tensor.Matrix // live × dFF FFN hidden
	logits *tensor.Matrix // live × vocab output logits

	scores []float32 // attention scratch, one cache's worth of weights
	live   []int     // live segment indices, rebuilt each Step
	out    [][]float32
}

// layerCache holds one decoder layer's attention caches.
type layerCache struct {
	// selfK[i] / selfV[i]: cached projected key/value rows (d wide) of
	// segment i, one row per decoded position. Capacity is reserved up
	// front (MaxLen rows), so appends never reallocate.
	selfK, selfV []*tensor.Matrix
	// crossK[i] / crossV[i]: fixed projected encoder keys/values of
	// segment i.
	crossK, crossV []*tensor.Matrix
	// kv holds freshly projected keys and values for the step's live rows
	// before they are appended to the per-segment caches.
	k, v *tensor.Matrix
}

// NewDecodeState precomputes the cross-attention caches from the encoder
// output, reserves every per-step buffer, and returns a state ready for
// Step.
func (m *Model) NewDecodeState(encOut *tensor.Matrix, encLayout RowLayout) *DecodeState {
	nSeg := len(encLayout.Segments)
	d := m.Cfg.DModel
	maxLen := m.P.PosEnc.Rows // Step rejects positions beyond this bound
	s := &DecodeState{
		m:         m,
		encLayout: encLayout,
		nSeg:      nSeg,
		prefixLen: make([]int, nSeg),
		finished:  make([]bool, nSeg),
		x:         tensor.New(nSeg, d),
		q:         tensor.New(nSeg, d),
		attn:      tensor.New(nSeg, d),
		proj:      tensor.New(nSeg, d),
		ff:        tensor.New(nSeg, m.Cfg.DFF),
		logits:    tensor.New(nSeg, m.Cfg.VocabSize),
		live:      make([]int, 0, nSeg),
		out:       make([][]float32, nSeg),
	}
	scoreLen := maxLen
	for _, seg := range encLayout.Segments {
		if seg.Len > scoreLen {
			scoreLen = seg.Len
		}
	}
	s.scores = make([]float32, scoreLen)
	for range m.P.Decoder {
		lc := &layerCache{
			selfK:  make([]*tensor.Matrix, nSeg),
			selfV:  make([]*tensor.Matrix, nSeg),
			crossK: make([]*tensor.Matrix, nSeg),
			crossV: make([]*tensor.Matrix, nSeg),
			k:      tensor.New(nSeg, d),
			v:      tensor.New(nSeg, d),
		}
		for i := 0; i < nSeg; i++ {
			lc.selfK[i] = &tensor.Matrix{Cols: d, Data: make([]float32, 0, maxLen*d)}
			lc.selfV[i] = &tensor.Matrix{Cols: d, Data: make([]float32, 0, maxLen*d)}
		}
		s.layers = append(s.layers, lc)
	}
	for li, layer := range m.P.Decoder {
		k := layer.CrossAttn.WK.Apply(encOut)
		v := layer.CrossAttn.WV.Apply(encOut)
		for i, seg := range encLayout.Segments {
			s.layers[li].crossK[i] = k.Slice(seg.Start, seg.End())
			s.layers[li].crossV[i] = v.Slice(seg.Start, seg.End())
		}
	}
	return s
}

// Finished reports whether segment i has stopped decoding.
func (s *DecodeState) Finished(i int) bool { return s.finished[i] }

// MarkFinished stops segment i (cap reached or EOS seen by the caller).
func (s *DecodeState) MarkFinished(i int) { s.finished[i] = true }

// AllFinished reports whether every segment has stopped.
func (s *DecodeState) AllFinished() bool {
	for _, f := range s.finished {
		if !f {
			return false
		}
	}
	return true
}

// Step feeds one token per segment (tokens[i] is ignored for finished
// segments) and returns the vocabulary logits for each live segment
// (nil rows for finished ones). The first call must pass vocab.BosID for
// every segment. The returned slices alias the state's internal logits
// buffer and are valid only until the next Step call; callers that need
// them longer must copy.
func (s *DecodeState) Step(tokens []int) ([][]float32, error) {
	if len(tokens) != s.nSeg {
		return nil, fmt.Errorf("model: Step got %d tokens for %d segments", len(tokens), s.nSeg)
	}
	// Gather the live segments, validating before any state mutation.
	s.live = s.live[:0]
	for i := 0; i < s.nSeg; i++ {
		if s.finished[i] {
			continue
		}
		if tokens[i] < 0 || tokens[i] >= s.m.Cfg.VocabSize {
			return nil, fmt.Errorf("model: token %d out of vocabulary", tokens[i])
		}
		if s.prefixLen[i] >= s.m.P.PosEnc.Rows {
			return nil, fmt.Errorf("model: segment %d position %d beyond MaxLen", i, s.prefixLen[i])
		}
		s.live = append(s.live, i)
	}
	live := s.live
	for i := range s.out {
		s.out[i] = nil
	}
	if len(live) == 0 {
		return s.out, nil
	}
	// Embed the new token of every live segment at its own position —
	// separate positional encoding, per segment, by construction.
	d := s.m.Cfg.DModel
	n := len(live)
	x := s.x
	x.Resize(n, d)
	for r, i := range live {
		row := x.Row(r)
		copy(row, s.m.P.Embedding.Row(tokens[i]))
		peRow := s.m.P.PosEnc.Row(s.prefixLen[i])
		for j := range row {
			row[j] += peRow[j]
		}
		s.prefixLen[i]++
	}

	heads := s.m.Cfg.NumHeads
	dh := s.m.Cfg.HeadDim()
	scale := attnScale(dh)
	q, attn, proj := s.q, s.attn, s.proj
	q.Resize(n, d)
	attn.Resize(n, d)
	proj.Resize(n, d)
	for li, layer := range s.m.P.Decoder {
		cache := s.layers[li]
		// Self-attention with per-segment KV cache (causal by
		// construction: the cache only holds the past).
		k, v := cache.k, cache.v
		k.Resize(n, d)
		v.Resize(n, d)
		layer.SelfAttn.WQ.ApplyInto(q, x)
		layer.SelfAttn.WK.ApplyInto(k, x)
		layer.SelfAttn.WV.ApplyInto(v, x)
		for r, i := range live {
			cache.selfK[i].AppendRow(k.Row(r))
			cache.selfV[i].AppendRow(v.Row(r))
			tensor.AttendCachedRow(attn.Row(r), q.Row(r), cache.selfK[i], cache.selfV[i], heads, dh, scale, s.scores)
		}
		layer.SelfAttn.WO.ApplyInto(proj, attn)
		tensor.AddInPlace(x, proj)
		layer.Norm1.Apply(x)

		// Cross-attention against the fixed encoder cache of the own
		// segment only.
		layer.CrossAttn.WQ.ApplyInto(q, x)
		for r, i := range live {
			tensor.AttendCachedRow(attn.Row(r), q.Row(r), cache.crossK[i], cache.crossV[i], heads, dh, scale, s.scores)
		}
		layer.CrossAttn.WO.ApplyInto(proj, attn)
		tensor.AddInPlace(x, proj)
		layer.Norm2.Apply(x)

		ff := s.ff
		ff.Resize(n, s.m.Cfg.DFF)
		layer.FFN.In.ApplyInto(ff, x)
		tensor.ReLU(ff)
		layer.FFN.Out.ApplyInto(proj, ff)
		tensor.AddInPlace(x, proj)
		layer.Norm3.Apply(x)
	}

	s.logits.Resize(n, s.m.Cfg.VocabSize)
	s.m.P.OutProj.ApplyInto(s.logits, x)
	for r, i := range live {
		s.out[i] = s.logits.Row(r)
	}
	return s.out, nil
}

// GenerateRowCached mirrors GenerateRowCapped using the KV-cached
// incremental decoder: same greedy decoding, same outputs, O(T) token
// passes per segment instead of O(T²).
func (m *Model) GenerateRowCached(encOut *tensor.Matrix, encLayout RowLayout, caps []int) ([]GenerateResult, error) {
	nSeg := len(encLayout.Segments)
	if len(caps) != nSeg {
		return nil, fmt.Errorf("model: %d caps for %d segments", len(caps), nSeg)
	}
	st := m.NewDecodeState(encOut, encLayout)
	results := make([]GenerateResult, nSeg)
	next := make([]int, nSeg)
	for i := range next {
		next[i] = vocab.BosID
		if caps[i] <= 0 {
			st.MarkFinished(i)
		}
	}
	maxNew := 0
	for _, c := range caps {
		if c > maxNew {
			maxNew = c
		}
	}
	for step := 0; step < maxNew && !st.AllFinished(); step++ {
		logits, err := st.Step(next)
		if err != nil {
			return nil, err
		}
		for i := 0; i < nSeg; i++ {
			if st.Finished(i) || logits[i] == nil {
				continue
			}
			best, bestj := float32(math.Inf(-1)), 0
			for j, v := range logits[i] {
				if v > best {
					best, bestj = v, j
				}
			}
			results[i].Steps = step + 1
			if bestj == vocab.EosID {
				st.MarkFinished(i)
				continue
			}
			results[i].Tokens = append(results[i].Tokens, bestj)
			next[i] = bestj
			if len(results[i].Tokens) >= caps[i] {
				st.MarkFinished(i)
			}
		}
	}
	return results, nil
}
