package model

import (
	"fmt"

	"tcb/internal/tensor"
)

// DecodeState is the KV-cached incremental decoder for one (possibly
// concatenated) row: instead of re-running the decoder stack over the full
// prefix at every step (O(T²) token passes, what GenerateRow does), it
// caches each layer's self-attention keys/values per segment and the
// cross-attention keys/values once, advancing every live segment by one
// token per Step.
//
// Correctness relies on the same isolation ConcatBatching establishes for
// the batch case: a segment's cached keys/values are exactly the rows the
// block-diagonal mask would have exposed, so cached decoding produces the
// same tokens as mask-based decoding (tested to exact token equality).
//
// Since that isolation is per segment, nothing distinguishes "the segments
// of one row" from "the segments of many rows": DecodeState is simply the
// one-row view of BatchDecodeState, which fuses every row of a batch into
// batch-wide GEMMs per step. All step buffers and KV caches are allocated
// once at construction, sized by the model's MaxLen bound on decode
// positions, so a warm state performs zero heap allocations per Step — the
// property the alloc regression tests pin down.
type DecodeState struct {
	b *BatchDecodeState
}

// NewDecodeState precomputes the cross-attention caches from the encoder
// output, reserves every per-step buffer, and returns a state ready for
// Step.
func (m *Model) NewDecodeState(encOut *tensor.Matrix, encLayout RowLayout) *DecodeState {
	return &DecodeState{
		b: m.newBatchDecodeState([]BatchDecodeRow{{EncOut: encOut, Layout: encLayout}}, m.P.PosEnc.Rows),
	}
}

// Finished reports whether segment i has stopped decoding.
func (s *DecodeState) Finished(i int) bool { return s.b.Finished(i) }

// MarkFinished stops segment i (cap reached or EOS seen by the caller).
func (s *DecodeState) MarkFinished(i int) { s.b.MarkFinished(i) }

// AllFinished reports whether every segment has stopped.
func (s *DecodeState) AllFinished() bool { return s.b.AllFinished() }

// Step feeds one token per segment (tokens[i] is ignored for finished
// segments) and returns the vocabulary logits for each live segment
// (nil rows for finished ones). The first call must pass vocab.BosID for
// every segment. The returned slices alias the state's internal logits
// buffer and are valid only until the next Step call; callers that need
// them longer must copy.
func (s *DecodeState) Step(tokens []int) ([][]float32, error) {
	return s.b.Step(tokens)
}

// GenerateRowCached mirrors GenerateRowCapped using the KV-cached
// incremental decoder: same greedy decoding, same outputs, O(T) token
// passes per segment instead of O(T²). It is the per-row counterpart of
// GenerateBatchCached (one decode state per row instead of one fused state
// per batch), kept as the engine's -fusedecode=false escape hatch.
func (m *Model) GenerateRowCached(encOut *tensor.Matrix, encLayout RowLayout, caps []int) ([]GenerateResult, error) {
	nSeg := len(encLayout.Segments)
	if len(caps) != nSeg {
		return nil, fmt.Errorf("model: %d caps for %d segments", len(caps), nSeg)
	}
	maxNew := 0
	for _, c := range caps {
		if c > maxNew {
			maxNew = c
		}
	}
	st := m.newBatchDecodeState([]BatchDecodeRow{{EncOut: encOut, Layout: encLayout}}, maxNew)
	defer st.Close()
	return greedyDecode(st, caps, maxNew)
}
