package model

import (
	"testing"

	"tcb/internal/rng"
	"tcb/internal/tensor"
)

func sampleSetup(t *testing.T) (*Model, *tensor.Matrix, RowLayout) {
	t.Helper()
	m := testModel(t)
	src := rng.New(71)
	req := randTokens(src, 6)
	layout := SingleSegment(6, 6)
	encOut := m.EncodeRow(req, layout, nil, AttDense, true)
	return m, encOut, layout
}

func TestSampleConfigValidate(t *testing.T) {
	if (SampleConfig{Temperature: -1}).Validate() == nil {
		t.Fatal("negative temperature should fail")
	}
	if (SampleConfig{TopK: -1}).Validate() == nil {
		t.Fatal("negative top-k should fail")
	}
	if (SampleConfig{Temperature: 0.7, TopK: 5}).Validate() != nil {
		t.Fatal("valid config rejected")
	}
}

func TestSampledZeroTemperatureIsGreedy(t *testing.T) {
	m, encOut, layout := sampleSetup(t)
	greedy, err := m.GenerateRowCached(encOut, layout, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := m.GenerateRowSampled(encOut, layout, []int{5}, SampleConfig{Temperature: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(greedy[0].Tokens) != len(sampled[0].Tokens) {
		t.Fatalf("greedy %v vs T=0 sampled %v", greedy[0].Tokens, sampled[0].Tokens)
	}
	for i := range greedy[0].Tokens {
		if greedy[0].Tokens[i] != sampled[0].Tokens[i] {
			t.Fatalf("token %d differs under T=0", i)
		}
	}
}

func TestSampledTopK1IsGreedy(t *testing.T) {
	m, encOut, layout := sampleSetup(t)
	greedy, err := m.GenerateRowCached(encOut, layout, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := m.GenerateRowSampled(encOut, layout, []int{4},
		SampleConfig{Temperature: 1, TopK: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range greedy[0].Tokens {
		if i >= len(sampled[0].Tokens) || greedy[0].Tokens[i] != sampled[0].Tokens[i] {
			t.Fatalf("top-k=1 should be greedy: %v vs %v", sampled[0].Tokens, greedy[0].Tokens)
		}
	}
}

func TestSampledDeterministicInSeed(t *testing.T) {
	m, encOut, layout := sampleSetup(t)
	sc := SampleConfig{Temperature: 1.2, TopK: 10, Seed: 42}
	a, err := m.GenerateRowSampled(encOut, layout, []int{6}, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.GenerateRowSampled(encOut, layout, []int{6}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(a[0].Tokens) != len(b[0].Tokens) {
		t.Fatal("same seed produced different lengths")
	}
	for i := range a[0].Tokens {
		if a[0].Tokens[i] != b[0].Tokens[i] {
			t.Fatal("same seed produced different tokens")
		}
	}
}

func TestSampledSeedsDiffer(t *testing.T) {
	m, encOut, layout := sampleSetup(t)
	differ := false
	base, err := m.GenerateRowSampled(encOut, layout, []int{8},
		SampleConfig{Temperature: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(2); seed <= 6; seed++ {
		out, err := m.GenerateRowSampled(encOut, layout, []int{8},
			SampleConfig{Temperature: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if len(out[0].Tokens) != len(base[0].Tokens) {
			differ = true
			break
		}
		for i := range out[0].Tokens {
			if out[0].Tokens[i] != base[0].Tokens[i] {
				differ = true
				break
			}
		}
	}
	if !differ {
		t.Fatal("high-temperature sampling identical across 5 seeds — suspicious")
	}
}

func TestSampledRespectsCaps(t *testing.T) {
	m := testModel(t)
	src := rng.New(72)
	requests := [][]int{randTokens(src, 4), randTokens(src, 5)}
	row, layout := buildConcatRow(requests, 9)
	encOut := m.EncodeRow(row, layout, nil, AttDense, true)
	out, err := m.GenerateRowSampled(encOut, layout, []int{2, 0},
		SampleConfig{Temperature: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0].Tokens) > 2 || len(out[1].Tokens) != 0 {
		t.Fatalf("caps violated: %v / %v", out[0].Tokens, out[1].Tokens)
	}
}

func TestSampledInvalidInputs(t *testing.T) {
	m, encOut, layout := sampleSetup(t)
	if _, err := m.GenerateRowSampled(encOut, layout, []int{1, 2}, SampleConfig{}); err == nil {
		t.Fatal("caps mismatch should fail")
	}
	if _, err := m.GenerateRowSampled(encOut, layout, []int{1}, SampleConfig{Temperature: -2}); err == nil {
		t.Fatal("invalid config should fail")
	}
}

// Per-segment stream splitting: a request's sampled output must not depend
// on which other requests share the batch row.
func TestSampledBatchInvariance(t *testing.T) {
	m := testModel(t)
	src := rng.New(73)
	reqA := randTokens(src, 5)
	reqB := randTokens(src, 7)
	sc := SampleConfig{Temperature: 1.5, TopK: 8, Seed: 99}

	// reqA alone.
	layoutSolo := SingleSegment(5, 5)
	encSolo := m.EncodeRow(reqA, layoutSolo, nil, AttDense, true)
	solo, err := m.GenerateRowSampled(encSolo, layoutSolo, []int{4}, sc)
	if err != nil {
		t.Fatal(err)
	}
	// reqA concatenated with reqB: segment 0's stream is the same split.
	row, layout := buildConcatRow([][]int{reqA, reqB}, 12)
	encBatch := m.EncodeRow(row, layout, nil, AttDense, true)
	batched, err := m.GenerateRowSampled(encBatch, layout, []int{4, 4}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(solo[0].Tokens) != len(batched[0].Tokens) {
		t.Fatalf("batch changed sampling: %v vs %v", solo[0].Tokens, batched[0].Tokens)
	}
	for i := range solo[0].Tokens {
		if solo[0].Tokens[i] != batched[0].Tokens[i] {
			t.Fatalf("token %d depends on batch composition", i)
		}
	}
}
