package model

import (
	"testing"
	"testing/quick"

	"tcb/internal/rng"
	"tcb/internal/vocab"
)

// The headline property of the KV-cached decoder: token-for-token equal to
// the mask-based re-run decoder, for concatenated rows.
func TestCachedDecodeEqualsRerun(t *testing.T) {
	m := testModel(t)
	src := rng.New(41)
	requests := [][]int{randTokens(src, 5), randTokens(src, 8), randTokens(src, 3)}
	row, layout := buildConcatRow(requests, 20)
	encOut := m.EncodeRow(row, layout, nil, AttDense, true)
	caps := []int{5, 3, 6}
	rerun := m.GenerateRowCapped(encOut, layout, nil, caps, AttDense)
	cached, err := m.GenerateRowCached(encOut, layout, caps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rerun {
		if len(rerun[i].Tokens) != len(cached[i].Tokens) {
			t.Fatalf("segment %d: rerun %v vs cached %v", i, rerun[i].Tokens, cached[i].Tokens)
		}
		for j := range rerun[i].Tokens {
			if rerun[i].Tokens[j] != cached[i].Tokens[j] {
				t.Fatalf("segment %d token %d: rerun %d vs cached %d",
					i, j, rerun[i].Tokens[j], cached[i].Tokens[j])
			}
		}
		if rerun[i].Steps != cached[i].Steps {
			t.Fatalf("segment %d steps: rerun %d vs cached %d",
				i, rerun[i].Steps, cached[i].Steps)
		}
	}
}

// Cached decoding of a concatenated row equals cached decoding of each
// request alone (transitively with the rerun equivalences, but cheap to
// assert directly).
func TestCachedDecodeEqualsStandalone(t *testing.T) {
	m := testModel(t)
	src := rng.New(42)
	requests := [][]int{randTokens(src, 4), randTokens(src, 6)}
	row, layout := buildConcatRow(requests, 10)
	encOut := m.EncodeRow(row, layout, nil, AttDense, true)
	batchRes, err := m.GenerateRowCached(encOut, layout, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range requests {
		soloLayout := SingleSegment(len(req), len(req))
		soloEnc := m.EncodeRow(req, soloLayout, nil, AttDense, true)
		solo, err := m.GenerateRowCached(soloEnc, soloLayout, []int{4})
		if err != nil {
			t.Fatal(err)
		}
		if len(solo[0].Tokens) != len(batchRes[i].Tokens) {
			t.Fatalf("segment %d: batch %v vs solo %v", i, batchRes[i].Tokens, solo[0].Tokens)
		}
		for j := range solo[0].Tokens {
			if solo[0].Tokens[j] != batchRes[i].Tokens[j] {
				t.Fatalf("segment %d token %d differs", i, j)
			}
		}
	}
}

// Property: cached == rerun across random shapes.
func TestCachedDecodeEquivalenceProperty(t *testing.T) {
	cfg := Config{VocabSize: 30, DModel: 16, NumHeads: 2, DFF: 32,
		EncLayers: 1, DecLayers: 2, MaxLen: 64, Eps: 1e-5}
	m := New(cfg, 123)
	f := func(seed uint16, n uint8) bool {
		src := rng.New(uint64(seed) + 5)
		count := int(n%3) + 1
		var requests [][]int
		total := 0
		caps := make([]int, count)
		for i := 0; i < count; i++ {
			l := src.IntRange(1, 6)
			toks := make([]int, l)
			for j := range toks {
				toks[j] = src.IntRange(vocab.FirstWordID, 29)
			}
			requests = append(requests, toks)
			total += l
			caps[i] = src.IntRange(0, 4)
		}
		row, layout := buildConcatRow(requests, total)
		encOut := m.EncodeRow(row, layout, nil, AttDense, true)
		rerun := m.GenerateRowCapped(encOut, layout, nil, caps, AttDense)
		cached, err := m.GenerateRowCached(encOut, layout, caps)
		if err != nil {
			return false
		}
		for i := range rerun {
			if len(rerun[i].Tokens) != len(cached[i].Tokens) {
				return false
			}
			for j := range rerun[i].Tokens {
				if rerun[i].Tokens[j] != cached[i].Tokens[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeStateStepValidation(t *testing.T) {
	m := testModel(t)
	src := rng.New(43)
	req := randTokens(src, 4)
	layout := SingleSegment(4, 4)
	encOut := m.EncodeRow(req, layout, nil, AttDense, true)
	st := m.NewDecodeState(encOut, layout)
	if _, err := st.Step([]int{1, 2}); err == nil {
		t.Fatal("wrong token count should fail")
	}
	if _, err := st.Step([]int{-1}); err == nil {
		t.Fatal("out-of-vocab token should fail")
	}
	if _, err := st.Step([]int{testVocab + 5}); err == nil {
		t.Fatal("oversized token id should fail")
	}
}

func TestDecodeStateFinishedBookkeeping(t *testing.T) {
	m := testModel(t)
	src := rng.New(44)
	requests := [][]int{randTokens(src, 3), randTokens(src, 3)}
	row, layout := buildConcatRow(requests, 6)
	encOut := m.EncodeRow(row, layout, nil, AttDense, true)
	st := m.NewDecodeState(encOut, layout)
	if st.AllFinished() {
		t.Fatal("fresh state should not be finished")
	}
	st.MarkFinished(0)
	if !st.Finished(0) || st.Finished(1) {
		t.Fatal("finish bookkeeping wrong")
	}
	logits, err := st.Step([]int{vocab.BosID, vocab.BosID})
	if err != nil {
		t.Fatal(err)
	}
	if logits[0] != nil {
		t.Fatal("finished segment must produce no logits")
	}
	if logits[1] == nil {
		t.Fatal("live segment must produce logits")
	}
	st.MarkFinished(1)
	if !st.AllFinished() {
		t.Fatal("all segments finished")
	}
	// Step on an all-finished state is a harmless no-op.
	logits, err = st.Step([]int{vocab.BosID, vocab.BosID})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range logits {
		if l != nil {
			t.Fatal("no logits expected")
		}
	}
}

func TestGenerateRowCachedCapsMismatch(t *testing.T) {
	m := testModel(t)
	src := rng.New(45)
	req := randTokens(src, 4)
	layout := SingleSegment(4, 4)
	encOut := m.EncodeRow(req, layout, nil, AttDense, true)
	if _, err := m.GenerateRowCached(encOut, layout, []int{1, 2}); err == nil {
		t.Fatal("caps/segments mismatch should fail")
	}
}

func TestDecodeStatePositionOverflow(t *testing.T) {
	cfg := Config{VocabSize: 20, DModel: 8, NumHeads: 2, DFF: 16,
		EncLayers: 1, DecLayers: 1, MaxLen: 3, Eps: 1e-5}
	m := New(cfg, 9)
	layout := SingleSegment(2, 2)
	encOut := m.EncodeRow([]int{vocab.FirstWordID, vocab.FirstWordID + 1}, layout, nil, AttDense, true)
	st := m.NewDecodeState(encOut, layout)
	var err error
	for i := 0; i < 5 && err == nil; i++ {
		_, err = st.Step([]int{vocab.BosID})
	}
	if err == nil {
		t.Fatal("stepping past MaxLen should fail")
	}
}

// Cached decode must be measurably cheaper than rerun decode for long
// generations — a sanity check on the O(T) vs O(T²) claim, asserted via
// token-pass counting rather than flaky wall-clock.
func BenchmarkRerunDecode(b *testing.B) {
	m := testModel(b)
	src := rng.New(46)
	req := randTokens(src, 8)
	layout := SingleSegment(8, 8)
	encOut := m.EncodeRow(req, layout, nil, AttDense, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.GenerateRowCapped(encOut, layout, nil, []int{16}, AttDense)
	}
}

func BenchmarkCachedDecode(b *testing.B) {
	m := testModel(b)
	src := rng.New(46)
	req := randTokens(src, 8)
	layout := SingleSegment(8, 8)
	encOut := m.EncodeRow(req, layout, nil, AttDense, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.GenerateRowCached(encOut, layout, []int{16}); err != nil {
			b.Fatal(err)
		}
	}
}
