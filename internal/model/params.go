package model

import (
	"math"

	"tcb/internal/rng"
	"tcb/internal/tensor"
)

// Linear is a dense affine layer Y = X·W + b.
type Linear struct {
	W *tensor.Matrix // in × out
	B []float32      // out
}

// NewLinear returns a Linear with Xavier-uniform weights drawn from src.
func NewLinear(src *rng.Source, in, out int) *Linear {
	l := &Linear{W: tensor.New(in, out), B: make([]float32, out)}
	bound := float32(math.Sqrt(6 / float64(in+out)))
	for i := range l.W.Data {
		l.W.Data[i] = (float32(src.Float64())*2 - 1) * bound
	}
	return l
}

// Apply returns x·W + b.
func (l *Linear) Apply(x *tensor.Matrix) *tensor.Matrix {
	y := tensor.New(x.Rows, l.W.Cols)
	l.ApplyInto(y, x)
	return y
}

// ApplyInto computes dst = x·W + b into a caller-provided matrix, the
// allocation-free form used by the inference hot path. dst must be
// x.Rows × out and must not alias x.
func (l *Linear) ApplyInto(dst, x *tensor.Matrix) {
	tensor.MatMulInto(dst, x, l.W)
	tensor.AddRowVector(dst, l.B)
}

// LayerNorm holds per-feature gain and bias for row normalization.
type LayerNorm struct {
	Gain, Bias []float32
	Eps        float32
}

// NewLayerNorm returns an identity-initialized LayerNorm over dim features.
func NewLayerNorm(dim int, eps float32) *LayerNorm {
	ln := &LayerNorm{Gain: make([]float32, dim), Bias: make([]float32, dim), Eps: eps}
	for i := range ln.Gain {
		ln.Gain[i] = 1
	}
	return ln
}

// Apply normalizes x in place.
func (ln *LayerNorm) Apply(x *tensor.Matrix) {
	tensor.LayerNormRows(x, ln.Gain, ln.Bias, ln.Eps)
}

// AttentionWeights holds the Q/K/V/output projections of one
// multi-head attention block (Eq. 3 plus the output projection).
type AttentionWeights struct {
	WQ, WK, WV, WO *Linear
}

// NewAttentionWeights initializes the four projections from src.
func NewAttentionWeights(src *rng.Source, dModel int) *AttentionWeights {
	return &AttentionWeights{
		WQ: NewLinear(src, dModel, dModel),
		WK: NewLinear(src, dModel, dModel),
		WV: NewLinear(src, dModel, dModel),
		WO: NewLinear(src, dModel, dModel),
	}
}

// FFNWeights holds the two-layer feed-forward block following attention.
type FFNWeights struct {
	In, Out *Linear
}

// NewFFNWeights initializes the feed-forward block from src.
func NewFFNWeights(src *rng.Source, dModel, dFF int) *FFNWeights {
	return &FFNWeights{
		In:  NewLinear(src, dModel, dFF),
		Out: NewLinear(src, dFF, dModel),
	}
}

// Apply runs the position-wise FFN: ReLU(x·W1 + b1)·W2 + b2.
func (f *FFNWeights) Apply(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(x.Rows, f.Out.W.Cols)
	f.ApplyInto(out, x, nil)
	return out
}

// ApplyInto runs the FFN into dst, drawing the hidden activation from ws
// (plain allocation when ws is nil). dst must be x.Rows × dModel and must
// not alias x.
func (f *FFNWeights) ApplyInto(dst, x *tensor.Matrix, ws *tensor.Workspace) {
	h := ws.Get(x.Rows, f.In.W.Cols)
	f.In.ApplyInto(h, x)
	tensor.ReLU(h)
	f.Out.ApplyInto(dst, h)
	ws.Put(h)
}

// EncoderLayerWeights bundles one encoder layer: self-attention + FFN with
// post-norm residual connections.
type EncoderLayerWeights struct {
	SelfAttn *AttentionWeights
	FFN      *FFNWeights
	Norm1    *LayerNorm
	Norm2    *LayerNorm
}

// DecoderLayerWeights bundles one decoder layer: masked self-attention,
// cross-attention to the encoder output, and FFN.
type DecoderLayerWeights struct {
	SelfAttn  *AttentionWeights
	CrossAttn *AttentionWeights
	FFN       *FFNWeights
	Norm1     *LayerNorm
	Norm2     *LayerNorm
	Norm3     *LayerNorm
}

// Params holds every weight of the Seq2Seq model.
type Params struct {
	Embedding *tensor.Matrix // VocabSize × DModel token embedding table
	PosEnc    *tensor.Matrix // MaxLen × DModel sinusoidal table
	Encoder   []*EncoderLayerWeights
	Decoder   []*DecoderLayerWeights
	OutProj   *Linear // DModel × VocabSize final projection
}

// NewParams initializes all weights deterministically from seed.
func NewParams(cfg Config, seed uint64) *Params {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	src := rng.New(seed)
	p := &Params{
		Embedding: tensor.New(cfg.VocabSize, cfg.DModel),
		PosEnc:    PositionalEncoding(cfg.MaxLen, cfg.DModel),
		OutProj:   nil,
	}
	scale := float32(1 / math.Sqrt(float64(cfg.DModel)))
	for i := range p.Embedding.Data {
		p.Embedding.Data[i] = (float32(src.Float64())*2 - 1) * scale
	}
	for i := 0; i < cfg.EncLayers; i++ {
		p.Encoder = append(p.Encoder, &EncoderLayerWeights{
			SelfAttn: NewAttentionWeights(src.Split(), cfg.DModel),
			FFN:      NewFFNWeights(src.Split(), cfg.DModel, cfg.DFF),
			Norm1:    NewLayerNorm(cfg.DModel, cfg.Eps),
			Norm2:    NewLayerNorm(cfg.DModel, cfg.Eps),
		})
	}
	for i := 0; i < cfg.DecLayers; i++ {
		p.Decoder = append(p.Decoder, &DecoderLayerWeights{
			SelfAttn:  NewAttentionWeights(src.Split(), cfg.DModel),
			CrossAttn: NewAttentionWeights(src.Split(), cfg.DModel),
			FFN:       NewFFNWeights(src.Split(), cfg.DModel, cfg.DFF),
			Norm1:     NewLayerNorm(cfg.DModel, cfg.Eps),
			Norm2:     NewLayerNorm(cfg.DModel, cfg.Eps),
			Norm3:     NewLayerNorm(cfg.DModel, cfg.Eps),
		})
	}
	p.OutProj = NewLinear(src.Split(), cfg.DModel, cfg.VocabSize)
	return p
}

// Embed looks up token embeddings for ids, producing a len(ids)×DModel
// matrix. Out-of-range ids panic: the engine validates tokens upstream.
func (p *Params) Embed(ids []int) *tensor.Matrix {
	d := p.Embedding.Cols
	x := tensor.New(len(ids), d)
	for i, id := range ids {
		copy(x.Row(i), p.Embedding.Row(id))
	}
	return x
}
