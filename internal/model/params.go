package model

import (
	"math"
	"sync"

	"tcb/internal/rng"
	"tcb/internal/tensor"
)

// Linear is a dense affine layer Y = X·W + b.
//
// A Linear optionally carries an int8 per-output-channel quantized copy of W
// (built once by Quantize); when present, ApplyInto routes the product
// through the quantized GEMM instead of the float32 kernels. The field is
// unexported so checkpoints never persist the redundant copy — a loaded
// model re-quantizes on demand.
type Linear struct {
	W *tensor.Matrix // in × out
	B []float32      // out

	q *tensor.QuantizedMatrix // int8 copy of W; nil on the float32 path
}

// NewLinear returns a Linear with Xavier-uniform weights drawn from src.
func NewLinear(src *rng.Source, in, out int) *Linear {
	l := &Linear{W: tensor.New(in, out), B: make([]float32, out)}
	bound := float32(math.Sqrt(6 / float64(in+out)))
	for i := range l.W.Data {
		l.W.Data[i] = (float32(src.Float64())*2 - 1) * bound
	}
	return l
}

// Apply returns x·W + b.
func (l *Linear) Apply(x *tensor.Matrix) *tensor.Matrix {
	y := tensor.New(x.Rows, l.W.Cols)
	l.ApplyInto(y, x)
	return y
}

// ApplyInto computes dst = x·W + b into a caller-provided matrix, the
// allocation-free form used by the inference hot path. dst must be
// x.Rows × out and must not alias x.
func (l *Linear) ApplyInto(dst, x *tensor.Matrix) {
	l.ApplyIntoWS(dst, x, nil)
}

// ApplyIntoWS is ApplyInto with an explicit workspace for the quantized
// path's activation scratch (int8 row buffers and per-row scales). On the
// float32 path the workspace is unused. ws may be nil: the quantized path
// then borrows a workspace from the package pool, so warm calls stay
// allocation-free either way — passing the caller's workspace just keeps the
// scratch on buffers that are already hot.
func (l *Linear) ApplyIntoWS(dst, x *tensor.Matrix, ws *tensor.Workspace) {
	if l.q != nil {
		tensor.MatMulQuantizedInto(dst, x, l.q, ws)
	} else {
		tensor.MatMulInto(dst, x, l.W)
	}
	tensor.AddRowVector(dst, l.B)
}

// Quantize builds (or rebuilds) the int8 per-channel copy of W and switches
// this layer's ApplyInto onto the quantized GEMM. Not safe to call
// concurrently with inference — quantize before serving traffic
// (Params.EnsureQuantized does exactly that, once).
func (l *Linear) Quantize() {
	l.q = tensor.QuantizeMatrix(l.W)
}

// Quantized reports whether this layer routes through the int8 path.
func (l *Linear) Quantized() bool { return l.q != nil }

// LayerNorm holds per-feature gain and bias for row normalization.
type LayerNorm struct {
	Gain, Bias []float32
	Eps        float32
}

// NewLayerNorm returns an identity-initialized LayerNorm over dim features.
func NewLayerNorm(dim int, eps float32) *LayerNorm {
	ln := &LayerNorm{Gain: make([]float32, dim), Bias: make([]float32, dim), Eps: eps}
	for i := range ln.Gain {
		ln.Gain[i] = 1
	}
	return ln
}

// Apply normalizes x in place.
func (ln *LayerNorm) Apply(x *tensor.Matrix) {
	tensor.LayerNormRows(x, ln.Gain, ln.Bias, ln.Eps)
}

// AttentionWeights holds the Q/K/V/output projections of one
// multi-head attention block (Eq. 3 plus the output projection).
type AttentionWeights struct {
	WQ, WK, WV, WO *Linear
}

// NewAttentionWeights initializes the four projections from src.
func NewAttentionWeights(src *rng.Source, dModel int) *AttentionWeights {
	return &AttentionWeights{
		WQ: NewLinear(src, dModel, dModel),
		WK: NewLinear(src, dModel, dModel),
		WV: NewLinear(src, dModel, dModel),
		WO: NewLinear(src, dModel, dModel),
	}
}

// FFNWeights holds the two-layer feed-forward block following attention.
type FFNWeights struct {
	In, Out *Linear
}

// Quantize switches all four projections onto the int8 path.
func (w *AttentionWeights) Quantize() {
	w.WQ.Quantize()
	w.WK.Quantize()
	w.WV.Quantize()
	w.WO.Quantize()
}

// NewFFNWeights initializes the feed-forward block from src.
func NewFFNWeights(src *rng.Source, dModel, dFF int) *FFNWeights {
	return &FFNWeights{
		In:  NewLinear(src, dModel, dFF),
		Out: NewLinear(src, dFF, dModel),
	}
}

// Apply runs the position-wise FFN: ReLU(x·W1 + b1)·W2 + b2.
func (f *FFNWeights) Apply(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(x.Rows, f.Out.W.Cols)
	f.ApplyInto(out, x, nil)
	return out
}

// ApplyInto runs the FFN into dst, drawing the hidden activation from ws
// (plain allocation when ws is nil). dst must be x.Rows × dModel and must
// not alias x.
func (f *FFNWeights) ApplyInto(dst, x *tensor.Matrix, ws *tensor.Workspace) {
	h := ws.Get(x.Rows, f.In.W.Cols)
	f.In.ApplyIntoWS(h, x, ws)
	tensor.ReLU(h)
	f.Out.ApplyIntoWS(dst, h, ws)
	ws.Put(h)
}

// Quantize switches both FFN projections onto the int8 path.
func (f *FFNWeights) Quantize() {
	f.In.Quantize()
	f.Out.Quantize()
}

// EncoderLayerWeights bundles one encoder layer: self-attention + FFN with
// post-norm residual connections.
type EncoderLayerWeights struct {
	SelfAttn *AttentionWeights
	FFN      *FFNWeights
	Norm1    *LayerNorm
	Norm2    *LayerNorm
}

// DecoderLayerWeights bundles one decoder layer: masked self-attention,
// cross-attention to the encoder output, and FFN.
type DecoderLayerWeights struct {
	SelfAttn  *AttentionWeights
	CrossAttn *AttentionWeights
	FFN       *FFNWeights
	Norm1     *LayerNorm
	Norm2     *LayerNorm
	Norm3     *LayerNorm
}

// Params holds every weight of the Seq2Seq model.
type Params struct {
	Embedding *tensor.Matrix // VocabSize × DModel token embedding table
	PosEnc    *tensor.Matrix // MaxLen × DModel sinusoidal table
	Encoder   []*EncoderLayerWeights
	Decoder   []*DecoderLayerWeights
	OutProj   *Linear // DModel × VocabSize final projection

	quantOnce sync.Once // guards EnsureQuantized (not persisted)
}

// Quantize builds int8 per-channel copies for every projection — all
// encoder/decoder attention and FFN layers plus the output projection — and
// switches them onto the quantized GEMM. The embedding and positional tables
// stay float32: they are lookups, not GEMMs. Not safe concurrently with
// inference; use EnsureQuantized from serving paths.
func (p *Params) Quantize() {
	for _, layer := range p.Encoder {
		layer.SelfAttn.Quantize()
		layer.FFN.Quantize()
	}
	for _, layer := range p.Decoder {
		layer.SelfAttn.Quantize()
		layer.CrossAttn.Quantize()
		layer.FFN.Quantize()
	}
	p.OutProj.Quantize()
}

// EnsureQuantized quantizes the model exactly once, no matter how many
// engines share these params (cluster replicas wrap one Model): concurrent
// callers block until the first finishes, so no inference ever observes a
// half-quantized layer stack.
func (p *Params) EnsureQuantized() {
	p.quantOnce.Do(p.Quantize)
}

// NewParams initializes all weights deterministically from seed.
func NewParams(cfg Config, seed uint64) *Params {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	src := rng.New(seed)
	p := &Params{
		Embedding: tensor.New(cfg.VocabSize, cfg.DModel),
		PosEnc:    PositionalEncoding(cfg.MaxLen, cfg.DModel),
		OutProj:   nil,
	}
	scale := float32(1 / math.Sqrt(float64(cfg.DModel)))
	for i := range p.Embedding.Data {
		p.Embedding.Data[i] = (float32(src.Float64())*2 - 1) * scale
	}
	for i := 0; i < cfg.EncLayers; i++ {
		p.Encoder = append(p.Encoder, &EncoderLayerWeights{
			SelfAttn: NewAttentionWeights(src.Split(), cfg.DModel),
			FFN:      NewFFNWeights(src.Split(), cfg.DModel, cfg.DFF),
			Norm1:    NewLayerNorm(cfg.DModel, cfg.Eps),
			Norm2:    NewLayerNorm(cfg.DModel, cfg.Eps),
		})
	}
	for i := 0; i < cfg.DecLayers; i++ {
		p.Decoder = append(p.Decoder, &DecoderLayerWeights{
			SelfAttn:  NewAttentionWeights(src.Split(), cfg.DModel),
			CrossAttn: NewAttentionWeights(src.Split(), cfg.DModel),
			FFN:       NewFFNWeights(src.Split(), cfg.DModel, cfg.DFF),
			Norm1:     NewLayerNorm(cfg.DModel, cfg.Eps),
			Norm2:     NewLayerNorm(cfg.DModel, cfg.Eps),
			Norm3:     NewLayerNorm(cfg.DModel, cfg.Eps),
		})
	}
	p.OutProj = NewLinear(src.Split(), cfg.DModel, cfg.VocabSize)
	return p
}

// Embed looks up token embeddings for ids, producing a len(ids)×DModel
// matrix. Out-of-range ids panic: the engine validates tokens upstream.
func (p *Params) Embed(ids []int) *tensor.Matrix {
	d := p.Embedding.Cols
	x := tensor.New(len(ids), d)
	for i, id := range ids {
		copy(x.Row(i), p.Embedding.Row(id))
	}
	return x
}
