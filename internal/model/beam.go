package model

import (
	"fmt"
	"math"
	"sort"

	"tcb/internal/tensor"
	"tcb/internal/vocab"
)

// BeamResult is one segment's best hypothesis from beam search.
type BeamResult struct {
	Tokens  []int
	LogProb float64 // sum of token log-probabilities (EOS included if emitted)
	Steps   int
}

// beamHyp is one live hypothesis during search.
type beamHyp struct {
	tokens  []int
	logProb float64
	done    bool
}

// GenerateBeam decodes one segment with beam search of the given width
// over the KV-cached incremental decoder. Each hypothesis owns its own
// decode state (the cache is cheap at serving sizes); maxNew bounds the
// hypothesis length. Width 1 degenerates to greedy decoding.
//
// Beam search runs per segment — the row's other segments do not affect a
// segment's hypotheses (the same isolation ConcatBatching guarantees), so
// serving a beam-searched request inside a concatenated batch is done by
// extracting the segment's encoder rows and calling this.
func (m *Model) GenerateBeam(encOut *tensor.Matrix, encLayout RowLayout, segment, width, maxNew int) (BeamResult, error) {
	if width <= 0 {
		return BeamResult{}, fmt.Errorf("model: beam width %d", width)
	}
	if segment < 0 || segment >= len(encLayout.Segments) {
		return BeamResult{}, fmt.Errorf("model: segment %d of %d", segment, len(encLayout.Segments))
	}
	// Extract this segment's encoder output as a standalone layout so the
	// per-hypothesis decode states are small and segment-isolated.
	seg := encLayout.Segments[segment]
	segEnc := encOut.Slice(seg.Start, seg.End())
	segLayout := SingleSegment(seg.Len, seg.Len)

	beams := []beamHyp{{}}
	for step := 0; step < maxNew; step++ {
		allDone := true
		for _, b := range beams {
			if !b.done {
				allDone = false
			}
		}
		if allDone {
			break
		}
		type cand struct {
			beamHyp
		}
		var cands []cand
		for _, b := range beams {
			if b.done {
				cands = append(cands, cand{b})
				continue
			}
			// Re-decode the prefix with a fresh state. O(T²) per
			// hypothesis overall, but hypotheses are short at serving
			// sizes and the KV cache keeps each step O(T).
			st := m.NewDecodeState(segEnc, segLayout)
			next := vocab.BosID
			var logits [][]float32
			var err error
			for _, tok := range append([]int{-1}, b.tokens...) {
				if tok >= 0 {
					next = tok
				}
				logits, err = st.Step([]int{next})
				if err != nil {
					return BeamResult{}, err
				}
			}
			lp := logProbs(logits[0])
			// Expand by the top `width` continuations.
			type scored struct {
				id int
				lp float64
			}
			top := make([]scored, 0, len(lp))
			for id, p := range lp {
				top = append(top, scored{id, p})
			}
			sort.Slice(top, func(a, b int) bool { return top[a].lp > top[b].lp })
			if len(top) > width {
				top = top[:width]
			}
			for _, s := range top {
				nb := beamHyp{
					tokens:  append(append([]int{}, b.tokens...), s.id),
					logProb: b.logProb + s.lp,
				}
				if s.id == vocab.EosID {
					nb.tokens = nb.tokens[:len(nb.tokens)-1]
					nb.done = true
				}
				cands = append(cands, cand{nb})
			}
		}
		sort.SliceStable(cands, func(a, b int) bool { return cands[a].logProb > cands[b].logProb })
		if len(cands) > width {
			cands = cands[:width]
		}
		beams = beams[:0]
		for _, c := range cands {
			beams = append(beams, c.beamHyp)
		}
	}
	best := beams[0]
	for _, b := range beams[1:] {
		if b.logProb > best.logProb {
			best = b
		}
	}
	steps := len(best.tokens)
	if best.done {
		steps++ // the EOS step
	}
	return BeamResult{Tokens: best.tokens, LogProb: best.logProb, Steps: steps}, nil
}

// logProbs converts logits to log-probabilities.
func logProbs(logits []float32) []float64 {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if fv := float64(v); fv > maxv {
			maxv = fv
		}
	}
	var sum float64
	for _, v := range logits {
		sum += math.Exp(float64(v) - maxv)
	}
	logZ := math.Log(sum) + maxv
	out := make([]float64, len(logits))
	for i, v := range logits {
		out[i] = float64(v) - logZ
	}
	return out
}

// SequenceLogProb scores a full candidate output under the model: the sum
// of log p(tokenᵢ | prefix) with EOS appended. Used to verify that beam
// search finds hypotheses at least as likely as greedy's.
func (m *Model) SequenceLogProb(encOut *tensor.Matrix, encLayout RowLayout, segment int, tokens []int) (float64, error) {
	seg := encLayout.Segments[segment]
	segEnc := encOut.Slice(seg.Start, seg.End())
	segLayout := SingleSegment(seg.Len, seg.Len)
	st := m.NewDecodeState(segEnc, segLayout)
	next := vocab.BosID
	var total float64
	seq := append(append([]int{}, tokens...), vocab.EosID)
	for _, want := range seq {
		logits, err := st.Step([]int{next})
		if err != nil {
			return 0, err
		}
		lp := logProbs(logits[0])
		total += lp[want]
		next = want
	}
	return total, nil
}
