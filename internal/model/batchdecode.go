package model

import (
	"fmt"
	"math"

	"tcb/internal/tensor"
	"tcb/internal/vocab"
)

// BatchDecodeRow pairs one batch row's encoder output with its layout — the
// unit the fused batch decoder consumes.
type BatchDecodeRow struct {
	EncOut *tensor.Matrix
	Layout RowLayout
	// Prefixes, when non-nil, attaches an inherited prefix to each segment
	// (indexed like Layout.Segments; nil entries mean no prefix): the
	// segment's cross-attention cache becomes the frozen prefix K/V rows
	// followed by its own encoder rows, so the decoder sees the full
	// prefix+suffix request while only the suffix occupied the encode row.
	Prefixes []*PrefixKV
}

// BatchDecodeState is the batch-wide fused form of the KV-cached incremental
// decoder: it owns every segment of every batch row at once. Per decode step
// it gathers all live segments — across all rows — into one totalLive×d
// hidden-state matrix and runs the WQ/WK/WV/WO projections, the FFN and the
// output logits as single batch-wide GEMMs per layer, recovering the GEMM
// shapes a real B×L device launch would see instead of B independent
// small-GEMM streams. Only the attention itself stays ragged: each segment's
// KV cache has its own length, so self- and cross-attention run through the
// segment-bounded strided-batch kernel (tensor.AttendCachedRows), which
// shards the independent rows across the worker pool.
//
// Row boundaries carry no mathematical meaning here — a segment's keys,
// values and positions are all its own, exactly the isolation ConcatBatching
// established — so fusing rows changes GEMM height only and results are
// token-identical to per-row decoding (tested to exact equality; the matmul
// kernels keep per-row accumulation order independent of GEMM height to make
// the match bitwise).
//
// All step buffers and KV caches are allocated at construction, so a warm
// state performs zero heap allocations per Step — the batch-wide analogue of
// DecodeState's property, pinned by the same AllocsPerRun regression tests.
type BatchDecodeState struct {
	m    *Model
	nSeg int
	// rowStart[r] is the flat index of row r's first segment; the last entry
	// is nSeg. Flat segment order is row-major: row 0's segments, row 1's, …
	rowStart []int

	layers []*batchLayerCache

	prefixLen []int  // tokens decoded so far per flat segment (BOS included)
	finished  []bool // segment has emitted EOS or hit its cap

	// Preallocated step buffers, resized (never reallocated) to the number
	// of live segments each Step.
	x      *tensor.Matrix // live × dModel hidden states
	q      *tensor.Matrix // live × dModel projection scratch
	attn   *tensor.Matrix // live × dModel attention output
	proj   *tensor.Matrix // live × dModel WO projection / FFN output
	ff     *tensor.Matrix // live × dFF FFN hidden
	logits *tensor.Matrix // live × vocab output logits

	scores *tensor.Matrix // per-live-row attention scratch
	live   []int          // live flat segment indices, rebuilt each Step
	embIdx []int          // live row's token id (embedding gather index)
	posIdx []int          // live row's decode position (PosEnc gather index)
	out    [][]float32

	// Continuous-batching support (refill.go): reserve is the KV rows
	// reserved per segment (inserted segments get the same), segCap the row
	// capacity of the shared step buffers, and ws the recycling pool that
	// removed segments' cache buffers pass through on their way to the next
	// InsertSegment.
	reserve int
	segCap  int
	ws      *tensor.Workspace
}

// batchLayerCache holds one decoder layer's attention caches across every
// flat segment of the batch.
type batchLayerCache struct {
	// selfK[i] / selfV[i]: cached projected key/value rows (d wide) of flat
	// segment i, one row per decoded position, capacity reserved up front.
	selfK, selfV []*tensor.Matrix
	// crossK[i] / crossV[i]: fixed projected encoder keys/values of flat
	// segment i.
	crossK, crossV []*tensor.Matrix
	// k, v hold the step's batch-wide key/value projections before they are
	// scattered into the per-segment caches.
	k, v *tensor.Matrix
}

// NewBatchDecodeState precomputes every row's cross-attention caches,
// reserves per-step buffers and KV caches for the model's MaxLen bound, and
// returns a state ready for Step. Callers that know their generation cap
// should prefer GenerateBatchCached, which reserves only what the caps need.
func (m *Model) NewBatchDecodeState(rows []BatchDecodeRow) *BatchDecodeState {
	return m.newBatchDecodeState(rows, m.P.PosEnc.Rows)
}

// NewBatchDecodeStateReserve is NewBatchDecodeState with an explicit KV-cache
// reservation per segment (clamped to [1, MaxLen]). Callers driving the state
// step by step — the engine's refill loop — pass their generation bound so
// every segment, including ones admitted later through InsertSegment, decodes
// without growing its cache.
func (m *Model) NewBatchDecodeStateReserve(rows []BatchDecodeRow, reserve int) *BatchDecodeState {
	return m.newBatchDecodeState(rows, reserve)
}

// newBatchDecodeState is NewBatchDecodeState with an explicit KV-cache
// reservation (rows per segment, clamped to [1, MaxLen]). Stepping past the
// reservation stays correct — AppendRow grows — but allocates; generation
// loops pass their exact step bound to keep the warm path allocation-free
// without reserving MaxLen rows per segment per layer.
func (m *Model) newBatchDecodeState(rows []BatchDecodeRow, reserve int) *BatchDecodeState {
	maxLen := m.P.PosEnc.Rows // Step rejects positions beyond this bound
	if reserve > maxLen {
		reserve = maxLen
	}
	if reserve < 1 {
		reserve = 1
	}
	d := m.Cfg.DModel
	rowStart := make([]int, len(rows)+1)
	nSeg := 0
	for r, row := range rows {
		rowStart[r] = nSeg
		nSeg += len(row.Layout.Segments)
	}
	rowStart[len(rows)] = nSeg
	s := &BatchDecodeState{
		m:         m,
		nSeg:      nSeg,
		reserve:   reserve,
		segCap:    nSeg,
		rowStart:  rowStart,
		prefixLen: make([]int, nSeg),
		finished:  make([]bool, nSeg),
		x:         tensor.New(nSeg, d),
		q:         tensor.New(nSeg, d),
		attn:      tensor.New(nSeg, d),
		proj:      tensor.New(nSeg, d),
		ff:        tensor.New(nSeg, m.Cfg.DFF),
		logits:    tensor.New(nSeg, m.Cfg.VocabSize),
		live:      make([]int, 0, nSeg),
		embIdx:    make([]int, 0, nSeg),
		posIdx:    make([]int, 0, nSeg),
		out:       make([][]float32, nSeg),
	}
	scoreLen := maxLen
	for _, row := range rows {
		for si, seg := range row.Layout.Segments {
			ln := seg.Len
			if pk := row.prefixAt(si); pk != nil {
				ln += pk.Len // the cross cache spans prefix + suffix rows
			}
			if ln > scoreLen {
				scoreLen = ln
			}
		}
	}
	if nSeg > 0 {
		s.scores = tensor.New(nSeg, scoreLen)
	} else {
		s.scores = tensor.New(1, 1)
	}
	for range m.P.Decoder {
		lc := &batchLayerCache{
			selfK:  make([]*tensor.Matrix, nSeg),
			selfV:  make([]*tensor.Matrix, nSeg),
			crossK: make([]*tensor.Matrix, nSeg),
			crossV: make([]*tensor.Matrix, nSeg),
			k:      tensor.New(nSeg, d),
			v:      tensor.New(nSeg, d),
		}
		for i := 0; i < nSeg; i++ {
			lc.selfK[i] = &tensor.Matrix{Cols: d, Data: make([]float32, 0, reserve*d)}
			lc.selfV[i] = &tensor.Matrix{Cols: d, Data: make([]float32, 0, reserve*d)}
		}
		s.layers = append(s.layers, lc)
	}
	for li, layer := range m.P.Decoder {
		lc := s.layers[li]
		for r, row := range rows {
			if len(row.Layout.Segments) == 0 {
				continue
			}
			k := layer.CrossAttn.WK.Apply(row.EncOut)
			v := layer.CrossAttn.WV.Apply(row.EncOut)
			base := rowStart[r]
			for si, seg := range row.Layout.Segments {
				if pk := row.prefixAt(si); pk != nil {
					// Inherited prefix: frozen prefix rows, own rows after.
					ck := tensor.New(pk.Len+seg.Len, d)
					cv := tensor.New(pk.Len+seg.Len, d)
					inheritCross(ck, pk.Layers[li].K, k, seg)
					inheritCross(cv, pk.Layers[li].V, v, seg)
					lc.crossK[base+si] = ck
					lc.crossV[base+si] = cv
					continue
				}
				lc.crossK[base+si] = k.Slice(seg.Start, seg.End())
				lc.crossV[base+si] = v.Slice(seg.Start, seg.End())
			}
		}
	}
	return s
}

// Segments returns the total number of flat segments across all rows.
func (s *BatchDecodeState) Segments() int { return s.nSeg }

// RowSpan returns the half-open flat segment range [lo, hi) of batch row r.
func (s *BatchDecodeState) RowSpan(r int) (lo, hi int) {
	return s.rowStart[r], s.rowStart[r+1]
}

// Finished reports whether flat segment i has stopped decoding.
func (s *BatchDecodeState) Finished(i int) bool { return s.finished[i] }

// MarkFinished stops flat segment i (cap reached or EOS seen by the caller).
func (s *BatchDecodeState) MarkFinished(i int) { s.finished[i] = true }

// AllFinished reports whether every segment has stopped.
func (s *BatchDecodeState) AllFinished() bool {
	for _, f := range s.finished {
		if !f {
			return false
		}
	}
	return true
}

// Step feeds one token per flat segment (tokens[i] is ignored for finished
// segments) and returns the vocabulary logits for each live segment (nil
// rows for finished ones). The first call must pass vocab.BosID for every
// segment. The returned slices alias the state's internal logits buffer and
// are valid only until the next Step call; callers that need them longer
// must copy.
func (s *BatchDecodeState) Step(tokens []int) ([][]float32, error) {
	if len(tokens) != s.nSeg {
		return nil, fmt.Errorf("model: Step got %d tokens for %d segments", len(tokens), s.nSeg)
	}
	// Gather the live segments, validating before any state mutation.
	s.live = s.live[:0]
	for i := 0; i < s.nSeg; i++ {
		if s.finished[i] {
			continue
		}
		if tokens[i] < 0 || tokens[i] >= s.m.Cfg.VocabSize {
			return nil, fmt.Errorf("model: token %d out of vocabulary", tokens[i])
		}
		if s.prefixLen[i] >= s.m.P.PosEnc.Rows {
			return nil, fmt.Errorf("model: segment %d position %d beyond MaxLen", i, s.prefixLen[i])
		}
		s.live = append(s.live, i)
	}
	live := s.live
	for i := range s.out {
		s.out[i] = nil
	}
	if len(live) == 0 {
		return s.out, nil
	}
	// Gather every live segment's token embedding and positional encoding
	// into one batch-wide hidden-state matrix — separate positional encoding
	// per segment, by construction.
	d := s.m.Cfg.DModel
	n := len(live)
	s.embIdx = s.embIdx[:0]
	s.posIdx = s.posIdx[:0]
	for _, i := range live {
		s.embIdx = append(s.embIdx, tokens[i])
		s.posIdx = append(s.posIdx, s.prefixLen[i])
		s.prefixLen[i]++
	}
	x := s.x
	x.Resize(n, d)
	tensor.GatherRowsInto(x, s.m.P.Embedding, s.embIdx)
	tensor.GatherAddRowsInto(x, s.m.P.PosEnc, s.posIdx)

	heads := s.m.Cfg.NumHeads
	dh := s.m.Cfg.HeadDim()
	scale := attnScale(dh)
	// One workspace per state feeds the quantized path's activation scratch
	// (a no-op for float32 weights), so warm quantized Steps allocate nothing.
	ws := s.pool()
	q, attn, proj := s.q, s.attn, s.proj
	q.Resize(n, d)
	attn.Resize(n, d)
	proj.Resize(n, d)
	for li, layer := range s.m.P.Decoder {
		cache := s.layers[li]
		// Self-attention: batch-wide Q/K/V projections, ragged per-segment
		// caches (causal by construction: a cache only holds the past).
		k, v := cache.k, cache.v
		k.Resize(n, d)
		v.Resize(n, d)
		layer.SelfAttn.WQ.ApplyIntoWS(q, x, ws)
		layer.SelfAttn.WK.ApplyIntoWS(k, x, ws)
		layer.SelfAttn.WV.ApplyIntoWS(v, x, ws)
		tensor.ScatterAppendRows(cache.selfK, k, live)
		tensor.ScatterAppendRows(cache.selfV, v, live)
		tensor.AttendCachedRows(attn, q, cache.selfK, cache.selfV, live, heads, dh, scale, s.scores)
		layer.SelfAttn.WO.ApplyIntoWS(proj, attn, ws)
		tensor.AddInPlace(x, proj)
		layer.Norm1.Apply(x)

		// Cross-attention against the fixed encoder cache of the own
		// segment only.
		layer.CrossAttn.WQ.ApplyIntoWS(q, x, ws)
		tensor.AttendCachedRows(attn, q, cache.crossK, cache.crossV, live, heads, dh, scale, s.scores)
		layer.CrossAttn.WO.ApplyIntoWS(proj, attn, ws)
		tensor.AddInPlace(x, proj)
		layer.Norm2.Apply(x)

		ff := s.ff
		ff.Resize(n, s.m.Cfg.DFF)
		layer.FFN.In.ApplyIntoWS(ff, x, ws)
		tensor.ReLU(ff)
		layer.FFN.Out.ApplyIntoWS(proj, ff, ws)
		tensor.AddInPlace(x, proj)
		layer.Norm3.Apply(x)
	}

	s.logits.Resize(n, s.m.Cfg.VocabSize)
	s.m.P.OutProj.ApplyIntoWS(s.logits, x, ws)
	for r, i := range live {
		s.out[i] = s.logits.Row(r)
	}
	return s.out, nil
}

// GenerateBatchCached greedily decodes every row of a batch through one
// fused BatchDecodeState: per decode step, all rows' live segments advance
// together through batch-wide GEMMs. caps[r][i] bounds generation for row
// r's segment i. Results mirror the input shape and are token-identical to
// running GenerateRowCached on each row independently.
func (m *Model) GenerateBatchCached(rows []BatchDecodeRow, caps [][]int) ([][]GenerateResult, error) {
	if len(caps) != len(rows) {
		return nil, fmt.Errorf("model: %d cap rows for %d batch rows", len(caps), len(rows))
	}
	flatCaps := make([]int, 0, len(rows))
	maxNew := 0
	for r, row := range rows {
		if len(caps[r]) != len(row.Layout.Segments) {
			return nil, fmt.Errorf("model: row %d has %d caps for %d segments",
				r, len(caps[r]), len(row.Layout.Segments))
		}
		for _, c := range caps[r] {
			flatCaps = append(flatCaps, c)
			if c > maxNew {
				maxNew = c
			}
		}
	}
	st := m.newBatchDecodeState(rows, maxNew)
	defer st.Close()
	flat, err := greedyDecode(st, flatCaps, maxNew)
	if err != nil {
		return nil, err
	}
	out := make([][]GenerateResult, len(rows))
	for r := range rows {
		lo, hi := st.RowSpan(r)
		out[r] = flat[lo:hi:hi]
	}
	return out, nil
}

// greedyDecode runs the shared greedy decoding loop over a (batch or
// single-row) decode state: one token per unfinished segment per step,
// argmax selection, EOS or the per-segment cap stopping each segment.
func greedyDecode(st *BatchDecodeState, caps []int, maxNew int) ([]GenerateResult, error) {
	nSeg := st.Segments()
	if len(caps) != nSeg {
		return nil, fmt.Errorf("model: %d caps for %d segments", len(caps), nSeg)
	}
	results := make([]GenerateResult, nSeg)
	next := make([]int, nSeg)
	for i := range next {
		next[i] = vocab.BosID
		if caps[i] <= 0 {
			st.MarkFinished(i)
		}
	}
	for step := 0; step < maxNew && !st.AllFinished(); step++ {
		logits, err := st.Step(next)
		if err != nil {
			return nil, err
		}
		for i := 0; i < nSeg; i++ {
			if st.Finished(i) || logits[i] == nil {
				continue
			}
			best, bestj := float32(math.Inf(-1)), 0
			for j, v := range logits[i] {
				if v > best {
					best, bestj = v, j
				}
			}
			results[i].Steps = step + 1
			if bestj == vocab.EosID {
				st.MarkFinished(i)
				continue
			}
			results[i].Tokens = append(results[i].Tokens, bestj)
			next[i] = bestj
			if len(results[i].Tokens) >= caps[i] {
				st.MarkFinished(i)
			}
		}
	}
	return results, nil
}
