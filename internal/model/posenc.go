package model

import (
	"math"

	"tcb/internal/tensor"
)

// PositionalEncoding returns the sinusoidal table PE[pos][dim] for positions
// 0..maxLen-1 following Eq. 1–2 of the paper (Vaswani et al. [32]):
//
//	PE(pos, 2e)   = sin(pos / 10000^(2e/d_model))
//	PE(pos, 2e+1) = cos(pos / 10000^((2e+1)/d_model))
func PositionalEncoding(maxLen, dModel int) *tensor.Matrix {
	pe := tensor.New(maxLen, dModel)
	for pos := 0; pos < maxLen; pos++ {
		row := pe.Row(pos)
		for dim := 0; dim < dModel; dim++ {
			exp := float64(dim) / float64(dModel)
			angle := float64(pos) / math.Pow(10000, exp)
			if dim%2 == 0 {
				row[dim] = float32(math.Sin(angle))
			} else {
				row[dim] = float32(math.Cos(angle))
			}
		}
	}
	return pe
}

// AddPositionalTraditional adds the default positional encoding to x,
// treating the whole row as a single sentence (Fig. 5a): token at row offset
// p receives PE(p) regardless of which request it belongs to. This is what
// an unmodified framework would do, and it is *wrong* under ConcatBatching —
// kept for the correctness ablation tests.
func AddPositionalTraditional(x *tensor.Matrix, pe *tensor.Matrix) {
	if x.Rows > pe.Rows {
		panic("model: row longer than positional encoding table")
	}
	for p := 0; p < x.Rows; p++ {
		row := x.Row(p)
		peRow := pe.Row(p)
		for j := range row {
			row[j] += peRow[j]
		}
	}
}

// AddPositionalSeparate adds TCB's separate positional encoding (Fig. 5b):
// the position counter restarts at 0 for each segment of the row, so the
// k-th token of every request receives PE(k) exactly as it would when served
// alone. Padding positions receive no encoding.
func AddPositionalSeparate(x *tensor.Matrix, pe *tensor.Matrix, layout RowLayout) {
	if x.Rows != layout.Total {
		panic("model: layout total does not match row length")
	}
	for _, s := range layout.Segments {
		if s.Len > pe.Rows {
			panic("model: segment longer than positional encoding table")
		}
		for k := 0; k < s.Len; k++ {
			row := x.Row(s.Start + k)
			peRow := pe.Row(k)
			for j := range row {
				row[j] += peRow[j]
			}
		}
	}
}
