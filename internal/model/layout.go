package model

import (
	"fmt"

	"tcb/internal/tensor"
)

// Segment is one request's span inside a concatenated batch row.
type Segment struct {
	Start int // first token offset within the row
	Len   int // number of tokens
}

// End returns the exclusive end offset of the segment.
func (s Segment) End() int { return s.Start + s.Len }

// RowLayout describes how requests are concatenated in one batch row:
// a list of contiguous, non-overlapping segments followed (optionally) by
// padding up to the row capacity.
type RowLayout struct {
	Segments []Segment
	Total    int // row length in tokens, padding included
}

// SingleSegment returns the layout of a traditional (non-concatenated) row:
// one request of length n padded to total.
func SingleSegment(n, total int) RowLayout {
	return RowLayout{Segments: []Segment{{Start: 0, Len: n}}, Total: total}
}

// ConcatLayout lays out requests of the given lengths back to back and pads
// the remainder up to total. It panics if the lengths overflow total.
func ConcatLayout(lengths []int, total int) RowLayout {
	layout := RowLayout{Total: total}
	off := 0
	for _, l := range lengths {
		if l <= 0 {
			panic(fmt.Sprintf("model: non-positive segment length %d", l))
		}
		layout.Segments = append(layout.Segments, Segment{Start: off, Len: l})
		off += l
	}
	if off > total {
		panic(fmt.Sprintf("model: segments total %d exceed row capacity %d", off, total))
	}
	return layout
}

// Used returns the number of non-padding tokens in the row.
func (r RowLayout) Used() int {
	n := 0
	for _, s := range r.Segments {
		n += s.Len
	}
	return n
}

// PaddedTokens returns the number of padding tokens in the row.
func (r RowLayout) PaddedTokens() int { return r.Total - r.Used() }

// Validate checks that segments are contiguous from offset 0, non-empty and
// fit within Total. The TCB engine requires this canonical form.
func (r RowLayout) Validate() error {
	off := 0
	for i, s := range r.Segments {
		if s.Len <= 0 {
			return fmt.Errorf("model: segment %d has length %d", i, s.Len)
		}
		if s.Start != off {
			return fmt.Errorf("model: segment %d starts at %d, want %d", i, s.Start, off)
		}
		off = s.End()
	}
	if off > r.Total {
		return fmt.Errorf("model: segments use %d tokens, row capacity %d", off, r.Total)
	}
	return nil
}

// SegmentOf returns the index of the segment containing token offset pos,
// or -1 if pos falls in padding.
func (r RowLayout) SegmentOf(pos int) int {
	for i, s := range r.Segments {
		if pos >= s.Start && pos < s.End() {
			return i
		}
	}
	return -1
}

// SegIDs returns the per-token segment index of the row (-1 for padding
// positions). The block-sparse attention kernel consumes this vector
// directly instead of a materialized Total×Total mask.
func (r RowLayout) SegIDs() []int {
	ids := make([]int, r.Total)
	for i := range ids {
		ids[i] = -1
	}
	for si, s := range r.Segments {
		for i := s.Start; i < s.End(); i++ {
			ids[i] = si
		}
	}
	return ids
}

// SlotBlocks converts a slot partition into self-attention blocks for the
// block-sparse kernel: each slot attends within itself (Q and K spans
// coincide), so the kernel's score area is exactly Σ zᵢ² (Eq. 8).
func SlotBlocks(slots []Slot) []tensor.AttendBlock {
	blocks := make([]tensor.AttendBlock, len(slots))
	for i, s := range slots {
		sp := tensor.Span{Start: s.Start, End: s.Start + s.Len}
		blocks[i] = tensor.AttendBlock{Q: sp, K: sp}
	}
	return blocks
}

// CrossBlocks pairs each decoder segment with its encoder segment for
// block-sparse cross-attention: decoder tokens of segment i attend only to
// encoder tokens of segment i, the same structure BuildCrossMask encodes
// densely. The layouts must have the same number of segments.
func CrossBlocks(dec, enc RowLayout) []tensor.AttendBlock {
	if len(dec.Segments) != len(enc.Segments) {
		panic(fmt.Sprintf("model: cross blocks with %d decoder vs %d encoder segments",
			len(dec.Segments), len(enc.Segments)))
	}
	blocks := make([]tensor.AttendBlock, len(dec.Segments))
	for i, d := range dec.Segments {
		e := enc.Segments[i]
		blocks[i] = tensor.AttendBlock{
			Q: tensor.Span{Start: d.Start, End: d.End()},
			K: tensor.Span{Start: e.Start, End: e.End()},
		}
	}
	return blocks
}

// BuildMask materializes the paper's mask matrix M (Eq. 6) for this row:
// a Total×Total additive mask that is 0 on each Q_i·K_iᵀ diagonal block and
// −∞ (tensor.NegInf) everywhere else, padding included.
func (r RowLayout) BuildMask() *tensor.Matrix {
	m := tensor.New(r.Total, r.Total)
	m.Fill(tensor.NegInf)
	for _, s := range r.Segments {
		for i := s.Start; i < s.End(); i++ {
			row := m.Row(i)
			for j := s.Start; j < s.End(); j++ {
				row[j] = 0
			}
		}
	}
	return m
}

// BuildCausalMask is BuildMask restricted additionally to causal order:
// token i may attend to token j only if they share a segment and j ≤ i.
// The decoder's self-attention uses this.
func (r RowLayout) BuildCausalMask() *tensor.Matrix {
	m := tensor.New(r.Total, r.Total)
	m.Fill(tensor.NegInf)
	for _, s := range r.Segments {
		for i := s.Start; i < s.End(); i++ {
			row := m.Row(i)
			for j := s.Start; j <= i; j++ {
				row[j] = 0
			}
		}
	}
	return m
}

// BuildCrossMask returns the additive mask for decoder→encoder cross
// attention: decoder token in segment i (layout r) may attend only to
// encoder tokens of segment i (layout enc). The two layouts must have the
// same number of segments.
func (r RowLayout) BuildCrossMask(enc RowLayout) *tensor.Matrix {
	if len(r.Segments) != len(enc.Segments) {
		panic(fmt.Sprintf("model: cross mask with %d decoder vs %d encoder segments",
			len(r.Segments), len(enc.Segments)))
	}
	m := tensor.New(r.Total, enc.Total)
	m.Fill(tensor.NegInf)
	for si, s := range r.Segments {
		es := enc.Segments[si]
		for i := s.Start; i < s.End(); i++ {
			row := m.Row(i)
			for j := es.Start; j < es.End(); j++ {
				row[j] = 0
			}
		}
	}
	return m
}

// Slot groups one or more whole segments for slotted ConcatBatching (§4.2).
// A slot spans token offsets [Start, Start+Len) of the row.
type Slot struct {
	Start int
	Len   int
	// SegIdx lists the indices (into RowLayout.Segments) of the segments
	// the slot contains.
	SegIdx []int
}

// SlotsOfSize partitions the row into slots of at most size tokens, never
// splitting a segment across slots. It returns an error if any segment is
// longer than size (such requests cannot be served at this slot size —
// exactly the constraint §4.2.1 discusses).
func (r RowLayout) SlotsOfSize(size int) ([]Slot, error) {
	if size <= 0 {
		return nil, fmt.Errorf("model: slot size %d must be positive", size)
	}
	var slots []Slot
	cur := Slot{}
	flush := func() {
		if len(cur.SegIdx) > 0 {
			slots = append(slots, cur)
		}
	}
	for i, s := range r.Segments {
		if s.Len > size {
			return nil, fmt.Errorf("model: segment %d length %d exceeds slot size %d", i, s.Len, size)
		}
		if len(cur.SegIdx) > 0 && (s.End()-cur.Start) > size {
			flush()
			cur = Slot{}
		}
		if len(cur.SegIdx) == 0 {
			cur.Start = s.Start
		}
		cur.SegIdx = append(cur.SegIdx, i)
		cur.Len = s.End() - cur.Start
	}
	flush()
	return slots, nil
}

// WholeRowSlot returns the single slot covering every segment — pure
// ConcatBatching is the slotted scheme with one slot (§5.3).
func (r RowLayout) WholeRowSlot() []Slot {
	idx := make([]int, len(r.Segments))
	for i := range idx {
		idx[i] = i
	}
	used := r.Used()
	if used == 0 {
		return nil
	}
	return []Slot{{Start: 0, Len: used, SegIdx: idx}}
}
