package model

import (
	"runtime"
	"testing"

	"tcb/internal/rng"
	"tcb/internal/tensor"
	"tcb/internal/vocab"
)

// serialKernels pins GOMAXPROCS to 1 so every tensor kernel takes its inline
// serial path — the only configuration where the steady-state hot path is
// guaranteed allocation-free (parallel fan-out allocates goroutine closures
// by design).
func serialKernels(t *testing.T) {
	t.Helper()
	old := runtime.GOMAXPROCS(1)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// A warm multi-head attention call — workspace buckets populated, weights
// resident — must not touch the heap at all.
func TestWarmMultiHeadAttentionZeroAllocs(t *testing.T) {
	serialKernels(t)
	m := testModel(t)
	w := m.P.Encoder[0].SelfAttn
	src := rng.New(7)
	x := tensor.New(24, m.Cfg.DModel)
	for i := range x.Data {
		x.Data[i] = float32(src.Normal(0, 0.3))
	}
	layout := RowLayout{Segments: []Segment{{Start: 0, Len: 10}, {Start: 10, Len: 14}}, Total: 24}
	mask := layout.BuildMask()
	dst := tensor.New(24, m.Cfg.DModel)
	ws := tensor.NewWorkspace()
	defer ws.Close()
	MultiHeadAttentionInto(dst, w, m.Cfg.NumHeads, x, x, mask, ws) // warm the buckets
	allocs := testing.AllocsPerRun(20, func() {
		MultiHeadAttentionInto(dst, w, m.Cfg.NumHeads, x, x, mask, ws)
	})
	if allocs != 0 {
		t.Fatalf("warm MultiHeadAttentionInto allocated %g times per run", allocs)
	}
}

// The block-sparse slotted path must be allocation-free too once warm.
func TestWarmBlockAttentionZeroAllocs(t *testing.T) {
	serialKernels(t)
	m := testModel(t)
	w := m.P.Encoder[0].SelfAttn
	layout := RowLayout{Segments: []Segment{{Start: 0, Len: 10}, {Start: 10, Len: 14}}, Total: 24}
	blocks := SlotBlocks([]Slot{{Start: 0, Len: 24}})
	seg := layout.SegIDs()
	src := rng.New(8)
	x := tensor.New(24, m.Cfg.DModel)
	for i := range x.Data {
		x.Data[i] = float32(src.Normal(0, 0.3))
	}
	dst := tensor.New(24, m.Cfg.DModel)
	ws := tensor.NewWorkspace()
	defer ws.Close()
	MultiHeadAttentionBlocksInto(dst, w, m.Cfg.NumHeads, x, x, blocks, seg, seg, false, ws)
	allocs := testing.AllocsPerRun(20, func() {
		MultiHeadAttentionBlocksInto(dst, w, m.Cfg.NumHeads, x, x, blocks, seg, seg, false, ws)
	})
	if allocs != 0 {
		t.Fatalf("warm MultiHeadAttentionBlocksInto allocated %g times per run", allocs)
	}
}

// A cached decode step in steady state — KV caches reserved, buffers sized —
// must be allocation-free: this is the per-token serving cost.
func TestCachedDecodeStepZeroAllocs(t *testing.T) {
	serialKernels(t)
	m := testModel(t)
	src := rng.New(9)
	requests := [][]int{randTokens(src, 5), randTokens(src, 8), randTokens(src, 3)}
	row, layout := buildConcatRow(requests, 20)
	encOut := m.EncodeRow(row, layout, nil, AttDense, true)
	st := m.NewDecodeState(encOut, layout)
	next := []int{vocab.BosID, vocab.BosID, vocab.BosID}
	for warm := 0; warm < 3; warm++ { // BOS + two steady-state steps
		if _, err := st.Step(next); err != nil {
			t.Fatal(err)
		}
		for i := range next {
			next[i] = vocab.FirstWordID
		}
	}
	var err error
	allocs := testing.AllocsPerRun(50, func() {
		_, err = st.Step(next)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("warm cached decode Step allocated %g times per run", allocs)
	}
}

// The whole slotted encoder forward must stay allocation-free once the
// workspace is warm (embedRow's output matrix is the one permitted
// allocation, so the layer stack is exercised via EncodeRowWS reuse of ws).
func TestWarmEncodeLayerStackAllocs(t *testing.T) {
	serialKernels(t)
	m := testModel(t)
	src := rng.New(10)
	requests := [][]int{randTokens(src, 6), randTokens(src, 7)}
	row, layout := buildConcatRow(requests, 16)
	slots := layout.WholeRowSlot()
	ws := tensor.NewWorkspace()
	defer ws.Close()
	m.EncodeRowWS(row, layout, slots, AttSlotted, true, ws) // warm
	allocs := testing.AllocsPerRun(10, func() {
		m.EncodeRowWS(row, layout, slots, AttSlotted, true, ws)
	})
	// embedRow allocates the activation matrix plus per-call layout slices;
	// the bound asserts the layer stack itself stays on the workspace.
	if allocs > 8 {
		t.Fatalf("warm EncodeRowWS allocated %g times per run, want ≤ 8 (embed + layout only)", allocs)
	}
}
