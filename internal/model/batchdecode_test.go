package model

import (
	"reflect"
	"testing"

	"tcb/internal/rng"
	"tcb/internal/vocab"
)

// encodeRows encodes each request group into one concatenated row and returns
// the fused-decoder inputs plus per-row caps.
func encodeRows(m *Model, groups [][][]int, padTo int, cap int) ([]BatchDecodeRow, [][]int) {
	rows := make([]BatchDecodeRow, len(groups))
	caps := make([][]int, len(groups))
	for r, requests := range groups {
		row, layout := buildConcatRow(requests, padTo)
		rows[r] = BatchDecodeRow{
			EncOut: m.EncodeRow(row, layout, nil, AttDense, true),
			Layout: layout,
		}
		caps[r] = make([]int, len(requests))
		for i := range caps[r] {
			caps[r][i] = cap
		}
	}
	return rows, caps
}

// The tentpole correctness claim: fused batch-wide decoding is
// token-identical to per-row cached decoding, which is token-identical to
// mask-based decoding — for single-segment (naive) rows, multi-segment
// concat rows, and mixed batches.
func TestGenerateBatchCachedMatchesPerRow(t *testing.T) {
	m := testModel(t)
	src := rng.New(42)
	cases := []struct {
		name   string
		groups [][][]int
	}{
		{"naive single-segment rows", [][][]int{
			{randTokens(src, 7)},
			{randTokens(src, 12)},
			{randTokens(src, 4)},
		}},
		{"concat multi-segment rows", [][][]int{
			{randTokens(src, 5), randTokens(src, 9), randTokens(src, 3)},
			{randTokens(src, 8), randTokens(src, 6)},
		}},
		{"mixed segment counts", [][][]int{
			{randTokens(src, 10)},
			{randTokens(src, 4), randTokens(src, 4), randTokens(src, 4), randTokens(src, 4)},
			{randTokens(src, 2), randTokens(src, 13)},
		}},
	}
	const cap = 12
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rows, caps := encodeRows(m, tc.groups, 24, cap)
			fused, err := m.GenerateBatchCached(rows, caps)
			if err != nil {
				t.Fatal(err)
			}
			for r := range rows {
				perRow, err := m.GenerateRowCached(rows[r].EncOut, rows[r].Layout, caps[r])
				if err != nil {
					t.Fatal(err)
				}
				masked := m.GenerateRowCapped(rows[r].EncOut, rows[r].Layout, nil, caps[r], AttDense)
				if !reflect.DeepEqual(fused[r], perRow) {
					t.Fatalf("row %d: fused %v != per-row cached %v", r, fused[r], perRow)
				}
				if !reflect.DeepEqual(fused[r], masked) {
					t.Fatalf("row %d: fused %v != mask-based %v", r, fused[r], masked)
				}
			}
		})
	}
}

// Slotted-encoded rows must decode identically through the fused and
// per-row cached paths too (the decoder is scheme-agnostic; only the encoder
// output differs).
func TestGenerateBatchCachedSlottedRows(t *testing.T) {
	m := testModel(t)
	src := rng.New(43)
	groups := [][][]int{
		{randTokens(src, 6), randTokens(src, 6)},
		{randTokens(src, 9), randTokens(src, 3)},
	}
	const padTo, cap = 16, 10
	rows := make([]BatchDecodeRow, len(groups))
	caps := make([][]int, len(groups))
	for r, requests := range groups {
		row, layout := buildConcatRow(requests, padTo)
		rows[r] = BatchDecodeRow{
			EncOut: m.EncodeRow(row, layout, layout.WholeRowSlot(), AttSlotted, true),
			Layout: layout,
		}
		caps[r] = []int{cap, cap}
	}
	fused, err := m.GenerateBatchCached(rows, caps)
	if err != nil {
		t.Fatal(err)
	}
	for r := range rows {
		perRow, err := m.GenerateRowCached(rows[r].EncOut, rows[r].Layout, caps[r])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fused[r], perRow) {
			t.Fatalf("slotted row %d: fused %v != per-row cached %v", r, fused[r], perRow)
		}
	}
}

// Asymmetric caps, zero caps and empty rows must all round-trip through the
// fused decoder with per-segment stopping intact.
func TestGenerateBatchCachedCapsAndEdges(t *testing.T) {
	m := testModel(t)
	src := rng.New(44)
	groups := [][][]int{
		{randTokens(src, 5), randTokens(src, 7)},
		{randTokens(src, 6)},
	}
	rows, _ := encodeRows(m, groups, 16, 0)
	caps := [][]int{{3, 0}, {8}}
	fused, err := m.GenerateBatchCached(rows, caps)
	if err != nil {
		t.Fatal(err)
	}
	if len(fused[0][0].Tokens) > 3 {
		t.Fatalf("cap 3 produced %d tokens", len(fused[0][0].Tokens))
	}
	if len(fused[0][1].Tokens) != 0 || fused[0][1].Steps != 0 {
		t.Fatalf("cap 0 produced %+v", fused[0][1])
	}
	for r := range rows {
		perRow, err := m.GenerateRowCached(rows[r].EncOut, rows[r].Layout, caps[r])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fused[r], perRow) {
			t.Fatalf("row %d: fused %v != per-row %v", r, fused[r], perRow)
		}
	}

	// Shape validation.
	if _, err := m.GenerateBatchCached(rows, [][]int{{1}}); err == nil {
		t.Fatal("mismatched cap rows must fail")
	}
	if _, err := m.GenerateBatchCached(rows, [][]int{{1}, {1}}); err == nil {
		t.Fatal("mismatched cap count within a row must fail")
	}
}

// Step must reject malformed input without corrupting state.
func TestBatchDecodeStepValidation(t *testing.T) {
	m := testModel(t)
	src := rng.New(45)
	row, layout := buildConcatRow([][]int{randTokens(src, 5)}, 8)
	st := m.NewBatchDecodeState([]BatchDecodeRow{{
		EncOut: m.EncodeRow(row, layout, nil, AttDense, true),
		Layout: layout,
	}})
	if _, err := st.Step([]int{1, 2}); err == nil {
		t.Fatal("wrong token count must fail")
	}
	if _, err := st.Step([]int{testVocab}); err == nil {
		t.Fatal("out-of-vocabulary token must fail")
	}
	if _, err := st.Step([]int{vocab.BosID}); err != nil {
		t.Fatal(err)
	}
}

// The batch-wide analogue of TestCachedDecodeStepZeroAllocs: a warm fused
// Step across multiple rows must not touch the heap.
func TestBatchDecodeStepZeroAllocs(t *testing.T) {
	serialKernels(t)
	m := testModel(t)
	src := rng.New(46)
	groups := [][][]int{
		{randTokens(src, 5), randTokens(src, 8)},
		{randTokens(src, 3), randTokens(src, 6), randTokens(src, 4)},
	}
	rows := make([]BatchDecodeRow, len(groups))
	for r, requests := range groups {
		row, layout := buildConcatRow(requests, 20)
		rows[r] = BatchDecodeRow{
			EncOut: m.EncodeRow(row, layout, nil, AttDense, true),
			Layout: layout,
		}
	}
	st := m.NewBatchDecodeState(rows)
	next := make([]int, st.Segments())
	for i := range next {
		next[i] = vocab.BosID
	}
	for warm := 0; warm < 3; warm++ { // BOS + two steady-state steps
		if _, err := st.Step(next); err != nil {
			t.Fatal(err)
		}
		for i := range next {
			next[i] = vocab.FirstWordID
		}
	}
	var err error
	allocs := testing.AllocsPerRun(50, func() {
		_, err = st.Step(next)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("warm fused decode Step allocated %g times per run", allocs)
	}
}

// A fused Step with some segments finished must skip them (nil logits) while
// continuing the others, and the survivors' tokens must still match a
// per-row decode.
func TestBatchDecodePartialFinish(t *testing.T) {
	m := testModel(t)
	src := rng.New(47)
	row, layout := buildConcatRow([][]int{randTokens(src, 5), randTokens(src, 7)}, 16)
	enc := m.EncodeRow(row, layout, nil, AttDense, true)
	st := m.NewBatchDecodeState([]BatchDecodeRow{{EncOut: enc, Layout: layout}})
	st.MarkFinished(0)
	logits, err := st.Step([]int{vocab.BosID, vocab.BosID})
	if err != nil {
		t.Fatal(err)
	}
	if logits[0] != nil {
		t.Fatal("finished segment must yield nil logits")
	}
	if logits[1] == nil {
		t.Fatal("live segment must yield logits")
	}

	// Compare against a single-row DecodeState advancing only segment 1.
	ref := m.NewDecodeState(enc, layout)
	ref.MarkFinished(0)
	refLogits, err := ref.Step([]int{vocab.BosID, vocab.BosID})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(logits[1], refLogits[1]) {
		t.Fatal("fused logits diverge from single-row state under partial finish")
	}
	if !st.AllFinished() {
		st.MarkFinished(1)
	}
	if !st.AllFinished() {
		t.Fatal("AllFinished false with every segment finished")
	}
}
