package model

import (
	"testing"

	"tcb/internal/rng"
	"tcb/internal/tensor"
)

func beamSetup(t *testing.T) (*Model, RowLayout, *tensor.Matrix) {
	t.Helper()
	m := testModel(t)
	src := rng.New(81)
	req := randTokens(src, 6)
	layout := SingleSegment(6, 6)
	encOut := m.EncodeRow(req, layout, nil, AttDense, true)
	return m, layout, encOut
}

func TestBeamWidth1IsGreedy(t *testing.T) {
	m, layout, encOut := beamSetup(t)
	greedy, err := m.GenerateRowCached(encOut, layout, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	beam, err := m.GenerateBeam(encOut, layout, 0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(beam.Tokens) != len(greedy[0].Tokens) {
		t.Fatalf("beam-1 %v vs greedy %v", beam.Tokens, greedy[0].Tokens)
	}
	for i := range beam.Tokens {
		if beam.Tokens[i] != greedy[0].Tokens[i] {
			t.Fatalf("token %d differs", i)
		}
	}
}

func TestBeamImprovesLogProb(t *testing.T) {
	m, layout, encOut := beamSetup(t)
	narrow, err := m.GenerateBeam(encOut, layout, 0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := m.GenerateBeam(encOut, layout, 0, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if wide.LogProb < narrow.LogProb-1e-6 {
		t.Fatalf("width 4 logprob %v below width 1 %v", wide.LogProb, narrow.LogProb)
	}
}

func TestBeamDeterministic(t *testing.T) {
	m, layout, encOut := beamSetup(t)
	a, err := m.GenerateBeam(encOut, layout, 0, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.GenerateBeam(encOut, layout, 0, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.LogProb != b.LogProb || len(a.Tokens) != len(b.Tokens) {
		t.Fatalf("beam nondeterministic: %+v vs %+v", a, b)
	}
}

func TestBeamSegmentIsolation(t *testing.T) {
	// Beam output for a request must be identical whether the request is
	// served alone or inside a concatenated row.
	m := testModel(t)
	src := rng.New(82)
	reqA := randTokens(src, 5)
	reqB := randTokens(src, 7)
	soloLayout := SingleSegment(5, 5)
	soloEnc := m.EncodeRow(reqA, soloLayout, nil, AttDense, true)
	solo, err := m.GenerateBeam(soloEnc, soloLayout, 0, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	row, layout := buildConcatRow([][]int{reqA, reqB}, 12)
	enc := m.EncodeRow(row, layout, nil, AttDense, true)
	batched, err := m.GenerateBeam(enc, layout, 0, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(solo.Tokens) != len(batched.Tokens) {
		t.Fatalf("beam depends on batch composition: %v vs %v", solo.Tokens, batched.Tokens)
	}
	for i := range solo.Tokens {
		if solo.Tokens[i] != batched.Tokens[i] {
			t.Fatalf("token %d differs in batch", i)
		}
	}
}

func TestBeamValidation(t *testing.T) {
	m, layout, encOut := beamSetup(t)
	if _, err := m.GenerateBeam(encOut, layout, 0, 0, 4); err == nil {
		t.Fatal("zero width should fail")
	}
	if _, err := m.GenerateBeam(encOut, layout, 3, 2, 4); err == nil {
		t.Fatal("out-of-range segment should fail")
	}
}

func TestSequenceLogProbMatchesGreedyChain(t *testing.T) {
	// The scored logprob of the greedy output must equal the sum of the
	// greedy chain's own step logprobs — consistency of the scorer.
	m, layout, encOut := beamSetup(t)
	beam, err := m.GenerateBeam(encOut, layout, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !beamFinished(beam) {
		t.Skip("greedy did not emit EOS within the cap; scorer comparison needs a full sequence")
	}
	score, err := m.SequenceLogProb(encOut, layout, 0, beam.Tokens)
	if err != nil {
		t.Fatal(err)
	}
	if diff := score - beam.LogProb; diff > 1e-3 || diff < -1e-3 {
		t.Fatalf("scorer %v vs beam %v", score, beam.LogProb)
	}
}

// beamFinished reports whether the hypothesis terminated with EOS (Steps
// exceeds the emitted token count).
func beamFinished(b BeamResult) bool { return b.Steps > len(b.Tokens) }
