package model

import (
	"bytes"
	"math"
	"reflect"
	"sync"
	"testing"

	"tcb/internal/rng"
	"tcb/internal/tensor"
	"tcb/internal/vocab"
)

// quantizedTestModel builds the shared small model and quantizes every
// projection, verifying the int8 path actually engages.
func quantizedTestModel(t *testing.T) *Model {
	t.Helper()
	m := testModel(t)
	m.EnsureQuantized()
	if !m.P.OutProj.Quantized() || !m.P.Encoder[0].SelfAttn.WQ.Quantized() {
		t.Fatal("EnsureQuantized left projections unquantized")
	}
	return m
}

// The quantized path keeps the batch-composition-invariance contract: exact
// integer accumulation with row-local activation scales means fused
// batch-wide decoding still matches per-row cached decoding token for token
// (just not the float32 path's tokens).
func TestQuantizedFusedMatchesPerRowTokens(t *testing.T) {
	m := quantizedTestModel(t)
	src := rng.New(142)
	groups := [][][]int{
		{randTokens(src, 7)},
		{randTokens(src, 5), randTokens(src, 9), randTokens(src, 3)},
		{randTokens(src, 8), randTokens(src, 6)},
	}
	rows, caps := encodeRows(m, groups, 24, 12)
	fused, err := m.GenerateBatchCached(rows, caps)
	if err != nil {
		t.Fatal(err)
	}
	for r := range rows {
		perRow, err := m.GenerateRowCached(rows[r].EncOut, rows[r].Layout, caps[r])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fused[r], perRow) {
			t.Fatalf("quantized row %d: fused %v != per-row cached %v", r, fused[r], perRow)
		}
	}
}

// Quantization error stays bounded end to end: the quantized encoder output
// deviates from the float32 reference by a small fraction of the output's
// own scale — and the deviation is nonzero, proving the int8 kernels (and
// not the float path) produced it.
func TestQuantizedEncoderBoundedError(t *testing.T) {
	mFloat := testModel(t)
	mQuant := quantizedTestModel(t)
	src := rng.New(143)
	seq := randTokens(src, 20)

	tensor.ResetKernelCounters()
	t.Cleanup(tensor.ResetKernelCounters)
	ref := mFloat.EncodeSingle(seq)
	got := mQuant.EncodeSingle(seq)
	if c := tensor.KernelCounters(); c.Int8 == 0 {
		t.Fatal("quantized encode never dispatched an int8 GEMM")
	}

	var maxErr, refScale float64
	for i := range ref.Data {
		if d := math.Abs(float64(ref.Data[i] - got.Data[i])); d > maxErr {
			maxErr = d
		}
		if a := math.Abs(float64(ref.Data[i])); a > refScale {
			refScale = a
		}
	}
	if maxErr == 0 {
		t.Fatal("quantized and float32 encoders agree bitwise — int8 path not in effect")
	}
	if maxErr > 0.1*refScale {
		t.Fatalf("max encoder error %g exceeds 10%% of output absmax %g", maxErr, refScale)
	}
}

// EnsureQuantized is safe and idempotent under concurrency: cluster replicas
// share one Model, and every replica's first Prepare races to quantize it.
func TestEnsureQuantizedConcurrentIdempotent(t *testing.T) {
	m := testModel(t)
	src := rng.New(144)
	seq := randTokens(src, 10)
	var wg sync.WaitGroup
	outs := make([]*tensor.Matrix, 8)
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.EnsureQuantized()
			outs[i] = m.EncodeSingle(seq)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(outs); i++ {
		if !outs[i].Equal(outs[0]) {
			t.Fatalf("concurrent quantized encode %d diverged by %g", i, outs[i].MaxAbsDiff(outs[0]))
		}
	}
	q := m.P.Encoder[0].SelfAttn.WQ
	if !q.Quantized() {
		t.Fatal("model not quantized after concurrent EnsureQuantized")
	}
}

// Checkpoints stay float32-only: the int8 copies are derived state and must
// not ride through gob, and a reloaded model is unquantized until asked.
func TestQuantizedModelCheckpointStaysFloat(t *testing.T) {
	m := quantizedTestModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.P.OutProj.Quantized() || loaded.P.Encoder[0].SelfAttn.WQ.Quantized() {
		t.Fatal("int8 state leaked through the checkpoint")
	}
	// The reloaded model computes the float32 reference outputs, not the
	// quantized ones.
	ref := testModel(t) // same seed, never quantized
	src := rng.New(145)
	seq := randTokens(src, 12)
	if got, want := loaded.EncodeSingle(seq), ref.EncodeSingle(seq); !got.Equal(want) {
		t.Fatalf("reloaded model diverges from float reference by %g", got.MaxAbsDiff(want))
	}
}

// Warm fused decode steps stay allocation-free on the quantized path: the
// activation-quantization scratch comes from the state's workspace pool.
func TestQuantizedBatchDecodeStepZeroAllocs(t *testing.T) {
	serialKernels(t)
	m := quantizedTestModel(t)
	src := rng.New(146)
	groups := [][][]int{
		{randTokens(src, 5), randTokens(src, 8)},
		{randTokens(src, 3), randTokens(src, 6), randTokens(src, 4)},
	}
	rows := make([]BatchDecodeRow, len(groups))
	for r, requests := range groups {
		row, layout := buildConcatRow(requests, 20)
		rows[r] = BatchDecodeRow{
			EncOut: m.EncodeRow(row, layout, nil, AttDense, true),
			Layout: layout,
		}
	}
	st := m.NewBatchDecodeState(rows)
	next := make([]int, st.Segments())
	for i := range next {
		next[i] = vocab.BosID
	}
	for warm := 0; warm < 3; warm++ {
		if _, err := st.Step(next); err != nil {
			t.Fatal(err)
		}
		for i := range next {
			next[i] = vocab.FirstWordID
		}
	}
	var err error
	allocs := testing.AllocsPerRun(50, func() {
		_, err = st.Step(next)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("warm quantized fused Step allocated %g times per run", allocs)
	}
}
