package model

import (
	"testing"

	"tcb/internal/rng"
)

func TestGenerateRowCappedPerSegment(t *testing.T) {
	m := testModel(t)
	src := rng.New(31)
	requests := [][]int{randTokens(src, 4), randTokens(src, 6), randTokens(src, 3)}
	row, layout := buildConcatRow(requests, 13)
	encOut := m.EncodeRow(row, layout, nil, AttDense, true)
	caps := []int{1, 4, 2}
	res := m.GenerateRowCapped(encOut, layout, nil, caps, AttDense)
	for i, r := range res {
		if len(r.Tokens) > caps[i] {
			t.Fatalf("segment %d generated %d tokens, cap %d", i, len(r.Tokens), caps[i])
		}
	}
	// With random weights EOS is rare, so caps bind: finish steps differ.
	if res[0].Steps >= res[1].Steps {
		t.Fatalf("capped segment should finish earlier: steps %d vs %d",
			res[0].Steps, res[1].Steps)
	}
}

func TestGenerateRowCappedZeroCap(t *testing.T) {
	m := testModel(t)
	src := rng.New(32)
	req := randTokens(src, 5)
	layout := SingleSegment(5, 5)
	encOut := m.EncodeRow(req, layout, nil, AttDense, true)
	res := m.GenerateRowCapped(encOut, layout, nil, []int{0}, AttDense)
	if len(res[0].Tokens) != 0 || res[0].Steps != 0 {
		t.Fatalf("zero cap must not generate: %+v", res[0])
	}
}

func TestGenerateRowCappedMatchesUncappedPrefix(t *testing.T) {
	// A capped run must produce a prefix of the uncapped run's tokens:
	// caps change when decoding stops, never what is decoded.
	m := testModel(t)
	src := rng.New(33)
	req := randTokens(src, 6)
	layout := SingleSegment(6, 6)
	encOut := m.EncodeRow(req, layout, nil, AttDense, true)
	full := m.GenerateRow(encOut, layout, nil, 6, AttDense)
	capped := m.GenerateRowCapped(encOut, layout, nil, []int{3}, AttDense)
	if len(capped[0].Tokens) > 3 {
		t.Fatalf("cap ignored: %v", capped[0].Tokens)
	}
	for i, tok := range capped[0].Tokens {
		if tok != full[0].Tokens[i] {
			t.Fatalf("capped token %d differs from uncapped prefix", i)
		}
	}
}

func TestGenerateRowCappedBadLengthPanics(t *testing.T) {
	m := testModel(t)
	src := rng.New(34)
	req := randTokens(src, 4)
	layout := SingleSegment(4, 4)
	encOut := m.EncodeRow(req, layout, nil, AttDense, true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on caps/segment mismatch")
		}
	}()
	m.GenerateRowCapped(encOut, layout, nil, []int{1, 2}, AttDense)
}

// One capped segment finishing early must not change what the others
// decode: finished segments keep their prefix in the decoder input, so the
// block-diagonal isolation already guarantees this — verify it.
func TestCapDoesNotPerturbNeighbors(t *testing.T) {
	m := testModel(t)
	src := rng.New(35)
	requests := [][]int{randTokens(src, 5), randTokens(src, 5)}
	row, layout := buildConcatRow(requests, 10)
	encOut := m.EncodeRow(row, layout, nil, AttDense, true)
	uniform := m.GenerateRowCapped(encOut, layout, nil, []int{4, 4}, AttDense)
	skewed := m.GenerateRowCapped(encOut, layout, nil, []int{1, 4}, AttDense)
	if len(skewed[1].Tokens) != len(uniform[1].Tokens) {
		t.Fatalf("neighbor output length changed: %d vs %d",
			len(skewed[1].Tokens), len(uniform[1].Tokens))
	}
	for i := range skewed[1].Tokens {
		if skewed[1].Tokens[i] != uniform[1].Tokens[i] {
			t.Fatalf("neighbor token %d changed when the other segment was capped", i)
		}
	}
}
