package model

import (
	"reflect"
	"testing"

	"tcb/internal/rng"
	"tcb/internal/vocab"
)

// The tentpole correctness claim of mid-flight removal: after RemoveSegment,
// the survivors' logits are bitwise identical to a state that kept the
// retired segment around as a finished placeholder — removal changes GEMM
// height only, never any survivor's numbers.
func TestRemoveSegmentBitwiseIdentical(t *testing.T) {
	m := testModel(t)
	src := rng.New(60)
	row, layout := buildConcatRow([][]int{
		randTokens(src, 5), randTokens(src, 8), randTokens(src, 4),
	}, 20)
	enc := m.EncodeRow(row, layout, nil, AttDense, true)
	mk := func() *BatchDecodeState {
		return m.NewBatchDecodeStateReserve([]BatchDecodeRow{{EncOut: enc, Layout: layout}}, 8)
	}
	kept, removed := mk(), mk()
	defer kept.Close()
	defer removed.Close()

	// Advance both states identically for two steps.
	toks := []int{vocab.BosID, vocab.BosID, vocab.BosID}
	for step := 0; step < 2; step++ {
		if _, err := kept.Step(toks); err != nil {
			t.Fatal(err)
		}
		if _, err := removed.Step(toks); err != nil {
			t.Fatal(err)
		}
		toks = []int{vocab.FirstWordID, vocab.FirstWordID + 1, vocab.FirstWordID + 2}
	}

	// Retire the middle segment: one state masks it, the other removes it.
	kept.MarkFinished(1)
	removed.RemoveSegment(1)
	if removed.Segments() != 2 {
		t.Fatalf("Segments() = %d after removal, want 2", removed.Segments())
	}

	for step := 0; step < 3; step++ {
		lk, err := kept.Step([]int{vocab.FirstWordID, 0, vocab.FirstWordID + 3})
		if err != nil {
			t.Fatal(err)
		}
		lr, err := removed.Step([]int{vocab.FirstWordID, vocab.FirstWordID + 3})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lk[0], lr[0]) || !reflect.DeepEqual(lk[2], lr[1]) {
			t.Fatalf("step %d: survivor logits diverge after RemoveSegment", step)
		}
	}
}

// InsertSegment must behave exactly like a segment that was in the batch
// from construction: the admitted segment's logits match a fresh
// single-segment state bitwise, and the incumbents never notice.
func TestInsertSegmentMatchesFreshDecode(t *testing.T) {
	m := testModel(t)
	src := rng.New(61)
	row, layout := buildConcatRow([][]int{randTokens(src, 6)}, 12)
	enc := m.EncodeRow(row, layout, nil, AttDense, true)
	st := m.NewBatchDecodeStateReserve([]BatchDecodeRow{{EncOut: enc, Layout: layout}}, 8)
	defer st.Close()
	solo := m.NewBatchDecodeStateReserve([]BatchDecodeRow{{EncOut: enc, Layout: layout}}, 8)
	defer solo.Close()

	// The incumbent decodes alone for two steps.
	for _, tok := range []int{vocab.BosID, vocab.FirstWordID} {
		if _, err := st.Step([]int{tok}); err != nil {
			t.Fatal(err)
		}
		if _, err := solo.Step([]int{tok}); err != nil {
			t.Fatal(err)
		}
	}

	// Admit a new request mid-flight; reference is a fresh state of its own.
	newToks := randTokens(src, 9)
	newRow, newLayout := buildConcatRow([][]int{newToks}, len(newToks))
	newEnc := m.EncodeRow(newRow, newLayout, nil, AttDense, true)
	idx, err := st.InsertSegment(newEnc)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 || st.Segments() != 2 {
		t.Fatalf("InsertSegment -> idx %d, Segments %d; want 1, 2", idx, st.Segments())
	}
	fresh := m.NewBatchDecodeStateReserve([]BatchDecodeRow{{EncOut: newEnc, Layout: newLayout}}, 8)
	defer fresh.Close()

	toks := []int{vocab.FirstWordID + 1, vocab.BosID}
	for step := 0; step < 3; step++ {
		lm, err := st.Step(toks)
		if err != nil {
			t.Fatal(err)
		}
		ls, err := solo.Step(toks[:1])
		if err != nil {
			t.Fatal(err)
		}
		lf, err := fresh.Step(toks[1:])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lm[0], ls[0]) {
			t.Fatalf("step %d: incumbent logits changed after InsertSegment", step)
		}
		if !reflect.DeepEqual(lm[1], lf[0]) {
			t.Fatalf("step %d: admitted segment diverges from fresh decode", step)
		}
		toks = []int{vocab.FirstWordID + 2, vocab.FirstWordID + 4}
	}

	// Validation: empty, wrong width, and over-length encoder outputs.
	if _, err := st.InsertSegment(newEnc.Slice(0, 0)); err == nil {
		t.Fatal("empty encoder output must fail")
	}
	bad := newEnc.Slice(0, 2)
	bad.Cols++
	if _, err := st.InsertSegment(bad); err == nil {
		t.Fatal("wrong encoder width must fail")
	}
}

// A warm remove+insert cycle — retire a segment, admit a like-sized one —
// must recycle every cache buffer through the state's workspace pool and
// touch the heap zero times.
func TestRemoveInsertZeroAllocs(t *testing.T) {
	serialKernels(t)
	m := testModel(t)
	src := rng.New(62)
	row, layout := buildConcatRow([][]int{randTokens(src, 5), randTokens(src, 7)}, 16)
	enc := m.EncodeRow(row, layout, nil, AttDense, true)
	st := m.NewBatchDecodeStateReserve([]BatchDecodeRow{{EncOut: enc, Layout: layout}}, 8)
	defer st.Close()
	if _, err := st.Step([]int{vocab.BosID, vocab.BosID}); err != nil {
		t.Fatal(err)
	}

	newToks := randTokens(src, 6)
	newRow, newLayout := buildConcatRow([][]int{newToks}, len(newToks))
	newEnc := m.EncodeRow(newRow, newLayout, nil, AttDense, true)

	// Warm-up cycle: the first removal drops the construction-time buffers
	// (their caps are not pooled powers of two) and the first insertion
	// stocks the pool with recyclable ones.
	cycle := func() error {
		st.RemoveSegment(st.Segments() - 1)
		_, err := st.InsertSegment(newEnc)
		return err
	}
	if err := cycle(); err != nil {
		t.Fatal(err)
	}
	if err := cycle(); err != nil {
		t.Fatal(err)
	}
	var err error
	allocs := testing.AllocsPerRun(50, func() {
		err = cycle()
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Fatalf("warm remove+insert cycle allocated %g times per run", allocs)
	}

	// The recycled state must still decode: one full step over both segments.
	if _, err := st.Step([]int{vocab.FirstWordID, vocab.BosID}); err != nil {
		t.Fatal(err)
	}
}

// RemoveSegment out of range must panic rather than corrupt the tables.
func TestRemoveSegmentBounds(t *testing.T) {
	m := testModel(t)
	src := rng.New(63)
	row, layout := buildConcatRow([][]int{randTokens(src, 4)}, 8)
	st := m.NewBatchDecodeState([]BatchDecodeRow{{
		EncOut: m.EncodeRow(row, layout, nil, AttDense, true),
		Layout: layout,
	}})
	defer st.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("RemoveSegment(1) of 1 segment must panic")
		}
	}()
	st.RemoveSegment(1)
}
