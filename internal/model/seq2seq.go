package model

import (
	"fmt"

	"tcb/internal/tensor"
	"tcb/internal/vocab"
)

// AttentionMode selects how self-attention handles a concatenated row.
type AttentionMode int

const (
	// AttDense computes the full row×row score matrix and neutralizes
	// inter-request entries with the mask M — pure ConcatBatching (§4.1).
	AttDense AttentionMode = iota
	// AttSlotted computes attention per slot (Att_CB_S, §4.2.1), skipping
	// the off-slot score entries entirely.
	AttSlotted
)

func (m AttentionMode) String() string {
	switch m {
	case AttDense:
		return "dense"
	case AttSlotted:
		return "slotted"
	default:
		return fmt.Sprintf("AttentionMode(%d)", int(m))
	}
}

// Model is a Seq2Seq transformer with ConcatBatching-aware inference.
type Model struct {
	Cfg Config
	P   *Params
}

// New builds a model with deterministic random weights.
func New(cfg Config, seed uint64) *Model {
	return &Model{Cfg: cfg, P: NewParams(cfg, seed)}
}

// EnsureQuantized switches every projection onto the int8 per-channel
// quantized GEMM, exactly once per Params no matter how many engines share
// the model. Engines with Quantize set call this from Prepare.
func (m *Model) EnsureQuantized() {
	m.P.EnsureQuantized()
}

// embedRow embeds one row of token ids and applies positional encoding.
// separatePE selects TCB's per-segment encoding (Fig. 5b) versus the
// traditional whole-row encoding (Fig. 5a).
func (m *Model) embedRow(tokens []int, layout RowLayout, separatePE bool) *tensor.Matrix {
	if len(tokens) != layout.Total {
		panic(fmt.Sprintf("model: %d tokens vs layout total %d", len(tokens), layout.Total))
	}
	x := m.P.Embed(tokens)
	if separatePE {
		AddPositionalSeparate(x, m.P.PosEnc, layout)
	} else {
		AddPositionalTraditional(x, m.P.PosEnc)
	}
	return x
}

// attnCtx carries one row's per-mode attention inputs through the layer
// stack so they are built once per row, not once per layer: the dense mask
// for AttDense, the slot blocks and per-token segment ids for AttSlotted.
type attnCtx struct {
	mode   AttentionMode
	mask   *tensor.Matrix // dense additive mask (AttDense only)
	blocks []tensor.AttendBlock
	segIDs []int
	ws     *tensor.Workspace
}

// selfAttnInto dispatches one self-attention according to the row context.
func (m *Model) selfAttnInto(dst *tensor.Matrix, w *AttentionWeights, x *tensor.Matrix, rc *attnCtx, causal bool) {
	if rc.mode == AttSlotted {
		MultiHeadAttentionBlocksInto(dst, w, m.Cfg.NumHeads, x, x, rc.blocks, rc.segIDs, rc.segIDs, causal, rc.ws)
		return
	}
	MultiHeadAttentionInto(dst, w, m.Cfg.NumHeads, x, x, rc.mask, rc.ws)
}

// EncodeRow runs the encoder stack over one (possibly concatenated) row.
//
// tokens must have length layout.Total with padding positions set to
// vocab.PadID. For AttSlotted, slots must partition the segments (e.g. from
// RowLayout.SlotsOfSize); for AttDense, slots is ignored. separatePE must be
// true whenever the row holds more than one segment, or results are wrong —
// EncodeRow enforces this.
func (m *Model) EncodeRow(tokens []int, layout RowLayout, slots []Slot, mode AttentionMode, separatePE bool) *tensor.Matrix {
	return m.EncodeRowWS(tokens, layout, slots, mode, separatePE, nil)
}

// EncodeRowWS is EncodeRow with an explicit workspace for all layer
// intermediates; the engine passes one workspace per batch row so repeated
// rows reuse the same buffers. ws may be nil. The returned matrix is
// independently allocated (it outlives the workspace).
func (m *Model) EncodeRowWS(tokens []int, layout RowLayout, slots []Slot, mode AttentionMode, separatePE bool, ws *tensor.Workspace) *tensor.Matrix {
	if err := layout.Validate(); err != nil {
		panic(err)
	}
	if len(layout.Segments) > 1 && !separatePE {
		panic("model: concatenated rows require separate positional encoding")
	}
	x := m.embedRow(tokens, layout, separatePE)
	rc := attnCtx{mode: mode, ws: ws}
	if mode == AttSlotted {
		// Slotted rows never materialize the Total×Total mask: the block
		// list plus segment ids carry the same structure to the kernel.
		rc.blocks = SlotBlocks(slots)
		rc.segIDs = layout.SegIDs()
	} else {
		rc.mask = layout.BuildMask()
	}
	d := m.Cfg.DModel
	for _, layer := range m.P.Encoder {
		attn := ws.Get(x.Rows, d)
		m.selfAttnInto(attn, layer.SelfAttn, x, &rc, false)
		tensor.AddInPlace(x, attn)
		layer.Norm1.Apply(x)
		layer.FFN.ApplyInto(attn, x, ws)
		tensor.AddInPlace(x, attn)
		layer.Norm2.Apply(x)
		ws.Put(attn)
	}
	return x
}

// decodeStep runs the decoder stack over the current concatenated decoder
// prefixes and returns the hidden states.
func (m *Model) decodeStep(decTokens []int, decLayout RowLayout, decSlots []Slot,
	encOut *tensor.Matrix, encLayout RowLayout, mode AttentionMode, ws *tensor.Workspace) *tensor.Matrix {
	x := m.embedRow(decTokens, decLayout, true)
	rc := attnCtx{mode: mode, ws: ws}
	var crossMask *tensor.Matrix
	var crossBlocks []tensor.AttendBlock
	if mode == AttSlotted {
		rc.blocks = SlotBlocks(decSlots)
		rc.segIDs = decLayout.SegIDs()
		crossBlocks = CrossBlocks(decLayout, encLayout)
	} else {
		rc.mask = decLayout.BuildCausalMask()
		crossMask = decLayout.BuildCrossMask(encLayout)
	}
	d := m.Cfg.DModel
	for _, layer := range m.P.Decoder {
		attn := ws.Get(x.Rows, d)
		m.selfAttnInto(attn, layer.SelfAttn, x, &rc, true)
		tensor.AddInPlace(x, attn)
		layer.Norm1.Apply(x)
		if mode == AttSlotted {
			MultiHeadAttentionBlocksInto(attn, layer.CrossAttn, m.Cfg.NumHeads, x, encOut, crossBlocks, nil, nil, false, ws)
		} else {
			MultiHeadAttentionInto(attn, layer.CrossAttn, m.Cfg.NumHeads, x, encOut, crossMask, ws)
		}
		tensor.AddInPlace(x, attn)
		layer.Norm2.Apply(x)
		layer.FFN.ApplyInto(attn, x, ws)
		tensor.AddInPlace(x, attn)
		layer.Norm3.Apply(x)
		ws.Put(attn)
	}
	return x
}

// Logits projects hidden states to vocabulary logits.
func (m *Model) Logits(hidden *tensor.Matrix) *tensor.Matrix {
	return m.P.OutProj.Apply(hidden)
}

// regroupSlots maps an encoder slot partition onto a decoder layout: slot k
// of the result contains the same segment indices as encSlots[k], with
// offsets recomputed from decLayout. Empty groups are dropped.
func regroupSlots(encSlots []Slot, decLayout RowLayout) []Slot {
	out := make([]Slot, 0, len(encSlots))
	for _, s := range encSlots {
		var ns Slot
		first := true
		for _, si := range s.SegIdx {
			seg := decLayout.Segments[si]
			if first {
				ns.Start = seg.Start
				first = false
			}
			ns.SegIdx = append(ns.SegIdx, si)
			ns.Len = seg.End() - ns.Start
		}
		if !first {
			out = append(out, ns)
		}
	}
	return out
}

// GenerateResult is the decoded output for one segment of a row.
type GenerateResult struct {
	Tokens []int // generated ids, EOS excluded
	Steps  int   // decode steps consumed (≥1 unless maxNew == 0)
}

// GenerateRow greedily decodes every segment of a row in lockstep: one new
// token per unfinished segment per step, exactly the auto-regressive batch
// decode the paper's early-memory-cleaning observation (§4.2.2) relies on —
// segments finish at different steps.
//
// encOut and encLayout come from EncodeRow. encSlots is the slot partition
// used for slotted self-attention inside the decoder (ignored for AttDense).
// maxNew bounds generation length per segment.
func (m *Model) GenerateRow(encOut *tensor.Matrix, encLayout RowLayout, encSlots []Slot,
	maxNew int, mode AttentionMode) []GenerateResult {
	caps := make([]int, len(encLayout.Segments))
	for i := range caps {
		caps[i] = maxNew
	}
	return m.GenerateRowCapped(encOut, encLayout, encSlots, caps, mode)
}

// GenerateRowCapped is GenerateRow with a per-segment generation cap —
// the natural setting for seq2seq serving, where output length tracks
// input length and requests in one batch therefore finish at different
// decoder steps (the premise of §4.2.2's early memory cleaning).
// len(caps) must equal the number of segments.
func (m *Model) GenerateRowCapped(encOut *tensor.Matrix, encLayout RowLayout, encSlots []Slot,
	caps []int, mode AttentionMode) []GenerateResult {
	nSeg := len(encLayout.Segments)
	if len(caps) != nSeg {
		panic(fmt.Sprintf("model: %d caps for %d segments", len(caps), nSeg))
	}
	maxNew := 0
	for _, c := range caps {
		if c > maxNew {
			maxNew = c
		}
	}
	ws := tensor.NewWorkspace()
	defer ws.Close()
	results := make([]GenerateResult, nSeg)
	prefixes := make([][]int, nSeg)
	finished := make([]bool, nSeg)
	for i := range prefixes {
		prefixes[i] = []int{vocab.BosID}
		if caps[i] <= 0 {
			finished[i] = true
		}
	}
	for step := 0; step < maxNew; step++ {
		allDone := true
		for _, f := range finished {
			if !f {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		// Build the concatenated decoder row from current prefixes.
		lengths := make([]int, nSeg)
		total := 0
		for i, p := range prefixes {
			lengths[i] = len(p)
			total += len(p)
		}
		decLayout := ConcatLayout(lengths, total)
		decTokens := make([]int, 0, total)
		for _, p := range prefixes {
			decTokens = append(decTokens, p...)
		}
		var decSlots []Slot
		if mode == AttSlotted {
			decSlots = regroupSlots(encSlots, decLayout)
		}
		hidden := m.decodeStep(decTokens, decLayout, decSlots, encOut, encLayout, mode, ws)
		// Read the logits at each segment's last position.
		for i, seg := range decLayout.Segments {
			if finished[i] {
				continue
			}
			last := hidden.View(seg.End()-1, seg.End())
			logits := m.Logits(last)
			next := tensor.ArgmaxRows(logits)[0]
			results[i].Steps = step + 1
			if next == vocab.EosID {
				finished[i] = true
				continue
			}
			prefixes[i] = append(prefixes[i], next)
			results[i].Tokens = append(results[i].Tokens, next)
			if len(results[i].Tokens) >= caps[i] {
				finished[i] = true
			}
		}
	}
	return results
}

// EncodeSingle is a convenience wrapper: run one request alone (no
// concatenation, no padding) through the encoder. This is the reference
// the ConcatBatching equivalence tests compare against.
func (m *Model) EncodeSingle(tokens []int) *tensor.Matrix {
	layout := SingleSegment(len(tokens), len(tokens))
	return m.EncodeRow(tokens, layout, layout.WholeRowSlot(), AttDense, true)
}
