package model

import (
	"fmt"

	"tcb/internal/tensor"
)

// Prefix sharing. A request may declare that its first P tokens are a shared
// prompt prefix. The declaration changes the encoder geometry: prefix and
// suffix become two separate attention segments — each with its own
// positional encoding restart at 0 and full mutual isolation, exactly the
// treatment ConcatBatching gives two different requests in one row — while
// the request stays ONE unit for cross-attention and decoding (the decoder
// attends over prefix-then-suffix encoder rows as a single segment).
//
// Because separate positional encoding makes a segment's encoder output a
// function of its own tokens alone (§4.1.1, the property every equality test
// in this repo pins), the declared prefix's encoder rows — and therefore its
// projected cross-attention K/V — are bitwise identical whether the prefix
// is encoded inside the request's row, alone in its own row, or on an
// earlier request entirely. That is what makes a prefix KV cache exact: a
// cache hit replays frozen rows that are bit-for-bit the rows a cold encode
// would have produced (matmul kernels keep per-row accumulation order
// independent of GEMM height, so projecting P rows alone equals projecting
// them inside a taller GEMM).

// PrefixKV is the frozen decode-side state of a shared prefix: the
// per-decoder-layer projected cross-attention keys and values of its encoder
// output. A segment decoding with an attached PrefixKV attends over these
// rows followed by its own (suffix) encoder rows — the "inherited prefix"
// region of the ragged KV cache. The matrices are read-only after
// construction; many concurrent segments may attach the same PrefixKV.
type PrefixKV struct {
	Len    int // prefix length in tokens
	Layers []PrefixLayerKV
}

// PrefixLayerKV is one decoder layer's frozen cross K/V rows (Len × dModel).
type PrefixLayerKV struct {
	K, V *tensor.Matrix
}

// BuildPrefixKV projects a prefix's encoder output (Len × dModel rows)
// through every decoder layer's cross-attention WK/WV, freezing the rows a
// decode would compute for those encoder positions. The result is
// independent of what the prefix was encoded next to (height-invariant
// accumulation), so it can be cached and attached to any later segment that
// declares the same prefix.
func (m *Model) BuildPrefixKV(prefixEnc *tensor.Matrix) (*PrefixKV, error) {
	if prefixEnc == nil || prefixEnc.Rows <= 0 {
		return nil, fmt.Errorf("model: BuildPrefixKV with empty encoder output")
	}
	if prefixEnc.Cols != m.Cfg.DModel {
		return nil, fmt.Errorf("model: BuildPrefixKV encoder width %d != d_model %d", prefixEnc.Cols, m.Cfg.DModel)
	}
	kv := &PrefixKV{Len: prefixEnc.Rows, Layers: make([]PrefixLayerKV, len(m.P.Decoder))}
	for li, layer := range m.P.Decoder {
		kv.Layers[li] = PrefixLayerKV{
			K: layer.CrossAttn.WK.Apply(prefixEnc),
			V: layer.CrossAttn.WV.Apply(prefixEnc),
		}
	}
	return kv, nil
}

// Bytes returns the resident float32 footprint of the frozen K/V rows.
func (kv *PrefixKV) Bytes() int64 {
	var b int64
	for _, l := range kv.Layers {
		b += int64(l.K.Rows*l.K.Cols+l.V.Rows*l.V.Cols) * 4
	}
	return b
}

// prefixAt returns the PrefixKV attached to segment si of a row, or nil.
func (row *BatchDecodeRow) prefixAt(si int) *PrefixKV {
	if si < len(row.Prefixes) {
		return row.Prefixes[si]
	}
	return nil
}

// inheritCross builds a segment's cross K (or V) cache with an inherited
// prefix region: dst rows [0, pfx.Rows) are copied from the frozen prefix
// rows, rows [pfx.Rows, pfx.Rows+seg.Len) from the row-wide projection's
// segment span. dst must be pre-sized to pfx.Rows+seg.Len rows.
func inheritCross(dst, pfx, rowProj *tensor.Matrix, seg Segment) {
	for r := 0; r < pfx.Rows; r++ {
		copy(dst.Row(r), pfx.Row(r))
	}
	for r := 0; r < seg.Len; r++ {
		copy(dst.Row(pfx.Rows+r), rowProj.Row(seg.Start+r))
	}
}

// GenerateRowCachedPrefix is GenerateRowCached with per-segment inherited
// prefixes (nil entries, or a nil slice, mean no prefix). Segment i of the
// row decodes against prefixes[i]'s frozen cross K/V rows followed by its
// own encoder rows, producing the same tokens as a cold decode of the full
// prefix+suffix request.
func (m *Model) GenerateRowCachedPrefix(encOut *tensor.Matrix, encLayout RowLayout, prefixes []*PrefixKV, caps []int) ([]GenerateResult, error) {
	nSeg := len(encLayout.Segments)
	if len(caps) != nSeg {
		return nil, fmt.Errorf("model: %d caps for %d segments", len(caps), nSeg)
	}
	if len(prefixes) != 0 && len(prefixes) != nSeg {
		return nil, fmt.Errorf("model: %d prefixes for %d segments", len(prefixes), nSeg)
	}
	maxNew := 0
	for _, c := range caps {
		if c > maxNew {
			maxNew = c
		}
	}
	st := m.newBatchDecodeState([]BatchDecodeRow{{EncOut: encOut, Layout: encLayout, Prefixes: prefixes}}, maxNew)
	defer st.Close()
	return greedyDecode(st, caps, maxNew)
}

// InsertSegmentPrefix is InsertSegment with an inherited prefix: the new
// segment's cross-attention cache is the prefix's frozen K/V rows followed
// by the projections of encOut (the request's own suffix encoder rows). A
// nil kv degrades to InsertSegment exactly.
func (s *BatchDecodeState) InsertSegmentPrefix(encOut *tensor.Matrix, kv *PrefixKV) (int, error) {
	if kv == nil {
		return s.InsertSegment(encOut)
	}
	n := encOut.Rows
	d := s.m.Cfg.DModel
	total := kv.Len + n
	switch {
	case n <= 0:
		return 0, fmt.Errorf("model: InsertSegmentPrefix with empty encoder output")
	case encOut.Cols != d:
		return 0, fmt.Errorf("model: InsertSegmentPrefix encoder width %d != d_model %d", encOut.Cols, d)
	case len(kv.Layers) != len(s.m.P.Decoder):
		return 0, fmt.Errorf("model: InsertSegmentPrefix has %d prefix layers for %d decoder layers", len(kv.Layers), len(s.m.P.Decoder))
	case total > s.m.P.PosEnc.Rows:
		return 0, fmt.Errorf("model: InsertSegmentPrefix length %d beyond MaxLen %d", total, s.m.P.PosEnc.Rows)
	}
	s.ensureSegCap(s.nSeg + 1)
	ws := s.pool()
	i := s.nSeg
	seg := Segment{Start: 0, Len: n}
	for li, layer := range s.m.P.Decoder {
		lc := s.layers[li]
		sk := ws.Get(s.reserve, d)
		sk.Resize(0, d)
		sv := ws.Get(s.reserve, d)
		sv.Resize(0, d)
		// Project the suffix rows, then assemble the inherited-prefix cache:
		// frozen prefix rows first, own rows after.
		sufK := ws.Get(n, d)
		layer.CrossAttn.WK.ApplyIntoWS(sufK, encOut, ws)
		sufV := ws.Get(n, d)
		layer.CrossAttn.WV.ApplyIntoWS(sufV, encOut, ws)
		ck := ws.Get(total, d)
		cv := ws.Get(total, d)
		inheritCross(ck, kv.Layers[li].K, sufK, seg)
		inheritCross(cv, kv.Layers[li].V, sufV, seg)
		ws.Put(sufK)
		ws.Put(sufV)
		lc.selfK = append(lc.selfK, sk)
		lc.selfV = append(lc.selfV, sv)
		lc.crossK = append(lc.crossK, ck)
		lc.crossV = append(lc.crossV, cv)
	}
	s.prefixLen = append(s.prefixLen, 0)
	s.finished = append(s.finished, false)
	s.out = append(s.out, nil)
	s.rowStart = append(s.rowStart, s.nSeg+1)
	s.nSeg++
	return i, nil
}
