package model

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// checkpoint is the on-disk representation: the config travels with the
// weights so a loaded model is self-describing.
type checkpoint struct {
	Version int
	Cfg     Config
	P       *Params
}

// checkpointVersion guards against loading incompatible formats.
const checkpointVersion = 1

// Save serializes the model (config + weights) with encoding/gob.
func (m *Model) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(checkpoint{Version: checkpointVersion, Cfg: m.Cfg, P: m.P}); err != nil {
		return fmt.Errorf("model: save: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save and validates it.
func Load(r io.Reader) (*Model, error) {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("model: load: %w", err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("model: checkpoint version %d, want %d", ck.Version, checkpointVersion)
	}
	if err := ck.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("model: loaded config invalid: %w", err)
	}
	if ck.P == nil || ck.P.Embedding == nil || ck.P.OutProj == nil {
		return nil, fmt.Errorf("model: checkpoint missing weights")
	}
	if ck.P.Embedding.Rows != ck.Cfg.VocabSize || ck.P.Embedding.Cols != ck.Cfg.DModel {
		return nil, fmt.Errorf("model: embedding %dx%d does not match config %dx%d",
			ck.P.Embedding.Rows, ck.P.Embedding.Cols, ck.Cfg.VocabSize, ck.Cfg.DModel)
	}
	if len(ck.P.Encoder) != ck.Cfg.EncLayers || len(ck.P.Decoder) != ck.Cfg.DecLayers {
		return nil, fmt.Errorf("model: %d/%d layers vs config %d/%d",
			len(ck.P.Encoder), len(ck.P.Decoder), ck.Cfg.EncLayers, ck.Cfg.DecLayers)
	}
	return &Model{Cfg: ck.Cfg, P: ck.P}, nil
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Save(f)
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// newGobEncoder indirection exists so tests can craft tampered
// checkpoints with the same encoding.
func newGobEncoder(w io.Writer) *gob.Encoder { return gob.NewEncoder(w) }
