package model

import (
	"fmt"

	"tcb/internal/tensor"
)

// This file adds mid-flight segment turnover to BatchDecodeState — the
// model-layer half of continuous batching. RemoveSegment retires a finished
// segment between Step calls and recycles its cache buffers; InsertSegment
// admits a freshly encoded request into the running state. Both keep the
// surviving segments' relative order, so the batch-wide GEMMs see the same
// rows in the same order as a state that was never touched — and because
// the matmul kernels keep per-row accumulation order independent of GEMM
// height, a state that sees no removals or insertions stays bitwise
// identical to the plain construction-time path.

// pool returns the state's buffer-recycling workspace, creating it on first
// use. RemoveSegment Puts the retired caches here and InsertSegment Gets
// its replacements back out, so a warm remove/insert cycle allocates
// nothing (pinned by an AllocsPerRun regression test).
func (s *BatchDecodeState) pool() *tensor.Workspace {
	if s.ws == nil {
		s.ws = tensor.NewWorkspace()
	}
	return s.ws
}

// Close returns the state's recycling workspace (if RemoveSegment or
// InsertSegment ever created one) to the package pool. Safe on states that
// never recycled anything and on nil.
func (s *BatchDecodeState) Close() {
	if s == nil || s.ws == nil {
		return
	}
	s.ws.Close()
	s.ws = nil
}

// RemoveSegment deletes flat segment i from the state between Step calls:
// every per-segment table is compacted and the segment's self- and
// cross-attention cache buffers are recycled through the workspace pool.
// Surviving segments keep their relative order — and therefore their gather
// order inside every batch-wide GEMM — so their subsequent logits are
// bitwise identical to a state that never removed anything. The segment's
// batch row keeps an empty span, so RowSpan stays consistent for callers
// still holding row indices.
func (s *BatchDecodeState) RemoveSegment(i int) {
	if i < 0 || i >= s.nSeg {
		panic(fmt.Sprintf("model: RemoveSegment %d of %d segments", i, s.nSeg))
	}
	ws := s.pool()
	for _, lc := range s.layers {
		ws.Put(lc.selfK[i])
		ws.Put(lc.selfV[i])
		ws.Put(lc.crossK[i])
		ws.Put(lc.crossV[i])
		lc.selfK = deleteSeg(lc.selfK, i)
		lc.selfV = deleteSeg(lc.selfV, i)
		lc.crossK = deleteSeg(lc.crossK, i)
		lc.crossV = deleteSeg(lc.crossV, i)
	}
	s.prefixLen = append(s.prefixLen[:i], s.prefixLen[i+1:]...)
	s.finished = append(s.finished[:i], s.finished[i+1:]...)
	s.out = append(s.out[:i], s.out[i+1:]...)
	for r := 1; r < len(s.rowStart); r++ {
		if s.rowStart[r] > i {
			s.rowStart[r]--
		}
	}
	s.nSeg--
}

// deleteSeg removes index i from a per-segment matrix table, dropping the
// trailing pointer so the backing array does not pin the removed cache.
func deleteSeg(ms []*tensor.Matrix, i int) []*tensor.Matrix {
	copy(ms[i:], ms[i+1:])
	ms[len(ms)-1] = nil
	return ms[:len(ms)-1]
}

// InsertSegment appends a freshly encoded request to the state as a new
// single-segment row and returns its flat segment index. encOut must be the
// request's own encoder output — its rows are the segment, with no padding
// and no row neighbours, exactly what EncodeRow produces for a
// SingleSegment layout. The segment starts at decode position 0 and expects
// vocab.BosID on the next Step. Cache buffers come from the recycling pool;
// with a prior RemoveSegment of like-sized buffers the insertion allocates
// nothing.
func (s *BatchDecodeState) InsertSegment(encOut *tensor.Matrix) (int, error) {
	n := encOut.Rows
	d := s.m.Cfg.DModel
	switch {
	case n <= 0:
		return 0, fmt.Errorf("model: InsertSegment with empty encoder output")
	case encOut.Cols != d:
		return 0, fmt.Errorf("model: InsertSegment encoder width %d != d_model %d", encOut.Cols, d)
	case n > s.m.P.PosEnc.Rows:
		return 0, fmt.Errorf("model: InsertSegment length %d beyond MaxLen %d", n, s.m.P.PosEnc.Rows)
	}
	s.ensureSegCap(s.nSeg + 1)
	ws := s.pool()
	i := s.nSeg
	for li, layer := range s.m.P.Decoder {
		lc := s.layers[li]
		sk := ws.Get(s.reserve, d)
		sk.Resize(0, d)
		sv := ws.Get(s.reserve, d)
		sv.Resize(0, d)
		ck := ws.Get(n, d)
		layer.CrossAttn.WK.ApplyIntoWS(ck, encOut, ws)
		cv := ws.Get(n, d)
		layer.CrossAttn.WV.ApplyIntoWS(cv, encOut, ws)
		lc.selfK = append(lc.selfK, sk)
		lc.selfV = append(lc.selfV, sv)
		lc.crossK = append(lc.crossK, ck)
		lc.crossV = append(lc.crossV, cv)
	}
	s.prefixLen = append(s.prefixLen, 0)
	s.finished = append(s.finished, false)
	s.out = append(s.out, nil)
	s.rowStart = append(s.rowStart, s.nSeg+1)
	s.nSeg++
	return i, nil
}

// ensureSegCap grows the shared step buffers to hold at least n segments.
// Growth allocates; insertions that never push the segment count past its
// high-water mark reuse the existing buffers.
func (s *BatchDecodeState) ensureSegCap(n int) {
	if n <= s.segCap {
		return
	}
	newCap := 2 * s.segCap
	if newCap < n {
		newCap = n
	}
	d := s.m.Cfg.DModel
	s.x = tensor.New(newCap, d)
	s.q = tensor.New(newCap, d)
	s.attn = tensor.New(newCap, d)
	s.proj = tensor.New(newCap, d)
	s.ff = tensor.New(newCap, s.m.Cfg.DFF)
	s.logits = tensor.New(newCap, s.m.Cfg.VocabSize)
	// The attention scratch must span the longest cache any segment can
	// reach: MaxLen bounds both decode prefixes and inserted segments.
	cols := s.scores.Cols
	if cols < s.m.P.PosEnc.Rows {
		cols = s.m.P.PosEnc.Rows
	}
	s.scores = tensor.New(newCap, cols)
	for _, lc := range s.layers {
		lc.k = tensor.New(newCap, d)
		lc.v = tensor.New(newCap, d)
	}
	s.segCap = newCap
}
