package model

import (
	"fmt"
	"math"
	"sync"

	"tcb/internal/tensor"
)

// colSlice copies columns [c0, c1) of m into a new matrix.
func colSlice(m *tensor.Matrix, c0, c1 int) *tensor.Matrix {
	out := tensor.New(m.Rows, c1-c0)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[c0:c1])
	}
	return out
}

// writeCols copies src into columns [c0, c0+src.Cols) of dst.
func writeCols(dst, src *tensor.Matrix, c0 int) {
	for i := 0; i < src.Rows; i++ {
		copy(dst.Row(i)[c0:c0+src.Cols], src.Row(i))
	}
}

// subMask copies mask rows [r0,r1) × cols [c0,c1) into a new matrix.
func subMask(mask *tensor.Matrix, r0, r1, c0, c1 int) *tensor.Matrix {
	out := tensor.New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Row(i-r0), mask.Row(i)[c0:c1])
	}
	return out
}

// attentionHead computes softmax(q·kᵀ·scale + mask)·v for a single head.
// mask may be nil (unmasked attention, Eq. 4).
func attentionHead(q, k, v *tensor.Matrix, mask *tensor.Matrix, scale float32) *tensor.Matrix {
	scores := tensor.MatMulT(q, k)
	tensor.Scale(scores, scale)
	if mask != nil {
		if mask.Rows != scores.Rows || mask.Cols != scores.Cols {
			panic(fmt.Sprintf("model: mask %dx%d vs scores %dx%d",
				mask.Rows, mask.Cols, scores.Rows, scores.Cols))
		}
		tensor.AddInPlace(scores, mask)
	}
	tensor.SoftmaxRows(scores)
	return tensor.MatMul(scores, v)
}

// MultiHeadAttention runs multi-head attention with queries from xq and
// keys/values from xkv, applying the optional additive mask to every head's
// score matrix (Eq. 5: Att_CB when mask is a block-diagonal RowLayout mask,
// plain Eq. 4 when mask is nil). It returns the WO-projected result.
func MultiHeadAttention(w *AttentionWeights, numHeads int, xq, xkv *tensor.Matrix, mask *tensor.Matrix) *tensor.Matrix {
	dModel := w.WQ.W.Cols
	if dModel%numHeads != 0 {
		panic("model: heads must divide dModel")
	}
	dh := dModel / numHeads
	q := w.WQ.Apply(xq)
	k := w.WK.Apply(xkv)
	v := w.WV.Apply(xkv)
	concat := tensor.New(xq.Rows, dModel)
	scale := float32(1 / math.Sqrt(float64(dh)))

	var wg sync.WaitGroup
	for h := 0; h < numHeads; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			c0 := h * dh
			qh := colSlice(q, c0, c0+dh)
			kh := colSlice(k, c0, c0+dh)
			vh := colSlice(v, c0, c0+dh)
			out := attentionHead(qh, kh, vh, mask, scale)
			writeCols(concat, out, c0)
		}(h)
	}
	wg.Wait()
	return w.WO.Apply(concat)
}

// MultiHeadAttentionSlotted runs the slotted self-attention Att_CB_S
// (Eq. 8): attention is computed independently per slot, so the score
// matrices are slot-local (Σ zᵢ² entries instead of n², Fig. 7) and the
// off-slot redundancy the mask merely neutralized is never computed.
//
// mask is the full-row additive mask (block-diagonal, causal, or any other
// structure); each slot uses its own sub-block, so results are numerically
// identical to MultiHeadAttention with the same mask as long as the mask
// never lets attention cross slot boundaries. Rows outside every slot
// (padding) produce zero output.
func MultiHeadAttentionSlotted(w *AttentionWeights, numHeads int, x *tensor.Matrix, slots []Slot, mask *tensor.Matrix) *tensor.Matrix {
	dModel := w.WQ.W.Cols
	if dModel%numHeads != 0 {
		panic("model: heads must divide dModel")
	}
	dh := dModel / numHeads
	q := w.WQ.Apply(x)
	k := w.WK.Apply(x)
	v := w.WV.Apply(x)
	concat := tensor.New(x.Rows, dModel)
	scale := float32(1 / math.Sqrt(float64(dh)))

	type job struct {
		head int
		slot Slot
	}
	jobs := make([]job, 0, numHeads*len(slots))
	for h := 0; h < numHeads; h++ {
		for _, s := range slots {
			jobs = append(jobs, job{h, s})
		}
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			c0 := j.head * dh
			r0, r1 := j.slot.Start, j.slot.Start+j.slot.Len
			qs := subMask(q, r0, r1, c0, c0+dh)
			ks := subMask(k, r0, r1, c0, c0+dh)
			vs := subMask(v, r0, r1, c0, c0+dh)
			var m *tensor.Matrix
			if mask != nil {
				m = subMask(mask, r0, r1, r0, r1)
			}
			out := attentionHead(qs, ks, vs, m, scale)
			for i := 0; i < out.Rows; i++ {
				copy(concat.Row(r0+i)[c0:c0+dh], out.Row(i))
			}
		}(j)
	}
	wg.Wait()
	return w.WO.Apply(concat)
}

// ScoreArea returns the number of attention-score entries a scheme computes
// for one row: the quantity slotting reduces. Dense (pure ConcatBatching or
// padding schemes) computes used² per row; slotted computes Σ slotLen².
func ScoreArea(slots []Slot) int {
	area := 0
	for _, s := range slots {
		area += s.Len * s.Len
	}
	return area
}
