package model

import (
	"math"

	"tcb/internal/tensor"
)

// attnScale returns the 1/√d_h score scaling for a head width.
func attnScale(dh int) float32 {
	return float32(1 / math.Sqrt(float64(dh)))
}

// MultiHeadAttention runs multi-head attention with queries from xq and
// keys/values from xkv, applying the optional additive mask to every head's
// score matrix (Eq. 5: Att_CB when mask is a block-diagonal RowLayout mask,
// plain Eq. 4 when mask is nil). It returns the WO-projected result.
func MultiHeadAttention(w *AttentionWeights, numHeads int, xq, xkv *tensor.Matrix, mask *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(xq.Rows, w.WQ.W.Cols)
	MultiHeadAttentionInto(out, w, numHeads, xq, xkv, mask, nil)
	return out
}

// MultiHeadAttentionInto is the workspace-threaded form of
// MultiHeadAttention: every intermediate (projections, per-row scores, head
// concatenation) is checked out of ws and released before returning, so a
// warm workspace makes the whole call allocation-free. dst must be
// xq.Rows × dModel; ws may be nil (plain allocations).
func MultiHeadAttentionInto(dst *tensor.Matrix, w *AttentionWeights, numHeads int, xq, xkv *tensor.Matrix, mask *tensor.Matrix, ws *tensor.Workspace) {
	dModel := w.WQ.W.Cols
	if dModel%numHeads != 0 {
		panic("model: heads must divide dModel")
	}
	q := ws.Get(xq.Rows, dModel)
	k := ws.Get(xkv.Rows, dModel)
	v := ws.Get(xkv.Rows, dModel)
	w.WQ.ApplyIntoWS(q, xq, ws)
	w.WK.ApplyIntoWS(k, xkv, ws)
	w.WV.ApplyIntoWS(v, xkv, ws)
	concat := ws.Get(xq.Rows, dModel)
	scores := ws.Get(xq.Rows, xkv.Rows)
	tensor.MultiHeadAttendInto(concat, q, k, v, numHeads, attnScale(dModel/numHeads), mask, scores)
	w.WO.ApplyIntoWS(dst, concat, ws)
	ws.Put(scores)
	ws.Put(concat)
	ws.Put(v)
	ws.Put(k)
	ws.Put(q)
}

// MultiHeadAttentionBlocksInto runs block-sparse multi-head attention:
// scores are computed only inside the given Q×K blocks, with the optional
// per-row segment ids applying the concat-isolation mask inline and causal
// hiding future keys (self-attention only). Query rows outside every block
// produce the same output as fully masked rows of the dense path. This is
// the kernel behind both slotted self-attention (blocks = slots) and
// slotted cross-attention (blocks = segment pairs) — no dense mask is ever
// materialized.
func MultiHeadAttentionBlocksInto(dst *tensor.Matrix, w *AttentionWeights, numHeads int, xq, xkv *tensor.Matrix,
	blocks []tensor.AttendBlock, qSeg, kSeg []int, causal bool, ws *tensor.Workspace) {
	dModel := w.WQ.W.Cols
	if dModel%numHeads != 0 {
		panic("model: heads must divide dModel")
	}
	q := ws.Get(xq.Rows, dModel)
	k := ws.Get(xkv.Rows, dModel)
	v := ws.Get(xkv.Rows, dModel)
	w.WQ.ApplyIntoWS(q, xq, ws)
	w.WK.ApplyIntoWS(k, xkv, ws)
	w.WV.ApplyIntoWS(v, xkv, ws)
	concat := ws.Get(xq.Rows, dModel)
	maxK := 0
	for _, b := range blocks {
		if n := b.K.Len(); n > maxK {
			maxK = n
		}
	}
	scores := ws.Get(xq.Rows, maxK)
	tensor.BlockAttendInto(concat, q, k, v, numHeads, attnScale(dModel/numHeads), blocks, qSeg, kSeg, causal, scores)
	w.WO.ApplyIntoWS(dst, concat, ws)
	ws.Put(scores)
	ws.Put(concat)
	ws.Put(v)
	ws.Put(k)
	ws.Put(q)
}

// MultiHeadAttentionSlotted runs the slotted self-attention Att_CB_S
// (Eq. 8): attention is computed independently per slot, so the score
// matrices are slot-local (Σ zᵢ² entries instead of n², Fig. 7) and the
// off-slot redundancy the dense mask merely neutralized is never computed.
//
// layout supplies the segment boundaries; keys from a different segment of
// the same slot are masked inline exactly as the dense block-diagonal mask
// would, so results match MultiHeadAttention with layout.BuildMask() bit
// for bit. Rows outside every slot (padding) produce zero output.
func MultiHeadAttentionSlotted(w *AttentionWeights, numHeads int, x *tensor.Matrix, slots []Slot, layout RowLayout) *tensor.Matrix {
	out := tensor.New(x.Rows, w.WQ.W.Cols)
	seg := layout.SegIDs()
	MultiHeadAttentionBlocksInto(out, w, numHeads, x, x, SlotBlocks(slots), seg, seg, false, nil)
	return out
}

// ScoreArea returns the number of attention-score entries a scheme computes
// for one row: the quantity slotting reduces. Dense (pure ConcatBatching or
// padding schemes) computes used² per row; slotted computes Σ slotLen².
func ScoreArea(slots []Slot) int {
	area := 0
	for _, s := range slots {
		area += s.Len * s.Len
	}
	return area
}
