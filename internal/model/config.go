// Package model implements the Seq2Seq transformer used by the TCB inference
// engine, including the two customizations §4.1 of the paper requires for
// ConcatBatching to produce correct results:
//
//   - separate positional encoding: the sinusoidal position counter restarts
//     at 0 for every request (segment) concatenated in a batch row
//     (Fig. 5b), and
//   - customized self-attention: a block-diagonal additive mask M (Eq. 6)
//     removes inter-request score entries before softmax (Eq. 5), plus the
//     slotted variant Att_CB_S (Eq. 8) that computes attention per slot and
//     never materializes the off-diagonal redundancy at all (§4.2.1).
//
// Weights are randomly initialized: the paper's experiments measure serving
// performance, not task accuracy, and every correctness claim here is an
// *equivalence* claim (concatenated inference must equal per-request
// inference), which random weights exercise fully.
package model

import "fmt"

// Config describes a Seq2Seq transformer. The paper's evaluation model is
// 3 encoder + 3 decoder layers, d_model = 3072, 8 heads, max 400 words
// (§6.1); tests and laptop-scale experiments use smaller dims, and the cost
// model scales results analytically to paper size.
type Config struct {
	VocabSize int // token vocabulary size, including reserved ids
	DModel    int // embedding / hidden width
	NumHeads  int // attention heads; must divide DModel
	DFF       int // feed-forward inner width
	EncLayers int // encoder stack depth
	DecLayers int // decoder stack depth
	MaxLen    int // maximum row length in tokens (paper: 400)
	Eps       float32
}

// PaperConfig returns the evaluation configuration from §6.1. Running it on
// CPU is slow; it exists so the cost model and docs reference the exact
// published shape.
func PaperConfig(vocabSize int) Config {
	return Config{
		VocabSize: vocabSize,
		DModel:    3072,
		NumHeads:  8,
		DFF:       4 * 3072,
		EncLayers: 3,
		DecLayers: 3,
		MaxLen:    400,
		Eps:       1e-5,
	}
}

// TestConfig returns a small configuration suitable for unit tests and
// laptop-scale wall-clock experiments.
func TestConfig(vocabSize int) Config {
	return Config{
		VocabSize: vocabSize,
		DModel:    64,
		NumHeads:  4,
		DFF:       128,
		EncLayers: 2,
		DecLayers: 2,
		MaxLen:    512,
		Eps:       1e-5,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.VocabSize <= 0:
		return fmt.Errorf("model: VocabSize %d must be positive", c.VocabSize)
	case c.DModel <= 0:
		return fmt.Errorf("model: DModel %d must be positive", c.DModel)
	case c.NumHeads <= 0:
		return fmt.Errorf("model: NumHeads %d must be positive", c.NumHeads)
	case c.DModel%c.NumHeads != 0:
		return fmt.Errorf("model: DModel %d not divisible by NumHeads %d", c.DModel, c.NumHeads)
	case c.DFF <= 0:
		return fmt.Errorf("model: DFF %d must be positive", c.DFF)
	case c.EncLayers < 0 || c.DecLayers < 0:
		return fmt.Errorf("model: negative layer count %d/%d", c.EncLayers, c.DecLayers)
	case c.MaxLen <= 0:
		return fmt.Errorf("model: MaxLen %d must be positive", c.MaxLen)
	case c.Eps <= 0:
		return fmt.Errorf("model: Eps %g must be positive", c.Eps)
	}
	return nil
}

// HeadDim returns DModel / NumHeads.
func (c Config) HeadDim() int { return c.DModel / c.NumHeads }
