package model

import (
	"bytes"
	"path/filepath"
	"testing"

	"tcb/internal/rng"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := testModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg != m.Cfg {
		t.Fatalf("config mismatch: %+v vs %+v", loaded.Cfg, m.Cfg)
	}
	// The loaded model must compute identical outputs.
	src := rng.New(61)
	req := randTokens(src, 6)
	want := m.EncodeSingle(req)
	got := loaded.EncodeSingle(req)
	if !got.Equal(want) {
		t.Fatalf("loaded model diverges by %g", got.MaxAbsDiff(want))
	}
	// Including generation.
	layout := SingleSegment(len(req), len(req))
	wGen := m.GenerateRow(want, layout, nil, 4, AttDense)
	gGen := loaded.GenerateRow(got, layout, nil, 4, AttDense)
	if len(wGen[0].Tokens) != len(gGen[0].Tokens) {
		t.Fatal("generation differs after reload")
	}
	for i := range wGen[0].Tokens {
		if wGen[0].Tokens[i] != gGen[0].Tokens[i] {
			t.Fatalf("token %d differs after reload", i)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := testModel(t)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg.DModel != m.Cfg.DModel {
		t.Fatal("file round trip lost config")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestLoadRejectsCorruptData(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Fatal("corrupt stream should fail")
	}
}

func TestLoadRejectsInconsistentCheckpoint(t *testing.T) {
	m := testModel(t)
	// Tamper: config says more layers than the weights have.
	bad := checkpoint{Version: checkpointVersion, Cfg: m.Cfg, P: m.P}
	bad.Cfg.EncLayers++
	var buf bytes.Buffer
	enc := newGobEncoder(&buf)
	if err := enc.Encode(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("layer-count mismatch should fail")
	}
	// Wrong version.
	buf.Reset()
	worse := checkpoint{Version: 99, Cfg: m.Cfg, P: m.P}
	if err := newGobEncoder(&buf).Encode(worse); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("version mismatch should fail")
	}
	// Missing weights.
	buf.Reset()
	empty := checkpoint{Version: checkpointVersion, Cfg: m.Cfg}
	if err := newGobEncoder(&buf).Encode(empty); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("missing weights should fail")
	}
}
