package model

import (
	"fmt"
	"math"
	"sort"

	"tcb/internal/rng"
	"tcb/internal/tensor"
	"tcb/internal/vocab"
)

// SampleConfig controls stochastic decoding.
type SampleConfig struct {
	// Temperature scales logits before softmax. 0 means greedy (argmax);
	// 1 samples the model distribution; >1 flattens it.
	Temperature float64
	// TopK restricts sampling to the K most likely tokens (0 = all).
	TopK int
	// Seed makes sampling deterministic.
	Seed uint64
}

// Validate reports invalid sampling parameters.
func (sc SampleConfig) Validate() error {
	if sc.Temperature < 0 {
		return fmt.Errorf("model: negative temperature %g", sc.Temperature)
	}
	if sc.TopK < 0 {
		return fmt.Errorf("model: negative top-k %d", sc.TopK)
	}
	return nil
}

// sampleLogits draws a token id from logits under sc using src.
func sampleLogits(logits []float32, sc SampleConfig, src *rng.Source) int {
	if sc.Temperature == 0 {
		best, bestj := float32(math.Inf(-1)), 0
		for j, v := range logits {
			if v > best {
				best, bestj = v, j
			}
		}
		return bestj
	}
	type cand struct {
		id int
		lg float64
	}
	cands := make([]cand, len(logits))
	for j, v := range logits {
		cands[j] = cand{j, float64(v) / sc.Temperature}
	}
	if sc.TopK > 0 && sc.TopK < len(cands) {
		sort.Slice(cands, func(a, b int) bool { return cands[a].lg > cands[b].lg })
		cands = cands[:sc.TopK]
	}
	// Stable softmax over the candidate set.
	maxv := math.Inf(-1)
	for _, c := range cands {
		if c.lg > maxv {
			maxv = c.lg
		}
	}
	var total float64
	weights := make([]float64, len(cands))
	for i, c := range cands {
		w := math.Exp(c.lg - maxv)
		weights[i] = w
		total += w
	}
	u := src.Float64() * total
	for i, w := range weights {
		u -= w
		if u <= 0 {
			return cands[i].id
		}
	}
	return cands[len(cands)-1].id
}

// GenerateRowSampled decodes every segment with temperature/top-k sampling
// over the KV-cached incremental decoder. With Temperature == 0 it is
// exactly GenerateRowCached (greedy). Sampling is deterministic in
// sc.Seed, and each segment consumes an independent split of the stream so
// results do not depend on which other requests share the batch.
func (m *Model) GenerateRowSampled(encOut *tensor.Matrix, encLayout RowLayout, caps []int, sc SampleConfig) ([]GenerateResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	nSeg := len(encLayout.Segments)
	if len(caps) != nSeg {
		return nil, fmt.Errorf("model: %d caps for %d segments", len(caps), nSeg)
	}
	root := rng.New(sc.Seed)
	streams := make([]*rng.Source, nSeg)
	for i := range streams {
		streams[i] = root.Split()
	}
	st := m.NewDecodeState(encOut, encLayout)
	results := make([]GenerateResult, nSeg)
	next := make([]int, nSeg)
	for i := range next {
		next[i] = vocab.BosID
		if caps[i] <= 0 {
			st.MarkFinished(i)
		}
	}
	maxNew := 0
	for _, c := range caps {
		if c > maxNew {
			maxNew = c
		}
	}
	for step := 0; step < maxNew && !st.AllFinished(); step++ {
		logits, err := st.Step(next)
		if err != nil {
			return nil, err
		}
		for i := 0; i < nSeg; i++ {
			if st.Finished(i) || logits[i] == nil {
				continue
			}
			tok := sampleLogits(logits[i], sc, streams[i])
			results[i].Steps = step + 1
			if tok == vocab.EosID {
				st.MarkFinished(i)
				continue
			}
			results[i].Tokens = append(results[i].Tokens, tok)
			next[i] = tok
			if len(results[i].Tokens) >= caps[i] {
				st.MarkFinished(i)
			}
		}
	}
	return results, nil
}
