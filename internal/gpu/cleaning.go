package gpu

import (
	"fmt"

	"tcb/internal/batch"
)

// CleaningReport summarizes GPU-memory behaviour while a batch decodes.
// Steps are decoder steps; requests finish at different steps because the
// decoder is auto-regressive (§4.2.2).
type CleaningReport struct {
	TotalBytes   int64 // activation bytes the batch occupies at step 0
	FinalStep    int   // step at which the last request finishes
	ByteSteps    int64 // ∫ occupancy over steps — lower is better
	EarliestFree int   // first step at which any bytes free (FinalStep if none early)
}

// Saved returns the byte-steps this report saves relative to base
// (typically: early cleaning vs whole-batch cleaning).
func (r CleaningReport) Saved(base CleaningReport) int64 {
	return base.ByteSteps - r.ByteSteps
}

// maxFinish returns the largest finish step among items, and validates
// that every item has one.
func maxFinish(items []batch.Item, finish map[int64]int) (int, error) {
	worst := 0
	for _, it := range items {
		f, ok := finish[it.ID]
		if !ok {
			return 0, fmt.Errorf("gpu: no finish step for item %d", it.ID)
		}
		if f < 0 {
			return 0, fmt.Errorf("gpu: negative finish step %d for item %d", f, it.ID)
		}
		if f > worst {
			worst = f
		}
	}
	return worst, nil
}

// SimulateWholeBatchCleaning models the baseline policy: the entire batch's
// activation memory stays resident until every request finishes, then frees
// at once. This applies to Naive, Turbo and pure ConcatBatching — in pure
// ConcatBatching "request data do not aligned and we cannot separate the
// ones whose results are generated" (§4.2.2).
func SimulateWholeBatchCleaning(b *batch.Batch, finish map[int64]int, bytesPerToken int64) (CleaningReport, error) {
	if bytesPerToken <= 0 {
		return CleaningReport{}, fmt.Errorf("gpu: bytesPerToken %d", bytesPerToken)
	}
	last, err := maxFinish(b.Items(), finish)
	if err != nil {
		return CleaningReport{}, err
	}
	total := int64(b.TotalTokens()) * bytesPerToken
	return CleaningReport{
		TotalBytes:   total,
		FinalStep:    last,
		ByteSteps:    total * int64(last),
		EarliestFree: last,
	}, nil
}

// SimulateEarlyCleaning models §4.2.2's slotted policy: each slot is an
// independent tensor of SlotSize tokens that frees at the step its last
// request finishes. Only SlottedConcat batches support it — that is the
// paper's point.
func SimulateEarlyCleaning(b *batch.Batch, finish map[int64]int, bytesPerToken int64) (CleaningReport, error) {
	if b.Scheme != batch.SlottedConcat {
		return CleaningReport{}, fmt.Errorf("gpu: early cleaning requires slotted batches, got %v", b.Scheme)
	}
	if bytesPerToken <= 0 {
		return CleaningReport{}, fmt.Errorf("gpu: bytesPerToken %d", bytesPerToken)
	}
	slotBytes := int64(b.SlotSize) * bytesPerToken
	rep := CleaningReport{EarliestFree: -1}
	for _, row := range b.Rows {
		for _, group := range b.SlotGroups(row) {
			f, err := maxFinish(group, finish)
			if err != nil {
				return CleaningReport{}, err
			}
			rep.TotalBytes += slotBytes
			rep.ByteSteps += slotBytes * int64(f)
			if f > rep.FinalStep {
				rep.FinalStep = f
			}
			if rep.EarliestFree == -1 || f < rep.EarliestFree {
				rep.EarliestFree = f
			}
		}
	}
	if rep.EarliestFree == -1 {
		rep.EarliestFree = 0
	}
	return rep, nil
}

// OverlapSteps returns how many decoder steps of the current batch the next
// batch's data loading can overlap with: the gap between the first slot
// free and batch completion. Zero for whole-batch cleaning by construction.
func OverlapSteps(rep CleaningReport) int {
	return rep.FinalStep - rep.EarliestFree
}
