// Package gpu simulates the device the paper runs on: a memory pool with
// tensor-granularity allocation and an accounting of when data can be
// freed. Its purpose is to reproduce §4.2.2's early-memory-cleaning
// behaviour: under pure ConcatBatching request data inside a row cannot be
// separated into tensors, so nothing frees until the whole batch finishes;
// under slotted ConcatBatching each slot is an independent tensor that
// frees as soon as its requests finish decoding, letting the next batch's
// loading overlap the current batch's tail.
package gpu

import (
	"fmt"
	"sync"
)

// MemoryManager tracks simulated device-memory allocations in bytes. It is
// safe for concurrent use: the engine allocates and frees batch tags from
// concurrent Run calls.
type MemoryManager struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	peak     int64
	allocs   map[string]int64
}

// NewMemoryManager returns a manager with the given capacity in bytes.
// capacity <= 0 means unlimited.
func NewMemoryManager(capacity int64) *MemoryManager {
	return &MemoryManager{capacity: capacity, allocs: make(map[string]int64)}
}

// Alloc reserves bytes under the given tag. It fails on duplicate tags,
// non-positive sizes, or capacity exhaustion.
func (m *MemoryManager) Alloc(tag string, bytes int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if bytes <= 0 {
		return fmt.Errorf("gpu: alloc %q of %d bytes", tag, bytes)
	}
	if _, ok := m.allocs[tag]; ok {
		return fmt.Errorf("gpu: tag %q already allocated", tag)
	}
	if m.capacity > 0 && m.used+bytes > m.capacity {
		return fmt.Errorf("gpu: out of memory: %d used + %d requested > %d capacity",
			m.used, bytes, m.capacity)
	}
	m.allocs[tag] = bytes
	m.used += bytes
	if m.used > m.peak {
		m.peak = m.used
	}
	return nil
}

// Free releases the allocation under tag. Freeing an unknown tag is an
// error (double-free detection).
func (m *MemoryManager) Free(tag string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	bytes, ok := m.allocs[tag]
	if !ok {
		return fmt.Errorf("gpu: free of unknown tag %q", tag)
	}
	delete(m.allocs, tag)
	m.used -= bytes
	return nil
}

// Resize adjusts the allocation under tag by delta bytes: positive grows,
// negative shrinks. Growing fails when it would exceed capacity; shrinking
// clamps at zero. The tag stays allocated (even at zero bytes) until Free.
// This is the live-engine form of §4.2.2's early memory cleaning: a running
// batch's reservation shrinks the moment a request retires mid-flight and
// grows when a refill admission takes the freed capacity, instead of holding
// the whole launch until the last request finishes.
func (m *MemoryManager) Resize(tag string, delta int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.allocs[tag]
	if !ok {
		return fmt.Errorf("gpu: resize of unknown tag %q", tag)
	}
	if delta > 0 && m.capacity > 0 && m.used+delta > m.capacity {
		return fmt.Errorf("gpu: out of memory: %d used + %d requested > %d capacity",
			m.used, delta, m.capacity)
	}
	next := cur + delta
	if next < 0 {
		next = 0
	}
	m.used += next - cur
	m.allocs[tag] = next
	if m.used > m.peak {
		m.peak = m.used
	}
	return nil
}

// Used returns the bytes currently allocated.
func (m *MemoryManager) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Peak returns the high-water mark of Used since construction (or ResetPeak).
func (m *MemoryManager) Peak() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// Capacity returns the configured capacity (0 = unlimited).
func (m *MemoryManager) Capacity() int64 { return m.capacity }

// Outstanding returns the number of live allocations.
func (m *MemoryManager) Outstanding() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.allocs)
}

// ResetPeak sets the high-water mark to the current usage.
func (m *MemoryManager) ResetPeak() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.peak = m.used
}
