package gpu

import (
	"testing"
	"testing/quick"

	"tcb/internal/batch"
)

func TestMemoryManagerBasics(t *testing.T) {
	m := NewMemoryManager(100)
	if err := m.Alloc("a", 40); err != nil {
		t.Fatal(err)
	}
	if err := m.Alloc("b", 50); err != nil {
		t.Fatal(err)
	}
	if m.Used() != 90 || m.Peak() != 90 || m.Outstanding() != 2 {
		t.Fatalf("used/peak/outstanding = %d/%d/%d", m.Used(), m.Peak(), m.Outstanding())
	}
	if err := m.Alloc("c", 20); err == nil {
		t.Fatal("expected OOM")
	}
	if err := m.Free("a"); err != nil {
		t.Fatal(err)
	}
	if m.Used() != 50 || m.Peak() != 90 {
		t.Fatalf("after free: used/peak = %d/%d", m.Used(), m.Peak())
	}
	if err := m.Alloc("c", 20); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestMemoryManagerErrors(t *testing.T) {
	m := NewMemoryManager(0) // unlimited
	if err := m.Alloc("x", 0); err == nil {
		t.Fatal("zero-byte alloc should fail")
	}
	if err := m.Alloc("x", 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Alloc("x", 10); err == nil {
		t.Fatal("duplicate tag should fail")
	}
	if err := m.Free("missing"); err == nil {
		t.Fatal("free of unknown tag should fail")
	}
	if err := m.Free("x"); err != nil {
		t.Fatal(err)
	}
	if err := m.Free("x"); err == nil {
		t.Fatal("double free should fail")
	}
}

func TestMemoryManagerUnlimited(t *testing.T) {
	m := NewMemoryManager(0)
	if err := m.Alloc("big", 1<<50); err != nil {
		t.Fatalf("unlimited manager rejected alloc: %v", err)
	}
}

func TestResetPeak(t *testing.T) {
	m := NewMemoryManager(0)
	_ = m.Alloc("a", 100)
	_ = m.Free("a")
	m.ResetPeak()
	if m.Peak() != 0 {
		t.Fatalf("peak after reset = %d", m.Peak())
	}
}

// Property: allocations and frees always balance Used back to zero.
func TestMemoryBalanceProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		m := NewMemoryManager(0)
		var tags []string
		for i, s := range sizes {
			if s == 0 {
				continue
			}
			tag := string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('A'+i/260%26))
			if err := m.Alloc(tag, int64(s)); err != nil {
				return false
			}
			tags = append(tags, tag)
		}
		for _, tag := range tags {
			if err := m.Free(tag); err != nil {
				return false
			}
		}
		return m.Used() == 0 && m.Outstanding() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// slottedBatch builds a 1-row slotted batch with the given item lengths and
// slot size, packed sequentially.
func slottedBatch(slotSize, rowLen int, lens ...int) *batch.Batch {
	items := make([]batch.Item, len(lens))
	for i, l := range lens {
		items[i] = batch.Item{ID: int64(i + 1), Len: l}
	}
	b, rest := batch.PackSlotted(items, 1, rowLen, slotSize)
	if len(rest) != 0 {
		panic("test batch did not fit")
	}
	return b
}

func TestWholeBatchCleaning(t *testing.T) {
	b := slottedBatch(5, 10, 3, 4)
	finish := map[int64]int{1: 2, 2: 7}
	rep, err := SimulateWholeBatchCleaning(b, finish, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalStep != 7 {
		t.Fatalf("final step = %d, want 7", rep.FinalStep)
	}
	if rep.TotalBytes != int64(b.TotalTokens())*4 {
		t.Fatalf("total bytes = %d", rep.TotalBytes)
	}
	if rep.ByteSteps != rep.TotalBytes*7 {
		t.Fatalf("byte-steps = %d", rep.ByteSteps)
	}
	if rep.EarliestFree != 7 {
		t.Fatalf("whole-batch policy frees only at the end, got %d", rep.EarliestFree)
	}
}

func TestEarlyCleaningFreesSlotsIndependently(t *testing.T) {
	// Two slots of size 5: slot 1 holds item 1 (finishes step 2),
	// slot 2 holds item 2 (finishes step 7).
	b := slottedBatch(5, 10, 3, 4)
	finish := map[int64]int{1: 2, 2: 7}
	early, err := SimulateEarlyCleaning(b, finish, 4)
	if err != nil {
		t.Fatal(err)
	}
	if early.EarliestFree != 2 {
		t.Fatalf("earliest free = %d, want 2", early.EarliestFree)
	}
	if early.FinalStep != 7 {
		t.Fatalf("final step = %d", early.FinalStep)
	}
	// slot bytes = 5·4 = 20; byte-steps = 20·2 + 20·7 = 180.
	if early.ByteSteps != 180 {
		t.Fatalf("byte-steps = %d, want 180", early.ByteSteps)
	}
	whole, err := SimulateWholeBatchCleaning(b, finish, 4)
	if err != nil {
		t.Fatal(err)
	}
	if early.Saved(whole) <= 0 {
		t.Fatal("early cleaning should save byte-steps when finish times differ")
	}
	if OverlapSteps(early) != 5 {
		t.Fatalf("overlap = %d, want 5", OverlapSteps(early))
	}
	if OverlapSteps(whole) != 0 {
		t.Fatal("whole-batch cleaning offers no overlap")
	}
}

func TestEarlyCleaningSharedSlot(t *testing.T) {
	// Both items share one slot → the slot frees at the later finish.
	b := slottedBatch(10, 10, 3, 4)
	finish := map[int64]int{1: 2, 2: 7}
	rep, err := SimulateEarlyCleaning(b, finish, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EarliestFree != 7 {
		t.Fatalf("shared slot must wait for both: earliest = %d", rep.EarliestFree)
	}
}

func TestEarlyCleaningRejectsDense(t *testing.T) {
	items := []batch.Item{{ID: 1, Len: 5}}
	b, _ := batch.PackConcat(items, 1, 10)
	if _, err := SimulateEarlyCleaning(b, map[int64]int{1: 3}, 4); err == nil {
		t.Fatal("early cleaning must require slotted batches")
	}
}

func TestCleaningMissingFinish(t *testing.T) {
	b := slottedBatch(5, 10, 3)
	if _, err := SimulateWholeBatchCleaning(b, map[int64]int{}, 4); err == nil {
		t.Fatal("missing finish step should error")
	}
	if _, err := SimulateEarlyCleaning(b, map[int64]int{1: -1}, 4); err == nil {
		t.Fatal("negative finish step should error")
	}
	if _, err := SimulateWholeBatchCleaning(b, map[int64]int{1: 1}, 0); err == nil {
		t.Fatal("non-positive bytesPerToken should error")
	}
}

// Property: early cleaning never uses more byte-steps than whole-batch
// cleaning of the same slotted layout (invariant 7 of DESIGN.md), provided
// the whole-batch baseline is charged the same slotted footprint.
func TestEarlyNeverWorseProperty(t *testing.T) {
	f := func(lensRaw []uint8, finRaw []uint8) bool {
		var lens []int
		for i, r := range lensRaw {
			if i >= 8 {
				break
			}
			lens = append(lens, int(r%5)+1)
		}
		if len(lens) == 0 {
			return true
		}
		items := make([]batch.Item, len(lens))
		finish := make(map[int64]int)
		for i, l := range lens {
			items[i] = batch.Item{ID: int64(i + 1), Len: l}
			f := 1
			if i < len(finRaw) {
				f = int(finRaw[i]%10) + 1
			}
			finish[int64(i+1)] = f
		}
		b, rest := batch.PackSlotted(items, 4, 10, 5)
		if len(rest) != 0 {
			return true
		}
		early, err := SimulateEarlyCleaning(b, finish, 4)
		if err != nil {
			return false
		}
		// Whole-batch baseline on the same footprint: everything resident
		// until the final step.
		wholeByteSteps := early.TotalBytes * int64(early.FinalStep)
		return early.ByteSteps <= wholeByteSteps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
