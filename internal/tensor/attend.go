package tensor

import (
	"fmt"
	"math"
)

// This file holds the attention kernels: the dense fused multi-head kernel
// (scores, scale+mask+softmax and the value product in one pass over pooled
// buffers) and the block-sparse kernel that realizes §4.2's score-area
// elimination — only intra-block Q·Kᵀ entries are ever computed, and the
// segment mask is applied inline instead of being materialized as an L×L
// additive matrix.

// Span is a half-open row interval [Start, End).
type Span struct{ Start, End int }

// Len returns the number of rows in the span.
func (s Span) Len() int { return s.End - s.Start }

// AttendBlock pairs a span of query rows with the span of key/value rows
// they may attend to. For slotted self-attention Q == K (the slot); for
// cross-attention Q is a decoder segment and K its encoder segment.
type AttendBlock struct{ Q, K Span }

// MultiHeadAttendInto computes, for every head h of width q.Cols/heads,
//
//	out[:, h·dh:(h+1)·dh] = softmax(scale·q_h·k_hᵀ + mask) · v_h
//
// in one fused pass: per query row the head's scores are produced, masked,
// softmaxed and contracted against v without materializing per-head operand
// copies. q is nq×d; k and v are nk×d; out is nq×d; mask (optional) is
// nq×nk and shared by all heads. scores is caller-provided scratch of at
// least nq rows × nk cols — pass a workspace buffer to keep the call
// allocation-free.
func MultiHeadAttendInto(out, q, k, v *Matrix, heads int, scale float32, mask, scores *Matrix) {
	d := q.Cols
	nq, nk := q.Rows, k.Rows
	if heads <= 0 || d%heads != 0 {
		panic(fmt.Sprintf("tensor: %d heads must divide width %d", heads, d))
	}
	if k.Cols != d || v.Cols != d || v.Rows != nk {
		panic(fmt.Sprintf("tensor: attend k %dx%d v %dx%d vs q %dx%d",
			k.Rows, k.Cols, v.Rows, v.Cols, nq, d))
	}
	if out.Rows != nq || out.Cols != d {
		panic(fmt.Sprintf("tensor: attend out %dx%d, want %dx%d", out.Rows, out.Cols, nq, d))
	}
	if mask != nil && (mask.Rows != nq || mask.Cols != nk) {
		panic(fmt.Sprintf("tensor: attend mask %dx%d, want %dx%d", mask.Rows, mask.Cols, nq, nk))
	}
	if scores.Rows < nq || scores.Cols < nk {
		panic(fmt.Sprintf("tensor: attend scores %dx%d too small for %dx%d",
			scores.Rows, scores.Cols, nq, nk))
	}
	dh := d / heads
	if planWorkers(nq, 8) == 1 {
		attendRange(out, q, k, v, heads, dh, scale, mask, scores, 0, nq)
		return
	}
	parallelRows(nq, 8, func(lo, hi int) {
		attendRange(out, q, k, v, heads, dh, scale, mask, scores, lo, hi)
	})
}

// attendRange runs every head for query rows [lo, hi). Workers own disjoint
// query rows, so the shared scores scratch is written without overlap.
func attendRange(out, q, k, v *Matrix, heads, dh int, scale float32, mask, scores *Matrix, lo, hi int) {
	nk := k.Rows
	ks, kd := k.stride(), k.Data
	for h := 0; h < heads; h++ {
		c0 := h * dh
		for i := lo; i < hi; i++ {
			qr := q.Row(i)[c0 : c0+dh]
			srow := scores.Row(i)[:nk]
			var mrow []float32
			if mask != nil {
				mrow = mask.Row(i)
			}
			for t := 0; t < nk; t++ {
				sum := scoreDot(qr, kd, t*ks+c0) * scale
				if mrow != nil {
					sum += mrow[t]
				}
				srow[t] = sum
			}
			softmaxRow(srow)
			weighedSumRows(out.Row(i)[c0:c0+dh], srow, v, 0, c0, dh)
		}
	}
}

// scoreDot is the query·key inner product of the attention kernels: four
// independent accumulators over the head slice kd[off : off+len(qr)]. Small
// enough to inline into the score loops, which call it once per (row, key).
func scoreDot(qr, kd []float32, off int) float32 {
	kr := kd[off : off+len(qr)]
	var s0, s1, s2, s3 float32
	j := 0
	for ; j+4 <= len(qr); j += 4 {
		s0 += qr[j] * kr[j]
		s1 += qr[j+1] * kr[j+1]
		s2 += qr[j+2] * kr[j+2]
		s3 += qr[j+3] * kr[j+3]
	}
	for ; j < len(qr); j++ {
		s0 += qr[j] * kr[j]
	}
	return s0 + s1 + s2 + s3
}

// weighedSumRows computes dst = Σ_t w[t] · v[kOff+t][c0:c0+dh], four value
// rows per accumulator pass. Quads of all-zero weights are skipped outright
// — masked-out entries after softmax are exactly zero and come in contiguous
// segment-sized runs, so the skip recovers the block sparsity of the mask.
func weighedSumRows(dst, w []float32, v *Matrix, kOff, c0, dh int) {
	for j := range dst {
		dst[j] = 0
	}
	t := 0
	for ; t+4 <= len(w); t += 4 {
		w0, w1, w2, w3 := w[t], w[t+1], w[t+2], w[t+3]
		if w0 == 0 && w1 == 0 && w2 == 0 && w3 == 0 {
			continue
		}
		v0 := v.Row(kOff + t)[c0 : c0+dh]
		v1 := v.Row(kOff + t + 1)[c0 : c0+dh]
		v2 := v.Row(kOff + t + 2)[c0 : c0+dh]
		v3 := v.Row(kOff + t + 3)[c0 : c0+dh]
		for j := range dst {
			dst[j] += w0*v0[j] + w1*v1[j] + w2*v2[j] + w3*v3[j]
		}
	}
	for ; t < len(w); t++ {
		a := w[t]
		if a == 0 {
			continue
		}
		vr := v.Row(kOff + t)[c0 : c0+dh]
		for j, vv := range vr {
			dst[j] += a * vv
		}
	}
}

// BlockAttendInto is the block-sparse attention kernel: attention is
// computed only inside the given blocks, so the score area is Σ|Q_b|·|K_b|
// (Eq. 8's Σ zᵢ² for slotted self-attention) instead of nq·nk, and no dense
// mask matrix is ever built.
//
// qSeg/kSeg (optional, per-row segment ids with -1 for padding) apply the
// concat-isolation mask inline: a key whose segment differs from the query's
// contributes exactly like a NegInf-masked dense entry, so results are
// bitwise identical to the dense masked path restricted to the block.
// causal additionally hides keys with global row index greater than the
// query's (self-attention only: q and k must share a row space).
//
// Query rows not covered by any block produce zero output, matching the
// fully masked rows of the dense path. Blocks must not overlap in Q.
// scores is caller scratch with at least q.Rows rows × max block K-width
// cols.
func BlockAttendInto(out, q, k, v *Matrix, heads int, scale float32,
	blocks []AttendBlock, qSeg, kSeg []int, causal bool, scores *Matrix) {
	d := q.Cols
	nq, nk := q.Rows, k.Rows
	if heads <= 0 || d%heads != 0 {
		panic(fmt.Sprintf("tensor: %d heads must divide width %d", heads, d))
	}
	if k.Cols != d || v.Cols != d || v.Rows != nk {
		panic(fmt.Sprintf("tensor: attend k %dx%d v %dx%d vs q %dx%d",
			k.Rows, k.Cols, v.Rows, v.Cols, nq, d))
	}
	if out.Rows != nq || out.Cols != d {
		panic(fmt.Sprintf("tensor: attend out %dx%d, want %dx%d", out.Rows, out.Cols, nq, d))
	}
	if qSeg != nil && len(qSeg) != nq {
		panic(fmt.Sprintf("tensor: qSeg len %d != %d query rows", len(qSeg), nq))
	}
	if kSeg != nil && len(kSeg) != nk {
		panic(fmt.Sprintf("tensor: kSeg len %d != %d key rows", len(kSeg), nk))
	}
	maxK := 0
	for _, b := range blocks {
		if b.Q.Start < 0 || b.Q.End > nq || b.K.Start < 0 || b.K.End > nk ||
			b.Q.Start > b.Q.End || b.K.Start > b.K.End {
			panic(fmt.Sprintf("tensor: block %+v out of range %dx%d", b, nq, nk))
		}
		if w := b.K.Len(); w > maxK {
			maxK = w
		}
	}
	if len(blocks) > 0 && (scores.Rows < nq || scores.Cols < maxK) {
		panic(fmt.Sprintf("tensor: attend scores %dx%d too small for %d rows × %d block width",
			scores.Rows, scores.Cols, nq, maxK))
	}
	out.Zero()
	dh := d / heads
	// Blocks own disjoint query rows, so they can run concurrently when the
	// machine has spare threads; each worker takes a contiguous run of
	// blocks. On one hardware thread this stays inline and allocation-free.
	if planWorkers(len(blocks), 1) == 1 {
		blockAttendRange(out, q, k, v, heads, dh, scale, blocks, qSeg, kSeg, causal, scores, 0, len(blocks))
		return
	}
	parallelRows(len(blocks), 1, func(lo, hi int) {
		blockAttendRange(out, q, k, v, heads, dh, scale, blocks, qSeg, kSeg, causal, scores, lo, hi)
	})
}

func blockAttendRange(out, q, k, v *Matrix, heads, dh int, scale float32,
	blocks []AttendBlock, qSeg, kSeg []int, causal bool, scores *Matrix, bLo, bHi int) {
	ks, kd := k.stride(), k.Data
	for bi := bLo; bi < bHi; bi++ {
		b := blocks[bi]
		k0, kw := b.K.Start, b.K.Len()
		for h := 0; h < heads; h++ {
			c0 := h * dh
			for i := b.Q.Start; i < b.Q.End; i++ {
				qr := q.Row(i)[c0 : c0+dh]
				srow := scores.Row(i)[:kw]
				si := -1
				if qSeg != nil {
					si = qSeg[i]
				}
				kEnd := kw
				if causal && i+1-k0 < kEnd {
					// Keys strictly after the query row are never visible;
					// skip them entirely (the dense path masks them to an
					// exact zero, so dropping the terms changes nothing).
					kEnd = i + 1 - k0
					if kEnd < 0 {
						kEnd = 0
					}
				}
				for t := 0; t < kEnd; t++ {
					sum := scoreDot(qr, kd, (k0+t)*ks+c0) * scale
					if kSeg != nil && kSeg[k0+t] != si {
						// Inline concat-isolation mask: same additive NegInf
						// the dense mask would have applied.
						sum += NegInf
					}
					srow[t] = sum
				}
				srow = srow[:kEnd]
				softmaxRow(srow)
				weighedSumRows(out.Row(i)[c0:c0+dh], srow, v, k0, c0, dh)
			}
		}
	}
}

// AttendScoreArea returns the number of score entries BlockAttendInto
// computes for the given blocks — the Σ zᵢ² quantity of Fig. 7 when blocks
// are slots. Useful for asserting the kernel's work bound in tests.
func AttendScoreArea(blocks []AttendBlock) int {
	area := 0
	for _, b := range blocks {
		area += b.Q.Len() * b.K.Len()
	}
	return area
}

// attendCachedRow computes one query row's multi-head attention over cached
// key/value matrices (the incremental-decode hot path): dst and qrow are
// d-wide, keys/vals hold the cached rows. scores is scratch of at least
// keys.Rows entries. Zero allocations.
func attendCachedRow(dst, qrow []float32, keys, vals *Matrix, heads, dh int, scale float32, scores []float32) {
	n := keys.Rows
	srow := scores[:n]
	for h := 0; h < heads; h++ {
		c0 := h * dh
		maxv := float32(math.Inf(-1))
		qr := qrow[c0 : c0+dh]
		ks, kd := keys.stride(), keys.Data
		for t := 0; t < n; t++ {
			sum := scoreDot(qr, kd, t*ks+c0) * scale
			srow[t] = sum
			if sum > maxv {
				maxv = sum
			}
		}
		var norm float32
		for t := 0; t < n; t++ {
			e := float32(math.Exp(float64(srow[t] - maxv)))
			srow[t] = e
			norm += e
		}
		inv := 1 / norm
		dstH := dst[c0 : c0+dh]
		for j := range dstH {
			dstH[j] = 0
		}
		for t := 0; t < n; t++ {
			a := srow[t] * inv
			vr := vals.Row(t)[c0 : c0+dh]
			for j, vv := range vr {
				dstH[j] += a * vv
			}
		}
	}
}

// AttendCachedRow is the exported form of the incremental-decode kernel used
// by the model's DecodeState.
func AttendCachedRow(dst, qrow []float32, keys, vals *Matrix, heads, dh int, scale float32, scores []float32) {
	if len(dst) != heads*dh || len(qrow) != heads*dh {
		panic(fmt.Sprintf("tensor: cached attend dst/q len %d/%d != %d", len(dst), len(qrow), heads*dh))
	}
	if keys.Rows != vals.Rows || keys.Cols != heads*dh || vals.Cols != heads*dh {
		panic(fmt.Sprintf("tensor: cached attend keys %dx%d vals %dx%d", keys.Rows, keys.Cols, vals.Rows, vals.Cols))
	}
	if len(scores) < keys.Rows {
		panic(fmt.Sprintf("tensor: cached attend scores len %d < %d", len(scores), keys.Rows))
	}
	attendCachedRow(dst, qrow, keys, vals, heads, dh, scale, scores)
}
