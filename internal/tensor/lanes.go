//go:build !purego

package tensor

import "unsafe"

// This file is the default (unsafe) implementation of the 8-lane inner-loop
// helpers behind the wide float32 kernel. Each helper advances over the
// destination in fixed [8]float32 blocks through array pointers, so the
// innermost multiply-adds run with no per-element bounds checks and with the
// eight lanes laid out for the compiler to keep in registers.
//
// lanes_purego.go holds the pure-Go fallback (build tag purego) with the
// identical per-element expressions; the accumulation order of every dst
// element — a k-quad's four products summed left to right, exactly the
// scalar kernel's order — is the same on both builds and both kernels, so
// results are bitwise identical everywhere. Any change here must be mirrored
// there (and vice versa) or TestWideMatchesScalarExact will fail.

// lane8 is one 8-float block of a row.
type lane8 = [8]float32

// quadAxpy2 performs, for every j in [0, len(d0)):
//
//	d0[j] += a00*b0[j] + a01*b1[j] + a02*b2[j] + a03*b3[j]
//	d1[j] += a10*b0[j] + a11*b1[j] + a12*b2[j] + a13*b3[j]
//
// — one k-quad of the 2×4 register-blocked kernel across two dst rows.
// b0..b3 and d1 must be at least len(d0) long.
func quadAxpy2(d0, d1, b0, b1, b2, b3 []float32,
	a00, a01, a02, a03, a10, a11, a12, a13 float32) {
	n := len(d0)
	j := 0
	for ; j+8 <= n; j += 8 {
		p0 := (*lane8)(unsafe.Pointer(&d0[j]))
		p1 := (*lane8)(unsafe.Pointer(&d1[j]))
		q0 := (*lane8)(unsafe.Pointer(&b0[j]))
		q1 := (*lane8)(unsafe.Pointer(&b1[j]))
		q2 := (*lane8)(unsafe.Pointer(&b2[j]))
		q3 := (*lane8)(unsafe.Pointer(&b3[j]))
		for l := 0; l < 8; l++ {
			v0, v1, v2, v3 := q0[l], q1[l], q2[l], q3[l]
			p0[l] += a00*v0 + a01*v1 + a02*v2 + a03*v3
			p1[l] += a10*v0 + a11*v1 + a12*v2 + a13*v3
		}
	}
	for ; j < n; j++ {
		v0, v1, v2, v3 := b0[j], b1[j], b2[j], b3[j]
		d0[j] += a00*v0 + a01*v1 + a02*v2 + a03*v3
		d1[j] += a10*v0 + a11*v1 + a12*v2 + a13*v3
	}
}

// quadAxpy1 is the one-row form of quadAxpy2 (the odd-row remainder path):
//
//	d[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
func quadAxpy1(d, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	n := len(d)
	j := 0
	for ; j+8 <= n; j += 8 {
		p := (*lane8)(unsafe.Pointer(&d[j]))
		q0 := (*lane8)(unsafe.Pointer(&b0[j]))
		q1 := (*lane8)(unsafe.Pointer(&b1[j]))
		q2 := (*lane8)(unsafe.Pointer(&b2[j]))
		q3 := (*lane8)(unsafe.Pointer(&b3[j]))
		for l := 0; l < 8; l++ {
			p[l] += a0*q0[l] + a1*q1[l] + a2*q2[l] + a3*q3[l]
		}
	}
	for ; j < n; j++ {
		d[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

// tailAxpy2 is one scalar-tail k step across two dst rows:
//
//	d0[j] += a0*b[j]; d1[j] += a1*b[j]
//
// It never skips a0 == 0 — matching the paired scalar path, which always
// adds (the zero-skip short-circuit lives only on the single-row tails).
func tailAxpy2(d0, d1, b []float32, a0, a1 float32) {
	n := len(d0)
	j := 0
	for ; j+8 <= n; j += 8 {
		p0 := (*lane8)(unsafe.Pointer(&d0[j]))
		p1 := (*lane8)(unsafe.Pointer(&d1[j]))
		q := (*lane8)(unsafe.Pointer(&b[j]))
		for l := 0; l < 8; l++ {
			v := q[l]
			p0[l] += a0 * v
			p1[l] += a1 * v
		}
	}
	for ; j < n; j++ {
		v := b[j]
		d0[j] += a0 * v
		d1[j] += a1 * v
	}
}

// tailAxpy1 is one scalar-tail k step on a single dst row. Callers apply the
// single-row zero-skip (if a == 0, skip the call) exactly where the scalar
// kernel does.
func tailAxpy1(d, b []float32, a float32) {
	n := len(d)
	j := 0
	for ; j+8 <= n; j += 8 {
		p := (*lane8)(unsafe.Pointer(&d[j]))
		q := (*lane8)(unsafe.Pointer(&b[j]))
		for l := 0; l < 8; l++ {
			p[l] += a * q[l]
		}
	}
	for ; j < n; j++ {
		d[j] += a * b[j]
	}
}
