package tensor

import (
	"math"
	"testing"
)

// Symmetric absmax rounding means every weight reconstructs to within half a
// quantization step of its channel.
func TestQuantizeRoundTripBoundedError(t *testing.T) {
	w := randMatrix(37, 29, 71)
	q := QuantizeMatrix(w)
	d := q.Dequantize()
	for i := 0; i < w.Rows; i++ {
		for j := 0; j < w.Cols; j++ {
			diff := math.Abs(float64(w.At(i, j)) - float64(d.At(i, j)))
			bound := 0.5*float64(q.Scales[j]) + 1e-12
			if diff > bound*(1+1e-5) {
				t.Fatalf("(%d,%d): |%v - %v| = %g exceeds half-step %g",
					i, j, w.At(i, j), d.At(i, j), diff, bound)
			}
		}
	}
}

// Edge channels: all-zero columns, a single dominating outlier, and absmax
// values small enough that the float32 scale underflows to zero (the
// degenerate case whose reciprocal would otherwise overflow).
func TestQuantizeEdgeChannels(t *testing.T) {
	w := New(4, 4)
	// col 0: all zero. col 1: one outlier at 100 among 0.1s. col 2: absmax is
	// the smallest positive float32 (scale underflows to 0). col 3: absmax
	// 1e-38 (denormal but representable scale).
	for i := 0; i < 4; i++ {
		w.Set(i, 1, 0.1)
		w.Set(i, 3, 1e-38*float32(i+1)/4)
	}
	w.Set(2, 1, 100)
	w.Set(1, 2, math.SmallestNonzeroFloat32)
	q := QuantizeMatrix(w)
	d := q.Dequantize()

	if q.Scales[0] != 0 || q.Scales[2] != 0 {
		t.Fatalf("degenerate channels must get zero scales: %v", q.Scales)
	}
	for i := 0; i < 4; i++ {
		if d.At(i, 0) != 0 || d.At(i, 2) != 0 {
			t.Fatalf("degenerate channels must dequantize to exact zero: row %d", i)
		}
	}
	// The outlier pins the scale: 100 maps to ±127 exactly and reconstructs
	// to 100 within float rounding; 0.1 is far below half a step (≈0.39) and
	// quantizes to zero.
	if got := q.At(2, 1); got != 127 {
		t.Fatalf("outlier quantized to %d, want 127", got)
	}
	if diff := math.Abs(float64(d.At(2, 1)) - 100); diff > 1e-4 {
		t.Fatalf("outlier reconstructs to %v, want 100", d.At(2, 1))
	}
	if got := q.At(0, 1); got != 0 {
		t.Fatalf("sub-half-step value quantized to %d, want 0", got)
	}
	// The denormal-scale channel still round-trips within half a step.
	for i := 0; i < 4; i++ {
		diff := math.Abs(float64(w.At(i, 3)) - float64(d.At(i, 3)))
		if diff > 0.5*float64(q.Scales[3])*(1+1e-5) {
			t.Fatalf("denormal channel row %d off by %g (scale %g)", i, diff, q.Scales[3])
		}
	}
}

// At returns the quantized entry (test helper shape).
func (q *QuantizedMatrix) At(i, j int) int8 { return q.Data[i*q.Cols+j] }

// The kernel's biased form must be derivable from the canonical int8 data.
func TestQuantizedKernelFormMatchesData(t *testing.T) {
	w := randMatrix(23, 17, 73)
	q := QuantizeMatrix(w)
	if len(q.udata) != len(q.Data) || len(q.colSumU) != q.Cols {
		t.Fatalf("kernel form sizes: %d/%d data, %d/%d cols",
			len(q.udata), len(q.Data), len(q.colSumU), q.Cols)
	}
	sums := make([]int32, q.Cols)
	for i := 0; i < q.Rows; i++ {
		for j := 0; j < q.Cols; j++ {
			u := int32(q.Data[i*q.Cols+j]) + 128
			if int32(q.udata[i*q.Cols+j]) != u {
				t.Fatalf("udata[%d,%d] = %d, want %d", i, j, q.udata[i*q.Cols+j], u)
			}
			sums[j] += u
		}
	}
	for j := range sums {
		if sums[j] != q.colSumU[j] {
			t.Fatalf("colSumU[%d] = %d, want %d", j, q.colSumU[j], sums[j])
		}
	}
}

// The SWAR kernel's integer arithmetic is exact: its output must equal the
// float64 evaluation of the quantized product Σ qa·qw · sa · sw to within
// the final float32 dequantization rounding.
func TestMatMulQuantizedMatchesExactInt(t *testing.T) {
	for _, s := range [][3]int{{1, 1, 1}, {3, 5, 7}, {17, 40, 23}, {9, 130, 300}} {
		a := randMatrix(s[0], s[1], uint64(300+s[0]))
		w := randMatrix(s[1], s[2], uint64(400+s[2]))
		q := QuantizeMatrix(w)
		got := New(s[0], s[2])
		MatMulQuantizedInto(got, a, q, nil)

		qa := &I8Matrix{Rows: s[0], Cols: s[1], Data: make([]int8, s[0]*s[1])}
		sa := make([]float32, s[0])
		quantizeRowsInto(qa, sa, a)
		for i := 0; i < s[0]; i++ {
			for j := 0; j < s[2]; j++ {
				var acc int64
				for k := 0; k < s[1]; k++ {
					acc += int64(qa.Data[i*s[1]+k]) * int64(q.Data[k*s[2]+j])
				}
				ref := float64(acc) * float64(sa[i]) * float64(q.Scales[j])
				diff := math.Abs(float64(got.At(i, j)) - ref)
				if diff > 1e-5*math.Max(1, math.Abs(ref)) {
					t.Fatalf("shape %v (%d,%d): %v vs exact %v", s, i, j, got.At(i, j), ref)
				}
			}
		}
	}
}

// Per-row activation scales and exact integer accumulation make the
// quantized output independent of GEMM height: computing row blocks
// separately must reproduce the full product bit for bit.
func TestMatMulQuantizedHeightInvariance(t *testing.T) {
	a := randMatrix(13, 32, 81)
	w := randMatrix(32, 48, 82)
	q := QuantizeMatrix(w)
	full := New(13, 48)
	MatMulQuantizedInto(full, a, q, nil)
	for _, split := range []int{1, 5, 12} {
		for _, part := range [][2]int{{0, split}, {split, 13}} {
			rows := part[1] - part[0]
			sub := FromSlice(rows, 32, a.Data[part[0]*32:part[1]*32])
			out := New(rows, 48)
			MatMulQuantizedInto(out, sub, q, nil)
			for i := 0; i < rows; i++ {
				for j := 0; j < 48; j++ {
					g, f := out.At(i, j), full.At(part[0]+i, j)
					if math.Float32bits(g) != math.Float32bits(f) {
						t.Fatalf("split %d row %d col %d: %v != %v", split, part[0]+i, j, g, f)
					}
				}
			}
		}
	}
}

// End-to-end error bound against the unquantized float product: each output
// can be off by at most the propagated half-step errors of both operands.
func TestMatMulQuantizedBoundedErrorVsFloat(t *testing.T) {
	a := randMatrix(11, 64, 91)
	w := randMatrix(64, 33, 92)
	q := QuantizeMatrix(w)
	got := New(11, 33)
	MatMulQuantizedInto(got, a, q, nil)

	qa := &I8Matrix{Rows: a.Rows, Cols: a.Cols, Data: make([]int8, a.Rows*a.Cols)}
	sa := make([]float32, a.Rows)
	quantizeRowsInto(qa, sa, a)
	for i := 0; i < a.Rows; i++ {
		ea := 0.5 * float64(sa[i]) // max per-entry activation error
		for j := 0; j < w.Cols; j++ {
			ew := 0.5 * float64(q.Scales[j]) // max per-entry weight error
			var ref, bound float64
			for k := 0; k < a.Cols; k++ {
				x := float64(a.At(i, k))
				y := float64(w.At(k, j))
				ref += x * y
				bound += ea*math.Abs(y) + ew*math.Abs(x) + ea*ew
			}
			diff := math.Abs(float64(got.At(i, j)) - ref)
			if diff > bound*(1+1e-4)+1e-9 {
				t.Fatalf("(%d,%d): |quantized - float| = %g exceeds bound %g", i, j, diff, bound)
			}
		}
	}
}

func TestMatMulQuantizedShapePanics(t *testing.T) {
	q := QuantizeMatrix(randMatrix(4, 5, 95))
	for _, fn := range []func(){
		func() { MatMulQuantizedInto(New(2, 5), New(2, 3), q, nil) }, // inner dim
		func() { MatMulQuantizedInto(New(3, 5), New(2, 4), q, nil) }, // dst rows
		func() { MatMulQuantizedInto(New(2, 4), New(2, 4), q, nil) }, // dst cols
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Warm quantized GEMMs are allocation-free both with a caller workspace and
// with the package pool (nil workspace).
func TestMatMulQuantizedWarmZeroAllocs(t *testing.T) {
	serialKernels(t)
	a := randMatrix(24, 32, 96)
	w := randMatrix(32, 48, 97)
	q := QuantizeMatrix(w)
	dst := New(24, 48)
	ws := NewWorkspace()
	defer ws.Close()
	MatMulQuantizedInto(dst, a, q, ws) // warm the buckets
	allocs := testing.AllocsPerRun(20, func() { MatMulQuantizedInto(dst, a, q, ws) })
	if allocs != 0 {
		t.Fatalf("warm quantized GEMM (caller ws) allocated %g times per run", allocs)
	}
	if !raceEnabled { // the race detector drops sync.Pool puts by design
		MatMulQuantizedInto(dst, a, q, nil) // warm the package pool
		allocs = testing.AllocsPerRun(20, func() { MatMulQuantizedInto(dst, a, q, nil) })
		if allocs != 0 {
			t.Fatalf("warm quantized GEMM (pooled ws) allocated %g times per run", allocs)
		}
	}
}

func BenchmarkMatMulQuantized256(b *testing.B) {
	a := randMatrix(256, 256, 1)
	w := randMatrix(256, 256, 2)
	q := QuantizeMatrix(w)
	dst := New(256, 256)
	ws := NewWorkspace()
	defer ws.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulQuantizedInto(dst, a, q, ws)
	}
}
