package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// maxWorkers bounds the parallel fan-out of row-sharded kernels.
func maxWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// parallelRows runs fn over row ranges [lo, hi) sharded across workers.
// Small jobs run inline to avoid goroutine overhead.
func parallelRows(rows int, minRowsPerWorker int, fn func(lo, hi int)) {
	workers := maxWorkers()
	if minRowsPerWorker < 1 {
		minRowsPerWorker = 1
	}
	if rows <= minRowsPerWorker || workers == 1 {
		fn(0, rows)
		return
	}
	if rows/workers < minRowsPerWorker {
		workers = rows / minRowsPerWorker
		if workers < 1 {
			workers = 1
		}
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul returns a × b.
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a × b. dst must be a.Rows×b.Cols and must not
// alias a or b. Large products dispatch to the cache-blocked kernel.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	mulDispatch(dst, a, b)
}

// matMulSmall is the streaming ikj kernel for small operands.
func matMulSmall(dst, a, b *Matrix) {
	n, k, p := a.Rows, a.Cols, b.Cols
	parallelRows(n, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			drow := dst.Data[i*p : (i+1)*p]
			for j := range drow {
				drow[j] = 0
			}
			// ikj loop order: stream through b row-wise for locality.
			for kk := 0; kk < k; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				brow := b.Data[kk*p : (kk+1)*p]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// MatMulT returns a × bᵀ. b is given untransposed (rows of b are the columns
// of the effective right operand), which is the natural layout for attention
// scores Q·Kᵀ.
func MatMulT(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTInto(out, a, b)
	return out
}

// MatMulTInto computes dst = a × bᵀ. dst must be a.Rows×b.Rows.
func MatMulTInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT inner dims %d != %d", a.Cols, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulT dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	n, k, p := a.Rows, a.Cols, b.Rows
	parallelRows(n, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			drow := dst.Data[i*p : (i+1)*p]
			for j := 0; j < p; j++ {
				brow := b.Data[j*k : (j+1)*k]
				var sum float32
				for kk, av := range arow {
					sum += av * brow[kk]
				}
				drow[j] = sum
			}
		}
	})
}

// Transpose returns mᵀ.
func Transpose(m *Matrix) *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}
