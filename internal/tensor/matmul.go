package tensor

import (
	"fmt"
)

// MatMul returns a × b.
func MatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a × b. dst must be a.Rows×b.Cols and must not
// alias a or b. Large products dispatch to the cache-blocked kernel.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	mulDispatch(dst, a, b)
}

// matMulSmall is the streaming ikj kernel for small operands.
func matMulSmall(dst, a, b *Matrix) {
	n := a.Rows
	if planWorkers(n, 8) == 1 {
		matMulSmallRange(dst, a, b, 0, n)
		return
	}
	parallelRows(n, 8, func(lo, hi int) {
		matMulSmallRange(dst, a, b, lo, hi)
	})
}

// matMulSmallRange processes two dst rows per pass (register blocking: the
// four b rows of each k-quad are loaded once and feed eight multiply-adds
// instead of four) with a single-row fallback for the odd remainder.
//
// Per-row accumulation order is always quads of k followed by a scalar tail —
// the same order for the paired path, the single-row path and the blocked
// kernel's micro-tile (whose k boundaries are multiples of four). A given dst
// row therefore gets bitwise-identical results no matter which kernel, worker
// chunk or row pairing computed it; the fused batch decoder relies on this to
// stay token-identical with per-row decoding across different GEMM heights.
func matMulSmallRange(dst, a, b *Matrix, lo, hi int) {
	k, p := a.Cols, b.Cols
	sb := b.stride()
	bd := b.Data
	i := lo
	for ; i+2 <= hi; i += 2 {
		ar0, ar1 := a.Row(i), a.Row(i+1)
		d0 := dst.Row(i)[:p]
		d1 := dst.Row(i + 1)[:p]
		for j := range d0 {
			d0[j] = 0
		}
		for j := range d1 {
			d1[j] = 0
		}
		kk := 0
		for ; kk+4 <= k; kk += 4 {
			a00, a01, a02, a03 := ar0[kk], ar0[kk+1], ar0[kk+2], ar0[kk+3]
			a10, a11, a12, a13 := ar1[kk], ar1[kk+1], ar1[kk+2], ar1[kk+3]
			b0 := bd[kk*sb : kk*sb+p]
			b1 := bd[(kk+1)*sb : (kk+1)*sb+p]
			b2 := bd[(kk+2)*sb : (kk+2)*sb+p]
			b3 := bd[(kk+3)*sb : (kk+3)*sb+p]
			for j := range d0 {
				v0, v1, v2, v3 := b0[j], b1[j], b2[j], b3[j]
				d0[j] += a00*v0 + a01*v1 + a02*v2 + a03*v3
				d1[j] += a10*v0 + a11*v1 + a12*v2 + a13*v3
			}
		}
		for ; kk < k; kk++ {
			av0, av1 := ar0[kk], ar1[kk]
			brow := bd[kk*sb : kk*sb+p]
			for j := range d0 {
				d0[j] += av0 * brow[j]
				d1[j] += av1 * brow[j]
			}
		}
	}
	if i < hi {
		matMulRowRange(dst, a, b, i, hi)
	}
}

// matMulRowRange is the one-row-at-a-time form of the small kernel, with the
// same per-row k-quad accumulation order as the paired path.
func matMulRowRange(dst, a, b *Matrix, lo, hi int) {
	k, p := a.Cols, b.Cols
	sb := b.stride()
	bd := b.Data
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)[:p]
		for j := range drow {
			drow[j] = 0
		}
		kk := 0
		for ; kk+4 <= k; kk += 4 {
			a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
			b0 := bd[kk*sb : kk*sb+p]
			b1 := bd[(kk+1)*sb : (kk+1)*sb+p]
			b2 := bd[(kk+2)*sb : (kk+2)*sb+p]
			b3 := bd[(kk+3)*sb : (kk+3)*sb+p]
			for j := range drow {
				drow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := bd[kk*sb : kk*sb+p]
			for j := range drow {
				drow[j] += av * brow[j]
			}
		}
	}
}

// MatMulT returns a × bᵀ. b is given untransposed (rows of b are the columns
// of the effective right operand), which is the natural layout for attention
// scores Q·Kᵀ.
func MatMulT(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTInto(out, a, b)
	return out
}

// MatMulTInto computes dst = a × bᵀ. dst must be a.Rows×b.Rows. Large
// products dispatch to the cache-blocked kernel, exactly like MatMulInto.
func MatMulTInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT inner dims %d != %d", a.Cols, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulT dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	if a.Rows*a.Cols*b.Rows >= matMulThreshold {
		MatMulTBlocked(dst, a, b)
		return
	}
	n := a.Rows
	if planWorkers(n, 8) == 1 {
		matMulTSmallRange(dst, a, b, 0, n)
		return
	}
	parallelRows(n, 8, func(lo, hi int) {
		matMulTSmallRange(dst, a, b, lo, hi)
	})
}

func matMulTSmallRange(dst, a, b *Matrix, lo, hi int) {
	p := b.Rows
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < p; j++ {
			drow[j] = dotUnrolled(arow, b.Row(j))
		}
	}
}

// dotUnrolled is the shared inner product with four independent
// accumulators, breaking the FP add dependency chain that serializes the
// naive loop. len(b) must be ≥ len(a).
func dotUnrolled(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	j := 0
	b = b[:len(a)]
	for ; j+4 <= len(a); j += 4 {
		s0 += a[j] * b[j]
		s1 += a[j+1] * b[j+1]
		s2 += a[j+2] * b[j+2]
		s3 += a[j+3] * b[j+3]
	}
	for ; j < len(a); j++ {
		s0 += a[j] * b[j]
	}
	return s0 + s1 + s2 + s3
}

// Transpose returns mᵀ.
func Transpose(m *Matrix) *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}
