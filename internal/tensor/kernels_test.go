package tensor

import (
	"math"
	"testing"
)

// withKernel selects a float32 kernel for the test and restores the previous
// selection afterwards (the selection is process-wide).
func withKernel(t *testing.T, k Kernel) {
	t.Helper()
	old := ActiveKernel()
	SetKernel(k)
	t.Cleanup(func() { SetKernel(old) })
}

// sprinkleZeros plants exact zeros so the kernels' k-tail zero-skip paths
// run (random floats almost never hit 0.0 exactly).
func sprinkleZeros(m *Matrix) {
	for i := 0; i < len(m.Data); i += 7 {
		m.Data[i] = 0
	}
}

// requireBitwiseEqual fails unless every element of got has the identical
// bit pattern to want — the wide kernel's contract is exact equality, not
// closeness.
func requireBitwiseEqual(t *testing.T, got, want *Matrix, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d != %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: bit mismatch at flat index %d: %v (%#08x) vs %v (%#08x)",
				label, i,
				got.Data[i], math.Float32bits(got.Data[i]),
				want.Data[i], math.Float32bits(want.Data[i]))
		}
	}
}

// The tentpole contract: the 8-lane wide kernel produces bit-for-bit the
// same outputs as the scalar reference kernel, across shapes that exercise
// every lane/quad/tail combination — odd rows (the paired-row remainder),
// odd k (the scalar k-tail, with planted zeros for its skip branch), and
// column counts straddling multiples of 8.
func TestWideMatchesScalarBitwise(t *testing.T) {
	shapes := [][3]int{
		{1, 1, 1}, {1, 5, 3}, {2, 3, 9}, {3, 7, 8}, {5, 9, 17},
		{7, 8, 15}, {9, 16, 7}, {31, 33, 31}, {64, 64, 64},
		{65, 63, 66}, {129, 65, 130},
	}
	for _, s := range shapes {
		a := randMatrix(s[0], s[1], uint64(100+s[0]))
		b := randMatrix(s[1], s[2], uint64(200+s[2]))
		sprinkleZeros(a)
		want := New(s[0], s[2])
		withKernel(t, KernelScalar)
		MatMulInto(want, a, b)
		got := New(s[0], s[2])
		SetKernel(KernelWide)
		MatMulInto(got, a, b)
		requireBitwiseEqual(t, got, want, "wide vs scalar")
	}
}

// The blocked (cache-tiled) forms of both kernels share the same tiling
// geometry, so they must agree bitwise too.
func TestWideBlockedMatchesScalarBlockedBitwise(t *testing.T) {
	a := randMatrix(150, 90, 31)
	b := randMatrix(90, 130, 32)
	sprinkleZeros(a)
	want := New(150, 130)
	MatMulBlocked(want, a, b)
	got := New(150, 130)
	MatMulWideBlocked(got, a, b)
	requireBitwiseEqual(t, got, want, "wide blocked vs scalar blocked")
}

// A product crossing the small→blocked dispatch threshold must stay bitwise
// identical between kernel selections (130³ > matMulThreshold).
func TestWideDispatchCrossesThreshold(t *testing.T) {
	a := randMatrix(130, 130, 41)
	b := randMatrix(130, 130, 42)
	sprinkleZeros(a)
	withKernel(t, KernelScalar)
	want := MatMul(a, b)
	SetKernel(KernelWide)
	got := MatMul(a, b)
	requireBitwiseEqual(t, got, want, "dispatch at threshold")
}

func TestParseKernel(t *testing.T) {
	cases := []struct {
		in   string
		want Kernel
		ok   bool
	}{
		{"wide", KernelWide, true},
		{"int8", KernelWide, true}, // int8 rides the wide float32 dispatch
		{"scalar", KernelScalar, true},
		{"avx512", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseKernel(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Fatalf("ParseKernel(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Fatalf("ParseKernel(%q) should fail", c.in)
		}
	}
	if KernelWide.String() != "wide" || KernelScalar.String() != "scalar" {
		t.Fatalf("Kernel.String: %q / %q", KernelWide, KernelScalar)
	}
}

// Dispatch counters tick once per GEMM on the path that actually ran it.
func TestKernelCounters(t *testing.T) {
	a := randMatrix(8, 8, 51)
	b := randMatrix(8, 8, 52)
	q := QuantizeMatrix(b)
	dst := New(8, 8)

	withKernel(t, KernelWide)
	ResetKernelCounters()
	t.Cleanup(ResetKernelCounters)
	MatMulInto(dst, a, b)
	MatMulInto(dst, a, b)
	SetKernel(KernelScalar)
	MatMulInto(dst, a, b)
	MatMulQuantizedInto(dst, a, q, nil)
	got := KernelCounters()
	want := KernelCounts{Scalar: 1, Wide: 2, Int8: 1}
	if got != want {
		t.Fatalf("counters = %+v, want %+v", got, want)
	}
}

// The wide kernel inherits the float32 path's zero-allocation guarantee on
// both sides of the blocked threshold.
func TestWideKernelZeroAllocs(t *testing.T) {
	serialKernels(t)
	withKernel(t, KernelWide)
	a := randMatrix(64, 64, 61)
	b := randMatrix(64, 64, 62)
	dst := New(64, 64)
	allocs := testing.AllocsPerRun(20, func() { MatMulInto(dst, a, b) })
	if allocs != 0 {
		t.Fatalf("wide small kernel allocated %g times per run", allocs)
	}
	la := randMatrix(192, 96, 63)
	lb := randMatrix(96, 192, 64)
	ldst := New(192, 192)
	allocs = testing.AllocsPerRun(5, func() { MatMulInto(ldst, la, lb) })
	if allocs != 0 {
		t.Fatalf("wide blocked kernel allocated %g times per run", allocs)
	}
}
