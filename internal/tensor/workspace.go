package tensor

import (
	"math/bits"
	"sync"
)

// Workspace bucket geometry: buffers are rounded up to powers of two between
// 2^minBucketBits and 2^maxBucketBits floats. Requests above the ceiling are
// allocated directly and never pooled (they would pin too much memory).
const (
	minBucketBits = 6  // 64 floats (256 B) — below this, rounding waste is noise
	maxBucketBits = 26 // 64M floats (256 MB) ceiling per pooled buffer
)

// Workspace is a checkout/release arena of size-bucketed float32 matrices
// for the inference hot path. Get returns a matrix backed by a pooled
// power-of-two buffer; Put returns it for reuse. A warm workspace (every
// bucket it needs already populated) serves Get/Put with zero heap
// allocations, which is what makes steady-state decoding allocation-free.
//
// A Workspace is NOT safe for concurrent use: it is meant to be owned by one
// goroutine (one batch row of the engine). Workspaces themselves are
// recycled through a package-level sync.Pool, so buffers survive across
// batches: obtain one with NewWorkspace and return it with Close.
type Workspace struct {
	free   [maxBucketBits + 1][]*Matrix
	freeI8 [maxBucketBits + 1][]*I8Matrix
}

var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// NewWorkspace checks a workspace out of the process-wide pool. The caller
// must Close it when done so its buffers can serve the next batch.
func NewWorkspace() *Workspace {
	return wsPool.Get().(*Workspace)
}

// Close returns the workspace (and every buffer that has been Put back) to
// the process-wide pool. The caller must not use the workspace, or any
// matrix still checked out of it, after Close. Close on nil is a no-op.
func (w *Workspace) Close() {
	if w == nil {
		return
	}
	wsPool.Put(w)
}

// bucketFor returns the bucket index whose buffers hold ≥ n floats.
func bucketFor(n int) int {
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b < minBucketBits {
		b = minBucketBits
	}
	return b
}

// Get checks out a rows×cols matrix. Contents are unspecified (callers
// overwrite); use GetZeroed when stale data must not leak through. A nil
// workspace degrades to a plain allocation, so workspace-threaded code paths
// also work without one.
func (w *Workspace) Get(rows, cols int) *Matrix {
	if w == nil {
		return New(rows, cols)
	}
	n := rows * cols
	if n == 0 {
		return &Matrix{Rows: rows, Cols: cols}
	}
	b := bucketFor(n)
	if b <= maxBucketBits {
		if fl := w.free[b]; len(fl) > 0 {
			m := fl[len(fl)-1]
			fl[len(fl)-1] = nil
			w.free[b] = fl[:len(fl)-1]
			m.Rows, m.Cols, m.Stride = rows, cols, 0
			m.Data = m.Data[:cap(m.Data)][:n]
			return m
		}
		return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, 1<<b)[:n]}
	}
	return New(rows, cols)
}

// GetZeroed is Get with the contents cleared.
func (w *Workspace) GetZeroed(rows, cols int) *Matrix {
	m := w.Get(rows, cols)
	m.Zero()
	return m
}

// Put releases a matrix previously returned by Get for reuse. Only matrices
// whose backing buffer is a full power-of-two block are pooled (views into
// other matrices are silently dropped). Put on a nil workspace or nil matrix
// is a no-op. The caller must not use m after Put.
func (w *Workspace) Put(m *Matrix) {
	if w == nil || m == nil {
		return
	}
	c := cap(m.Data)
	if c == 0 {
		return
	}
	b := bits.Len(uint(c)) - 1 // floor(log2 c)
	if 1<<b != c || b < minBucketBits || b > maxBucketBits {
		return // not a pooled power-of-two buffer — let GC have it
	}
	m.Stride = 0
	m.Data = m.Data[:c]
	w.free[b] = append(w.free[b], m)
}

// GetI8 checks out a rows×cols int8 matrix from the workspace's int8 buckets
// (the quantized GEMM's per-call activation scratch). Contents are
// unspecified. A nil workspace degrades to a plain allocation.
func (w *Workspace) GetI8(rows, cols int) *I8Matrix {
	n := rows * cols
	if w == nil {
		return &I8Matrix{Rows: rows, Cols: cols, Data: make([]int8, n)}
	}
	if n == 0 {
		return &I8Matrix{Rows: rows, Cols: cols}
	}
	b := bucketFor(n)
	if b <= maxBucketBits {
		if fl := w.freeI8[b]; len(fl) > 0 {
			m := fl[len(fl)-1]
			fl[len(fl)-1] = nil
			w.freeI8[b] = fl[:len(fl)-1]
			m.Rows, m.Cols = rows, cols
			m.Data = m.Data[:cap(m.Data)][:n]
			return m
		}
		return &I8Matrix{Rows: rows, Cols: cols, Data: make([]int8, 1<<b)[:n]}
	}
	return &I8Matrix{Rows: rows, Cols: cols, Data: make([]int8, n)}
}

// PutI8 releases an int8 matrix previously returned by GetI8. Same pooling
// rules as Put: only full power-of-two buffers are kept.
func (w *Workspace) PutI8(m *I8Matrix) {
	if w == nil || m == nil {
		return
	}
	c := cap(m.Data)
	if c == 0 {
		return
	}
	b := bits.Len(uint(c)) - 1
	if 1<<b != c || b < minBucketBits || b > maxBucketBits {
		return
	}
	m.Data = m.Data[:c]
	w.freeI8[b] = append(w.freeI8[b], m)
}
