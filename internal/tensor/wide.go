package tensor

import "fmt"

// The wide float32 kernel: the same 2×4 register blocking and cache tiling
// as matmul.go/blocked.go, with the innermost column loops routed through
// the 8-lane helpers of lanes.go (unsafe array-pointer blocks; pure-Go
// fallback under the purego build tag). The per-row accumulation order — k
// quads left to right, then a scalar k tail, with the single-row paths
// skipping zero multipliers on the tail exactly like the scalar kernel — is
// unchanged, so every dst element is bitwise identical to the scalar
// kernel's. mulDispatch routes here by default; SetKernel(KernelScalar) is
// the escape hatch.

// matMulWideSmall is the streaming ikj kernel for small operands, wide form.
func matMulWideSmall(dst, a, b *Matrix) {
	n := a.Rows
	if planWorkers(n, 8) == 1 {
		matMulWideRange(dst, a, b, 0, n)
		return
	}
	parallelRows(n, 8, func(lo, hi int) {
		matMulWideRange(dst, a, b, lo, hi)
	})
}

// matMulWideRange mirrors matMulSmallRange: two dst rows per pass, four
// k-steps fused, single-row fallback for the odd remainder.
func matMulWideRange(dst, a, b *Matrix, lo, hi int) {
	k, p := a.Cols, b.Cols
	sb := b.stride()
	bd := b.Data
	i := lo
	for ; i+2 <= hi; i += 2 {
		ar0, ar1 := a.Row(i), a.Row(i+1)
		d0 := dst.Row(i)[:p]
		d1 := dst.Row(i + 1)[:p]
		for j := range d0 {
			d0[j] = 0
		}
		for j := range d1 {
			d1[j] = 0
		}
		kk := 0
		for ; kk+4 <= k; kk += 4 {
			quadAxpy2(d0, d1,
				bd[kk*sb:kk*sb+p],
				bd[(kk+1)*sb:(kk+1)*sb+p],
				bd[(kk+2)*sb:(kk+2)*sb+p],
				bd[(kk+3)*sb:(kk+3)*sb+p],
				ar0[kk], ar0[kk+1], ar0[kk+2], ar0[kk+3],
				ar1[kk], ar1[kk+1], ar1[kk+2], ar1[kk+3])
		}
		for ; kk < k; kk++ {
			tailAxpy2(d0, d1, bd[kk*sb:kk*sb+p], ar0[kk], ar1[kk])
		}
	}
	if i < hi {
		matMulWideRowRange(dst, a, b, i, hi)
	}
}

// matMulWideRowRange is the one-row-at-a-time form, with the scalar
// kernel's zero-skip on the k tail.
func matMulWideRowRange(dst, a, b *Matrix, lo, hi int) {
	k, p := a.Cols, b.Cols
	sb := b.stride()
	bd := b.Data
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)[:p]
		for j := range drow {
			drow[j] = 0
		}
		kk := 0
		for ; kk+4 <= k; kk += 4 {
			quadAxpy1(drow,
				bd[kk*sb:kk*sb+p],
				bd[(kk+1)*sb:(kk+1)*sb+p],
				bd[(kk+2)*sb:(kk+2)*sb+p],
				bd[(kk+3)*sb:(kk+3)*sb+p],
				arow[kk], arow[kk+1], arow[kk+2], arow[kk+3])
		}
		for ; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			tailAxpy1(drow, bd[kk*sb:kk*sb+p], av)
		}
	}
}

// MatMulWideBlocked computes dst = a × b with the blocked kernel's cache
// tiling and the wide micro-kernel. Exposed for benchmarks and tests;
// mulDispatch routes large products here when the wide kernel is active.
func MatMulWideBlocked(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulWideBlocked inner dims %d != %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulWideBlocked dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	n := a.Rows
	dst.Zero()
	nTiles := (n + blockSize - 1) / blockSize
	if planWorkers(nTiles, 1) == 1 {
		matMulWideBlockedTiles(dst, a, b, 0, nTiles)
		return
	}
	parallelRows(nTiles, 1, func(tLo, tHi int) {
		matMulWideBlockedTiles(dst, a, b, tLo, tHi)
	})
}

func matMulWideBlockedTiles(dst, a, b *Matrix, tLo, tHi int) {
	n, k, p := a.Rows, a.Cols, b.Cols
	sb := b.stride()
	bd := b.Data
	for ti := tLo; ti < tHi; ti++ {
		i0 := ti * blockSize
		i1 := i0 + blockSize
		if i1 > n {
			i1 = n
		}
		for k0 := 0; k0 < k; k0 += blockSize {
			k1 := k0 + blockSize
			if k1 > k {
				k1 = k
			}
			for j0 := 0; j0 < p; j0 += blockSize {
				j1 := j0 + blockSize
				if j1 > p {
					j1 = p
				}
				// Tile boundaries are multiples of four, so per-row
				// accumulation order matches the small kernel's exactly as
				// in the scalar blocked micro-kernel.
				i := i0
				for ; i+2 <= i1; i += 2 {
					ar0, ar1 := a.Row(i), a.Row(i+1)
					d0 := dst.Row(i)[j0:j1]
					d1 := dst.Row(i + 1)[j0:j1]
					kk := k0
					for ; kk+4 <= k1; kk += 4 {
						quadAxpy2(d0, d1,
							bd[kk*sb+j0:kk*sb+j1],
							bd[(kk+1)*sb+j0:(kk+1)*sb+j1],
							bd[(kk+2)*sb+j0:(kk+2)*sb+j1],
							bd[(kk+3)*sb+j0:(kk+3)*sb+j1],
							ar0[kk], ar0[kk+1], ar0[kk+2], ar0[kk+3],
							ar1[kk], ar1[kk+1], ar1[kk+2], ar1[kk+3])
					}
					for ; kk < k1; kk++ {
						tailAxpy2(d0, d1, bd[kk*sb+j0:kk*sb+j1], ar0[kk], ar1[kk])
					}
				}
				for ; i < i1; i++ {
					arow := a.Row(i)
					drow := dst.Row(i)[j0:j1]
					kk := k0
					for ; kk+4 <= k1; kk += 4 {
						quadAxpy1(drow,
							bd[kk*sb+j0:kk*sb+j1],
							bd[(kk+1)*sb+j0:(kk+1)*sb+j1],
							bd[(kk+2)*sb+j0:(kk+2)*sb+j1],
							bd[(kk+3)*sb+j0:(kk+3)*sb+j1],
							arow[kk], arow[kk+1], arow[kk+2], arow[kk+3])
					}
					for ; kk < k1; kk++ {
						av := arow[kk]
						if av == 0 {
							continue
						}
						tailAxpy1(drow, bd[kk*sb+j0:kk*sb+j1], av)
					}
				}
			}
		}
	}
}
