package tensor

import "fmt"

// This file holds the gather/scatter and strided-batch helpers behind the
// fused batch-wide decoder: one decode step gathers every live segment's
// embedding into a single totalLive×d activation matrix, runs the layer
// projections as batch-wide GEMMs, scatters freshly projected key/value rows
// into the ragged per-segment KV caches, and attends each row against its own
// cache. All helpers are allocation-free so the warm fused step never touches
// the heap.

// GatherRowsInto copies src.Row(idx[r]) into dst.Row(r) for every r.
// dst must have len(idx) rows and src's width.
func GatherRowsInto(dst, src *Matrix, idx []int) {
	if dst.Rows != len(idx) || dst.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: gather dst %dx%d, want %dx%d",
			dst.Rows, dst.Cols, len(idx), src.Cols))
	}
	for r, i := range idx {
		copy(dst.Row(r), src.Row(i))
	}
}

// GatherAddRowsInto adds src.Row(idx[r]) into dst.Row(r) for every r — the
// positional-encoding gather of the fused decode step, where each live
// segment sits at its own decode position.
func GatherAddRowsInto(dst, src *Matrix, idx []int) {
	if dst.Rows != len(idx) || dst.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: gather-add dst %dx%d, want %dx%d",
			dst.Rows, dst.Cols, len(idx), src.Cols))
	}
	for r, i := range idx {
		drow, srow := dst.Row(r), src.Row(i)
		for j, v := range srow {
			drow[j] += v
		}
	}
}

// ScatterAppendRows appends src.Row(r) to dsts[idx[r]] for every r — the
// KV-cache scatter of the fused decode step: one batch-wide projection holds
// the new key (or value) row of every live segment, and each row lands in
// its own segment's ragged cache. With pre-reserved cache capacity no append
// allocates.
func ScatterAppendRows(dsts []*Matrix, src *Matrix, idx []int) {
	if src.Rows != len(idx) {
		panic(fmt.Sprintf("tensor: scatter-append %d rows for %d indices", src.Rows, len(idx)))
	}
	for r, i := range idx {
		dsts[i].AppendRow(src.Row(r))
	}
}

// AttendCachedRows is the strided-batch form of AttendCachedRow: query row r
// of q attends over keys[idx[r]]/vals[idx[r]] into row r of dst. Each row's
// cache has its own length (ragged across segments), which is why this stays
// a per-row kernel instead of one rectangular GEMM — but rows are
// independent, so they shard across the worker pool like any row-parallel
// kernel. scores must hold at least q.Rows rows and the longest cache's
// columns; each worker row uses its own scores row, so the parallel path
// writes without overlap.
func AttendCachedRows(dst, q *Matrix, keys, vals []*Matrix, idx []int, heads, dh int, scale float32, scores *Matrix) {
	n := q.Rows
	if dst.Rows != n || dst.Cols != q.Cols {
		panic(fmt.Sprintf("tensor: batch cached attend dst %dx%d, want %dx%d",
			dst.Rows, dst.Cols, n, q.Cols))
	}
	if len(idx) != n {
		panic(fmt.Sprintf("tensor: batch cached attend %d indices for %d rows", len(idx), n))
	}
	if q.Cols != heads*dh {
		panic(fmt.Sprintf("tensor: batch cached attend width %d != %d heads × %d", q.Cols, heads, dh))
	}
	if scores.Rows < n {
		panic(fmt.Sprintf("tensor: batch cached attend scores %d rows < %d", scores.Rows, n))
	}
	for _, i := range idx {
		if keys[i].Rows != vals[i].Rows || keys[i].Cols != q.Cols || vals[i].Cols != q.Cols {
			panic(fmt.Sprintf("tensor: batch cached attend cache %d: keys %dx%d vals %dx%d",
				i, keys[i].Rows, keys[i].Cols, vals[i].Rows, vals[i].Cols))
		}
		if scores.Cols < keys[i].Rows {
			panic(fmt.Sprintf("tensor: batch cached attend scores %d cols < cache %d rows",
				scores.Cols, keys[i].Rows))
		}
	}
	if planWorkers(n, 4) == 1 {
		attendCachedRowsRange(dst, q, keys, vals, idx, heads, dh, scale, scores, 0, n)
		return
	}
	parallelRows(n, 4, func(lo, hi int) {
		attendCachedRowsRange(dst, q, keys, vals, idx, heads, dh, scale, scores, lo, hi)
	})
}

func attendCachedRowsRange(dst, q *Matrix, keys, vals []*Matrix, idx []int, heads, dh int, scale float32, scores *Matrix, lo, hi int) {
	for r := lo; r < hi; r++ {
		i := idx[r]
		attendCachedRow(dst.Row(r), q.Row(r), keys[i], vals[i], heads, dh, scale, scores.Row(r))
	}
}
