package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the persistent worker pool behind every row-sharded kernel
// (matmul, attend, blocked, gather, ops). The previous parallelRows forked
// a fresh goroutine set plus a WaitGroup per kernel call; at serving rates
// that is tens of thousands of short-lived goroutines per second, all paying
// scheduler wakeups on the hot path. The pool keeps helpers alive across
// calls: a submitter publishes a chunked job as tickets on a buffered
// channel, helpers spin briefly between jobs before parking on the channel,
// and job records recycle through a sync.Pool, so a warm kernel dispatch
// spawns no goroutine and allocates nothing beyond the caller's closure.
//
// Reserve withholds logical cores from the chunk plan; the serve pipeline
// uses it so its scheduling/cleanup stages keep a core while compute runs.

const (
	// poolSpinRounds is how many scheduler yields a helper burns looking
	// for the next ticket before parking on a blocking receive. Spinning
	// keeps back-to-back kernel launches (a layer's GEMM chain) from
	// paying a futex wake per call.
	poolSpinRounds = 64
	// poolTicketBuf bounds the ticket channel. Submitters never block on
	// it: when the buffer is full they keep the unsent chunks themselves.
	poolTicketBuf = 128
	// poolMaxHelpers caps spawned helpers regardless of GOMAXPROCS.
	poolMaxHelpers = 256
)

// poolJob is one parallel row-range invocation in flight. Chunk c covers
// [c·base + min(c,rem), …) with the first rem chunks one row bigger — the
// exact chunk geometry of the old fork-join version (chunk sizes differ by
// at most one, earlier chunks larger).
type poolJob struct {
	fn        func(lo, hi int)
	chunks    int
	base, rem int
	// cursor hands out unclaimed chunk indices; remaining counts chunks
	// not yet completed; participants counts goroutines (submitter +
	// outstanding tickets) still holding the record.
	cursor       atomic.Int32
	remaining    atomic.Int32
	participants atomic.Int32
	// done carries the single completion signal from whichever goroutine
	// finishes the last chunk to a submitter that ran out of chunks first.
	done chan struct{}
}

// claim executes unclaimed chunks until none remain, reporting whether this
// goroutine completed the job's final chunk.
func (j *poolJob) claim() bool {
	final := false
	for {
		c := int(j.cursor.Add(1)) - 1
		if c >= j.chunks {
			return final
		}
		lo := c*j.base + min(c, j.rem)
		hi := lo + j.base
		if c < j.rem {
			hi++
		}
		j.fn(lo, hi)
		if j.remaining.Add(-1) == 0 {
			final = true
		}
	}
}

// release drops one participant reference and recycles the record once the
// last reference (submitter or stale ticket) is gone — never earlier, so a
// helper draining an already-finished ticket cannot race a reused job.
func (j *poolJob) release(p *Pool) {
	if j.participants.Add(-1) == 0 {
		j.fn = nil // do not retain the caller's closure in the pool
		p.jobs.Put(j)
	}
}

// Pool is a persistent set of parked worker goroutines executing chunked
// row-range jobs. Helpers spawn on demand up to the current worker plan and
// stay parked between jobs. Pool is safe for concurrent use. Closing is
// optional — the package default pool lives for the process — but Close
// must only be called once submitted work has returned.
type Pool struct {
	work chan *poolJob
	jobs sync.Pool

	mu      sync.Mutex
	helpers int
	closed  bool
	wg      sync.WaitGroup
	live    atomic.Int32 // == helpers, readable without mu
}

// NewPool returns an empty pool; helpers spawn lazily on first use.
func NewPool() *Pool {
	p := &Pool{work: make(chan *poolJob, poolTicketBuf)}
	p.jobs.New = func() any { return &poolJob{done: make(chan struct{}, 1)} }
	return p
}

// Run executes fn over [0, rows) split into planWorkers(rows,
// minRowsPerWorker) chunks, the calling goroutine working down the chunk
// list alongside up to chunks−1 pool helpers. It returns when every chunk
// has completed. Single-chunk plans run inline with no synchronization.
func (p *Pool) Run(rows, minRowsPerWorker int, fn func(lo, hi int)) {
	w := planWorkers(rows, minRowsPerWorker)
	if w <= 1 {
		fn(0, rows) // empty ranges included: callers may rely on one call
		return
	}
	p.ensure(w - 1)
	if p.live.Load() == 0 {
		// Closed pool (or spawn refused): degrade to inline execution.
		fn(0, rows)
		return
	}
	j := p.jobs.Get().(*poolJob)
	j.fn = fn
	j.chunks = w
	j.base, j.rem = rows/w, rows%w
	j.cursor.Store(0)
	j.remaining.Store(int32(w))
	// Count the submitter plus every intended ticket before publishing:
	// the count must never touch zero while the job is live.
	j.participants.Store(int32(w))
	sent := 0
send:
	for i := 0; i < w-1; i++ {
		select {
		case p.work <- j:
			sent++
		default:
			break send // helpers saturated; keep the rest of the chunks
		}
	}
	if unsent := (w - 1) - sent; unsent > 0 {
		j.participants.Add(int32(-unsent))
	}
	if !j.claim() {
		<-j.done // a helper still owns the final chunk
	}
	j.release(p)
}

// ensure spawns helpers until at least want are live (capped at
// poolMaxHelpers); the count only grows, tracking GOMAXPROCS increases.
func (p *Pool) ensure(want int) {
	if want > poolMaxHelpers {
		want = poolMaxHelpers
	}
	if int(p.live.Load()) >= want {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	for p.helpers < want {
		p.helpers++
		p.live.Store(int32(p.helpers))
		p.wg.Add(1)
		go p.helper()
	}
}

// helper is one pool worker: claim chunks from the next ticket, signal the
// submitter when it finished a job's last chunk, park again. A nil ticket
// is poison (Close).
func (p *Pool) helper() {
	defer p.wg.Done()
	for {
		j, ok := p.next()
		if !ok {
			return
		}
		if j.claim() {
			j.done <- struct{}{}
		}
		j.release(p)
	}
}

// next spins briefly for a ticket, then parks on the channel.
func (p *Pool) next() (*poolJob, bool) {
	for i := 0; i < poolSpinRounds; i++ {
		select {
		case j := <-p.work:
			return j, j != nil
		default:
		}
		runtime.Gosched()
	}
	j := <-p.work
	return j, j != nil
}

// Close makes every helper exit and waits for them. Jobs submitted after
// Close run entirely on the calling goroutine. Safe to call twice.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	n := p.helpers
	p.helpers = 0
	p.live.Store(0)
	p.mu.Unlock()
	for i := 0; i < n; i++ {
		p.work <- nil
	}
	p.wg.Wait()
}

// defaultPool serves every package-level kernel dispatch for the life of
// the process; its helpers park between batches rather than exiting.
var defaultPool = NewPool()

// DefaultPool returns the pool shared by all package-level kernels; the
// engine owns its lifetime by reference (it is never closed in-process).
func DefaultPool() *Pool { return defaultPool }

// reservedCores is how many logical cores the chunk plan leaves free for
// non-compute work (the serve pipeline's scheduling/cleanup stages).
var reservedCores atomic.Int32

// Reserve withholds k logical cores from every subsequent kernel worker
// plan and returns an idempotent release. Reservations stack; the plan
// never drops below one worker, so compute always makes progress.
func Reserve(k int) (release func()) {
	if k < 0 {
		k = 0
	}
	kk := int32(k)
	reservedCores.Add(kk)
	var once sync.Once
	return func() { once.Do(func() { reservedCores.Add(-kk) }) }
}

// maxWorkers bounds the parallel fan-out of row-sharded kernels: the live
// GOMAXPROCS minus reserved cores, floored at one.
func maxWorkers() int {
	n := runtime.GOMAXPROCS(0) - int(reservedCores.Load())
	if n < 1 {
		n = 1
	}
	return n
}

// planWorkers returns the number of chunks parallelRows will use for a job
// of rows rows: never more than maxWorkers, and never so many that a chunk
// would own fewer than minRowsPerWorker rows. A result of 1 means the job
// runs inline on the calling goroutine, with no synchronization and no
// closure allocation — kernels consult it to keep small jobs allocation-free.
func planWorkers(rows, minRowsPerWorker int) int {
	if minRowsPerWorker < 1 {
		minRowsPerWorker = 1
	}
	w := maxWorkers()
	if byRows := rows / minRowsPerWorker; byRows < w {
		w = byRows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelRows runs fn over row ranges [lo, hi) sharded across the default
// pool. Small jobs run inline. The row range is split into exactly
// planWorkers(rows, minRowsPerWorker) chunks whose sizes differ by at most
// one, so every chunk holds at least minRowsPerWorker rows and no more than
// chunks−1 pool helpers join the caller.
func parallelRows(rows int, minRowsPerWorker int, fn func(lo, hi int)) {
	defaultPool.Run(rows, minRowsPerWorker, fn)
}
