package tensor

import "testing"

func TestGatherRowsInto(t *testing.T) {
	table := randMatrix(6, 4, 1)
	idx := []int{3, 0, 3, 5}
	dst := New(len(idx), 4)
	GatherRowsInto(dst, table, idx)
	for r, i := range idx {
		for j := 0; j < 4; j++ {
			if dst.At(r, j) != table.At(i, j) {
				t.Fatalf("dst[%d][%d] = %g, want table[%d][%d] = %g",
					r, j, dst.At(r, j), i, j, table.At(i, j))
			}
		}
	}
	mustPanic(t, "shape mismatch", func() { GatherRowsInto(New(2, 4), table, idx) })
}

func TestGatherAddRowsInto(t *testing.T) {
	table := randMatrix(5, 3, 2)
	idx := []int{4, 4, 1}
	dst := randMatrix(3, 3, 3)
	want := New(3, 3)
	for r, i := range idx {
		for j := 0; j < 3; j++ {
			want.Set(r, j, dst.At(r, j)+table.At(i, j))
		}
	}
	GatherAddRowsInto(dst, table, idx)
	if !dst.AllClose(want, 0) {
		t.Fatal("gather-add mismatch")
	}
	mustPanic(t, "shape mismatch", func() { GatherAddRowsInto(New(3, 2), table, idx) })
}

func TestScatterAppendRows(t *testing.T) {
	stepRows := randMatrix(3, 2, 4)
	caches := []*Matrix{
		{Cols: 2, Data: make([]float32, 0, 8)},
		{Cols: 2, Data: make([]float32, 0, 8)},
		{Cols: 2, Data: make([]float32, 0, 8)},
	}
	// Rows 0 and 2 of the step land in caches 2 and 0; cache 1 stays empty.
	ScatterAppendRows([]*Matrix{caches[2], caches[0]}, stepRows.Slice(0, 2), []int{0, 1})
	if caches[2].Rows != 1 || caches[0].Rows != 1 || caches[1].Rows != 0 {
		t.Fatalf("cache rows = %d/%d/%d", caches[0].Rows, caches[1].Rows, caches[2].Rows)
	}
	for j := 0; j < 2; j++ {
		if caches[2].At(0, j) != stepRows.At(0, j) || caches[0].At(0, j) != stepRows.At(1, j) {
			t.Fatal("scattered rows landed wrong")
		}
	}
	mustPanic(t, "count mismatch", func() { ScatterAppendRows(caches, stepRows, []int{0}) })
}

// AttendCachedRows must match per-row AttendCachedRow exactly (it delegates
// to the same kernel), including when each row's cache has a different
// length.
func TestAttendCachedRowsMatchesPerRow(t *testing.T) {
	const heads, dh = 2, 4
	d := heads * dh
	q := randMatrix(3, d, 5)
	keys := []*Matrix{randMatrix(5, d, 6), randMatrix(2, d, 7), randMatrix(7, d, 8)}
	vals := []*Matrix{randMatrix(5, d, 9), randMatrix(2, d, 10), randMatrix(7, d, 11)}
	idx := []int{2, 0, 1} // ragged: row 0 attends the 7-row cache, …
	scale := float32(0.5)
	got := New(3, d)
	scores := New(3, 7)
	AttendCachedRows(got, q, keys, vals, idx, heads, dh, scale, scores)
	want := New(3, d)
	scratch := make([]float32, 7)
	for r, i := range idx {
		AttendCachedRow(want.Row(r), q.Row(r), keys[i], vals[i], heads, dh, scale, scratch)
	}
	if !got.AllClose(want, 0) {
		t.Fatal("batched cached attention diverges from per-row kernel")
	}
	mustPanic(t, "scores too narrow", func() {
		AttendCachedRows(got, q, keys, vals, idx, heads, dh, scale, New(3, 3))
	})
	mustPanic(t, "index count mismatch", func() {
		AttendCachedRows(got, q, keys, vals, []int{0}, heads, dh, scale, scores)
	})
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s must panic", what)
		}
	}()
	f()
}
