package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
}

func TestFromSliceAliases(t *testing.T) {
	data := []float32{1, 2, 3, 4}
	m := FromSlice(2, 2, data)
	m.Set(0, 1, 9)
	if data[1] != 9 {
		t.Fatal("FromSlice should alias the provided slice")
	}
}

func TestFromSliceBadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched length")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestCloneIsDeep(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestRowAliases(t *testing.T) {
	m := New(3, 2)
	r := m.Row(1)
	r[0] = 42
	if m.At(1, 0) != 42 {
		t.Fatal("Row must alias matrix storage")
	}
}

func TestSliceVsView(t *testing.T) {
	m := New(4, 2)
	for i := range m.Data {
		m.Data[i] = float32(i)
	}
	s := m.Slice(1, 3)
	v := m.View(1, 3)
	if s.Rows != 2 || v.Rows != 2 {
		t.Fatalf("rows = %d/%d, want 2/2", s.Rows, v.Rows)
	}
	m.Set(1, 0, -1)
	if v.At(0, 0) != -1 {
		t.Fatal("View should observe parent mutation")
	}
	if s.At(0, 0) == -1 {
		t.Fatal("Slice should be an independent copy")
	}
}

func TestIndexOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for _, fn := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
		func() { m.Row(2) },
		func() { m.Slice(1, 3) },
		func() { m.View(-1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on out-of-range access")
				}
			}()
			fn()
		}()
	}
}

func TestEqualAndAllClose(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{1, 2, 3.000003})
	if a.Equal(b) {
		t.Fatal("Equal should be exact")
	}
	if !a.AllClose(b, 1e-5) {
		t.Fatal("AllClose should accept tiny differences")
	}
	c := FromSlice(3, 1, []float32{1, 2, 3})
	if a.Equal(c) || a.AllClose(c, 1) {
		t.Fatal("shape mismatch must compare unequal")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{1, 0, 3})
	if d := a.MaxAbsDiff(b); d != 2 {
		t.Fatalf("MaxAbsDiff = %v, want 2", d)
	}
}

func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float32
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

func randMatrix(rows, cols int, seed uint64) *Matrix {
	m := New(rows, cols)
	state := seed
	for i := range m.Data {
		state = state*6364136223846793005 + 1442695040888963407
		m.Data[i] = float32(int64(state>>33))/float32(1<<30) - 1
	}
	return m
}

func TestMatMulMatchesNaive(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {33, 17, 21}, {64, 64, 64}} {
		a := randMatrix(dims[0], dims[1], 1)
		b := randMatrix(dims[1], dims[2], 2)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !got.AllClose(want, 1e-4) {
			t.Fatalf("MatMul %v mismatch: max diff %g", dims, got.MaxAbsDiff(want))
		}
	}
}

func TestMatMulTMatchesTranspose(t *testing.T) {
	for _, dims := range [][3]int{{2, 3, 4}, {9, 6, 5}, {31, 8, 31}} {
		a := randMatrix(dims[0], dims[1], 3)
		b := randMatrix(dims[2], dims[1], 4)
		got := MatMulT(a, b)
		want := MatMul(a, Transpose(b))
		if !got.AllClose(want, 1e-4) {
			t.Fatalf("MatMulT %v mismatch: max diff %g", dims, got.MaxAbsDiff(want))
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	a, b := New(2, 3), New(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner dim mismatch")
		}
	}()
	MatMul(a, b)
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	tr := Transpose(m)
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d, want 3x2", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", tr)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(rows, cols uint8) bool {
		r, c := int(rows%10)+1, int(cols%10)+1
		m := randMatrix(r, c, uint64(rows)*31+uint64(cols))
		return Transpose(Transpose(m)).Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddAndAddInPlace(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{10, 20, 30})
	sum := Add(a, b)
	if sum.At(0, 2) != 33 {
		t.Fatalf("Add result wrong: %v", sum)
	}
	if a.At(0, 0) != 1 {
		t.Fatal("Add must not mutate its operands")
	}
	AddInPlace(a, b)
	if a.At(0, 1) != 22 {
		t.Fatalf("AddInPlace result wrong: %v", a)
	}
}

func TestAddRowVector(t *testing.T) {
	m := New(2, 3)
	AddRowVector(m, []float32{1, 2, 3})
	if m.At(0, 2) != 3 || m.At(1, 0) != 1 {
		t.Fatalf("AddRowVector wrong: %v", m)
	}
}

func TestScale(t *testing.T) {
	m := FromSlice(1, 2, []float32{2, -4})
	Scale(m, 0.5)
	if m.At(0, 0) != 1 || m.At(0, 1) != -2 {
		t.Fatalf("Scale wrong: %v", m)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	m := randMatrix(5, 9, 7)
	SoftmaxRows(m)
	for i := 0; i < m.Rows; i++ {
		var sum float64
		for _, v := range m.Row(i) {
			if v < 0 {
				t.Fatalf("softmax produced negative value %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v, want 1", i, sum)
		}
	}
}

func TestSoftmaxMaskedEntriesVanish(t *testing.T) {
	m := FromSlice(1, 3, []float32{0, NegInf, 0})
	SoftmaxRows(m)
	if m.At(0, 1) != 0 {
		t.Fatalf("masked entry = %v, want 0", m.At(0, 1))
	}
	if math.Abs(float64(m.At(0, 0))-0.5) > 1e-6 {
		t.Fatalf("unmasked entries should split mass: %v", m)
	}
}

func TestSoftmaxFullyMaskedRowIsZero(t *testing.T) {
	m := FromSlice(1, 3, []float32{NegInf, NegInf, NegInf})
	SoftmaxRows(m)
	for j := 0; j < 3; j++ {
		if v := m.At(0, j); v != 0 || math.IsNaN(float64(v)) {
			t.Fatalf("fully masked row produced %v, want 0", v)
		}
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	a := randMatrix(3, 6, 11)
	b := a.Clone()
	for i := range b.Data {
		b.Data[i] += 100 // softmax(x) == softmax(x + c)
	}
	SoftmaxRows(a)
	SoftmaxRows(b)
	if !a.AllClose(b, 1e-4) {
		t.Fatalf("softmax not shift invariant: diff %g", a.MaxAbsDiff(b))
	}
}

func TestLayerNormRows(t *testing.T) {
	m := randMatrix(4, 16, 13)
	gain := make([]float32, 16)
	bias := make([]float32, 16)
	for i := range gain {
		gain[i] = 1
	}
	LayerNormRows(m, gain, bias, 1e-5)
	for i := 0; i < m.Rows; i++ {
		var mean, sq float64
		for _, v := range m.Row(i) {
			mean += float64(v)
		}
		mean /= 16
		for _, v := range m.Row(i) {
			d := float64(v) - mean
			sq += d * d
		}
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("row %d mean %v, want ~0", i, mean)
		}
		if math.Abs(sq/16-1) > 1e-2 {
			t.Fatalf("row %d variance %v, want ~1", i, sq/16)
		}
	}
}

func TestLayerNormGainBias(t *testing.T) {
	m := randMatrix(2, 4, 17)
	gain := []float32{2, 2, 2, 2}
	bias := []float32{1, 1, 1, 1}
	LayerNormRows(m, gain, bias, 1e-5)
	for i := 0; i < m.Rows; i++ {
		var mean float64
		for _, v := range m.Row(i) {
			mean += float64(v)
		}
		mean /= 4
		if math.Abs(mean-1) > 1e-4 {
			t.Fatalf("row %d mean %v, want 1 (bias)", i, mean)
		}
	}
}

func TestReLU(t *testing.T) {
	m := FromSlice(1, 4, []float32{-1, 0, 2, -0.5})
	ReLU(m)
	want := []float32{0, 0, 2, 0}
	for i, v := range want {
		if m.Data[i] != v {
			t.Fatalf("ReLU[%d] = %v, want %v", i, m.Data[i], v)
		}
	}
}

func TestGELUProperties(t *testing.T) {
	m := FromSlice(1, 3, []float32{-10, 0, 10})
	GELU(m)
	if math.Abs(float64(m.At(0, 0))) > 1e-3 {
		t.Fatalf("GELU(-10) = %v, want ~0", m.At(0, 0))
	}
	if m.At(0, 1) != 0 {
		t.Fatalf("GELU(0) = %v, want 0", m.At(0, 1))
	}
	if math.Abs(float64(m.At(0, 2))-10) > 1e-3 {
		t.Fatalf("GELU(10) = %v, want ~10", m.At(0, 2))
	}
}

func TestArgmaxRows(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 5, 2, -1, -3, -2})
	got := ArgmaxRows(m)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgmaxRows = %v, want [1 0]", got)
	}
}

func TestSumAbs(t *testing.T) {
	m := FromSlice(1, 3, []float32{-1, 2, -3})
	if s := SumAbs(m); s != 6 {
		t.Fatalf("SumAbs = %v, want 6", s)
	}
}

// Property: (A·B)·C == A·(B·C) within float tolerance.
func TestMatMulAssociativity(t *testing.T) {
	a := randMatrix(6, 5, 21)
	b := randMatrix(5, 7, 22)
	c := randMatrix(7, 4, 23)
	left := MatMul(MatMul(a, b), c)
	right := MatMul(a, MatMul(b, c))
	if !left.AllClose(right, 1e-3) {
		t.Fatalf("associativity violated: diff %g", left.MaxAbsDiff(right))
	}
}

// Property: matmul distributes over addition.
func TestMatMulDistributivity(t *testing.T) {
	f := func(seed uint16) bool {
		a := randMatrix(4, 3, uint64(seed)+1)
		b := randMatrix(3, 5, uint64(seed)+2)
		c := randMatrix(3, 5, uint64(seed)+3)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		return left.AllClose(right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	x := randMatrix(128, 128, 1)
	y := randMatrix(128, 128, 2)
	dst := New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

func BenchmarkSoftmax1024x1024(b *testing.B) {
	m := randMatrix(1024, 1024, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftmaxRows(m)
	}
}

func TestBlockedMatchesSmallKernel(t *testing.T) {
	for _, dims := range [][3]int{
		{1, 1, 1}, {63, 65, 64}, {64, 64, 64}, {100, 70, 130},
		{129, 64, 65}, {200, 150, 90},
	} {
		a := randMatrix(dims[0], dims[1], uint64(dims[0]))
		b := randMatrix(dims[1], dims[2], uint64(dims[2]))
		want := New(dims[0], dims[2])
		matMulSmall(want, a, b)
		got := New(dims[0], dims[2])
		MatMulBlocked(got, a, b)
		if !got.AllClose(want, 1e-4) {
			t.Fatalf("blocked %v mismatch: max diff %g", dims, got.MaxAbsDiff(want))
		}
	}
}

func TestBlockedOverwritesDst(t *testing.T) {
	a := randMatrix(70, 70, 1)
	b := randMatrix(70, 70, 2)
	dst := New(70, 70)
	dst.Fill(999) // stale contents must not leak into the product
	MatMulBlocked(dst, a, b)
	want := New(70, 70)
	matMulSmall(want, a, b)
	if !dst.AllClose(want, 1e-4) {
		t.Fatalf("blocked kernel must zero dst first: diff %g", dst.MaxAbsDiff(want))
	}
}

func TestBlockedShapePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { MatMulBlocked(New(2, 2), New(2, 3), New(4, 2)) },
		func() { MatMulBlocked(New(3, 3), New(2, 3), New(3, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDispatchCrossesThreshold(t *testing.T) {
	// A product right at the dispatch boundary must be correct either way.
	a := randMatrix(130, 130, 5)
	b := randMatrix(130, 130, 6)
	got := MatMul(a, b) // dispatches to blocked (130³ > threshold)
	want := New(130, 130)
	matMulSmall(want, a, b)
	if !got.AllClose(want, 1e-4) {
		t.Fatalf("dispatch mismatch: %g", got.MaxAbsDiff(want))
	}
}

func BenchmarkMatMulSmallKernel256(b *testing.B) {
	x := randMatrix(256, 256, 1)
	y := randMatrix(256, 256, 2)
	dst := New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matMulSmall(dst, x, y)
	}
}

func BenchmarkMatMulBlocked256(b *testing.B) {
	x := randMatrix(256, 256, 1)
	y := randMatrix(256, 256, 2)
	dst := New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulBlocked(dst, x, y)
	}
}

func TestCopyFromAndFill(t *testing.T) {
	a := FromSlice(2, 2, []float32{1, 2, 3, 4})
	b := New(2, 2)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatal("CopyFrom lost data")
	}
	b.Fill(7)
	if b.At(1, 1) != 7 {
		t.Fatal("Fill failed")
	}
	b.Zero()
	if b.At(0, 0) != 0 {
		t.Fatal("Zero failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom shape mismatch should panic")
		}
	}()
	b.CopyFrom(New(3, 3))
}

func TestStringRendering(t *testing.T) {
	small := FromSlice(1, 2, []float32{1.5, -2})
	s := small.String()
	if s == "" || s[:6] != "Matrix" {
		t.Fatalf("String = %q", s)
	}
	big := New(100, 100)
	if bs := big.String(); bs != "Matrix(100x100)" {
		t.Fatalf("large String = %q", bs)
	}
}

func TestMaxAbsDiffShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch should panic")
		}
	}()
	New(1, 2).MaxAbsDiff(New(2, 1))
}

func TestLayerNormBadLengthsPanics(t *testing.T) {
	m := New(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("short gain should panic")
		}
	}()
	LayerNormRows(m, make([]float32, 2), make([]float32, 4), 1e-5)
}

func TestAddShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch should panic")
		}
	}()
	AddInPlace(New(1, 2), New(2, 1))
}

func TestAddRowVectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	AddRowVector(New(1, 3), []float32{1})
}
