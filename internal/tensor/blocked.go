package tensor

import "fmt"

// blockSize is the tile edge for the blocked kernel: 64×64 float32 tiles
// (16 KiB per operand tile) fit comfortably in L1/L2 alongside the
// accumulator tile.
const blockSize = 64

// matMulThreshold is the operand size (in total multiply-adds) above which
// MatMulInto switches to the blocked kernel. Below it, the streaming ikj
// kernel's lower bookkeeping wins.
const matMulThreshold = 1 << 21 // ~2M MACs ≈ 128³

// MatMulBlocked computes dst = a × b with cache-blocked tiling. Exposed for
// benchmarks and tests; MatMulInto dispatches to it automatically for large
// operands.
func MatMulBlocked(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulBlocked inner dims %d != %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulBlocked dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	n := a.Rows
	dst.Zero()
	// Parallelize over row-tiles; each worker owns disjoint dst rows.
	nTiles := (n + blockSize - 1) / blockSize
	if planWorkers(nTiles, 1) == 1 {
		matMulBlockedTiles(dst, a, b, 0, nTiles)
		return
	}
	parallelRows(nTiles, 1, func(tLo, tHi int) {
		matMulBlockedTiles(dst, a, b, tLo, tHi)
	})
}

func matMulBlockedTiles(dst, a, b *Matrix, tLo, tHi int) {
	n, k, p := a.Rows, a.Cols, b.Cols
	for ti := tLo; ti < tHi; ti++ {
		i0 := ti * blockSize
		i1 := i0 + blockSize
		if i1 > n {
			i1 = n
		}
		for k0 := 0; k0 < k; k0 += blockSize {
			k1 := k0 + blockSize
			if k1 > k {
				k1 = k
			}
			for j0 := 0; j0 < p; j0 += blockSize {
				j1 := j0 + blockSize
				if j1 > p {
					j1 = p
				}
				// Micro-kernel on the (i, k) × (k, j) tile pair: two dst
				// rows per pass with four k-steps fused, exactly
				// matMulSmallRange's register blocking. Tile boundaries are
				// multiples of four, so each row's accumulation order (k
				// quads, then a scalar tail) matches the small kernel's and
				// results per row are bitwise kernel-independent.
				sb := b.stride()
				bd := b.Data
				i := i0
				for ; i+2 <= i1; i += 2 {
					ar0, ar1 := a.Row(i), a.Row(i+1)
					d0 := dst.Row(i)[j0:j1]
					d1 := dst.Row(i + 1)[j0:j1]
					kk := k0
					for ; kk+4 <= k1; kk += 4 {
						a00, a01, a02, a03 := ar0[kk], ar0[kk+1], ar0[kk+2], ar0[kk+3]
						a10, a11, a12, a13 := ar1[kk], ar1[kk+1], ar1[kk+2], ar1[kk+3]
						b0 := bd[kk*sb+j0 : kk*sb+j1]
						b1 := bd[(kk+1)*sb+j0 : (kk+1)*sb+j1]
						b2 := bd[(kk+2)*sb+j0 : (kk+2)*sb+j1]
						b3 := bd[(kk+3)*sb+j0 : (kk+3)*sb+j1]
						for j := range d0 {
							v0, v1, v2, v3 := b0[j], b1[j], b2[j], b3[j]
							d0[j] += a00*v0 + a01*v1 + a02*v2 + a03*v3
							d1[j] += a10*v0 + a11*v1 + a12*v2 + a13*v3
						}
					}
					for ; kk < k1; kk++ {
						av0, av1 := ar0[kk], ar1[kk]
						brow := bd[kk*sb+j0 : kk*sb+j1]
						for j := range d0 {
							d0[j] += av0 * brow[j]
							d1[j] += av1 * brow[j]
						}
					}
				}
				for ; i < i1; i++ {
					arow := a.Row(i)
					drow := dst.Row(i)[j0:j1]
					kk := k0
					for ; kk+4 <= k1; kk += 4 {
						a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
						b0 := bd[kk*sb+j0 : kk*sb+j1]
						b1 := bd[(kk+1)*sb+j0 : (kk+1)*sb+j1]
						b2 := bd[(kk+2)*sb+j0 : (kk+2)*sb+j1]
						b3 := bd[(kk+3)*sb+j0 : (kk+3)*sb+j1]
						for j := range drow {
							drow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
						}
					}
					for ; kk < k1; kk++ {
						av := arow[kk]
						if av == 0 {
							continue
						}
						brow := bd[kk*sb+j0 : kk*sb+j1]
						for j := range drow {
							drow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
}

// MatMulTBlocked computes dst = a × bᵀ with cache-blocked tiling over the
// query rows, key rows and the shared inner dimension. Q·Kᵀ — the largest
// matmul in attention — lands here via MatMulTInto's size dispatch; at
// attention shapes (long rows, modest inner dim) the j/k tiling keeps the
// active slices of b resident in L1/L2 across an entire i-tile.
func MatMulTBlocked(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTBlocked inner dims %d != %d", a.Cols, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTBlocked dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	n := a.Rows
	dst.Zero()
	nTiles := (n + blockSize - 1) / blockSize
	if planWorkers(nTiles, 1) == 1 {
		matMulTBlockedTiles(dst, a, b, 0, nTiles)
		return
	}
	parallelRows(nTiles, 1, func(tLo, tHi int) {
		matMulTBlockedTiles(dst, a, b, tLo, tHi)
	})
}

func matMulTBlockedTiles(dst, a, b *Matrix, tLo, tHi int) {
	n, k, p := a.Rows, a.Cols, b.Rows
	for ti := tLo; ti < tHi; ti++ {
		i0 := ti * blockSize
		i1 := i0 + blockSize
		if i1 > n {
			i1 = n
		}
		for k0 := 0; k0 < k; k0 += blockSize {
			k1 := k0 + blockSize
			if k1 > k {
				k1 = k
			}
			for j0 := 0; j0 < p; j0 += blockSize {
				j1 := j0 + blockSize
				if j1 > p {
					j1 = p
				}
				// dst[i][j] += a[i][k0:k1] · b[j][k0:k1] on the tile pair.
				for i := i0; i < i1; i++ {
					arow := a.Row(i)[k0:k1]
					drow := dst.Row(i)
					for j := j0; j < j1; j++ {
						drow[j] += dotUnrolled(arow, b.Row(j)[k0:k1])
					}
				}
			}
		}
	}
}
