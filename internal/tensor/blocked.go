package tensor

import "fmt"

// blockSize is the tile edge for the blocked kernel: 64×64 float32 tiles
// (16 KiB per operand tile) fit comfortably in L1/L2 alongside the
// accumulator tile.
const blockSize = 64

// matMulThreshold is the operand size (in total multiply-adds) above which
// MatMulInto switches to the blocked kernel. Below it, the streaming ikj
// kernel's lower bookkeeping wins.
const matMulThreshold = 1 << 21 // ~2M MACs ≈ 128³

// MatMulBlocked computes dst = a × b with cache-blocked tiling. Exposed for
// benchmarks and tests; MatMulInto dispatches to it automatically for large
// operands.
func MatMulBlocked(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulBlocked inner dims %d != %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulBlocked dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	n, k, p := a.Rows, a.Cols, b.Cols
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	// Parallelize over row-tiles; each worker owns disjoint dst rows.
	nTiles := (n + blockSize - 1) / blockSize
	parallelRows(nTiles, 1, func(tLo, tHi int) {
		for ti := tLo; ti < tHi; ti++ {
			i0 := ti * blockSize
			i1 := i0 + blockSize
			if i1 > n {
				i1 = n
			}
			for k0 := 0; k0 < k; k0 += blockSize {
				k1 := k0 + blockSize
				if k1 > k {
					k1 = k
				}
				for j0 := 0; j0 < p; j0 += blockSize {
					j1 := j0 + blockSize
					if j1 > p {
						j1 = p
					}
					// Micro-kernel on the (i, k) × (k, j) tile pair.
					for i := i0; i < i1; i++ {
						arow := a.Data[i*k : (i+1)*k]
						drow := dst.Data[i*p : (i+1)*p]
						for kk := k0; kk < k1; kk++ {
							av := arow[kk]
							if av == 0 {
								continue
							}
							brow := b.Data[kk*p : (kk+1)*p]
							for j := j0; j < j1; j++ {
								drow[j] += av * brow[j]
							}
						}
					}
				}
			}
		}
	})
}

// mulDispatch picks the kernel by problem size.
func mulDispatch(dst, a, b *Matrix) {
	if a.Rows*a.Cols*b.Cols >= matMulThreshold {
		MatMulBlocked(dst, a, b)
		return
	}
	matMulSmall(dst, a, b)
}
