package tensor

import (
	"fmt"
	"sync/atomic"
)

// Kernel selects which float32 GEMM micro-kernel mulDispatch routes MatMul
// through. Both kernels share the pinned per-row accumulation-order contract
// (k-quads then a scalar tail, independent of GEMM height, worker chunking
// and row pairing), so switching kernels never changes a single output bit —
// the wide kernel is the default and the scalar kernel remains as the
// reference and A/B escape hatch.
type Kernel int32

const (
	// KernelWide is the 8-lane j-blocked form of the 2×4 register-blocked
	// kernel: the innermost column loop runs over fixed-size 8-float lanes
	// (unsafe array-pointer blocks on the default build, plain slices under
	// the purego build tag), eliminating per-element bounds checks while
	// keeping each element's k-accumulation order bitwise identical to the
	// scalar kernel's.
	KernelWide Kernel = iota
	// KernelScalar is the PR 2 reference: 2×4 register blocking with plain
	// slice indexing.
	KernelScalar
)

func (k Kernel) String() string {
	switch k {
	case KernelWide:
		return "wide"
	case KernelScalar:
		return "scalar"
	default:
		return fmt.Sprintf("Kernel(%d)", int32(k))
	}
}

// ParseKernel converts a -kernel flag value to a Kernel. "int8" selects the
// wide float32 kernel — the int8 path is a property of quantized weights,
// not of the float32 dispatch — so callers handling "int8" should also
// enable weight quantization.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "wide", "int8":
		return KernelWide, nil
	case "scalar":
		return KernelScalar, nil
	default:
		return 0, fmt.Errorf("tensor: unknown kernel %q (want scalar, wide or int8)", s)
	}
}

// activeKernel is the process-wide float32 kernel selection. Reads are a
// single atomic load on the GEMM dispatch path.
var activeKernel atomic.Int32 // KernelWide (zero value) by default

// SetKernel selects the float32 GEMM kernel for every subsequent MatMul
// dispatch, process-wide. Outputs are bitwise identical either way; the
// switch exists for A/B benchmarking and as an escape hatch.
func SetKernel(k Kernel) { activeKernel.Store(int32(k)) }

// ActiveKernel returns the current float32 kernel selection.
func ActiveKernel() Kernel { return Kernel(activeKernel.Load()) }

// Per-path dispatch counters: which GEMM kernel actually served traffic.
// Incremented once per MatMul/MatMulT dispatch (not per tile or worker
// chunk); the serve layer snapshots them into Stats so deployed replicas
// report the paths their FLOPs flowed through.
var (
	scalarCalls atomic.Uint64
	wideCalls   atomic.Uint64
	int8Calls   atomic.Uint64
)

// KernelCounts is a point-in-time snapshot of GEMM dispatches per kernel
// path since process start (or the last ResetKernelCounters).
type KernelCounts struct {
	Scalar uint64 `json:"scalar"` // 2×4 register-blocked float32 dispatches
	Wide   uint64 `json:"wide"`   // 8-lane float32 dispatches
	Int8   uint64 `json:"int8"`   // per-channel quantized int8 GEMMs
}

// KernelCounters returns the process-wide kernel dispatch counters.
func KernelCounters() KernelCounts {
	return KernelCounts{
		Scalar: scalarCalls.Load(),
		Wide:   wideCalls.Load(),
		Int8:   int8Calls.Load(),
	}
}

// ResetKernelCounters zeroes the dispatch counters (tests and benchmarks).
func ResetKernelCounters() {
	scalarCalls.Store(0)
	wideCalls.Store(0)
	int8Calls.Store(0)
}

// mulDispatch picks the float32 kernel by problem size and the process-wide
// kernel selection. Every path computes each dst row with the identical
// per-row accumulation order, so the choice is invisible in the output.
func mulDispatch(dst, a, b *Matrix) {
	if ActiveKernel() == KernelWide {
		wideCalls.Add(1)
		if a.Rows*a.Cols*b.Cols >= matMulThreshold {
			MatMulWideBlocked(dst, a, b)
			return
		}
		matMulWideSmall(dst, a, b)
		return
	}
	scalarCalls.Add(1)
	if a.Rows*a.Cols*b.Cols >= matMulThreshold {
		MatMulBlocked(dst, a, b)
		return
	}
	matMulSmall(dst, a, b)
}
