// Package tensor provides the dense float32 math substrate used by the TCB
// transformer engine: row-major matrices, parallel blocked matrix
// multiplication, softmax, layer normalization and elementwise activations.
//
// The package is deliberately small and allocation-conscious: every routine
// that produces a matrix has an "into" variant so hot loops in the inference
// engine can reuse buffers, and Workspace provides size-bucketed pooled
// buffers for fully allocation-free steady-state inference. Parallel kernels
// shard rows across a bounded worker pool sized by GOMAXPROCS; on a single
// hardware thread every kernel runs inline with no goroutines.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix, optionally strided.
//
// The zero value is an empty 0×0 matrix. Element (i, j) lives at
// Data[i*stride+j] where stride is Stride when non-zero and Cols otherwise.
// A Stride of 0 (the common case) means rows are packed back to back;
// Stride > Cols arises from ColView, which lets attention address per-head
// column blocks of a projection without copying them out.
type Matrix struct {
	Rows, Cols int
	// Stride is the row stride in elements; 0 means Cols (contiguous).
	Stride int
	Data   []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a rows×cols matrix without copying.
// It panics if len(data) != rows*cols.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// stride returns the effective row stride.
func (m *Matrix) stride() int {
	if m.Stride != 0 {
		return m.Stride
	}
	return m.Cols
}

// Contiguous reports whether the matrix rows are packed back to back, i.e.
// Data[:Rows*Cols] holds every element in row-major order.
func (m *Matrix) Contiguous() bool {
	return m.Stride == 0 || m.Stride == m.Cols || m.Rows <= 1
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 {
	m.check(i, j)
	return m.Data[i*m.stride()+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) {
	m.check(i, j)
	m.Data[i*m.stride()+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of range %d", i, m.Rows))
	}
	s := m.stride()
	return m.Data[i*s : i*s+m.Cols]
}

// Clone returns a deep (contiguous) copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	out.CopyFrom(m)
	return out
}

// CopyFrom copies src into m. Shapes must match; strides may differ.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape %dx%d != %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	if m.Contiguous() && src.Contiguous() {
		copy(m.Data[:m.Rows*m.Cols], src.Data[:src.Rows*src.Cols])
		return
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Zero sets every element of m to 0.
func (m *Matrix) Zero() {
	if m.Contiguous() {
		data := m.Data[:m.Rows*m.Cols]
		for i := range data {
			data[i] = 0
		}
		return
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float32) {
	if m.Contiguous() {
		data := m.Data[:m.Rows*m.Cols]
		for i := range data {
			data[i] = v
		}
		return
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = v
		}
	}
}

// Slice returns a view-free copy of rows [r0, r1).
func (m *Matrix) Slice(r0, r1 int) *Matrix {
	if r0 < 0 || r1 > m.Rows || r0 > r1 {
		panic(fmt.Sprintf("tensor: Slice [%d,%d) out of range %d", r0, r1, m.Rows))
	}
	out := New(r1-r0, m.Cols)
	for i := r0; i < r1; i++ {
		copy(out.Row(i-r0), m.Row(i))
	}
	return out
}

// View returns a sub-matrix sharing storage with m covering rows [r0, r1).
// Mutations through the view are visible in m.
func (m *Matrix) View(r0, r1 int) *Matrix {
	if r0 < 0 || r1 > m.Rows || r0 > r1 {
		panic(fmt.Sprintf("tensor: View [%d,%d) out of range %d", r0, r1, m.Rows))
	}
	s := m.stride()
	if r0 == r1 {
		return &Matrix{Rows: 0, Cols: m.Cols, Stride: m.Stride}
	}
	return &Matrix{Rows: r1 - r0, Cols: m.Cols, Stride: m.Stride,
		Data: m.Data[r0*s : (r1-1)*s+m.Cols]}
}

// ColView returns a sub-matrix sharing storage with m covering columns
// [c0, c1) of every row. The view is strided: its rows alias m's rows, so
// mutations through the view are visible in m. This is how attention
// addresses one head's slice of a projection without copying.
func (m *Matrix) ColView(c0, c1 int) *Matrix {
	if c0 < 0 || c1 > m.Cols || c0 > c1 {
		panic(fmt.Sprintf("tensor: ColView [%d,%d) out of range %d", c0, c1, m.Cols))
	}
	s := m.stride()
	out := &Matrix{Rows: m.Rows, Cols: c1 - c0, Stride: s}
	if m.Rows > 0 && c1 > c0 {
		out.Data = m.Data[c0 : (m.Rows-1)*s+c1]
	}
	return out
}

// Resize reshapes m in place to rows×cols, reusing its backing storage.
// The contents become unspecified. It panics if the backing array is too
// small; grow-capable callers should use AppendRow or allocate anew.
func (m *Matrix) Resize(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	if rows*cols > cap(m.Data) {
		panic(fmt.Sprintf("tensor: Resize %dx%d exceeds capacity %d", rows, cols, cap(m.Data)))
	}
	m.Rows, m.Cols, m.Stride = rows, cols, 0
	m.Data = m.Data[:rows*cols]
}

// AppendRow appends one row (len must equal Cols) to a contiguous matrix,
// growing the backing array geometrically when needed. With pre-reserved
// capacity the append performs no allocation — the KV-cache hot path.
func (m *Matrix) AppendRow(row []float32) {
	if len(row) != m.Cols {
		panic(fmt.Sprintf("tensor: AppendRow len %d != cols %d", len(row), m.Cols))
	}
	if !m.Contiguous() {
		panic("tensor: AppendRow on strided view")
	}
	n := m.Rows * m.Cols
	if n+m.Cols > cap(m.Data) {
		grown := make([]float32, n, growCap(n+m.Cols, 2*cap(m.Data)))
		copy(grown, m.Data[:n])
		m.Data = grown
	}
	m.Data = m.Data[:n+m.Cols]
	copy(m.Data[n:], row)
	m.Rows++
	m.Stride = 0
}

func growCap(need, doubled int) int {
	if doubled > need {
		return doubled
	}
	return need
}

// Equal reports whether m and other have the same shape and elements.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		a, b := m.Row(i), other.Row(i)
		for j, v := range a {
			if v != b[j] {
				return false
			}
		}
	}
	return true
}

// AllClose reports whether m and other have the same shape and every pair of
// elements differs by at most tol (absolute) or tol (relative to magnitude).
func (m *Matrix) AllClose(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		ra, rb := m.Row(i), other.Row(i)
		for j, v := range ra {
			a, b := float64(v), float64(rb[j])
			diff := math.Abs(a - b)
			if diff > tol && diff > tol*math.Max(math.Abs(a), math.Abs(b)) {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between m
// and other. Shapes must match.
func (m *Matrix) MaxAbsDiff(other *Matrix) float64 {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var worst float64
	for i := 0; i < m.Rows; i++ {
		ra, rb := m.Row(i), other.Row(i)
		for j, v := range ra {
			d := math.Abs(float64(v) - float64(rb[j]))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// String renders small matrices for debugging; large matrices are summarized.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.3g", m.At(i, j))
		}
	}
	return s + "]"
}
