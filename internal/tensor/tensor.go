// Package tensor provides the dense float32 math substrate used by the TCB
// transformer engine: row-major matrices, parallel blocked matrix
// multiplication, softmax, layer normalization and elementwise activations.
//
// The package is deliberately small and allocation-conscious: every routine
// that produces a matrix has an "into" variant so hot loops in the inference
// engine can reuse buffers. Parallel kernels shard rows across a bounded
// worker pool sized by GOMAXPROCS.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix.
//
// The zero value is an empty 0×0 matrix. Data has length Rows*Cols and
// element (i, j) lives at Data[i*Cols+j].
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a rows×cols matrix without copying.
// It panics if len(data) != rows*cols.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape %dx%d != %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Slice returns a view-free copy of rows [r0, r1).
func (m *Matrix) Slice(r0, r1 int) *Matrix {
	if r0 < 0 || r1 > m.Rows || r0 > r1 {
		panic(fmt.Sprintf("tensor: Slice [%d,%d) out of range %d", r0, r1, m.Rows))
	}
	out := New(r1-r0, m.Cols)
	copy(out.Data, m.Data[r0*m.Cols:r1*m.Cols])
	return out
}

// View returns a sub-matrix sharing storage with m covering rows [r0, r1).
// Mutations through the view are visible in m.
func (m *Matrix) View(r0, r1 int) *Matrix {
	if r0 < 0 || r1 > m.Rows || r0 > r1 {
		panic(fmt.Sprintf("tensor: View [%d,%d) out of range %d", r0, r1, m.Rows))
	}
	return &Matrix{Rows: r1 - r0, Cols: m.Cols, Data: m.Data[r0*m.Cols : r1*m.Cols]}
}

// Equal reports whether m and other have the same shape and elements.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != other.Data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether m and other have the same shape and every pair of
// elements differs by at most tol (absolute) or tol (relative to magnitude).
func (m *Matrix) AllClose(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		a, b := float64(v), float64(other.Data[i])
		diff := math.Abs(a - b)
		if diff > tol && diff > tol*math.Max(math.Abs(a), math.Abs(b)) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between m
// and other. Shapes must match.
func (m *Matrix) MaxAbsDiff(other *Matrix) float64 {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var worst float64
	for i, v := range m.Data {
		d := math.Abs(float64(v) - float64(other.Data[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// String renders small matrices for debugging; large matrices are summarized.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.3g", m.At(i, j))
		}
	}
	return s + "]"
}
