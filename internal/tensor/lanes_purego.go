//go:build purego

package tensor

// Pure-Go fallback for the wide kernel's 8-lane inner-loop helpers: plain
// slice indexing, no unsafe, for platforms or policies where the unsafe
// array-pointer form is unwelcome. The per-element expressions — and
// therefore every dst element's accumulation order — are identical to
// lanes.go, so the two builds produce bitwise-identical results; the purego
// CI job exists so this file can never rot.

// quadAxpy2 performs one k-quad of the 2×4 register-blocked kernel across
// two dst rows; see lanes.go for the contract.
func quadAxpy2(d0, d1, b0, b1, b2, b3 []float32,
	a00, a01, a02, a03, a10, a11, a12, a13 float32) {
	n := len(d0)
	d1 = d1[:n]
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	for j := range d0 {
		v0, v1, v2, v3 := b0[j], b1[j], b2[j], b3[j]
		d0[j] += a00*v0 + a01*v1 + a02*v2 + a03*v3
		d1[j] += a10*v0 + a11*v1 + a12*v2 + a13*v3
	}
}

// quadAxpy1 is the one-row form of quadAxpy2.
func quadAxpy1(d, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	n := len(d)
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	for j := range d {
		d[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

// tailAxpy2 is one scalar-tail k step across two dst rows (no zero-skip).
func tailAxpy2(d0, d1, b []float32, a0, a1 float32) {
	n := len(d0)
	d1 = d1[:n]
	b = b[:n]
	for j := range d0 {
		v := b[j]
		d0[j] += a0 * v
		d1[j] += a1 * v
	}
}

// tailAxpy1 is one scalar-tail k step on a single dst row.
func tailAxpy1(d, b []float32, a float32) {
	b = b[:len(d)]
	for j := range d {
		d[j] += a * b[j]
	}
}
