package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunCoversRange drives a private pool from many goroutines at once
// and checks every row of every job is executed exactly once.
func TestPoolRunCoversRange(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	p := NewPool()
	defer p.Close()
	const goroutines = 8
	const jobs = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < jobs; n++ {
				rows := 1 + (g*jobs+n)%97
				hits := make([]atomic.Int32, rows)
				p.Run(rows, 1, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						hits[i].Add(1)
					}
				})
				for i := range hits {
					if got := hits[i].Load(); got != 1 {
						t.Errorf("goroutine %d job %d: row %d executed %d times", g, n, i, got)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPoolCloseExitsHelpers proves Close leaves no helper goroutine behind,
// and that a closed pool still completes jobs inline.
func TestPoolCloseExitsHelpers(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	before := runtime.NumGoroutine()
	p := NewPool()
	var n atomic.Int32
	p.Run(64, 1, func(lo, hi int) { n.Add(int32(hi - lo)) })
	if n.Load() != 64 {
		t.Fatalf("warm run covered %d rows, want 64", n.Load())
	}
	p.Close()
	p.Close() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("%d goroutines after Close, %d before", got, before)
	}
	n.Store(0)
	p.Run(64, 1, func(lo, hi int) { n.Add(int32(hi - lo)) })
	if n.Load() != 64 {
		t.Fatalf("closed-pool run covered %d rows, want 64", n.Load())
	}
}

// TestPoolWarmRunAllocs checks the job machinery itself recycles: a warm
// parallel dispatch must not allocate per call beyond the caller's closure
// (hoisted here). The fork-join version allocated a WaitGroup header and a
// goroutine per chunk per call.
func TestPoolWarmRunAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	p := NewPool()
	defer p.Close()
	var sink atomic.Int64
	fn := func(lo, hi int) { sink.Add(int64(hi - lo)) }
	for i := 0; i < 100; i++ { // warm helpers and the job pool
		p.Run(256, 1, fn)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const runs = 1000
	for i := 0; i < runs; i++ {
		p.Run(256, 1, fn)
	}
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	// Allow slack for incidental runtime allocations (GC clearing the
	// sync.Pool mid-measurement); the old path allocated ≥ 2 per run.
	if allocs > runs/2 {
		t.Fatalf("%d allocations across %d warm runs", allocs, runs)
	}
	_ = sink.Load()
}

// TestReserveShrinksPlan pins the Reserve contract: reserved cores come out
// of the worker plan, stack, floor at one worker, and release idempotently.
func TestReserveShrinksPlan(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	if got := planWorkers(1000, 1); got != 4 {
		t.Fatalf("baseline planWorkers = %d, want 4", got)
	}
	rel1 := Reserve(1)
	if got := planWorkers(1000, 1); got != 3 {
		t.Fatalf("after Reserve(1): planWorkers = %d, want 3", got)
	}
	rel2 := Reserve(10) // over-reservation floors at one worker
	if got := planWorkers(1000, 1); got != 1 {
		t.Fatalf("after Reserve(10): planWorkers = %d, want 1", got)
	}
	rel2()
	rel2() // idempotent
	if got := planWorkers(1000, 1); got != 3 {
		t.Fatalf("after releasing Reserve(10): planWorkers = %d, want 3", got)
	}
	rel1()
	if got := planWorkers(1000, 1); got != 4 {
		t.Fatalf("after releasing all: planWorkers = %d, want 4", got)
	}
}
