package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b elementwise.
func Add(a, b *Matrix) *Matrix {
	out := a.Clone()
	AddInPlace(out, b)
	return out
}

// AddInPlace computes a += b elementwise.
func AddInPlace(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: Add shape %dx%d != %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j, v := range rb {
			ra[j] += v
		}
	}
}

// AddRowVector adds vec to every row of m in place. len(vec) must equal m.Cols.
func AddRowVector(m *Matrix, vec []float32) {
	if len(vec) != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowVector len %d != cols %d", len(vec), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range vec {
			row[j] += v
		}
	}
}

// Scale multiplies every element of m by s in place.
func Scale(m *Matrix, s float32) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= s
		}
	}
}

// NegInf is the additive mask value that removes an entry from softmax.
// float32(-1e30) is large enough that exp underflows to exactly zero while
// staying finite under further addition.
const NegInf = float32(-1e30)

// SoftmaxRows applies a numerically stable softmax to each row of m in place.
// Rows that are entirely masked (all ≤ NegInf/2) become uniform zero rather
// than NaN so fully masked padding rows stay harmless.
func SoftmaxRows(m *Matrix) {
	if planWorkers(m.Rows, 16) == 1 {
		softmaxRowsRange(m, 0, m.Rows)
		return
	}
	parallelRows(m.Rows, 16, func(lo, hi int) {
		softmaxRowsRange(m, lo, hi)
	})
}

func softmaxRowsRange(m *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		softmaxRow(m.Row(i))
	}
}

// softmaxRow is the shared single-row softmax: stable, and all-zero for
// fully masked rows.
func softmaxRow(row []float32) {
	maxv := float32(math.Inf(-1))
	for _, v := range row {
		if v > maxv {
			maxv = v
		}
	}
	if maxv <= NegInf/2 {
		for j := range row {
			row[j] = 0
		}
		return
	}
	var sum float32
	for j, v := range row {
		if v <= NegInf/2 {
			// Masked entry: exp would underflow to exactly 0 anyway, so
			// skip the call — dense masked rows are mostly this case.
			row[j] = 0
			continue
		}
		e := float32(math.Exp(float64(v - maxv)))
		row[j] = e
		sum += e
	}
	inv := 1 / sum
	for j := range row {
		row[j] *= inv
	}
}

// ScaleMaskSoftmaxRows fuses the attention-score epilogue into one pass per
// row: m = softmax(m·scale + mask), with mask optional (nil means no mask).
// Equivalent to Scale + AddInPlace + SoftmaxRows but without the two extra
// full-matrix memory passes. Fully masked rows become all-zero, matching
// SoftmaxRows.
func ScaleMaskSoftmaxRows(m *Matrix, scale float32, mask *Matrix) {
	if mask != nil && (mask.Rows != m.Rows || mask.Cols != m.Cols) {
		panic(fmt.Sprintf("tensor: mask %dx%d vs scores %dx%d",
			mask.Rows, mask.Cols, m.Rows, m.Cols))
	}
	if planWorkers(m.Rows, 16) == 1 {
		scaleMaskSoftmaxRange(m, scale, mask, 0, m.Rows)
		return
	}
	parallelRows(m.Rows, 16, func(lo, hi int) {
		scaleMaskSoftmaxRange(m, scale, mask, lo, hi)
	})
}

func scaleMaskSoftmaxRange(m *Matrix, scale float32, mask *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := m.Row(i)
		if mask != nil {
			mrow := mask.Row(i)
			for j, v := range row {
				row[j] = v*scale + mrow[j]
			}
		} else if scale != 1 {
			for j := range row {
				row[j] *= scale
			}
		}
		softmaxRow(row)
	}
}

// LayerNormRows normalizes each row of m in place to zero mean and unit
// variance, then applies elementwise gain and bias. len(gain) and len(bias)
// must equal m.Cols. eps stabilizes near-constant rows.
func LayerNormRows(m *Matrix, gain, bias []float32, eps float32) {
	if len(gain) != m.Cols || len(bias) != m.Cols {
		panic(fmt.Sprintf("tensor: LayerNorm gain/bias len %d/%d != cols %d", len(gain), len(bias), m.Cols))
	}
	if planWorkers(m.Rows, 16) == 1 {
		layerNormRange(m, gain, bias, eps, 0, m.Rows)
		return
	}
	parallelRows(m.Rows, 16, func(lo, hi int) {
		layerNormRange(m, gain, bias, eps, lo, hi)
	})
}

func layerNormRange(m *Matrix, gain, bias []float32, eps float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := m.Row(i)
		var mean float32
		for _, v := range row {
			mean += v
		}
		mean /= float32(len(row))
		var variance float32
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float32(len(row))
		inv := 1 / float32(math.Sqrt(float64(variance+eps)))
		for j, v := range row {
			row[j] = (v-mean)*inv*gain[j] + bias[j]
		}
	}
}

// ReLU applies max(0, x) elementwise in place.
func ReLU(m *Matrix) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if v < 0 {
				row[j] = 0
			}
		}
	}
}

// GELU applies the tanh-approximated Gaussian error linear unit in place.
func GELU(m *Matrix) {
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			x := float64(v)
			row[j] = float32(0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x))))
		}
	}
}

// ArgmaxRows returns, for each row, the column index of its maximum element.
func ArgmaxRows(m *Matrix) []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best, bestj := float32(math.Inf(-1)), 0
		for j, v := range row {
			if v > best {
				best, bestj = v, j
			}
		}
		out[i] = bestj
	}
	return out
}

// SumAbs returns the sum of absolute values of all elements (debug/metrics).
func SumAbs(m *Matrix) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			s += math.Abs(float64(v))
		}
	}
	return s
}
