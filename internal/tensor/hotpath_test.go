package tensor

import (
	"runtime"
	"sort"
	"sync"
	"testing"
)

// ---------- parallelRows chunking ----------

// collectChunks runs parallelRows and records every (lo, hi) chunk.
func collectChunks(rows, minRows int) [][2]int {
	var mu sync.Mutex
	var chunks [][2]int
	parallelRows(rows, minRows, func(lo, hi int) {
		mu.Lock()
		chunks = append(chunks, [2]int{lo, hi})
		mu.Unlock()
	})
	sort.Slice(chunks, func(a, b int) bool { return chunks[a][0] < chunks[b][0] })
	return chunks
}

func TestParallelRowsChunking(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	cases := []struct {
		rows, minRows int
	}{
		{0, 8}, {1, 8}, {7, 8}, {8, 8}, {9, 8}, {16, 8}, {17, 8},
		{31, 8}, {32, 8}, {33, 8}, {35, 8}, {100, 8},
		{1, 1}, {3, 1}, {4, 1}, {5, 1}, {1000, 1},
		{10, 16}, {64, 16},
	}
	for _, c := range cases {
		want := planWorkers(c.rows, c.minRows)
		chunks := collectChunks(c.rows, c.minRows)
		if len(chunks) != want {
			t.Fatalf("rows=%d min=%d: %d chunks, planWorkers says %d",
				c.rows, c.minRows, len(chunks), want)
		}
		// Chunks must tile [0, rows) exactly.
		pos := 0
		for _, ch := range chunks {
			if ch[0] != pos {
				t.Fatalf("rows=%d min=%d: chunk starts at %d, want %d", c.rows, c.minRows, ch[0], pos)
			}
			pos = ch[1]
		}
		if pos != c.rows {
			t.Fatalf("rows=%d min=%d: chunks end at %d, want %d", c.rows, c.minRows, pos, c.rows)
		}
		// Every chunk holds at least minRowsPerWorker rows (when split at
		// all), and sizes differ by at most one.
		if want > 1 {
			minSize, maxSize := c.rows, 0
			for _, ch := range chunks {
				size := ch[1] - ch[0]
				if size < minSize {
					minSize = size
				}
				if size > maxSize {
					maxSize = size
				}
			}
			if minSize < c.minRows {
				t.Fatalf("rows=%d min=%d: chunk of %d rows below minimum", c.rows, c.minRows, minSize)
			}
			if maxSize-minSize > 1 {
				t.Fatalf("rows=%d min=%d: chunk sizes range %d..%d", c.rows, c.minRows, minSize, maxSize)
			}
		}
	}
}

func TestPlanWorkersBounds(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	if w := planWorkers(1000, 1); w != 8 {
		t.Fatalf("planWorkers(1000, 1) = %d, want GOMAXPROCS (8)", w)
	}
	if w := planWorkers(15, 8); w != 1 {
		t.Fatalf("planWorkers(15, 8) = %d, want 1 (single chunk holds the minimum)", w)
	}
	if w := planWorkers(0, 8); w != 1 {
		t.Fatalf("planWorkers(0, 8) = %d, want 1", w)
	}
	if w := planWorkers(100, 0); w != 8 {
		t.Fatalf("planWorkers(100, 0) = %d, want 8 (min clamps to 1)", w)
	}
}

// ---------- strided views, Resize, AppendRow ----------

func TestColViewAliases(t *testing.T) {
	m := randMatrix(4, 6, 1)
	v := m.ColView(2, 5)
	if v.Rows != 4 || v.Cols != 3 {
		t.Fatalf("ColView shape %dx%d", v.Rows, v.Cols)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			if v.At(i, j) != m.At(i, j+2) {
				t.Fatalf("ColView[%d][%d] = %g, want %g", i, j, v.At(i, j), m.At(i, j+2))
			}
		}
	}
	v.Set(1, 0, 42)
	if m.At(1, 2) != 42 {
		t.Fatal("ColView mutation not visible in parent")
	}
	// Ops must respect the stride.
	v.Zero()
	for i := 0; i < 4; i++ {
		if m.At(i, 2) != 0 || m.At(i, 3) != 0 || m.At(i, 4) != 0 {
			t.Fatal("Zero through view missed a strided row")
		}
		if m.At(i, 0) == 0 && m.At(i, 1) == 0 && m.At(i, 5) == 0 {
			t.Fatal("Zero through view clobbered columns outside the view")
		}
	}
}

func TestColViewClone(t *testing.T) {
	m := randMatrix(3, 5, 2)
	c := m.ColView(1, 4).Clone()
	if !c.Contiguous() {
		t.Fatal("Clone of a strided view must be contiguous")
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if c.At(i, j) != m.At(i, j+1) {
				t.Fatal("Clone of view has wrong contents")
			}
		}
	}
}

func TestResizeReusesStorage(t *testing.T) {
	m := New(4, 8)
	m.Fill(7)
	m.Resize(2, 16)
	if m.Rows != 2 || m.Cols != 16 {
		t.Fatalf("Resize shape %dx%d", m.Rows, m.Cols)
	}
	m.Resize(4, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("Resize beyond capacity must panic")
		}
	}()
	m.Resize(4, 9)
}

func TestAppendRowGrowsAndWithinCapacityDoesNotAllocate(t *testing.T) {
	m := &Matrix{Cols: 4, Data: make([]float32, 0, 8*4)}
	for i := 0; i < 3; i++ {
		m.AppendRow([]float32{float32(i), 1, 2, 3})
	}
	if m.Rows != 3 || m.At(2, 0) != 2 {
		t.Fatalf("AppendRow contents wrong: rows=%d", m.Rows)
	}
	allocs := testing.AllocsPerRun(5, func() {
		m.Rows = 3
		m.Data = m.Data[:3*4]
		m.AppendRow([]float32{9, 9, 9, 9})
	})
	if allocs != 0 {
		t.Fatalf("AppendRow within capacity allocated %g times", allocs)
	}
	// Growth beyond capacity reallocates but preserves contents.
	g := &Matrix{Cols: 2, Data: make([]float32, 0, 2)}
	g.AppendRow([]float32{1, 2})
	g.AppendRow([]float32{3, 4})
	if g.Rows != 2 || g.At(0, 0) != 1 || g.At(1, 1) != 4 {
		t.Fatal("AppendRow growth lost contents")
	}
}

// ---------- Workspace ----------

func TestWorkspaceGetPutReuse(t *testing.T) {
	ws := NewWorkspace()
	defer ws.Close()
	m := ws.Get(10, 10)
	if m.Rows != 10 || m.Cols != 10 || len(m.Data) != 100 {
		t.Fatalf("Get shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Fill(3)
	ws.Put(m)
	n := ws.Get(9, 11) // same bucket (both round up to 128 floats)
	if n.Rows != 9 || n.Cols != 11 {
		t.Fatalf("Get shape %dx%d", n.Rows, n.Cols)
	}
	if n.Data[0] != 3 {
		t.Fatal("Get did not reuse the pooled buffer (contents are unspecified but the pool should serve LIFO)")
	}
	z := ws.GetZeroed(9, 11)
	for _, v := range z.Data {
		if v != 0 {
			t.Fatal("GetZeroed returned stale data")
		}
	}
}

func TestWorkspaceNilSafe(t *testing.T) {
	var ws *Workspace
	m := ws.Get(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatal("nil workspace Get must allocate")
	}
	ws.Put(m)   // no-op
	ws.Close()  // no-op
	ws.Put(nil) // no-op
}

func TestWorkspaceZeroSizedAndHuge(t *testing.T) {
	ws := NewWorkspace()
	defer ws.Close()
	e := ws.Get(0, 5)
	if e.Rows != 0 || e.Cols != 5 {
		t.Fatal("zero-row Get shape wrong")
	}
	ws.Put(e)
	big := ws.Get(1, (1<<maxBucketBits)+1)
	if len(big.Data) != (1<<maxBucketBits)+1 {
		t.Fatal("over-ceiling Get must still serve the request")
	}
	ws.Put(big) // silently dropped, not pooled
}

func TestWorkspaceWarmGetPutZeroAllocs(t *testing.T) {
	ws := NewWorkspace()
	defer ws.Close()
	ws.Put(ws.Get(32, 32)) // warm the bucket and the free-list slice
	allocs := testing.AllocsPerRun(100, func() {
		m := ws.Get(32, 32)
		ws.Put(m)
	})
	if allocs != 0 {
		t.Fatalf("warm workspace Get/Put allocated %g times per run", allocs)
	}
}

// ---------- fused softmax ----------

func TestScaleMaskSoftmaxMatchesComposition(t *testing.T) {
	s := randMatrix(6, 9, 3)
	mask := New(6, 9)
	mask.Fill(NegInf)
	for i := 0; i < 6; i++ {
		for j := 0; j < 3+i%4; j++ {
			mask.Set(i, j, 0)
		}
	}
	scale := float32(0.25)

	want := s.Clone()
	Scale(want, scale)
	AddInPlace(want, mask)
	SoftmaxRows(want)

	got := s.Clone()
	ScaleMaskSoftmaxRows(got, scale, mask)
	if !got.AllClose(want, 1e-6) {
		t.Fatalf("fused softmax differs by %g", got.MaxAbsDiff(want))
	}
}

func TestScaleMaskSoftmaxNilMask(t *testing.T) {
	s := randMatrix(4, 7, 4)
	want := s.Clone()
	Scale(want, 0.5)
	SoftmaxRows(want)
	got := s.Clone()
	ScaleMaskSoftmaxRows(got, 0.5, nil)
	if !got.AllClose(want, 1e-6) {
		t.Fatalf("fused softmax (nil mask) differs by %g", got.MaxAbsDiff(want))
	}
}

func TestScaleMaskSoftmaxFullyMaskedRowIsZero(t *testing.T) {
	s := randMatrix(2, 5, 5)
	mask := New(2, 5)
	mask.Fill(NegInf)
	ScaleMaskSoftmaxRows(s, 1, mask)
	for i := 0; i < 2; i++ {
		for j := 0; j < 5; j++ {
			if s.At(i, j) != 0 {
				t.Fatal("fully masked row must become exactly zero")
			}
		}
	}
}

func TestScaleMaskSoftmaxShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mask shape mismatch must panic")
		}
	}()
	ScaleMaskSoftmaxRows(New(3, 3), 1, New(2, 3))
}

// ---------- MatMulTBlocked ----------

func TestMatMulTBlockedMatchesTranspose(t *testing.T) {
	for _, sz := range [][3]int{{5, 7, 9}, {64, 64, 64}, {130, 70, 190}} {
		a := randMatrix(sz[0], sz[1], 11)
		b := randMatrix(sz[2], sz[1], 12)
		want := naiveMatMul(a, Transpose(b))
		got := New(sz[0], sz[2])
		MatMulTBlocked(got, a, b)
		if !got.AllClose(want, 1e-4) {
			t.Fatalf("MatMulTBlocked %v differs by %g", sz, got.MaxAbsDiff(want))
		}
	}
}

func TestMatMulTBlockedOverwritesDst(t *testing.T) {
	a := randMatrix(10, 8, 13)
	b := randMatrix(12, 8, 14)
	got := New(10, 12)
	got.Fill(99)
	MatMulTBlocked(got, a, b)
	want := naiveMatMul(a, Transpose(b))
	if !got.AllClose(want, 1e-4) {
		t.Fatal("MatMulTBlocked must overwrite dst, not accumulate")
	}
}

func TestMatMulTDispatchCrossesThreshold(t *testing.T) {
	// 160×90×160: 160*90*160 = 2.3M ≥ threshold → blocked kernel.
	a := randMatrix(160, 90, 15)
	b := randMatrix(160, 90, 16)
	if a.Rows*a.Cols*b.Rows < matMulThreshold {
		t.Fatalf("test operands below threshold: %d", a.Rows*a.Cols*b.Rows)
	}
	viaDispatch := New(160, 160)
	MatMulTInto(viaDispatch, a, b)
	small := New(160, 160)
	matMulTSmallRange(small, a, b, 0, a.Rows)
	if !viaDispatch.AllClose(small, 1e-4) {
		t.Fatalf("dispatch and small kernel differ by %g", viaDispatch.MaxAbsDiff(small))
	}
}

// ---------- attention kernels ----------

// naiveMultiHeadAttend is the reference: per head, dense scores with
// additive mask, stable softmax, value product.
func naiveMultiHeadAttend(q, k, v *Matrix, heads int, scale float32, mask *Matrix) *Matrix {
	d := q.Cols
	dh := d / heads
	out := New(q.Rows, d)
	for h := 0; h < heads; h++ {
		c0 := h * dh
		for i := 0; i < q.Rows; i++ {
			scores := make([]float32, k.Rows)
			for t := 0; t < k.Rows; t++ {
				var s float32
				for j := 0; j < dh; j++ {
					s += q.At(i, c0+j) * k.At(t, c0+j)
				}
				s *= scale
				if mask != nil {
					s += mask.At(i, t)
				}
				scores[t] = s
			}
			softmaxRow(scores)
			for t, a := range scores {
				for j := 0; j < dh; j++ {
					out.Set(i, c0+j, out.At(i, c0+j)+a*v.At(t, c0+j))
				}
			}
		}
	}
	return out
}

// segMask builds the dense additive mask equivalent to (blocks, seg, causal)
// so the block-sparse kernel can be checked against the dense one.
func segMask(nq, nk int, blocks []AttendBlock, qSeg, kSeg []int, causal bool) *Matrix {
	m := New(nq, nk)
	m.Fill(NegInf)
	for _, b := range blocks {
		for i := b.Q.Start; i < b.Q.End; i++ {
			for t := b.K.Start; t < b.K.End; t++ {
				if qSeg != nil && kSeg != nil && qSeg[i] != kSeg[t] {
					continue
				}
				if causal && t > i {
					continue
				}
				m.Set(i, t, 0)
			}
		}
	}
	return m
}

func TestMultiHeadAttendMatchesNaive(t *testing.T) {
	q := randMatrix(12, 16, 21)
	k := randMatrix(10, 16, 22)
	v := randMatrix(10, 16, 23)
	mask := New(12, 10)
	for i := 0; i < 12; i++ {
		for j := 0; j < 10; j++ {
			if (i+j)%3 == 0 {
				mask.Set(i, j, NegInf)
			}
		}
	}
	for _, m := range []*Matrix{nil, mask} {
		want := naiveMultiHeadAttend(q, k, v, 4, 0.25, m)
		got := New(12, 16)
		scores := New(12, 10)
		MultiHeadAttendInto(got, q, k, v, 4, 0.25, m, scores)
		if !got.AllClose(want, 1e-5) {
			t.Fatalf("MultiHeadAttendInto differs from naive by %g (mask=%v)", got.MaxAbsDiff(want), m != nil)
		}
	}
}

// blockLayout is a shared fixture: 20 rows, segments [0,6) [6,14) [14,18),
// two rows of padding, slots {segments 0+1} and {segment 2}.
func blockLayoutFixture() (blocks []AttendBlock, seg []int) {
	blocks = []AttendBlock{
		{Q: Span{0, 14}, K: Span{0, 14}},
		{Q: Span{14, 18}, K: Span{14, 18}},
	}
	seg = make([]int, 20)
	for i := range seg {
		switch {
		case i < 6:
			seg[i] = 0
		case i < 14:
			seg[i] = 1
		case i < 18:
			seg[i] = 2
		default:
			seg[i] = -1
		}
	}
	return blocks, seg
}

func TestBlockAttendMatchesDenseMask(t *testing.T) {
	blocks, seg := blockLayoutFixture()
	q := randMatrix(20, 8, 31)
	k := randMatrix(20, 8, 32)
	v := randMatrix(20, 8, 33)
	for _, causal := range []bool{false, true} {
		mask := segMask(20, 20, blocks, seg, seg, causal)
		want := New(20, 8)
		denseScores := New(20, 20)
		MultiHeadAttendInto(want, q, k, v, 2, 0.35, mask, denseScores)

		got := New(20, 8)
		scores := New(20, 14) // max block K width
		BlockAttendInto(got, q, k, v, 2, 0.35, blocks, seg, seg, causal, scores)
		if !got.AllClose(want, 1e-6) {
			t.Fatalf("block-sparse (causal=%v) differs from dense-mask by %g", causal, got.MaxAbsDiff(want))
		}
		// Padding rows (outside every block) must be exactly zero.
		for i := 18; i < 20; i++ {
			for j := 0; j < 8; j++ {
				if got.At(i, j) != 0 {
					t.Fatalf("padding row %d nonzero", i)
				}
			}
		}
	}
}

func TestBlockAttendCrossAttention(t *testing.T) {
	// Decoder rows [0,3) and [3,5) attend encoder rows [0,6) and [6,10).
	blocks := []AttendBlock{
		{Q: Span{0, 3}, K: Span{0, 6}},
		{Q: Span{3, 5}, K: Span{6, 10}},
	}
	q := randMatrix(5, 8, 41)
	k := randMatrix(10, 8, 42)
	v := randMatrix(10, 8, 43)
	mask := segMask(5, 10, blocks, nil, nil, false)
	want := New(5, 8)
	MultiHeadAttendInto(want, q, k, v, 2, 0.5, mask, New(5, 10))
	got := New(5, 8)
	BlockAttendInto(got, q, k, v, 2, 0.5, blocks, nil, nil, false, New(5, 6))
	if !got.AllClose(want, 1e-6) {
		t.Fatalf("cross block attention differs by %g", got.MaxAbsDiff(want))
	}
}

func TestAttendScoreArea(t *testing.T) {
	blocks := []AttendBlock{
		{Q: Span{0, 10}, K: Span{0, 10}},
		{Q: Span{10, 14}, K: Span{10, 14}},
	}
	if got := AttendScoreArea(blocks); got != 100+16 {
		t.Fatalf("AttendScoreArea = %d, want 116", got)
	}
	if got := AttendScoreArea(nil); got != 0 {
		t.Fatalf("AttendScoreArea(nil) = %d", got)
	}
}

func TestAttendCachedRowMatchesDense(t *testing.T) {
	keys := randMatrix(7, 8, 51)
	vals := randMatrix(7, 8, 52)
	qrow := randMatrix(1, 8, 53)
	want := New(1, 8)
	MultiHeadAttendInto(want, qrow, keys, vals, 2, 0.5, nil, New(1, 7))
	dst := make([]float32, 8)
	scores := make([]float32, 7)
	AttendCachedRow(dst, qrow.Row(0), keys, vals, 2, 4, 0.5, scores)
	for j := range dst {
		diff := dst[j] - want.At(0, j)
		if diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("cached attend differs at %d: %g vs %g", j, dst[j], want.At(0, j))
		}
	}
}

// ---------- allocation regressions ----------

// serialKernels pins GOMAXPROCS to 1 so every kernel takes its inline
// serial path (the steady-state shape on a loaded server, and the only
// configuration where the zero-allocation guarantee is meaningful).
func serialKernels(t *testing.T) {
	t.Helper()
	old := runtime.GOMAXPROCS(1)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

func TestMatMulIntoZeroAllocs(t *testing.T) {
	serialKernels(t)
	a := randMatrix(64, 64, 61)
	b := randMatrix(64, 64, 62)
	dst := New(64, 64)
	allocs := testing.AllocsPerRun(20, func() { MatMulInto(dst, a, b) })
	if allocs != 0 {
		t.Fatalf("MatMulInto (small kernel) allocated %g times per run", allocs)
	}
	// Large operands cross into the blocked kernel; still zero allocations.
	la := randMatrix(192, 96, 63)
	lb := randMatrix(96, 192, 64)
	ldst := New(192, 192)
	allocs = testing.AllocsPerRun(5, func() { MatMulInto(ldst, la, lb) })
	if allocs != 0 {
		t.Fatalf("MatMulInto (blocked kernel) allocated %g times per run", allocs)
	}
}

func TestScaleMaskSoftmaxZeroAllocs(t *testing.T) {
	serialKernels(t)
	s := randMatrix(128, 128, 65)
	mask := New(128, 128)
	allocs := testing.AllocsPerRun(20, func() { ScaleMaskSoftmaxRows(s, 0.5, mask) })
	if allocs != 0 {
		t.Fatalf("ScaleMaskSoftmaxRows allocated %g times per run", allocs)
	}
}

func TestAttendKernelsZeroAllocs(t *testing.T) {
	serialKernels(t)
	q := randMatrix(32, 16, 66)
	k := randMatrix(32, 16, 67)
	v := randMatrix(32, 16, 68)
	out := New(32, 16)
	scores := New(32, 32)
	allocs := testing.AllocsPerRun(20, func() {
		MultiHeadAttendInto(out, q, k, v, 4, 0.25, nil, scores)
	})
	if allocs != 0 {
		t.Fatalf("MultiHeadAttendInto allocated %g times per run", allocs)
	}
	blocks := []AttendBlock{{Q: Span{0, 16}, K: Span{0, 16}}, {Q: Span{16, 32}, K: Span{16, 32}}}
	allocs = testing.AllocsPerRun(20, func() {
		BlockAttendInto(out, q, k, v, 4, 0.25, blocks, nil, nil, true, scores)
	})
	if allocs != 0 {
		t.Fatalf("BlockAttendInto allocated %g times per run", allocs)
	}
}
