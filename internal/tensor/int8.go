package tensor

import (
	"fmt"
	"math"
)

// This file is the int8 quantized GEMM path for weight-stationary
// projections (WQ/WK/WV/WO, FFN, logits): weights are quantized once at
// load with symmetric per-output-channel absmax scales, activations are
// quantized per row on the fly into pooled int8 workspace buffers,
// accumulation runs in exact integer arithmetic (two rows packed into the
// 32-bit lanes of one uint64 — see matMulInt8Range), and the result
// dequantizes straight into the float32 dst.
//
// Unlike the float32 kernels, this path trades bits for speed: outputs
// carry a bounded quantization error instead of bitwise identity, so it is
// strictly opt-in (Engine.Quantize / tcb-serve -quantize). What it keeps:
// per-row activation scales are row-local and int32 accumulation is exact,
// so quantized outputs are *still* independent of GEMM height, worker
// chunking and batch composition — fused vs per-row decode, serial vs
// pipelined vs refill all stay bitwise identical to each other on the
// quantized path too, just not to the float32 path.

// I8Matrix is a dense row-major int8 matrix (always contiguous).
type I8Matrix struct {
	Rows, Cols int
	Data       []int8
}

// Row returns row i as a slice aliasing the matrix.
func (m *I8Matrix) Row(i int) []int8 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// QuantizedMatrix is a weight matrix quantized to int8 with symmetric
// per-output-channel (per-column) scales: the float32 source W[k][j] is
// approximated by Data[k*Cols+j] * Scales[j]. Channels whose absmax is zero
// (or denormal enough to underflow the float32 scale) store zero weights
// with a zero scale and dequantize to exact zero.
//
// Alongside the canonical int8 form the matrix carries the micro-kernel's
// working representation: the same weights biased to uint8 (qw + 128, so
// every entry is non-negative) plus per-column biased sums. The kernel packs
// the two activation rows of its register block into the 32-bit lanes of one
// uint64 and multiplies by the biased weight byte, so a single 64-bit
// multiply-add advances both rows — all-non-negative lane products are what
// make the packing carry-free, and the bias is unwound exactly at tile exit
// from the precomputed row/column sums (see matMulInt8Range).
type QuantizedMatrix struct {
	Rows, Cols int
	Data       []int8
	Scales     []float32 // per output channel; len Cols

	udata   []uint8 // Data + 128, the kernel's biased form (row-major)
	colSumU []int32 // per column: Σ_k (Data[k][j] + 128)
}

// Row returns weight row k (one input channel across all output channels).
func (q *QuantizedMatrix) Row(k int) []int8 {
	return q.Data[k*q.Cols : (k+1)*q.Cols]
}

// QuantizeMatrix quantizes a float32 weight matrix to int8 with symmetric
// per-column absmax scales: Scales[j] = max_k |W[k][j]| / 127, and each
// entry rounds half-away-from-zero to [-127, 127]. Done once at model load;
// the inference hot path only ever reads the result.
func QuantizeMatrix(w *Matrix) *QuantizedMatrix {
	q := &QuantizedMatrix{
		Rows:   w.Rows,
		Cols:   w.Cols,
		Data:   make([]int8, w.Rows*w.Cols),
		Scales: make([]float32, w.Cols),
	}
	if w.Rows == 0 || w.Cols == 0 {
		return q
	}
	absmax := make([]float64, w.Cols)
	for i := 0; i < w.Rows; i++ {
		row := w.Row(i)
		for j, v := range row {
			if a := math.Abs(float64(v)); a > absmax[j] {
				absmax[j] = a
			}
		}
	}
	inv := make([]float64, w.Cols)
	for j, a := range absmax {
		s := float32(a / 127)
		q.Scales[j] = s
		if s > 0 {
			// Invert the rounded float32 scale, not the exact ratio, so
			// quantize→dequantize round-trips against the stored scale.
			inv[j] = 1 / float64(s)
		}
		// s == 0: all-zero (or underflowed-denormal) channel; inv stays 0
		// and every entry quantizes to 0, dequantizing to exact zero.
	}
	for i := 0; i < w.Rows; i++ {
		row := w.Row(i)
		out := q.Row(i)
		for j, v := range row {
			out[j] = quantizeValue(float64(v), inv[j])
		}
	}
	q.buildKernelForm()
	return q
}

// buildKernelForm derives the biased-uint8 weights and per-column biased
// sums the SWAR micro-kernel consumes. Called once at quantization time.
func (q *QuantizedMatrix) buildKernelForm() {
	q.udata = make([]uint8, len(q.Data))
	q.colSumU = make([]int32, q.Cols)
	for i := 0; i < q.Rows; i++ {
		row := q.Row(i)
		urow := q.udata[i*q.Cols : (i+1)*q.Cols]
		for j, v := range row {
			u := int32(v) + 128
			urow[j] = uint8(u)
			q.colSumU[j] += u
		}
	}
}

// Dequantize expands the quantized weights back to float32 — the reference
// the bounded-error tests compare against; not used on the hot path.
func (q *QuantizedMatrix) Dequantize() *Matrix {
	m := New(q.Rows, q.Cols)
	for i := 0; i < q.Rows; i++ {
		src := q.Row(i)
		dst := m.Row(i)
		for j, v := range src {
			dst[j] = float32(v) * q.Scales[j]
		}
	}
	return m
}

// quantizeValue rounds v*inv half-away-from-zero and clamps to [-127, 127].
// The clamp happens before the float→int conversion, so denormal absmax
// values (whose reciprocal overflows) cannot hit Go's undefined
// out-of-range conversion.
func quantizeValue(v, inv float64) int8 {
	f := v * inv
	if f >= 0 {
		f += 0.5
	} else {
		f -= 0.5
	}
	if f > 127 {
		f = 127
	} else if f < -127 {
		f = -127
	}
	return int8(f)
}

// quantizeRowsInto quantizes each row of a with its own symmetric absmax
// scale: scales[i] = max_j |a[i][j]| / 127. dst must be a.Rows × a.Cols and
// scales at least a.Rows long.
func quantizeRowsInto(dst *I8Matrix, scales []float32, a *Matrix) {
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		out := dst.Row(i)
		var absmax float32
		for _, v := range row {
			if v < 0 {
				v = -v
			}
			if v > absmax {
				absmax = v
			}
		}
		s := float32(float64(absmax) / 127)
		scales[i] = s
		if s == 0 {
			for j := range out {
				out[j] = 0
			}
			continue
		}
		inv := 1 / float64(s)
		for j, v := range row {
			out[j] = quantizeValue(float64(v), inv)
		}
	}
}

// int8Tile is the output-column tile width of the int8 micro-kernel: the
// packed-lane accumulators for a (2-row × tile) block live on the stack
// (2 KiB), and the weight sub-block walked per tile (k × tile bytes) stays
// L1-resident across every activation row — the quantized kernel's second
// edge over the float32 path beyond 4× smaller weight traffic.
const int8Tile = 256

// int8MaxK is the largest inner dimension the packed kernel supports: each
// 32-bit lane accumulates at most k·255·255, which must stay below 2^32 so
// the low lane cannot carry into the high one. 65025·66051 < 2^32.
const int8MaxK = 66051

// MatMulQuantizedInto computes dst = a × W for a quantized weight matrix:
// activations quantize per row into int8 workspace buffers, the product
// accumulates in int32, and the result dequantizes into dst as
// acc · rowScale · colScale. dst must be a.Rows × w.Cols and must not alias
// a. ws supplies the activation scratch; nil borrows a workspace from the
// package pool, so warm steady-state calls allocate nothing either way.
func MatMulQuantizedInto(dst, a *Matrix, w *QuantizedMatrix, ws *Workspace) {
	if a.Cols != w.Rows {
		panic(fmt.Sprintf("tensor: MatMulQuantized inner dims %d != %d", a.Cols, w.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != w.Cols {
		panic(fmt.Sprintf("tensor: MatMulQuantized dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, w.Cols))
	}
	if a.Cols > int8MaxK {
		panic(fmt.Sprintf("tensor: MatMulQuantized inner dim %d exceeds packed-lane bound %d", a.Cols, int8MaxK))
	}
	int8Calls.Add(1)
	owned := ws == nil
	if owned {
		ws = NewWorkspace()
	}
	qa := ws.GetI8(a.Rows, a.Cols)
	sc := ws.Get(a.Rows, 1)
	quantizeRowsInto(qa, sc.Data, a)
	n := a.Rows
	if planWorkers(n, 4) == 1 {
		matMulInt8Range(dst, qa, sc.Data, w, 0, n)
	} else {
		parallelRows(n, 4, func(lo, hi int) {
			matMulInt8Range(dst, qa, sc.Data, w, lo, hi)
		})
	}
	ws.Put(sc)
	ws.PutI8(qa)
	if owned {
		ws.Close()
	}
}

// matMulInt8Range runs the int8 micro-kernel over dst rows [lo, hi).
//
// The inner product is computed SWAR-style: both operands are biased
// non-negative (activation qa+128 ∈ [1,255], weight qw+128 ∈ [1,255] from
// the precomputed udata), the two activation rows of a register block are
// packed into the 32-bit lanes of one uint64, and each packed lane pair is
// multiplied by the weight byte — one 64-bit multiply-add advances both
// rows, with weights still read one byte per column. Lane products are
// ≤ 255·255, so lanes never interact while k ≤ int8MaxK.
//
// The bias unwinds exactly at tile exit:
//
//	Σ qa·qw = Σ (ua−128)(uw−128) = lane − 128·Σqa − 128·Σuw
//
// (the 128²·k terms cancel against the −128·Σua expansion), with Σqa summed
// per row here and Σuw per column precomputed in colSumU. Accumulation is
// exact integer arithmetic throughout, so quantized outputs remain
// independent of GEMM height, chunking and batch composition. Each (i, j)
// is produced exactly once, so dst needs no pre-zeroing.
func matMulInt8Range(dst *Matrix, qa *I8Matrix, aScales []float32, w *QuantizedMatrix, lo, hi int) {
	k, p := qa.Cols, w.Cols
	ud := w.udata
	colSum := w.colSumU
	colScale := w.Scales
	// Shrink the column tile until the k×tile weight block it walks fits in
	// L1 (≈32 KiB budget), so the block stays resident across every
	// activation row-pair instead of re-streaming from L2 when k is large.
	tile := int8Tile
	for tile > 32 && k*tile > 32<<10 {
		tile >>= 1
	}
	for j0 := 0; j0 < p; j0 += tile {
		j1 := j0 + tile
		if j1 > p {
			j1 = p
		}
		tw := j1 - j0
		i := lo
		for ; i+2 <= hi; i += 2 {
			var accArr [int8Tile]uint64
			acc := accArr[:tw]
			ar0, ar1 := qa.Row(i), qa.Row(i+1)
			kk := 0
			for ; kk+4 <= k; kk += 4 {
				pa0 := packPair(ar0[kk], ar1[kk])
				pa1 := packPair(ar0[kk+1], ar1[kk+1])
				pa2 := packPair(ar0[kk+2], ar1[kk+2])
				pa3 := packPair(ar0[kk+3], ar1[kk+3])
				b0 := ud[kk*p+j0:][:tw]
				b1 := ud[(kk+1)*p+j0:][:tw]
				b2 := ud[(kk+2)*p+j0:][:tw]
				b3 := ud[(kk+3)*p+j0:][:tw]
				for j := range acc {
					acc[j] += pa0*uint64(b0[j]) + pa1*uint64(b1[j]) +
						pa2*uint64(b2[j]) + pa3*uint64(b3[j])
				}
			}
			for ; kk < k; kk++ {
				pa := packPair(ar0[kk], ar1[kk])
				brow := ud[kk*p+j0:][:tw]
				for j := range acc {
					acc[j] += pa * uint64(brow[j])
				}
			}
			base0 := 128 * rowQSum(ar0)
			base1 := 128 * rowQSum(ar1)
			s0, s1 := aScales[i], aScales[i+1]
			d0 := dst.Row(i)[j0:j1]
			d1 := dst.Row(i + 1)[j0:j1]
			for j := range d0 {
				cj := 128 * int64(colSum[j0+j])
				sw := colScale[j0+j]
				d0[j] = float32(int64(uint32(acc[j]))-base0-cj) * s0 * sw
				d1[j] = float32(int64(uint32(acc[j]>>32))-base1-cj) * s1 * sw
			}
		}
		for ; i < hi; i++ {
			var accArr [int8Tile]uint64
			acc := accArr[:tw]
			arow := qa.Row(i)
			kk := 0
			for ; kk+4 <= k; kk += 4 {
				pa0 := uint64(uint32(int32(arow[kk]) + 128))
				pa1 := uint64(uint32(int32(arow[kk+1]) + 128))
				pa2 := uint64(uint32(int32(arow[kk+2]) + 128))
				pa3 := uint64(uint32(int32(arow[kk+3]) + 128))
				b0 := ud[kk*p+j0:][:tw]
				b1 := ud[(kk+1)*p+j0:][:tw]
				b2 := ud[(kk+2)*p+j0:][:tw]
				b3 := ud[(kk+3)*p+j0:][:tw]
				for j := range acc {
					acc[j] += pa0*uint64(b0[j]) + pa1*uint64(b1[j]) +
						pa2*uint64(b2[j]) + pa3*uint64(b3[j])
				}
			}
			for ; kk < k; kk++ {
				pa := uint64(uint32(int32(arow[kk]) + 128))
				brow := ud[kk*p+j0:][:tw]
				for j := range acc {
					acc[j] += pa * uint64(brow[j])
				}
			}
			base := 128 * rowQSum(arow)
			s := aScales[i]
			drow := dst.Row(i)[j0:j1]
			for j := range drow {
				cj := 128 * int64(colSum[j0+j])
				drow[j] = float32(int64(uint32(acc[j]))-base-cj) * s * colScale[j0+j]
			}
		}
	}
}

// packPair packs two biased activation bytes into the 32-bit lanes of one
// uint64 for the SWAR multiply.
func packPair(a0, a1 int8) uint64 {
	return uint64(uint32(int32(a0)+128)) | uint64(uint32(int32(a1)+128))<<32
}

// rowQSum is Σ qa over one quantized activation row — the row half of the
// bias correction.
func rowQSum(r []int8) int64 {
	var s int64
	for _, v := range r {
		s += int64(v)
	}
	return s
}
