package serve

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
)

// This file is the supervision layer between the server's scheduling loop
// and the inference engine. The paper's scheduler (§5, Algorithm 1)
// maximises utility of requests served by their deadlines; an unsupervised
// engine undoes that work wholesale — one failed launch discards a whole
// batch, a panic kills the process, a hung kernel wedges the loop. The
// SupervisedRunner turns those into bounded, per-batch errors the loop can
// recover from (retry/requeue in serve.go), and the Breaker stops the
// server from feeding work to an engine that is persistently failing.

// ErrBatchTimeout marks a batch killed by the supervision watchdog: the
// engine exceeded its predicted latency times the slack factor.
var ErrBatchTimeout = errors.New("serve: batch execution timed out")

// ErrBreakerOpen marks work refused because the circuit breaker is open.
var ErrBreakerOpen = errors.New("serve: circuit breaker open")

// ErrShed marks queued requests shed while the breaker was open and the
// queue exceeded the degraded bound.
var ErrShed = fmt.Errorf("serve: request shed under degraded service: %w", ErrBreakerOpen)

// PanicError wraps an engine panic converted to an error by the
// SupervisedRunner, preserving the panic value and the goroutine stack.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("serve: engine panicked: %v", e.Value)
}

// BreakerState is the circuit breaker's state machine position.
type BreakerState int

const (
	// BreakerClosed: normal operation, failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the engine is presumed down; runs are refused until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; a single probe batch is allowed
	// through to test the engine.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// Breaker is a consecutive-failure circuit breaker. It trips open after
// threshold consecutive engine failures; after cooldown it admits a single
// probe (half-open) and closes again on the first success. All methods are
// safe for concurrent use.
type Breaker struct {
	mu          sync.Mutex
	threshold   int
	cooldown    time.Duration
	state       BreakerState
	consecutive int
	openedAt    time.Time
	trips       int64
	now         func() time.Time // injectable for tests
}

// NewBreaker returns a closed breaker tripping after threshold consecutive
// failures and probing again cooldown after opening.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 250 * time.Millisecond
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// State returns the current state, lazily moving Open → HalfOpen once the
// cooldown has elapsed.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked()
}

func (b *Breaker) stateLocked() BreakerState {
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		b.state = BreakerHalfOpen
	}
	return b.state
}

// Allow reports whether a run may proceed now. Closed and half-open admit
// work; open refuses it until the cooldown elapses.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked() != BreakerOpen
}

// Record feeds one run outcome into the state machine.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked() {
	case BreakerClosed:
		if ok {
			b.consecutive = 0
			return
		}
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.tripLocked()
		}
	case BreakerHalfOpen:
		if ok {
			b.state = BreakerClosed
			b.consecutive = 0
			return
		}
		b.tripLocked()
	case BreakerOpen:
		// A straggler outcome from before the trip; refresh the window on
		// failure so the cooldown restarts from the latest evidence.
		if !ok {
			b.openedAt = b.now()
		}
	}
}

func (b *Breaker) tripLocked() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.consecutive = 0
	b.trips++
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// SupervisedRunner decorates a Runner with panic capture, a per-batch
// wall-clock watchdog, and circuit-breaker accounting. The zero value with
// only Inner set degrades to plain panic capture.
type SupervisedRunner struct {
	Inner Runner
	// Timeout, when non-nil, returns the wall-clock budget for a batch
	// (typically the cost model's predicted latency times a slack factor).
	// Non-positive budgets disable the watchdog for that batch.
	Timeout func(b *batch.Batch) time.Duration
	// Breaker, when non-nil, gates runs and is fed every outcome.
	Breaker *Breaker
}

// Run executes the inner runner under supervision. A panic in the engine
// becomes a *PanicError; a batch exceeding its budget fails with
// ErrBatchTimeout (the runaway engine goroutine is abandoned and its late
// result discarded); an open breaker refuses the run with ErrBreakerOpen
// without touching the engine or recording an outcome.
func (s *SupervisedRunner) Run(b *batch.Batch, tokens map[int64][]int) (*engine.Report, error) {
	return s.supervise(b, func() (*engine.Report, error) { return s.Inner.Run(b, tokens) })
}

// RunPrepared executes a staged batch under the identical supervision
// envelope (panic capture, watchdog, breaker). An inner runner without
// prepared-handoff support degrades to the plain Run path. Note a
// watchdog-abandoned run keeps computing in its goroutine — it never frees
// the batch's memory reservation, which is why the serve loop releases the
// Prepared before requeueing (see completeBatch).
func (s *SupervisedRunner) RunPrepared(p *engine.Prepared) (*engine.Report, error) {
	inner, ok := s.Inner.(PreparedRunner)
	if !ok {
		return s.Run(p.Batch, p.Tokens)
	}
	return s.supervise(p.Batch, func() (*engine.Report, error) { return inner.RunPrepared(p) })
}

// RunPreparedRefill executes a refill-enabled launch under supervision. The
// watchdog budget is extendable: every admission the hook accepts adds
// extend(adm) to the deadline, so the budget tracks the batch's composition
// as it changes instead of killing a healthy launch for serving more work
// than it was born with. An inner runner without the refill path degrades
// to RunPrepared — the hook stays silent and the serve loop's completion
// path delivers everything, exactly the no-refill behaviour.
func (s *SupervisedRunner) RunPreparedRefill(p *engine.Prepared, hook engine.RefillHook,
	extend func(engine.Admission) time.Duration) (*engine.Report, error) {
	inner, ok := s.Inner.(RefillRunner)
	if !ok {
		return s.RunPrepared(p)
	}
	if s.Breaker != nil && !s.Breaker.Allow() {
		return nil, ErrBreakerOpen
	}
	var budget time.Duration
	if s.Timeout != nil {
		budget = s.Timeout(p.Batch)
	}
	if budget <= 0 {
		// No watchdog: plain panic capture plus breaker accounting.
		return s.superviseStarted(p.Batch, nil, func() (*engine.Report, error) {
			return inner.RunPreparedRefill(p, hook)
		})
	}
	dl := &deadline{at: time.Now().Add(budget)}
	wrapped := hook
	if extend != nil {
		wrapped = &extendingHook{RefillHook: hook, extend: extend, dl: dl}
	}
	return s.superviseStarted(p.Batch, dl, func() (*engine.Report, error) {
		return inner.RunPreparedRefill(p, wrapped)
	})
}

// deadline is a mutex-guarded watchdog deadline the extendingHook pushes
// forward from the engine goroutine while the supervisor waits on it.
type deadline struct {
	mu sync.Mutex
	at time.Time
}

func (d *deadline) get() time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.at
}

func (d *deadline) add(delta time.Duration) {
	if delta <= 0 {
		return
	}
	d.mu.Lock()
	d.at = d.at.Add(delta)
	d.mu.Unlock()
}

// extendingHook decorates a RefillHook so every accepted admission extends
// the watchdog deadline by its predicted cost.
type extendingHook struct {
	engine.RefillHook
	extend func(engine.Admission) time.Duration
	dl     *deadline
}

func (h *extendingHook) Refill(free int) []engine.Admission {
	adms := h.RefillHook.Refill(free)
	for _, adm := range adms {
		h.dl.add(h.extend(adm))
	}
	return adms
}

// superviseStarted runs one engine invocation under panic capture, breaker
// accounting and an optional extendable deadline (nil disables the
// watchdog). The run goroutine is abandoned, never killed, on timeout —
// identical semantics to supervise, with a movable deadline instead of a
// fixed timer.
func (s *SupervisedRunner) superviseStarted(b *batch.Batch, dl *deadline, run func() (*engine.Report, error)) (*engine.Report, error) {
	type outcome struct {
		rep *engine.Report
		err error
	}
	ch := make(chan outcome, 1) // buffered: an abandoned run must not leak its goroutine
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{nil, &PanicError{Value: r, Stack: debug.Stack()}}
			}
		}()
		rep, err := run()
		ch <- outcome{rep, err}
	}()
	if dl == nil {
		o := <-ch
		s.record(o.err == nil)
		return o.rep, o.err
	}
	for {
		wait := time.Until(dl.get())
		if wait <= 0 {
			s.record(false)
			return nil, fmt.Errorf("%w: %d items exceeded extendable budget", ErrBatchTimeout, b.NumItems())
		}
		t := time.NewTimer(wait)
		select {
		case o := <-ch:
			t.Stop()
			s.record(o.err == nil)
			return o.rep, o.err
		case <-t.C:
			// The deadline may have moved while we slept; loop re-checks.
		}
	}
}

// supervise runs one engine invocation under panic capture, the per-batch
// watchdog and breaker accounting — the shared core of Run and RunPrepared.
func (s *SupervisedRunner) supervise(b *batch.Batch, run func() (*engine.Report, error)) (*engine.Report, error) {
	if s.Breaker != nil && !s.Breaker.Allow() {
		return nil, ErrBreakerOpen
	}
	type outcome struct {
		rep *engine.Report
		err error
	}
	ch := make(chan outcome, 1) // buffered: an abandoned run must not leak its goroutine
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{nil, &PanicError{Value: r, Stack: debug.Stack()}}
			}
		}()
		rep, err := run()
		ch <- outcome{rep, err}
	}()

	var watchdog <-chan time.Time
	var budget time.Duration
	if s.Timeout != nil {
		if budget = s.Timeout(b); budget > 0 {
			t := time.NewTimer(budget)
			defer t.Stop()
			watchdog = t.C
		}
	}
	select {
	case o := <-ch:
		s.record(o.err == nil)
		return o.rep, o.err
	case <-watchdog:
		s.record(false)
		return nil, fmt.Errorf("%w: %d items exceeded budget %v", ErrBatchTimeout, b.NumItems(), budget)
	}
}

func (s *SupervisedRunner) record(ok bool) {
	if s.Breaker != nil {
		s.Breaker.Record(ok)
	}
}
