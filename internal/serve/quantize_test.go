package serve

import (
	"sync"
	"testing"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/model"
	"tcb/internal/rng"
	"tcb/internal/sched"
	"tcb/internal/tensor"
)

// A quantized server under injected faults: concurrent submits race the
// engine's lazy EnsureQuantized, retries re-enter the int8 kernels, and
// every request must still get an answer. This is the race-detector surface
// for the quantized path (CI runs this package with -race).
func TestQuantizedChaosServes(t *testing.T) {
	cfg := model.Config{
		VocabSize: testVocab, DModel: 32, NumHeads: 4, DFF: 64,
		EncLayers: 1, DecLayers: 1, MaxLen: 256, Eps: 1e-5,
	}
	e := engine.New(model.New(cfg, 5), 3)
	e.Quantize = true
	chaos := NewChaosRunner(e, ChaosConfig{ErrRate: 0.2, PanicRate: 0.05, Seed: 7})
	s, err := New(Config{
		Engine: chaos, Scheduler: sched.NewDAS(), Scheme: batch.Concat,
		B: 4, L: 64, Poll: 200 * time.Microsecond,
		Retry:            RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond},
		BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tensor.ResetKernelCounters()
	t.Cleanup(tensor.ResetKernelCounters)
	s.Start()
	defer s.Stop()

	const clients, perClient = 8, 3
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			src := rng.New(uint64(c) + 900)
			for i := 0; i < perClient; i++ {
				ch, err := s.Submit(randTokens(src, src.IntRange(2, 10)), 10*time.Second)
				if err != nil {
					errs <- err
					return
				}
				resp := <-ch
				errs <- resp.Err
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	answered, failed := 0, 0
	for err := range errs {
		answered++
		if err != nil {
			failed++ // chaos can exhaust retries; losing a request is fine, hanging is not
		}
	}
	if answered != clients*perClient {
		t.Fatalf("answered %d of %d requests", answered, clients*perClient)
	}
	if failed == answered {
		t.Fatal("every request failed — server never recovered from chaos")
	}
	st := s.Stats()
	if st.Kernels.Int8 == 0 {
		t.Fatal("quantized server reported zero int8 GEMM dispatches")
	}
	if st.Served == 0 {
		t.Fatal("stats report zero served requests")
	}
}
