package serve

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/rng"
)

// ChaosRunner is a deterministic, seeded fault injector between the server
// and a real Runner: every failure path the supervision stack handles
// (errors, panics, latency spikes, lost results) can be exercised
// reproducibly — same seed, same call sequence, same faults. Wire it into
// tcb-serve with -chaos, or around a test engine directly.
//
// Mode draws happen in call order from one seeded stream, so a
// single-goroutine caller (the serve loop) sees an identical fault schedule
// run to run.
type ChaosRunner struct {
	Inner Runner
	cfg   ChaosConfig

	mu       sync.Mutex
	src      *rng.Source
	calls    int64
	injected ChaosCounts
	// stop releases wedged calls on Close so a torn-down replica's
	// abandoned engine goroutines can exit instead of leaking.
	stop      chan struct{}
	closeOnce sync.Once
}

// ChaosConfig selects fault modes for a ChaosRunner. Rates are independent
// probabilities per Run call, checked in the order: slow, panic, err, lose.
// KillAfter and WedgeAfter are deterministic call-count triggers (they draw
// no randomness, so adding them never shifts an existing seed's schedule):
// they model a whole replica dying or hanging, the faults the cluster layer
// routes around with ejection and drain/respawn.
type ChaosConfig struct {
	ErrRate   float64 // return an injected error instead of running
	PanicRate float64 // panic instead of running
	SlowRate  float64 // sleep SlowDelay before running
	LoseRate  float64 // run, then drop one request's result from the report
	SlowDelay time.Duration
	Seed      uint64

	// KillAfter, when positive, hard-kills the engine after that many
	// calls: every later call fails immediately with ErrChaosKilled. The
	// replica is crashed, not slow — its breaker opens, health probes fail,
	// and the cluster must eject it.
	KillAfter int
	// WedgeAfter, when positive, wedges the engine after that many calls:
	// every later call blocks until Close. The replica is hung — the
	// supervision watchdog (and the cluster's stall detector) territory.
	WedgeAfter int
}

// Enabled reports whether any fault mode is active.
func (c ChaosConfig) Enabled() bool {
	return c.ErrRate > 0 || c.PanicRate > 0 || c.SlowRate > 0 || c.LoseRate > 0 ||
		c.KillAfter > 0 || c.WedgeAfter > 0
}

// ChaosCounts tallies injected faults.
type ChaosCounts struct {
	Errs, Panics, Slows, Lost int64
	Kills, Wedges             int64
}

// ErrChaos is the root of every injected engine error.
var ErrChaos = errors.New("chaos: injected engine error")

// ErrChaosKilled marks calls refused because the injector's KillAfter
// trigger fired: the simulated replica is dead until it is respawned with a
// fresh runner.
var ErrChaosKilled = fmt.Errorf("%w: engine killed", ErrChaos)

// NewChaosRunner wraps inner with deterministic fault injection.
func NewChaosRunner(inner Runner, cfg ChaosConfig) *ChaosRunner {
	if cfg.SlowDelay <= 0 {
		cfg.SlowDelay = 10 * time.Millisecond
	}
	return &ChaosRunner{Inner: inner, cfg: cfg, src: rng.New(cfg.Seed), stop: make(chan struct{})}
}

// Close releases every wedged call (it returns ErrChaos) and disarms the
// wedge for later calls. A cluster respawning a wedged replica calls it
// during teardown so the watchdog-abandoned engine goroutines can exit
// instead of leaking. Safe to call more than once.
func (c *ChaosRunner) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
}

// Counts returns the faults injected so far.
func (c *ChaosRunner) Counts() ChaosCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// chaosDraw is one call's fault schedule, drawn under the lock in call
// order so the same seed yields the same schedule on the plain and the
// prepared execution paths alike.
type chaosDraw struct {
	slow, pan, fail, lose bool
	kill, wedge           bool
}

func (c *ChaosRunner) draw() chaosDraw {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	var d chaosDraw
	// Count-based triggers first, and without touching the rng stream, so
	// killafter/wedgeafter compose with rate modes under the same seed
	// without shifting their schedule. Wedge outranks kill.
	if c.cfg.WedgeAfter > 0 && c.calls > int64(c.cfg.WedgeAfter) {
		d.wedge = true
		c.injected.Wedges++
		return d
	}
	if c.cfg.KillAfter > 0 && c.calls > int64(c.cfg.KillAfter) {
		d.kill = true
		c.injected.Kills++
		return d
	}
	d.slow = c.src.Float64() < c.cfg.SlowRate
	d.pan = c.src.Float64() < c.cfg.PanicRate
	d.fail = c.src.Float64() < c.cfg.ErrRate
	d.lose = c.src.Float64() < c.cfg.LoseRate
	if d.slow {
		c.injected.Slows++
	}
	if d.pan {
		c.injected.Panics++
	} else if d.fail {
		c.injected.Errs++
	}
	return d
}

// inject acts out the pre-run part of a draw: wedge, kill, sleep, panic or
// error. It runs outside the lock — a slow or wedged run must not serialize
// later calls.
func (c *ChaosRunner) inject(d chaosDraw, b *batch.Batch) error {
	if d.wedge {
		// Hang like a stuck kernel: the supervision watchdog abandons the
		// call, and Close (replica teardown) is what finally releases it.
		<-c.stop
		return fmt.Errorf("%w: wedged engine released by teardown", ErrChaos)
	}
	if d.kill {
		return fmt.Errorf("%w (batch of %d items)", ErrChaosKilled, b.NumItems())
	}
	if d.slow {
		time.Sleep(c.cfg.SlowDelay)
	}
	if d.pan {
		panic(fmt.Sprintf("chaos: injected panic (batch of %d items)", b.NumItems()))
	}
	if d.fail {
		return fmt.Errorf("%w (batch of %d items)", ErrChaos, b.NumItems())
	}
	return nil
}

// maybeLose drops one result from a successful report when the draw says so.
func (c *ChaosRunner) maybeLose(d chaosDraw, rep *engine.Report) *engine.Report {
	if !d.lose || rep == nil || len(rep.Results) == 0 {
		return rep
	}
	c.mu.Lock()
	drop := c.src.Intn(len(rep.Results))
	c.injected.Lost++
	c.mu.Unlock()
	trimmed := make([]engine.Result, 0, len(rep.Results)-1)
	trimmed = append(trimmed, rep.Results[:drop]...)
	trimmed = append(trimmed, rep.Results[drop+1:]...)
	clone := *rep
	clone.Results = trimmed
	return &clone
}

// Run implements Runner with fault injection. Injected panics are expected
// to be recovered by the SupervisedRunner above this one.
func (c *ChaosRunner) Run(b *batch.Batch, tokens map[int64][]int) (*engine.Report, error) {
	d := c.draw()
	if err := c.inject(d, b); err != nil {
		return nil, err
	}
	rep, err := c.Inner.Run(b, tokens)
	if err == nil {
		rep = c.maybeLose(d, rep)
	}
	return rep, err
}

// Prepare forwards to the inner runner's prepared handoff. Staging itself
// is never faulted (faults fire at execution time, like a real launch); a
// nil, nil return tells the server the inner runner has no prepared path.
func (c *ChaosRunner) Prepare(b *batch.Batch, tokens map[int64][]int) (*engine.Prepared, error) {
	if pr, ok := c.Inner.(PreparedRunner); ok {
		return pr.Prepare(b, tokens)
	}
	return nil, nil
}

// RunPrepared implements PreparedRunner with the same per-call fault
// schedule as Run: one draw per engine invocation, in call order.
func (c *ChaosRunner) RunPrepared(p *engine.Prepared) (*engine.Report, error) {
	d := c.draw()
	if err := c.inject(d, p.Batch); err != nil {
		return nil, err
	}
	pr, ok := c.Inner.(PreparedRunner)
	if !ok {
		return nil, fmt.Errorf("chaos: inner runner has no prepared path")
	}
	rep, err := pr.RunPrepared(p)
	if err == nil {
		rep = c.maybeLose(d, rep)
	}
	return rep, err
}

// RunPreparedRefill implements RefillRunner with the same per-call fault
// schedule as Run and RunPrepared: one draw per engine invocation, acted
// out before the engine starts. Mid-run, the hook's early deliveries are
// real — the lose fault can only trim the final report, which the server
// ignores for already-delivered requests.
func (c *ChaosRunner) RunPreparedRefill(p *engine.Prepared, hook engine.RefillHook) (*engine.Report, error) {
	d := c.draw()
	if err := c.inject(d, p.Batch); err != nil {
		return nil, err
	}
	rr, ok := c.Inner.(RefillRunner)
	if !ok {
		return nil, fmt.Errorf("chaos: inner runner has no refill path")
	}
	rep, err := rr.RunPreparedRefill(p, hook)
	if err == nil {
		rep = c.maybeLose(d, rep)
	}
	return rep, err
}

// ParseChaos parses a -chaos flag spec of comma-separated key=value pairs:
//
//	err=0.2,panic=0.05,slow=0.1:50ms,lose=0.02,seed=7
//	killafter=20          — engine dies after 20 calls
//	wedgeafter=20         — engine hangs after 20 calls (until teardown)
//
// Rates are probabilities in [0,1]; slow takes an optional :delay suffix;
// killafter/wedgeafter are positive call counts. The empty spec parses to a
// disabled config.
func ParseChaos(spec string) (ChaosConfig, error) {
	var cfg ChaosConfig
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: malformed term %q (want key=value)", part)
		}
		switch key {
		case "err", "panic", "lose":
			rate, err := parseRate(key, val)
			if err != nil {
				return cfg, err
			}
			switch key {
			case "err":
				cfg.ErrRate = rate
			case "panic":
				cfg.PanicRate = rate
			case "lose":
				cfg.LoseRate = rate
			}
		case "slow":
			rateStr, delayStr, hasDelay := strings.Cut(val, ":")
			rate, err := parseRate(key, rateStr)
			if err != nil {
				return cfg, err
			}
			cfg.SlowRate = rate
			if hasDelay {
				d, err := time.ParseDuration(delayStr)
				if err != nil || d <= 0 {
					return cfg, fmt.Errorf("chaos: bad slow delay %q", delayStr)
				}
				cfg.SlowDelay = d
			}
		case "killafter", "wedgeafter":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return cfg, fmt.Errorf("chaos: %s wants a positive call count, got %q", key, val)
			}
			if key == "killafter" {
				cfg.KillAfter = n
			} else {
				cfg.WedgeAfter = n
			}
		case "seed":
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("chaos: bad seed %q", val)
			}
			cfg.Seed = seed
		default:
			return cfg, fmt.Errorf("chaos: unknown mode %q", key)
		}
	}
	return cfg, nil
}

func parseRate(key, val string) (float64, error) {
	rate, err := strconv.ParseFloat(val, 64)
	if err != nil || rate < 0 || rate > 1 {
		return 0, fmt.Errorf("chaos: %s rate %q not in [0,1]", key, val)
	}
	return rate, nil
}
