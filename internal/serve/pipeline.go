package serve

import (
	"sync"
	"time"

	"tcb/internal/engine"
	"tcb/internal/tensor"
)

// This file is the three-stage serve pipeline (Config.Pipeline): the
// paper's §4.2.2 overlap argument made real. Slot independence under
// ConcatBatching means next-batch loading and memory cleaning need not
// serialize with inference, so the server splits its round into
//
//	stage A (this goroutine):  sweep → schedule → layout → stage tensors
//	stage B (computeStage):    supervised engine execution
//	stage C (cleanupStage):    deliver → requeue → cleaning report → release
//
// connected by capacity-1 channels: while batch t computes, batch t+1 is
// being scheduled and staged and batch t−1 is being delivered and cleaned.
// At most three batches are in flight. Each stage's batches pass through in
// order, every launch visits every stage exactly once, and each buffer
// (queue entries, the Prepared's staged tensors, the Report) is owned by
// exactly one stage at a time — handoff over the channels is the transfer
// of ownership, so prepare never aliases compute. Outputs are bitwise
// identical to the serial loop: concatenation isolation means a request's
// output depends only on its own tokens, never on which batch neighbours
// or pipeline phase surrounded it.
//
// The supervision semantics are unchanged per-stage: stage B runs under the
// same SupervisedRunner (panic capture, watchdog, breaker) as the serial
// loop, stage A consults the breaker before scheduling and admits a single
// half-open probe only when no batch is in flight, and stage C requeues
// failures with the same retry policy — releasing the memory reservation
// before the requeue.
func (s *Server) pipelineLoop() {
	defer close(s.done)
	defer s.clearPrefixCache()
	// Keep cores for the non-compute stages: kernels plan their chunk
	// fan-out around the reservation, so stage B's compute cannot starve
	// stage A/C of the scheduler.
	release := tensor.Reserve(s.cfg.ReserveCores)
	defer release()

	prepCh := make(chan *launch, 1)
	compCh := make(chan *computed, 1)
	var wg sync.WaitGroup
	wg.Add(2)
	go s.computeStage(prepCh, compCh, &wg)
	go s.cleanupStage(compCh, &wg)
	for {
		select {
		case <-s.stop:
			// Stop producing; let in-flight batches finish their stages
			// (bounded by pipeline depth), then fail what is still queued.
			close(prepCh)
			wg.Wait()
			s.failAll(ErrServerClosed)
			return
		default:
		}
		t0 := time.Now()
		l := s.selectBatch()
		d := time.Since(t0)
		s.scheduleNs.Add(d.Nanoseconds())
		if l != nil {
			s.observeStage(l, d, true)
			// Blocking handoff: waits only while stage B still runs the
			// previous batch, which is exactly the overlap window.
			prepCh <- l
			continue
		}
		// Idle: block until a Submit signals work; Poll paces the
		// deadline-expiry sweep, as in the serial loop.
		select {
		case <-s.stop: // handled at the top of the loop
		case <-s.wake:
		case <-time.After(s.cfg.Poll):
		}
	}
}

// computed carries one executed batch from stage B to stage C.
type computed struct {
	l      *launch
	rep    *engine.Report
	err    error
	served time.Time
}

// computeStage is stage B: execute each staged batch under supervision.
func (s *Server) computeStage(in <-chan *launch, out chan<- *computed, wg *sync.WaitGroup) {
	defer wg.Done()
	defer close(out)
	for l := range in {
		t0 := time.Now()
		rep, err := s.executeBatch(l)
		served := time.Now()
		s.computeNs.Add(served.Sub(t0).Nanoseconds())
		out <- &computed{l: l, rep: rep, err: err, served: served}
	}
}

// cleanupStage is stage C: deliver, requeue, memory-clean, release.
func (s *Server) cleanupStage(in <-chan *computed, wg *sync.WaitGroup) {
	defer wg.Done()
	for c := range in {
		t0 := time.Now()
		s.completeBatch(c.l, c.rep, c.err, c.served)
		d := time.Since(t0)
		s.cleanupNs.Add(d.Nanoseconds())
		s.observeStage(c.l, d, false)
	}
}

// observeStage checks a non-compute stage's wall time against the cost
// model's prediction (Config.PredictStages); overruns are only counted —
// the stage already ran — but they surface a mis-calibrated model in Stats
// the way watchdog kills do for compute.
func (s *Server) observeStage(l *launch, took time.Duration, prepare bool) {
	if s.cfg.PredictStages == nil || l.b == nil {
		return
	}
	prepBudget, cleanBudget := s.cfg.PredictStages(l.b)
	budget := cleanBudget
	if prepare {
		budget = prepBudget
	}
	if budget <= 0 {
		return
	}
	if took > time.Duration(float64(budget)*s.cfg.TimeoutSlack) {
		s.stageOverruns.Add(1)
	}
}
