package serve

import (
	"fmt"
	"testing"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/model"
	"tcb/internal/rng"
	"tcb/internal/sched"
)

// refillServer builds a server over a fused-cache engine (the refill path's
// requirement) with length-proportional output caps so segments finish at
// staggered steps.
func refillServer(t *testing.T, refill bool, b int, extra Config) (*Server, *engine.Engine) {
	t.Helper()
	cfg := model.Config{
		VocabSize: testVocab, DModel: 32, NumHeads: 4, DFF: 64,
		EncLayers: 1, DecLayers: 1, MaxLen: 256, Eps: 1e-5,
	}
	e := engine.New(model.New(cfg, 5), 8)
	e.UseCache = true
	e.OutputCap = func(inputLen int) int { return inputLen }
	c := extra
	c.Scheduler = sched.NewDAS()
	c.Scheme = batch.Concat
	c.B, c.L = b, 64
	c.Poll = 200 * time.Microsecond
	c.Refill = refill
	if c.Engine == nil {
		c.Engine = e
	}
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	return s, e
}

// Serial equivalence: with nothing queued behind the launch, a
// refill-enabled server must produce exactly the outputs of a no-refill one
// — zero admissions, identical tokens. The empty-queue refill loop performs
// the same removals the fused path's skip-finished gather performs
// implicitly.
func TestRefillEmptyQueueMatchesNoRefill(t *testing.T) {
	run := func(refill bool) ([][]int, Stats) {
		s, _ := refillServer(t, refill, 4, Config{})
		src := rng.New(90)
		var chans []<-chan Response
		for i := 0; i < 4; i++ {
			ch, err := s.Submit(randTokens(src, 2+2*i), 10*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			chans = append(chans, ch)
		}
		s.Start()
		s.Drain()
		outs := make([][]int, len(chans))
		for i, ch := range chans {
			resp := <-ch
			if resp.Err != nil {
				t.Fatalf("request %d: %v", i, resp.Err)
			}
			outs[i] = resp.Output
		}
		return outs, s.Stats()
	}
	base, baseStats := run(false)
	got, st := run(true)
	for i := range base {
		if len(base[i]) != len(got[i]) {
			t.Fatalf("request %d: no-refill %v vs refill %v", i, base[i], got[i])
		}
		for j := range base[i] {
			if base[i][j] != got[i][j] {
				t.Fatalf("request %d token %d differs", i, j)
			}
		}
	}
	if st.RefillsAdmitted != 0 {
		t.Fatalf("admitted %d with an empty queue", st.RefillsAdmitted)
	}
	if !st.Refilling || baseStats.Refilling {
		t.Fatalf("Refilling flags wrong: refill=%v base=%v", st.Refilling, baseStats.Refilling)
	}
}

// A backlog behind a small batch must flow into freed slots mid-flight:
// admissions happen, early retires happen, and every request still gets the
// output it would produce standalone.
func TestRefillBacklogAdmitsAndMatchesSingles(t *testing.T) {
	s, e := refillServer(t, true, 1, Config{QueueCap: 64})
	src := rng.New(91)
	type sub struct {
		tokens []int
		ch     <-chan Response
	}
	var subs []sub
	// Enough work to outlive the first launch several times over (the row
	// holds 64 tokens), so the queue still has candidates when slots free.
	for i := 0; i < 48; i++ {
		n := 2
		if i%4 == 0 {
			n = 8 // long tail pins the batch open; shorts refill behind it
		}
		toks := randTokens(src, n)
		ch, err := s.Submit(toks, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub{toks, ch})
	}
	s.Start()
	s.Drain()
	for i, sb := range subs {
		resp := <-sb.ch
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
		solo, err := e.RunSingle(1000+int64(i), sb.tokens)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Output) != len(solo.Output) {
			t.Fatalf("request %d: served %v vs solo %v", i, resp.Output, solo.Output)
		}
		for j := range resp.Output {
			if resp.Output[j] != solo.Output[j] {
				t.Fatalf("request %d token %d differs", i, j)
			}
		}
	}
	st := s.Stats()
	if st.RefillsAdmitted == 0 {
		t.Fatal("backlog behind a B=1 server must refill mid-flight")
	}
	if st.SegmentsRetiredEarly == 0 {
		t.Fatal("staggered caps must retire segments early")
	}
	if st.BatchOccupancyPct <= 0 || st.BatchOccupancyPct > 100 {
		t.Fatalf("occupancy %.1f%% out of range", st.BatchOccupancyPct)
	}
	if st.Served != int64(len(subs)) {
		t.Fatalf("served %d of %d", st.Served, len(subs))
	}
}

// Seeded chaos with refill on: every request must resolve exactly once —
// an early retire and a later retry must never both answer the same
// capacity-1 response channel (a double send would wedge the serve loop and
// hang Drain). Runs under -race in CI.
func TestRefillChaosDeliversExactlyOnce(t *testing.T) {
	cfg := model.Config{
		VocabSize: testVocab, DModel: 32, NumHeads: 4, DFF: 64,
		EncLayers: 1, DecLayers: 1, MaxLen: 256, Eps: 1e-5,
	}
	e := engine.New(model.New(cfg, 5), 8)
	e.UseCache = true
	e.OutputCap = func(inputLen int) int { return inputLen }
	wrapped := NewChaosRunner(e, ChaosConfig{
		ErrRate: 0.2, PanicRate: 0.05, LoseRate: 0.1, Seed: 9,
	})
	srv, err := New(Config{
		Engine: wrapped, Scheduler: sched.NewDAS(), Scheme: batch.Concat,
		B: 2, L: 64, Poll: 200 * time.Microsecond,
		QueueCap:         64,
		Retry:            RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond},
		BreakerThreshold: -1,
		Refill:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(92)
	var chans []<-chan Response
	for i := 0; i < 24; i++ {
		ch, err := srv.Submit(randTokens(src, src.IntRange(2, 8)), 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	srv.Start()
	srv.Drain()
	ok, failed := 0, 0
	for i, ch := range chans {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				failed++
			} else {
				ok++
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("request %d never resolved", i)
		}
	}
	if ok+failed != len(chans) {
		t.Fatalf("resolved %d of %d", ok+failed, len(chans))
	}
	if ok == 0 {
		t.Fatal("chaos run served nothing")
	}
	st := srv.Stats()
	if got := st.Served + st.Failed + st.Missed; got != int64(len(chans)) {
		t.Fatalf("accounting: served+failed+missed = %d, want %d (%+v)", got, len(chans), st)
	}
}

// Satellite regression: a request bounced back to the queue — by a refill
// Reject or a failed batch — keeps its original arrival time and attempt
// counters, so DAS utility ordering and retry caps survive the round trip
// when it is later admitted again via refill.
func TestRefillRequeuePreservesArrivalAndAttempts(t *testing.T) {
	s, _ := refillServer(t, true, 2, Config{})
	ch, err := s.Submit([]int{5, 6, 7}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	_ = ch
	s.mu.Lock()
	if len(s.queue) != 1 {
		s.mu.Unlock()
		t.Fatal("expected one queued request")
	}
	var p *pending
	for _, q := range s.queue {
		p = q
	}
	p.attempts = 1 // simulate one prior failed batch
	arrival := p.req.Arrival
	s.mu.Unlock()

	hook := newRefillHook(s, nil)
	adms := hook.Refill(10)
	if len(adms) != 1 || adms[0].ID != p.req.ID {
		t.Fatalf("Refill = %v, want the queued request", adms)
	}
	if s.QueueLen() != 0 {
		t.Fatal("admission must leave the queue")
	}

	// Reject: back in the queue, parked for a Poll, nothing charged.
	hook.Reject(adms[0], fmt.Errorf("no room"))
	s.mu.Lock()
	q := s.queue[p.req.ID]
	s.mu.Unlock()
	if q != p {
		t.Fatal("Reject must requeue the same pending entry")
	}
	if p.req.Arrival != arrival {
		t.Fatalf("arrival changed: %v -> %v", arrival, p.req.Arrival)
	}
	if p.attempts != 1 {
		t.Fatalf("Reject charged an attempt: %d", p.attempts)
	}
	if p.notBefore <= 0 {
		t.Fatal("Reject must park the request")
	}

	// A failed batch charges exactly one attempt and still keeps arrival.
	s.handleBatchFailure([]*pending{p}, fmt.Errorf("engine down"), time.Now())
	if p.attempts != 2 {
		t.Fatalf("batch failure must charge one attempt, got %d", p.attempts)
	}
	if p.req.Arrival != arrival {
		t.Fatal("batch failure changed the arrival time")
	}

	// Later re-admission via refill sees the same identity: clear the
	// backoff and pull it again.
	s.mu.Lock()
	p.notBefore = 0
	s.mu.Unlock()
	hook2 := newRefillHook(s, nil)
	adms = hook2.Refill(10)
	if len(adms) != 1 || adms[0].ID != p.req.ID {
		t.Fatalf("re-admission failed: %v", adms)
	}
	if p.req.Arrival != arrival || p.attempts != 2 {
		t.Fatalf("re-admitted request lost state: arrival %v attempts %d", p.req.Arrival, p.attempts)
	}
}

// A closed hook must refuse everything: deliveries, admissions, and a raced
// Refill must put its draw back in the queue.
func TestRefillHookClosedIsInert(t *testing.T) {
	s, _ := refillServer(t, true, 2, Config{})
	if _, err := s.Submit([]int{5, 6}, time.Hour); err != nil {
		t.Fatal(err)
	}
	hook := newRefillHook(s, nil)
	hook.close()
	if adms := hook.Refill(10); adms != nil {
		t.Fatalf("closed hook admitted %v", adms)
	}
	if s.QueueLen() != 1 {
		t.Fatal("closed hook must leave the queue untouched")
	}
	// Retire on a closed hook is a no-op (no delivery, no counter).
	hook.Retire(engine.Result{ID: 1, Output: []int{9}})
	if st := s.Stats(); st.Served != 0 {
		t.Fatalf("closed hook delivered: %+v", st)
	}
}
