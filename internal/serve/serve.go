// Package serve is the online serving front of TCB (Fig. 3): a goroutine
// pipeline that accepts requests with deadlines, queues them, invokes the
// pluggable scheduler whenever the engine is idle, lays the decision out
// under the configured batching scheme, and runs it on the real Go
// transformer engine, delivering each response on its own channel.
//
// The engine runs under a supervision stack (supervise.go): panics become
// errors, a hung batch is killed by a cost-model-derived watchdog, failed
// batches requeue their unexpired requests with capped exponential backoff,
// and a circuit breaker degrades the server gracefully while the engine is
// persistently down. chaos.go provides the deterministic fault injector
// that exercises all of it.
//
// This is the component a downstream user embeds; the discrete-event
// simulator (package sim) exists only because paper-scale arrival rates
// outrun a CPU transformer.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/fair"
	"tcb/internal/prefixcache"
	"tcb/internal/sched"
	"tcb/internal/tensor"
)

// Runner abstracts the inference engine so tests can inject failures and
// deployments can substitute backends. *engine.Engine implements it.
type Runner interface {
	Run(b *batch.Batch, tokens map[int64][]int) (*engine.Report, error)
}

// PreparedRunner is a Runner with a prepared-batch handoff: Prepare stages
// a batch (validation, memory reservation, host-side tensor staging) and
// RunPrepared executes it, so the server can overlap staging and cleanup
// with a neighbouring batch's compute. *engine.Engine implements it; a
// Prepare that returns (nil, nil) tells the server to fall back to Run for
// that batch (wrappers around a plain Runner do this).
type PreparedRunner interface {
	Runner
	Prepare(b *batch.Batch, tokens map[int64][]int) (*engine.Prepared, error)
	RunPrepared(p *engine.Prepared) (*engine.Report, error)
}

// RefillRunner is a PreparedRunner whose launches are persistent execution
// contexts: RunPreparedRefill delivers finished requests through the hook
// the moment they retire and admits queued requests into the freed capacity
// between decode steps. *engine.Engine implements it; ChaosRunner forwards
// it with the usual fault schedule.
type RefillRunner interface {
	PreparedRunner
	RunPreparedRefill(p *engine.Prepared, hook engine.RefillHook) (*engine.Report, error)
}

// RetryPolicy bounds how failed batches are retried. A request consumes one
// attempt per failed batch it was part of; when its attempts are exhausted
// (or its deadline passes first) it fails with the last engine error.
type RetryPolicy struct {
	// MaxAttempts is the total number of engine runs a request may be part
	// of. 1 disables retries (a failed batch fails all its requests — the
	// pre-supervision behaviour); 0 means the default of 3.
	MaxAttempts int
	// Backoff is the base delay before a requeued request becomes
	// schedulable again; attempt k waits Backoff·2^(k-1), capped at
	// MaxBackoff. Zero means the Poll interval.
	Backoff time.Duration
	// MaxBackoff caps the exponential backoff. Zero means 64×Backoff.
	MaxBackoff time.Duration
}

// Config describes a server.
type Config struct {
	Engine    Runner
	Scheduler sched.Scheduler
	Scheme    batch.Scheme
	B, L      int
	// SlotSize fixes the slot length for batch.SlottedConcat when the
	// scheduler's decision does not carry one (SlottedDAS does; the fixed
	// baselines do not). Submissions longer than the effective slot size
	// are rejected up front — they could never be laid out. Zero means
	// whole-row slots (L).
	SlotSize int
	// QueueCap bounds the submission queue; Submit fails fast beyond it.
	QueueCap int
	// OpenQueueCap is the reduced queue bound enforced while the circuit
	// breaker is open: submissions beyond it are refused with
	// ErrBreakerOpen and already-queued lowest-utility requests beyond it
	// are shed, instead of accepting work a down engine will drop anyway.
	// Zero means QueueCap/8 (at least 1).
	OpenQueueCap int
	// Poll bounds how long the scheduler loop waits between rounds when no
	// wakeup arrives. Submissions wake the loop immediately through a
	// channel, so Poll only paces the deadline-expiry sweep of requests
	// already queued; it can be generous without hurting latency.
	Poll time.Duration

	// Retry governs requeue-on-failure; see RetryPolicy.
	Retry RetryPolicy
	// BreakerThreshold is the consecutive-failure count K that trips the
	// circuit breaker. 0 means the default of 5; negative disables the
	// breaker entirely.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before admitting a
	// half-open probe. Zero means 250ms.
	BreakerCooldown time.Duration
	// PredictBatch, when non-nil, predicts a batch's execution latency
	// (e.g. cost.Params.PredictBatchDuration); the supervision watchdog
	// kills batches exceeding the prediction times TimeoutSlack. Nil
	// disables the watchdog.
	PredictBatch func(b *batch.Batch) time.Duration
	// TimeoutSlack multiplies the predicted latency into the watchdog
	// budget. Zero means 8.
	TimeoutSlack float64
	// MinBatchTimeout floors the watchdog budget, protecting against an
	// optimistic cost model. Zero means 10×Poll.
	MinBatchTimeout time.Duration
	// DrainTimeout bounds Drain: past it, remaining queued requests fail
	// with ErrServerClosed and Drain returns without waiting for an
	// in-flight batch that may never come back. Zero preserves the
	// unbounded behaviour.
	DrainTimeout time.Duration

	// Pipeline enables the three-stage serve pipeline (pipeline.go): stage
	// A schedules, lays out and stages batch t+1 while stage B computes
	// batch t and stage C delivers, requeues and memory-cleans batch t−1.
	// Outputs are identical to the serial loop (concat isolation: each
	// request's output depends only on its own tokens); only overlap
	// changes. Requires an Engine implementing PreparedRunner for full
	// overlap; plain Runners still work, stage A just stops at layout.
	Pipeline bool
	// ReserveCores is how many logical cores the pipeline withholds from
	// the tensor kernel worker plan (tensor.Reserve) so its non-compute
	// stages keep running while compute saturates the rest. Zero defaults
	// to 1 when Pipeline is set; ignored otherwise.
	ReserveCores int
	// PredictStages, when non-nil, predicts a batch's prepare and cleanup
	// stage durations (e.g. cost.Params.PredictStageDurations); a pipelined
	// stage exceeding its prediction × TimeoutSlack counts as a stage
	// overrun in Stats. The compute stage is covered by PredictBatch and
	// the supervision watchdog instead.
	PredictStages func(b *batch.Batch) (prepare, cleanup time.Duration)

	// Refill enables continuous batching: a launched batch becomes a
	// persistent execution context — finished requests are delivered and
	// memory-cleaned the moment they retire, and queued requests whose
	// lengths fit the freed token capacity are admitted into the running
	// batch between decode steps (utility-ordered, backoff- and
	// deadline-respecting, like the scheduler's own admission). Requires an
	// Engine implementing RefillRunner; otherwise batches run the plain
	// path unchanged. Works in both the serial loop and the pipeline.
	// Half-open breaker probes never refill — a probe must stay minimal.
	Refill bool
	// PredictAdmission, when non-nil, predicts the extra wall-clock budget
	// one refill admission of the given input length adds to the running
	// batch's watchdog (e.g. cost.Params.PredictAdmissionDuration scaled by
	// TimeoutSlack). Nil derives it from PredictBatch over a one-item batch,
	// so the watchdog keeps tracking the batch's composition as it changes.
	PredictAdmission func(lenTokens int) time.Duration

	// Fair enables the multi-tenant fairness layer (package fair): requests
	// are stamped with WFQ virtual finish times at submission, the scheduler
	// draws its candidates in WFQ order truncated to FairWindow, and
	// breaker-open shedding evicts within the tenant most over its weighted
	// share instead of globally. Off (the default) keeps the scheduler's
	// global candidate pool and global lowest-utility shedding exactly as
	// before — the escape hatch the fairness tests pin down.
	Fair bool
	// FairWindow caps how many WFQ-ordered candidates the scheduler sees per
	// round when Fair is set. The window is the isolation lever: DAS itself
	// is tenant-blind, so a flooding tenant is contained by never letting its
	// excess into the candidate set ahead of other tenants' heads. Zero means
	// 4×B (at least 16). Ignored when Fair is off.
	FairWindow int
	// Registry resolves tenant WFQ weights and bucket provisioning. Nil
	// means every tenant weighs 1 (buckets unlimited).
	Registry *fair.Registry
	// Classes maps SLO class names (SubmitOptions.Class) to SLA weights and
	// deadline defaults. Nil means fair.DefaultClasses.
	Classes *fair.ClassSet
	// Limiter is the token-bucket admission front. The server itself never
	// consults it — enforcement lives at the HTTP boundary so internal
	// resubmissions (cluster failover, refill requeues) are not double-
	// charged — but it is carried here so Stats can fold its per-tenant
	// throttle counts into the tenant table.
	Limiter *fair.Limiter
	// PredictRequestCost predicts one request's service demand from its
	// token length for WFQ stamping (e.g. a cost.Params-derived seconds
	// estimate). Nil means raw token count — only ratios matter to WFQ.
	PredictRequestCost func(lenTokens int) float64

	// PrefixCache enables shared-prompt prefix sharing: a submission that
	// declares a prefix (SubmitOptions.PrefixLen) whose tokens are resident
	// is pinned at admission and occupies only its uncached suffix in the
	// batch; cold declared prefixes are frozen by the engine on completion
	// for later submissions to hit. The SAME cache must be wired into the
	// engine (engine.Engine.PrefixCache) — the server pins and accounts, the
	// engine reads and inserts. The server owns the cache's lifecycle: it is
	// cleared when the serving loop exits so device accounting balances.
	// Requires an engine with the KV-cached decoder (engine.Config.UseCache).
	// Nil disables prefix sharing; submissions may still declare PrefixLen
	// (they encode split but nothing is frozen or reused).
	PrefixCache *prefixcache.Cache
}

// Stats is a point-in-time snapshot of server counters.
type Stats struct {
	Submitted int64 // accepted submissions
	Served    int64 // responses delivered successfully
	Missed    int64 // deadline expiries in the queue
	Failed    int64 // engine or internal errors (after retries)
	Queued    int   // requests currently waiting
	InFlight  int   // batches between selection and completion
	Batches   int64 // engine launches (probes included)

	Retried      int64  // requeues of requests from failed batches
	Panics       int64  // engine panics converted to errors
	Timeouts     int64  // batches killed by the watchdog
	Shed         int64  // requests shed while the breaker was open
	BreakerTrips int64  // times the breaker opened
	BreakerState string // "closed", "open", "half-open" or "disabled"

	// Per-stage wall-clock totals, replacing the old lumped queue-wait +
	// compute number: ScheduleNs covers the deadline sweep, scheduling,
	// layout and host-side staging (stage A); ComputeNs the supervised
	// engine execution (stage B); CleanupNs delivery, requeueing, the
	// memory-cleaning report and reservation release (stage C). Under the
	// pipeline the three accrue concurrently, so their sum can exceed
	// wall time — that surplus is exactly the hidden latency.
	ScheduleNs int64
	ComputeNs  int64
	CleanupNs  int64
	// StageOverruns counts pipelined prepare/cleanup stage executions that
	// exceeded their PredictStages budget × TimeoutSlack.
	StageOverruns int64
	// Pipelined reports whether the three-stage pipeline is active.
	Pipelined bool

	// Continuous-batching counters (Config.Refill): RefillsAdmitted counts
	// requests admitted into a running batch mid-flight;
	// SegmentsRetiredEarly counts requests delivered and memory-cleaned
	// while their batch was still decoding; SlotIdleSteps accumulates
	// per-step retired-but-unfilled slots; BatchOccupancyPct is the mean
	// live-token occupancy of refill-enabled launches across decode steps.
	RefillsAdmitted      int64
	SegmentsRetiredEarly int64
	SlotIdleSteps        int64
	BatchOccupancyPct    float64
	// Refilling reports whether continuous batching is active (Config.Refill
	// set and the engine supports the refill path).
	Refilling bool

	// Kernels snapshots the process-wide GEMM dispatch counters: which
	// kernel paths (scalar / wide float32, int8 quantized) this replica's
	// FLOPs actually flowed through. Process-wide, not per-server — in a
	// multi-replica cluster every replica reports the same process totals.
	Kernels tensor.KernelCounts

	// Prefix snapshots the prefix cache's counters (hits, misses, tokens
	// saved, resident bytes); zero when prefix sharing is off.
	Prefix prefixcache.Stats
	// PrefixEnabled reports whether a prefix cache is attached.
	PrefixEnabled bool

	// Tenants breaks terminal outcomes down by tenant (untagged traffic is
	// the "default" tenant); nil until the first submission. Throttled is
	// folded in from Config.Limiter when one is attached.
	Tenants map[string]TenantStats
	// JainGoodput is Jain's fairness index over per-tenant delivered counts
	// (1 = perfectly even, 1/n = one tenant taking everything).
	JainGoodput float64
	// ClassP99MS is the per-SLO-class P99 queue-to-delivery latency in
	// milliseconds over a bounded recent window; nil until a classed request
	// is delivered.
	ClassP99MS map[string]float64
	// FairEnabled reports whether the WFQ fairness layer is active.
	FairEnabled bool
}

// Response is the outcome of one request.
type Response struct {
	ID     int64
	Output []int
	Err    error
	// Queued and Served bracket the request's life inside the server.
	Queued, Served time.Time
}

// ErrDeadlineExceeded marks requests that expired in the queue.
var ErrDeadlineExceeded = errors.New("serve: deadline exceeded before scheduling")

// ErrServerClosed marks requests rejected because the server stopped.
var ErrServerClosed = errors.New("serve: server closed")

// ErrQueueFull marks submissions beyond QueueCap.
var ErrQueueFull = errors.New("serve: queue full")

// TooLongError rejects submissions that exceed the row capacity — or, under
// batch.SlottedConcat with a fixed slot size, the slot capacity: such a
// request would be accepted and then sit unschedulable until its deadline.
type TooLongError struct {
	Len   int  // submitted token count
	Limit int  // effective capacity it exceeded
	Slot  bool // true when the limit is the slot size, not the row
}

func (e *TooLongError) Error() string {
	what := "row capacity"
	if e.Slot {
		what = "slot size"
	}
	return fmt.Sprintf("serve: request of %d tokens exceeds %s %d", e.Len, what, e.Limit)
}

type pending struct {
	req    *sched.Request
	tokens []int
	out    chan Response
	queued time.Time
	// attempts counts failed engine runs this request was part of;
	// notBefore gates rescheduling until its backoff elapses.
	attempts  int
	notBefore float64
	// class is the request's SLO class name ("" = unclassed); vfinish its
	// WFQ virtual finish stamp (meaningful only when the server is fair);
	// stampDone records that the stamp was settled (dispatched or
	// abandoned) so requeues cannot settle it twice.
	class     string
	vfinish   float64
	stampDone bool
	// prefixLen is the declared shared-prefix boundary (0 = none);
	// cachedLen is 0 (cold) or prefixLen (prefix-cache hit — req.Len then
	// counts the uncached suffix only, and prefix pins the cache entry from
	// admission until the request's terminal outcome). tokens always holds
	// the FULL sequence either way.
	prefixLen int
	cachedLen int
	prefix    prefixcache.Handle
}

// Server is a running TCB serving instance.
type Server struct {
	cfg     Config
	runner  *SupervisedRunner
	breaker *Breaker
	// preparer is cfg.Engine's prepared-batch handoff, when it has one;
	// nil servers run every batch through the plain Run path.
	preparer PreparedRunner
	// refiller is cfg.Engine's refill path, set only when Config.Refill is
	// on and the engine supports it; nil keeps every launch on the plain
	// prepared path.
	refiller RefillRunner
	mu       sync.Mutex
	queue    map[int64]*pending
	next     int64
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	// drainOnce/drainDone make Drain idempotent: the first caller runs the
	// drain sequence, every later or concurrent caller waits on the same
	// completion (and the same DrainTimeout deadline).
	drainOnce sync.Once
	drainDone chan struct{}
	// wake is a capacity-1 edge trigger: Submit (and batch completion, for
	// Drain) signal it so the loop reacts immediately instead of sleeping
	// out the Poll interval. Poll remains only as a deadline-expiry
	// fallback.
	wake chan struct{}
	base time.Time

	// wfq stamps and orders requests across tenants when Config.Fair is on;
	// nil otherwise (the global-pool escape hatch). classes is the resolved
	// SLO class set (never nil).
	wfq     *fair.WFQ
	classes *fair.ClassSet
	// tenantStats and classLat back the per-tenant / per-class Stats
	// breakdown (guarded by mu).
	tenantStats map[string]*tenantCounter
	classLat    map[string]*latRing

	submitted, served, missed, failed, batches int64
	retried, panics, timeouts, shed            int64
	// inFlight counts batches between selection and completion; Drain
	// waits for it to reach zero (under the pipeline the queue can be
	// empty while up to three batches are still in the stages).
	inFlight int
	draining bool

	// Per-stage wall-clock accumulators; atomic because the pipeline's
	// three stage goroutines update them concurrently.
	scheduleNs, computeNs, cleanupNs atomic.Int64
	stageOverruns                    atomic.Int64

	// Continuous-batching accumulators, folded in from each launch's
	// RefillReport; atomic because the pipeline's cleanup stage and Stats
	// readers race.
	refillsAdmitted, segsRetiredEarly, slotIdleSteps atomic.Int64
	liveTokenSteps, capTokenSteps                    atomic.Int64
}

// launch is one scheduled batch moving through the serve stages: selected
// and laid out in stage A, executed in stage B, delivered and cleaned in
// stage C.
type launch struct {
	selected []*pending
	tokens   map[int64][]int
	b        *batch.Batch
	ep       *engine.Prepared // non-nil on the prepared handoff path
	hook     *refillHook      // non-nil on refill-enabled launches
}

// New validates cfg and returns an unstarted server.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil || cfg.Scheduler == nil {
		return nil, fmt.Errorf("serve: engine and scheduler are required")
	}
	if cfg.B <= 0 || cfg.L <= 0 {
		return nil, fmt.Errorf("serve: B=%d L=%d must be positive", cfg.B, cfg.L)
	}
	if cfg.SlotSize < 0 || cfg.SlotSize > cfg.L {
		return nil, fmt.Errorf("serve: SlotSize=%d must be in [0, L=%d]", cfg.SlotSize, cfg.L)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	if cfg.OpenQueueCap <= 0 {
		cfg.OpenQueueCap = cfg.QueueCap / 8
		if cfg.OpenQueueCap < 1 {
			cfg.OpenQueueCap = 1
		}
	}
	if cfg.Poll <= 0 {
		cfg.Poll = time.Millisecond
	}
	if cfg.Retry.MaxAttempts <= 0 {
		cfg.Retry.MaxAttempts = 3
	}
	if cfg.Retry.Backoff <= 0 {
		cfg.Retry.Backoff = cfg.Poll
	}
	if cfg.Retry.MaxBackoff <= 0 {
		cfg.Retry.MaxBackoff = 64 * cfg.Retry.Backoff
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 250 * time.Millisecond
	}
	if cfg.TimeoutSlack <= 0 {
		cfg.TimeoutSlack = 8
	}
	if cfg.MinBatchTimeout <= 0 {
		cfg.MinBatchTimeout = 10 * cfg.Poll
	}
	if cfg.ReserveCores < 0 {
		return nil, fmt.Errorf("serve: ReserveCores=%d must be non-negative", cfg.ReserveCores)
	}
	if cfg.Pipeline && cfg.ReserveCores == 0 {
		cfg.ReserveCores = 1
	}
	if cfg.Fair && cfg.FairWindow <= 0 {
		cfg.FairWindow = 4 * cfg.B
		if cfg.FairWindow < 16 {
			cfg.FairWindow = 16
		}
	}
	if cfg.Classes == nil {
		cfg.Classes = fair.DefaultClasses()
	}

	s := &Server{
		cfg:         cfg,
		queue:       make(map[int64]*pending),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		drainDone:   make(chan struct{}),
		wake:        make(chan struct{}, 1),
		base:        time.Now(),
		classes:     cfg.Classes,
		tenantStats: make(map[string]*tenantCounter),
		classLat:    make(map[string]*latRing),
	}
	if cfg.Fair {
		var weight func(string) float64
		if cfg.Registry != nil {
			weight = cfg.Registry.Weight
		}
		s.wfq = fair.NewWFQ(cfg.PredictRequestCost, weight)
	}
	if cfg.BreakerThreshold > 0 {
		s.breaker = NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	var timeout func(*batch.Batch) time.Duration
	if cfg.PredictBatch != nil {
		timeout = func(b *batch.Batch) time.Duration {
			d := time.Duration(float64(cfg.PredictBatch(b)) * cfg.TimeoutSlack)
			if d < cfg.MinBatchTimeout {
				d = cfg.MinBatchTimeout
			}
			return d
		}
	}
	s.runner = &SupervisedRunner{Inner: cfg.Engine, Timeout: timeout, Breaker: s.breaker}
	s.preparer, _ = cfg.Engine.(PreparedRunner)
	if cfg.Refill {
		s.refiller, _ = cfg.Engine.(RefillRunner)
	}
	return s, nil
}

// Start launches the scheduling loop (or the three-stage pipeline).
func (s *Server) Start() {
	if s.cfg.Pipeline {
		go s.pipelineLoop()
		return
	}
	go s.loop()
}

// Stop shuts the server down; queued requests fail with ErrServerClosed.
// It blocks until the loop exits. Safe to call more than once and
// concurrently with Drain.
func (s *Server) Stop() {
	s.signalStop()
	<-s.done
}

func (s *Server) signalStop() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// Drain stops accepting new submissions, serves everything already queued
// (or lets it miss its deadline), then shuts down. With a DrainTimeout
// configured, a queue that does not empty in time — a wedged engine, an
// open breaker — is failed with ErrServerClosed and Drain returns without
// waiting for an in-flight batch that may never come back.
//
// Drain is idempotent and safe to call concurrently: the first caller runs
// the drain sequence; every later caller (including callers racing the
// first) waits on the same completion — and the same DrainTimeout deadline,
// started by the first call — instead of racing the shutdown.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		go func() {
			defer close(s.drainDone)
			s.drainLoop()
		}()
	})
	<-s.drainDone
}

// drainLoop is the single drain execution behind Drain's once-gate.
func (s *Server) drainLoop() {
	var deadline <-chan time.Time
	if s.cfg.DrainTimeout > 0 {
		t := time.NewTimer(s.cfg.DrainTimeout)
		defer t.Stop()
		deadline = t.C
	}
	for {
		s.mu.Lock()
		// Under the pipeline the queue can be empty while batches are
		// still moving through the stages; wait for those too.
		empty := len(s.queue) == 0 && s.inFlight == 0
		s.mu.Unlock()
		if empty {
			break
		}
		// Wait for the loop to report progress (a finished batch or expiry
		// sweep notifies wake); Poll bounds the wait in case a wakeup was
		// already consumed.
		select {
		case <-s.wake:
		case <-time.After(s.cfg.Poll):
		case <-s.done:
			// Stopped out from under the drain (a concurrent Stop, or a
			// supervisor tearing the server down): the loop's exit failAll
			// already answered the queue; sweep anything that slipped in
			// between and finish without waiting for in-flight work that
			// can no longer complete.
			s.failAll(ErrServerClosed)
			return
		case <-deadline:
			s.failAll(ErrServerClosed)
			s.signalStop()
			return
		}
	}
	s.Stop()
}

// SubmitOptions carries a submission's identity beyond its tokens and
// deadline. The zero value is an untagged, unclassed request — exactly what
// the plain Submit produces.
type SubmitOptions struct {
	// Tenant names who is submitting ("" = the default tenant). With
	// Config.Fair set it determines the request's WFQ queue and shed group.
	Tenant string
	// Class is the request's SLO class ("" = unclassed): its weight feeds
	// sched.Request.Utility and, when the deadline argument is <= 0, its
	// deadline default applies.
	Class string
	// PrefixLen declares that the request's first PrefixLen tokens are a
	// shared prompt prefix (0 = none; must leave a non-empty suffix). With
	// Config.PrefixCache set, a resident prefix is pinned at admission and
	// the request occupies only its suffix in the batch; a cold prefix is
	// frozen by the engine on completion for later submissions. Outputs are
	// identical either way — only the work changes.
	PrefixLen int
}

// Submit enqueues a request that must be scheduled within the given
// deadline from now. The response arrives on the returned channel exactly
// once.
func (s *Server) Submit(tokens []int, deadline time.Duration) (<-chan Response, error) {
	return s.SubmitOpts(tokens, deadline, SubmitOptions{})
}

// SubmitOpts is Submit with tenant identity, an SLO class and a declared
// shared prefix attached.
func (s *Server) SubmitOpts(tokens []int, deadline time.Duration, opt SubmitOptions) (<-chan Response, error) {
	if len(tokens) == 0 {
		return nil, fmt.Errorf("serve: empty request")
	}
	if opt.PrefixLen < 0 || opt.PrefixLen >= len(tokens) {
		return nil, fmt.Errorf("serve: declared prefix of %d tokens leaves no suffix in a %d-token request", opt.PrefixLen, len(tokens))
	}
	// Resolve the prefix before the capacity checks: a hit occupies only its
	// uncached suffix, so that is the length that must fit. The pin taken
	// here is held until the request's terminal outcome, so the entry cannot
	// be evicted under an in-flight request.
	var pin prefixcache.Handle
	cachedLen := 0
	if opt.PrefixLen > 0 && s.cfg.PrefixCache != nil {
		if pin = s.cfg.PrefixCache.Acquire(tokens, opt.PrefixLen); pin.Valid() {
			cachedLen = opt.PrefixLen
		}
	}
	reject := func(err error) (<-chan Response, error) {
		pin.Release()
		return nil, err
	}
	resident := len(tokens) - cachedLen
	if resident > s.cfg.L {
		return reject(&TooLongError{Len: resident, Limit: s.cfg.L})
	}
	if s.cfg.Scheme == batch.SlottedConcat && s.cfg.SlotSize > 0 && resident > s.cfg.SlotSize {
		return reject(&TooLongError{Len: resident, Limit: s.cfg.SlotSize, Slot: true})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.stop:
		return reject(ErrServerClosed)
	default:
	}
	if s.draining {
		return reject(ErrServerClosed)
	}
	if len(s.queue) >= s.cfg.QueueCap {
		return reject(ErrQueueFull)
	}
	if s.breaker != nil && s.breaker.State() == BreakerOpen && len(s.queue) >= s.cfg.OpenQueueCap {
		return reject(ErrBreakerOpen)
	}
	var weight float64
	if opt.Class != "" {
		cls := s.classes.Lookup(opt.Class)
		weight = cls.Weight
		if deadline <= 0 {
			deadline = cls.Deadline
		}
	}
	// The scheduler sees the resident length — on a hit, packing and utility
	// already account for the work the cache saves. The request-level prefix
	// declaration survives on the pending (and, cold, on the request) so the
	// layout can rebuild the item's split.
	reqPrefix := opt.PrefixLen
	if cachedLen > 0 {
		reqPrefix = 0
	}
	s.next++
	id := s.next
	now := s.clock()
	p := &pending{
		req: &sched.Request{
			ID:        id,
			Arrival:   now,
			Deadline:  now + deadline.Seconds(),
			Len:       resident,
			Weight:    weight,
			Tenant:    opt.Tenant,
			PrefixLen: reqPrefix,
		},
		tokens:    tokens,
		out:       make(chan Response, 1),
		queued:    time.Now(),
		class:     opt.Class,
		prefixLen: opt.PrefixLen,
		cachedLen: cachedLen,
		prefix:    pin,
	}
	if s.wfq != nil {
		p.vfinish = s.wfq.Stamp(tenantOf(p), resident)
	}
	s.queue[id] = p
	s.submitted++
	s.counterLocked(p).admitted++
	s.notify()
	return p.out, nil
}

// notify nudges the scheduler loop (and Drain) without blocking: the
// capacity-1 channel coalesces bursts into a single pending wakeup.
func (s *Server) notify() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Stats returns a snapshot of server counters.
func (s *Server) Stats() Stats {
	breakerState := "disabled"
	var trips int64
	if s.breaker != nil {
		breakerState = s.breaker.State().String()
		trips = s.breaker.Trips()
	}
	var occupancy float64
	if capTok := s.capTokenSteps.Load(); capTok > 0 {
		occupancy = 100 * float64(s.liveTokenSteps.Load()) / float64(capTok)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Submitted:     s.submitted,
		Served:        s.served,
		Missed:        s.missed,
		Failed:        s.failed,
		Queued:        len(s.queue),
		InFlight:      s.inFlight,
		Batches:       s.batches,
		Retried:       s.retried,
		Panics:        s.panics,
		Timeouts:      s.timeouts,
		Shed:          s.shed,
		BreakerTrips:  trips,
		BreakerState:  breakerState,
		ScheduleNs:    s.scheduleNs.Load(),
		ComputeNs:     s.computeNs.Load(),
		CleanupNs:     s.cleanupNs.Load(),
		StageOverruns: s.stageOverruns.Load(),
		Pipelined:     s.cfg.Pipeline,

		RefillsAdmitted:      s.refillsAdmitted.Load(),
		SegmentsRetiredEarly: s.segsRetiredEarly.Load(),
		SlotIdleSteps:        s.slotIdleSteps.Load(),
		BatchOccupancyPct:    occupancy,
		Refilling:            s.refiller != nil,
		Kernels:              tensor.KernelCounters(),
		FairEnabled:          s.wfq != nil,
	}
	if s.cfg.PrefixCache != nil {
		st.Prefix = s.cfg.PrefixCache.Stats()
		st.PrefixEnabled = true
	}
	st.Tenants, st.JainGoodput = s.tenantStatsLocked()
	st.ClassP99MS = s.classP99Locked()
	return st
}

// Health is a point-in-time serviceability summary — the body behind
// GET /healthz and the per-replica rows of a cluster's /v1/replicas.
type Health struct {
	// Serviceable reports whether a submission right now would be accepted
	// and fed to a live engine: the server is running (not draining or
	// stopped) and the circuit breaker is not open.
	Serviceable bool   `json:"serviceable"`
	State       string `json:"state"`   // "running", "draining" or "stopped"
	Breaker     string `json:"breaker"` // "closed", "open", "half-open" or "disabled"
	Queued      int    `json:"queued"`
	InFlight    int    `json:"in_flight"`
}

// Health returns the server's current serviceability. External load
// balancers (and the cluster layer's health monitor) use it to decide
// whether to route traffic here.
func (s *Server) Health() Health {
	h := Health{State: "running", Breaker: "disabled"}
	if s.breaker != nil {
		h.Breaker = s.breaker.State().String()
	}
	s.mu.Lock()
	h.Queued = len(s.queue)
	h.InFlight = s.inFlight
	draining := s.draining
	s.mu.Unlock()
	select {
	case <-s.stop:
		h.State = "stopped"
	default:
		if draining {
			h.State = "draining"
		}
	}
	h.Serviceable = h.State == "running" && h.Breaker != "open"
	return h
}

// BreakerState returns the circuit breaker's current state
// (BreakerClosed when no breaker is configured).
func (s *Server) BreakerState() BreakerState {
	if s.breaker == nil {
		return BreakerClosed
	}
	return s.breaker.State()
}

// QueueLen returns the number of requests waiting.
func (s *Server) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// clock returns seconds since server construction (the scheduler's time
// base).
func (s *Server) clock() float64 { return time.Since(s.base).Seconds() }

// backoff returns the seconds a request waits after its attempt-th failure.
func (s *Server) backoff(attempt int) float64 {
	d := s.cfg.Retry.Backoff << uint(attempt-1)
	if attempt < 1 || d <= 0 || d > s.cfg.Retry.MaxBackoff {
		d = s.cfg.Retry.MaxBackoff
	}
	return d.Seconds()
}

// clearPrefixCache drops every cached prefix at loop exit so the cache's
// device-memory charges balance to zero alongside the batch reservations.
func (s *Server) clearPrefixCache() {
	if s.cfg.PrefixCache != nil {
		s.cfg.PrefixCache.Clear()
	}
}

func (s *Server) loop() {
	defer close(s.done)
	defer s.clearPrefixCache()
	for {
		select {
		case <-s.stop:
			s.failAll(ErrServerClosed)
			return
		default:
		}
		batchReady := s.scheduleOnce()
		if !batchReady {
			// Idle: block until a Submit signals work. Poll stays as a
			// fallback so queued requests still get their deadline-expiry
			// sweep (and the breaker its cooldown checks) with no new
			// arrivals.
			select {
			case <-s.stop:
				s.failAll(ErrServerClosed)
				return
			case <-s.wake:
			case <-time.After(s.cfg.Poll):
			}
		}
	}
}

// scheduleOnce runs one serial scheduler+engine round: the three stages
// back to back on the loop goroutine. It returns false when the queue
// offered nothing to run (or the breaker refused to run it).
func (s *Server) scheduleOnce() bool {
	t0 := time.Now()
	l := s.selectBatch()
	s.scheduleNs.Add(time.Since(t0).Nanoseconds())
	if l == nil {
		return false
	}
	t1 := time.Now()
	rep, err := s.executeBatch(l)
	served := time.Now()
	s.computeNs.Add(served.Sub(t1).Nanoseconds())
	s.completeBatch(l, rep, err, served)
	s.cleanupNs.Add(time.Since(served).Nanoseconds())
	return true
}

// selectBatch is stage A: sweep expired deadlines, consult the breaker,
// schedule, lay the decision out and stage the batch's host-side tensors.
// It returns nil when nothing is runnable. On success the chosen requests
// are out of the queue and counted in-flight until completeBatch.
func (s *Server) selectBatch() *launch {
	now := s.clock()
	state := BreakerClosed
	if s.breaker != nil {
		state = s.breaker.State()
	}

	s.mu.Lock()
	for _, p := range s.queue {
		if p.req.Deadline < now {
			p.out <- Response{ID: p.req.ID, Err: ErrDeadlineExceeded, Queued: p.queued}
			delete(s.queue, p.req.ID)
			s.missed++
			s.counterLocked(p).missed++
			s.wfqRelease(p, false)
			p.prefix.Release()
		}
	}
	if state == BreakerOpen {
		// Degraded service: don't feed a down engine; shed the queue down
		// to the reduced bound, keeping the highest-utility requests.
		s.shedLocked()
		s.mu.Unlock()
		return nil
	}
	if state == BreakerHalfOpen && s.inFlight > 0 {
		// Half-open admits a single probe: with the pipeline a batch may
		// still be in the stages, so hold scheduling until its outcome.
		s.mu.Unlock()
		return nil
	}
	var pool []*sched.Request
	if s.wfq != nil {
		pool = s.fairPoolLocked(now)
	} else {
		for _, p := range s.queue {
			if p.notBefore > now {
				continue // backing off after a failed batch
			}
			pool = append(pool, p.req)
		}
	}
	if len(pool) == 0 {
		s.mu.Unlock()
		return nil
	}
	var dec sched.Decision
	if state == BreakerHalfOpen {
		// Probe the engine with the smallest useful launch: the single
		// highest-utility request in a one-row naive batch.
		dec = probeDecision(pool)
	} else {
		dec = s.cfg.Scheduler.Schedule(now, pool, s.cfg.B, s.cfg.L)
	}
	chosen := dec.Chosen()
	if len(chosen) == 0 {
		s.mu.Unlock()
		return nil
	}
	selected := make([]*pending, 0, len(chosen))
	tokens := make(map[int64][]int, len(chosen))
	for _, r := range chosen {
		p := s.queue[r.ID]
		selected = append(selected, p)
		tokens[r.ID] = p.tokens
		delete(s.queue, r.ID)
		s.wfqRelease(p, true)
	}
	s.inFlight++
	s.mu.Unlock()

	l := &launch{selected: selected, tokens: tokens}
	if state == BreakerHalfOpen {
		items := []batch.Item{itemFor(selected[0])}
		l.b, _ = batch.PackNaive(items, 1, s.cfg.L)
	} else {
		l.b = s.layout(dec, selected)
	}
	if s.preparer != nil {
		ep, err := s.preparer.Prepare(l.b, l.tokens)
		if err != nil {
			// Staging or memory admission failed before the engine ran:
			// park the selection for a Poll without charging an attempt
			// (mirrors the ErrBreakerOpen race path). An expired deadline
			// still retires it on a later sweep.
			now = s.clock()
			s.mu.Lock()
			for _, p := range l.selected {
				p.notBefore = now + s.cfg.Poll.Seconds()
				s.queue[p.req.ID] = p
			}
			s.inFlight--
			s.mu.Unlock()
			s.notify()
			return nil
		}
		// ep may be nil (a wrapper around a plain Runner): fall back to Run.
		l.ep = ep
		if l.ep != nil && s.cfg.Pipeline {
			// Move the cleaning report into stage C, overlapped with the
			// next batch's compute.
			l.ep.DeferCleaning = true
		}
		if l.ep != nil && s.refiller != nil && state != BreakerHalfOpen {
			// The launch becomes a persistent execution context: the hook
			// delivers retires immediately and feeds queued requests into
			// freed slots. Probes stay minimal — no hook for them.
			l.hook = newRefillHook(s, l.selected)
		}
	}
	return l
}

// executeBatch is stage B: the supervised engine invocation.
func (s *Server) executeBatch(l *launch) (*engine.Report, error) {
	var rep *engine.Report
	var err error
	switch {
	case l.hook != nil:
		rep, err = s.runner.RunPreparedRefill(l.ep, l.hook, s.admissionBudget)
	case l.ep != nil:
		rep, err = s.runner.RunPrepared(l.ep)
	default:
		rep, err = s.runner.Run(l.b, l.tokens)
	}
	s.mu.Lock()
	s.batches++
	s.mu.Unlock()
	return rep, err
}

// completeBatch is stage C: deliver results, requeue retries and losses,
// finish the deferred memory-cleaning report and release the batch's
// reservation.
func (s *Server) completeBatch(l *launch, rep *engine.Report, err error, served time.Time) {
	// Close the refill hook FIRST: from here on a watchdog-abandoned engine
	// goroutine that is still stepping can no longer deliver, admit from the
	// queue, or requeue — this stage owns the launch's requests now. The
	// close returns everyone admitted mid-flight (they join the selection)
	// and everyone already delivered by an early retire (they are done,
	// whatever the report says).
	selected := l.selected
	var delivered map[int64]bool
	if l.hook != nil {
		var admitted []*pending
		admitted, delivered = l.hook.close()
		if len(admitted) > 0 {
			selected = make([]*pending, 0, len(l.selected)+len(admitted))
			selected = append(selected, l.selected...)
			selected = append(selected, admitted...)
		}
	}
	if err == nil && l.ep != nil && l.ep.DeferCleaning && rep != nil {
		err = l.ep.FinishReport(rep)
	}
	if err != nil {
		// Release the reservation BEFORE requeueing: the watchdog abandons
		// a hung run without freeing anything, so a retried batch would
		// otherwise deadlock against its own previous reservation.
		l.ep.Release()
		s.handleBatchFailure(undelivered(selected, delivered), err, served)
		s.mu.Lock()
		s.inFlight--
		s.mu.Unlock()
		s.notify()
		return
	}
	if rep != nil && rep.Refill != nil {
		s.refillsAdmitted.Add(int64(rep.Refill.Admitted))
		s.segsRetiredEarly.Add(int64(rep.Refill.RetiredEarly))
		s.slotIdleSteps.Add(rep.Refill.SlotIdleSteps)
		s.liveTokenSteps.Add(rep.Refill.LiveTokenSteps)
		s.capTokenSteps.Add(rep.Refill.CapacityTokenSteps)
	}
	var results []engine.Result
	if rep != nil {
		results = rep.Results
	}
	byID := make(map[int64]engine.Result, len(results))
	for _, r := range results {
		byID[r.ID] = r
	}
	now := s.clock()
	var okCount int64
	s.mu.Lock()
	for _, p := range selected {
		if delivered[p.req.ID] {
			continue // already delivered by an early retire
		}
		r, ok := byID[p.req.ID]
		if !ok {
			// The engine dropped this result. Requeue like a failed batch
			// member; its batchmates are unaffected.
			lostErr := fmt.Errorf("serve: request %d lost by engine", p.req.ID)
			s.retireOrRequeueLocked(p, lostErr, now, served)
			continue
		}
		okCount++
		p.out <- Response{ID: p.req.ID, Output: r.Output, Queued: p.queued, Served: served}
		s.noteDeliveredLocked(p, served)
		p.prefix.Release()
	}
	s.served += okCount
	s.inFlight--
	s.mu.Unlock()
	l.ep.Release()
	s.notify()
}

// undelivered filters a selection down to the requests an early retire did
// not already answer.
func undelivered(selected []*pending, delivered map[int64]bool) []*pending {
	if len(delivered) == 0 {
		return selected
	}
	out := make([]*pending, 0, len(selected))
	for _, p := range selected {
		if !delivered[p.req.ID] {
			out = append(out, p)
		}
	}
	return out
}

// handleBatchFailure disposes of a failed batch's requests: unexpired
// requests with attempts left are requeued under backoff; the rest fail.
// An ErrBreakerOpen refusal never reached the engine, so it requeues
// everything without consuming attempts.
func (s *Server) handleBatchFailure(selected []*pending, err error, served time.Time) {
	now := s.clock()
	var pe *PanicError
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case errors.As(err, &pe):
		s.panics++
	case errors.Is(err, ErrBatchTimeout):
		s.timeouts++
	}
	if errors.Is(err, ErrBreakerOpen) {
		// Raced a breaker trip between the state check and the run: park
		// the whole selection for the loop to reconsider.
		for _, p := range selected {
			p.notBefore = now + s.cfg.Poll.Seconds()
			s.queue[p.req.ID] = p
		}
		return
	}
	for _, p := range selected {
		s.retireOrRequeueLocked(p, err, now, served)
	}
}

// retireOrRequeueLocked charges p one failed attempt, then requeues it
// under backoff, or fails it if its attempts are exhausted, or expires it
// if its deadline already passed. Callers hold s.mu.
func (s *Server) retireOrRequeueLocked(p *pending, err error, now float64, served time.Time) {
	p.attempts++
	switch {
	case p.req.Deadline < now:
		p.out <- Response{ID: p.req.ID, Err: ErrDeadlineExceeded, Queued: p.queued, Served: served}
		s.missed++
		s.counterLocked(p).missed++
		s.wfqRelease(p, false)
		p.prefix.Release()
	case p.attempts >= s.cfg.Retry.MaxAttempts:
		p.out <- Response{ID: p.req.ID, Err: err, Queued: p.queued, Served: served}
		s.failed++
		s.counterLocked(p).failed++
		s.wfqRelease(p, false)
		p.prefix.Release()
	default:
		p.notBefore = now + s.backoff(p.attempts)
		s.queue[p.req.ID] = p
		s.retried++
	}
}

// shedLocked evicts the lowest-utility queued requests beyond OpenQueueCap —
// globally when the fairness layer is off (the original behaviour, kept
// bit-for-bit), tenant-fairly when it is on. Callers hold s.mu.
func (s *Server) shedLocked() {
	if s.wfq != nil {
		s.shedFairLocked()
		return
	}
	excess := len(s.queue) - s.cfg.OpenQueueCap
	if excess <= 0 {
		return
	}
	victims := make([]*pending, 0, len(s.queue))
	for _, p := range s.queue {
		victims = append(victims, p)
	}
	sort.Slice(victims, func(i, j int) bool {
		ui, uj := victims[i].req.Utility(), victims[j].req.Utility()
		if ui != uj {
			return ui < uj
		}
		return victims[i].req.ID > victims[j].req.ID
	})
	for _, p := range victims[:excess] {
		p.out <- Response{ID: p.req.ID, Err: ErrShed, Queued: p.queued}
		delete(s.queue, p.req.ID)
		s.shed++
		s.counterLocked(p).shed++
		p.prefix.Release()
	}
}

// probeDecision selects the single highest-utility request as a one-row
// half-open probe.
func probeDecision(pool []*sched.Request) sched.Decision {
	best := pool[0]
	for _, r := range pool[1:] {
		if u, bu := r.Utility(), best.Utility(); u > bu || (u == bu && r.ID < best.ID) {
			best = r
		}
	}
	return sched.Decision{Rows: [][]*sched.Request{{best}}}
}

// itemFor rebuilds a pending's batch item, restoring the prefix declaration
// the scheduler never saw: req.Len is already the resident length (suffix
// only on a hit), so the item slots straight into the packed row.
func itemFor(p *pending) batch.Item {
	return batch.Item{ID: p.req.ID, Len: p.req.Len, PrefixLen: p.prefixLen, CachedLen: p.cachedLen}
}

// layout converts a decision to a batch under the configured scheme.
// selected carries the pending entries for every chosen request (any order)
// so items can restore their prefix declarations.
func (s *Server) layout(dec sched.Decision, selected []*pending) *batch.Batch {
	byID := make(map[int64]*pending, len(selected))
	for _, p := range selected {
		byID[p.req.ID] = p
	}
	switch s.cfg.Scheme {
	case batch.Naive:
		items := make([]batch.Item, 0, len(dec.Chosen()))
		for _, r := range dec.Chosen() {
			items = append(items, itemFor(byID[r.ID]))
		}
		b, _ := batch.PackNaive(items, len(items), s.cfg.L)
		return b
	case batch.SlottedConcat:
		// SlottedDAS emits slot-ordered feasible rows; adopt them directly
		// so no chosen request can be dropped between decision and launch.
		z := dec.SlotSize
		if z <= 0 {
			z = s.cfg.SlotSize
		}
		if z <= 0 {
			z = s.cfg.L
		}
		b := &batch.Batch{Scheme: batch.SlottedConcat, SlotSize: z}
		for _, row := range dec.Rows {
			if len(row) == 0 {
				continue
			}
			r := batch.Row{PadTo: s.cfg.L}
			for _, req := range row {
				r.Items = append(r.Items, itemFor(byID[req.ID]))
			}
			b.Rows = append(b.Rows, r)
		}
		return b
	default:
		b := &batch.Batch{Scheme: batch.Concat}
		for _, row := range dec.Rows {
			if len(row) == 0 {
				continue
			}
			r := batch.Row{PadTo: s.cfg.L}
			for _, req := range row {
				r.Items = append(r.Items, itemFor(byID[req.ID]))
			}
			b.Rows = append(b.Rows, r)
		}
		return b
	}
}

func (s *Server) failAll(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, p := range s.queue {
		p.out <- Response{ID: id, Err: err, Queued: p.queued}
		delete(s.queue, id)
		s.failed++
		s.counterLocked(p).failed++
		s.wfqRelease(p, false)
		p.prefix.Release()
	}
}
