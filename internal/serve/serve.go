// Package serve is the online serving front of TCB (Fig. 3): a goroutine
// pipeline that accepts requests with deadlines, queues them, invokes the
// pluggable scheduler whenever the engine is idle, lays the decision out
// under the configured batching scheme, and runs it on the real Go
// transformer engine, delivering each response on its own channel.
//
// This is the component a downstream user embeds; the discrete-event
// simulator (package sim) exists only because paper-scale arrival rates
// outrun a CPU transformer.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/sched"
)

// Runner abstracts the inference engine so tests can inject failures and
// deployments can substitute backends. *engine.Engine implements it.
type Runner interface {
	Run(b *batch.Batch, tokens map[int64][]int) (*engine.Report, error)
}

// Config describes a server.
type Config struct {
	Engine    Runner
	Scheduler sched.Scheduler
	Scheme    batch.Scheme
	B, L      int
	// QueueCap bounds the submission queue; Submit fails fast beyond it.
	QueueCap int
	// Poll bounds how long the scheduler loop waits between rounds when no
	// wakeup arrives. Submissions wake the loop immediately through a
	// channel, so Poll only paces the deadline-expiry sweep of requests
	// already queued; it can be generous without hurting latency.
	Poll time.Duration
}

// Stats is a point-in-time snapshot of server counters.
type Stats struct {
	Submitted int64 // accepted submissions
	Served    int64 // responses delivered successfully
	Missed    int64 // deadline expiries in the queue
	Failed    int64 // engine or internal errors
	Queued    int   // requests currently waiting
	Batches   int64 // engine launches
}

// Response is the outcome of one request.
type Response struct {
	ID     int64
	Output []int
	Err    error
	// Queued and Served bracket the request's life inside the server.
	Queued, Served time.Time
}

// ErrDeadlineExceeded marks requests that expired in the queue.
var ErrDeadlineExceeded = errors.New("serve: deadline exceeded before scheduling")

// ErrServerClosed marks requests rejected because the server stopped.
var ErrServerClosed = errors.New("serve: server closed")

// ErrQueueFull marks submissions beyond QueueCap.
var ErrQueueFull = errors.New("serve: queue full")

type pending struct {
	req    *sched.Request
	tokens []int
	out    chan Response
	queued time.Time
}

// Server is a running TCB serving instance.
type Server struct {
	cfg   Config
	mu    sync.Mutex
	queue map[int64]*pending
	next  int64
	stop  chan struct{}
	done  chan struct{}
	// wake is a capacity-1 edge trigger: Submit (and batch completion, for
	// Drain) signal it so the loop reacts immediately instead of sleeping
	// out the Poll interval. Poll remains only as a deadline-expiry
	// fallback.
	wake chan struct{}
	base time.Time

	submitted, served, missed, failed, batches int64
	draining                                   bool
}

// New validates cfg and returns an unstarted server.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil || cfg.Scheduler == nil {
		return nil, fmt.Errorf("serve: engine and scheduler are required")
	}
	if cfg.B <= 0 || cfg.L <= 0 {
		return nil, fmt.Errorf("serve: B=%d L=%d must be positive", cfg.B, cfg.L)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	if cfg.Poll <= 0 {
		cfg.Poll = time.Millisecond
	}
	return &Server{
		cfg:   cfg,
		queue: make(map[int64]*pending),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		wake:  make(chan struct{}, 1),
		base:  time.Now(),
	}, nil
}

// Start launches the scheduling loop.
func (s *Server) Start() {
	go s.loop()
}

// Stop shuts the server down; queued requests fail with ErrServerClosed.
// It blocks until the loop exits.
func (s *Server) Stop() {
	close(s.stop)
	<-s.done
}

// Drain stops accepting new submissions, serves everything already queued
// (or lets it miss its deadline), then shuts down. It blocks until the
// queue is empty and the loop has exited.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	for {
		s.mu.Lock()
		empty := len(s.queue) == 0
		s.mu.Unlock()
		if empty {
			break
		}
		// Wait for the loop to report progress (a finished batch or expiry
		// sweep notifies wake); Poll bounds the wait in case a wakeup was
		// already consumed.
		select {
		case <-s.wake:
		case <-time.After(s.cfg.Poll):
		}
	}
	s.Stop()
}

// Submit enqueues a request that must be scheduled within the given
// deadline from now. The response arrives on the returned channel exactly
// once.
func (s *Server) Submit(tokens []int, deadline time.Duration) (<-chan Response, error) {
	if len(tokens) == 0 {
		return nil, fmt.Errorf("serve: empty request")
	}
	if len(tokens) > s.cfg.L {
		return nil, fmt.Errorf("serve: request of %d tokens exceeds row capacity %d", len(tokens), s.cfg.L)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.stop:
		return nil, ErrServerClosed
	default:
	}
	if s.draining {
		return nil, ErrServerClosed
	}
	if len(s.queue) >= s.cfg.QueueCap {
		return nil, ErrQueueFull
	}
	s.next++
	id := s.next
	now := s.clock()
	p := &pending{
		req: &sched.Request{
			ID:       id,
			Arrival:  now,
			Deadline: now + deadline.Seconds(),
			Len:      len(tokens),
		},
		tokens: tokens,
		out:    make(chan Response, 1),
		queued: time.Now(),
	}
	s.queue[id] = p
	s.submitted++
	s.notify()
	return p.out, nil
}

// notify nudges the scheduler loop (and Drain) without blocking: the
// capacity-1 channel coalesces bursts into a single pending wakeup.
func (s *Server) notify() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Stats returns a snapshot of server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Submitted: s.submitted,
		Served:    s.served,
		Missed:    s.missed,
		Failed:    s.failed,
		Queued:    len(s.queue),
		Batches:   s.batches,
	}
}

// QueueLen returns the number of requests waiting.
func (s *Server) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// clock returns seconds since server construction (the scheduler's time
// base).
func (s *Server) clock() float64 { return time.Since(s.base).Seconds() }

func (s *Server) loop() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			s.failAll(ErrServerClosed)
			return
		default:
		}
		batchReady := s.scheduleOnce()
		if !batchReady {
			// Idle: block until a Submit signals work. Poll stays as a
			// fallback so queued requests still get their deadline-expiry
			// sweep even with no new arrivals.
			select {
			case <-s.stop:
				s.failAll(ErrServerClosed)
				return
			case <-s.wake:
			case <-time.After(s.cfg.Poll):
			}
		}
	}
}

// scheduleOnce runs one scheduler+engine round. It returns false when the
// queue offered nothing to run.
func (s *Server) scheduleOnce() bool {
	now := s.clock()

	s.mu.Lock()
	var pool []*sched.Request
	for _, p := range s.queue {
		if p.req.Deadline < now {
			p.out <- Response{ID: p.req.ID, Err: ErrDeadlineExceeded, Queued: p.queued}
			delete(s.queue, p.req.ID)
			s.missed++
			continue
		}
		pool = append(pool, p.req)
	}
	if len(pool) == 0 {
		s.mu.Unlock()
		return false
	}
	dec := s.cfg.Scheduler.Schedule(now, pool, s.cfg.B, s.cfg.L)
	chosen := dec.Chosen()
	if len(chosen) == 0 {
		s.mu.Unlock()
		return false
	}
	selected := make([]*pending, 0, len(chosen))
	tokens := make(map[int64][]int, len(chosen))
	for _, r := range chosen {
		p := s.queue[r.ID]
		selected = append(selected, p)
		tokens[r.ID] = p.tokens
		delete(s.queue, r.ID)
	}
	s.mu.Unlock()

	b := s.layout(dec)
	rep, err := s.cfg.Engine.Run(b, tokens)
	served := time.Now()
	s.mu.Lock()
	s.batches++
	s.mu.Unlock()
	if err != nil {
		s.mu.Lock()
		s.failed += int64(len(selected))
		s.mu.Unlock()
		for _, p := range selected {
			p.out <- Response{ID: p.req.ID, Err: err, Queued: p.queued, Served: served}
		}
		s.notify()
		return true
	}
	byID := make(map[int64]engine.Result, len(rep.Results))
	for _, r := range rep.Results {
		byID[r.ID] = r
	}
	var okCount, lost int64
	for _, p := range selected {
		r, ok := byID[p.req.ID]
		if !ok {
			lost++
			p.out <- Response{ID: p.req.ID, Err: fmt.Errorf("serve: request %d lost by engine", p.req.ID), Queued: p.queued, Served: served}
			continue
		}
		okCount++
		p.out <- Response{ID: p.req.ID, Output: r.Output, Queued: p.queued, Served: served}
	}
	s.mu.Lock()
	s.served += okCount
	s.failed += lost
	s.mu.Unlock()
	s.notify()
	return true
}

// layout converts a decision to a batch under the configured scheme.
func (s *Server) layout(dec sched.Decision) *batch.Batch {
	items := make([]batch.Item, 0, len(dec.Chosen()))
	for _, r := range dec.Chosen() {
		items = append(items, batch.Item{ID: r.ID, Len: r.Len})
	}
	switch s.cfg.Scheme {
	case batch.Naive:
		b, _ := batch.PackNaive(items, len(items), s.cfg.L)
		return b
	case batch.SlottedConcat:
		// SlottedDAS emits slot-ordered feasible rows; adopt them directly
		// so no chosen request can be dropped between decision and launch.
		z := dec.SlotSize
		if z <= 0 {
			z = s.cfg.L
		}
		b := &batch.Batch{Scheme: batch.SlottedConcat, SlotSize: z}
		for _, row := range dec.Rows {
			if len(row) == 0 {
				continue
			}
			r := batch.Row{PadTo: s.cfg.L}
			for _, req := range row {
				r.Items = append(r.Items, batch.Item{ID: req.ID, Len: req.Len})
			}
			b.Rows = append(b.Rows, r)
		}
		return b
	default:
		b := &batch.Batch{Scheme: batch.Concat}
		for _, row := range dec.Rows {
			if len(row) == 0 {
				continue
			}
			r := batch.Row{PadTo: s.cfg.L}
			for _, req := range row {
				r.Items = append(r.Items, batch.Item{ID: req.ID, Len: req.Len})
			}
			b.Rows = append(b.Rows, r)
		}
		return b
	}
}

func (s *Server) failAll(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, p := range s.queue {
		p.out <- Response{ID: id, Err: err, Queued: p.queued}
		delete(s.queue, id)
		s.failed++
	}
}
