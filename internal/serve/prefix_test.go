package serve

import (
	"testing"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/gpu"
	"tcb/internal/model"
	"tcb/internal/prefixcache"
	"tcb/internal/rng"
	"tcb/internal/sched"
)

// prefixTestBytes is one resident entry's cost at the test model's DModel=32
// with one decoder layer: encoder rows (p×32×4) plus cross K and V
// (2×p×32×4 each... K and V together 2·p·32·4), i.e. 3·p·32·4 = 384·p.
func prefixTestBytes(p int) int64 { return int64(3 * p * 32 * 4) }

// prefixServeWorkload builds a fixed shared-prompt request set: two pooled
// 12-token prefixes, 12 requests alternating between them with distinct
// 2–6-token suffixes, every prefix declared.
func prefixServeWorkload(seed uint64) (reqs [][]int, decl []int) {
	src := rng.New(seed)
	pool := [][]int{randTokens(src, 12), randTokens(src, 12)}
	for i := 0; i < 12; i++ {
		p := pool[i%2]
		r := append(append([]int{}, p...), randTokens(src, src.IntRange(2, 6))...)
		reqs = append(reqs, r)
		decl = append(decl, len(p))
	}
	return reqs, decl
}

// runPrefixMode serves the workload on a fresh server over m and returns the
// per-request outputs. With cache set, the prefix cache is backed by its own
// memory ledger, which must balance to zero after Stop.
func runPrefixMode(t *testing.T, m *model.Model, reqs [][]int, decl []int, cache, refill, pipeline bool) ([][]int, Stats) {
	t.Helper()
	eng := engine.New(m, 3)
	eng.UseCache = true
	var pc *prefixcache.Cache
	var mem *gpu.MemoryManager
	if cache {
		mem = gpu.NewMemoryManager(0)
		pc = prefixcache.New(0, mem)
		eng.PrefixCache = pc
	}
	s, err := New(Config{
		Engine: eng, Scheduler: sched.FCFS{}, Scheme: batch.Concat,
		B: 4, L: 64, Poll: 200 * time.Microsecond,
		QueueCap: len(reqs), Refill: refill, Pipeline: pipeline,
		PrefixCache: pc,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	outs := make([][]int, len(reqs))
	submit := func(i int) <-chan Response {
		ch, err := s.SubmitOpts(reqs[i], 10*time.Second, SubmitOptions{PrefixLen: decl[i]})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		return ch
	}
	receive := func(i int, ch <-chan Response) {
		resp := <-ch
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
		outs[i] = resp.Output
	}
	// Hit or miss is decided at submit time, so the first request of each
	// pooled prompt is served to completion (freezing the prefix) before
	// the rest are queued — they then all pin the resident entries.
	for i := 0; i < 2; i++ {
		receive(i, submit(i))
	}
	chans := make([]<-chan Response, len(reqs))
	for i := 2; i < len(reqs); i++ {
		chans[i] = submit(i)
	}
	s.Drain()
	for i := 2; i < len(reqs); i++ {
		receive(i, chans[i])
	}
	st := s.Stats()
	s.Stop()
	if mem != nil && (mem.Used() != 0 || mem.Outstanding() != 0) {
		t.Fatalf("prefix ledger out of balance after Stop: %d bytes, %d outstanding",
			mem.Used(), mem.Outstanding())
	}
	return outs, st
}

// TestPrefixServeEquality is the end-to-end exactness contract: the same
// declared-prefix workload must produce bitwise-identical outputs with and
// without the cache, in plain, refill, pipelined and refill+pipelined
// serving — a hit changes when an answer arrives, never what it says.
func TestPrefixServeEquality(t *testing.T) {
	cfg := model.Config{
		VocabSize: testVocab, DModel: 32, NumHeads: 4, DFF: 64,
		EncLayers: 1, DecLayers: 1, MaxLen: 256, Eps: 1e-5,
	}
	m := model.New(cfg, 21)
	reqs, decl := prefixServeWorkload(31)
	base, baseSt := runPrefixMode(t, m, reqs, decl, false, false, false)
	if baseSt.PrefixEnabled {
		t.Fatal("no-cache server must not report a prefix cache")
	}
	for _, mode := range []struct {
		name             string
		refill, pipeline bool
	}{
		{"plain", false, false},
		{"refill", true, false},
		{"pipeline", false, true},
		{"refill+pipeline", true, true},
	} {
		outs, st := runPrefixMode(t, m, reqs, decl, true, mode.refill, mode.pipeline)
		for i := range outs {
			if len(outs[i]) != len(base[i]) {
				t.Fatalf("%s: request %d output length %d vs %d", mode.name, i, len(outs[i]), len(base[i]))
			}
			for j := range outs[i] {
				if outs[i][j] != base[i][j] {
					t.Fatalf("%s: request %d token %d: %d vs %d", mode.name, i, j, outs[i][j], base[i][j])
				}
			}
		}
		if !st.PrefixEnabled {
			t.Fatalf("%s: cached server must report PrefixEnabled", mode.name)
		}
		if st.Prefix.Hits == 0 {
			t.Fatalf("%s: shared-prompt workload produced no cache hits: %+v", mode.name, st.Prefix)
		}
		// Entries is 0 here: Drain already cleared the cache at loop exit.
		if st.Prefix.Inserts == 0 || st.Prefix.Entries != 0 {
			t.Fatalf("%s: want frozen inserts and a drained cache: %+v", mode.name, st.Prefix)
		}
	}
}

// TestPrefixPinsReleasedAfterDelivery proves the admission pin's lifecycle
// through eviction: with a budget of one entry, a second shared prompt can
// only become resident by evicting the first — which requires every pin
// taken on it to have been released at its requests' terminal outcomes.
func TestPrefixPinsReleasedAfterDelivery(t *testing.T) {
	cfg := model.Config{
		VocabSize: testVocab, DModel: 32, NumHeads: 4, DFF: 64,
		EncLayers: 1, DecLayers: 1, MaxLen: 256, Eps: 1e-5,
	}
	m := model.New(cfg, 22)
	eng := engine.New(m, 3)
	eng.UseCache = true
	mem := gpu.NewMemoryManager(0)
	pc := prefixcache.New(prefixTestBytes(12)+prefixTestBytes(12)/2, mem)
	eng.PrefixCache = pc
	s, err := New(Config{
		Engine: eng, Scheduler: sched.FCFS{}, Scheme: batch.Concat,
		B: 4, L: 64, Poll: 200 * time.Microsecond, PrefixCache: pc,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()

	src := rng.New(41)
	a, b := randTokens(src, 12), randTokens(src, 12)
	serveOne := func(prefix []int) {
		t.Helper()
		r := append(append([]int{}, prefix...), randTokens(src, 4)...)
		ch, err := s.SubmitOpts(r, 10*time.Second, SubmitOptions{PrefixLen: 12})
		if err != nil {
			t.Fatal(err)
		}
		if resp := <-ch; resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	serveOne(a) // cold: freezes a
	serveOne(a) // hit on a
	if st := pc.Stats(); st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("want 1 hit on 1 resident entry, got %+v", st)
	}
	// The pin is released just after the response send; give the loop that
	// instant before demanding a's slot back.
	time.Sleep(100 * time.Millisecond)
	serveOne(b) // cold: must evict a — only possible with a's pins released
	if st := pc.Stats(); st.Evictions != 1 || st.Rejected != 0 || st.Entries != 1 {
		t.Fatalf("second prompt must evict the first, not be rejected: %+v", st)
	}
	if pc.Contains(a, 12) || !pc.Contains(b, 12) {
		t.Fatal("resident entry must now be b")
	}
}

// TestPrefixSubmitValidation: a declared prefix must leave a non-empty
// suffix, and a declaration without a cache still serves correctly (the
// engine simply encodes prefix and suffix as two exact segments).
func TestPrefixSubmitValidation(t *testing.T) {
	s, e := testServer(t, batch.Concat, sched.FCFS{})
	s.Start()
	defer s.Stop()
	e.UseCache = true

	src := rng.New(51)
	toks := randTokens(src, 8)
	if _, err := s.SubmitOpts(toks, time.Second, SubmitOptions{PrefixLen: 8}); err == nil {
		t.Fatal("declared prefix covering the whole request must be rejected")
	}
	if _, err := s.SubmitOpts(toks, time.Second, SubmitOptions{PrefixLen: -1}); err == nil {
		t.Fatal("negative declared prefix must be rejected")
	}
	ch, err := s.SubmitOpts(toks, 10*time.Second, SubmitOptions{PrefixLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	resp := <-ch
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	solo, err := e.RunSingle(9000, toks)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Output) != len(solo.Output) {
		t.Fatalf("declared-without-cache output length %d vs solo %d", len(resp.Output), len(solo.Output))
	}
	for i := range solo.Output {
		if resp.Output[i] != solo.Output[i] {
			t.Fatalf("declared-without-cache output differs at %d: %d vs %d", i, resp.Output[i], solo.Output[i])
		}
	}
}
