package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/fair"
	"tcb/internal/model"
	"tcb/internal/rng"
	"tcb/internal/sched"
)

// fairServer builds an unstarted fair server whose queue the tests poke
// directly (no loop racing them).
func fairServer(t *testing.T, mut func(*Config)) *Server {
	t.Helper()
	cfg := model.Config{
		VocabSize: testVocab, DModel: 32, NumHeads: 4, DFF: 64,
		EncLayers: 1, DecLayers: 1, MaxLen: 256, Eps: 1e-5,
	}
	e := engine.New(model.New(cfg, 5), 3)
	c := Config{
		Engine: e, Scheduler: sched.NewDAS(), Scheme: batch.Concat,
		B: 4, L: 64, Poll: 200 * time.Microsecond, Fair: true,
	}
	if mut != nil {
		mut(&c)
	}
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFairShedFloodingTenantFirst: breaker-open shedding must charge the
// tenant over its share, not whoever has the lowest utility globally. The
// flooding tenant's requests are LONGER (lower utility) here, so the global
// shed would also pick them — the discriminating part is below, where the
// flooder's requests are shorter and the global order would evict the
// well-behaved tenant first.
func TestFairShedFloodingTenantFirst(t *testing.T) {
	src := rng.New(7)
	s := fairServer(t, func(c *Config) { c.QueueCap = 64; c.OpenQueueCap = 10 })

	// Flooder submits 20 SHORT requests (high utility: the global shed
	// would keep all of them); the light tenant 3 longer ones.
	for i := 0; i < 20; i++ {
		if _, err := s.SubmitOpts(randTokens(src, 4), time.Minute, SubmitOptions{Tenant: "flood"}); err != nil {
			t.Fatal(err)
		}
	}
	lightCh := make([]<-chan Response, 0, 3)
	for i := 0; i < 3; i++ {
		ch, err := s.SubmitOpts(randTokens(src, 32), time.Minute, SubmitOptions{Tenant: "light"})
		if err != nil {
			t.Fatal(err)
		}
		lightCh = append(lightCh, ch)
	}

	s.mu.Lock()
	s.shedLocked()
	queueLen := len(s.queue)
	lightLeft := 0
	for _, p := range s.queue {
		if p.req.Tenant == "light" {
			lightLeft++
		}
	}
	s.mu.Unlock()

	if queueLen != s.cfg.OpenQueueCap {
		t.Fatalf("queue = %d after shed, want %d", queueLen, s.cfg.OpenQueueCap)
	}
	if lightLeft != 3 {
		t.Fatalf("light tenant kept %d of 3 — fair shed must charge the flooder", lightLeft)
	}
	for _, ch := range lightCh {
		select {
		case r := <-ch:
			t.Fatalf("light tenant shed: %v", r.Err)
		default:
		}
	}
	st := s.Stats()
	if st.Tenants["flood"].Shed != 13 {
		t.Fatalf("flood shed = %d, want 13", st.Tenants["flood"].Shed)
	}
}

// TestGlobalShedUnchangedWhenFairOff pins the escape hatch: with Fair off
// the shed is the original global lowest-utility order, tenants ignored.
func TestGlobalShedUnchangedWhenFairOff(t *testing.T) {
	src := rng.New(8)
	s := fairServer(t, func(c *Config) { c.Fair = false; c.QueueCap = 64; c.OpenQueueCap = 5 })
	if s.wfq != nil {
		t.Fatal("fair=false must not build a WFQ")
	}
	// Flooder short (high utility), light tenant long (low utility): the
	// global order evicts light first even though flood is over any share.
	for i := 0; i < 6; i++ {
		if _, err := s.SubmitOpts(randTokens(src, 4), time.Minute, SubmitOptions{Tenant: "flood"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.SubmitOpts(randTokens(src, 32), time.Minute, SubmitOptions{Tenant: "light"}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.shedLocked()
	lightLeft := 0
	for _, p := range s.queue {
		if p.req.Tenant == "light" {
			lightLeft++
		}
	}
	s.mu.Unlock()
	if lightLeft != 0 {
		t.Fatal("global shed must evict by utility alone (light's long request goes first)")
	}
	if st := s.Stats(); st.FairEnabled {
		t.Fatal("FairEnabled must be false")
	}
}

// TestFairPoolWindowsFlooder: the scheduler's candidate pool must surface
// the light tenant's requests inside the window even under a 50-deep flood
// backlog.
func TestFairPoolWindowsFlooder(t *testing.T) {
	src := rng.New(9)
	s := fairServer(t, func(c *Config) { c.QueueCap = 256; c.FairWindow = 16 })
	for i := 0; i < 50; i++ {
		if _, err := s.SubmitOpts(randTokens(src, 8), time.Minute, SubmitOptions{Tenant: "flood"}); err != nil {
			t.Fatal(err)
		}
	}
	var lightIDs []int64
	for i := 0; i < 2; i++ {
		if _, err := s.SubmitOpts(randTokens(src, 8), time.Minute, SubmitOptions{Tenant: "light"}); err != nil {
			t.Fatal(err)
		}
		lightIDs = append(lightIDs, s.next)
	}
	s.mu.Lock()
	pool := s.fairPoolLocked(s.clock())
	s.mu.Unlock()
	if len(pool) != 16 {
		t.Fatalf("pool = %d candidates, want the 16-wide window", len(pool))
	}
	pos := map[int64]int{}
	for i, r := range pool {
		pos[r.ID] = i
	}
	for _, id := range lightIDs {
		at, ok := pos[id]
		if !ok {
			t.Fatalf("light request %d pushed out of the window by the flood", id)
		}
		if at > 3 {
			t.Fatalf("light request %d at position %d, want near the front", id, at)
		}
	}
}

// TestRequeuePreservesTenantAndAttempts: a failed batch's requeue must keep
// tenant identity, the charged attempt counter, and the original arrival
// time — losing any of them would let a retry jump (or lose) its place.
func TestRequeuePreservesTenantAndAttempts(t *testing.T) {
	src := rng.New(10)
	s := fairServer(t, nil)
	if _, err := s.SubmitOpts(randTokens(src, 8), time.Minute, SubmitOptions{Tenant: "alpha", Class: fair.ClassInteractive}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	var p *pending
	for _, q := range s.queue {
		p = q
	}
	delete(s.queue, p.req.ID) // simulate selection
	s.mu.Unlock()
	arrival, queuedAt := p.req.Arrival, p.queued

	s.handleBatchFailure([]*pending{p}, errors.New("engine exploded"), time.Now())

	s.mu.Lock()
	back := s.queue[p.req.ID]
	s.mu.Unlock()
	if back == nil {
		t.Fatal("request not requeued")
	}
	if back.req.Tenant != "alpha" || back.class != fair.ClassInteractive {
		t.Fatalf("identity lost: tenant=%q class=%q", back.req.Tenant, back.class)
	}
	if back.attempts != 1 {
		t.Fatalf("attempts = %d, want 1", back.attempts)
	}
	if back.req.Arrival != arrival || !back.queued.Equal(queuedAt) {
		t.Fatal("arrival/queued time changed across requeue")
	}
	if back.notBefore == 0 {
		t.Fatal("requeue must carry backoff")
	}
}

// TestSubmitOptsClassDefaults: an SLO class supplies the weight and, when
// the caller passes no deadline, the deadline default.
func TestSubmitOptsClassDefaults(t *testing.T) {
	src := rng.New(11)
	s := fairServer(t, nil)
	if _, err := s.SubmitOpts(randTokens(src, 8), 0, SubmitOptions{Class: fair.ClassInteractive}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	var p *pending
	for _, q := range s.queue {
		p = q
	}
	s.mu.Unlock()
	cls := fair.DefaultClasses().Lookup(fair.ClassInteractive)
	if p.req.Weight != cls.Weight {
		t.Fatalf("weight = %g, want %g", p.req.Weight, cls.Weight)
	}
	window := p.req.Deadline - p.req.Arrival
	if want := cls.Deadline.Seconds(); window < want*0.9 || window > want*1.1 {
		t.Fatalf("deadline window = %gs, want ~%gs", window, want)
	}
}

// TestHTTPTenantThrottle429: the admission bucket refuses a tenant past its
// budget with 429 + Retry-After, and the per-tenant stats record it.
func TestHTTPTenantThrottle429(t *testing.T) {
	reg := fair.NewRegistry(fair.TenantConfig{Name: "meter", BucketRate: 1, BucketBurst: 8})
	srv, _ := testServer(t, batch.Concat, sched.NewDAS())
	srv.cfg.Limiter = fair.NewLimiter(reg)
	srv.Start()
	ts := httptest.NewServer(NewHTTPHandler(srv))
	t.Cleanup(func() { ts.Close(); srv.Stop() })

	post := func(tenant string, n int) *http.Response {
		body, _ := json.Marshal(InferRequest{Tokens: randTokens(rng.New(12), n), DeadlineMS: 5000})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set(TenantHeader, tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := post("meter", 8); resp.StatusCode != http.StatusOK {
		t.Fatalf("first take: status %d", resp.StatusCode)
	}
	resp := post("meter", 8)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained bucket: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	// Default tenant (no header) is not limited by meter's empty bucket.
	if resp := post("", 8); resp.StatusCode != http.StatusOK {
		t.Fatalf("default tenant: status %d", resp.StatusCode)
	}
	st := srv.Stats()
	if st.Tenants["meter"].Throttled != 1 {
		t.Fatalf("meter throttled = %d, want 1", st.Tenants["meter"].Throttled)
	}
	if st.Tenants["meter"].Admitted != 1 || st.Tenants[fair.DefaultTenant].Admitted != 1 {
		t.Fatalf("admitted counts = %+v", st.Tenants)
	}
}

// TestFairServesBothTenantsLive: end-to-end smoke — a fair server under a
// two-tenant mix delivers work for both and reports a sane Jain index.
func TestFairServesBothTenantsLive(t *testing.T) {
	src := rng.New(13)
	s := fairServer(t, nil)
	s.Start()
	defer s.Stop()

	var chans []<-chan Response
	for i := 0; i < 8; i++ {
		tenant := "a"
		if i%2 == 1 {
			tenant = "b"
		}
		ch, err := s.SubmitOpts(randTokens(src, 6), 10*time.Second,
			SubmitOptions{Tenant: tenant, Class: fair.ClassStandard})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Err != nil {
				t.Fatalf("request %d: %v", i, r.Err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("request %d timed out", i)
		}
	}
	st := s.Stats()
	if st.Tenants["a"].Delivered != 4 || st.Tenants["b"].Delivered != 4 {
		t.Fatalf("deliveries = %+v", st.Tenants)
	}
	if st.JainGoodput < 0.99 {
		t.Fatalf("Jain = %g for an even split", st.JainGoodput)
	}
	if st.ClassP99MS[fair.ClassStandard] <= 0 {
		t.Fatalf("class P99 missing: %+v", st.ClassP99MS)
	}
}
