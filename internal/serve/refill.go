package serve

import (
	"sort"
	"sync"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
)

// refillHook connects one running launch back to the server's queue — the
// serving half of continuous batching. The engine calls it between decode
// steps: Retire delivers a finished request immediately (its response does
// not wait for the batch), Refill admits queued requests into the freed
// token capacity, Reject returns admissions the engine could not seat.
//
// One hook exists per launch and completeBatch closes it before reconciling
// the launch's results. Closing matters for supervision: a
// watchdog-abandoned engine goroutine keeps stepping in the background, and
// without the closed gate it would keep draining the queue and racing
// deliveries against the retry path (a second send on a request's
// capacity-1 response channel would wedge it for good).
type refillHook struct {
	s *Server

	mu     sync.Mutex
	closed bool
	// members maps every request currently inside the launch (initial
	// selection plus admissions) to its pending entry.
	members map[int64]*pending
	// admitted lists mid-flight admissions in admission order; on close they
	// join the launch's selection so completeBatch can reconcile them.
	admitted []*pending
	// delivered marks requests already answered by an early retire.
	delivered map[int64]bool
}

// newRefillHook builds the hook for a launch over its initial selection.
func newRefillHook(s *Server, selected []*pending) *refillHook {
	members := make(map[int64]*pending, len(selected))
	for _, p := range selected {
		members[p.req.ID] = p
	}
	return &refillHook{s: s, members: members, delivered: make(map[int64]bool)}
}

// close seals the hook and hands its state to completeBatch. After close
// every hook method is a no-op (Refill puts raced admissions back).
func (h *refillHook) close() (admitted []*pending, delivered map[int64]bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	return h.admitted, h.delivered
}

// Retire delivers one finished request immediately — the §4.2.2 moment its
// memory frees is also the moment its caller stops waiting.
func (h *refillHook) Retire(res engine.Result) {
	h.mu.Lock()
	if h.closed || h.delivered[res.ID] {
		h.mu.Unlock()
		return
	}
	p := h.members[res.ID]
	if p == nil {
		h.mu.Unlock()
		return
	}
	h.delivered[res.ID] = true
	h.mu.Unlock()
	served := time.Now()
	p.out <- Response{ID: res.ID, Output: res.Output, Queued: p.queued, Served: served}
	s := h.s
	s.mu.Lock()
	s.served++
	s.noteDeliveredLocked(p, served)
	p.prefix.Release()
	s.mu.Unlock()
	s.notify() // Drain watches for progress
}

// Refill picks queued requests for the launch's freed token capacity:
// highest utility first (deadline, then ID breaking ties — the DAS ordering
// the scheduler itself uses), skipping requests still backing off and
// requests whose deadlines already passed. With the fairness layer on the
// draw is in WFQ virtual-finish order instead, so mid-flight admission
// cannot become a side door around tenant isolation. Chosen requests leave
// the queue exactly like a scheduled selection; requeue paths (Reject,
// batch failure) keep their original arrival times and attempt counters.
func (h *refillHook) Refill(free int) []engine.Admission {
	if free <= 0 {
		return nil
	}
	s := h.s
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.mu.Unlock()

	now := s.clock()
	s.mu.Lock()
	var cands []*pending
	for _, p := range s.queue {
		if p.notBefore > now || p.req.Deadline < now || p.req.Len > free {
			continue
		}
		cands = append(cands, p)
	}
	if len(cands) == 0 {
		s.mu.Unlock()
		return nil
	}
	if s.wfq != nil {
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].vfinish != cands[j].vfinish {
				return cands[i].vfinish < cands[j].vfinish
			}
			return cands[i].req.ID < cands[j].req.ID
		})
	} else {
		sort.Slice(cands, func(i, j int) bool {
			ri, rj := cands[i].req, cands[j].req
			if ui, uj := ri.Utility(), rj.Utility(); ui != uj {
				return ui > uj
			}
			if ri.Deadline != rj.Deadline {
				return ri.Deadline < rj.Deadline
			}
			return ri.ID < rj.ID
		})
	}
	budget := free
	chosen := cands[:0]
	for _, p := range cands {
		if p.req.Len > budget {
			continue
		}
		budget -= p.req.Len
		chosen = append(chosen, p)
		delete(s.queue, p.req.ID)
		s.wfqRelease(p, true)
	}
	s.mu.Unlock()

	h.mu.Lock()
	if h.closed {
		// Raced the close (watchdog fired between the queue draw and here):
		// hand everything straight back.
		h.mu.Unlock()
		s.mu.Lock()
		for _, p := range chosen {
			s.queue[p.req.ID] = p
		}
		s.mu.Unlock()
		return nil
	}
	adms := make([]engine.Admission, 0, len(chosen))
	for _, p := range chosen {
		h.members[p.req.ID] = p
		h.admitted = append(h.admitted, p)
		adms = append(adms, engine.Admission{
			ID: p.req.ID, Tokens: p.tokens,
			PrefixLen: p.prefixLen, CachedLen: p.cachedLen,
		})
	}
	h.mu.Unlock()
	return adms
}

// Reject puts an admission the engine could not seat (memory grow refused,
// over-long input) back in the queue, parked for a Poll without charging an
// attempt — the same treatment as a Prepare failure. Arrival time and
// attempt counters are untouched, so DAS utility ordering and backoff caps
// survive the round trip.
func (h *refillHook) Reject(adm engine.Admission, err error) {
	_ = err // the admission never ran; nothing to report
	h.mu.Lock()
	p := h.members[adm.ID]
	delete(h.members, adm.ID)
	for i, q := range h.admitted {
		if q == p {
			h.admitted = append(h.admitted[:i], h.admitted[i+1:]...)
			break
		}
	}
	h.mu.Unlock()
	if p == nil {
		return
	}
	s := h.s
	now := s.clock()
	s.mu.Lock()
	p.notBefore = now + s.cfg.Poll.Seconds()
	s.queue[p.req.ID] = p
	s.mu.Unlock()
	s.notify()
}

// admissionBudget predicts the watchdog extension one admission earns its
// running batch: PredictAdmission when configured, else the cost model's
// prediction for a one-item batch of that length, scaled like the base
// budget (TimeoutSlack). The running total keeps the watchdog calibrated to
// the batch's current composition.
func (s *Server) admissionBudget(adm engine.Admission) time.Duration {
	// A prefix-cache hit only encodes (and occupies) its uncached suffix, so
	// the budget tracks the resident length.
	n := adm.Resident()
	if s.cfg.PredictAdmission != nil {
		return s.cfg.PredictAdmission(n)
	}
	if s.cfg.PredictBatch == nil {
		return 0
	}
	items := []batch.Item{{ID: adm.ID, Len: n}}
	b, _ := batch.PackNaive(items, 1, n)
	if b == nil {
		return 0
	}
	return time.Duration(float64(s.cfg.PredictBatch(b)) * s.cfg.TimeoutSlack)
}
