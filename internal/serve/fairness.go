package serve

import (
	"sort"
	"time"

	"tcb/internal/fair"
	"tcb/internal/sched"
)

// This file is the server side of the multi-tenant fairness layer
// (package fair): WFQ-ordered candidate pools for the scheduler,
// tenant-fair shedding under breaker-open degradation, and the per-tenant
// / per-class accounting surfaced through Stats. Everything here is gated
// on Config.Fair except the accounting, which is maintained whenever
// requests carry tenant identity — counters must not change scheduling
// behaviour, so they are safe (and useful) either way.

// TenantStats is one tenant's terminal-outcome tally in Stats.
type TenantStats struct {
	Admitted  int64 `json:"admitted"`  // accepted submissions
	Throttled int64 `json:"throttled"` // refused by the admission bucket (HTTP front)
	Delivered int64 `json:"delivered"` // responses served successfully
	Missed    int64 `json:"missed"`    // deadline expiries
	Failed    int64 `json:"failed"`    // engine/internal errors after retries
	Shed      int64 `json:"shed"`      // dropped under breaker-open shedding
}

// tenantCounter is the mutable accumulator behind TenantStats (guarded by
// Server.mu).
type tenantCounter struct {
	admitted, delivered, missed, failed, shed int64
}

// latRing is a bounded ring of latency samples (milliseconds) for
// percentile snapshots without unbounded growth on a long-running server.
type latRing struct {
	xs   []float64
	next int
	full bool
}

const latRingCap = 2048

func (r *latRing) add(ms float64) {
	if cap(r.xs) == 0 {
		r.xs = make([]float64, 0, latRingCap)
	}
	if len(r.xs) < cap(r.xs) {
		r.xs = append(r.xs, ms)
		return
	}
	r.xs[r.next] = ms
	r.next = (r.next + 1) % len(r.xs)
	r.full = true
}

// percentile returns the p-th percentile of the retained window (0 when
// empty).
func (r *latRing) percentile(p float64) float64 {
	if len(r.xs) == 0 {
		return 0
	}
	tmp := append([]float64(nil), r.xs...)
	sort.Float64s(tmp)
	idx := int(p / 100 * float64(len(tmp)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

// tenantOf normalizes a pending's tenant for accounting.
func tenantOf(p *pending) string {
	if p.req.Tenant == "" {
		return fair.DefaultTenant
	}
	return p.req.Tenant
}

// counterLocked returns (creating) the tenant's accumulator. Callers hold
// s.mu.
func (s *Server) counterLocked(p *pending) *tenantCounter {
	name := tenantOf(p)
	c := s.tenantStats[name]
	if c == nil {
		c = &tenantCounter{}
		s.tenantStats[name] = c
	}
	return c
}

// noteDeliveredLocked records a successful delivery (callers hold s.mu).
func (s *Server) noteDeliveredLocked(p *pending, served time.Time) {
	s.counterLocked(p).delivered++
	if p.class != "" {
		r := s.classLat[p.class]
		if r == nil {
			r = &latRing{}
			s.classLat[p.class] = r
		}
		r.add(served.Sub(p.queued).Seconds() * 1000)
	}
}

// wfqRelease settles the request's WFQ stamp exactly once: dispatched
// requests advance the virtual clock; abandoned ones (expired, shed,
// failed without ever running) just release their tenant's backlog.
func (s *Server) wfqRelease(p *pending, dispatched bool) {
	if s.wfq == nil || p.stampDone {
		return
	}
	p.stampDone = true
	if dispatched {
		s.wfq.Dispatched(tenantOf(p), p.vfinish)
	} else {
		s.wfq.Abandoned(tenantOf(p))
	}
}

// fairPoolLocked builds the scheduler's candidate pool in WFQ order: the
// eligible queue sorted by virtual finish time, truncated to the fair
// window. The window is the enforcement point — the scheduler (DAS sorts
// by utility internally) only ever sees a candidate set in which every
// backlogged tenant is represented near its weighted share, so a flooding
// tenant cannot crowd the others out of consideration no matter how deep
// its backlog runs. Callers hold s.mu.
func (s *Server) fairPoolLocked(now float64) []*sched.Request {
	cands := make([]*pending, 0, len(s.queue))
	for _, p := range s.queue {
		if p.notBefore > now {
			continue // backing off after a failed batch
		}
		cands = append(cands, p)
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].vfinish != cands[j].vfinish {
			return cands[i].vfinish < cands[j].vfinish
		}
		return cands[i].req.ID < cands[j].req.ID
	})
	window := s.cfg.FairWindow
	if window > 0 && len(cands) > window {
		cands = cands[:window]
	}
	pool := make([]*sched.Request, len(cands))
	for i, p := range cands {
		pool[i] = p.req
	}
	return pool
}

// shedFairLocked evicts queued requests beyond OpenQueueCap tenant-fairly:
// the tenant most over its weighted share of the reduced queue sheds
// first, lowest utility first within the tenant. A flooding tenant
// therefore absorbs its own losses — a well-behaved tenant under its share
// is never touched while anyone is over. Callers hold s.mu.
func (s *Server) shedFairLocked() {
	excess := len(s.queue) - s.cfg.OpenQueueCap
	if excess <= 0 {
		return
	}
	// Group the queue by tenant, each group sorted shed-first (lowest
	// utility, ties to the younger ID — the same victim order the global
	// shed uses).
	groups := make(map[string][]*pending)
	for _, p := range s.queue {
		name := tenantOf(p)
		groups[name] = append(groups[name], p)
	}
	names := make([]string, 0, len(groups))
	var totalWeight float64
	weightOf := make(map[string]float64, len(groups))
	for name := range groups {
		names = append(names, name)
		w := 1.0
		if s.cfg.Registry != nil {
			w = s.cfg.Registry.Weight(name)
		}
		weightOf[name] = w
		totalWeight += w
	}
	sort.Strings(names) // deterministic tie-breaking across tenants
	for _, name := range names {
		g := groups[name]
		sort.Slice(g, func(i, j int) bool {
			ui, uj := g[i].req.Utility(), g[j].req.Utility()
			if ui != uj {
				return ui > uj // keep-first order; shed from the tail
			}
			return g[i].req.ID < g[j].req.ID
		})
		groups[name] = g
	}
	shed := func(p *pending) {
		p.out <- Response{ID: p.req.ID, Err: ErrShed, Queued: p.queued}
		delete(s.queue, p.req.ID)
		s.shed++
		s.counterLocked(p).shed++
		s.wfqRelease(p, false)
		p.prefix.Release()
	}
	for n := 0; n < excess; n++ {
		// Most-over-share tenant: maximize queued/share. share_i is the
		// tenant's weighted fraction of the reduced cap; comparing
		// queued_i/share_i avoids materializing fractional shares.
		var victimName string
		var worst float64 = -1
		for _, name := range names {
			g := groups[name]
			if len(g) == 0 {
				continue
			}
			over := float64(len(g)) * totalWeight / (weightOf[name] * float64(s.cfg.OpenQueueCap))
			if over > worst {
				worst, victimName = over, name
			}
		}
		if victimName == "" {
			return // queue emptied early
		}
		g := groups[victimName]
		shed(g[len(g)-1])
		groups[victimName] = g[:len(g)-1]
	}
}

// tenantStatsLocked snapshots the per-tenant tallies, folding in the
// admission limiter's throttle counts. Callers hold s.mu.
func (s *Server) tenantStatsLocked() (map[string]TenantStats, float64) {
	var lim map[string]fair.AdmissionCounts
	if s.cfg.Limiter != nil {
		lim = s.cfg.Limiter.Counts()
	}
	if len(s.tenantStats) == 0 && len(lim) == 0 {
		return nil, 1
	}
	out := make(map[string]TenantStats, len(s.tenantStats))
	for name, c := range s.tenantStats {
		out[name] = TenantStats{
			Admitted:  c.admitted,
			Delivered: c.delivered,
			Missed:    c.missed,
			Failed:    c.failed,
			Shed:      c.shed,
		}
	}
	for name, c := range lim {
		t := out[name]
		t.Throttled = c.Throttled
		out[name] = t
	}
	goodput := make(map[string]int64, len(out))
	for name, t := range out {
		goodput[name] = t.Delivered
	}
	return out, fair.JainIndexMap(goodput)
}

// classP99Locked snapshots per-class P99 latency (ms). Callers hold s.mu.
func (s *Server) classP99Locked() map[string]float64 {
	if len(s.classLat) == 0 {
		return nil
	}
	out := make(map[string]float64, len(s.classLat))
	for class, r := range s.classLat {
		out[class] = r.percentile(99)
	}
	return out
}
