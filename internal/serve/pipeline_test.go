package serve

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/gpu"
	"tcb/internal/model"
	"tcb/internal/rng"
	"tcb/internal/sched"
)

// pipelineServer builds a server with the three-stage pipeline enabled over
// a real engine.
func pipelineServer(t *testing.T, mutate func(*Config)) (*Server, *engine.Engine) {
	t.Helper()
	cfg := model.Config{
		VocabSize: testVocab, DModel: 32, NumHeads: 4, DFF: 64,
		EncLayers: 1, DecLayers: 1, MaxLen: 256, Eps: 1e-5,
	}
	e := engine.New(model.New(cfg, 5), 3)
	sc := Config{
		Engine: e, Scheduler: sched.NewDAS(), Scheme: batch.Concat,
		B: 4, L: 64, Poll: 200 * time.Microsecond,
		Pipeline: true,
	}
	if mutate != nil {
		mutate(&sc)
	}
	s, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	return s, e
}

// collectOutputs submits n deterministic requests and returns each one's
// response in submission order after the server drains.
func collectOutputs(t *testing.T, s *Server, seed uint64, n int) []Response {
	t.Helper()
	src := rng.New(seed)
	chans := make([]<-chan Response, 0, n)
	for i := 0; i < n; i++ {
		ch, err := s.Submit(randTokens(src, 3+i%10), 30*time.Second)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans = append(chans, ch)
	}
	s.Drain()
	out := make([]Response, 0, n)
	for i, ch := range chans {
		select {
		case resp := <-ch:
			out = append(out, resp)
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d: no response after drain", i)
		}
	}
	return out
}

// TestPipelinedMatchesSerialOutputs pins the pipeline to bitwise-identical
// per-request outputs: concat isolation means a request's output depends
// only on its own tokens, so overlapping batches cannot change it.
func TestPipelinedMatchesSerialOutputs(t *testing.T) {
	const n = 24
	serial, _ := testServer(t, batch.Concat, sched.NewDAS())
	serial.Start()
	want := collectOutputs(t, serial, 33, n)

	pipe, _ := pipelineServer(t, nil)
	pipe.Start()
	got := collectOutputs(t, pipe, 33, n)

	for i := range want {
		if want[i].Err != nil || got[i].Err != nil {
			t.Fatalf("request %d: serial err %v, pipelined err %v", i, want[i].Err, got[i].Err)
		}
		if len(want[i].Output) != len(got[i].Output) {
			t.Fatalf("request %d: output lengths %d vs %d", i, len(want[i].Output), len(got[i].Output))
		}
		for j := range want[i].Output {
			if want[i].Output[j] != got[i].Output[j] {
				t.Fatalf("request %d token %d: serial %d, pipelined %d",
					i, j, want[i].Output[j], got[i].Output[j])
			}
		}
	}
}

// TestPipelineUnderChaos drives the three-stage pipeline with seeded fault
// injection (this package's CI race run covers it with -race): the server
// must survive every injected fault, keep serving, and drain clean.
func TestPipelineUnderChaos(t *testing.T) {
	var chaos *ChaosRunner
	s, _ := pipelineServer(t, func(c *Config) {
		chaos = NewChaosRunner(c.Engine, ChaosConfig{
			ErrRate: 0.2, PanicRate: 0.1, SlowRate: 0.1, LoseRate: 0.1,
			SlowDelay: time.Millisecond, Seed: 7,
		})
		c.Engine = chaos
		c.Retry = RetryPolicy{MaxAttempts: 4, Backoff: 500 * time.Microsecond}
		c.BreakerThreshold = 8
		c.BreakerCooldown = 2 * time.Millisecond
		c.DrainTimeout = 20 * time.Second
	})
	s.Start()
	resps := collectOutputs(t, s, 44, 40)
	served := 0
	for _, r := range resps {
		if r.Err == nil {
			served++
		}
	}
	if served == 0 {
		t.Fatal("pipeline under chaos served nothing")
	}
	c := chaos.Counts()
	if c.Errs+c.Panics+c.Slows+c.Lost == 0 {
		t.Fatal("chaos injected nothing; test is vacuous")
	}
	if q := s.QueueLen(); q != 0 {
		t.Fatalf("%d requests still queued after drain", q)
	}
}

// TestPipelineNoGoroutineLeakAfterDrain proves the pipeline stages exit on
// Drain and the kernel pool helpers stay parked (not grown) — zero
// goroutines beyond the pre-server baseline.
func TestPipelineNoGoroutineLeakAfterDrain(t *testing.T) {
	// Warm the shared kernel pool first so its persistent helpers are part
	// of the baseline, not counted as a leak.
	warm, _ := pipelineServer(t, nil)
	warm.Start()
	collectOutputs(t, warm, 55, 4)

	baseline := runtime.NumGoroutine()
	s, _ := pipelineServer(t, nil)
	s.Start()
	collectOutputs(t, s, 56, 12)

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("%d goroutines after drain, baseline %d\n%s",
			got, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// TestStageStatsSplit checks the per-stage latency counters accrue on both
// loop shapes and that Pipelined reports the active mode.
func TestStageStatsSplit(t *testing.T) {
	serial, _ := testServer(t, batch.Concat, sched.NewDAS())
	serial.Start()
	collectOutputs(t, serial, 66, 6)
	st := serial.Stats()
	if st.Pipelined {
		t.Fatal("serial server reports Pipelined")
	}
	if st.ScheduleNs <= 0 || st.ComputeNs <= 0 || st.CleanupNs <= 0 {
		t.Fatalf("serial stage counters: %+v", st)
	}

	pipe, _ := pipelineServer(t, nil)
	pipe.Start()
	collectOutputs(t, pipe, 66, 6)
	st = pipe.Stats()
	if !st.Pipelined {
		t.Fatal("pipelined server does not report Pipelined")
	}
	if st.ScheduleNs <= 0 || st.ComputeNs <= 0 || st.CleanupNs <= 0 {
		t.Fatalf("pipelined stage counters: %+v", st)
	}
}

// TestPipelineStageOverruns wires an absurdly tight stage prediction and
// checks overruns are counted (the observability hook for a mis-calibrated
// cost model).
func TestPipelineStageOverruns(t *testing.T) {
	s, _ := pipelineServer(t, func(c *Config) {
		c.TimeoutSlack = 1
		c.PredictStages = func(*batch.Batch) (time.Duration, time.Duration) {
			return time.Nanosecond, time.Nanosecond
		}
	})
	s.Start()
	collectOutputs(t, s, 77, 6)
	if s.Stats().StageOverruns == 0 {
		t.Fatal("no stage overruns counted under a 1ns budget")
	}
}

// hangRunner wedges the first engine invocation forever (until the test
// releases it); later invocations pass through. It models the hung launch
// the supervision watchdog abandons.
type hangRunner struct {
	inner   PreparedRunner
	calls   atomic.Int64
	release chan struct{}
}

func (h *hangRunner) Run(b *batch.Batch, tokens map[int64][]int) (*engine.Report, error) {
	return h.inner.Run(b, tokens)
}

func (h *hangRunner) Prepare(b *batch.Batch, tokens map[int64][]int) (*engine.Prepared, error) {
	return h.inner.Prepare(b, tokens)
}

func (h *hangRunner) RunPrepared(p *engine.Prepared) (*engine.Report, error) {
	if h.calls.Add(1) == 1 {
		<-h.release
		return nil, ErrChaos
	}
	return h.inner.RunPrepared(p)
}

// TestReleaseBeforeRequeue pins the deadlock fix: a batch killed by the
// watchdog has its memory reservation released *before* its requests are
// requeued, so the retry's admission cannot starve against the abandoned
// run's own reservation. The memory manager has room for exactly one batch;
// without the early release the retry could never be admitted.
func TestReleaseBeforeRequeue(t *testing.T) {
	hang := &hangRunner{release: make(chan struct{})}
	defer close(hang.release)
	var eng *engine.Engine
	s, _ := pipelineServer(t, func(c *Config) {
		eng = c.Engine.(*engine.Engine)
		// Capacity for exactly one single-row batch: TotalTokens == L.
		eng.Mem = gpu.NewMemoryManager(int64(64) * eng.BytesPerToken)
		hang.inner = eng
		c.Engine = hang
		c.B = 1
		c.Retry = RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond}
		c.BreakerThreshold = -1 // isolate the retry path from breaker trips
		c.PredictBatch = func(*batch.Batch) time.Duration { return 20 * time.Millisecond }
		c.TimeoutSlack = 1
		c.MinBatchTimeout = 20 * time.Millisecond
		c.DrainTimeout = 20 * time.Second
	})
	s.Start()
	src := rng.New(88)
	ch, err := s.Submit(randTokens(src, 5), 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	select {
	case resp = <-ch:
	case <-time.After(20 * time.Second):
		t.Fatal("no response: retry starved against the hung run's reservation")
	}
	if resp.Err != nil {
		t.Fatalf("retry after watchdog kill failed: %v", resp.Err)
	}
	if got := s.Stats().Timeouts; got != 1 {
		t.Fatalf("timeouts = %d, want 1", got)
	}
	s.Drain()
}
