package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/rng"
	"tcb/internal/sched"
)

// scriptRunner fails its first failN runs (optionally by panicking), then
// delegates to real — or, with real nil, synthesizes a one-token output per
// item. It records every batch it was launched with.
type scriptRunner struct {
	mu        sync.Mutex
	failN     int
	panicMode bool
	real      Runner
	runs      int
	batches   []*batch.Batch
}

var errScripted = errors.New("scripted engine failure")

func (r *scriptRunner) Run(b *batch.Batch, tokens map[int64][]int) (*engine.Report, error) {
	r.mu.Lock()
	r.runs++
	r.batches = append(r.batches, b)
	failing := r.failN > 0
	if failing {
		r.failN--
	}
	r.mu.Unlock()
	if failing {
		if r.panicMode {
			panic("scripted engine panic")
		}
		return nil, errScripted
	}
	if r.real != nil {
		return r.real.Run(b, tokens)
	}
	rep := &engine.Report{}
	for _, it := range b.Items() {
		rep.Results = append(rep.Results, engine.Result{ID: it.ID, Output: []int{int(it.ID)}})
	}
	return rep, nil
}

func (r *scriptRunner) snapshot() (runs int, batches []*batch.Batch) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs, append([]*batch.Batch(nil), r.batches...)
}

func waitStats(t *testing.T, s *Server, ok func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if ok(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("condition never reached; stats = %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(3, time.Second)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }

	// Failures below the threshold keep it closed; a success resets them.
	b.Record(false)
	b.Record(false)
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state = %v before threshold", st)
	}
	b.Record(false) // third consecutive: trip
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state = %v after threshold, want open", st)
	}
	if b.Allow() {
		t.Fatal("open breaker must refuse work")
	}
	// Cooldown elapses: half-open admits a probe.
	now = now.Add(time.Second)
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state = %v after cooldown, want half-open", st)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker must admit a probe")
	}
	// Failed probe re-opens; the next cooldown + good probe closes.
	b.Record(false)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state = %v after failed probe, want open", st)
	}
	now = now.Add(time.Second)
	b.Record(true)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state = %v after good probe, want closed", st)
	}
	if got := b.Trips(); got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}
}

func TestSupervisedRunnerPanicCapture(t *testing.T) {
	sr := &SupervisedRunner{Inner: &scriptRunner{failN: 1, panicMode: true}}
	_, err := sr.Run(&batch.Batch{}, nil)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error must carry the goroutine stack")
	}
}

// slowRunner blocks until released (or forever with a nil channel).
type slowRunner struct {
	release <-chan struct{}
}

func (r *slowRunner) Run(*batch.Batch, map[int64][]int) (*engine.Report, error) {
	<-r.release
	return nil, errors.New("released")
}

func TestSupervisedRunnerTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	br := NewBreaker(1, time.Hour)
	sr := &SupervisedRunner{
		Inner:   &slowRunner{release: release},
		Timeout: func(*batch.Batch) time.Duration { return 20 * time.Millisecond },
		Breaker: br,
	}
	start := time.Now()
	_, err := sr.Run(&batch.Batch{}, nil)
	if !errors.Is(err, ErrBatchTimeout) {
		t.Fatalf("err = %v, want ErrBatchTimeout", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("watchdog took %v", el)
	}
	// The timeout counts as a failure: threshold 1 must have tripped.
	if st := br.State(); st != BreakerOpen {
		t.Fatalf("breaker state after timeout = %v, want open", st)
	}
	// And the open breaker refuses the next run without touching the inner.
	if _, err := sr.Run(&batch.Batch{}, nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
}

// TestRetryServesUnexpired pins the core requeue semantics: after a failed
// batch, requests with time and attempts left are served on retry while
// requests whose deadline lapses during backoff expire with
// ErrDeadlineExceeded — not with the engine error.
func TestRetryServesUnexpired(t *testing.T) {
	_, realEngine := testServer(t, batch.Concat, sched.NewDAS())
	srv, err := New(Config{
		Engine:    &scriptRunner{failN: 1, real: realEngine},
		Scheduler: sched.NewDAS(),
		Scheme:    batch.Concat,
		B:         4, L: 64,
		Poll:  200 * time.Microsecond,
		Retry: RetryPolicy{MaxAttempts: 3, Backoff: 60 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(71)
	// Both submitted before Start so the first (failing) batch holds both.
	longCh, err := srv.Submit(randTokens(src, 5), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	shortCh, err := srv.Submit(randTokens(src, 6), 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	long := <-longCh
	if long.Err != nil {
		t.Fatalf("long-deadline request must be served on retry, got %v", long.Err)
	}
	short := <-shortCh
	if !errors.Is(short.Err, ErrDeadlineExceeded) {
		t.Fatalf("short-deadline request err = %v, want ErrDeadlineExceeded", short.Err)
	}
	st := srv.Stats()
	if st.Served != 1 || st.Missed != 1 || st.Retried != 2 {
		t.Fatalf("stats = %+v, want served=1 missed=1 retried=2", st)
	}
}

// TestBreakerOpensAndRecovers drives the full state machine through the
// server: consecutive failures trip the breaker, the cooldown admits a
// single-row naive probe, and a good probe restores normal service.
func TestBreakerOpensAndRecovers(t *testing.T) {
	runner := &scriptRunner{failN: 3}
	srv, err := New(Config{
		Engine:    runner,
		Scheduler: sched.NewDAS(),
		Scheme:    batch.Concat,
		B:         4, L: 64,
		Poll:             200 * time.Microsecond,
		Retry:            RetryPolicy{MaxAttempts: 10, Backoff: time.Millisecond},
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(72)
	ch1, err := srv.Submit(randTokens(src, 4), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := srv.Submit(randTokens(src, 6), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	for i, ch := range []<-chan Response{ch1, ch2} {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				t.Fatalf("request %d failed across breaker recovery: %v", i, resp.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d hung", i)
		}
	}
	st := srv.Stats()
	if st.BreakerTrips != 1 {
		t.Fatalf("breaker trips = %d, want 1", st.BreakerTrips)
	}
	if st.BreakerState != "closed" {
		t.Fatalf("breaker state = %q after recovery", st.BreakerState)
	}
	if st.Retried < 2 {
		t.Fatalf("retried = %d, want >= 2", st.Retried)
	}
	// The first post-trip launch must be the half-open probe: one naive row
	// holding the single highest-utility request.
	_, batches := runner.snapshot()
	if len(batches) < 4 {
		t.Fatalf("expected >= 4 launches, got %d", len(batches))
	}
	probe := batches[3]
	if probe.Scheme != batch.Naive || len(probe.Rows) != 1 || probe.NumItems() != 1 {
		t.Fatalf("probe batch = scheme %v, %d rows, %d items; want 1-row 1-item naive",
			probe.Scheme, len(probe.Rows), probe.NumItems())
	}
	if probe.Items()[0].Len != 4 {
		t.Fatalf("probe chose item of len %d, want the highest-utility (shortest) one", probe.Items()[0].Len)
	}
}

// TestBreakerShedsWhileOpen pins degraded service: while open, queued
// requests beyond the reduced bound are shed lowest-utility-first and new
// submissions beyond it are refused with ErrBreakerOpen.
func TestBreakerShedsWhileOpen(t *testing.T) {
	srv, err := New(Config{
		Engine:    &scriptRunner{failN: 1 << 30},
		Scheduler: sched.NewDAS(),
		Scheme:    batch.Concat,
		B:         4, L: 64,
		Poll:             200 * time.Microsecond,
		Retry:            RetryPolicy{MaxAttempts: 100, Backoff: time.Millisecond},
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour, // stay open for the whole test
		OpenQueueCap:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(73)
	keep, err := srv.Submit(randTokens(src, 2), 30*time.Second) // highest utility
	if err != nil {
		t.Fatal(err)
	}
	shedA, err := srv.Submit(randTokens(src, 10), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	shedB, err := srv.Submit(randTokens(src, 12), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()

	waitStats(t, srv, func(st Stats) bool { return st.Shed == 2 })
	for name, ch := range map[string]<-chan Response{"shedA": shedA, "shedB": shedB} {
		resp := <-ch
		if !errors.Is(resp.Err, ErrShed) || !errors.Is(resp.Err, ErrBreakerOpen) {
			t.Fatalf("%s err = %v, want ErrShed (wrapping ErrBreakerOpen)", name, resp.Err)
		}
	}
	// Queue is at the reduced bound: new work is refused while open.
	if _, err := srv.Submit(randTokens(src, 3), time.Second); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("submit while open = %v, want ErrBreakerOpen", err)
	}
	if st := srv.Stats(); st.BreakerState != "open" {
		t.Fatalf("breaker state = %q, want open", st.BreakerState)
	}
	srv.Stop()
	if resp := <-keep; !errors.Is(resp.Err, ErrServerClosed) {
		t.Fatalf("kept request err = %v, want ErrServerClosed after Stop", resp.Err)
	}
}

// TestDrainDeadlineWedgedEngine pins the Drain bound: with the engine stuck
// forever inside a batch, Drain must fail the still-queued requests with
// ErrServerClosed and return at its deadline instead of blocking.
func TestDrainDeadlineWedgedEngine(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv, err := New(Config{
		Engine:    &slowRunner{release: release},
		Scheduler: sched.NewDAS(),
		Scheme:    batch.Concat,
		B:         1, L: 8,
		Poll:             time.Millisecond,
		Retry:            RetryPolicy{MaxAttempts: 1},
		BreakerThreshold: -1,
		DrainTimeout:     80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(74)
	var chans []<-chan Response
	for i := 0; i < 3; i++ {
		// Each request fills the whole L=8 row, so exactly one is in
		// flight (wedged) and two stay queued.
		ch, err := srv.Submit(randTokens(src, 8), 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	srv.Start()
	time.Sleep(10 * time.Millisecond) // let the first batch wedge

	start := time.Now()
	srv.Drain()
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("Drain blocked %v despite its deadline", el)
	}
	closed := 0
	for _, ch := range chans {
		select {
		case resp := <-ch:
			if !errors.Is(resp.Err, ErrServerClosed) {
				t.Fatalf("drained request err = %v, want ErrServerClosed", resp.Err)
			}
			closed++
		default:
			// The in-flight request resolves only when the wedge releases.
		}
	}
	if closed != 2 {
		t.Fatalf("%d queued requests failed at the drain deadline, want 2", closed)
	}
}

func TestSubmitSlotSizeValidation(t *testing.T) {
	cfg := Config{
		Scheduler: sched.NewSlottedDAS(),
		Scheme:    batch.SlottedConcat,
		B:         4, L: 64, SlotSize: 8,
	}
	cfg.Engine = &scriptRunner{}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(75)
	if _, err := srv.Submit(randTokens(src, 8), time.Second); err != nil {
		t.Fatalf("slot-sized request rejected: %v", err)
	}
	_, err = srv.Submit(randTokens(src, 10), time.Second)
	var tooLong *TooLongError
	if !errors.As(err, &tooLong) {
		t.Fatalf("over-slot submit err = %v, want *TooLongError", err)
	}
	if !tooLong.Slot || tooLong.Limit != 8 || tooLong.Len != 10 {
		t.Fatalf("unexpected TooLongError %+v", tooLong)
	}
	// Row-capacity overflows keep the typed error too, without Slot.
	_, err = srv.Submit(randTokens(src, 65), time.Second)
	if !errors.As(err, &tooLong) || tooLong.Slot {
		t.Fatalf("over-row submit err = %v, want row-capacity *TooLongError", err)
	}
	// A slot size beyond the row is a configuration error.
	cfg.SlotSize = 128
	if _, err := New(cfg); err == nil {
		t.Fatal("SlotSize > L must fail validation")
	}
}

// TestRetryBeatsNoRetryUnderChaos is the acceptance pin: under the same
// seeded 20% error / 5% panic fault schedule, requeueing failed batches
// serves strictly more requests than failing whole batches, the process
// never crashes, and panics surface as counted errors.
func TestRetryBeatsNoRetryUnderChaos(t *testing.T) {
	run := func(maxAttempts int) Stats {
		_, realEngine := testServer(t, batch.Concat, sched.NewDAS())
		// Seed 6 injects faults into the first three launches, so the
		// no-retry run demonstrably loses whole batches.
		chaos := NewChaosRunner(realEngine, ChaosConfig{ErrRate: 0.2, PanicRate: 0.05, Seed: 6})
		srv, err := New(Config{
			Engine:    chaos,
			Scheduler: sched.NewDAS(),
			Scheme:    batch.Concat,
			B:         2, L: 32,
			Poll:             200 * time.Microsecond,
			Retry:            RetryPolicy{MaxAttempts: maxAttempts, Backoff: time.Millisecond},
			BreakerThreshold: 5,
			BreakerCooldown:  20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(77)
		var chans []<-chan Response
		for i := 0; i < 36; i++ {
			ch, err := srv.Submit(randTokens(src, src.IntRange(3, 8)), 30*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			chans = append(chans, ch)
		}
		srv.Start()
		for _, ch := range chans {
			select {
			case <-ch:
			case <-time.After(20 * time.Second):
				t.Fatal("request hung under chaos")
			}
		}
		st := srv.Stats()
		srv.Stop()
		return st
	}

	off := run(1)
	on := run(4)
	if off.Failed == 0 {
		t.Fatalf("chaos seed injected no failures in the no-retry run: %+v", off)
	}
	if on.Served <= off.Served {
		t.Fatalf("retry must serve strictly more: retry-on served %d vs retry-off %d",
			on.Served, off.Served)
	}
	if on.Retried == 0 {
		t.Fatalf("retry-on run recorded no requeues: %+v", on)
	}
}

// TestConcurrentSubmitStopDrain races submissions against Drain and Stop
// over a slow, faulty engine: every accepted request must resolve exactly
// once and the counters must balance.
func TestConcurrentSubmitStopDrain(t *testing.T) {
	chaos := NewChaosRunner(&scriptRunner{}, ChaosConfig{
		ErrRate: 0.2, SlowRate: 0.5, SlowDelay: 2 * time.Millisecond, Seed: 3,
	})
	srv, err := New(Config{
		Engine:    chaos,
		Scheduler: sched.NewDAS(),
		Scheme:    batch.Concat,
		B:         4, L: 64,
		Poll:         200 * time.Microsecond,
		Retry:        RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond},
		DrainTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()

	const clients = 8
	const perClient = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			src := rng.New(uint64(c) + 200)
			for i := 0; i < perClient; i++ {
				ch, err := srv.Submit(randTokens(src, src.IntRange(2, 10)), 5*time.Second)
				if err != nil {
					continue // closed/draining/full: rejected fast is fine
				}
				select {
				case <-ch:
				case <-time.After(10 * time.Second):
					t.Error("accepted request never resolved")
					return
				}
			}
		}(c)
	}
	var lifecycle sync.WaitGroup
	lifecycle.Add(2)
	go func() {
		defer lifecycle.Done()
		time.Sleep(5 * time.Millisecond)
		srv.Drain()
	}()
	go func() {
		defer lifecycle.Done()
		time.Sleep(8 * time.Millisecond)
		srv.Stop()
	}()
	wg.Wait()
	lifecycle.Wait()

	st := srv.Stats()
	if st.Queued != 0 {
		t.Fatalf("queue not empty after shutdown: %+v", st)
	}
	if got := st.Served + st.Missed + st.Failed + st.Shed; got != st.Submitted {
		t.Fatalf("counters leak requests: served+missed+failed+shed = %d, submitted = %d (%+v)",
			got, st.Submitted, st)
	}
}
