package serve

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"tcb/internal/batch"
	"tcb/internal/rng"
	"tcb/internal/sched"
)

func TestParseChaos(t *testing.T) {
	cfg, err := ParseChaos("err=0.2,panic=0.05,slow=0.1:50ms,lose=0.02,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := ChaosConfig{
		ErrRate: 0.2, PanicRate: 0.05, SlowRate: 0.1, LoseRate: 0.02,
		SlowDelay: 50 * time.Millisecond, Seed: 7,
	}
	if cfg != want {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}
	cfg, err = ParseChaos("killafter=20,wedgeafter=30")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.KillAfter != 20 || cfg.WedgeAfter != 30 || !cfg.Enabled() {
		t.Fatalf("parsed %+v, want killafter=20 wedgeafter=30 enabled", cfg)
	}
	if empty, err := ParseChaos("  "); err != nil || empty.Enabled() {
		t.Fatalf("empty spec: cfg=%+v err=%v", empty, err)
	}
	for _, bad := range []string{
		"err",         // no value
		"err=1.5",     // rate out of range
		"panic=-0.1",  // negative rate
		"slow=0.1:0s", // non-positive delay
		"slow=0.1:x",  // unparseable delay
		"seed=abc",    // bad seed
		"flood=0.5",   // unknown mode
		"killafter=0", // non-positive count
		"wedgeafter=x",
	} {
		if _, err := ParseChaos(bad); err == nil {
			t.Errorf("spec %q must fail to parse", bad)
		}
	}
}

// chaosTrace drives a ChaosRunner n times and records the observable fault
// sequence.
func chaosTrace(cfg ChaosConfig, n int) []string {
	var trace []string
	c := NewChaosRunner(&scriptRunner{}, cfg)
	b := &batch.Batch{Scheme: batch.Concat, Rows: []batch.Row{
		{Items: []batch.Item{{ID: 1, Len: 2}, {ID: 2, Len: 3}}, PadTo: 8},
	}}
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					trace = append(trace, "panic")
				}
			}()
			rep, err := c.Run(b, nil)
			switch {
			case err != nil:
				trace = append(trace, "err")
			default:
				trace = append(trace, fmt.Sprintf("ok:%d", len(rep.Results)))
			}
		}()
	}
	return trace
}

// TestChaosDeterminism pins the injector's contract: the same seed yields
// the same fault schedule, call for call.
func TestChaosDeterminism(t *testing.T) {
	cfg := ChaosConfig{
		ErrRate: 0.3, PanicRate: 0.2, LoseRate: 0.3,
		SlowRate: 0.1, SlowDelay: time.Microsecond, Seed: 42,
	}
	a := chaosTrace(cfg, 60)
	b := chaosTrace(cfg, 60)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	modes := map[string]bool{}
	for _, ev := range a {
		modes[ev] = true
	}
	for _, want := range []string{"err", "panic", "ok:1", "ok:2"} {
		if !modes[want] {
			t.Fatalf("60 draws at these rates never produced %q: %v", want, a)
		}
	}
}

// TestChaosKillAfter pins the replica-death trigger: the first N calls run
// clean (no random modes armed), every later call fails with ErrChaosKilled,
// and the count-based trigger reports via Counts.
func TestChaosKillAfter(t *testing.T) {
	c := NewChaosRunner(&scriptRunner{}, ChaosConfig{KillAfter: 3})
	b := &batch.Batch{Scheme: batch.Concat, Rows: []batch.Row{
		{Items: []batch.Item{{ID: 1, Len: 2}}, PadTo: 8},
	}}
	for i := 0; i < 3; i++ {
		if _, err := c.Run(b, nil); err != nil {
			t.Fatalf("call %d before the trigger failed: %v", i+1, err)
		}
	}
	for i := 0; i < 4; i++ {
		_, err := c.Run(b, nil)
		if !errors.Is(err, ErrChaosKilled) {
			t.Fatalf("call after kill trigger: err = %v, want ErrChaosKilled", err)
		}
	}
	if got := c.Counts().Kills; got != 4 {
		t.Fatalf("kills = %d, want 4", got)
	}
}

// TestChaosWedgeAfterClose pins the hung-replica trigger: calls past the
// threshold block until Close releases them with an ErrChaos-wrapped error —
// the teardown path a cluster uses to unwedge abandoned engine goroutines.
func TestChaosWedgeAfterClose(t *testing.T) {
	c := NewChaosRunner(&scriptRunner{}, ChaosConfig{WedgeAfter: 1})
	b := &batch.Batch{Scheme: batch.Concat, Rows: []batch.Row{
		{Items: []batch.Item{{ID: 1, Len: 2}}, PadTo: 8},
	}}
	if _, err := c.Run(b, nil); err != nil {
		t.Fatalf("call before the trigger failed: %v", err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := c.Run(b, nil)
		errc <- err
	}()
	select {
	case err := <-errc:
		t.Fatalf("wedged call returned before Close: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	c.Close()
	c.Close() // idempotent
	select {
	case err := <-errc:
		if !errors.Is(err, ErrChaos) {
			t.Fatalf("released wedge err = %v, want ErrChaos", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not release the wedged call")
	}
	if got := c.Counts().Wedges; got != 1 {
		t.Fatalf("wedges = %d, want 1", got)
	}
}

// TestChaosLostResultRetried pins the lost-result path end to end: a report
// missing a request requeues just that request; when every attempt loses
// it, the typed "lost by engine" error surfaces instead of a hang.
func TestChaosLostResultRetried(t *testing.T) {
	chaos := NewChaosRunner(&scriptRunner{}, ChaosConfig{LoseRate: 1, Seed: 1})
	srv, err := New(Config{
		Engine:    chaos,
		Scheduler: sched.NewDAS(),
		Scheme:    batch.Concat,
		B:         1, L: 64,
		Poll:  200 * time.Microsecond,
		Retry: RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	ch, err := srv.Submit(randTokens(rng.New(81), 4), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp := <-ch
	if resp.Err == nil || !strings.Contains(resp.Err.Error(), "lost by engine") {
		t.Fatalf("err = %v, want lost-by-engine after exhausted retries", resp.Err)
	}
	st := srv.Stats()
	if st.Retried != 2 || st.Failed != 1 {
		t.Fatalf("stats = %+v, want retried=2 failed=1", st)
	}
	if got := chaos.Counts().Lost; got != 3 {
		t.Fatalf("chaos lost count = %d, want 3", got)
	}
}

// TestChaosPanicsSurviveServer pins that injected panics never kill the
// process: they surface as counted errors and the server keeps serving.
func TestChaosPanicsSurviveServer(t *testing.T) {
	chaos := NewChaosRunner(&scriptRunner{}, ChaosConfig{PanicRate: 1, Seed: 2})
	srv, err := New(Config{
		Engine:    chaos,
		Scheduler: sched.NewDAS(),
		Scheme:    batch.Concat,
		B:         2, L: 64,
		Poll:             200 * time.Microsecond,
		Retry:            RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond},
		BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	ch, err := srv.Submit(randTokens(rng.New(82), 4), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp := <-ch
	var pe *PanicError
	if !errors.As(resp.Err, &pe) {
		t.Fatalf("err = %v, want *PanicError after exhausted retries", resp.Err)
	}
	st := srv.Stats()
	if st.Panics != 2 {
		t.Fatalf("panics = %d, want 2 (one per attempt)", st.Panics)
	}
}
