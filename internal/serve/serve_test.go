package serve

import (
	"sync"
	"testing"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/model"
	"tcb/internal/rng"
	"tcb/internal/sched"
	"tcb/internal/vocab"
)

const testVocab = 60

func testServer(t *testing.T, scheme batch.Scheme, scheduler sched.Scheduler) (*Server, *engine.Engine) {
	t.Helper()
	cfg := model.Config{
		VocabSize: testVocab, DModel: 32, NumHeads: 4, DFF: 64,
		EncLayers: 1, DecLayers: 1, MaxLen: 256, Eps: 1e-5,
	}
	e := engine.New(model.New(cfg, 5), 3)
	s, err := New(Config{
		Engine: e, Scheduler: scheduler, Scheme: scheme,
		B: 4, L: 64, Poll: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, e
}

func randTokens(src *rng.Source, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = src.IntRange(vocab.FirstWordID, testVocab-1)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing engine/scheduler must fail")
	}
	cfg := model.TestConfig(testVocab)
	e := engine.New(model.New(cfg, 1), 2)
	if _, err := New(Config{Engine: e, Scheduler: sched.FCFS{}, B: 0, L: 10}); err == nil {
		t.Fatal("B=0 must fail")
	}
}

func TestServeRoundTrip(t *testing.T) {
	s, e := testServer(t, batch.Concat, sched.NewDAS())
	s.Start()
	defer s.Stop()

	src := rng.New(11)
	type sub struct {
		tokens []int
		ch     <-chan Response
	}
	var subs []sub
	for i := 0; i < 6; i++ {
		toks := randTokens(src, src.IntRange(2, 10))
		ch, err := s.Submit(toks, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub{toks, ch})
	}
	for i, sb := range subs {
		select {
		case resp := <-sb.ch:
			if resp.Err != nil {
				t.Fatalf("request %d failed: %v", i, resp.Err)
			}
			// Server output must equal standalone inference.
			solo, err := e.RunSingle(1000+int64(i), sb.tokens)
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Output) != len(solo.Output) {
				t.Fatalf("request %d: served %v vs solo %v", i, resp.Output, solo.Output)
			}
			for j := range resp.Output {
				if resp.Output[j] != solo.Output[j] {
					t.Fatalf("request %d token %d differs", i, j)
				}
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d timed out", i)
		}
	}
}

func TestServeSlottedScheme(t *testing.T) {
	s, _ := testServer(t, batch.SlottedConcat, sched.NewSlottedDAS())
	s.Start()
	defer s.Stop()

	src := rng.New(12)
	var chans []<-chan Response
	for i := 0; i < 5; i++ {
		ch, err := s.Submit(randTokens(src, src.IntRange(2, 8)), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				t.Fatalf("request %d failed: %v", i, resp.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d timed out", i)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	s, _ := testServer(t, batch.Concat, sched.NewDAS())
	if _, err := s.Submit(nil, time.Second); err == nil {
		t.Fatal("empty request must fail")
	}
	if _, err := s.Submit(make([]int, 1000), time.Second); err == nil {
		t.Fatal("overlong request must fail")
	}
}

func TestDeadlineExpiry(t *testing.T) {
	// Server not started: the queued request must expire once started.
	s, _ := testServer(t, batch.Concat, sched.NewDAS())
	ch, err := s.Submit(randTokens(rng.New(13), 5), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the deadline lapse before starting
	s.Start()
	defer s.Stop()
	select {
	case resp := <-ch:
		if resp.Err != ErrDeadlineExceeded {
			t.Fatalf("err = %v, want ErrDeadlineExceeded", resp.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("expired request never resolved")
	}
}

func TestStopFailsQueued(t *testing.T) {
	s, _ := testServer(t, batch.Concat, sched.NewDAS())
	// Enqueue without starting, then start+stop quickly: any queued request
	// must resolve with some terminal status, not hang.
	ch, err := s.Submit(randTokens(rng.New(14), 5), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	s.Stop()
	select {
	case resp := <-ch:
		if resp.Err != nil && resp.Err != ErrServerClosed {
			t.Fatalf("unexpected err: %v", resp.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request hung across Stop")
	}
	// Submissions after stop fail fast.
	if _, err := s.Submit(randTokens(rng.New(15), 3), time.Second); err != ErrServerClosed {
		t.Fatalf("submit after stop = %v, want ErrServerClosed", err)
	}
}

func TestQueueCap(t *testing.T) {
	cfg := model.Config{
		VocabSize: testVocab, DModel: 16, NumHeads: 2, DFF: 32,
		EncLayers: 1, DecLayers: 1, MaxLen: 64, Eps: 1e-5,
	}
	e := engine.New(model.New(cfg, 6), 1)
	s, err := New(Config{
		Engine: e, Scheduler: sched.NewDAS(), Scheme: batch.Concat,
		B: 1, L: 32, QueueCap: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(16)
	// Not started: queue only fills.
	if _, err := s.Submit(randTokens(src, 3), time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(randTokens(src, 3), time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(randTokens(src, 3), time.Hour); err != ErrQueueFull {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
	if s.QueueLen() != 2 {
		t.Fatalf("queue len = %d", s.QueueLen())
	}
}

func TestDrainServesQueuedThenRejects(t *testing.T) {
	s, _ := testServer(t, batch.Concat, sched.NewDAS())
	src := rng.New(60)
	var chans []<-chan Response
	for i := 0; i < 4; i++ {
		ch, err := s.Submit(randTokens(src, 4), 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	s.Start()
	done := make(chan struct{})
	go func() {
		s.Drain()
		close(done)
	}()
	for i, ch := range chans {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				t.Fatalf("queued request %d failed during drain: %v", i, resp.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d hung during drain", i)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned")
	}
	if _, err := s.Submit(randTokens(src, 3), time.Second); err != ErrServerClosed {
		t.Fatalf("submit after drain = %v, want ErrServerClosed", err)
	}
	st := s.Stats()
	if st.Served != 4 || st.Queued != 0 {
		t.Fatalf("stats after drain = %+v", st)
	}
}

// TestDrainIdempotentConcurrent is the regression test for Drain's
// once-gate: many concurrent Drain callers (racing each other and a live
// queue) must all return, the queue must resolve exactly once per request,
// and a trailing Drain after completion must return immediately instead of
// re-running the shutdown sequence.
func TestDrainIdempotentConcurrent(t *testing.T) {
	s, _ := testServer(t, batch.Concat, sched.NewDAS())
	src := rng.New(71)
	var chans []<-chan Response
	for i := 0; i < 4; i++ {
		ch, err := s.Submit(randTokens(src, 4), 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	s.Start()
	const drainers = 8
	var wg sync.WaitGroup
	for i := 0; i < drainers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Drain()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent Drain callers never returned")
	}
	for i, ch := range chans {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				t.Fatalf("request %d failed during drain: %v", i, resp.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d unresolved after drain", i)
		}
	}
	// A late caller sees the finished drain immediately.
	start := time.Now()
	s.Drain()
	if e := time.Since(start); e > time.Second {
		t.Fatalf("post-completion Drain took %v, want immediate return", e)
	}
	if st := s.Stats(); st.Served != 4 || st.Queued != 0 {
		t.Fatalf("stats after concurrent drain = %+v", st)
	}
}

// TestDrainConcurrentSharesDeadline pins that a second Drain caller waits on
// the FIRST caller's DrainTimeout deadline: with a wedged engine the two
// callers return together at roughly one timeout, not two.
func TestDrainConcurrentSharesDeadline(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	s, err := New(Config{
		Engine:           blockingRunner{block},
		Scheduler:        sched.FCFS{},
		Scheme:           batch.Concat,
		B:                1,
		L:                32,
		Poll:             time.Millisecond,
		BreakerThreshold: -1,
		DrainTimeout:     300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := s.Submit([]int{1, 2, 3}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	time.Sleep(20 * time.Millisecond) // let the batch wedge in the engine
	start := time.Now()
	returned := make(chan time.Duration, 2)
	for i := 0; i < 2; i++ {
		go func() {
			s.Drain()
			returned <- time.Since(start)
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case e := <-returned:
			if e > 2*time.Second {
				t.Fatalf("drain caller %d took %v, want ~ one shared 300ms deadline", i, e)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("drain caller never returned")
		}
	}
	// The queued request (if it never launched) or the wedged one must not
	// be left hanging past the deadline path's failAll.
	select {
	case <-ch:
	case <-time.After(time.Second):
		// In-flight in a wedged engine without a watchdog: allowed to stay
		// unresolved (documented); only queued requests are failed.
	}
}

// blockingRunner wedges every Run until its channel closes — the minimal
// stand-in for an engine stuck in a kernel.
type blockingRunner struct{ block chan struct{} }

func (b blockingRunner) Run(*batch.Batch, map[int64][]int) (*engine.Report, error) {
	<-b.block
	return nil, ErrChaos
}

func TestStatsCounters(t *testing.T) {
	s, _ := testServer(t, batch.Concat, sched.NewDAS())
	s.Start()
	defer s.Stop()
	src := rng.New(61)
	ch, err := s.Submit(randTokens(src, 5), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	<-ch
	st := s.Stats()
	if st.Submitted != 1 || st.Served != 1 || st.Batches < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentSubmitStress(t *testing.T) {
	s, _ := testServer(t, batch.Concat, sched.NewDAS())
	s.Start()
	defer s.Stop()
	const clients = 16
	const perClient = 4
	errs := make(chan error, clients*perClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			src := rng.New(uint64(c) + 100)
			for i := 0; i < perClient; i++ {
				ch, err := s.Submit(randTokens(src, src.IntRange(2, 10)), 10*time.Second)
				if err != nil {
					errs <- err
					return
				}
				resp := <-ch
				errs <- resp.Err
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("stress request failed: %v", err)
		}
	}
	st := s.Stats()
	if st.Served != clients*perClient {
		t.Fatalf("served = %d, want %d", st.Served, clients*perClient)
	}
}

// TestSubmitWakesIdleLoop pins the wakeup-channel behavior: with a Poll far
// larger than inference time, a submission against an idle server must be
// answered in a fraction of Poll — the loop is woken by the Submit, not by
// the expiry of a fixed sleep.
func TestSubmitWakesIdleLoop(t *testing.T) {
	cfg := model.TestConfig(testVocab)
	e := engine.New(model.New(cfg, 5), 2)
	const poll = 2 * time.Second
	s, err := New(Config{
		Engine: e, Scheduler: sched.NewDAS(), Scheme: batch.Concat,
		B: 4, L: 64, Poll: poll,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop()

	// Let the loop reach its idle wait before submitting.
	time.Sleep(20 * time.Millisecond)
	src := rng.New(17)
	start := time.Now()
	ch, err := s.Submit(randTokens(src, 6), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp := <-ch
	elapsed := time.Since(start)
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if elapsed > poll/2 {
		t.Fatalf("idle->busy latency %v: submission waited out Poll=%v instead of waking the loop", elapsed, poll)
	}
}

// TestDrainWakes pins that Drain observes batch completion promptly rather
// than sleeping out Poll between queue checks.
func TestDrainWakes(t *testing.T) {
	cfg := model.TestConfig(testVocab)
	e := engine.New(model.New(cfg, 7), 2)
	const poll = 2 * time.Second
	s, err := New(Config{
		Engine: e, Scheduler: sched.NewDAS(), Scheme: batch.Concat,
		B: 4, L: 64, Poll: poll,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	src := rng.New(19)
	var chans []<-chan Response
	for i := 0; i < 3; i++ {
		ch, err := s.Submit(randTokens(src, 5), 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	start := time.Now()
	s.Drain()
	elapsed := time.Since(start)
	for i, ch := range chans {
		if resp := <-ch; resp.Err != nil {
			t.Fatalf("request %d failed during drain: %v", i, resp.Err)
		}
	}
	if elapsed > poll {
		t.Fatalf("drain took %v with Poll=%v: drain loop is sleeping instead of waking on progress", elapsed, poll)
	}
}
