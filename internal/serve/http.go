package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// InferRequest is the JSON body of POST /v1/infer.
type InferRequest struct {
	// Tokens is the tokenized input (use your own tokenizer, or the
	// vocab package). Required.
	Tokens []int `json:"tokens"`
	// DeadlineMS is the scheduling deadline in milliseconds from receipt.
	// Zero defers to the SLO class default when Class is set, else 1000.
	DeadlineMS int `json:"deadline_ms"`
	// Class is the request's SLO class ("interactive", "standard", "batch",
	// or whatever the server was configured with). Empty means unclassed:
	// weight 1, no deadline default.
	Class string `json:"class,omitempty"`
	// PrefixLen declares that the first PrefixLen tokens are a shared prompt
	// prefix (0 = none). With prefix sharing enabled server-side, a resident
	// prefix is served from the cache instead of re-encoded; outputs are
	// identical either way.
	PrefixLen int `json:"prefix_len,omitempty"`
}

// InferResponse is the JSON body returned by POST /v1/infer.
type InferResponse struct {
	Output    []int   `json:"output"`
	LatencyMS float64 `json:"latency_ms"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// MaxInferBody caps the /v1/infer request body; larger bodies fail with
// 413 before JSON decoding buffers them.
const MaxInferBody = 1 << 20

// NewHTTPHandler exposes a server over HTTP:
//
//	POST /v1/infer  — submit one request, blocks until the response
//	GET  /v1/stats  — server counters (serve.Stats)
//	GET  /healthz   — serviceability probe: 200 with the Health JSON while
//	                  traffic is being accepted, 503 with the same body
//	                  (breaker state, queue depth) when it is not — so an
//	                  external load balancer can rotate the process out
//	                  while its breaker is open or it is draining
//
// The handler is a thin, dependency-free front; it does not own the
// server's lifecycle (call srv.Start/Stop yourself).
func NewHTTPHandler(srv *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, MaxInferBody)
		var req InferRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("body exceeds %d bytes", tooBig.Limit))
				return
			}
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
			return
		}
		if req.DeadlineMS <= 0 && req.Class == "" {
			req.DeadlineMS = 1000
		}
		// Tenant identity rides the X-Tenant header (empty = default
		// tenant); the token-bucket admission front charges by input length
		// before the request touches the queue.
		tenant := r.Header.Get(TenantHeader)
		if ok, retry := srv.cfg.Limiter.Take(tenant, len(req.Tokens)); !ok {
			w.Header().Set("Retry-After", retryAfterSeconds(retry))
			writeErr(w, http.StatusTooManyRequests,
				fmt.Errorf("serve: tenant admission rate exceeded, retry in %s", retry))
			return
		}
		ch, err := srv.SubmitOpts(req.Tokens, time.Duration(req.DeadlineMS)*time.Millisecond,
			SubmitOptions{Tenant: tenant, Class: req.Class, PrefixLen: req.PrefixLen})
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrQueueFull) {
				status = http.StatusTooManyRequests
			} else if errors.Is(err, ErrBreakerOpen) || errors.Is(err, ErrServerClosed) {
				// Breaker open: degraded service, tell clients to back off.
				status = http.StatusServiceUnavailable
			}
			writeErr(w, status, err)
			return
		}
		select {
		case resp := <-ch:
			switch {
			case errors.Is(resp.Err, ErrDeadlineExceeded):
				writeErr(w, http.StatusGatewayTimeout, resp.Err)
			case errors.Is(resp.Err, ErrBreakerOpen):
				// Covers ErrShed too (it wraps ErrBreakerOpen): the request
				// was dropped under degraded service, not by a bug.
				writeErr(w, http.StatusServiceUnavailable, resp.Err)
			case resp.Err != nil:
				writeErr(w, http.StatusInternalServerError, resp.Err)
			default:
				writeJSON(w, http.StatusOK, InferResponse{
					Output:    append([]int{}, resp.Output...),
					LatencyMS: resp.Served.Sub(resp.Queued).Seconds() * 1000,
				})
			}
		case <-r.Context().Done():
			// The client went away; the engine result is discarded when
			// it arrives (the channel is buffered).
			writeErr(w, http.StatusRequestTimeout, r.Context().Err())
		}
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
			return
		}
		writeJSON(w, http.StatusOK, srv.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := srv.Health()
		status := http.StatusOK
		if !h.Serviceable {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, h)
	})
	return mux
}

// TenantHeader is the HTTP header carrying tenant identity into /v1/infer
// (both the single-server and cluster fronts honour it).
const TenantHeader = "X-Tenant"

// retryAfterSeconds renders a Retry-After value in whole seconds, rounded
// up (the header does not speak milliseconds).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}
