package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/rng"
	"tcb/internal/sched"
)

func httpServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, _ := testServer(t, batch.Concat, sched.NewDAS())
	srv.Start()
	ts := httptest.NewServer(NewHTTPHandler(srv))
	t.Cleanup(func() {
		ts.Close()
		srv.Stop()
	})
	return srv, ts
}

func postInfer(t *testing.T, url string, req InferRequest) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPInferRoundTrip(t *testing.T) {
	_, ts := httpServer(t)
	src := rng.New(51)
	tokens := randTokens(src, 6)
	resp, body := postInfer(t, ts.URL, InferRequest{Tokens: tokens, DeadlineMS: 5000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out InferResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.LatencyMS < 0 {
		t.Fatalf("latency %v", out.LatencyMS)
	}
}

func TestHTTPInferValidation(t *testing.T) {
	_, ts := httpServer(t)
	// Empty tokens.
	resp, _ := postInfer(t, ts.URL, InferRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty tokens: status %d", resp.StatusCode)
	}
	// Oversized request.
	resp, _ = postInfer(t, ts.URL, InferRequest{Tokens: make([]int, 1000)})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized: status %d", resp.StatusCode)
	}
	// Corrupt JSON.
	r, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt JSON: status %d", r.StatusCode)
	}
	// Wrong method.
	r, err = http.Get(ts.URL + "/v1/infer")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET infer: status %d", r.StatusCode)
	}
}

func TestHTTPStatsAndHealth(t *testing.T) {
	_, ts := httpServer(t)
	src := rng.New(52)
	postInfer(t, ts.URL, InferRequest{Tokens: randTokens(src, 4), DeadlineMS: 5000})

	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var st Stats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Submitted < 1 || st.Served < 1 {
		t.Fatalf("stats = %+v", st)
	}

	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("health status %d", h.StatusCode)
	}
}

// flakyRunner fails the first n batch launches, then delegates.
type flakyRunner struct {
	real  Runner
	fails int
}

func (f *flakyRunner) Run(b *batch.Batch, tokens map[int64][]int) (*engine.Report, error) {
	if f.fails > 0 {
		f.fails--
		return nil, errors.New("injected device failure")
	}
	return f.real.Run(b, tokens)
}

func TestEngineFailureInjection(t *testing.T) {
	base, _ := testServer(t, batch.Concat, sched.NewDAS())
	_ = base // build a fresh server around a flaky runner instead
	cfgSrv, realEngine := testServer(t, batch.Concat, sched.NewDAS())
	_ = cfgSrv
	srv, err := New(Config{
		Engine:    &flakyRunner{real: realEngine, fails: 1},
		Scheduler: sched.NewDAS(),
		Scheme:    batch.Concat,
		B:         2, L: 64,
		Poll: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	src := rng.New(53)
	// First request hits the injected failure.
	ch, err := srv.Submit(randTokens(src, 4), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp := <-ch
	if resp.Err == nil || resp.Err.Error() != "injected device failure" {
		t.Fatalf("expected injected failure, got %v", resp.Err)
	}
	// The server must keep serving afterwards.
	ch, err = srv.Submit(randTokens(src, 4), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp = <-ch
	if resp.Err != nil {
		t.Fatalf("server did not recover: %v", resp.Err)
	}
	st := srv.Stats()
	if st.Failed != 1 || st.Served != 1 {
		t.Fatalf("stats after failure = %+v", st)
	}
}

// lossyRunner drops one request's result from the report.
type lossyRunner struct{ real Runner }

func (l *lossyRunner) Run(b *batch.Batch, tokens map[int64][]int) (*engine.Report, error) {
	rep, err := l.real.Run(b, tokens)
	if err != nil || len(rep.Results) == 0 {
		return rep, err
	}
	rep.Results = rep.Results[1:]
	return rep, nil
}

func TestEngineLosingResultsSurfaced(t *testing.T) {
	_, realEngine := testServer(t, batch.Concat, sched.NewDAS())
	srv, err := New(Config{
		Engine:    &lossyRunner{real: realEngine},
		Scheduler: sched.NewDAS(),
		Scheme:    batch.Concat,
		B:         1, L: 64,
		Poll: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	ch, err := srv.Submit(randTokens(rng.New(54), 4), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp := <-ch
	if resp.Err == nil {
		t.Fatal("lost result must surface as an error, not hang")
	}
	if fmt.Sprint(resp.Err) == "" {
		t.Fatal("error must be descriptive")
	}
}
