package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/rng"
	"tcb/internal/sched"
)

func httpServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, _ := testServer(t, batch.Concat, sched.NewDAS())
	srv.Start()
	ts := httptest.NewServer(NewHTTPHandler(srv))
	t.Cleanup(func() {
		ts.Close()
		srv.Stop()
	})
	return srv, ts
}

func postInfer(t *testing.T, url string, req InferRequest) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPInferRoundTrip(t *testing.T) {
	_, ts := httpServer(t)
	src := rng.New(51)
	tokens := randTokens(src, 6)
	resp, body := postInfer(t, ts.URL, InferRequest{Tokens: tokens, DeadlineMS: 5000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out InferResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.LatencyMS < 0 {
		t.Fatalf("latency %v", out.LatencyMS)
	}
}

func TestHTTPInferValidation(t *testing.T) {
	_, ts := httpServer(t)
	// Empty tokens.
	resp, _ := postInfer(t, ts.URL, InferRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty tokens: status %d", resp.StatusCode)
	}
	// Oversized request.
	resp, _ = postInfer(t, ts.URL, InferRequest{Tokens: make([]int, 1000)})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized: status %d", resp.StatusCode)
	}
	// Corrupt JSON.
	r, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt JSON: status %d", r.StatusCode)
	}
	// Wrong method.
	r, err = http.Get(ts.URL + "/v1/infer")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET infer: status %d", r.StatusCode)
	}
}

func TestHTTPStatsAndHealth(t *testing.T) {
	_, ts := httpServer(t)
	src := rng.New(52)
	postInfer(t, ts.URL, InferRequest{Tokens: randTokens(src, 4), DeadlineMS: 5000})

	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var st Stats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Submitted < 1 || st.Served < 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ScheduleNs <= 0 || st.ComputeNs <= 0 || st.CleanupNs <= 0 {
		t.Fatalf("per-stage latencies missing from stats JSON: %+v", st)
	}

	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("health status %d", h.StatusCode)
	}
	var hb Health
	if err := json.NewDecoder(h.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	if !hb.Serviceable || hb.State != "running" {
		t.Fatalf("healthz body = %+v", hb)
	}
}

// TestHTTPHealthzUnserviceable pins the 503 contract: a server whose
// breaker is open (and later one that is stopped) reports unserviceable
// with the breaker detail an external load balancer needs.
func TestHTTPHealthzUnserviceable(t *testing.T) {
	srv, err := New(Config{
		Engine:           failingRunner{},
		Scheduler:        sched.FCFS{},
		Scheme:           batch.Concat,
		B:                1,
		L:                32,
		Poll:             time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		Retry:            RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHTTPHandler(srv))
	defer ts.Close()
	srv.Start()

	// One failed batch trips the K=1 breaker open.
	ch, err := srv.Submit([]int{1, 2, 3}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	<-ch
	deadline := time.Now().Add(5 * time.Second)
	for srv.BreakerState() != BreakerOpen && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hb Health
	if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open healthz status %d, want 503 (%+v)", r.StatusCode, hb)
	}
	if hb.Serviceable || hb.Breaker != "open" {
		t.Fatalf("breaker-open healthz body = %+v", hb)
	}

	srv.Stop()
	r, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable || hb.State != "stopped" {
		t.Fatalf("stopped healthz = %d %+v", r.StatusCode, hb)
	}
}

// failingRunner fails every batch.
type failingRunner struct{}

func (failingRunner) Run(*batch.Batch, map[int64][]int) (*engine.Report, error) {
	return nil, errors.New("down")
}

// flakyRunner fails the first n batch launches, then delegates.
type flakyRunner struct {
	real  Runner
	fails int
}

func (f *flakyRunner) Run(b *batch.Batch, tokens map[int64][]int) (*engine.Report, error) {
	if f.fails > 0 {
		f.fails--
		return nil, errors.New("injected device failure")
	}
	return f.real.Run(b, tokens)
}

func TestEngineFailureInjection(t *testing.T) {
	_, realEngine := testServer(t, batch.Concat, sched.NewDAS())
	// Retry is disabled so the failure surfaces directly — the
	// pre-supervision semantics. supervise_test.go covers retry-on.
	srv, err := New(Config{
		Engine:    &flakyRunner{real: realEngine, fails: 1},
		Scheduler: sched.NewDAS(),
		Scheme:    batch.Concat,
		B:         2, L: 64,
		Poll:  200 * time.Microsecond,
		Retry: RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	src := rng.New(53)
	// First request hits the injected failure.
	ch, err := srv.Submit(randTokens(src, 4), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp := <-ch
	if resp.Err == nil || resp.Err.Error() != "injected device failure" {
		t.Fatalf("expected injected failure, got %v", resp.Err)
	}
	// The server must keep serving afterwards.
	ch, err = srv.Submit(randTokens(src, 4), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp = <-ch
	if resp.Err != nil {
		t.Fatalf("server did not recover: %v", resp.Err)
	}
	st := srv.Stats()
	if st.Failed != 1 || st.Served != 1 {
		t.Fatalf("stats after failure = %+v", st)
	}
}

// TestHTTPBodyCap pins the MaxBytesReader guard: an oversized body fails
// with 413 before it is buffered.
func TestHTTPBodyCap(t *testing.T) {
	_, ts := httpServer(t)
	huge := bytes.Repeat([]byte("9"), MaxInferBody+1024)
	body := append([]byte(`{"tokens":[`), huge...)
	body = append(body, []byte(`]}`)...)
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// TestHTTPBreakerOpen503 pins degraded-mode signalling: while the breaker
// is open and the reduced queue bound is reached, /v1/infer answers 503
// with a JSON error body, and /v1/stats reports the open state.
func TestHTTPBreakerOpen503(t *testing.T) {
	srv, err := New(Config{
		Engine:    &scriptRunner{failN: 1 << 30},
		Scheduler: sched.NewDAS(),
		Scheme:    batch.Concat,
		B:         2, L: 64,
		Poll:             200 * time.Microsecond,
		Retry:            RetryPolicy{MaxAttempts: 100, Backoff: time.Millisecond},
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		OpenQueueCap:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(NewHTTPHandler(srv))
	t.Cleanup(func() {
		ts.Close()
		srv.Stop()
	})
	if _, err := srv.Submit(randTokens(rng.New(55), 4), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	// Wait for the trip AND the failed batch's requeue, so the queue is
	// back at the reduced bound before probing the endpoint.
	for srv.BreakerState() != BreakerOpen || srv.QueueLen() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened")
		}
		time.Sleep(time.Millisecond)
	}
	resp, body := postInfer(t, ts.URL, InferRequest{Tokens: randTokens(rng.New(56), 4), DeadlineMS: 100})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("infer while open: status %d, want 503 (body %s)", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("503 must carry a JSON error body, got %q (%v)", body, err)
	}
	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var st Stats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.BreakerState != "open" || st.BreakerTrips != 1 {
		t.Fatalf("stats while open = %+v", st)
	}
}

// lossyRunner drops one request's result from the report.
type lossyRunner struct{ real Runner }

func (l *lossyRunner) Run(b *batch.Batch, tokens map[int64][]int) (*engine.Report, error) {
	rep, err := l.real.Run(b, tokens)
	if err != nil || len(rep.Results) == 0 {
		return rep, err
	}
	rep.Results = rep.Results[1:]
	return rep, nil
}

func TestEngineLosingResultsSurfaced(t *testing.T) {
	_, realEngine := testServer(t, batch.Concat, sched.NewDAS())
	srv, err := New(Config{
		Engine:    &lossyRunner{real: realEngine},
		Scheduler: sched.NewDAS(),
		Scheme:    batch.Concat,
		B:         1, L: 64,
		Poll: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	ch, err := srv.Submit(randTokens(rng.New(54), 4), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp := <-ch
	if resp.Err == nil {
		t.Fatal("lost result must surface as an error, not hang")
	}
	if fmt.Sprint(resp.Err) == "" {
		t.Fatal("error must be descriptive")
	}
}
