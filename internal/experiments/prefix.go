package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/gpu"
	"tcb/internal/model"
	"tcb/internal/prefixcache"
	"tcb/internal/rng"
	"tcb/internal/sched"
	"tcb/internal/serve"
	"tcb/internal/vocab"
)

// ExtPrefix is the prefix-sharing KV cache A/B: the same
// shared-prompt workload is served with and without a prefix cache
// (serve.Config.PrefixCache + engine.Engine.PrefixCache) over the same
// model, swept over the fraction of requests that declare a pooled shared
// prefix. Both sides of every pair declare identical PrefixLens — only the
// cache's presence differs — so per-request outputs are cross-checked for
// exact token equality: a hit must change when an answer arrives, never
// what it says.
//
// Why the cache wins here: the workload is encode-dominated (long shared
// prefix, short unique suffix, few decode rounds), the regime prompt
// caching targets. A cold request occupies prefix+suffix tokens in its row;
// a hit occupies only the suffix, so one row seats many hits where it
// seated one cold request — the cache's token savings compound with
// ConcatBatching's packing. At 0% reuse nothing is ever resident and the
// sweep measures pure bystander overhead, which the gate requires to be
// ~1×; speedup then grows with the reuse fraction.
//
// After every cached run the server is stopped and the cache's dedicated
// memory ledger must balance to zero — a leaked pin or unreleased entry
// fails the experiment, not just a test.
func ExtPrefix(opt Options) (*Figure, error) {
	cfg := model.Config{
		VocabSize: 64, DModel: 32, NumHeads: 4, DFF: 64,
		EncLayers: 1, DecLayers: 1, MaxLen: 256, Eps: 1e-5,
	}
	const (
		B         = 4
		rowLen    = 64
		prefixLen = 48
		suffixLen = 8
		maxNew    = 4
		poolSize  = 4
		// Poisson arrivals well above the service rate: the queue stays
		// saturated and the measurement is steady-state throughput.
		arrivalRate = 5000.0 // req/s
	)
	rounds := int(opt.Duration)
	if rounds < 1 {
		rounds = 1
	}
	n := B * 64 * rounds
	backlog := n / 2
	m := model.New(cfg, opt.Seed+400)

	fig := &Figure{
		ID:     "ext-prefix",
		Title:  "Prefix-sharing KV cache: shared prompts encoded once vs every time (real engine)",
		XLabel: "reuse-fraction",
		YLabel: "req/s",
	}
	for _, reuse := range []float64{0, 0.25, 0.5, 0.75} {
		// One token stream per reuse level, identical across modes and
		// reps. Every request is prefix+suffix; a reusing request draws its
		// prefix from the shared pool and declares it, a non-reusing request
		// gets a fresh private prefix and declares nothing — clients only
		// declare prompts they know to be shared.
		src := rng.New(opt.Seed + 400 + uint64(reuse*100))
		pool := make([][]int, poolSize)
		for i := range pool {
			pool[i] = randTokens(src, prefixLen, cfg.VocabSize)
		}
		reqs := make([][]int, n)
		decl := make([]int, n)
		gaps := make([]time.Duration, n)
		for i := range reqs {
			prefix := randTokens(src, prefixLen, cfg.VocabSize)
			if src.Float64() < reuse {
				prefix = pool[src.Intn(poolSize)]
				decl[i] = prefixLen
			}
			reqs[i] = append(append(make([]int, 0, prefixLen+suffixLen), prefix...),
				randTokens(src, suffixLen, cfg.VocabSize)...)
			gaps[i] = time.Duration(src.Exp(arrivalRate) * float64(time.Second))
		}
		// Warmup requests, one per pool prompt: served before the clock
		// starts so the cached runs measure the steady state (prompts
		// resident) rather than the one-off cost of first encoding them.
		// The uncached side serves the identical warmup for symmetry.
		warm := make([][]int, poolSize)
		for i := range warm {
			warm[i] = append(append(make([]int, 0, prefixLen+suffixLen), pool[i]...),
				randTokens(src, suffixLen, cfg.VocabSize)...)
		}

		runMode := func(cache, refill, pipeline bool) (tput float64, outs [][]int, st serve.Stats, err error) {
			eng := engine.New(m, maxNew)
			eng.UseCache = true
			eng.Quantize = opt.Quantize
			eng.OutputCap = func(int) int { return maxNew }
			var pc *prefixcache.Cache
			var mem *gpu.MemoryManager
			if cache {
				mem = gpu.NewMemoryManager(0)
				pc = prefixcache.New(0, mem)
				eng.PrefixCache = pc
			}
			s, err := serve.New(serve.Config{
				Engine: eng, Scheduler: sched.FCFS{}, Scheme: batch.Concat,
				B: B, L: rowLen, Poll: 200 * time.Microsecond,
				QueueCap: n + 1, Refill: refill, Pipeline: pipeline,
				PrefixCache: pc,
			})
			if err != nil {
				return 0, nil, st, err
			}
			s.Start()
			// Warmup: make the pool prompts resident (cached mode) before
			// the clock starts; the uncached mode serves the same requests.
			for i, w := range warm {
				ch, err := s.SubmitOpts(w, time.Hour, serve.SubmitOptions{PrefixLen: prefixLen})
				if err != nil {
					return 0, nil, st, fmt.Errorf("warmup %d: %w", i, err)
				}
				if resp := <-ch; resp.Err != nil {
					return 0, nil, st, fmt.Errorf("warmup %d: %w", i, resp.Err)
				}
			}
			chans := make([]<-chan serve.Response, n)
			start := time.Now()
			// Saturating backlog queued up front, identical across modes.
			for i := 0; i < backlog; i++ {
				ch, err := s.SubmitOpts(reqs[i], time.Hour, serve.SubmitOptions{PrefixLen: decl[i]})
				if err != nil {
					return 0, nil, st, fmt.Errorf("submit %d: %w", i, err)
				}
				chans[i] = ch
			}
			// Feeder: the rest arrive as a Poisson stream from the
			// pregenerated gap sequence, identical across modes.
			var feedErr error
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := backlog; i < n; i++ {
					time.Sleep(gaps[i])
					ch, err := s.SubmitOpts(reqs[i], time.Hour, serve.SubmitOptions{PrefixLen: decl[i]})
					if err != nil {
						feedErr = fmt.Errorf("submit %d: %w", i, err)
						return
					}
					chans[i] = ch
				}
			}()
			wg.Wait()
			if feedErr != nil {
				s.Stop()
				return 0, nil, st, feedErr
			}
			s.Drain()
			wall := time.Since(start).Seconds()
			outs = make([][]int, n)
			for i, ch := range chans {
				resp := <-ch
				if resp.Err != nil {
					return 0, nil, st, fmt.Errorf("request %d: %w", i, resp.Err)
				}
				outs[i] = resp.Output
			}
			st = s.Stats()
			s.Stop()
			if mem != nil {
				// The server clears the cache at loop exit; its dedicated
				// ledger must balance or a pin or entry leaked.
				if mem.Used() != 0 || mem.Outstanding() != 0 {
					return 0, nil, st, fmt.Errorf("prefix cache leaked: %d bytes used, %d outstanding after stop",
						mem.Used(), mem.Outstanding())
				}
			}
			return float64(n) / wall, outs, st, nil
		}

		if opt.DisablePrefix {
			baseTput, _, _, err := runMode(false, false, false)
			if err != nil {
				return nil, fmt.Errorf("ext-prefix: no-cache reuse=%g: %w", reuse, err)
			}
			fig.X = append(fig.X, reuse)
			fig.AddPoint("no-cache", baseTput)
			fig.AddPoint("cache", baseTput)
			fig.AddPoint("speedup", 1)
			fig.AddPoint("speedup-best", 1)
			continue
		}

		// Wall time on a shared core is noisy in bursts longer than one run,
		// so measure back-to-back (no-cache, cache) pairs — a burst covering
		// a whole pair cancels out of its ratio — and keep the median pair.
		type pair struct {
			baseTput, cacheTput float64
			baseOuts, cacheOuts [][]int
			st                  serve.Stats
		}
		pairs := make([]pair, 3)
		for k := range pairs {
			var err error
			pr := &pairs[k]
			pr.baseTput, pr.baseOuts, _, err = runMode(false, false, false)
			if err != nil {
				return nil, fmt.Errorf("ext-prefix: no-cache reuse=%g: %w", reuse, err)
			}
			pr.cacheTput, pr.cacheOuts, pr.st, err = runMode(true, false, false)
			if err != nil {
				return nil, fmt.Errorf("ext-prefix: cache reuse=%g: %w", reuse, err)
			}
			if err := sameOutputs(pr.baseOuts, pr.cacheOuts); err != nil {
				return nil, fmt.Errorf("ext-prefix: cache reuse=%g: %w", reuse, err)
			}
		}
		sort.Slice(pairs, func(i, j int) bool {
			return pairs[i].cacheTput/pairs[i].baseTput < pairs[j].cacheTput/pairs[j].baseTput
		})
		med, best := pairs[1], pairs[2]
		fig.X = append(fig.X, reuse)
		fig.AddPoint("no-cache", med.baseTput)
		fig.AddPoint("cache", med.cacheTput)
		fig.AddPoint("speedup", med.cacheTput/med.baseTput)
		// The best pair's ratio is what the 0%-reuse gate checks: there the
		// two sides do identical work and the ratio is centered on 1 with
		// scheduling noise either side — a real bystander regression drags
		// all three pairs down, a grazing median is just the runner.
		fig.AddPoint("speedup-best", best.cacheTput/best.baseTput)
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"reuse=%g cache: %d hits / %d misses (rate %.0f%%), %d tokens saved, %d inserts, %d evictions",
			reuse, med.st.Prefix.Hits, med.st.Prefix.Misses, med.st.Prefix.HitRate*100,
			med.st.Prefix.TokensSaved, med.st.Prefix.Inserts, med.st.Prefix.Evictions))

		// The cache composes with continuous batching and the three-stage
		// pipeline: same answers once more at the highest-reuse point.
		if reuse == 0.75 {
			_, composedOuts, _, err := runMode(true, true, true)
			if err != nil {
				return nil, fmt.Errorf("ext-prefix: cache+refill+pipeline: %w", err)
			}
			if err := sameOutputs(med.baseOuts, composedOuts); err != nil {
				return nil, fmt.Errorf("ext-prefix: cache+refill+pipeline: %w", err)
			}
			fig.Notes = append(fig.Notes, "cache+refill+pipeline outputs verified identical at reuse=0.75")
		}
	}
	if opt.DisablePrefix {
		fig.Notes = append(fig.Notes, "prefix cache disabled (-prefix=false); cache series mirrors no-cache")
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("every request is a %d-token prefix + %d-token suffix; reusing requests share a pool of %d declared prompts;", prefixLen, suffixLen, poolSize),
		"per-request outputs verified identical with and without the cache at every reuse level")
	return fig, fig.Validate()
}

// randTokens draws n word tokens.
func randTokens(src *rng.Source, n, vocabSize int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = src.IntRange(vocab.FirstWordID, vocabSize-1)
	}
	return out
}
