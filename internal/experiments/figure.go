// Package experiments regenerates every table and figure of the paper's
// evaluation (§6.2) plus the ablations DESIGN.md calls out. Each runner
// returns a Figure — named series over a shared x-axis — that renders as a
// text table; cmd/tcb-bench prints them all and EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Series is one labelled line of a figure.
type Series struct {
	Name string    `json:"name"`
	Y    []float64 `json:"y"`
}

// Figure is a reproduced evaluation figure: one row per x value, one column
// per series.
type Figure struct {
	ID     string    `json:"id"` // e.g. "fig09"
	Title  string    `json:"title"`
	XLabel string    `json:"xlabel"`
	YLabel string    `json:"ylabel"`
	X      []float64 `json:"x"`
	Series []Series  `json:"series"`
	Notes  []string  `json:"notes,omitempty"`
}

// AddPoint appends y to the named series, creating it on first use.
// Callers must append points in x order, one per series per x.
func (f *Figure) AddPoint(series string, y float64) {
	for i := range f.Series {
		if f.Series[i].Name == series {
			f.Series[i].Y = append(f.Series[i].Y, y)
			return
		}
	}
	f.Series = append(f.Series, Series{Name: series, Y: []float64{y}})
}

// Get returns the y value of the named series at index i.
func (f *Figure) Get(series string, i int) (float64, error) {
	for _, s := range f.Series {
		if s.Name == series {
			if i < 0 || i >= len(s.Y) {
				return 0, fmt.Errorf("experiments: %s[%d] out of range %d", series, i, len(s.Y))
			}
			return s.Y[i], nil
		}
	}
	return 0, fmt.Errorf("experiments: no series %q in %s", series, f.ID)
}

// Validate checks that every series has one point per x value.
func (f *Figure) Validate() error {
	for _, s := range f.Series {
		if len(s.Y) != len(f.X) {
			return fmt.Errorf("experiments: %s series %q has %d points, %d x values",
				f.ID, s.Name, len(s.Y), len(f.X))
		}
	}
	return nil
}

// Render writes the figure as an aligned text table.
func (f *Figure) Render(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: %s\n", f.ID, f.Title)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	widths := make([]int, len(header))
	rows := [][]string{header}
	for i, x := range f.X {
		row := []string{formatNum(x)}
		for _, s := range f.Series {
			row = append(row, formatNum(s.Y[i]))
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		for c, cell := range row {
			fmt.Fprintf(w, "%-*s", widths[c]+2, cell)
		}
		fmt.Fprintln(w)
		if ri == 0 {
			total := 0
			for _, wd := range widths {
				total += wd + 2
			}
			fmt.Fprintln(w, strings.Repeat("-", total))
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
	return nil
}

func formatNum(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e7 && v > -1e7:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// WriteCSV emits the figure as RFC-4180 CSV: a header of x-label and series
// names, then one row per x value.
func (f *Figure) WriteCSV(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, x := range f.X {
		row := []string{strconv.FormatFloat(x, 'g', -1, 64)}
		for _, s := range f.Series {
			row = append(row, strconv.FormatFloat(s.Y[i], 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the figure as a single JSON line — the machine-readable
// counterpart of Render for CI artifact collection and cross-run diffing.
func (f *Figure) WriteJSON(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(f)
}
