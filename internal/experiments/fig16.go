package experiments

import (
	"fmt"

	"tcb/internal/batch"
	"tcb/internal/sim"
)

// Fig16 reproduces "The ratio of DAS running time and single batch
// inference time": for each arrival rate the simulator replays the §6.2.1
// workload under DAS-TCB, accumulating the *real* wall-clock spent inside
// DAS.Schedule; the ratio divides the mean scheduling time by the mean
// simulated batch inference time.
//
// The paper measures ≤ 2% at 400 req/s for its Python scheduler; the Go
// implementation is far cheaper in absolute terms, but the shape — ratio
// growing with arrival rate as the pending pool deepens — is the claim
// under test.
func Fig16(opt Options) (*Figure, error) {
	rates := []float64{100, 200, 300, 400}
	fig := &Figure{
		ID:     "fig16",
		Title:  "DAS scheduling overhead relative to batch inference time",
		XLabel: "rate(req/s)",
		YLabel: "percent",
		X:      rates,
	}
	for _, rate := range rates {
		trace, err := paperTrace(rate, 20, opt)
		if err != nil {
			return nil, err
		}
		m, err := sim.Run(sim.System{
			Name:      "DAS-TCB",
			Scheduler: expDAS(),
			Scheme:    batch.Concat,
			B:         PaperBatchRows,
			L:         PaperRowLen,
			Cost:      V100Params(),
		}, trace)
		if err != nil {
			return nil, fmt.Errorf("rate %g: %w", rate, err)
		}
		if m.SchedulerRuns == 0 || m.Batches == 0 {
			return nil, fmt.Errorf("rate %g: no scheduler runs recorded", rate)
		}
		meanSched := m.SchedulerWall.Seconds() / float64(m.SchedulerRuns)
		meanBatch := m.BusySeconds / float64(m.Batches)
		fig.AddPoint("DAS/batch (%)", 100*meanSched/meanBatch)
	}
	fig.Notes = append(fig.Notes,
		"scheduler time is real Go wall-clock; batch time is the simulated V100-class batch")
	return fig, fig.Validate()
}
