package experiments

import (
	"fmt"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/model"
	"tcb/internal/rng"
	"tcb/internal/sched"
	"tcb/internal/serve"
	"tcb/internal/vocab"
)

// ExtPipeline measures the three-stage serve pipeline end to end: the same
// Fig. 13/14-style workload (rows of RowLen tokens fully packed with
// ReqLen-token requests, batch sizes 10 and 32) is pushed through a serial
// serve.Server and a pipelined one over the same model, and the figure
// reports both throughputs plus the speedup. Every run cross-checks
// per-request outputs between the two modes — the pipeline's claim is
// overlap, never different answers.
//
// The overlap this measures is stage A's scheduling + layout + host-side
// staging and stage C's delivery + cleaning-simulation running under batch
// t's compute; on a single-core runner (GOMAXPROCS=1) there is nothing to
// overlap onto and the speedup sits at ~1×.
func ExtPipeline(opt Options) (*Figure, error) {
	cfg := model.Config{
		VocabSize: 64, DModel: 32, NumHeads: 4, DFF: 64,
		EncLayers: 1, DecLayers: 1, MaxLen: 512, Eps: 1e-5,
	}
	const (
		rowLen = 400
		reqLen = 20
		maxNew = 2
	)
	// Batches per point: enough rounds that the pipeline has neighbours to
	// overlap; Duration scales it up for published runs.
	rounds := int(opt.Duration)
	if rounds < 2 {
		rounds = 2
	}
	m := model.New(cfg, opt.Seed+200)

	fig := &Figure{
		ID:     "ext-pipeline",
		Title:  "Pipelined vs serial serving throughput (real engine, Fig. 13/14 workload)",
		XLabel: "batch-rows",
		YLabel: "req/s",
	}
	for _, B := range []int{10, 32} {
		n := B * (rowLen / reqLen) * rounds
		src := rng.New(opt.Seed + 200)
		reqs := make([][]int, n)
		for i := range reqs {
			seq := make([]int, reqLen)
			for j := range seq {
				seq[j] = src.IntRange(vocab.FirstWordID, cfg.VocabSize-1)
			}
			reqs[i] = seq
		}

		runMode := func(pipeline bool) (float64, [][]int, *serve.Stats, error) {
			eng := engine.New(m, maxNew)
			eng.UseCache = true
			eng.Quantize = opt.Quantize
			s, err := serve.New(serve.Config{
				Engine: eng, Scheduler: sched.NewDAS(), Scheme: batch.Concat,
				B: B, L: rowLen, Poll: 200 * time.Microsecond,
				QueueCap: n + 1, Pipeline: pipeline,
			})
			if err != nil {
				return 0, nil, nil, err
			}
			chans := make([]<-chan serve.Response, n)
			// Whole backlog queued up front: the measurement is saturated
			// steady-state throughput, not arrival-limited latency.
			for i, seq := range reqs {
				ch, err := s.Submit(seq, time.Hour)
				if err != nil {
					return 0, nil, nil, fmt.Errorf("submit %d: %w", i, err)
				}
				chans[i] = ch
			}
			start := time.Now()
			s.Start()
			s.Drain()
			wall := time.Since(start).Seconds()
			outs := make([][]int, n)
			for i, ch := range chans {
				resp := <-ch
				if resp.Err != nil {
					return 0, nil, nil, fmt.Errorf("request %d: %w", i, resp.Err)
				}
				outs[i] = resp.Output
			}
			st := s.Stats()
			return float64(n) / wall, outs, &st, nil
		}

		serialTput, serialOuts, _, err := runMode(false)
		if err != nil {
			return nil, fmt.Errorf("ext-pipeline: serial B=%d: %w", B, err)
		}
		fig.X = append(fig.X, float64(B))
		fig.AddPoint("serial", serialTput)
		if opt.DisablePipeline {
			fig.AddPoint("pipelined", serialTput)
			fig.AddPoint("speedup", 1)
			continue
		}
		pipeTput, pipeOuts, st, err := runMode(true)
		if err != nil {
			return nil, fmt.Errorf("ext-pipeline: pipelined B=%d: %w", B, err)
		}
		for i := range serialOuts {
			if len(pipeOuts[i]) != len(serialOuts[i]) {
				return nil, fmt.Errorf("ext-pipeline: request %d serial/pipelined outputs diverge", i)
			}
			for j := range serialOuts[i] {
				if pipeOuts[i][j] != serialOuts[i][j] {
					return nil, fmt.Errorf("ext-pipeline: request %d token %d diverges", i, j)
				}
			}
		}
		fig.AddPoint("pipelined", pipeTput)
		fig.AddPoint("speedup", pipeTput/serialTput)
		// Stage-utilization breakdown: under the pipeline the three accrue
		// concurrently, so schedule+cleanup time is overlap won back, not
		// wall time added.
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"B=%d pipelined stage ms: schedule %.1f, compute %.1f, cleanup %.1f (overlapped)",
			B,
			float64(st.ScheduleNs)/1e6,
			float64(st.ComputeNs)/1e6,
			float64(st.CleanupNs)/1e6))
	}
	if opt.DisablePipeline {
		fig.Notes = append(fig.Notes, "pipeline disabled (-pipeline=false); pipelined series mirrors serial")
	}
	fig.Notes = append(fig.Notes,
		"wall-clock over a pre-queued backlog; per-request outputs verified identical across modes")
	return fig, fig.Validate()
}
