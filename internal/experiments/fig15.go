package experiments

import (
	"fmt"

	"tcb/internal/batch"
	"tcb/internal/sched"
	"tcb/internal/sim"
)

// fig15Schedulers are the four algorithms §6.2.4 compares on the TCB
// engine.
func fig15Schedulers() []func() sched.Scheduler {
	return []func() sched.Scheduler{
		func() sched.Scheduler { return expDAS() },
		func() sched.Scheduler { return sched.SJF{} },
		func() sched.Scheduler { return sched.FCFS{} },
		func() sched.Scheduler { return sched.DEF{} },
	}
}

// fig15Rate is the arrival pressure for the scheduler comparison: well
// above saturation so scheduling decisions matter.
const fig15Rate = 700

// schedulerSweep runs the four schedulers over the TCB engine for every
// (B, L, variance) in the given points, recording total utility.
func schedulerSweep(id, title, xlabel string, xs []float64,
	point func(x float64) (B, L int, variance float64), opt Options) (*Figure, error) {
	fig := &Figure{ID: id, Title: title, XLabel: xlabel, YLabel: "utility", X: xs}
	seeds := opt.seedList()
	for _, x := range xs {
		B, L, variance := point(x)
		for _, mk := range fig15Schedulers() {
			var acc float64
			var name string
			for _, seed := range seeds {
				seedOpt := opt
				seedOpt.Seed = seed
				trace, err := paperTrace(fig15Rate, variance, seedOpt)
				if err != nil {
					return nil, err
				}
				s := mk()
				name = s.Name()
				m, err := sim.Run(sim.System{
					Name:      s.Name() + "-TCB",
					Scheduler: s,
					Scheme:    batch.Concat,
					B:         B,
					L:         L,
					Cost:      V100Params(),
				}, trace)
				if err != nil {
					return nil, fmt.Errorf("%s at %s=%g: %w", s.Name(), xlabel, x, err)
				}
				acc += m.Utility
			}
			fig.AddPoint(name+"-TCB", acc/float64(len(seeds)))
		}
	}
	return fig, fig.Validate()
}

// Fig15a reproduces "Utility under different batch sizes" (B ∈ {5, 10, 16}).
func Fig15a(opt Options) (*Figure, error) {
	return schedulerSweep("fig15a", "Utility under different batch sizes (TCB engine)",
		"batch-size", []float64{5, 10, 16},
		func(x float64) (int, int, float64) { return int(x), PaperRowLen, 20 }, opt)
}

// Fig15b reproduces "Utility under different variances" (variance ∈
// {10, 50, 100}, batch size 16).
func Fig15b(opt Options) (*Figure, error) {
	return schedulerSweep("fig15b", "Utility under different length variances (batch size 16)",
		"variance", []float64{10, 50, 100},
		func(x float64) (int, int, float64) { return 16, PaperRowLen, x }, opt)
}

// Fig15c reproduces "Utility under different input lengths" (batch row
// length L ∈ {100, 200, 300}).
func Fig15c(opt Options) (*Figure, error) {
	return schedulerSweep("fig15c", "Utility under different batch row lengths (batch size 16)",
		"row-length", []float64{100, 200, 300},
		func(x float64) (int, int, float64) { return 16, int(x), 20 }, opt)
}
