package experiments

import (
	"bytes"
	"strings"
	"testing"

	"tcb/internal/model"
)

// fastOpt keeps unit-test experiment runs short; shapes hold at this scale.
func fastOpt() Options { return Options{Duration: 1.5, Seed: 1} }

func TestFigureAddGetValidate(t *testing.T) {
	f := &Figure{ID: "t", X: []float64{1, 2}}
	f.AddPoint("a", 10)
	f.AddPoint("a", 20)
	f.AddPoint("b", 30)
	if f.Validate() == nil {
		t.Fatal("series b is short; Validate must fail")
	}
	f.AddPoint("b", 40)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	v, err := f.Get("a", 1)
	if err != nil || v != 20 {
		t.Fatalf("Get = %v, %v", v, err)
	}
	if _, err := f.Get("missing", 0); err == nil {
		t.Fatal("missing series should error")
	}
	if _, err := f.Get("a", 5); err == nil {
		t.Fatal("out-of-range index should error")
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{ID: "t", Title: "demo", XLabel: "x", X: []float64{1, 1000}}
	f.AddPoint("y", 0.5)
	f.AddPoint("y", 123456)
	f.Notes = append(f.Notes, "a note")
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"t: demo", "x", "y", "0.5", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestV100ParamsValid(t *testing.T) {
	if err := V100Params().Validate(); err != nil {
		t.Fatal(err)
	}
}

// Figs. 9–10 headline: after saturation, DAS-TCB beats DAS-TTB beats
// DAS-TNB in both utility and throughput.
func TestFig0910Shape(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(Options) (*Figure, error)
	}{
		{"fig09", Fig09},
		{"fig10", Fig10},
	} {
		fig, err := tc.run(fastOpt())
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		last := len(fig.X) - 1 // rate 1500: all systems saturated
		tnb, _ := fig.Get("DAS-TNB", last)
		ttb, _ := fig.Get("DAS-TTB", last)
		tcb, _ := fig.Get("DAS-TCB", last)
		if !(tcb > ttb && ttb > tnb) {
			t.Fatalf("%s: saturated ordering wrong: TCB %v, TTB %v, TNB %v",
				tc.name, tcb, ttb, tnb)
		}
		if tcb/tnb < 1.3 {
			t.Fatalf("%s: TCB/TNB gap %v too small", tc.name, tcb/tnb)
		}
	}
}

func TestFig09MonotoneBeforeSaturation(t *testing.T) {
	fig, err := Fig09(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Utility grows with rate in the unsaturated regime (first 4 points,
	// 40→180 req/s) for every system.
	for _, s := range fig.Series {
		for i := 1; i < 4; i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Fatalf("%s: utility fell from %v to %v between rates %v and %v",
					s.Name, s.Y[i-1], s.Y[i], fig.X[i-1], fig.X[i])
			}
		}
	}
}

// Figs. 11–12: under FCFS the TCB:TTB gap widens when variance grows from
// 20 to 100 (the paper: 1.52× → 1.72×).
func TestFig1112VarianceWidensGap(t *testing.T) {
	f11, err := Fig11(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	f12, err := Fig12(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	last := len(f11.X) - 1
	gap := func(f *Figure) float64 {
		tcb, _ := f.Get("FCFS-TCB", last)
		ttb, _ := f.Get("FCFS-TTB", last)
		return tcb / ttb
	}
	g11, g12 := gap(f11), gap(f12)
	if g11 <= 1 {
		t.Fatalf("fig11: TCB should beat TTB, gap %v", g11)
	}
	if g12 < g11 {
		t.Fatalf("variance 100 should widen the gap: %v < %v", g12, g11)
	}
}

// Figs. 13–14 on a reduced setting: slotting speeds up the real engine,
// and a larger batch gains at least as much (paper: 1.18× vs 2.31×).
func TestSlottedSpeedupShape(t *testing.T) {
	opt := DefaultSlottedOptions(2)
	opt.RowLen = 120
	opt.ReqLen = 10
	opt.SlotCounts = []int{1, 2, 4, 6}
	opt.Reps = 2
	opt.Model.DModel = 32
	opt.Model.NumHeads = 2
	opt.Model.DFF = 64
	opt.Model.EncLayers = 1
	fig, err := SlottedSpeedup(opt)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := fig.Get("speedup", 0)
	if first != 1 {
		t.Fatalf("1 slot must be the 1× baseline, got %v", first)
	}
	best, _ := fig.Get("speedup", len(fig.X)-1)
	if best <= 1 {
		t.Fatalf("slotting should speed up the engine, best %v", best)
	}
}

func TestSlottedSpeedupRejectsBadOptions(t *testing.T) {
	opt := DefaultSlottedOptions(2)
	opt.ReqLen = 7 // does not divide 400
	if _, err := SlottedSpeedup(opt); err == nil {
		t.Fatal("non-divisible ReqLen should fail")
	}
}

// Fig. 15: DAS-TCB dominates the baseline schedulers on aggregate utility
// across each sweep, and stays within noise of the best at every single
// point (the paper's §6.2.4 claim; single points at tiny batch sizes are
// noisy at test-scale trace lengths).
func TestFig15DASWins(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(Options) (*Figure, error)
	}{
		{"fig15a", Fig15a},
		{"fig15b", Fig15b},
		{"fig15c", Fig15c},
	} {
		// Deadline-aware effects need traces spanning several deadline
		// windows; 1.5 s is too short for a 3 s max deadline.
		fig, err := tc.run(Options{Duration: 5, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sum := map[string]float64{}
		for i := range fig.X {
			das, _ := fig.Get("DAS-TCB", i)
			sum["DAS-TCB"] += das
			for _, other := range []string{"SJF-TCB", "FCFS-TCB", "DEF-TCB"} {
				v, err := fig.Get(other, i)
				if err != nil {
					t.Fatal(err)
				}
				sum[other] += v
				if das < 0.90*v {
					t.Fatalf("%s x=%v: DAS %v far below %s %v",
						tc.name, fig.X[i], das, other, v)
				}
			}
		}
		for _, other := range []string{"FCFS-TCB", "DEF-TCB"} {
			if sum["DAS-TCB"] <= sum[other] {
				t.Fatalf("%s: DAS aggregate %v should beat %s %v",
					tc.name, sum["DAS-TCB"], other, sum[other])
			}
		}
		if sum["DAS-TCB"] < 0.97*sum["SJF-TCB"] {
			t.Fatalf("%s: DAS aggregate %v too far below SJF %v",
				tc.name, sum["DAS-TCB"], sum["SJF-TCB"])
		}
	}
}

func TestFig16OverheadSmallAndRecorded(t *testing.T) {
	fig, err := Fig16(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	for i := range fig.X {
		v, _ := fig.Get("DAS/batch (%)", i)
		if v < 0 || v > 10 {
			t.Fatalf("overhead ratio %v%% at rate %v out of sane range", v, fig.X[i])
		}
	}
}

func TestAblationEta(t *testing.T) {
	fig, err := AblationEta(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	for i := range fig.X {
		if v, _ := fig.Get("utility", i); v <= 0 {
			t.Fatalf("eta %v produced non-positive utility", fig.X[i])
		}
	}
}

func TestAblationSlotPolicyAdaptiveCompetitive(t *testing.T) {
	fig, err := AblationSlotPolicy(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	adaptive, _ := fig.Get("utility", 0)
	best, worst := 0.0, 1e18
	for i := 1; i < len(fig.X); i++ {
		v, _ := fig.Get("utility", i)
		if v > best {
			best = v
		}
		if v < worst {
			worst = v
		}
	}
	// Finding (recorded in EXPERIMENTS.md): with the calibrated cost model
	// attention is a small share of batch time at L=100, so Algorithm 2's
	// aggressive slot size trades away more capacity than the redundancy
	// it saves; large fixed slots win. The adaptive rule must still land
	// well inside the fixed-size range — far above the worst choice.
	if adaptive < 0.75*best {
		t.Fatalf("adaptive slot size %v too far below best fixed %v", adaptive, best)
	}
	if adaptive < 2*worst {
		t.Fatalf("adaptive slot size %v should clear the worst fixed choice %v", adaptive, worst)
	}
}

func TestAblationEarlyCleaning(t *testing.T) {
	fig, err := AblationEarlyCleaning(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	for i := range fig.X {
		whole, _ := fig.Get("whole-batch", i)
		early, _ := fig.Get("early-slot", i)
		if early > whole {
			t.Fatalf("early cleaning used more byte-steps (%v > %v) at B=%v",
				early, whole, fig.X[i])
		}
	}
}

func TestExtFusedDecode(t *testing.T) {
	fig, err := ExtFusedDecode(fastOpt())
	if err != nil {
		t.Fatal(err) // includes the internal fused-vs-per-row token check
	}
	for i := range fig.X {
		sp, _ := fig.Get("speedup", i)
		if sp <= 0 {
			t.Fatalf("speedup %v at B=%v", sp, fig.X[i])
		}
	}
	// Escape hatch: the figure must still validate with fusing disabled.
	off := fastOpt()
	off.DisableFusedDecode = true
	fig, err = ExtFusedDecode(off)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fig.X {
		sp, _ := fig.Get("speedup", i)
		if sp != 1 {
			t.Fatalf("disabled fusing must report 1x, got %v", sp)
		}
	}
}

func TestAblationPacking(t *testing.T) {
	fig, err := AblationPacking()
	if err != nil {
		t.Fatal(err)
	}
	for i := range fig.X {
		ff, _ := fig.Get("first-fit", i)
		ffd, _ := fig.Get("ffd", i)
		if ff <= 0 || ff > 1 || ffd <= 0 || ffd > 1 {
			t.Fatalf("utilizations out of range: %v, %v", ff, ffd)
		}
	}
}

func TestRunAndRenderFilters(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAndRender(&buf, fastOpt(), "ablation-packing"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ablation-packing") {
		t.Fatal("filtered run missing requested figure")
	}
	if err := RunAndRender(&buf, fastOpt(), "no-such-figure"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestDefaultSlottedOptionsValid(t *testing.T) {
	opt := DefaultSlottedOptions(10)
	if err := opt.Model.Validate(); err != nil {
		t.Fatal(err)
	}
	if opt.RowLen != 400 || len(opt.SlotCounts) != 7 {
		t.Fatalf("paper setting wrong: %+v", opt)
	}
	var _ = model.PaperConfig(100) // paper dims referenced by docs
}

func TestExtOverlapNeverHurts(t *testing.T) {
	fig, err := ExtOverlap(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	gained := false
	for i := range fig.X {
		plain, _ := fig.Get("slotted", i)
		overlap, _ := fig.Get("slotted+overlap", i)
		// Busy-ms per request: lower is better; overlap can only subtract
		// from each batch's time (the request mix is identical only up to
		// scheduling noise, hence the small tolerance).
		if overlap > plain*1.01 {
			t.Fatalf("overlap raised service time at rate %v: %v > %v",
				fig.X[i], overlap, plain)
		}
		if overlap < plain-1e-9 {
			gained = true
		}
	}
	if !gained {
		t.Fatal("early-cleaning overlap produced no gain at any rate")
	}
}

func TestExtBimodalTCBWins(t *testing.T) {
	fig, err := ExtBimodal(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	last := len(fig.X) - 1
	tnb, _ := fig.Get("FCFS-TNB", last)
	ttb, _ := fig.Get("FCFS-TTB", last)
	tcb, _ := fig.Get("FCFS-TCB", last)
	if !(tcb > ttb && tcb > tnb) {
		t.Fatalf("bimodal saturated ordering wrong: TCB %v, TTB %v, TNB %v", tcb, ttb, tnb)
	}
}

func TestExtEfficiencyAboveWorstCase(t *testing.T) {
	fig, err := ExtEfficiency(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	worst := expDAS().CompetitiveRatio()
	for i := range fig.X {
		r, _ := fig.Get("DAS/UB", i)
		if r <= worst {
			t.Fatalf("efficiency %v at rate %v not above worst case %v", r, fig.X[i], worst)
		}
		if r > 1+1e-9 {
			t.Fatalf("efficiency %v exceeds 1 — UB violated", r)
		}
	}
}

func TestExtScalingNearLinear(t *testing.T) {
	fig, err := ExtScaling(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	one, _ := fig.Get("throughput", 0)
	two, _ := fig.Get("throughput", 1)
	four, _ := fig.Get("throughput", 2)
	if two < 1.6*one {
		t.Fatalf("2 devices: %v, want ≥1.6× of %v", two, one)
	}
	if four < 1.4*two {
		t.Fatalf("4 devices: %v, want ≥1.4× of %v", four, two)
	}
}

func TestWriteCSV(t *testing.T) {
	f := &Figure{ID: "t", XLabel: "x", X: []float64{1, 2}}
	f.AddPoint("a", 10)
	f.AddPoint("a", 20.5)
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "x,a\n1,10\n2,20.5\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
	// Invalid figure must be rejected.
	f.AddPoint("b", 1)
	if err := f.WriteCSV(&buf); err == nil {
		t.Fatal("ragged figure should fail CSV export")
	}
}

func TestExtLatencyOrderedPercentiles(t *testing.T) {
	fig, err := ExtLatency(fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if s.Y[0] > s.Y[1] {
			t.Fatalf("%s: p50 %v > p95 %v", s.Name, s.Y[0], s.Y[1])
		}
		if s.Y[0] <= 0 {
			t.Fatalf("%s: non-positive latency", s.Name)
		}
	}
	// At 400 req/s TNB is past saturation while TCB is not: TCB's tail
	// latency must be lower.
	tnb, _ := fig.Get("DAS-TNB", 1)
	tcb, _ := fig.Get("DAS-TCB", 1)
	if tcb >= tnb {
		t.Fatalf("TCB p95 %v should beat TNB p95 %v at 400 req/s", tcb, tnb)
	}
}

func TestExtWeightedDASProtectsPremium(t *testing.T) {
	fig, err := ExtWeighted(Options{Duration: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dasStd, _ := fig.Get("DAS", 0)
	dasPrem, _ := fig.Get("DAS", 1)
	fcfsPrem, _ := fig.Get("FCFS", 1)
	if dasPrem <= dasStd {
		t.Fatalf("DAS should serve premium (%v) above standard (%v)", dasPrem, dasStd)
	}
	if dasPrem <= fcfsPrem {
		t.Fatalf("DAS premium fraction %v should beat weight-blind FCFS %v", dasPrem, fcfsPrem)
	}
}

// ext-fairness shape: the WFQ window must restore most of the well-behaved
// tenants' baseline goodput under a 10× flood, and split it evenly, while
// the tenant-blind pool must visibly starve them.
func TestExtFairnessIsolatesFlood(t *testing.T) {
	fig, err := ExtFairness(Options{Duration: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	unfairRatio, _ := fig.Get("ratio", 1)
	fairRatio, _ := fig.Get("ratio", 2)
	fairJain, _ := fig.Get("jain-good", 2)
	if fairRatio < 0.9 {
		t.Fatalf("fair flood ratio %v below the 0.9 gate", fairRatio)
	}
	if fairJain < 0.9 {
		t.Fatalf("fair flood jain %v below the 0.9 gate", fairJain)
	}
	if unfairRatio > 0.8*fairRatio {
		t.Fatalf("tenant-blind pool should starve good tenants: unfair %v vs fair %v",
			unfairRatio, fairRatio)
	}
	baseline, _ := fig.Get("ratio", 0)
	if baseline != 1 {
		t.Fatalf("baseline ratio must be 1, got %v", baseline)
	}
}

func TestMultiSeedAveragingDiffers(t *testing.T) {
	// Averaging over 2 seeds must produce values between single-seed runs
	// (exactly their mean) — catch accidental seed reuse.
	a, err := Fig11(Options{Duration: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig11(Options{Duration: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	avg, err := Fig11(Options{Duration: 1, Seed: 1, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	for si := range avg.Series {
		for i := range avg.X {
			want := (a.Series[si].Y[i] + b.Series[si].Y[i]) / 2
			got := avg.Series[si].Y[i]
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s[%d]: avg %v != mean %v", avg.Series[si].Name, i, got, want)
			}
		}
	}
}

func TestExtPipeline(t *testing.T) {
	fig, err := ExtPipeline(fastOpt())
	if err != nil {
		t.Fatal(err) // includes the internal pipelined-vs-serial token check
	}
	for i := range fig.X {
		for _, series := range []string{"serial", "pipelined"} {
			tput, _ := fig.Get(series, i)
			if tput <= 0 {
				t.Fatalf("%s throughput %v at B=%v", series, tput, fig.X[i])
			}
		}
		sp, _ := fig.Get("speedup", i)
		if sp <= 0 {
			t.Fatalf("speedup %v at B=%v", sp, fig.X[i])
		}
	}
	// Escape hatch: the figure must still validate with the pipeline off.
	off := fastOpt()
	off.DisablePipeline = true
	fig, err = ExtPipeline(off)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fig.X {
		sp, _ := fig.Get("speedup", i)
		if sp != 1 {
			t.Fatalf("disabled pipeline must report 1x, got %v", sp)
		}
	}
}
