package experiments

import (
	"tcb/internal/cost"
	"tcb/internal/sched"
	"tcb/internal/workload"
)

// Options tunes experiment scale without changing shape: shorter durations
// for tests and benches, longer for the published tables.
type Options struct {
	Duration float64 // trace length in simulated seconds per data point
	Seed     uint64
	// Seeds > 1 averages each simulated data point over that many
	// workload seeds (Seed, Seed+1, …), trading runtime for smoother
	// curves. 0 and 1 both mean a single seed. Real-engine figures
	// (13–14) ignore it — their noise is wall-clock, handled by Reps.
	Seeds int
	// DisableFusedDecode is the escape hatch behind tcb-bench's
	// -fusedecode=false: real-engine experiments that decode through the
	// KV cache fall back to the per-row decoder instead of the batch-wide
	// fused one. Outputs are token-identical either way; only timing moves.
	DisableFusedDecode bool
	// DisablePipeline is the escape hatch behind tcb-bench's
	// -pipeline=false: ext-pipeline skips the pipelined serving run and
	// mirrors the serial series instead, for A/B isolation on machines
	// where the overlap cannot help (e.g. single-core runners).
	DisablePipeline bool
	// DisableRefill is the escape hatch behind tcb-bench's -refill=false:
	// ext-refill skips the continuous-batching runs and mirrors the
	// no-refill series instead, for A/B isolation.
	DisableRefill bool
	// DisablePrefix is the escape hatch behind tcb-bench's -prefix=false:
	// ext-prefix skips the cached runs and mirrors the no-cache series
	// instead, for A/B isolation.
	DisablePrefix bool
	// Quantize routes every real-engine experiment's projections through
	// the int8 per-channel quantized GEMM (tcb-bench -quantize, and implied
	// by -kernel=int8). ext-quantized ignores it: that experiment always
	// runs both paths to measure the gap.
	Quantize bool
}

// DefaultOptions runs each point over a 5-second trace.
func DefaultOptions() Options { return Options{Duration: 5, Seed: 1} }

// seedList expands Options into the workload seeds to average over.
func (o Options) seedList() []uint64 {
	n := o.Seeds
	if n < 1 {
		n = 1
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = o.Seed + uint64(i)
	}
	return out
}

// V100Params returns the cost-model constants calibrated so the simulated
// serving system reproduces the *shapes* of the paper's V100 measurements
// at the §6.1 configuration (B = 64 rows of L = 100 tokens, lengths 3–100
// with mean 20):
//
//   - DAS-TCB saturates near 430 req/s (paper: 450);
//   - DAS-TNB near 220 req/s (paper: ~200, saturating by 350);
//   - the TCB:TTB throughput gap lands near 1.6× (paper: 1.48×) and
//     TCB:TNB near 1.9× (paper: 2.22×).
//
// The absolute times are not the paper's (our substrate is a simulator —
// see DESIGN.md §2); the constants were fixed once against these shape
// targets and are used unchanged by every experiment.
func V100Params() cost.Params {
	return cost.Params{
		PerTokenSeconds:        5.5e-5,
		PerScoreSeconds:        5e-8,
		PerBatchSeconds:        20e-3,
		DecodeRounds:           20,
		PerSegmentRoundSeconds: 3.7e-5,
		PerRoundSeconds:        3.7e-3,
		LoadFraction:           0.35,
	}
}

// Paper §6 constants.
const (
	PaperBatchRows = 64  // batch size for TNB and TCB (Figs. 9–12)
	PaperRowLen    = 100 // max input length of the workload rows
)

// Deadline offsets for the experiment traces. The paper does not publish
// its deadline distribution; [0.5 s, 3.0 s] gives each request a handful of
// batch slots of slack, the regime in which deadline-aware scheduling can
// actually rescue requests (with sub-slot deadlines every scheduler
// degenerates to one-shot greedy and the comparison is vacuous).
const (
	expDeadlineMin = 0.5
	expDeadlineMax = 3.0
)

// expDAS returns the DAS configuration the experiments use: η = 0.3,
// q = 0.7. η is a tunable system parameter (§5.2, unpublished in the
// evaluation); this setting weights the deadline-aware set more heavily and
// dominates the η sweep (see AblationEta), so it is the natural operating
// point.
func expDAS() *sched.DAS { return &sched.DAS{Eta: 0.3, Q: 0.7} }

// paperTrace generates the §6.2.1 workload at the given rate and variance.
func paperTrace(rate, variance float64, opt Options) ([]*sched.Request, error) {
	spec := workload.PaperSpec(rate, opt.Duration, opt.Seed)
	spec.VarLen = variance
	spec.DeadlineMin = expDeadlineMin
	spec.DeadlineMax = expDeadlineMax
	return workload.Generate(spec)
}
