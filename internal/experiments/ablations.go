package experiments

import (
	"fmt"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/model"
	"tcb/internal/rng"
	"tcb/internal/sched"
	"tcb/internal/sim"
	"tcb/internal/vocab"
)

// AblationEta sweeps DAS's η (with q = 1 − η, keeping Theorem 5.1's
// premise) and reports total utility at a saturating rate. The paper fixes
// η = q = ½; this shows how sensitive the result is to that choice.
func AblationEta(opt Options) (*Figure, error) {
	etas := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	fig := &Figure{
		ID:     "ablation-eta",
		Title:  "DAS utility vs η (q = 1−η), rate 800 req/s",
		XLabel: "eta",
		YLabel: "utility",
	}
	trace, err := paperTrace(800, 20, opt)
	if err != nil {
		return nil, err
	}
	for _, eta := range etas {
		fig.X = append(fig.X, eta)
		m, err := sim.Run(sim.System{
			Name:      fmt.Sprintf("DAS(η=%g)", eta),
			Scheduler: &sched.DAS{Eta: eta, Q: 1 - eta},
			Scheme:    batch.Concat,
			B:         PaperBatchRows,
			L:         PaperRowLen,
			Cost:      V100Params(),
		}, trace)
		if err != nil {
			return nil, err
		}
		fig.AddPoint("utility", m.Utility)
	}
	return fig, fig.Validate()
}

// AblationSlotPolicy compares Algorithm 2's adaptive slot size (max length
// of the utility-dominant set) against fixed slot sizes, reporting utility
// under saturation. Too-small fixed slots discard long requests; too-large
// ones give up the redundancy savings — the adaptive rule should track the
// best fixed choice.
func AblationSlotPolicy(opt Options) (*Figure, error) {
	fixed := []int{10, 20, 40, 100}
	fig := &Figure{
		ID:     "ablation-slot-policy",
		Title:  "Slot-size policy: Algorithm 2 adaptive vs fixed, rate 800 req/s",
		XLabel: "slot-size(0=adaptive)",
		YLabel: "utility",
	}
	trace, err := paperTrace(800, 20, opt)
	if err != nil {
		return nil, err
	}
	run := func(name string, s sched.Scheduler) (float64, error) {
		m, err := sim.Run(sim.System{
			Name: name, Scheduler: s, Scheme: batch.SlottedConcat,
			B: PaperBatchRows, L: PaperRowLen, Cost: V100Params(),
		}, trace)
		if err != nil {
			return 0, err
		}
		return m.Utility, nil
	}
	fig.X = append(fig.X, 0)
	u, err := run("adaptive", &sched.SlottedDAS{DAS: *expDAS()})
	if err != nil {
		return nil, err
	}
	fig.AddPoint("utility", u)
	for _, z := range fixed {
		fig.X = append(fig.X, float64(z))
		u, err := run(fmt.Sprintf("fixed-%d", z), &fixedSlotDAS{z: z})
		if err != nil {
			return nil, err
		}
		fig.AddPoint("utility", u)
	}
	return fig, fig.Validate()
}

// fixedSlotDAS wraps DAS with a fixed slot size instead of Algorithm 2's
// adaptive rule, for the slot-policy ablation.
type fixedSlotDAS struct {
	das sched.DAS
	z   int
}

func (f *fixedSlotDAS) Name() string { return fmt.Sprintf("DAS-slot%d", f.z) }

func (f *fixedSlotDAS) Schedule(now float64, pending []*sched.Request, B, L int) sched.Decision {
	das := f.das
	if das.Eta == 0 {
		das = *expDAS()
	}
	base := das.Schedule(now, pending, B, L)
	z := f.z
	if z <= 0 || z > L {
		z = L
	}
	slotsPerRow := L / z
	out := sched.Decision{Rows: make([][]*sched.Request, len(base.Rows)), SlotSize: z}
	for k, row := range base.Rows {
		free := make([]int, slotsPerRow)
		slots := make([][]*sched.Request, slotsPerRow)
		for i := range free {
			free[i] = z
		}
		for _, r := range row {
			if r.Len > z {
				continue
			}
			for si := range free {
				if free[si] >= r.Len {
					free[si] -= r.Len
					slots[si] = append(slots[si], r)
					break
				}
			}
		}
		for _, s := range slots {
			out.Rows[k] = append(out.Rows[k], s...)
		}
	}
	return out
}

// AblationEarlyCleaning measures §4.2.2 on the real engine: for growing
// batch sizes, it decodes a slotted batch and reports the byte-step
// integral under whole-batch cleaning vs early slot cleaning, plus the
// decode-step overlap window the freed slots open for the next batch.
// Decoding runs through the cached serving path (fused unless the caller's
// escape hatch disables it); the figure only depends on finish steps, which
// are identical across decode paths.
func AblationEarlyCleaning(opt Options) (*Figure, error) {
	cfg := model.Config{
		VocabSize: 64, DModel: 32, NumHeads: 4, DFF: 64,
		EncLayers: 1, DecLayers: 1, MaxLen: 256, Eps: 1e-5,
	}
	eng := engine.New(model.New(cfg, 11), 12)
	eng.UseCache = true
	eng.FuseDecode = !opt.DisableFusedDecode
	// Seq2seq output tracks input length, so requests of different lengths
	// finish at different decoder steps — the §4.2.2 premise.
	eng.OutputCap = func(inputLen int) int { return inputLen }
	src := rng.New(11)
	rows := []int{2, 4, 8}
	fig := &Figure{
		ID:     "ablation-early-cleaning",
		Title:  "Early memory cleaning: byte-steps and overlap (real engine decode)",
		XLabel: "batch-rows",
		YLabel: "byte-steps",
	}
	for _, B := range rows {
		fig.X = append(fig.X, float64(B))
		n := B * 4
		items := make([]batch.Item, n)
		tokens := make(map[int64][]int, n)
		for i := 0; i < n; i++ {
			id := int64(i + 1)
			l := src.IntRange(3, 10)
			items[i] = batch.Item{ID: id, Len: l}
			seq := make([]int, l)
			for j := range seq {
				seq[j] = src.IntRange(vocab.FirstWordID, cfg.VocabSize-1)
			}
			tokens[id] = seq
		}
		b, rest := batch.PackSlotted(items, B, 40, 10)
		if len(rest) != 0 {
			return nil, fmt.Errorf("early-cleaning ablation: %d items unpacked", len(rest))
		}
		rep, err := eng.Run(b, tokens)
		if err != nil {
			return nil, err
		}
		if !rep.HasEarly {
			return nil, fmt.Errorf("early-cleaning ablation: no early report")
		}
		fig.AddPoint("whole-batch", float64(rep.Early.TotalBytes)*float64(rep.Early.FinalStep))
		fig.AddPoint("early-slot", float64(rep.Early.ByteSteps))
		fig.AddPoint("overlap-steps", float64(rep.Early.FinalStep-rep.Early.EarliestFree))
	}
	return fig, fig.Validate()
}

// AblationPacking compares the paper's priority-order first-fit row packing
// against first-fit-decreasing on identical random item sets, reporting
// mean batch utilization. FFD packs tighter but ignores the scheduler's
// priority order — the trade-off behind PackConcat's design.
func AblationPacking() (*Figure, error) {
	src := rng.New(21)
	sizes := []int{16, 64, 256}
	fig := &Figure{
		ID:     "ablation-packing",
		Title:  "Row packing order: priority first-fit vs FFD (mean utilization)",
		XLabel: "items",
		YLabel: "utilization",
	}
	for _, n := range sizes {
		fig.X = append(fig.X, float64(n))
		var ffUtil, ffdUtil float64
		const trials = 50
		for trial := 0; trial < trials; trial++ {
			items := make([]batch.Item, n)
			for i := range items {
				items[i] = batch.Item{ID: int64(i + 1), Len: src.TruncatedNormalInt(20, 4.5, 3, 100)}
			}
			b1, _ := batch.PackConcat(items, PaperBatchRows, PaperRowLen)
			b2, _ := batch.PackConcatFFD(items, PaperBatchRows, PaperRowLen)
			ffUtil += b1.Utilization()
			ffdUtil += b2.Utilization()
		}
		fig.AddPoint("first-fit", ffUtil/trials)
		fig.AddPoint("ffd", ffdUtil/trials)
	}
	return fig, fig.Validate()
}
