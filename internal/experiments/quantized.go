package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/model"
	"tcb/internal/rng"
	"tcb/internal/vocab"
)

// ExtQuantized is the A/B experiment for the int8 per-channel quantized GEMM
// path: the Fig. 13/14 batch geometry (fully packed rows of 20-token
// requests at the paper's L = 100 row length) runs encode-dominated through
// the float32 wide kernel and through the quantized path, on a model wide
// enough (d_model 256) that a layer's float32 weight matrices outgrow L1
// while the int8 kernel's L1-blocked weight tiles stay resident.
//
// Timing is paired median-of-3: each rep runs float32 and int8 back to back,
// and the pair with the median speedup is reported — paired runs cancel
// machine-wide drift, the median discards one-off interference. Accuracy
// rides along in the notes: the max absolute encoder-output error against
// the float32 reference (with the reference's own scale for context) and the
// greedy-decode token-agreement rate over a decoding batch.
func ExtQuantized(opt Options) (*Figure, error) {
	cfg := model.Config{
		VocabSize: 64, DModel: 256, NumHeads: 8, DFF: 512,
		EncLayers: 2, DecLayers: 1, MaxLen: 512, Eps: 1e-5,
	}
	const (
		rowLen = 100
		reqLen = 20
		reps   = 3
	)
	seed := opt.Seed + 200
	// Two models from the same seed: identical float32 weights, one carries
	// the int8 copies. Separate instances keep the float32 engine's path
	// free of any quantized state.
	mFloat := model.New(cfg, seed)
	mQuant := model.New(cfg, seed)
	engF := engine.New(mFloat, 0) // encode-only timing
	engQ := engine.New(mQuant, 0)
	engQ.Quantize = true

	src := rng.New(seed)
	makeBatch := func(rows int) (*batch.Batch, map[int64][]int, error) {
		n := rows * (rowLen / reqLen)
		items := make([]batch.Item, n)
		tokens := make(map[int64][]int, n)
		for i := 0; i < n; i++ {
			id := int64(i + 1)
			items[i] = batch.Item{ID: id, Len: reqLen}
			seq := make([]int, reqLen)
			for j := range seq {
				seq[j] = src.IntRange(vocab.FirstWordID, cfg.VocabSize-1)
			}
			tokens[id] = seq
		}
		b, rest := batch.PackConcat(items, rows, rowLen)
		if len(rest) != 0 {
			return nil, nil, fmt.Errorf("ext-quantized: %d items unpacked at B=%d", len(rest), rows)
		}
		return b, tokens, nil
	}

	fig := &Figure{
		ID:     "ext-quantized",
		Title:  "Int8 per-channel quantized GEMM vs float32 wide kernel (real engine, encode-dominated)",
		XLabel: "batch-rows",
		YLabel: "seconds",
	}
	for _, B := range []int{16, 48} {
		b, tokens, err := makeBatch(B)
		if err != nil {
			return nil, err
		}
		timeRun := func(e *engine.Engine) (float64, error) {
			start := time.Now()
			if _, err := e.Run(b, tokens); err != nil {
				return 0, err
			}
			return time.Since(start).Seconds(), nil
		}
		// Warm both paths: first quantized Prepare builds the int8 weights,
		// first runs populate the workspace pools.
		if _, err := timeRun(engF); err != nil {
			return nil, err
		}
		if _, err := timeRun(engQ); err != nil {
			return nil, err
		}
		type pair struct{ f, q float64 }
		pairs := make([]pair, 0, reps)
		for r := 0; r < reps; r++ {
			tf, err := timeRun(engF)
			if err != nil {
				return nil, err
			}
			tq, err := timeRun(engQ)
			if err != nil {
				return nil, err
			}
			pairs = append(pairs, pair{tf, tq})
		}
		sort.Slice(pairs, func(i, j int) bool {
			return pairs[i].f/pairs[i].q < pairs[j].f/pairs[j].q
		})
		med := pairs[len(pairs)/2]
		fig.X = append(fig.X, float64(B))
		fig.AddPoint("float32", med.f)
		fig.AddPoint("int8", med.q)
		fig.AddPoint("speedup", med.f/med.q)
	}

	// Accuracy: encoder-output error on one request, token agreement on a
	// greedy-decoding batch. Both engines saw identical inputs above, so any
	// divergence here is quantization alone.
	maxErr, refScale := encoderError(mFloat, mQuant, cfg, seed)
	agree, total, err := tokenAgreement(mFloat, mQuant, cfg, seed)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("max abs encoder-output error %.2e (reference absmax %.2e)", maxErr, refScale),
		fmt.Sprintf("greedy-decode token agreement %d/%d (%.1f%%)", agree, total, 100*float64(agree)/float64(total)),
		"paired median-of-3 wall-clock; identical weights and batch content on both paths")
	return fig, fig.Validate()
}

// encoderError encodes one request on the float32 and quantized models and
// returns the max absolute output difference plus the float32 reference's
// absmax for scale.
func encoderError(mFloat, mQuant *model.Model, cfg model.Config, seed uint64) (maxErr, refScale float64) {
	src := rng.New(seed + 1)
	seq := make([]int, 32)
	for i := range seq {
		seq[i] = src.IntRange(vocab.FirstWordID, cfg.VocabSize-1)
	}
	mQuant.EnsureQuantized()
	ef := mFloat.EncodeSingle(seq)
	eq := mQuant.EncodeSingle(seq)
	for i := range ef.Data {
		if d := math.Abs(float64(ef.Data[i] - eq.Data[i])); d > maxErr {
			maxErr = d
		}
		if a := math.Abs(float64(ef.Data[i])); a > refScale {
			refScale = a
		}
	}
	return maxErr, refScale
}

// tokenAgreement greedily decodes the same batch through both models and
// counts position-wise token matches (length mismatches count every position
// of the longer output as a disagreement).
func tokenAgreement(mFloat, mQuant *model.Model, cfg model.Config, seed uint64) (agree, total int, err error) {
	const (
		rows   = 4
		rowLen = 60
		reqLen = 20
		maxNew = 12
	)
	engF := engine.New(mFloat, maxNew)
	engF.UseCache = true
	engQ := engine.New(mQuant, maxNew)
	engQ.UseCache = true
	engQ.Quantize = true
	src := rng.New(seed + 2)
	n := rows * (rowLen / reqLen)
	items := make([]batch.Item, n)
	tokens := make(map[int64][]int, n)
	for i := 0; i < n; i++ {
		id := int64(i + 1)
		items[i] = batch.Item{ID: id, Len: reqLen}
		seq := make([]int, reqLen)
		for j := range seq {
			seq[j] = src.IntRange(vocab.FirstWordID, cfg.VocabSize-1)
		}
		tokens[id] = seq
	}
	b, rest := batch.PackConcat(items, rows, rowLen)
	if len(rest) != 0 {
		return 0, 0, fmt.Errorf("ext-quantized: %d items unpacked in agreement batch", len(rest))
	}
	outs := func(e *engine.Engine) (map[int64][]int, error) {
		rep, err := e.Run(b, tokens)
		if err != nil {
			return nil, err
		}
		m := make(map[int64][]int, len(rep.Results))
		for _, r := range rep.Results {
			m[r.ID] = r.Output
		}
		return m, nil
	}
	fo, err := outs(engF)
	if err != nil {
		return 0, 0, err
	}
	qo, err := outs(engQ)
	if err != nil {
		return 0, 0, err
	}
	for id, want := range fo {
		got := qo[id]
		n := len(want)
		if len(got) > n {
			n = len(got)
		}
		total += n
		for i := 0; i < n && i < len(want) && i < len(got); i++ {
			if want[i] == got[i] {
				agree++
			}
		}
	}
	if total == 0 {
		// Degenerate decode (every segment emitted EOS immediately): agreeing
		// on emptiness is still agreement.
		return 1, 1, nil
	}
	return agree, total, nil
}
