package experiments

import (
	"fmt"

	"tcb/internal/batch"
	"tcb/internal/sim"
)

// ExtCluster measures multi-replica scale-out with the failure machinery
// engaged: DAS-TCB replicas behind least-loaded routing, replayed over a
// trace that saturates a single replica (~430 resp/s capacity at the §6.1
// configuration). The N=3 point additionally scripts a mid-run replica
// kill with later recovery, so the reported throughput includes the cost
// of failing the victim's queue over to the survivors — and the run
// errors out if any request is lost, making the zero-lost invariant part
// of the figure itself. The speedup series (vs N=1) at N=2 is the CI
// gate: a cluster must never serve less than one replica.
func ExtCluster(opt Options) (*Figure, error) {
	replicas := []float64{1, 2, 3}
	fig := &Figure{
		ID:     "ext-cluster",
		Title:  "Multi-replica cluster: saturated DAS-TCB throughput (N=3 with mid-run kill+recover)",
		XLabel: "replicas",
		YLabel: "resp/s",
		X:      replicas,
	}
	var base float64
	for _, n := range replicas {
		var tput float64
		for _, seed := range opt.seedList() {
			o := opt
			o.Seed = seed
			// Saturate a single replica so extra replicas have headroom
			// to convert into throughput.
			trace, err := paperTrace(1500, 20, o)
			if err != nil {
				return nil, err
			}
			cs := sim.ClusterSystem{
				Template: sim.System{
					Name:      fmt.Sprintf("DAS-TCB x%d", int(n)),
					Scheduler: expDAS(),
					Scheme:    batch.Concat,
					B:         PaperBatchRows,
					L:         PaperRowLen,
					Cost:      V100Params(),
				},
				Replicas: int(n),
				Route:    sim.RouteLeastLoaded,
			}
			if int(n) == 3 {
				// Kill one replica a quarter of the way in, bring it back
				// at the three-quarter mark.
				cs.Faults = []sim.Fault{{
					Replica: 2, At: 0.25 * o.Duration, RecoverAt: 0.75 * o.Duration,
				}}
			}
			m, err := sim.RunCluster(cs, trace)
			if err != nil {
				return nil, err
			}
			if m.Lost != 0 {
				return nil, fmt.Errorf("ext-cluster: N=%d seed %d lost %d requests", int(n), seed, m.Lost)
			}
			tput += m.Throughput()
		}
		tput /= float64(len(opt.seedList()))
		if n == 1 {
			base = tput
		}
		fig.AddPoint("throughput", tput)
		if base > 0 {
			fig.AddPoint("speedup", tput/base)
		} else {
			fig.AddPoint("speedup", 0)
		}
	}
	return fig, fig.Validate()
}
