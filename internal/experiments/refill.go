package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/model"
	"tcb/internal/rng"
	"tcb/internal/sched"
	"tcb/internal/serve"
	"tcb/internal/stats"
	"tcb/internal/vocab"
)

// ExtRefill is the continuous-batching A/B: the same Poisson-arrival
// workload with heavy-tailed lengths is served by a no-refill server and a
// refill-enabled one (serve.Config.Refill) over the same model, and the
// figure reports throughput, P99 latency and the speedup. A third pipelined
// + refill run confirms the two features compose; every run cross-checks
// per-request outputs against the no-refill baseline — concatenation
// isolation means refill must never change an answer, only when it arrives.
//
// Why refill wins here: OutputCap ties each request's generation to its
// input length, and the length mixture is heavy-tailed (mostly short, some
// long), so in a no-refill batch the short requests finish early and their
// slots idle until the longest member retires. Refill feeds the backlog
// into those slots between decode steps, so the same token work completes
// in fewer total steps — a utilization win that holds even on one core.
//
// The server runs FCFS, the regime continuous batching targets: arrival
// order mixes lengths inside every batch, so batch-at-a-time pays the
// convoy tax on each launch. (DAS's utility ordering groups shorts together
// and de-convoys batches before refill ever gets a chance — that scheduling
// effect has its own experiments; this one isolates the refill mechanism.
// Refill admission itself still pulls from the queue utility-ordered.)
func ExtRefill(opt Options) (*Figure, error) {
	cfg := model.Config{
		VocabSize: 64, DModel: 32, NumHeads: 4, DFF: 64,
		EncLayers: 1, DecLayers: 1, MaxLen: 256, Eps: 1e-5,
	}
	const (
		rowLen   = 64
		shortLen = 4
		longLen  = 48
		maxNew   = longLen
		// Poisson arrivals well above the service rate: the queue stays
		// saturated and the measurement is steady-state throughput, the
		// regime continuous batching targets.
		arrivalRate = 5000.0 // req/s
	)
	rounds := int(opt.Duration)
	if rounds < 1 {
		rounds = 1
	}
	m := model.New(cfg, opt.Seed+300)

	fig := &Figure{
		ID:     "ext-refill",
		Title:  "Continuous batching: mid-flight slot refill vs batch-at-a-time (real engine)",
		XLabel: "batch-rows",
		YLabel: "req/s",
	}
	for _, B := range []int{4, 6} {
		// Per-mode runs must be long enough (hundreds of ms) that scheduling
		// noise averages out within a run instead of swallowing it whole.
		n := B * 256 * rounds
		// The first portion is queued before Start so the opening launch
		// forms at full B×L size — a refill-enabled launch is a persistent
		// execution context whose capacity is fixed when it launches, so an
		// arrival-starved opening batch would cap the whole run.
		backlog := n / 2
		src := rng.New(opt.Seed + 300)
		reqs := make([][]int, n)
		gaps := make([]time.Duration, n)
		for i := range reqs {
			// Heavy-tailed lengths: mostly short, a long tail that pins
			// whole batches open without refill.
			length := shortLen
			if src.Float64() < 0.15 {
				length = longLen
			}
			seq := make([]int, length)
			for j := range seq {
				seq[j] = src.IntRange(vocab.FirstWordID, cfg.VocabSize-1)
			}
			reqs[i] = seq
			gaps[i] = time.Duration(src.Exp(arrivalRate) * float64(time.Second))
		}

		runMode := func(refill, pipeline bool) (tput, p99ms float64, outs [][]int, st serve.Stats, err error) {
			eng := engine.New(m, maxNew)
			eng.UseCache = true
			eng.Quantize = opt.Quantize
			eng.OutputCap = func(inputLen int) int { return inputLen }
			s, err := serve.New(serve.Config{
				Engine: eng, Scheduler: sched.FCFS{}, Scheme: batch.Concat,
				B: B, L: rowLen, Poll: 200 * time.Microsecond,
				QueueCap: n + 1, Refill: refill, Pipeline: pipeline,
			})
			if err != nil {
				return 0, 0, nil, st, err
			}
			chans := make([]<-chan serve.Response, n)
			// Saturating backlog queued up front, identical across modes.
			for i := 0; i < backlog; i++ {
				ch, err := s.Submit(reqs[i], time.Hour)
				if err != nil {
					return 0, 0, nil, st, fmt.Errorf("submit %d: %w", i, err)
				}
				chans[i] = ch
			}
			start := time.Now()
			s.Start()
			// Feeder: the rest arrive as a Poisson stream from the
			// pregenerated gap sequence, identical across modes.
			var feedErr error
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := backlog; i < n; i++ {
					time.Sleep(gaps[i])
					ch, err := s.Submit(reqs[i], time.Hour)
					if err != nil {
						feedErr = fmt.Errorf("submit %d: %w", i, err)
						return
					}
					chans[i] = ch
				}
			}()
			wg.Wait()
			if feedErr != nil {
				s.Stop()
				return 0, 0, nil, st, feedErr
			}
			s.Drain()
			wall := time.Since(start).Seconds()
			outs = make([][]int, n)
			var lat stats.Sample
			for i, ch := range chans {
				resp := <-ch
				if resp.Err != nil {
					return 0, 0, nil, st, fmt.Errorf("request %d: %w", i, resp.Err)
				}
				outs[i] = resp.Output
				lat.Add(resp.Served.Sub(resp.Queued).Seconds())
			}
			st = s.Stats()
			return float64(n) / wall, lat.Percentile(99) * 1e3, outs, st, nil
		}

		if opt.DisableRefill {
			baseTput, baseP99, _, _, err := runMode(false, false)
			if err != nil {
				return nil, fmt.Errorf("ext-refill: no-refill B=%d: %w", B, err)
			}
			fig.X = append(fig.X, float64(B))
			fig.AddPoint("no-refill", baseTput)
			fig.AddPoint("p99-no-refill-ms", baseP99)
			fig.AddPoint("refill", baseTput)
			fig.AddPoint("p99-refill-ms", baseP99)
			fig.AddPoint("speedup", 1)
			continue
		}

		// Outputs are deterministic per mode, but wall time on a shared core
		// is not, and interference arrives in bursts longer than one run. So
		// measure in back-to-back (no-refill, refill) pairs — a burst that
		// covers a whole pair slows both sides and cancels out of the pair's
		// ratio — and report the pair with the median ratio of three.
		type pair struct {
			baseTput, baseP99, refTput, refP99 float64
			baseOuts, refOuts                  [][]int
			st                                 serve.Stats
		}
		pairs := make([]pair, 3)
		for k := range pairs {
			var err error
			pr := &pairs[k]
			pr.baseTput, pr.baseP99, pr.baseOuts, _, err = runMode(false, false)
			if err != nil {
				return nil, fmt.Errorf("ext-refill: no-refill B=%d: %w", B, err)
			}
			pr.refTput, pr.refP99, pr.refOuts, pr.st, err = runMode(true, false)
			if err != nil {
				return nil, fmt.Errorf("ext-refill: refill B=%d: %w", B, err)
			}
			if err := sameOutputs(pr.baseOuts, pr.refOuts); err != nil {
				return nil, fmt.Errorf("ext-refill: refill B=%d: %w", B, err)
			}
		}
		sort.Slice(pairs, func(i, j int) bool {
			return pairs[i].refTput/pairs[i].baseTput < pairs[j].refTput/pairs[j].baseTput
		})
		med := pairs[1]
		baseTput, baseP99, baseOuts := med.baseTput, med.baseP99, med.baseOuts
		refTput, refP99, st := med.refTput, med.refP99, med.st
		fig.X = append(fig.X, float64(B))
		fig.AddPoint("no-refill", baseTput)
		fig.AddPoint("p99-no-refill-ms", baseP99)
		// Refill composes with the three-stage pipeline: same answers again.
		_, _, pipeOuts, _, err := runMode(true, true)
		if err != nil {
			return nil, fmt.Errorf("ext-refill: refill+pipeline B=%d: %w", B, err)
		}
		if err := sameOutputs(baseOuts, pipeOuts); err != nil {
			return nil, fmt.Errorf("ext-refill: refill+pipeline B=%d: %w", B, err)
		}
		fig.AddPoint("refill", refTput)
		fig.AddPoint("p99-refill-ms", refP99)
		fig.AddPoint("speedup", refTput/baseTput)
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"B=%d refill: %d admitted mid-flight, %d retired early, occupancy %.0f%%, slot-idle steps %d",
			B, st.RefillsAdmitted, st.SegmentsRetiredEarly, st.BatchOccupancyPct, st.SlotIdleSteps))
	}
	if opt.DisableRefill {
		fig.Notes = append(fig.Notes, "refill disabled (-refill=false); refill series mirrors no-refill")
	}
	fig.Notes = append(fig.Notes,
		"Poisson arrivals, heavy-tailed lengths (85% short / 15% long), OutputCap = input length;",
		"per-request outputs verified identical across no-refill, refill, and refill+pipeline")
	return fig, fig.Validate()
}

// sameOutputs checks two runs' per-request outputs for exact token equality.
func sameOutputs(a, b [][]int) error {
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return fmt.Errorf("request %d outputs diverge (%d vs %d tokens)", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return fmt.Errorf("request %d token %d diverges", i, j)
			}
		}
	}
	return nil
}
