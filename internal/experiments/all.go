package experiments

import (
	"fmt"
	"io"
)

// Runner produces one figure.
type Runner struct {
	ID  string
	Run func() (*Figure, error)
}

// All returns every paper figure and ablation runner at the given options.
// The slotted-speedup figures (13–14) run the real engine and take the
// longest; callers that only need the simulated sweeps can filter by ID.
func All(opt Options) []Runner {
	return []Runner{
		{"fig09", func() (*Figure, error) { return Fig09(opt) }},
		{"fig10", func() (*Figure, error) { return Fig10(opt) }},
		{"fig11", func() (*Figure, error) { return Fig11(opt) }},
		{"fig12", func() (*Figure, error) { return Fig12(opt) }},
		{"fig13", func() (*Figure, error) { return Fig13(opt) }},
		{"fig14", func() (*Figure, error) { return Fig14(opt) }},
		{"fig15a", func() (*Figure, error) { return Fig15a(opt) }},
		{"fig15b", func() (*Figure, error) { return Fig15b(opt) }},
		{"fig15c", func() (*Figure, error) { return Fig15c(opt) }},
		{"fig16", func() (*Figure, error) { return Fig16(opt) }},
		{"ext-overlap", func() (*Figure, error) { return ExtOverlap(opt) }},
		{"ext-bimodal", func() (*Figure, error) { return ExtBimodal(opt) }},
		{"ext-efficiency", func() (*Figure, error) { return ExtEfficiency(opt) }},
		{"ext-scaling", func() (*Figure, error) { return ExtScaling(opt) }},
		{"ext-latency", func() (*Figure, error) { return ExtLatency(opt) }},
		{"ext-weighted", func() (*Figure, error) { return ExtWeighted(opt) }},
		{"ablation-eta", func() (*Figure, error) { return AblationEta(opt) }},
		{"ablation-slot-policy", func() (*Figure, error) { return AblationSlotPolicy(opt) }},
		{"ablation-early-cleaning", func() (*Figure, error) { return AblationEarlyCleaning(opt) }},
		{"ext-fused-decode", func() (*Figure, error) { return ExtFusedDecode(opt) }},
		{"ext-pipeline", func() (*Figure, error) { return ExtPipeline(opt) }},
		{"ext-refill", func() (*Figure, error) { return ExtRefill(opt) }},
		{"ext-prefix", func() (*Figure, error) { return ExtPrefix(opt) }},
		{"ext-cluster", func() (*Figure, error) { return ExtCluster(opt) }},
		{"ext-quantized", func() (*Figure, error) { return ExtQuantized(opt) }},
		{"ext-fairness", func() (*Figure, error) { return ExtFairness(opt) }},
		{"ablation-packing", func() (*Figure, error) { return AblationPacking() }},
	}
}

// RunAndRender executes the named runners (all when ids is empty) and
// renders each figure to w, stopping at the first error.
func RunAndRender(w io.Writer, opt Options, ids ...string) error {
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	matched := 0
	for _, r := range All(opt) {
		if len(ids) > 0 && !want[r.ID] {
			continue
		}
		matched++
		fig, err := r.Run()
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", r.ID, err)
		}
		if err := fig.Render(w); err != nil {
			return fmt.Errorf("experiments: render %s: %w", r.ID, err)
		}
	}
	if len(ids) > 0 && matched != len(want) {
		return fmt.Errorf("experiments: unknown experiment id in %v", ids)
	}
	return nil
}
