package experiments

import (
	"fmt"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/model"
	"tcb/internal/rng"
	"tcb/internal/vocab"
)

// ExtFusedDecode is this repository's extension experiment for the fused
// batch-wide decoder: for growing batch sizes it decodes the same concat
// batch through the per-row cached decoder (one small-GEMM stream per row)
// and through the fused decoder (one GEMM per layer per step across all
// rows), reporting both wall-clock times and the speedup. Outputs are
// token-identical by construction — verified on every run — so the figure
// isolates the GEMM-shape effect TCB's batching argument rests on.
func ExtFusedDecode(opt Options) (*Figure, error) {
	// Decode-heavy setting: short prefill, long generation, and a model
	// large enough (128-wide, 64 KiB weight matrices) that streaming each
	// layer's weights once per step across all rows — instead of once per
	// row — is the dominant cost difference.
	cfg := model.Config{
		VocabSize: 64, DModel: 128, NumHeads: 4, DFF: 256,
		EncLayers: 1, DecLayers: 2, MaxLen: 256, Eps: 1e-5,
	}
	const (
		rowLen = 40
		reqLen = 10
		maxNew = 24
		reps   = 3
	)
	m := model.New(cfg, opt.Seed+100)
	fused := engine.New(m, maxNew)
	fused.UseCache = true
	fused.Quantize = opt.Quantize
	perRow := engine.New(m, maxNew)
	perRow.UseCache = true
	perRow.FuseDecode = false
	perRow.Quantize = opt.Quantize

	src := rng.New(opt.Seed + 100)
	fig := &Figure{
		ID:     "ext-fused-decode",
		Title:  "Fused batch-wide decode vs per-row cached decode (real engine)",
		XLabel: "batch-rows",
		YLabel: "seconds",
	}
	for _, B := range []int{1, 2, 4, 8} {
		n := B * (rowLen / reqLen)
		items := make([]batch.Item, n)
		tokens := make(map[int64][]int, n)
		for i := 0; i < n; i++ {
			id := int64(i + 1)
			items[i] = batch.Item{ID: id, Len: reqLen}
			seq := make([]int, reqLen)
			for j := range seq {
				seq[j] = src.IntRange(vocab.FirstWordID, cfg.VocabSize-1)
			}
			tokens[id] = seq
		}
		b, rest := batch.PackConcat(items, B, rowLen)
		if len(rest) != 0 {
			return nil, fmt.Errorf("ext-fused-decode: %d items unpacked at B=%d", len(rest), B)
		}
		timeRun := func(e *engine.Engine) (float64, map[int64][]int, error) {
			best := 0.0
			var outs map[int64][]int
			for r := 0; r < reps; r++ {
				start := time.Now()
				rep, err := e.Run(b, tokens)
				if err != nil {
					return 0, nil, err
				}
				el := time.Since(start).Seconds()
				if r == 0 || el < best {
					best = el
				}
				outs = make(map[int64][]int, len(rep.Results))
				for _, res := range rep.Results {
					outs[res.ID] = res.Output
				}
			}
			return best, outs, nil
		}
		pt, po, err := timeRun(perRow)
		if err != nil {
			return nil, err
		}
		fig.X = append(fig.X, float64(B))
		fig.AddPoint("per-row", pt)
		if opt.DisableFusedDecode {
			fig.AddPoint("fused", pt)
			fig.AddPoint("speedup", 1)
			continue
		}
		ft, fo, err := timeRun(fused)
		if err != nil {
			return nil, err
		}
		for id, want := range po {
			got := fo[id]
			if len(got) != len(want) {
				return nil, fmt.Errorf("ext-fused-decode: request %d fused/per-row outputs diverge", id)
			}
			for i := range want {
				if got[i] != want[i] {
					return nil, fmt.Errorf("ext-fused-decode: request %d token %d diverges", id, i)
				}
			}
		}
		fig.AddPoint("fused", ft)
		fig.AddPoint("speedup", pt/ft)
	}
	if opt.DisableFusedDecode {
		fig.Notes = append(fig.Notes, "fused decode disabled (-fusedecode=false); fused series mirrors per-row")
	}
	fig.Notes = append(fig.Notes,
		"same batch content and token-identical outputs on both paths; timing includes encode")
	return fig, fig.Validate()
}
