package experiments

import (
	"fmt"

	"tcb/internal/batch"
	"tcb/internal/fair"
	"tcb/internal/sim"
	"tcb/internal/workload"
)

// ext-fairness workload shape: three well-behaved tenants at a base rate
// whose combined demand fits under one replica's capacity (~430 resp/s at
// the §6.1 configuration), plus one flooder at 10× the base rate that
// pushes total demand far past saturation.
const (
	extFairGoodTenants = 3
	extFairBaseRate    = 100
	extFairFloodFactor = 10
)

// ExtFairness measures multi-tenant isolation under an adversarial flood.
// Three scenarios over the same DAS-TCB replica:
//
//	0 — no flooder, WFQ on: the no-flood baseline the gate normalizes by;
//	1 — flooder at 10×, WFQ off: the tenant-blind scheduler splits capacity
//	    by backlog, so the flooder takes ~10/13 of it and starves the
//	    well-behaved tenants;
//	2 — flooder at 10×, WFQ on: the fair window caps the flooder at its
//	    1/4 share and the good tenants (each under their share) keep
//	    nearly their full baseline goodput.
//
// Series: good-resp/s (combined goodput of the well-behaved tenants),
// ratio (good-resp/s over the baseline scenario), and jain-good (Jain's
// fairness index over the well-behaved tenants' scheduled counts). The CI
// gate (tcb-bench -fairness-gate) requires both ratio and jain-good at
// scenario 2 to clear the gate value.
func ExtFairness(opt Options) (*Figure, error) {
	fig := &Figure{
		ID:     "ext-fairness",
		Title:  "Multi-tenant fairness: 3 tenants + 10x flooder, WFQ window on/off",
		XLabel: "scenario",
		YLabel: "resp/s",
		X:      []float64{0, 1, 2},
		Notes: []string{
			"scenario 0: no flooder, fair on (baseline); 1: flooder, fair off; 2: flooder, fair on",
			"ratio normalizes the well-behaved tenants' goodput by scenario 0",
			"gate: scenario 2 must hold ratio and jain-good at or above -fairness-gate",
		},
	}
	scenarios := []struct {
		flood  float64
		fairOn bool
	}{
		{0, true},
		{extFairFloodFactor, false},
		{extFairFloodFactor, true},
	}
	var base float64
	for si, sc := range scenarios {
		var goodSched, jain float64
		for _, seed := range opt.seedList() {
			streams := workload.AdversarialMix(extFairBaseRate, opt.Duration, seed,
				extFairGoodTenants, sc.flood)
			for i := range streams {
				streams[i].Spec.DeadlineMin = expDeadlineMin
				streams[i].Spec.DeadlineMax = expDeadlineMax
			}
			trace, err := workload.GenerateMix(streams)
			if err != nil {
				return nil, err
			}
			m, err := sim.Run(sim.System{
				Name:      fmt.Sprintf("DAS-TCB scenario %d", si),
				Scheduler: expDAS(),
				Scheme:    batch.Concat,
				B:         PaperBatchRows,
				L:         PaperRowLen,
				Cost:      V100Params(),
				Fair:      sc.fairOn,
			}, trace)
			if err != nil {
				return nil, err
			}
			good := make(map[string]int, extFairGoodTenants)
			for name, tm := range m.Tenants {
				if name == "flooder" {
					continue
				}
				good[name] = tm.Scheduled
				goodSched += float64(tm.Scheduled)
			}
			jain += fair.JainIndexMap(good)
		}
		n := float64(len(opt.seedList()))
		goodSched /= n
		jain /= n
		// The good streams are seed-identical across scenarios, so the
		// scheduled-count ratio compares the same requests with and without
		// the flood (a goodput-rate ratio would be skewed by the flood
		// run's longer drain tail).
		if sc.flood == 0 {
			base = goodSched
		}
		fig.AddPoint("good-resp/s", goodSched/opt.Duration)
		if base > 0 {
			fig.AddPoint("ratio", goodSched/base)
		} else {
			fig.AddPoint("ratio", 0)
		}
		fig.AddPoint("jain-good", jain)
	}
	return fig, fig.Validate()
}
