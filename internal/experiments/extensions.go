package experiments

import (
	"fmt"

	"tcb/internal/batch"
	"tcb/internal/sched"
	"tcb/internal/sim"
	"tcb/internal/workload"
)

// ExtOverlap measures §4.2.2 end to end in the simulator: the engine
// busy-time per scheduled request under slotted ConcatBatching with and
// without early-cleaning overlap. Per-request service time is what the
// mechanism directly reduces (end-to-end throughput moves by the same
// ~1% but is noisier across discrete scheduling rounds).
func ExtOverlap(opt Options) (*Figure, error) {
	rates := []float64{250, 450, 1000, 1500}
	fig := &Figure{
		ID:     "ext-overlap",
		Title:  "Early-cleaning overlap: engine busy-ms per request, with/without §4.2.2",
		XLabel: "rate(req/s)",
		YLabel: "busy-ms/request",
		X:      rates,
	}
	for _, rate := range rates {
		trace, err := paperTrace(rate, 20, opt)
		if err != nil {
			return nil, err
		}
		for _, early := range []bool{false, true} {
			name := "slotted"
			if early {
				name = "slotted+overlap"
			}
			m, err := sim.Run(sim.System{
				Name:          name,
				Scheduler:     &sched.SlottedDAS{DAS: *expDAS()},
				Scheme:        batch.SlottedConcat,
				B:             PaperBatchRows,
				L:             PaperRowLen,
				Cost:          V100Params(),
				EarlyCleaning: early,
			}, trace)
			if err != nil {
				return nil, fmt.Errorf("rate %g early=%v: %w", rate, early, err)
			}
			if m.Scheduled == 0 {
				return nil, fmt.Errorf("rate %g early=%v: nothing scheduled", rate, early)
			}
			fig.AddPoint(name, 1000*m.BusySeconds/float64(m.Scheduled))
		}
	}
	return fig, fig.Validate()
}

// ExtBimodal stresses the paper's robustness claim ("ConcatBatching …
// is able to handle requests with arbitrary length distributions", §1)
// with a bimodal chat-vs-paragraph mix under FCFS: TurboBatching must
// either split launches per mode or pad across modes, while ConcatBatching
// is insensitive.
func ExtBimodal(opt Options) (*Figure, error) {
	rates := []float64{250, 1000, 1500}
	dist := workload.BimodalLengths{
		Low:          workload.NormalLengths{Mean: 10, Variance: 9, Min: 3, Max: 100},
		High:         workload.NormalLengths{Mean: 75, Variance: 25, Min: 3, Max: 100},
		HighFraction: 0.3,
	}
	fig := &Figure{
		ID:     "ext-bimodal",
		Title:  "Serving throughput on a bimodal workload (FCFS), " + dist.Name(),
		XLabel: "rate(req/s)",
		YLabel: "resp/s",
		X:      rates,
	}
	for _, rate := range rates {
		spec := workload.PaperSpec(rate, opt.Duration, opt.Seed)
		spec.DeadlineMin = expDeadlineMin
		spec.DeadlineMax = expDeadlineMax
		trace, err := workload.GenerateWithDist(spec, dist)
		if err != nil {
			return nil, err
		}
		for _, sysDef := range []struct {
			label  string
			scheme batch.Scheme
		}{
			{"FCFS-TNB", batch.Naive},
			{"FCFS-TTB", batch.Turbo},
			{"FCFS-TCB", batch.Concat},
		} {
			m, err := sim.Run(sim.System{
				Name:      sysDef.label,
				Scheduler: sched.FCFS{},
				Scheme:    sysDef.scheme,
				B:         PaperBatchRows,
				L:         PaperRowLen,
				Cost:      V100Params(),
			}, trace)
			if err != nil {
				return nil, fmt.Errorf("%s at %g: %w", sysDef.label, rate, err)
			}
			fig.AddPoint(sysDef.label, m.Throughput())
		}
	}
	return fig, fig.Validate()
}

// ExtEfficiency certifies DAS against the fractional upper bound of the
// offline optimum (sched.FractionalUpperBound): the reported ratio is a
// lower bound on ALG/OPT, far above the ηq/(ηq+1) worst case of
// Theorem 5.1 on realistic traces.
func ExtEfficiency(opt Options) (*Figure, error) {
	rates := []float64{100, 250, 450, 700}
	fig := &Figure{
		ID:     "ext-efficiency",
		Title:  "DAS efficiency: ALG / fractional upper bound",
		XLabel: "rate(req/s)",
		YLabel: "ratio",
		X:      rates,
	}
	for _, rate := range rates {
		trace, err := paperTrace(rate, 20, opt)
		if err != nil {
			return nil, err
		}
		// Offer the same engine-slot cadence the simulator would produce:
		// one slot per calibrated TCB batch time.
		slotSecs := 0.7 // ≈ V100Params batch time at B=64, L=100
		var slots []float64
		for t := 0.0; t < opt.Duration+expDeadlineMax; t += slotSecs {
			slots = append(slots, t)
		}
		ratio := sched.EfficiencyRatio(expDAS(), trace, slots, PaperBatchRows, PaperRowLen)
		fig.AddPoint("DAS/UB", ratio)
	}
	fig.Notes = append(fig.Notes,
		"ratio lower-bounds ALG/OPT; Theorem 5.1 guarantees only ηq/(ηq+1)")
	return fig, fig.Validate()
}

// ExtScaling measures multi-device scale-out: saturated DAS-TCB throughput
// vs accelerator count. The paper evaluates a single V100; this extension
// shows the scheduling/batching pipeline keeps near-linear scaling when
// batches dispatch to the earliest-free device.
func ExtScaling(opt Options) (*Figure, error) {
	devices := []float64{1, 2, 4, 8}
	fig := &Figure{
		ID:     "ext-scaling",
		Title:  "Multi-device scale-out: saturated DAS-TCB throughput",
		XLabel: "devices",
		YLabel: "resp/s",
		X:      devices,
	}
	// Saturate even the 8-device configuration.
	trace, err := paperTrace(4000, 20, opt)
	if err != nil {
		return nil, err
	}
	for _, g := range devices {
		m, err := sim.Run(sim.System{
			Name:      fmt.Sprintf("DAS-TCB x%d", int(g)),
			Scheduler: expDAS(),
			Scheme:    batch.Concat,
			B:         PaperBatchRows,
			L:         PaperRowLen,
			Cost:      V100Params(),
			Devices:   int(g),
		}, trace)
		if err != nil {
			return nil, err
		}
		fig.AddPoint("throughput", m.Throughput())
	}
	return fig, fig.Validate()
}

// ExtLatency reports end-to-end latency percentiles (p50/p95) per batching
// scheme at a near-saturation arrival rate: the responsiveness counterpart
// to the throughput figures. Latency is completion minus arrival in
// simulated seconds, over scheduled requests.
func ExtLatency(opt Options) (*Figure, error) {
	const rate = 400
	fig := &Figure{
		ID:     "ext-latency",
		Title:  fmt.Sprintf("Latency percentiles at %d req/s (DAS scheduling)", rate),
		XLabel: "percentile",
		YLabel: "seconds",
		X:      []float64{50, 95},
	}
	trace, err := paperTrace(rate, 20, opt)
	if err != nil {
		return nil, err
	}
	for _, sysDef := range []struct {
		label  string
		scheme batch.Scheme
	}{
		{"DAS-TNB", batch.Naive},
		{"DAS-TTB", batch.Turbo},
		{"DAS-TCB", batch.Concat},
	} {
		m, err := sim.Run(sim.System{
			Name:      sysDef.label,
			Scheduler: expDAS(),
			Scheme:    sysDef.scheme,
			B:         PaperBatchRows,
			L:         PaperRowLen,
			Cost:      V100Params(),
		}, trace)
		if err != nil {
			return nil, err
		}
		if m.Latency.N() == 0 {
			return nil, fmt.Errorf("%s: no latency samples", sysDef.label)
		}
		fig.AddPoint(sysDef.label, m.Latency.Percentile(50))
		fig.AddPoint(sysDef.label, m.Latency.Percentile(95))
	}
	return fig, fig.Validate()
}

// ExtWeighted exercises the weighted-utility generalization (SLA tiers):
// 20% of requests are premium (Weight 5) and the figure reports the
// fraction of premium requests served by deadline under each scheduler at
// a saturating rate. DAS's utility-driven selection should protect the
// premium tier; FCFS and DEF are weight-blind.
func ExtWeighted(opt Options) (*Figure, error) {
	const rate = 800
	const premiumWeight = 5
	fig := &Figure{
		ID:     "ext-weighted",
		Title:  "SLA tiers: premium-served fraction at 800 req/s (20% premium, weight 5)",
		XLabel: "tier(0=std,1=premium)",
		YLabel: "served-fraction",
		X:      []float64{0, 1},
	}
	trace, err := paperTrace(rate, 20, opt)
	if err != nil {
		return nil, err
	}
	// Deterministically mark every 5th request premium.
	premium := make(map[int64]bool)
	for i, r := range trace {
		if i%5 == 0 {
			r.Weight = premiumWeight
			premium[r.ID] = true
		}
	}
	for _, mk := range []func() sched.Scheduler{
		func() sched.Scheduler { return expDAS() },
		func() sched.Scheduler { return sched.SJF{} },
		func() sched.Scheduler { return sched.FCFS{} },
	} {
		s := mk()
		served := make(map[int64]bool)
		// Use a recording scheduler wrapper to track chosen IDs? The sim
		// already reports aggregate counts only, so replay with a wrapper.
		wrapped := &recordingScheduler{inner: s, served: served}
		m, err := sim.Run(sim.System{
			Name:      s.Name(),
			Scheduler: wrapped,
			Scheme:    batch.Concat,
			B:         PaperBatchRows,
			L:         PaperRowLen,
			Cost:      V100Params(),
		}, trace)
		if err != nil {
			return nil, err
		}
		_ = m
		var stdTotal, stdServed, premTotal, premServed float64
		for _, r := range trace {
			if premium[r.ID] {
				premTotal++
				if served[r.ID] {
					premServed++
				}
			} else {
				stdTotal++
				if served[r.ID] {
					stdServed++
				}
			}
		}
		fig.AddPoint(s.Name(), stdServed/stdTotal)
		fig.AddPoint(s.Name(), premServed/premTotal)
	}
	return fig, fig.Validate()
}

// recordingScheduler wraps a scheduler and records which requests it
// scheduled (for per-tier accounting the aggregate metrics do not carry).
type recordingScheduler struct {
	inner  sched.Scheduler
	served map[int64]bool
}

func (r *recordingScheduler) Name() string { return r.inner.Name() }

func (r *recordingScheduler) Schedule(now float64, pending []*sched.Request, B, L int) sched.Decision {
	dec := r.inner.Schedule(now, pending, B, L)
	for _, req := range dec.Chosen() {
		r.served[req.ID] = true
	}
	return dec
}
