package experiments

import (
	"fmt"

	"tcb/internal/batch"
	"tcb/internal/sched"
	"tcb/internal/sim"
)

// rateSweepRates are the arrival rates of Figs. 9 and 10.
var rateSweepRates = []float64{40, 80, 120, 180, 200, 250, 350, 450, 1000, 1500}

// fcfsSweepRates are the arrival rates of Figs. 11 and 12.
var fcfsSweepRates = []float64{40, 60, 80, 100, 120, 140, 250, 1000, 1250, 1500}

// rateSweep runs the three systems (TNB, TTB, TCB) under the given
// scheduler factory across rates, collecting either utility or throughput.
func rateSweep(id, title, metric string, rates []float64, variance float64,
	newSched func() sched.Scheduler, opt Options) (*Figure, error) {
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "rate(req/s)",
		YLabel: metric,
		X:      rates,
	}
	schedName := newSched().Name()
	systems := []struct {
		label  string
		scheme batch.Scheme
	}{
		{schedName + "-TNB", batch.Naive},
		{schedName + "-TTB", batch.Turbo},
		{schedName + "-TCB", batch.Concat},
	}
	seeds := opt.seedList()
	for _, rate := range rates {
		for _, sysDef := range systems {
			var acc float64
			for _, seed := range seeds {
				seedOpt := opt
				seedOpt.Seed = seed
				trace, err := paperTrace(rate, variance, seedOpt)
				if err != nil {
					return nil, err
				}
				m, err := sim.Run(sim.System{
					Name:      sysDef.label,
					Scheduler: newSched(),
					Scheme:    sysDef.scheme,
					B:         PaperBatchRows,
					L:         PaperRowLen,
					Cost:      V100Params(),
				}, trace)
				if err != nil {
					return nil, fmt.Errorf("%s at rate %g: %w", sysDef.label, rate, err)
				}
				switch metric {
				case "utility":
					acc += m.Utility
				case "throughput":
					acc += m.Throughput()
				default:
					return nil, fmt.Errorf("unknown metric %q", metric)
				}
			}
			fig.AddPoint(sysDef.label, acc/float64(len(seeds)))
		}
	}
	return fig, fig.Validate()
}

// Fig09 reproduces "Utility under different request rates" (DAS scheduling,
// input length 3–100, average 20, variance 20, batch size 64).
func Fig09(opt Options) (*Figure, error) {
	return rateSweep("fig09", "Utility under different request rates (DAS)",
		"utility", rateSweepRates, 20,
		func() sched.Scheduler { return expDAS() }, opt)
}

// Fig10 reproduces "Serving throughput under different request rates"
// (same setting as Fig. 9).
func Fig10(opt Options) (*Figure, error) {
	return rateSweep("fig10", "Serving throughput under different request rates (DAS)",
		"throughput", rateSweepRates, 20,
		func() sched.Scheduler { return expDAS() }, opt)
}

// Fig11 reproduces "Serving throughput under different request rates when
// using FCFS" with length variance 20.
func Fig11(opt Options) (*Figure, error) {
	return rateSweep("fig11", "Serving throughput, FCFS scheduling, variance 20",
		"throughput", fcfsSweepRates, 20,
		func() sched.Scheduler { return sched.FCFS{} }, opt)
}

// Fig12 reproduces Fig. 11 with length variance 100, where TurboBatching's
// similar-length assumption degrades.
func Fig12(opt Options) (*Figure, error) {
	return rateSweep("fig12", "Serving throughput, FCFS scheduling, variance 100",
		"throughput", fcfsSweepRates, 100,
		func() sched.Scheduler { return sched.FCFS{} }, opt)
}
