package experiments

import (
	"fmt"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/model"
	"tcb/internal/rng"
	"tcb/internal/vocab"
)

// SlottedOptions configures the slotted-speedup measurement (Figs. 13–14).
// Unlike the serving sweeps these run the *real* Go engine and report
// wall-clock speedups, so the shape does not depend on the cost model.
type SlottedOptions struct {
	BatchRows  int   // paper: 10 (Fig. 13) or 32 (Fig. 14)
	RowLen     int   // paper: 400
	ReqLen     int   // request length; RowLen/ReqLen requests fill a row
	SlotCounts []int // paper: {1, 2, 4, 5, 7, 10, 20}; 1 = pure ConcatBatching
	Reps       int   // timing repetitions; the minimum is kept
	Model      model.Config
	Seed       uint64
	Quantize   bool // route projections through the int8 quantized GEMM
}

// DefaultSlottedOptions returns the paper's setting over the test-scale
// model (batch rows still configurable by the caller).
func DefaultSlottedOptions(batchRows int) SlottedOptions {
	cfg := model.Config{
		VocabSize: 64, DModel: 64, NumHeads: 4, DFF: 128,
		EncLayers: 2, DecLayers: 1, MaxLen: 512, Eps: 1e-5,
	}
	return SlottedOptions{
		BatchRows: batchRows,
		RowLen:    400,
		ReqLen:    20,
		// The paper sweeps {1, 2, 4, 5, 7, 10, 20} slots. To keep the
		// batch content bit-identical across slot counts, this harness
		// requires each slot to hold a whole number of requests, which
		// excludes 7 (400/7 ≈ 57 is not a multiple of 20); infeasible
		// counts are skipped with a note.
		SlotCounts: []int{1, 2, 4, 5, 7, 10, 20},
		Reps:       3,
		Model:      cfg,
		Seed:       7,
	}
}

// SlottedSpeedup measures average batch inference time under pure
// ConcatBatching and under slotted ConcatBatching at each slot count, and
// reports time(pure)/time(slotted) — Fig. 13/14's y-axis. The batch
// content (BatchRows rows, each fully packed with ReqLen-token requests)
// is identical across slot counts; only the attention partition changes.
func SlottedSpeedup(opt SlottedOptions) (*Figure, error) {
	if opt.RowLen%opt.ReqLen != 0 {
		return nil, fmt.Errorf("experiments: RowLen %d not a multiple of ReqLen %d", opt.RowLen, opt.ReqLen)
	}
	if err := opt.Model.Validate(); err != nil {
		return nil, err
	}
	eng := engine.New(model.New(opt.Model, opt.Seed), 0) // encode-only timing
	eng.Quantize = opt.Quantize
	src := rng.New(opt.Seed)

	perRow := opt.RowLen / opt.ReqLen
	n := opt.BatchRows * perRow
	items := make([]batch.Item, n)
	tokens := make(map[int64][]int, n)
	for i := 0; i < n; i++ {
		id := int64(i + 1)
		items[i] = batch.Item{ID: id, Len: opt.ReqLen}
		seq := make([]int, opt.ReqLen)
		for j := range seq {
			seq[j] = src.IntRange(vocab.FirstWordID, opt.Model.VocabSize-1)
		}
		tokens[id] = seq
	}

	timeBatch := func(b *batch.Batch) (float64, error) {
		best := 0.0
		for r := 0; r < opt.Reps; r++ {
			start := time.Now()
			if _, err := eng.Run(b, tokens); err != nil {
				return 0, err
			}
			el := time.Since(start).Seconds()
			if r == 0 || el < best {
				best = el
			}
		}
		return best, nil
	}

	pure, rest := batch.PackConcat(items, opt.BatchRows, opt.RowLen)
	if len(rest) != 0 {
		return nil, fmt.Errorf("experiments: pure pack left %d items", len(rest))
	}
	pureTime, err := timeBatch(pure)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     fmt.Sprintf("fig-slotted-b%d", opt.BatchRows),
		Title:  fmt.Sprintf("Speedup of slotted ConcatBatching (batch size %d, length %d)", opt.BatchRows, opt.RowLen),
		XLabel: "slots",
		YLabel: "speedup",
	}
	for _, k := range opt.SlotCounts {
		if k > 1 {
			if opt.RowLen%k != 0 || (opt.RowLen/k)%opt.ReqLen != 0 {
				// This slot count cannot hold the identical content
				// (slots must contain whole requests); skip it.
				fig.Notes = append(fig.Notes,
					fmt.Sprintf("%d slots skipped: %d-token slots cannot hold whole %d-token requests",
						k, opt.RowLen/k, opt.ReqLen))
				continue
			}
		}
		fig.X = append(fig.X, float64(k))
		if k <= 1 {
			fig.AddPoint("speedup", 1) // pure ConcatBatching is the 1× baseline
			continue
		}
		slotSize := opt.RowLen / k
		sb, rest := batch.PackSlotted(items, opt.BatchRows, opt.RowLen, slotSize)
		if len(rest) != 0 {
			return nil, fmt.Errorf("experiments: %d slots left %d items unpacked", k, len(rest))
		}
		st, err := timeBatch(sb)
		if err != nil {
			return nil, err
		}
		fig.AddPoint("speedup", pureTime/st)
	}
	fig.Notes = append(fig.Notes,
		"real Go engine wall-clock; batch content identical across slot counts")
	return fig, fig.Validate()
}

// Fig13 reproduces "Speedup of slotted ConcatBatching (batch size 10,
// length 400)".
func Fig13(o Options) (*Figure, error) {
	opt := DefaultSlottedOptions(10)
	opt.Quantize = o.Quantize
	f, err := SlottedSpeedup(opt)
	if err != nil {
		return nil, err
	}
	f.ID = "fig13"
	return f, nil
}

// Fig14 reproduces "Speedup of slotted ConcatBatching (batch size 32,
// length 400)".
func Fig14(o Options) (*Figure, error) {
	opt := DefaultSlottedOptions(32)
	opt.Quantize = o.Quantize
	f, err := SlottedSpeedup(opt)
	if err != nil {
		return nil, err
	}
	f.ID = "fig14"
	return f, nil
}
