package pq

import (
	"sort"
	"testing"
	"testing/quick"
)

func intHeap() *Heap[int] {
	return New(func(a, b int) bool { return a < b })
}

func TestEmptyHeap(t *testing.T) {
	h := intHeap()
	if h.Len() != 0 {
		t.Fatalf("Len = %d, want 0", h.Len())
	}
	if _, ok := h.Peek(); ok {
		t.Fatal("Peek on empty should return ok=false")
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty should return ok=false")
	}
}

func TestPushPopOrdering(t *testing.T) {
	h := intHeap()
	for _, x := range []int{5, 3, 8, 1, 9, 2, 7} {
		h.Push(x)
	}
	want := []int{1, 2, 3, 5, 7, 8, 9}
	for i, w := range want {
		if top, _ := h.Peek(); top != w {
			t.Fatalf("Peek #%d = %d, want %d", i, top, w)
		}
		got, ok := h.Pop()
		if !ok || got != w {
			t.Fatalf("Pop #%d = %d, want %d", i, got, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len after drain = %d", h.Len())
	}
}

func TestFromSliceHeapifies(t *testing.T) {
	h := FromSlice([]int{9, 4, 6, 1, 8}, func(a, b int) bool { return a < b })
	got := h.Drain()
	want := []int{1, 4, 6, 8, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain = %v, want %v", got, want)
		}
	}
}

func TestMaxHeapOrdering(t *testing.T) {
	h := New(func(a, b int) bool { return a > b })
	for _, x := range []int{3, 1, 4, 1, 5} {
		h.Push(x)
	}
	got := h.Drain()
	want := []int{5, 4, 3, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("max-heap Drain = %v, want %v", got, want)
		}
	}
}

func TestDuplicates(t *testing.T) {
	h := intHeap()
	for i := 0; i < 10; i++ {
		h.Push(7)
	}
	for i := 0; i < 10; i++ {
		if v, ok := h.Pop(); !ok || v != 7 {
			t.Fatalf("Pop = %v/%v", v, ok)
		}
	}
}

func TestInterleavedPushPop(t *testing.T) {
	h := intHeap()
	h.Push(5)
	h.Push(1)
	if v, _ := h.Pop(); v != 1 {
		t.Fatalf("Pop = %d, want 1", v)
	}
	h.Push(0)
	h.Push(3)
	if v, _ := h.Pop(); v != 0 {
		t.Fatalf("Pop = %d, want 0", v)
	}
	if v, _ := h.Pop(); v != 3 {
		t.Fatalf("Pop = %d, want 3", v)
	}
	if v, _ := h.Pop(); v != 5 {
		t.Fatalf("Pop = %d, want 5", v)
	}
}

func TestStructElements(t *testing.T) {
	type task struct {
		deadline int
		id       string
	}
	h := New(func(a, b task) bool { return a.deadline < b.deadline })
	h.Push(task{10, "late"})
	h.Push(task{1, "urgent"})
	h.Push(task{5, "mid"})
	if got, _ := h.Pop(); got.id != "urgent" {
		t.Fatalf("Pop = %+v, want urgent", got)
	}
}

// Property: draining the heap yields a sorted permutation of the input.
func TestHeapSortProperty(t *testing.T) {
	f := func(xs []int) bool {
		h := FromSlice(append([]int(nil), xs...), func(a, b int) bool { return a < b })
		got := h.Drain()
		want := append([]int(nil), xs...)
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Push-then-Drain agrees with FromSlice-then-Drain.
func TestPushEquivalentToFromSlice(t *testing.T) {
	f := func(xs []int8) bool {
		less := func(a, b int8) bool { return a < b }
		h1 := New(less)
		for _, x := range xs {
			h1.Push(x)
		}
		h2 := FromSlice(append([]int8(nil), xs...), less)
		a, b := h1.Drain(), h2.Drain()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
