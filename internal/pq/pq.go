// Package pq provides a generic binary min-heap parameterized by a
// less-than comparison, plus thin wrappers for the orderings TCB's
// schedulers need (earliest deadline first, highest utility first).
package pq

// Heap is a binary heap ordered by less. The zero value is not usable;
// construct with New.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// New returns an empty heap ordered by less (a "min"-heap under less).
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// FromSlice heapifies items (taking ownership of the slice) in O(n).
func FromSlice[T any](items []T, less func(a, b T) bool) *Heap[T] {
	h := &Heap[T]{items: items, less: less}
	for i := len(items)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	return h
}

// Len returns the number of elements.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push inserts x.
func (h *Heap[T]) Push(x T) {
	h.items = append(h.items, x)
	h.up(len(h.items) - 1)
}

// Peek returns the minimum without removing it. ok is false when empty.
func (h *Heap[T]) Peek() (x T, ok bool) {
	if len(h.items) == 0 {
		return x, false
	}
	return h.items[0], true
}

// Pop removes and returns the minimum. ok is false when empty.
func (h *Heap[T]) Pop() (x T, ok bool) {
	if len(h.items) == 0 {
		return x, false
	}
	x = h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero
	h.items = h.items[:last]
	if len(h.items) > 0 {
		h.down(0)
	}
	return x, true
}

// Drain removes all elements in order and returns them.
func (h *Heap[T]) Drain() []T {
	out := make([]T, 0, len(h.items))
	for {
		x, ok := h.Pop()
		if !ok {
			return out
		}
		out = append(out, x)
	}
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
