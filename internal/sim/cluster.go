// Cluster-scale simulation: the discrete-event counterpart of
// internal/cluster. RunCluster replays a trace against N independent
// replicas of one System behind a router, with scripted replica faults.
// Requests are routed at arrival (round-robin, least-loaded or
// length-affinity, mirroring the live cluster's policies); when a replica
// is killed its queued pool and in-flight batch fail over to the
// survivors, and when no replica is alive new work is shed instead of
// silently dropped. Every generated request therefore reaches exactly one
// terminal state — scheduled, expired or shed — which is the zero-lost
// invariant the live cluster promises and the million-request test here
// proves at a scale the HTTP path cannot.
package sim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"tcb/internal/sched"
)

// Route selects how arrivals are spread over live replicas.
type Route int

const (
	// RouteRoundRobin cycles arrivals over the live replicas.
	RouteRoundRobin Route = iota
	// RouteLeastLoaded sends each arrival to the live replica with the
	// fewest pending tokens (queued + in-flight).
	RouteLeastLoaded
	// RouteLengthAffinity bands requests by length so replicas see
	// homogeneous rows: short requests go to low replica indexes, long
	// ones to high indexes (less padding under concat layouts).
	RouteLengthAffinity
)

// String names the route for figure labels.
func (r Route) String() string {
	switch r {
	case RouteLeastLoaded:
		return "least-loaded"
	case RouteLengthAffinity:
		return "length-affinity"
	default:
		return "round-robin"
	}
}

// Fault scripts one replica outage: the replica dies at At (its queue and
// in-flight batch fail over to the survivors) and, if RecoverAt > At,
// comes back empty at RecoverAt. RecoverAt 0 means it stays down.
type Fault struct {
	Replica   int
	At        float64
	RecoverAt float64
}

// ClusterSystem describes a replicated serving deployment under test.
// Template configures each replica (its Devices field is ignored — every
// replica is one engine; use multiple replicas instead).
type ClusterSystem struct {
	Template System
	Replicas int
	Route    Route
	Faults   []Fault
}

// ClusterMetrics extends the single-system metrics with the cluster's
// terminal accounting. The invariant the live cluster promises holds here
// by construction and is re-derived at the end of every run:
// Generated == Scheduled + Expired + Shed, i.e. Lost == 0.
type ClusterMetrics struct {
	Metrics
	Replicas int
	// Shed counts requests refused because no live replica existed at
	// their arrival (or at the failover moment) — the simulation analogue
	// of the serve layer's degrade-to-shedding when every replica is
	// ejected.
	Shed int
	// Failovers counts requests re-routed off a killed replica onto a
	// survivor (a request re-routed twice counts twice).
	Failovers int
	// Lost is Generated − Scheduled − Expired − Shed. Anything but zero
	// means the cluster model dropped a request on the floor.
	Lost int
	// PerReplica is the number of requests each replica completed.
	PerReplica []int
}

// simReplica is one replica's private serving state. A replica runs at
// most one batch at a time; inflight holds the requests of the running
// batch until freeAt, when they complete and count as scheduled.
type simReplica struct {
	pool     []*sched.Request
	inflight []*sched.Request
	freeAt   float64
	down     bool
	// fw is the replica's WFQ state under Template.Fair (nil otherwise).
	// Each replica clocks its own fairness: a request failing over to a
	// survivor is re-stamped there, and a recovered replica starts fresh.
	fw *simWFQ
	// prefix is the replica's resident-prefix set under Template.PrefixCache
	// (nil otherwise). Per-replica like the live cluster's per-engine caches:
	// a request failing over to a survivor only hits if the survivor has
	// encoded that prefix itself, and a killed or recovered replica starts
	// cold.
	prefix map[int64]bool
}

// newPrefixSet returns the residency set for one replica (nil when the
// template has no prefix cache).
func newPrefixSet(sys System) map[int64]bool {
	if !sys.PrefixCache {
		return nil
	}
	return make(map[int64]bool)
}

// pendingTokens is the replica's load for least-loaded routing.
func (r *simReplica) pendingTokens() int {
	return sched.TotalLen(r.pool) + sched.TotalLen(r.inflight)
}

// RunCluster simulates the replicated system over the trace and returns
// cluster metrics. Unlike Run, scheduled requests are counted when their
// batch completes, not when it is dispatched — a replica killed mid-batch
// re-routes the batch's requests instead of crediting them.
func RunCluster(cs ClusterSystem, trace []*sched.Request) (*ClusterMetrics, error) {
	sys := cs.Template
	if cs.Replicas <= 0 {
		return nil, fmt.Errorf("sim: cluster needs >=1 replica, got %d", cs.Replicas)
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	for _, f := range cs.Faults {
		if f.Replica < 0 || f.Replica >= cs.Replicas {
			return nil, fmt.Errorf("sim: fault targets replica %d of %d", f.Replica, cs.Replicas)
		}
		if f.RecoverAt != 0 && f.RecoverAt <= f.At {
			return nil, fmt.Errorf("sim: fault recovery %g not after kill %g", f.RecoverAt, f.At)
		}
	}

	reqs := append([]*sched.Request(nil), trace...)
	sort.SliceStable(reqs, func(a, b int) bool { return reqs[a].Arrival < reqs[b].Arrival })

	// Flatten faults into a time-ordered down/up event list.
	type faultEvent struct {
		at   float64
		rep  int
		down bool
	}
	var fevs []faultEvent
	for _, f := range cs.Faults {
		fevs = append(fevs, faultEvent{f.At, f.Replica, true})
		if f.RecoverAt > f.At {
			fevs = append(fevs, faultEvent{f.RecoverAt, f.Replica, false})
		}
	}
	sort.SliceStable(fevs, func(a, b int) bool { return fevs[a].at < fevs[b].at })

	m := &ClusterMetrics{
		Metrics:    Metrics{System: sys.Name, Generated: len(reqs)},
		Replicas:   cs.Replicas,
		PerReplica: make([]int, cs.Replicas),
	}
	for _, r := range reqs {
		m.tenant(r).Generated++
	}
	reps := make([]*simReplica, cs.Replicas)
	for i := range reps {
		reps[i] = &simReplica{fw: newSimWFQ(sys), prefix: newPrefixSet(sys)}
	}

	now := 0.0
	next := 0 // next arrival index
	nf := 0   // next fault event index
	rr := 0   // round-robin cursor

	live := func() []int {
		var out []int
		for i, r := range reps {
			if !r.down {
				out = append(out, i)
			}
		}
		return out
	}
	route := func(req *sched.Request) int {
		cand := live()
		if len(cand) == 0 {
			return -1
		}
		switch cs.Route {
		case RouteLeastLoaded:
			best := cand[0]
			for _, i := range cand[1:] {
				if reps[i].pendingTokens() < reps[best].pendingTokens() {
					best = i
				}
			}
			return best
		case RouteLengthAffinity:
			pref := req.Len * len(cand) / (sys.L + 1)
			if pref >= len(cand) {
				pref = len(cand) - 1
			}
			return cand[pref]
		default:
			rr++
			return cand[rr%len(cand)]
		}
	}
	// assign gives the request a terminal owner: a live replica's pool, or
	// the shed/expired bucket when nobody can take it.
	assign := func(req *sched.Request, t float64, failover bool) {
		i := route(req)
		if i < 0 {
			if req.Deadline < t {
				m.Expired++
				m.tenant(req).Expired++
			} else {
				m.Shed++
				m.tenant(req).Shed++
			}
			return
		}
		reps[i].pool = append(reps[i].pool, req)
		reps[i].fw.admit(req)
		if failover {
			m.Failovers++
		}
	}

	for {
		// Fault events due now. Kills run before completions at the same
		// instant: a batch finishing exactly when its replica dies is
		// conservatively treated as not finished and fails over.
		for nf < len(fevs) && fevs[nf].at <= now {
			e := fevs[nf]
			nf++
			r := reps[e.rep]
			if e.down {
				if r.down {
					continue
				}
				r.down = true
				victims := append(r.pool, r.inflight...)
				r.pool, r.inflight = nil, nil
				r.fw = newSimWFQ(sys) // dead clock discarded with the pool
				r.prefix = newPrefixSet(sys)
				r.freeAt = now
				for _, v := range victims {
					assign(v, now, true)
				}
			} else {
				r.down = false
				r.pool, r.inflight = nil, nil
				r.fw = newSimWFQ(sys)
				r.prefix = newPrefixSet(sys)
				r.freeAt = now
			}
		}

		// Arrivals due now, routed on the current live set.
		for next < len(reqs) && reqs[next].Arrival <= now {
			assign(reqs[next], now, false)
			next++
		}

		// Completions due now: the batch's requests count as scheduled.
		for i, r := range reps {
			if r.down || r.inflight == nil || r.freeAt > now {
				continue
			}
			for _, q := range r.inflight {
				m.Scheduled++
				m.Utility += q.Utility()
				m.Latency.Add(r.freeAt - q.Arrival)
				m.PerReplica[i]++
				tm := m.tenant(q)
				tm.Scheduled++
				tm.Utility += q.Utility()
			}
			r.inflight = nil
		}

		// Deadline sweep per pool.
		for _, r := range reps {
			if r.down || len(r.pool) == 0 {
				continue
			}
			alive, expired, _ := sched.Expire(r.pool, now)
			m.Expired += len(expired)
			for _, q := range expired {
				m.tenant(q).Expired++
			}
			r.fw.expire(expired)
			r.pool = alive
		}

		// Dispatch: every idle live replica with pending work decides now.
		refusalAdvance := math.Inf(1)
		for _, r := range reps {
			if r.down || r.inflight != nil || len(r.pool) == 0 {
				continue
			}
			m.Backlog.Add(float64(len(r.pool)))
			cands := r.fw.candidates(r.pool)
			t0 := time.Now()
			dec := sys.Scheduler.Schedule(now, cands, sys.B, sys.L)
			m.SchedulerWall += time.Since(t0)
			m.SchedulerRuns++
			chosen := dec.Chosen()
			if len(chosen) == 0 {
				// Everything pending was refused (longer than L, or longer
				// than the slot under a slotted policy): let it expire at
				// the earliest deadline instead of livelocking.
				for _, q := range r.pool {
					if q.Deadline+1e-9 < refusalAdvance {
						refusalAdvance = q.Deadline + 1e-9
					}
				}
				continue
			}
			elapsed, used, padded, launches := executeDecision(sys, dec)
			elapsed = m.applyPrefixDiscount(sys.Cost, chosen, r.prefix, elapsed)
			m.Batches += launches
			m.BusySeconds += elapsed
			m.UsedTokens += int64(used)
			m.PaddedTokens += int64(padded)
			chosenSet := make(map[int64]bool, len(chosen))
			for _, q := range chosen {
				chosenSet[q.ID] = true
			}
			var keep []*sched.Request
			for _, q := range r.pool {
				if !chosenSet[q.ID] {
					keep = append(keep, q)
				}
			}
			r.pool = keep
			r.fw.dispatched(chosen)
			r.inflight = chosen
			r.freeAt = now + elapsed
		}

		// Fully drained (remaining fault events move no work): done.
		if next >= len(reqs) {
			idle := true
			for _, r := range reps {
				if r.inflight != nil || (!r.down && len(r.pool) > 0) {
					idle = false
					break
				}
			}
			if idle {
				break
			}
		}

		// Advance to the next event. Every candidate is strictly after
		// now: arrivals/faults at <= now were consumed above, fresh
		// batches have positive duration, and surviving pool deadlines
		// are >= now (the sweep removed the rest).
		tnext := refusalAdvance
		if next < len(reqs) && reqs[next].Arrival < tnext {
			tnext = reqs[next].Arrival
		}
		if nf < len(fevs) && fevs[nf].at < tnext {
			tnext = fevs[nf].at
		}
		for _, r := range reps {
			if !r.down && r.inflight != nil && r.freeAt < tnext {
				tnext = r.freeAt
			}
		}
		if math.IsInf(tnext, 1) {
			break
		}
		now = tnext
	}

	m.SimSeconds = now
	m.Lost = m.Generated - m.Metrics.Scheduled - m.Metrics.Expired - m.Shed
	return m, nil
}
