package sim

import (
	"reflect"
	"testing"

	"tcb/internal/batch"
	"tcb/internal/sched"
	"tcb/internal/workload"
)

// mixTrace generates the adversarial multi-tenant workload: nGood paper
// streams plus a flooder at floodFactor × the base rate.
func mixTrace(t *testing.T, baseRate, duration float64, seed uint64, nGood int, floodFactor float64) []*sched.Request {
	t.Helper()
	reqs, err := workload.GenerateMix(workload.AdversarialMix(baseRate, duration, seed, nGood, floodFactor))
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// untag returns a copy of the trace with the tenant labels stripped.
func untag(reqs []*sched.Request) []*sched.Request {
	out := make([]*sched.Request, len(reqs))
	for i, r := range reqs {
		cp := *r
		cp.Tenant = ""
		out[i] = &cp
	}
	return out
}

// TestFairOffBitwiseIdentical pins the escape hatch: with Fair off, tenant
// tags are pure accounting — a tagged trace must schedule exactly like the
// same trace untagged, down to every batch and latency sample.
func TestFairOffBitwiseIdentical(t *testing.T) {
	tagged := mixTrace(t, 40, 3, 11, 2, 4)
	sys := system("tcb", sched.NewDAS(), batch.Concat)
	if sys.Fair {
		t.Fatal("fair must default off")
	}
	m1, err := Run(sys, tagged)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Run(sys, untag(tagged))
	if err != nil {
		t.Fatal(err)
	}
	if m1.Scheduled != m2.Scheduled || m1.Expired != m2.Expired ||
		m1.Utility != m2.Utility || m1.SimSeconds != m2.SimSeconds ||
		m1.Batches != m2.Batches || m1.BusySeconds != m2.BusySeconds ||
		m1.UsedTokens != m2.UsedTokens || m1.PaddedTokens != m2.PaddedTokens {
		t.Fatalf("tags changed fair-off scheduling:\n%+v\n%+v", m1, m2)
	}
	if !reflect.DeepEqual(m1.Latency, m2.Latency) || !reflect.DeepEqual(m1.Backlog, m2.Backlog) {
		t.Fatal("tags changed fair-off latency/backlog samples")
	}
	// Tallies still exist in both runs — untagged folds into one tenant.
	if len(m1.Tenants) != 3 {
		t.Fatalf("tagged run tenants = %d, want 3", len(m1.Tenants))
	}
	if len(m2.Tenants) != 1 || m2.Tenants["default"] == nil {
		t.Fatalf("untagged run tenants = %v, want default only", m2.Tenants)
	}
}

// TestFairTenantConservation: per-tenant tallies partition the run's
// terminal accounting exactly, and Jain is sane, with fairness on.
func TestFairTenantConservation(t *testing.T) {
	reqs := mixTrace(t, 60, 3, 5, 3, 8)
	sys := system("tcb", sched.NewDAS(), batch.Concat)
	sys.Fair = true
	m, err := Run(sys, reqs)
	if err != nil {
		t.Fatal(err)
	}
	gen, schd, exp := 0, 0, 0
	for name, tm := range m.Tenants {
		if tm.Generated != tm.Scheduled+tm.Expired {
			t.Fatalf("tenant %s leaked requests: %+v", name, tm)
		}
		gen += tm.Generated
		schd += tm.Scheduled
		exp += tm.Expired
	}
	if gen != m.Generated || schd != m.Scheduled || exp != m.Expired {
		t.Fatalf("tenant tallies don't partition totals: %d/%d/%d vs %d/%d/%d",
			gen, schd, exp, m.Generated, m.Scheduled, m.Expired)
	}
	if j := m.JainGoodput(); j <= 0 || j > 1 {
		t.Fatalf("Jain index %g out of range", j)
	}
}

// TestFairWindowBeatsFloodOnJain: under an adversarial flood the WFQ
// window must yield a materially fairer goodput split than the raw pool.
func TestFairWindowBeatsFloodOnJain(t *testing.T) {
	reqs := mixTrace(t, 60, 4, 9, 3, 8)
	base := system("tcb", sched.NewDAS(), batch.Concat)

	unfair, err := Run(base, reqs)
	if err != nil {
		t.Fatal(err)
	}
	fairSys := base
	fairSys.Fair = true
	fair, err := Run(fairSys, reqs)
	if err != nil {
		t.Fatal(err)
	}

	goodShare := func(m *Metrics) float64 {
		good, gen := 0, 0
		for name, tm := range m.Tenants {
			if name == "flooder" {
				continue
			}
			good += tm.Scheduled
			gen += tm.Generated
		}
		if gen == 0 {
			t.Fatal("no good-tenant traffic")
		}
		return float64(good) / float64(gen)
	}
	if gf, gu := goodShare(fair), goodShare(unfair); gf < gu {
		t.Fatalf("fair served good tenants worse than unfair: %.3f < %.3f", gf, gu)
	}
	if jf, ju := fair.JainGoodput(), unfair.JainGoodput(); jf < ju {
		t.Fatalf("fair Jain %.3f below unfair %.3f", jf, ju)
	}
}

// TestMillionRequestNoStarvation is the acceptance-scale fairness run:
// ~10^6 requests where a flooder submits at 10× each well-behaved tenant's
// rate, total demand well past capacity. With WFQ on, every good tenant
// must keep nearly its full goodput (its demand is under its fair share)
// and the overload must land on the flooder.
func TestMillionRequestNoStarvation(t *testing.T) {
	const baseRate = 100.0 // 3 good + 10× flooder = 1300 req/s offered
	duration := 1_000_000.0 / (13 * baseRate)
	reqs := mixTrace(t, baseRate, duration, 7, 3, 10)
	if len(reqs) < 900_000 {
		t.Fatalf("trace too small for a million-request run: %d", len(reqs))
	}
	sys := system("tcb", sched.NewDAS(), batch.Concat)
	sys.Fair = true
	m, err := Run(sys, reqs)
	if err != nil {
		t.Fatal(err)
	}
	goodput := map[string]int{}
	for name, tm := range m.Tenants {
		if tm.Generated != tm.Scheduled+tm.Expired {
			t.Fatalf("tenant %s leaked requests: %+v", name, tm)
		}
		if name == "flooder" {
			if tm.Scheduled >= tm.Generated {
				t.Fatal("flooder fully served — the run never overloaded")
			}
			continue
		}
		if frac := float64(tm.Scheduled) / float64(tm.Generated); frac < 0.75 {
			t.Fatalf("good tenant %s starved: %.3f of %d served", name, frac, tm.Generated)
		}
		goodput[name] = tm.Scheduled
	}
	if len(goodput) != 3 {
		t.Fatalf("good tenants = %d, want 3", len(goodput))
	}
	if j := fairJain(goodput); j < 0.99 {
		t.Fatalf("good tenants served unevenly: Jain %.4f", j)
	}
}

// fairJain mirrors fair.JainIndexMap for the test without importing the
// package under a clashing name.
func fairJain(counts map[string]int) float64 {
	var sum, sq float64
	for _, c := range counts {
		x := float64(c)
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(counts)) * sq)
}

// TestClusterFairTenantAccounting: cluster runs tally tenants through
// routing, faults and failover — conservation must hold per tenant even
// when requests bounce between replicas.
func TestClusterFairTenantAccounting(t *testing.T) {
	reqs := mixTrace(t, 80, 3, 13, 2, 6)
	sys := system("tcb", sched.NewDAS(), batch.Concat)
	sys.Fair = true
	m, err := RunCluster(ClusterSystem{
		Template: sys,
		Replicas: 2,
		Route:    RouteLeastLoaded,
		Faults:   []Fault{{Replica: 1, At: 1.0, RecoverAt: 2.0}},
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Lost != 0 {
		t.Fatalf("lost %d requests", m.Lost)
	}
	gen, schd, exp, shed := 0, 0, 0, 0
	for name, tm := range m.Tenants {
		if tm.Generated != tm.Scheduled+tm.Expired+tm.Shed {
			t.Fatalf("tenant %s leaked requests: %+v", name, tm)
		}
		gen += tm.Generated
		schd += tm.Scheduled
		exp += tm.Expired
		shed += tm.Shed
	}
	if gen != m.Generated || schd != m.Metrics.Scheduled ||
		exp != m.Metrics.Expired || shed != m.Shed {
		t.Fatalf("tenant tallies don't partition cluster totals: %+v", m.Tenants)
	}
	if m.Failovers == 0 {
		t.Fatal("kill with queued work must fail over")
	}
}
