package sim

import (
	"testing"

	"tcb/internal/batch"
	"tcb/internal/sched"
	"tcb/internal/workload"
)

// prefixTrace generates a trace whose requests share prefixes from a pool.
func prefixTrace(t *testing.T, rate, duration, reuse float64, pool, prefixLen int, seed uint64) []*sched.Request {
	t.Helper()
	spec := workload.PaperSpec(rate, duration, seed)
	spec.PrefixPool = pool
	spec.PrefixReuse = reuse
	spec.PrefixLen = prefixLen
	reqs, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestPrefixCacheDiscountsBusyTime(t *testing.T) {
	reqs := prefixTrace(t, 200, 3, 0.7, 4, 30, 7)
	sysOff := system("off", sched.NewDAS(), batch.Concat)
	sysOff.L = 200 // prefixed requests are longer than the paper's 100
	sysOn := sysOff
	sysOn.Name = "on"
	sysOn.PrefixCache = true

	mOff, err := Run(sysOff, reqs)
	if err != nil {
		t.Fatal(err)
	}
	mOn, err := Run(sysOn, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if mOff.PrefixHits != 0 || mOff.PrefixMisses != 0 || mOff.PrefixSecondsSaved != 0 {
		t.Fatalf("cache off must not count prefixes: %+v", mOff)
	}
	if mOn.PrefixHits == 0 {
		t.Fatal("a 70%-reuse trace must produce cache hits")
	}
	if mOn.PrefixMisses == 0 {
		t.Fatal("first encodes must count as misses")
	}
	if mOn.PrefixTokensSaved == 0 || mOn.PrefixSecondsSaved <= 0 {
		t.Fatalf("hits must save tokens and time: %+v", mOn)
	}
	if mOn.BusySeconds >= mOff.BusySeconds {
		t.Fatalf("cache must reduce busy time: on=%g off=%g", mOn.BusySeconds, mOff.BusySeconds)
	}
	if hr := mOn.PrefixHitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("hit rate %g outside (0, 1)", hr)
	}
	// The cache changes timing, never the request accounting.
	if mOn.Generated != mOff.Generated {
		t.Fatalf("generated mismatch: %d vs %d", mOn.Generated, mOff.Generated)
	}
	if mOn.Scheduled+mOn.Expired != mOn.Generated {
		t.Fatalf("conservation broken: %+v", mOn)
	}
}

func TestPrefixCacheNoPrefixTraceUnchanged(t *testing.T) {
	reqs := trace(t, 150, 2, 20, 3)
	sysOff := system("off", sched.NewDAS(), batch.Concat)
	sysOn := sysOff
	sysOn.PrefixCache = true
	mOff, err := Run(sysOff, reqs)
	if err != nil {
		t.Fatal(err)
	}
	mOn, err := Run(sysOn, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if mOn.PrefixHits != 0 || mOn.PrefixMisses != 0 {
		t.Fatalf("no request declared a prefix: %+v", mOn)
	}
	if mOn.BusySeconds != mOff.BusySeconds || mOn.SimSeconds != mOff.SimSeconds ||
		mOn.Scheduled != mOff.Scheduled || mOn.Utility != mOff.Utility {
		t.Fatalf("enabling the cache on a prefix-free trace changed the run:\non:  %+v\noff: %+v", mOn, mOff)
	}
}

// Same-batch siblings of a fresh prefix all pay full price — residency
// follows the engine's post-encode freeze, so a prefix is reusable only
// from the batch after the one that first encoded it.
func TestPrefixResidencyIsPostBatch(t *testing.T) {
	mk := func(id int64, arrival float64) *sched.Request {
		return &sched.Request{
			ID: id, Arrival: arrival, Deadline: arrival + 100,
			Len: 20, PrefixLen: 10, PrefixID: 1,
		}
	}
	// Requests 1 and 2 arrive together (one batch: B=8, L=100 holds both);
	// request 3 arrives after that batch completes.
	reqs := []*sched.Request{mk(1, 0), mk(2, 0), mk(3, 50)}
	sys := system("post-batch", sched.NewDAS(), batch.Concat)
	sys.PrefixCache = true
	m, err := Run(sys, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.PrefixMisses != 2 || m.PrefixHits != 1 {
		t.Fatalf("want 2 misses (same-batch siblings) + 1 hit, got misses=%d hits=%d",
			m.PrefixMisses, m.PrefixHits)
	}
	if m.PrefixTokensSaved != 10 {
		t.Fatalf("tokens saved = %d, want 10", m.PrefixTokensSaved)
	}
}

// Each cluster replica keeps its own residency: the same prefix routed to
// two replicas is encoded (missed) once per replica.
func TestClusterPrefixPerReplica(t *testing.T) {
	var reqs []*sched.Request
	for i := int64(1); i <= 8; i++ {
		reqs = append(reqs, &sched.Request{
			ID: i, Arrival: float64(i) * 0.5, Deadline: float64(i)*0.5 + 100,
			Len: 20, PrefixLen: 10, PrefixID: 1,
		})
	}
	sys := system("cluster-prefix", sched.NewDAS(), batch.Concat)
	sys.PrefixCache = true
	m, err := RunCluster(ClusterSystem{Template: sys, Replicas: 2, Route: RouteRoundRobin}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Lost != 0 {
		t.Fatalf("lost %d requests", m.Lost)
	}
	// Arrivals are spaced out (one per batch), alternating replicas: each
	// replica misses its first sight of the prefix and hits thereafter.
	if m.PrefixMisses != 2 {
		t.Fatalf("2 replicas must miss once each, got %d misses", m.PrefixMisses)
	}
	if m.PrefixHits != len(reqs)-2 {
		t.Fatalf("hits = %d, want %d", m.PrefixHits, len(reqs)-2)
	}
}

// A killed replica loses its cache: post-recovery traffic misses again.
func TestClusterPrefixResetOnFault(t *testing.T) {
	var reqs []*sched.Request
	for i := int64(1); i <= 6; i++ {
		reqs = append(reqs, &sched.Request{
			ID: i, Arrival: float64(i), Deadline: float64(i) + 100,
			Len: 20, PrefixLen: 10, PrefixID: 1,
		})
	}
	sys := system("fault-prefix", sched.NewDAS(), batch.Concat)
	sys.PrefixCache = true
	cs := ClusterSystem{
		Template: sys, Replicas: 1, Route: RouteRoundRobin,
		Faults: []Fault{{Replica: 0, At: 3.5, RecoverAt: 3.6}},
	}
	m, err := RunCluster(cs, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// The first request before the fault misses; the first after recovery
	// misses again because the cache died with the replica.
	if m.PrefixMisses < 2 {
		t.Fatalf("recovered replica must re-encode the prefix: misses=%d", m.PrefixMisses)
	}
}
