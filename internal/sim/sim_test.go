package sim

import (
	"testing"
	"testing/quick"

	"tcb/internal/batch"
	"tcb/internal/cost"
	"tcb/internal/model"
	"tcb/internal/sched"
	"tcb/internal/workload"
)

// testCost simulates a slow device so the systems saturate within the
// rates the tests probe (TCB capacity ≈ 450 req/s, TNB ≈ 250 req/s here).
func testCost() cost.Params {
	return cost.Params{
		PerTokenSeconds: 1e-4,
		PerScoreSeconds: 1e-7,
		PerBatchSeconds: 2e-3,
	}
}

func system(name string, s sched.Scheduler, scheme batch.Scheme) System {
	return System{
		Name: name, Scheduler: s, Scheme: scheme,
		B: 8, L: 100, Cost: testCost(),
	}
}

func trace(t *testing.T, rate, duration float64, variance float64, seed uint64) []*sched.Request {
	t.Helper()
	spec := workload.PaperSpec(rate, duration, seed)
	spec.VarLen = variance
	reqs, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestValidate(t *testing.T) {
	bad := System{Name: "x"}
	if bad.Validate() == nil {
		t.Fatal("system without scheduler must fail")
	}
	bad = System{Name: "x", Scheduler: sched.FCFS{}, B: 0, L: 10, Cost: testCost()}
	if bad.Validate() == nil {
		t.Fatal("B=0 must fail")
	}
	good := system("ok", sched.FCFS{}, batch.Concat)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunDrainsTrace(t *testing.T) {
	reqs := trace(t, 100, 2, 20, 1)
	m, err := Run(system("tcb", sched.NewDAS(), batch.Concat), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Generated != len(reqs) {
		t.Fatalf("generated = %d, want %d", m.Generated, len(reqs))
	}
	if m.Scheduled+m.Expired != m.Generated {
		t.Fatalf("scheduled %d + expired %d != generated %d",
			m.Scheduled, m.Expired, m.Generated)
	}
	if m.SimSeconds <= 0 || m.Batches == 0 {
		t.Fatalf("degenerate run: %+v", m)
	}
	if m.Utility <= 0 {
		t.Fatal("some utility must accrue at a feasible rate")
	}
	if m.SchedulerRuns == 0 || m.SchedulerWall <= 0 {
		t.Fatal("scheduler overhead must be recorded")
	}
}

func TestLowRateAllServed(t *testing.T) {
	// At a trivially low rate every request should be scheduled.
	reqs := trace(t, 20, 2, 20, 2)
	for _, scheme := range []batch.Scheme{batch.Naive, batch.Turbo, batch.Concat} {
		m, err := Run(system(scheme.String(), sched.NewDAS(), scheme), reqs)
		if err != nil {
			t.Fatal(err)
		}
		if m.Expired != 0 {
			t.Fatalf("%v: %d requests expired at low rate", scheme, m.Expired)
		}
	}
}

func TestConcatBeatsNaiveAtHighRate(t *testing.T) {
	// The core claim (Figs. 9–10): at saturation, ConcatBatching yields
	// more utility and throughput than NaiveBatching under the same DAS.
	reqs := trace(t, 2000, 2, 20, 3)
	concat, err := Run(system("DAS-TCB", sched.NewDAS(), batch.Concat), reqs)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Run(system("DAS-TNB", sched.NewDAS(), batch.Naive), reqs)
	if err != nil {
		t.Fatal(err)
	}
	turbo, err := Run(system("DAS-TTB", sched.NewDAS(), batch.Turbo), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if concat.Utility <= naive.Utility {
		t.Fatalf("TCB utility %v should beat TNB %v", concat.Utility, naive.Utility)
	}
	if concat.Utility <= turbo.Utility {
		t.Fatalf("TCB utility %v should beat TTB %v", concat.Utility, turbo.Utility)
	}
	if concat.Throughput() <= naive.Throughput() {
		t.Fatalf("TCB throughput %v should beat TNB %v",
			concat.Throughput(), naive.Throughput())
	}
}

func TestTurboBeatsNaive(t *testing.T) {
	// TTB reduces padding vs TNB (Fig. 1b vs 1a), so it should process the
	// same overload with less padded work.
	reqs := trace(t, 2000, 2, 20, 4)
	naive, err := Run(system("TNB", sched.NewDAS(), batch.Naive), reqs)
	if err != nil {
		t.Fatal(err)
	}
	turbo, err := Run(system("TTB", sched.NewDAS(), batch.Turbo), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if turbo.Utilization() <= naive.Utilization() {
		t.Fatalf("TTB utilization %v should beat TNB %v",
			turbo.Utilization(), naive.Utilization())
	}
	if turbo.Utility < naive.Utility {
		t.Fatalf("TTB utility %v should be at least TNB %v", turbo.Utility, naive.Utility)
	}
}

func TestSlottedAtLeastAsFastAsPure(t *testing.T) {
	reqs := trace(t, 2000, 2, 20, 5)
	pure, err := Run(system("pure", sched.NewDAS(), batch.Concat), reqs)
	if err != nil {
		t.Fatal(err)
	}
	slotted, err := Run(System{
		Name: "slotted", Scheduler: sched.NewSlottedDAS(), Scheme: batch.SlottedConcat,
		B: 8, L: 100, Cost: testCost(),
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Slotting reduces per-batch time; with the same admission pressure it
	// should not lose utility.
	if slotted.Utility < 0.95*pure.Utility {
		t.Fatalf("slotted utility %v too far below pure %v", slotted.Utility, pure.Utility)
	}
}

func TestHigherVarianceHurtsTurboMore(t *testing.T) {
	// Fig. 12's mechanism: higher length variance widens Turbo's groups
	// (more padding), while Concat is insensitive. Compare utilization
	// degradation.
	low := trace(t, 1500, 2, 20, 6)
	high := trace(t, 1500, 2, 100, 6)
	turboLow, err := Run(system("TTB", sched.FCFS{}, batch.Turbo), low)
	if err != nil {
		t.Fatal(err)
	}
	turboHigh, err := Run(system("TTB", sched.FCFS{}, batch.Turbo), high)
	if err != nil {
		t.Fatal(err)
	}
	concatLow, err := Run(system("TCB", sched.FCFS{}, batch.Concat), low)
	if err != nil {
		t.Fatal(err)
	}
	concatHigh, err := Run(system("TCB", sched.FCFS{}, batch.Concat), high)
	if err != nil {
		t.Fatal(err)
	}
	turboDrop := turboLow.Throughput() / turboHigh.Throughput()
	concatDrop := concatLow.Throughput() / concatHigh.Throughput()
	if turboDrop < concatDrop {
		t.Fatalf("variance should hurt TTB (%v×) at least as much as TCB (%v×)",
			turboDrop, concatDrop)
	}
}

func TestThroughputSaturates(t *testing.T) {
	// Beyond saturation, throughput must stop growing with arrival rate
	// (the "system saturation" of §6.2.1).
	t1, err := Run(system("tcb", sched.NewDAS(), batch.Concat), trace(t, 3000, 2, 20, 7))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Run(system("tcb", sched.NewDAS(), batch.Concat), trace(t, 6000, 2, 20, 7))
	if err != nil {
		t.Fatal(err)
	}
	if t2.Throughput() > 1.25*t1.Throughput() {
		t.Fatalf("throughput kept growing past saturation: %v -> %v",
			t1.Throughput(), t2.Throughput())
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := &Metrics{Scheduled: 10, SimSeconds: 2, UsedTokens: 80, PaddedTokens: 20}
	if m.Throughput() != 5 {
		t.Fatalf("throughput = %v", m.Throughput())
	}
	if m.Utilization() != 0.8 {
		t.Fatalf("utilization = %v", m.Utilization())
	}
	empty := &Metrics{}
	if empty.Throughput() != 0 || empty.Utilization() != 1 {
		t.Fatal("empty metrics edge cases wrong")
	}
}

func TestOverlongRequestsExpireNotLivelock(t *testing.T) {
	// Requests longer than L can never be scheduled; the simulator must
	// drop them rather than loop forever.
	reqs := []*sched.Request{
		{ID: 1, Arrival: 0, Deadline: 10, Len: 500},
		{ID: 2, Arrival: 0, Deadline: 10, Len: 20},
	}
	m, err := Run(system("tcb", sched.NewDAS(), batch.Concat), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Scheduled != 1 || m.Expired != 1 {
		t.Fatalf("scheduled/expired = %d/%d, want 1/1", m.Scheduled, m.Expired)
	}
}

func TestDeterministicRuns(t *testing.T) {
	reqs := trace(t, 500, 2, 20, 8)
	a, err := Run(system("tcb", sched.NewDAS(), batch.Concat), reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(system("tcb", sched.NewDAS(), batch.Concat), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Utility != b.Utility || a.Scheduled != b.Scheduled || a.SimSeconds != b.SimSeconds {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestCostParamsFromModelConfig(t *testing.T) {
	// End-to-end smoke with the derived default cost model.
	p := cost.DefaultParams(model.TestConfig(100))
	sys := System{Name: "tcb", Scheduler: sched.NewDAS(), Scheme: batch.Concat,
		B: 8, L: 100, Cost: p}
	m, err := Run(sys, trace(t, 300, 1, 20, 9))
	if err != nil {
		t.Fatal(err)
	}
	if m.Scheduled == 0 {
		t.Fatal("nothing scheduled under default cost params")
	}
}

func TestMultiDeviceThroughputScales(t *testing.T) {
	reqs := trace(t, 4000, 2, 20, 10)
	get := func(devices int) float64 {
		sys := system("tcb", sched.NewDAS(), batch.Concat)
		sys.Devices = devices
		m, err := Run(sys, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return m.Throughput()
	}
	t1, t2, t4 := get(1), get(2), get(4)
	if t2 < 1.6*t1 {
		t.Fatalf("2 devices should ~double throughput: %v vs %v", t2, t1)
	}
	if t4 < 1.5*t2 {
		t.Fatalf("4 devices should keep scaling: %v vs %v", t4, t2)
	}
}

func TestMultiDeviceSingleEquivalence(t *testing.T) {
	// Devices=1 must reproduce the default path exactly.
	reqs := trace(t, 800, 2, 20, 11)
	a, err := Run(system("tcb", sched.NewDAS(), batch.Concat), reqs)
	if err != nil {
		t.Fatal(err)
	}
	sys := system("tcb", sched.NewDAS(), batch.Concat)
	sys.Devices = 1
	b, err := Run(sys, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Utility != b.Utility || a.Scheduled != b.Scheduled || a.SimSeconds != b.SimSeconds {
		t.Fatalf("Devices=1 diverges from default: %+v vs %+v", a, b)
	}
}

func TestMultiDeviceConservation(t *testing.T) {
	reqs := trace(t, 2000, 2, 20, 12)
	sys := system("tcb", sched.NewDAS(), batch.Concat)
	sys.Devices = 3
	m, err := Run(sys, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Scheduled+m.Expired != m.Generated {
		t.Fatalf("conservation broken: %d + %d != %d", m.Scheduled, m.Expired, m.Generated)
	}
	// Busy time can exceed wall time with parallel devices.
	if m.BusySeconds <= m.SimSeconds {
		t.Fatalf("3 saturated devices should accumulate busy %v > wall %v",
			m.BusySeconds, m.SimSeconds)
	}
}

// Property: across random configurations and traces, the simulator
// conserves requests, accrues non-negative metrics, and never schedules a
// request after its deadline (the sim asserts Eq. 12 by construction, but
// the latency floor check catches clock bugs).
func TestSimInvariantsProperty(t *testing.T) {
	f := func(seed uint16, rateRaw, bRaw, schemeRaw uint8) bool {
		rate := float64(rateRaw%200)*10 + 50
		B := int(bRaw%16) + 1
		schemes := []batch.Scheme{batch.Naive, batch.Turbo, batch.Concat}
		scheme := schemes[int(schemeRaw)%len(schemes)]
		spec := workload.PaperSpec(rate, 1, uint64(seed)+1)
		reqs, err := workload.Generate(spec)
		if err != nil || len(reqs) == 0 {
			return true
		}
		m, err := Run(System{
			Name: "prop", Scheduler: sched.NewDAS(), Scheme: scheme,
			B: B, L: 100, Cost: testCost(),
		}, reqs)
		if err != nil {
			return false
		}
		if m.Scheduled+m.Expired != m.Generated {
			return false
		}
		if m.Utility < 0 || m.BusySeconds < 0 || m.SimSeconds < 0 {
			return false
		}
		if m.UsedTokens < 0 || m.PaddedTokens < 0 {
			return false
		}
		// Latency is completion − arrival: strictly positive.
		if m.Latency.N() > 0 && m.Latency.Percentile(0) <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBacklogGrowsPastSaturation(t *testing.T) {
	calm, err := Run(system("tcb", sched.NewDAS(), batch.Concat), trace(t, 100, 2, 20, 21))
	if err != nil {
		t.Fatal(err)
	}
	stormy, err := Run(system("tcb", sched.NewDAS(), batch.Concat), trace(t, 3000, 2, 20, 21))
	if err != nil {
		t.Fatal(err)
	}
	if calm.Backlog.N() == 0 || stormy.Backlog.N() == 0 {
		t.Fatal("backlog not sampled")
	}
	if stormy.Backlog.Mean() < 5*calm.Backlog.Mean() {
		t.Fatalf("saturated backlog %v should dwarf calm backlog %v",
			stormy.Backlog.Mean(), calm.Backlog.Mean())
	}
}
