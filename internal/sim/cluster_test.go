package sim

import (
	"math"
	"testing"

	"tcb/internal/batch"
	"tcb/internal/sched"
)

func clusterSystem(n int, route Route, faults ...Fault) ClusterSystem {
	return ClusterSystem{
		Template: system("tcb", sched.FCFS{}, batch.Concat),
		Replicas: n,
		Route:    route,
		Faults:   faults,
	}
}

// checkTerminal asserts the zero-lost invariant: every generated request
// reached exactly one terminal state.
func checkTerminal(t *testing.T, m *ClusterMetrics) {
	t.Helper()
	if m.Lost != 0 {
		t.Fatalf("lost %d requests: %+v", m.Lost, m)
	}
	if m.Scheduled+m.Expired+m.Shed != m.Generated {
		t.Fatalf("terminal counts %d+%d+%d != generated %d",
			m.Scheduled, m.Expired, m.Shed, m.Generated)
	}
	sum := 0
	for _, n := range m.PerReplica {
		sum += n
	}
	if sum != m.Scheduled {
		t.Fatalf("per-replica sum %d != scheduled %d", sum, m.Scheduled)
	}
}

func TestClusterValidation(t *testing.T) {
	reqs := trace(t, 50, 1, 20, 1)
	if _, err := RunCluster(clusterSystem(0, RouteRoundRobin), reqs); err == nil {
		t.Fatal("0 replicas must fail")
	}
	if _, err := RunCluster(clusterSystem(2, RouteRoundRobin, Fault{Replica: 5, At: 1}), reqs); err == nil {
		t.Fatal("fault on missing replica must fail")
	}
	if _, err := RunCluster(clusterSystem(2, RouteRoundRobin, Fault{Replica: 0, At: 1, RecoverAt: 0.5}), reqs); err == nil {
		t.Fatal("recovery before kill must fail")
	}
}

// TestClusterSingleReplicaMatchesRun pins RunCluster's event loop to the
// single-system simulator: one fault-free replica must reproduce Run's
// decisions exactly.
func TestClusterSingleReplicaMatchesRun(t *testing.T) {
	reqs := trace(t, 300, 4, 20, 3)
	single, err := Run(system("tcb", sched.FCFS{}, batch.Concat), reqs)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := RunCluster(clusterSystem(1, RouteRoundRobin), reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkTerminal(t, cm)
	if cm.Scheduled != single.Scheduled || cm.Expired != single.Expired || cm.Batches != single.Batches {
		t.Fatalf("cluster(1) %d/%d/%d != run %d/%d/%d (scheduled/expired/batches)",
			cm.Scheduled, cm.Expired, cm.Batches, single.Scheduled, single.Expired, single.Batches)
	}
	if math.Abs(cm.Utility-single.Utility) > 1e-9 {
		t.Fatalf("utility %g != %g", cm.Utility, single.Utility)
	}
}

// TestClusterScalesThroughput backs the ext-cluster CI gate: at a rate
// that saturates one replica, two least-loaded replicas must serve
// substantially more responses per second.
func TestClusterScalesThroughput(t *testing.T) {
	reqs := trace(t, 900, 5, 20, 2)
	m1, err := RunCluster(clusterSystem(1, RouteLeastLoaded), reqs)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := RunCluster(clusterSystem(2, RouteLeastLoaded), reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkTerminal(t, m1)
	checkTerminal(t, m2)
	if sp := m2.Throughput() / m1.Throughput(); sp < 1.3 {
		t.Fatalf("2-replica speedup %.2f < 1.3 (%.0f vs %.0f resp/s)",
			sp, m2.Throughput(), m1.Throughput())
	}
}

func TestClusterLengthAffinityBands(t *testing.T) {
	var reqs []*sched.Request
	for i := 0; i < 40; i++ {
		ln := 5 // short: lands on replica 0
		if i%2 == 1 {
			ln = 90 // long: lands on replica 1
		}
		reqs = append(reqs, &sched.Request{
			ID: int64(i), Arrival: float64(i) * 0.01,
			Deadline: float64(i)*0.01 + 5, Len: ln,
		})
	}
	m, err := RunCluster(clusterSystem(2, RouteLengthAffinity), reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkTerminal(t, m)
	if m.PerReplica[0] != 20 || m.PerReplica[1] != 20 {
		t.Fatalf("length bands not respected: %v", m.PerReplica)
	}
}

func TestClusterAllDownSheds(t *testing.T) {
	reqs := trace(t, 200, 1, 20, 4)
	m, err := RunCluster(clusterSystem(2, RouteRoundRobin,
		Fault{Replica: 0, At: 0.5},
		Fault{Replica: 1, At: 0.5},
	), reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkTerminal(t, m)
	if m.Shed == 0 {
		t.Fatal("arrivals after both kills must shed, not vanish")
	}
}

// TestClusterMillionRequestZeroLost is the acceptance-scale invariant run:
// ~10^6 requests against three replicas while one replica bounces (kill +
// recover) and another dies permanently mid-trace. Every request must
// reach a terminal state, failovers must actually happen, and no request
// may shed while a replica remains alive.
func TestClusterMillionRequestZeroLost(t *testing.T) {
	const rate = 1200
	duration := 1_000_000.0 / rate
	reqs := trace(t, rate, duration, 20, 7)
	if len(reqs) < 900_000 {
		t.Fatalf("trace too small for a million-request run: %d", len(reqs))
	}
	m, err := RunCluster(clusterSystem(3, RouteLeastLoaded,
		Fault{Replica: 1, At: duration * 0.25, RecoverAt: duration * 0.5},
		Fault{Replica: 2, At: duration * 0.75},
	), reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkTerminal(t, m)
	if m.Shed != 0 {
		t.Fatalf("shed %d with a live replica at all times", m.Shed)
	}
	if m.Failovers == 0 {
		t.Fatal("kills with queued work must fail over")
	}
	if m.PerReplica[2] >= m.PerReplica[0] {
		t.Fatalf("permanently killed replica served %d >= survivor's %d",
			m.PerReplica[2], m.PerReplica[0])
	}
	if m.Scheduled == 0 || m.Throughput() == 0 {
		t.Fatalf("degenerate run: %+v", m.Metrics)
	}
}
