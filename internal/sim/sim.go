// Package sim is the discrete-event serving simulator behind the paper's
// throughput and utility experiments (Figs. 9–12, 15–16). It replays a
// request trace against a (scheduler, batching scheme) pair: at every
// engine slot the scheduler selects requests from the pending pool, the
// batcher lays them out under its scheme, and the cost model charges the
// batch its simulated execution time, which advances the clock. Requests
// count toward utility and throughput when they are scheduled by their
// deadline (Eq. 9/12); requests whose deadlines pass while queued expire.
//
// The mechanism that produces the paper's saturation behaviour falls out
// naturally: schemes with more padding redundancy take longer per batch,
// serve fewer requests per second, grow their queues, and lose utility to
// deadline expiry at lower arrival rates.
package sim

import (
	"fmt"
	"sort"
	"time"

	"tcb/internal/batch"
	"tcb/internal/cost"
	"tcb/internal/sched"
	"tcb/internal/stats"
)

// System describes one serving configuration under test.
type System struct {
	Name      string
	Scheduler sched.Scheduler
	Scheme    batch.Scheme
	B         int // batch rows (scheduler capacity per slot)
	L         int // row capacity in tokens
	Cost      cost.Params
	// TurboOverhead is the DP overhead (token-equivalents) for the Turbo
	// scheme's split; ignored otherwise. Zero uses a sensible default
	// derived from the cost params.
	TurboOverhead float64
	// EarlyCleaning enables §4.2.2's optimization for SlottedConcat: the
	// next batch's data loading overlaps the current batch's decode tail
	// once the first slot frees, reducing effective batch time by
	// Cost.OverlapSavings. Ignored for other schemes (they cannot free
	// per-request memory mid-batch).
	EarlyCleaning bool
	// Devices is the number of identical accelerators; each scheduler
	// decision is dispatched to the earliest-free device. 0 means 1.
	// This models the multi-GPU scale-out a production deployment of TCB
	// would add (the paper evaluates a single V100).
	Devices int
	// Fair enables the weighted-fair candidate window: pending requests
	// are offered to the (tenant-blind) scheduler in WFQ virtual-finish
	// order, truncated to FairWindow, so one tenant's flood cannot
	// monopolize the batch. Off preserves the original pool byte-for-byte.
	Fair bool
	// FairWindow caps the fair candidate pool; 0 derives 4×B (min 16).
	// Ignored unless Fair.
	FairWindow int
	// FairWeights maps tenant name → WFQ weight; absent tenants weigh 1.
	// Ignored unless Fair.
	FairWeights map[string]float64
	// PrefixCache models a prefix-sharing KV cache in front of the engine:
	// the first batch to encode a request naming a PrefixID pays full price
	// and makes that prefix resident; requests naming the same PrefixID in
	// *later* batches are hits whose batch is discounted by
	// Cost.PrefixSavings(PrefixLen). Residency follows the engine's
	// post-encode freeze — same-batch siblings of the first encoder do not
	// hit — and is unbounded (the byte-budgeted eviction of the live cache
	// is not modelled). Requests without a PrefixID are untouched, and with
	// PrefixCache off the simulation is byte-identical to before the cache
	// existed. The cluster simulator keeps one residency set per replica,
	// cleared on kill and recovery, matching the live cluster's per-engine
	// caches.
	PrefixCache bool
}

// Validate reports configuration problems.
func (s System) Validate() error {
	if s.Scheduler == nil {
		return fmt.Errorf("sim: %s has no scheduler", s.Name)
	}
	if s.B <= 0 || s.L <= 0 {
		return fmt.Errorf("sim: %s has B=%d L=%d", s.Name, s.B, s.L)
	}
	return s.Cost.Validate()
}

// Metrics aggregates one simulation run.
type Metrics struct {
	System       string
	Generated    int     // requests in the trace
	Scheduled    int     // requests scheduled by their deadline
	Expired      int     // requests that died in the queue
	Utility      float64 // Σ 1/lₙ over scheduled requests (Eq. 9)
	SimSeconds   float64 // simulated wall clock at the end of the run
	Batches      int     // engine launches (sub-batches included)
	BusySeconds  float64 // simulated seconds the engine computed
	UsedTokens   int64
	PaddedTokens int64
	// SchedulerWall accumulates *real* wall-clock spent inside
	// Scheduler.Schedule, for the Fig. 16 overhead experiment.
	SchedulerWall time.Duration
	SchedulerRuns int
	// Latency of scheduled requests (completion − arrival), simulated.
	Latency stats.Sample
	// Backlog samples the pending-queue depth at every scheduling
	// decision; its growth past saturation is the mechanism behind the
	// paper's flattening throughput curves.
	Backlog stats.Running
	// Tenants tallies terminal outcomes per tenant (untagged requests fold
	// into the default tenant). Populated whether or not System.Fair is on,
	// so fairness can be measured with and without enforcement.
	Tenants map[string]*TenantMetrics
	// Prefix-cache counters (System.PrefixCache). Hits and misses count only
	// scheduled requests that declare a PrefixID; PrefixTokensSaved is
	// Σ PrefixLen over hits and PrefixSecondsSaved the total batch-time
	// discount applied, so Throughput with and without PrefixCache isolates
	// the cache's contribution on an identical trace.
	PrefixHits         int
	PrefixMisses       int
	PrefixTokensSaved  int64
	PrefixSecondsSaved float64
}

// PrefixHitRate returns hits / (hits + misses), 0 when no request declared
// a prefix.
func (m *Metrics) PrefixHitRate() float64 {
	total := m.PrefixHits + m.PrefixMisses
	if total == 0 {
		return 0
	}
	return float64(m.PrefixHits) / float64(total)
}

// Throughput returns scheduled responses per simulated second.
func (m *Metrics) Throughput() float64 {
	if m.SimSeconds == 0 {
		return 0
	}
	return float64(m.Scheduled) / m.SimSeconds
}

// Utilization returns the fraction of processed tokens that were real.
func (m *Metrics) Utilization() float64 {
	total := m.UsedTokens + m.PaddedTokens
	if total == 0 {
		return 1
	}
	return float64(m.UsedTokens) / float64(total)
}

// Run simulates sys over the trace (sorted by arrival) and returns metrics.
func Run(sys System, trace []*sched.Request) (*Metrics, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	reqs := append([]*sched.Request(nil), trace...)
	sort.SliceStable(reqs, func(a, b int) bool { return reqs[a].Arrival < reqs[b].Arrival })

	m := &Metrics{System: sys.Name, Generated: len(reqs)}
	for _, r := range reqs {
		m.tenant(r).Generated++
	}
	fw := newSimWFQ(sys)
	var prefixSeen map[int64]bool
	if sys.PrefixCache {
		prefixSeen = make(map[int64]bool)
	}
	var pool []*sched.Request
	next := 0 // next arrival index
	now := 0.0

	devices := sys.Devices
	if devices <= 0 {
		devices = 1
	}
	// deviceFree[d] is the simulated time device d finishes its batch.
	deviceFree := make([]float64, devices)

	for {
		// Decisions happen when a device is free; jump to that moment.
		dev := 0
		for d := 1; d < devices; d++ {
			if deviceFree[d] < deviceFree[dev] {
				dev = d
			}
		}
		if deviceFree[dev] > now {
			now = deviceFree[dev]
		}
		// Admit arrivals up to the current time.
		for next < len(reqs) && reqs[next].Arrival <= now {
			pool = append(pool, reqs[next])
			fw.admit(reqs[next])
			next++
		}
		alive, expired, _ := sched.Expire(pool, now)
		m.Expired += len(expired)
		for _, r := range expired {
			m.tenant(r).Expired++
		}
		fw.expire(expired)
		pool = alive
		if len(pool) == 0 {
			if next >= len(reqs) {
				break // drained
			}
			now = reqs[next].Arrival // idle-skip to the next arrival
			continue
		}

		m.Backlog.Add(float64(len(pool)))

		// Scheduling decision (real wall time recorded for Fig. 16). Under
		// Fair the scheduler sees the WFQ window instead of the raw pool.
		cands := fw.candidates(pool)
		t0 := time.Now()
		dec := sys.Scheduler.Schedule(now, cands, sys.B, sys.L)
		m.SchedulerWall += time.Since(t0)
		m.SchedulerRuns++

		chosen := dec.Chosen()
		if len(chosen) == 0 {
			// The scheduler refused everything pending (requests longer
			// than L, or longer than the slot size under a slotted
			// policy). Advance time until the next arrival or the
			// earliest refusal's deadline so the refused requests expire
			// instead of livelocking the loop.
			earliest := pool[0].Deadline
			for _, r := range pool[1:] {
				if r.Deadline < earliest {
					earliest = r.Deadline
				}
			}
			advanceTo := earliest + 1e-9
			if next < len(reqs) && reqs[next].Arrival < advanceTo {
				advanceTo = reqs[next].Arrival
			}
			now = advanceTo
			continue
		}

		elapsed, used, padded, launches := executeDecision(sys, dec)
		elapsed = m.applyPrefixDiscount(sys.Cost, chosen, prefixSeen, elapsed)
		m.Batches += launches
		m.BusySeconds += elapsed
		m.UsedTokens += int64(used)
		m.PaddedTokens += int64(padded)

		// Scheduled requests succeed (they were packed before deadline).
		for _, r := range chosen {
			m.Scheduled++
			m.Utility += r.Utility()
			m.Latency.Add(now + elapsed - r.Arrival)
			tm := m.tenant(r)
			tm.Scheduled++
			tm.Utility += r.Utility()
		}
		fw.dispatched(chosen)
		chosenSet := make(map[int64]bool, len(chosen))
		for _, r := range chosen {
			chosenSet[r.ID] = true
		}
		var keep []*sched.Request
		for _, r := range pool {
			if !chosenSet[r.ID] {
				keep = append(keep, r)
			}
		}
		pool = keep
		// The chosen device is busy until the batch completes; the next
		// decision happens when the earliest device frees (top of loop).
		deviceFree[dev] = now + elapsed
	}
	// The run ends when the last busy device finishes.
	for _, f := range deviceFree {
		if f > now {
			now = f
		}
	}
	m.SimSeconds = now
	return m, nil
}

// applyPrefixDiscount classifies the chosen requests against the residency
// set (nil = caching off), tallies hits and misses, and returns the batch's
// elapsed seconds with the prefix-cache savings subtracted. New prefixes
// become resident only *after* the whole batch is classified — a prefix is
// reusable from the batch after the one that first encoded it, matching the
// engine's post-encode freeze — so same-batch siblings of a fresh prefix
// all pay full price.
func (m *Metrics) applyPrefixDiscount(p cost.Params, chosen []*sched.Request, seen map[int64]bool, elapsed float64) float64 {
	if seen == nil {
		return elapsed
	}
	var saved float64
	var fresh []int64
	for _, r := range chosen {
		if r.PrefixID == 0 || r.PrefixLen <= 0 {
			continue
		}
		if seen[r.PrefixID] {
			m.PrefixHits++
			m.PrefixTokensSaved += int64(r.PrefixLen)
			saved += p.PrefixSavings(r.PrefixLen)
		} else {
			m.PrefixMisses++
			fresh = append(fresh, r.PrefixID)
		}
	}
	for _, id := range fresh {
		seen[id] = true
	}
	if saved > elapsed {
		saved = elapsed // never discount below free (defensive; encode cost bounds it)
	}
	m.PrefixSecondsSaved += saved
	return elapsed - saved
}

// executeDecision lays the decision out under the system's scheme and
// returns (simulated seconds, used tokens, padded tokens, launches).
func executeDecision(sys System, dec sched.Decision) (secs float64, used, padded, launches int) {
	items := make([]batch.Item, 0, len(dec.Chosen()))
	for _, r := range dec.Chosen() {
		items = append(items, batch.Item{ID: r.ID, Len: r.Len})
	}
	switch sys.Scheme {
	case batch.Naive:
		// The scheduled set is processed in consecutive naive launches of
		// at most B single-request rows each.
		rest := items
		for len(rest) > 0 {
			var b *batch.Batch
			b, rest = batch.PackNaive(rest, sys.B, sys.L)
			if b.NumItems() == 0 {
				break // only unservable leftovers
			}
			secs += sys.Cost.BatchTime(b)
			used += b.UsedTokens()
			padded += b.PaddedTokens()
			launches++
		}
	case batch.Turbo:
		overhead := sys.TurboOverhead
		if overhead == 0 && sys.Cost.PerTokenSeconds > 0 {
			// Express the launch overhead in padded-token equivalents so
			// the DP trades padding against launches consistently.
			overhead = sys.Cost.PerBatchSeconds / sys.Cost.PerTokenSeconds
		}
		plan, _ := batch.PackTurbo(items, batch.TurboParams{
			MaxRows: sys.B, MaxLen: sys.L, Overhead: overhead,
		})
		for _, b := range plan {
			secs += sys.Cost.BatchTime(b)
			used += b.UsedTokens()
			padded += b.PaddedTokens()
			launches++
		}
	case batch.SlottedConcat:
		b := decisionToBatch(dec, sys.L, dec.SlotSize)
		secs = sys.Cost.BatchTime(b)
		if sys.EarlyCleaning {
			secs -= sys.Cost.OverlapSavings(b)
		}
		used = b.UsedTokens()
		padded = b.SlottedTokens() - b.UsedTokens()
		launches = 1
	default: // batch.Concat
		b := decisionToBatch(dec, sys.L, 0)
		secs = sys.Cost.BatchTime(b)
		used = b.UsedTokens()
		padded = b.PaddedTokens()
		launches = 1
	}
	return secs, used, padded, launches
}

// decisionToBatch converts the scheduler's per-row assignment directly
// into a batch layout (the scheduler already respected row capacities).
func decisionToBatch(dec sched.Decision, L, slotSize int) *batch.Batch {
	scheme := batch.Concat
	if slotSize > 0 {
		scheme = batch.SlottedConcat
	}
	b := &batch.Batch{Scheme: scheme, SlotSize: slotSize}
	for _, row := range dec.Rows {
		if len(row) == 0 {
			continue
		}
		r := batch.Row{PadTo: L}
		for _, req := range row {
			r.Items = append(r.Items, batch.Item{ID: req.ID, Len: req.Len})
		}
		b.Rows = append(b.Rows, r)
	}
	return b
}
