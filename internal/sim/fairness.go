package sim

import (
	"sort"

	"tcb/internal/fair"
	"tcb/internal/sched"
)

// TenantMetrics is one tenant's terminal accounting in a simulation run.
type TenantMetrics struct {
	Generated int     // requests in the trace
	Scheduled int     // scheduled by deadline (goodput)
	Expired   int     // died in a queue
	Shed      int     // refused with no live replica (cluster runs)
	Utility   float64 // Σ utility over scheduled requests
}

// tenantName normalizes a request's tenant for accounting.
func tenantName(r *sched.Request) string {
	if r.Tenant == "" {
		return fair.DefaultTenant
	}
	return r.Tenant
}

// tenant returns (creating) the request's tenant tally.
func (m *Metrics) tenant(r *sched.Request) *TenantMetrics {
	if m.Tenants == nil {
		m.Tenants = make(map[string]*TenantMetrics)
	}
	name := tenantName(r)
	tm := m.Tenants[name]
	if tm == nil {
		tm = &TenantMetrics{}
		m.Tenants[name] = tm
	}
	return tm
}

// JainGoodput is Jain's fairness index over per-tenant scheduled counts
// (1 = perfectly even split; 1/n = one tenant taking everything; 1 for
// untagged or empty runs).
func (m *Metrics) JainGoodput() float64 {
	if len(m.Tenants) == 0 {
		return 1
	}
	goodput := make(map[string]int, len(m.Tenants))
	for name, tm := range m.Tenants {
		goodput[name] = tm.Scheduled
	}
	return fair.JainIndexMap(goodput)
}

// simWFQ is Run's fairness state: the WFQ plus each pending request's
// stamp. Nil when System.Fair is off — every fair-off code path in Run is
// the pre-fairness code untouched, which is what the bitwise escape-hatch
// test pins.
type simWFQ struct {
	wfq    *fair.WFQ
	stamps map[int64]float64
	window int
}

func newSimWFQ(sys System) *simWFQ {
	if !sys.Fair {
		return nil
	}
	window := sys.FairWindow
	if window <= 0 {
		window = 4 * sys.B
		if window < 16 {
			window = 16
		}
	}
	var weight func(string) float64
	if sys.FairWeights != nil {
		weight = func(name string) float64 {
			if w, ok := sys.FairWeights[name]; ok && w > 0 {
				return w
			}
			return 1
		}
	}
	return &simWFQ{
		wfq:    fair.NewWFQ(nil, weight),
		stamps: make(map[int64]float64),
		window: window,
	}
}

// admit stamps a request entering the pending pool.
func (f *simWFQ) admit(r *sched.Request) {
	if f == nil {
		return
	}
	f.stamps[r.ID] = f.wfq.Stamp(tenantName(r), r.Len)
}

// expire releases the stamps of requests that died in the queue.
func (f *simWFQ) expire(expired []*sched.Request) {
	if f == nil {
		return
	}
	for _, r := range expired {
		f.wfq.Abandoned(tenantName(r))
		delete(f.stamps, r.ID)
	}
}

// candidates returns the scheduler's view of the pool: WFQ virtual-finish
// order, truncated to the fair window. The pool itself is left untouched.
func (f *simWFQ) candidates(pool []*sched.Request) []*sched.Request {
	if f == nil {
		return pool
	}
	cands := append([]*sched.Request(nil), pool...)
	sort.SliceStable(cands, func(a, b int) bool {
		fa, fb := f.stamps[cands[a].ID], f.stamps[cands[b].ID]
		if fa != fb {
			return fa < fb
		}
		return cands[a].ID < cands[b].ID
	})
	if len(cands) > f.window {
		cands = cands[:f.window]
	}
	return cands
}

// dispatched advances the virtual clock past the chosen requests' stamps.
func (f *simWFQ) dispatched(chosen []*sched.Request) {
	if f == nil {
		return
	}
	for _, r := range chosen {
		f.wfq.Dispatched(tenantName(r), f.stamps[r.ID])
		delete(f.stamps, r.ID)
	}
}
