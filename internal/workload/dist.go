package workload

import (
	"fmt"
	"math"

	"tcb/internal/rng"
	"tcb/internal/sched"
)

// LengthDist draws request lengths. The paper's §6 uses a truncated
// normal; its motivation (§1) points at corpora whose lengths are "highly
// variable" (ParaCrawl, GLUE's DIA), which the other distributions here
// model synthetically.
type LengthDist interface {
	// Sample returns a length in [min, max].
	Sample(src *rng.Source) int
	// Name identifies the distribution in experiment output.
	Name() string
}

// NormalLengths is the §6.2.1 distribution: truncated N(mean, variance).
type NormalLengths struct {
	Mean, Variance float64
	Min, Max       int
}

// Sample implements LengthDist.
func (d NormalLengths) Sample(src *rng.Source) int {
	return src.TruncatedNormalInt(d.Mean, math.Sqrt(d.Variance), d.Min, d.Max)
}

// Name implements LengthDist.
func (d NormalLengths) Name() string {
	return fmt.Sprintf("normal(μ=%g,σ²=%g)", d.Mean, d.Variance)
}

// BimodalLengths mixes two truncated normals — the chat-vs-paragraph mix
// translation services see: mostly short requests with a heavy cluster of
// long ones. TurboBatching's similar-length grouping handles each mode,
// but the modes force either separate small launches or huge padding.
type BimodalLengths struct {
	Low, High    NormalLengths
	HighFraction float64 // probability of drawing from High
}

// Sample implements LengthDist.
func (d BimodalLengths) Sample(src *rng.Source) int {
	if src.Float64() < d.HighFraction {
		return d.High.Sample(src)
	}
	return d.Low.Sample(src)
}

// Name implements LengthDist.
func (d BimodalLengths) Name() string {
	return fmt.Sprintf("bimodal(%g@%s,%s)", d.HighFraction, d.High.Name(), d.Low.Name())
}

// LogNormalLengths is a heavy-tailed distribution (web-scraped corpora):
// exp(N(mu, sigma²)) clamped to [Min, Max].
type LogNormalLengths struct {
	Mu, Sigma float64
	Min, Max  int
}

// Sample implements LengthDist.
func (d LogNormalLengths) Sample(src *rng.Source) int {
	v := int(math.Round(math.Exp(src.Normal(d.Mu, d.Sigma))))
	if v < d.Min {
		return d.Min
	}
	if v > d.Max {
		return d.Max
	}
	return v
}

// Name implements LengthDist.
func (d LogNormalLengths) Name() string {
	return fmt.Sprintf("lognormal(μ=%g,σ=%g)", d.Mu, d.Sigma)
}

// EmpiricalLengths samples from an explicit histogram (replaying a real
// corpus's measured length profile). Weights need not be normalized.
type EmpiricalLengths struct {
	Lengths []int
	Weights []float64
	cum     []float64
	total   float64
}

// NewEmpiricalLengths validates and precomputes the sampler.
func NewEmpiricalLengths(lengths []int, weights []float64) (*EmpiricalLengths, error) {
	if len(lengths) == 0 || len(lengths) != len(weights) {
		return nil, fmt.Errorf("workload: %d lengths vs %d weights", len(lengths), len(weights))
	}
	e := &EmpiricalLengths{Lengths: lengths, Weights: weights}
	for i, w := range weights {
		if w < 0 || lengths[i] <= 0 {
			return nil, fmt.Errorf("workload: invalid bin %d (len %d, weight %g)", i, lengths[i], w)
		}
		e.total += w
		e.cum = append(e.cum, e.total)
	}
	if e.total == 0 {
		return nil, fmt.Errorf("workload: all weights zero")
	}
	return e, nil
}

// Sample implements LengthDist.
func (e *EmpiricalLengths) Sample(src *rng.Source) int {
	u := src.Float64() * e.total
	lo, hi := 0, len(e.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if e.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return e.Lengths[lo]
}

// Name implements LengthDist.
func (e *EmpiricalLengths) Name() string {
	return fmt.Sprintf("empirical(%d bins)", len(e.Lengths))
}

// GenerateWithDist is Generate with an arbitrary length distribution.
// spec's MeanLen/VarLen are ignored; its Min/Max still bound (clamp) the
// samples so downstream capacity checks hold.
func GenerateWithDist(spec Spec, dist LengthDist) ([]*sched.Request, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if dist == nil {
		return nil, fmt.Errorf("workload: nil length distribution")
	}
	src := rng.New(spec.Seed)
	psrc := spec.prefixSource()
	var out []*sched.Request
	now := 0.0
	id := int64(1)
	for {
		now += src.Exp(spec.Rate)
		if now >= spec.Duration {
			break
		}
		ln := dist.Sample(src)
		if ln < spec.MinLen {
			ln = spec.MinLen
		}
		if ln > spec.MaxLen {
			ln = spec.MaxLen
		}
		off := spec.DeadlineMin + src.Float64()*(spec.DeadlineMax-spec.DeadlineMin)
		r := &sched.Request{
			ID:       id,
			Arrival:  now,
			Deadline: now + off,
			Len:      ln,
			Tenant:   spec.Tenant,
		}
		spec.applyPrefix(psrc, r)
		out = append(out, r)
		id++
	}
	return out, nil
}
