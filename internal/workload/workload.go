// Package workload generates the synthetic request traces the paper's
// evaluation uses (§6.2.1): request lengths drawn from a truncated normal
// distribution (3–100 tokens, configurable mean and variance) arriving as
// a Poisson process at a configurable rate, each with a response deadline.
// Traces are deterministic given a seed and can be saved/loaded as JSON so
// experiments replay bit-identically.
package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"tcb/internal/rng"
	"tcb/internal/sched"
)

// Spec describes a synthetic workload.
type Spec struct {
	Rate     float64 `json:"rate"`     // mean arrival rate, requests/second (Poisson)
	Duration float64 `json:"duration"` // trace length in seconds
	MinLen   int     `json:"min_len"`  // shortest request (paper: 3)
	MaxLen   int     `json:"max_len"`  // longest request (paper: 100)
	MeanLen  float64 `json:"mean_len"` // normal mean (paper: 20)
	VarLen   float64 `json:"var_len"`  // normal variance (paper: 20 or 100)
	// Deadline offsets are uniform in [DeadlineMin, DeadlineMax] seconds
	// after arrival. The paper does not publish its deadline distribution;
	// the defaults (0.2–1.0 s) put deadlines at a few batch-times, which
	// makes deadline pressure matter without starving every scheduler.
	DeadlineMin float64 `json:"deadline_min"`
	DeadlineMax float64 `json:"deadline_max"`
	Seed        uint64  `json:"seed"`
	// Tenant tags every generated request with a tenant name (multi-tenant
	// mixes stitch several single-tenant specs together; see GenerateMix).
	// Empty means untagged — the fairness layer's default tenant.
	Tenant string `json:"tenant,omitempty"`
	// PrefixPool, PrefixReuse and PrefixLen add a shared-prompt-prefix
	// dimension for prefix-sharing KV cache experiments: with PrefixPool > 0
	// each request independently reuses one of PrefixPool shared prefixes
	// with probability PrefixReuse. A reusing request carries
	// PrefixID ∈ [1, PrefixPool] and a PrefixLen-token declared prefix, and
	// its total length is PrefixLen + the drawn suffix length (the normal
	// draw keeps its meaning: tokens unique to the request). Prefix draws
	// come from an independent rng stream derived from Seed, so the base
	// trace — arrivals, deadlines, suffix lengths — is bit-identical whether
	// the dimension is on or off. Streams in a GenerateMix share the PrefixID
	// space — the "same system prompt across tenants" case; give streams
	// disjoint pools by construction if isolation is wanted.
	PrefixPool  int     `json:"prefix_pool,omitempty"`
	PrefixReuse float64 `json:"prefix_reuse,omitempty"`
	PrefixLen   int     `json:"prefix_len,omitempty"`
}

// PaperSpec returns §6.2.1's workload: lengths 3–100, mean 20, variance 20,
// Poisson arrivals at the given rate.
func PaperSpec(rate, duration float64, seed uint64) Spec {
	return Spec{
		Rate: rate, Duration: duration,
		MinLen: 3, MaxLen: 100, MeanLen: 20, VarLen: 20,
		DeadlineMin: 0.2, DeadlineMax: 1.0,
		Seed: seed,
	}
}

// Validate reports inconsistent parameters.
func (s Spec) Validate() error {
	switch {
	case s.Rate <= 0:
		return fmt.Errorf("workload: rate %g must be positive", s.Rate)
	case s.Duration <= 0:
		return fmt.Errorf("workload: duration %g must be positive", s.Duration)
	case s.MinLen <= 0 || s.MaxLen < s.MinLen:
		return fmt.Errorf("workload: length range [%d, %d] invalid", s.MinLen, s.MaxLen)
	case s.VarLen < 0:
		return fmt.Errorf("workload: variance %g negative", s.VarLen)
	case s.DeadlineMin < 0 || s.DeadlineMax < s.DeadlineMin:
		return fmt.Errorf("workload: deadline range [%g, %g] invalid", s.DeadlineMin, s.DeadlineMax)
	case s.PrefixPool < 0:
		return fmt.Errorf("workload: prefix pool %d negative", s.PrefixPool)
	case s.PrefixReuse < 0 || s.PrefixReuse > 1:
		return fmt.Errorf("workload: prefix reuse %g outside [0, 1]", s.PrefixReuse)
	case s.PrefixPool > 0 && s.PrefixLen <= 0:
		return fmt.Errorf("workload: prefix pool %d needs a positive prefix length, got %d", s.PrefixPool, s.PrefixLen)
	}
	return nil
}

// Generate produces the request trace for spec, sorted by arrival time.
// IDs are assigned sequentially from 1.
func Generate(spec Spec) ([]*sched.Request, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(spec.Seed)
	psrc := spec.prefixSource()
	stddev := math.Sqrt(spec.VarLen)
	var out []*sched.Request
	now := 0.0
	id := int64(1)
	for {
		now += src.Exp(spec.Rate)
		if now >= spec.Duration {
			break
		}
		ln := src.TruncatedNormalInt(spec.MeanLen, stddev, spec.MinLen, spec.MaxLen)
		off := spec.DeadlineMin + src.Float64()*(spec.DeadlineMax-spec.DeadlineMin)
		r := &sched.Request{
			ID:       id,
			Arrival:  now,
			Deadline: now + off,
			Len:      ln,
			Tenant:   spec.Tenant,
		}
		spec.applyPrefix(psrc, r)
		out = append(out, r)
		id++
	}
	return out, nil
}

// prefixSeedSalt decorrelates the prefix stream from the main draw stream
// derived from the same Seed.
const prefixSeedSalt = 0x9E3779B97F4A7C15

// prefixSource returns the generator for the shared-prefix dimension: an
// independent stream derived from Seed, nil when the dimension is off. A
// separate stream means the base trace — arrivals, deadlines, suffix
// lengths — is bit-identical whether or not prefixes are drawn, so prefix
// experiments A/B against the exact workload they would run without them.
func (s Spec) prefixSource() *rng.Source {
	if s.PrefixPool <= 0 {
		return nil
	}
	return rng.New(s.Seed ^ prefixSeedSalt)
}

// applyPrefix draws the shared-prefix dimension for one request from the
// dedicated stream (nil = dimension off).
func (s Spec) applyPrefix(psrc *rng.Source, r *sched.Request) {
	if psrc == nil || psrc.Float64() >= s.PrefixReuse {
		return
	}
	r.PrefixID = int64(1 + psrc.Intn(s.PrefixPool))
	r.PrefixLen = s.PrefixLen
	r.Len += s.PrefixLen
}

// traceFile is the JSON on-disk representation.
type traceFile struct {
	Spec     *Spec           `json:"spec,omitempty"`
	Requests []traceFileItem `json:"requests"`
}

type traceFileItem struct {
	ID        int64   `json:"id"`
	Arrival   float64 `json:"arrival"`
	Deadline  float64 `json:"deadline"`
	Len       int     `json:"len"`
	Weight    float64 `json:"weight,omitempty"`
	Tenant    string  `json:"tenant,omitempty"`
	PrefixLen int     `json:"prefix_len,omitempty"`
	PrefixID  int64   `json:"prefix_id,omitempty"`
}

// Save writes a trace (and optionally the spec that produced it) as JSON.
func Save(w io.Writer, spec *Spec, reqs []*sched.Request) error {
	tf := traceFile{Spec: spec}
	for _, r := range reqs {
		tf.Requests = append(tf.Requests, traceFileItem{
			ID: r.ID, Arrival: r.Arrival, Deadline: r.Deadline, Len: r.Len,
			Weight: r.Weight, Tenant: r.Tenant,
			PrefixLen: r.PrefixLen, PrefixID: r.PrefixID,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tf)
}

// Load reads a JSON trace and validates every request.
func Load(r io.Reader) (*Spec, []*sched.Request, error) {
	var tf traceFile
	if err := json.NewDecoder(r).Decode(&tf); err != nil {
		return nil, nil, fmt.Errorf("workload: decode trace: %w", err)
	}
	var out []*sched.Request
	for i, it := range tf.Requests {
		req := &sched.Request{
			ID: it.ID, Arrival: it.Arrival, Deadline: it.Deadline, Len: it.Len,
			Weight: it.Weight, Tenant: it.Tenant,
			PrefixLen: it.PrefixLen, PrefixID: it.PrefixID,
		}
		if err := req.Validate(); err != nil {
			return nil, nil, fmt.Errorf("workload: request %d: %w", i, err)
		}
		out = append(out, req)
	}
	return tf.Spec, out, nil
}

// SaveFile writes a trace to path.
func SaveFile(path string, spec *Spec, reqs []*sched.Request) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Save(f, spec, reqs)
}

// LoadFile reads a trace from path.
func LoadFile(path string) (*Spec, []*sched.Request, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Load(f)
}
