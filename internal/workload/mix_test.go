package workload

import (
	"bytes"
	"testing"
)

func TestGenerateMixMergedSortedAndTagged(t *testing.T) {
	streams := AdversarialMix(50, 2, 42, 3, 10)
	reqs, err := GenerateMix(streams)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 {
		t.Fatal("empty mix trace")
	}
	perTenant := map[string]int{}
	for i, r := range reqs {
		if r.ID != int64(i+1) {
			t.Fatalf("IDs not sequential at %d: %d", i, r.ID)
		}
		if i > 0 && reqs[i-1].Arrival > r.Arrival {
			t.Fatalf("arrivals out of order at %d", i)
		}
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		perTenant[r.Tenant]++
	}
	if len(perTenant) != 4 {
		t.Fatalf("tenants = %v, want 3 good + flooder", perTenant)
	}
	// The flooder at 10× base rate must dominate the volume.
	good := perTenant["good0"] + perTenant["good1"] + perTenant["good2"]
	if perTenant["flooder"] < 2*good {
		t.Fatalf("flooder %d vs good %d — not adversarial", perTenant["flooder"], good)
	}
	// Determinism: regenerating yields the identical trace.
	again, err := GenerateMix(AdversarialMix(50, 2, 42, 3, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(reqs) {
		t.Fatalf("regeneration changed count: %d != %d", len(again), len(reqs))
	}
	for i := range reqs {
		if *again[i] != *reqs[i] {
			t.Fatalf("regeneration changed request %d", i)
		}
	}
}

func TestAdversarialMixBaseline(t *testing.T) {
	// floodFactor 0 omits the flooder — the no-flood baseline.
	streams := AdversarialMix(20, 1, 7, 2, 0)
	if len(streams) != 2 {
		t.Fatalf("baseline streams = %d, want 2", len(streams))
	}
	for _, s := range streams {
		if s.Spec.Tenant == "flooder" {
			t.Fatal("baseline must not contain the flooder")
		}
	}
	if _, err := GenerateMix(nil); err == nil {
		t.Fatal("empty mix must fail")
	}
}

// TestTenantTraceRoundTrip: tenant tags survive Save/Load bit-exactly.
func TestTenantTraceRoundTrip(t *testing.T) {
	reqs, err := GenerateMix(AdversarialMix(30, 1, 3, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, nil, reqs); err != nil {
		t.Fatal(err)
	}
	_, loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(reqs) {
		t.Fatalf("round trip changed count: %d != %d", len(loaded), len(reqs))
	}
	for i := range reqs {
		if *loaded[i] != *reqs[i] {
			t.Fatalf("round trip changed request %d: %+v != %+v", i, loaded[i], reqs[i])
		}
	}
}
