package workload

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
)

func TestPaperSpecValid(t *testing.T) {
	s := PaperSpec(100, 10, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.MinLen != 3 || s.MaxLen != 100 || s.MeanLen != 20 || s.VarLen != 20 {
		t.Fatalf("paper spec wrong: %+v", s)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Rate: 0, Duration: 1, MinLen: 1, MaxLen: 2},
		{Rate: 1, Duration: 0, MinLen: 1, MaxLen: 2},
		{Rate: 1, Duration: 1, MinLen: 0, MaxLen: 2},
		{Rate: 1, Duration: 1, MinLen: 5, MaxLen: 2},
		{Rate: 1, Duration: 1, MinLen: 1, MaxLen: 2, VarLen: -1},
		{Rate: 1, Duration: 1, MinLen: 1, MaxLen: 2, DeadlineMin: 2, DeadlineMax: 1},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Fatalf("spec %d should fail: %+v", i, s)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := PaperSpec(200, 5, 42)
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestGenerateStatistics(t *testing.T) {
	spec := PaperSpec(500, 20, 7)
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Poisson process: expect ~rate·duration arrivals within ~5%.
	want := spec.Rate * spec.Duration
	if got := float64(len(reqs)); math.Abs(got-want) > 0.05*want {
		t.Fatalf("arrivals = %v, want ~%v", got, want)
	}
	// Length moments close to the truncated normal's.
	var sum, sq float64
	for _, r := range reqs {
		if r.Len < spec.MinLen || r.Len > spec.MaxLen {
			t.Fatalf("length %d out of range", r.Len)
		}
		sum += float64(r.Len)
		sq += float64(r.Len) * float64(r.Len)
	}
	mean := sum / float64(len(reqs))
	if math.Abs(mean-spec.MeanLen) > 1 {
		t.Fatalf("mean length %v, want ~%v", mean, spec.MeanLen)
	}
	variance := sq/float64(len(reqs)) - mean*mean
	if math.Abs(variance-spec.VarLen) > 0.25*spec.VarLen {
		t.Fatalf("length variance %v, want ~%v", variance, spec.VarLen)
	}
}

func TestGenerateSortedUniqueIDs(t *testing.T) {
	reqs, err := Generate(PaperSpec(300, 5, 3))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	prev := -1.0
	for _, r := range reqs {
		if r.Arrival < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = r.Arrival
		if seen[r.ID] {
			t.Fatalf("duplicate ID %d", r.ID)
		}
		seen[r.ID] = true
		if r.Deadline < r.Arrival+0.2-1e-9 || r.Deadline > r.Arrival+1.0+1e-9 {
			t.Fatalf("deadline offset out of configured range: %v", r.Deadline-r.Arrival)
		}
		if r.Validate() != nil {
			t.Fatalf("generated invalid request %+v", r)
		}
	}
}

func TestGenerateRespectsVariance(t *testing.T) {
	low, err := Generate(Spec{Rate: 500, Duration: 10, MinLen: 3, MaxLen: 100,
		MeanLen: 20, VarLen: 10, DeadlineMin: 0.5, DeadlineMax: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Generate(Spec{Rate: 500, Duration: 10, MinLen: 3, MaxLen: 100,
		MeanLen: 20, VarLen: 100, DeadlineMin: 0.5, DeadlineMax: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	variance := func(reqs []float64) float64 {
		var s, sq float64
		for _, x := range reqs {
			s += x
			sq += x * x
		}
		m := s / float64(len(reqs))
		return sq/float64(len(reqs)) - m*m
	}
	var lo, hi []float64
	for _, r := range low {
		lo = append(lo, float64(r.Len))
	}
	for _, r := range high {
		hi = append(hi, float64(r.Len))
	}
	if variance(hi) <= variance(lo) {
		t.Fatalf("variance ordering wrong: %v <= %v", variance(hi), variance(lo))
	}
}

func TestGenerateInvalidSpec(t *testing.T) {
	if _, err := Generate(Spec{}); err == nil {
		t.Fatal("zero spec should fail")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	spec := PaperSpec(100, 2, 9)
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, &spec, reqs); err != nil {
		t.Fatal(err)
	}
	gotSpec, gotReqs, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotSpec == nil || gotSpec.Rate != spec.Rate || gotSpec.Seed != spec.Seed {
		t.Fatalf("spec round trip failed: %+v", gotSpec)
	}
	if len(gotReqs) != len(reqs) {
		t.Fatalf("request count %d != %d", len(gotReqs), len(reqs))
	}
	for i := range reqs {
		if *gotReqs[i] != *reqs[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestLoadRejectsCorruptTrace(t *testing.T) {
	if _, _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("corrupt JSON should fail")
	}
	badReq := `{"requests":[{"id":1,"arrival":5,"deadline":1,"len":4}]}`
	if _, _, err := Load(bytes.NewBufferString(badReq)); err == nil {
		t.Fatal("deadline before arrival should fail validation")
	}
	badLen := `{"requests":[{"id":1,"arrival":0,"deadline":1,"len":0}]}`
	if _, _, err := Load(bytes.NewBufferString(badLen)); err == nil {
		t.Fatal("zero length should fail validation")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	spec := PaperSpec(50, 1, 11)
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(path, &spec, reqs); err != nil {
		t.Fatal(err)
	}
	_, got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("file round trip lost requests: %d != %d", len(got), len(reqs))
	}
	if _, _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file should fail")
	}
}
