package workload

import (
	"fmt"
	"sort"

	"tcb/internal/sched"
)

// TenantStream is one tenant's contribution to a multi-client mix: a
// single-tenant Spec plus an optional length distribution override. The
// Spec's Tenant field names the stream; its Seed makes the stream's draw
// independent of its siblings.
type TenantStream struct {
	Spec Spec
	// Dist overrides the Spec's truncated-normal lengths when non-nil.
	Dist LengthDist
}

// GenerateMix generates each stream independently and merges them into one
// trace sorted by arrival, with IDs reassigned sequentially (arrival order)
// so the merged trace is indistinguishable from a single generator's output
// except for the tenant tags. Deterministic given the streams' seeds.
func GenerateMix(streams []TenantStream) ([]*sched.Request, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("workload: empty mix")
	}
	var merged []*sched.Request
	for i, st := range streams {
		var (
			reqs []*sched.Request
			err  error
		)
		if st.Dist != nil {
			reqs, err = GenerateWithDist(st.Spec, st.Dist)
		} else {
			reqs, err = Generate(st.Spec)
		}
		if err != nil {
			return nil, fmt.Errorf("workload: mix stream %d (%q): %w", i, st.Spec.Tenant, err)
		}
		merged = append(merged, reqs...)
	}
	sort.SliceStable(merged, func(a, b int) bool {
		if merged[a].Arrival != merged[b].Arrival {
			return merged[a].Arrival < merged[b].Arrival
		}
		return merged[a].Tenant < merged[b].Tenant
	})
	for i, r := range merged {
		r.ID = int64(i + 1)
	}
	return merged, nil
}

// AdversarialMix is the fairness experiments' canonical workload: nGood
// well-behaved tenants ("good0", "good1", …) each running the paper
// workload at baseRate, plus one "flooder" tenant submitting the same
// request profile at floodFactor × baseRate. With floodFactor 0 the flooder
// is omitted — the no-flood baseline the goodput-ratio gate compares
// against. Each stream gets a distinct seed derived from seed.
func AdversarialMix(baseRate, duration float64, seed uint64, nGood int, floodFactor float64) []TenantStream {
	streams := make([]TenantStream, 0, nGood+1)
	for i := 0; i < nGood; i++ {
		sp := PaperSpec(baseRate, duration, seed+uint64(i)*1000003)
		sp.Tenant = fmt.Sprintf("good%d", i)
		streams = append(streams, TenantStream{Spec: sp})
	}
	if floodFactor > 0 {
		sp := PaperSpec(baseRate*floodFactor, duration, seed+uint64(nGood)*1000003)
		sp.Tenant = "flooder"
		streams = append(streams, TenantStream{Spec: sp})
	}
	return streams
}
