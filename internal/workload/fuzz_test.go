package workload

import (
	"bytes"
	"testing"
)

// FuzzLoad ensures the trace loader never panics and that anything it
// accepts round-trips losslessly. The seed corpus runs on every `go test`;
// `go test -fuzz=FuzzLoad ./internal/workload` explores further.
func FuzzLoad(f *testing.F) {
	spec := PaperSpec(50, 1, 1)
	reqs, err := Generate(spec)
	if err != nil {
		f.Fatal(err)
	}
	var good bytes.Buffer
	if err := Save(&good, &spec, reqs); err != nil {
		f.Fatal(err)
	}
	mix, err := GenerateMix(AdversarialMix(20, 0.5, 2, 2, 5))
	if err != nil {
		f.Fatal(err)
	}
	var mixed bytes.Buffer
	if err := Save(&mixed, nil, mix); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add(mixed.Bytes())
	f.Add([]byte(`{"requests":[]}`))
	f.Add([]byte(`{"requests":[{"id":1,"arrival":0,"deadline":1,"len":4,"weight":2}]}`))
	f.Add([]byte(`{"requests":[{"id":1,"arrival":0,"deadline":1,"len":4,"tenant":"alpha"}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"requests":[{"id":1,"arrival":5,"deadline":1,"len":4}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		_, loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, r := range loaded {
			if r.Validate() != nil {
				t.Fatalf("Load accepted an invalid request: %+v", r)
			}
		}
		// Accepted traces must round-trip.
		var buf bytes.Buffer
		if err := Save(&buf, nil, loaded); err != nil {
			t.Fatalf("Save of loaded trace failed: %v", err)
		}
		_, again, err := Load(&buf)
		if err != nil {
			t.Fatalf("reload failed: %v", err)
		}
		if len(again) != len(loaded) {
			t.Fatalf("round trip changed count: %d != %d", len(again), len(loaded))
		}
		for i := range loaded {
			if *again[i] != *loaded[i] {
				t.Fatalf("round trip changed request %d", i)
			}
		}
	})
}
