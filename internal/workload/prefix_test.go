package workload

import (
	"bytes"
	"testing"
)

func prefixSpec(seed uint64) Spec {
	sp := PaperSpec(300, 2, seed)
	sp.PrefixPool = 4
	sp.PrefixReuse = 0.6
	sp.PrefixLen = 25
	return sp
}

func TestPrefixDimension(t *testing.T) {
	reqs, err := Generate(prefixSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	var prefixed int
	ids := map[int64]bool{}
	for _, r := range reqs {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		if r.PrefixID == 0 {
			if r.PrefixLen != 0 {
				t.Fatalf("request %d has PrefixLen %d without a PrefixID", r.ID, r.PrefixLen)
			}
			continue
		}
		prefixed++
		ids[r.PrefixID] = true
		if r.PrefixID < 1 || r.PrefixID > 4 {
			t.Fatalf("request %d PrefixID %d outside pool", r.ID, r.PrefixID)
		}
		if r.PrefixLen != 25 {
			t.Fatalf("request %d PrefixLen = %d, want 25", r.ID, r.PrefixLen)
		}
		// Len = prefix + drawn suffix, suffix within the spec's bounds.
		if suffix := r.Len - r.PrefixLen; suffix < 3 || suffix > 100 {
			t.Fatalf("request %d suffix %d outside [3, 100]", r.ID, suffix)
		}
	}
	if prefixed == 0 || prefixed == len(reqs) {
		t.Fatalf("60%% reuse gave %d/%d prefixed requests", prefixed, len(reqs))
	}
	if len(ids) != 4 {
		t.Fatalf("pool of 4 produced %d distinct IDs", len(ids))
	}
}

// The prefix draws run strictly after the classic arrival/length/deadline
// draws, so enabling the dimension never perturbs the underlying trace:
// arrivals, deadlines and suffix lengths match the prefix-free trace of the
// same seed, request for request.
func TestPrefixPreservesDrawOrder(t *testing.T) {
	base, err := Generate(PaperSpec(300, 2, 11))
	if err != nil {
		t.Fatal(err)
	}
	pref, err := Generate(prefixSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(pref) {
		t.Fatalf("trace lengths differ: %d vs %d", len(base), len(pref))
	}
	for i := range base {
		b, p := base[i], pref[i]
		if b.Arrival != p.Arrival || b.Deadline != p.Deadline {
			t.Fatalf("request %d timing differs: (%g, %g) vs (%g, %g)",
				b.ID, b.Arrival, b.Deadline, p.Arrival, p.Deadline)
		}
		if b.Len != p.Len-p.PrefixLen {
			t.Fatalf("request %d suffix %d != base length %d", b.ID, p.Len-p.PrefixLen, b.Len)
		}
	}
}

func TestPrefixRoundTrip(t *testing.T) {
	spec := prefixSpec(5)
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, &spec, reqs); err != nil {
		t.Fatal(err)
	}
	spec2, got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if spec2.PrefixPool != spec.PrefixPool || spec2.PrefixReuse != spec.PrefixReuse || spec2.PrefixLen != spec.PrefixLen {
		t.Fatalf("spec round trip lost prefix fields: %+v", spec2)
	}
	if len(got) != len(reqs) {
		t.Fatalf("round trip lost requests: %d vs %d", len(got), len(reqs))
	}
	for i := range reqs {
		if *got[i] != *reqs[i] {
			t.Fatalf("request %d round trip mismatch:\nwant %+v\ngot  %+v", i, reqs[i], got[i])
		}
	}
}

func TestPrefixValidate(t *testing.T) {
	cases := []func(*Spec){
		func(s *Spec) { s.PrefixPool = -1 },
		func(s *Spec) { s.PrefixReuse = 1.5 },
		func(s *Spec) { s.PrefixReuse = -0.1 },
		func(s *Spec) { s.PrefixPool = 2; s.PrefixLen = 0 },
	}
	for i, mutate := range cases {
		sp := PaperSpec(100, 1, 1)
		mutate(&sp)
		if sp.Validate() == nil {
			t.Fatalf("case %d: invalid prefix spec accepted: %+v", i, sp)
		}
	}
}

// GenerateWithDist draws the same prefix dimension.
func TestPrefixWithDist(t *testing.T) {
	spec := prefixSpec(9)
	reqs, err := GenerateWithDist(spec, NormalLengths{Mean: 20, Variance: 20, Min: 3, Max: 100})
	if err != nil {
		t.Fatal(err)
	}
	var prefixed int
	for _, r := range reqs {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		if r.PrefixID != 0 {
			prefixed++
		}
	}
	if prefixed == 0 {
		t.Fatal("dist generator must draw prefixes too")
	}
}
