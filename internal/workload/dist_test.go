package workload

import (
	"math"
	"testing"
	"testing/quick"

	"tcb/internal/rng"
)

func sampleMany(t *testing.T, d LengthDist, n int, seed uint64) []int {
	t.Helper()
	src := rng.New(seed)
	out := make([]int, n)
	for i := range out {
		out[i] = d.Sample(src)
	}
	return out
}

func moments(xs []int) (mean, variance float64) {
	var s, sq float64
	for _, x := range xs {
		s += float64(x)
		sq += float64(x) * float64(x)
	}
	mean = s / float64(len(xs))
	variance = sq/float64(len(xs)) - mean*mean
	return mean, variance
}

func TestNormalLengthsMoments(t *testing.T) {
	d := NormalLengths{Mean: 20, Variance: 20, Min: 3, Max: 100}
	xs := sampleMany(t, d, 50000, 1)
	mean, variance := moments(xs)
	if math.Abs(mean-20) > 0.5 || math.Abs(variance-20) > 3 {
		t.Fatalf("moments = %v/%v", mean, variance)
	}
	if d.Name() == "" {
		t.Fatal("name required")
	}
}

func TestBimodalLengthsHasTwoModes(t *testing.T) {
	d := BimodalLengths{
		Low:          NormalLengths{Mean: 10, Variance: 4, Min: 3, Max: 100},
		High:         NormalLengths{Mean: 80, Variance: 16, Min: 3, Max: 100},
		HighFraction: 0.3,
	}
	xs := sampleMany(t, d, 50000, 2)
	var low, high int
	for _, x := range xs {
		switch {
		case x < 30:
			low++
		case x > 60:
			high++
		}
	}
	fracHigh := float64(high) / float64(len(xs))
	if math.Abs(fracHigh-0.3) > 0.02 {
		t.Fatalf("high fraction %v, want ~0.3", fracHigh)
	}
	if low == 0 || high == 0 {
		t.Fatal("both modes must appear")
	}
	// Variance of the mixture must dwarf either component's.
	_, variance := moments(xs)
	if variance < 300 {
		t.Fatalf("mixture variance %v too low", variance)
	}
	if d.Name() == "" {
		t.Fatal("name required")
	}
}

func TestLogNormalLengthsTail(t *testing.T) {
	d := LogNormalLengths{Mu: 3, Sigma: 0.6, Min: 3, Max: 400}
	xs := sampleMany(t, d, 50000, 3)
	mean, _ := moments(xs)
	// E[lognormal(3, .6)] = exp(3 + .18) ≈ 24.
	if math.Abs(mean-24) > 2 {
		t.Fatalf("mean %v, want ~24", mean)
	}
	// Heavy tail: some samples well above 3× the mean.
	tail := 0
	for _, x := range xs {
		if float64(x) > 3*mean {
			tail++
		}
	}
	if tail == 0 {
		t.Fatal("lognormal should produce tail samples")
	}
	for _, x := range xs {
		if x < 3 || x > 400 {
			t.Fatalf("clamping failed: %d", x)
		}
	}
}

func TestEmpiricalLengths(t *testing.T) {
	e, err := NewEmpiricalLengths([]int{5, 10, 50}, []float64{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	xs := sampleMany(t, e, 40000, 4)
	counts := map[int]int{}
	for _, x := range xs {
		counts[x]++
	}
	if len(counts) != 3 {
		t.Fatalf("support = %v", counts)
	}
	frac10 := float64(counts[10]) / float64(len(xs))
	if math.Abs(frac10-0.5) > 0.02 {
		t.Fatalf("P(10) = %v, want 0.5", frac10)
	}
	if e.Name() == "" {
		t.Fatal("name required")
	}
}

func TestEmpiricalLengthsValidation(t *testing.T) {
	cases := []struct {
		lens []int
		ws   []float64
	}{
		{nil, nil},
		{[]int{1}, []float64{1, 2}},
		{[]int{0}, []float64{1}},
		{[]int{5}, []float64{-1}},
		{[]int{5}, []float64{0}},
	}
	for i, c := range cases {
		if _, err := NewEmpiricalLengths(c.lens, c.ws); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestGenerateWithDist(t *testing.T) {
	spec := PaperSpec(200, 3, 5)
	d := BimodalLengths{
		Low:          NormalLengths{Mean: 10, Variance: 4, Min: 3, Max: 100},
		High:         NormalLengths{Mean: 80, Variance: 16, Min: 3, Max: 100},
		HighFraction: 0.25,
	}
	reqs, err := GenerateWithDist(spec, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 {
		t.Fatal("no requests generated")
	}
	for _, r := range reqs {
		if r.Len < spec.MinLen || r.Len > spec.MaxLen {
			t.Fatalf("length %d escapes spec bounds", r.Len)
		}
		if r.Validate() != nil {
			t.Fatalf("invalid request %+v", r)
		}
	}
	// Determinism.
	again, err := GenerateWithDist(spec, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(reqs) || *again[0] != *reqs[0] {
		t.Fatal("GenerateWithDist not deterministic")
	}
}

func TestGenerateWithDistErrors(t *testing.T) {
	if _, err := GenerateWithDist(Spec{}, NormalLengths{Mean: 1, Variance: 1, Min: 1, Max: 2}); err == nil {
		t.Fatal("invalid spec should fail")
	}
	if _, err := GenerateWithDist(PaperSpec(10, 1, 1), nil); err == nil {
		t.Fatal("nil dist should fail")
	}
}

// Property: every distribution respects its own clamping bounds.
func TestDistBoundsProperty(t *testing.T) {
	f := func(seed uint32) bool {
		src := rng.New(uint64(seed))
		dists := []LengthDist{
			NormalLengths{Mean: 20, Variance: 20, Min: 3, Max: 100},
			LogNormalLengths{Mu: 3, Sigma: 1, Min: 3, Max: 100},
			BimodalLengths{
				Low:          NormalLengths{Mean: 10, Variance: 4, Min: 3, Max: 100},
				High:         NormalLengths{Mean: 90, Variance: 9, Min: 3, Max: 100},
				HighFraction: 0.5,
			},
		}
		for _, d := range dists {
			for i := 0; i < 50; i++ {
				v := d.Sample(src)
				if v < 3 || v > 100 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
