// Package rng provides deterministic, splittable pseudo-random streams and
// the distributions the TCB workload generator and experiments depend on:
// uniform, truncated normal (request lengths), exponential and Poisson
// (arrival processes).
//
// Every experiment in this repository is seeded, so paper figures regenerate
// bit-identically across runs and machines. The core generator is
// SplitMix64, which is tiny, fast, and has well-understood equidistribution
// for the stream lengths used here.
package rng

import "math"

// Source is a deterministic 64-bit pseudo-random stream.
type Source struct {
	state uint64
}

// New returns a stream seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives an independent child stream from s. The child is a pure
// function of the parent state, so splitting is itself deterministic.
func (s *Source) Split() *Source {
	// Mix the next output back through the finalizer with a distinct
	// constant so parent and child sequences decorrelate.
	v := s.Uint64()
	v ^= 0x9e3779b97f4a7c15
	v *= 0xbf58476d1ce4e5b9
	return New(v)
}

// Uint64 returns the next 64 random bits (SplitMix64).
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(s.Uint64() % uint64(n))
}

// IntRange returns a uniform integer in [lo, hi] inclusive.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Normal returns a sample from N(mean, stddev²) via Box–Muller.
func (s *Source) Normal(mean, stddev float64) float64 {
	// Reject u1 == 0 to keep Log finite.
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// TruncatedNormalInt samples an integer from N(mean, stddev²) rejected into
// [lo, hi]. This is the paper's request-length distribution ("3−100 tokens
// according to a normal distribution"). Rejection keeps the in-range shape
// exactly normal.
func (s *Source) TruncatedNormalInt(mean, stddev float64, lo, hi int) int {
	if lo > hi {
		panic("rng: TruncatedNormalInt lo > hi")
	}
	for i := 0; i < 1024; i++ {
		v := int(math.Round(s.Normal(mean, stddev)))
		if v >= lo && v <= hi {
			return v
		}
	}
	// Pathological parameters (mass almost entirely outside range):
	// fall back to clamping so callers always terminate.
	v := int(math.Round(s.Normal(mean, stddev)))
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Exp returns an exponential sample with the given rate (mean 1/rate).
// Inter-arrival gaps of a Poisson process with intensity rate are Exp(rate).
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with rate <= 0")
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -math.Log(u) / rate
}

// Poisson returns a Poisson(lambda) sample (Knuth's method for small lambda,
// normal approximation above 64 where Knuth's product underflows).
func (s *Source) Poisson(lambda float64) int {
	if lambda < 0 {
		panic("rng: Poisson with lambda < 0")
	}
	if lambda == 0 {
		return 0
	}
	if lambda > 64 {
		v := int(math.Round(s.Normal(lambda, math.Sqrt(lambda))))
		if v < 0 {
			v = 0
		}
		return v
	}
	limit := math.Exp(-lambda)
	p := 1.0
	k := 0
	for {
		p *= s.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Shuffle permutes xs uniformly at random (Fisher–Yates).
func Shuffle[T any](s *Source, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
