package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions across different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child stream must not track the parent.
	matches := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("child stream tracks parent: %d matches", matches)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a, b := New(9), New(9)
	ca, cb := a.Split(), b.Split()
	for i := 0; i < 50; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatal("Split must be deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	s := New(6)
	for i := 0; i < 1000; i++ {
		v := s.IntRange(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("IntRange(3,5) = %d", v)
		}
	}
	if v := s.IntRange(4, 4); v != 4 {
		t.Fatalf("IntRange(4,4) = %d", v)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(8)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := s.Normal(20, 4)
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-20) > 0.1 {
		t.Fatalf("normal mean %v, want ~20", mean)
	}
	if math.Abs(variance-16) > 0.5 {
		t.Fatalf("normal variance %v, want ~16", variance)
	}
}

func TestTruncatedNormalIntRange(t *testing.T) {
	s := New(9)
	for i := 0; i < 20000; i++ {
		v := s.TruncatedNormalInt(20, math.Sqrt(20), 3, 100)
		if v < 3 || v > 100 {
			t.Fatalf("length %d out of [3,100]", v)
		}
	}
}

func TestTruncatedNormalIntPathological(t *testing.T) {
	// Mass almost entirely above range: must clamp, not spin.
	s := New(10)
	v := s.TruncatedNormalInt(1e9, 1, 3, 100)
	if v != 100 {
		t.Fatalf("pathological truncation = %d, want clamp to 100", v)
	}
}

func TestExpMean(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(0.5)
	}
	if mean := sum / n; math.Abs(mean-2) > 0.05 {
		t.Fatalf("Exp(0.5) mean %v, want ~2", mean)
	}
}

func TestExpNonNegative(t *testing.T) {
	f := func(seed uint32) bool {
		return New(uint64(seed)).Exp(1.5) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, lambda := range []float64{0.5, 4, 30, 200} {
		s := New(uint64(lambda * 100))
		const n = 50000
		var sum, sq float64
		for i := 0; i < n; i++ {
			v := float64(s.Poisson(lambda))
			sum += v
			sq += v * v
		}
		mean := sum / n
		variance := sq/n - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.1 {
			t.Fatalf("Poisson(%v) mean %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.12*lambda+0.2 {
			t.Fatalf("Poisson(%v) variance %v", lambda, variance)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	if v := New(1).Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", v)
	}
}

func TestShufflePermutation(t *testing.T) {
	s := New(12)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	Shuffle(s, xs)
	seen := make(map[int]bool)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestShuffleUniformish(t *testing.T) {
	// Element 0 should land in each position roughly uniformly.
	s := New(13)
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		xs := []int{0, 1, 2, 3}
		Shuffle(s, xs)
		for pos, x := range xs {
			if x == 0 {
				counts[pos]++
			}
		}
	}
	for pos, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.25) > 0.02 {
			t.Fatalf("position %d frequency %v, want ~0.25", pos, frac)
		}
	}
}
