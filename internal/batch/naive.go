package batch

// PackNaive builds a NaiveBatching (TNB) batch: one request per row, at most
// maxRows rows, every row padded to the longest admitted request (PyTorch's
// default collation, Fig. 1a). Items longer than maxLen are skipped (the
// model cannot process them). It returns the batch and the items that did
// not fit (skipped or beyond capacity), preserving input order.
func PackNaive(items []Item, maxRows, maxLen int) (*Batch, []Item) {
	b := &Batch{Scheme: Naive}
	var rest []Item
	longest := 0
	for _, it := range items {
		switch {
		case it.Len > maxLen:
			rest = append(rest, it)
		case len(b.Rows) < maxRows:
			b.Rows = append(b.Rows, Row{Items: []Item{it}})
			if it.Len > longest {
				longest = it.Len
			}
		default:
			rest = append(rest, it)
		}
	}
	for i := range b.Rows {
		b.Rows[i].PadTo = longest
	}
	return b, rest
}
