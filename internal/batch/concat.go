package batch

import "sort"

// PackConcat builds a pure ConcatBatching (TCB) batch: items are placed in
// the given priority order into maxRows rows of capacity rowLen, each row
// filled by concatenation (Fig. 1c). An item opens a new row when it does
// not fit the current one; once all rows are open, remaining space is
// filled first-fit across rows so that a short request can still slip into
// an earlier row's tail. Items longer than rowLen are rejected.
//
// It returns the batch and the items that did not fit, preserving order.
func PackConcat(items []Item, maxRows, rowLen int) (*Batch, []Item) {
	b := &Batch{Scheme: Concat}
	var rest []Item
	used := make([]int, 0, maxRows)
	for _, it := range items {
		if it.Len > rowLen {
			rest = append(rest, it)
			continue
		}
		placed := false
		for ri := range b.Rows {
			if used[ri]+it.Len <= rowLen {
				b.Rows[ri].Items = append(b.Rows[ri].Items, it)
				used[ri] += it.Len
				placed = true
				break
			}
		}
		if !placed && len(b.Rows) < maxRows {
			b.Rows = append(b.Rows, Row{Items: []Item{it}, PadTo: rowLen})
			used = append(used, it.Len)
			placed = true
		}
		if !placed {
			rest = append(rest, it)
		}
	}
	return b, rest
}

// PackConcatFFD is PackConcat with items pre-sorted by decreasing length
// (first-fit decreasing): the classic bin-packing heuristic. This is the
// packing-order ablation's alternative; the paper's DAS feeds utility order
// (shortest first) instead.
func PackConcatFFD(items []Item, maxRows, rowLen int) (*Batch, []Item) {
	sorted := append([]Item(nil), items...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].Len > sorted[b].Len })
	return PackConcat(sorted, maxRows, rowLen)
}

// PackSlotted builds a slotted ConcatBatching batch: every row of capacity
// rowLen is divided into ⌊rowLen/slotSize⌋ slots of slotSize tokens, and
// items are concatenated within slots (never across a slot boundary,
// Fig. 4 right). Items longer than slotSize are rejected — the slot-size
// constraint §4.2.1 discusses. Placement is first-fit over all open slots
// in row-major order.
//
// It returns the batch and the unplaced items, preserving order.
func PackSlotted(items []Item, maxRows, rowLen, slotSize int) (*Batch, []Item) {
	if slotSize <= 0 || slotSize > rowLen {
		slotSize = rowLen
	}
	slotsPerRow := rowLen / slotSize
	b := &Batch{Scheme: SlottedConcat, SlotSize: slotSize}
	var rest []Item
	// slots[r][s] holds the items of slot s in row r; free tracks capacity.
	var slots [][][]Item
	var free [][]int
	openRow := func() bool {
		if len(slots) >= maxRows {
			return false
		}
		slots = append(slots, make([][]Item, slotsPerRow))
		row := make([]int, slotsPerRow)
		for i := range row {
			row[i] = slotSize
		}
		free = append(free, row)
		return true
	}
	place := func(it Item) bool {
		for ri := range free {
			for si := range free[ri] {
				if free[ri][si] >= it.Len {
					free[ri][si] -= it.Len
					slots[ri][si] = append(slots[ri][si], it)
					return true
				}
			}
		}
		return false
	}
	for _, it := range items {
		if it.Len > slotSize {
			rest = append(rest, it)
			continue
		}
		if place(it) {
			continue
		}
		if openRow() && place(it) {
			continue
		}
		rest = append(rest, it)
	}
	// Flatten rows in slot order so the row's concatenation order matches
	// the physical slot layout (Batch.occupiedSlots relies on this).
	for _, rowSlots := range slots {
		row := Row{PadTo: rowLen}
		for _, s := range rowSlots {
			row.Items = append(row.Items, s...)
		}
		b.Rows = append(b.Rows, row)
	}
	return b, rest
}

// SlotSizeFromLengths implements Algorithm 2's slot-size rule: the slot
// size is the largest length among the utility-dominant items (lines 3–4),
// so no utility-dominant request is discarded by the slot constraint.
// It returns rowLen when the set is empty.
func SlotSizeFromLengths(utilityDominant []Item, rowLen int) int {
	z := 0
	for _, it := range utilityDominant {
		if it.Len > z {
			z = it.Len
		}
	}
	if z == 0 || z > rowLen {
		return rowLen
	}
	return z
}
