// Package batch implements the three request-batching schemes the paper
// compares (Fig. 1) plus the slotted refinement (§4.2):
//
//   - Naive (TNB): one request per row, rows padded to the longest request
//     in the batch — PyTorch's default collation.
//   - Turbo (TTB): requests sorted by length and split into contiguous
//     groups by dynamic programming so that padding cost is minimal — the
//     scheme of TurboTransformers [14].
//   - Concat (TCB pure): multiple requests concatenated per row, rows
//     padded to the fixed row capacity L.
//   - SlottedConcat (TCB slotted): rows divided into fixed-size slots;
//     requests are concatenated within slots.
//
// The package is purely about *layout*: deciding which tokens land where
// and accounting for the padding and attention-score redundancy each scheme
// implies. Executing a layout on the model is the engine's job; charging it
// simulated time is the cost package's job.
package batch

import "fmt"

// Scheme identifies a batching scheme.
type Scheme int

const (
	Naive Scheme = iota
	Turbo
	Concat
	SlottedConcat
)

func (s Scheme) String() string {
	switch s {
	case Naive:
		return "naive"
	case Turbo:
		return "turbo"
	case Concat:
		return "concat"
	case SlottedConcat:
		return "slotted-concat"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Item is one request as the batcher sees it. Len counts the tokens the
// item occupies in its row — for a prefix-cache hit that is the uncached
// suffix only, so packing, padding accounting and memory reservations all
// see the work the engine will actually do.
type Item struct {
	ID  int64
	Len int // resident length in tokens (suffix only on a prefix-cache hit)
	// PrefixLen is the declared shared-prefix boundary: the item's first
	// PrefixLen tokens encode as their own attention segment (separate PE
	// restart + isolation) while the request decodes as one unit. 0 means
	// no declared prefix — the layout is bitwise identical to one that
	// predates prefix sharing.
	PrefixLen int
	// CachedLen is the number of leading tokens served from the prefix
	// cache instead of the row: 0 (cold; the full request is resident, Len
	// includes the prefix) or PrefixLen (hit; only the suffix is resident
	// and Len excludes the prefix).
	CachedLen int
}

// Row is one assembled batch row: items concatenated left to right, then
// padded to PadTo tokens.
type Row struct {
	Items []Item
	PadTo int
}

// Used returns the number of non-padding tokens in the row.
func (r Row) Used() int {
	n := 0
	for _, it := range r.Items {
		n += it.Len
	}
	return n
}

// Padding returns the number of padded tokens in the row.
func (r Row) Padding() int { return r.PadTo - r.Used() }

// Batch is the unit of work submitted to the inference engine.
type Batch struct {
	Scheme   Scheme
	Rows     []Row
	SlotSize int // slot length for SlottedConcat; ignored otherwise
}

// Items returns every item in the batch in row order.
func (b *Batch) Items() []Item {
	var out []Item
	for _, r := range b.Rows {
		out = append(out, r.Items...)
	}
	return out
}

// NumItems returns the number of requests in the batch.
func (b *Batch) NumItems() int {
	n := 0
	for _, r := range b.Rows {
		n += len(r.Items)
	}
	return n
}

// TotalTokens returns the number of token positions the engine processes,
// padding included. Every one of these costs full FFN/projection compute.
func (b *Batch) TotalTokens() int {
	n := 0
	for _, r := range b.Rows {
		n += r.PadTo
	}
	return n
}

// UsedTokens returns the number of real (non-padding) tokens.
func (b *Batch) UsedTokens() int {
	n := 0
	for _, r := range b.Rows {
		n += r.Used()
	}
	return n
}

// PaddedTokens returns TotalTokens − UsedTokens: the computational
// redundancy the paper's Fig. 1 is about.
func (b *Batch) PaddedTokens() int { return b.TotalTokens() - b.UsedTokens() }

// Utilization returns UsedTokens / TotalTokens in [0, 1]; 1 for an empty
// batch (no waste).
func (b *Batch) Utilization() float64 {
	total := b.TotalTokens()
	if total == 0 {
		return 1
	}
	return float64(b.UsedTokens()) / float64(total)
}

// ScoreArea returns the number of attention-score entries the scheme
// computes for this batch — the quantity slotting reduces (§4.2, Fig. 7).
// Dense schemes (Naive, Turbo, pure Concat) compute PadTo² per row;
// SlottedConcat computes SlotSize² per occupied slot.
func (b *Batch) ScoreArea() int {
	area := 0
	switch b.Scheme {
	case SlottedConcat:
		z := b.SlotSize
		for _, r := range b.Rows {
			area += b.occupiedSlots(r) * z * z
		}
	default:
		for _, r := range b.Rows {
			area += r.PadTo * r.PadTo
		}
	}
	return area
}

// SlottedTokens returns the token positions processed under the slotted
// layout: occupied slots × slot size. Unoccupied trailing slots are freed
// tensors and cost nothing.
func (b *Batch) SlottedTokens() int {
	if b.Scheme != SlottedConcat {
		return b.TotalTokens()
	}
	n := 0
	for _, r := range b.Rows {
		n += b.occupiedSlots(r) * b.SlotSize
	}
	return n
}

// SlotGroups reconstructs which items share each occupied slot of row r,
// assuming items are ordered slot-sequentially (as PackSlotted guarantees:
// a new slot starts whenever the next item would cross a boundary). For
// non-slotted schemes it returns all items as one group.
func (b *Batch) SlotGroups(r Row) [][]Item {
	if b.Scheme != SlottedConcat || b.SlotSize <= 0 {
		if len(r.Items) == 0 {
			return nil
		}
		return [][]Item{r.Items}
	}
	var groups [][]Item
	used := 0
	for _, it := range r.Items {
		if len(groups) == 0 || used+it.Len > b.SlotSize {
			groups = append(groups, nil)
			used = 0
		}
		groups[len(groups)-1] = append(groups[len(groups)-1], it)
		used += it.Len
	}
	return groups
}

// occupiedSlots counts the SlotSize-sized slots of row r holding at least
// one item.
func (b *Batch) occupiedSlots(r Row) int {
	if b.SlotSize <= 0 {
		return 0
	}
	return len(b.SlotGroups(r))
}

// Validate checks structural invariants: positive item lengths, rows not
// overflowing PadTo, no duplicate item IDs, and (for SlottedConcat) items
// not exceeding the slot size.
func (b *Batch) Validate() error {
	seen := make(map[int64]bool)
	for ri, r := range b.Rows {
		if r.Used() > r.PadTo {
			return fmt.Errorf("batch: row %d holds %d tokens, capacity %d", ri, r.Used(), r.PadTo)
		}
		for _, it := range r.Items {
			if it.Len <= 0 {
				return fmt.Errorf("batch: item %d has length %d", it.ID, it.Len)
			}
			if it.PrefixLen < 0 || it.CachedLen < 0 {
				return fmt.Errorf("batch: item %d has negative prefix lengths (%d, %d)", it.ID, it.PrefixLen, it.CachedLen)
			}
			if it.CachedLen != 0 && it.CachedLen != it.PrefixLen {
				return fmt.Errorf("batch: item %d caches %d of a %d-token prefix (must be all or none)", it.ID, it.CachedLen, it.PrefixLen)
			}
			if it.CachedLen == 0 && it.PrefixLen >= it.Len {
				return fmt.Errorf("batch: item %d declares a %d-token prefix of a %d-token request (suffix must be non-empty)", it.ID, it.PrefixLen, it.Len)
			}
			if seen[it.ID] {
				return fmt.Errorf("batch: item %d appears twice", it.ID)
			}
			seen[it.ID] = true
			if b.Scheme == SlottedConcat && it.Len > b.SlotSize {
				return fmt.Errorf("batch: item %d length %d exceeds slot size %d", it.ID, it.Len, b.SlotSize)
			}
		}
		if b.Scheme == SlottedConcat {
			if max := r.PadTo / b.SlotSize; b.occupiedSlots(r) > max {
				return fmt.Errorf("batch: row %d needs %d slots, capacity %d", ri, b.occupiedSlots(r), max)
			}
		}
	}
	return nil
}
