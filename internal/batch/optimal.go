package batch

// PackConcatOptimal solves the row-packing subproblem exactly for small
// instances by branch and bound: choose a subset of items and an
// assignment to at most maxRows rows of capacity rowLen that maximizes the
// total packed token count (the quantity first-fit heuristics approximate).
// Ties prefer more items packed.
//
// The search is exponential; it exists to measure the heuristics' gap in
// tests and the packing ablation. Keep len(items) ≤ ~16.
func PackConcatOptimal(items []Item, maxRows, rowLen int) (*Batch, []Item) {
	n := len(items)
	type state struct {
		assign []int // item index -> row index or -1
		tokens int
		count  int
	}
	best := state{assign: make([]int, n), tokens: -1}
	cur := state{assign: make([]int, n)}
	used := make([]int, maxRows)

	// Upper-bound pruning: remaining tokens if everything else fit.
	suffix := make([]int, n+1)
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + items[i].Len
	}

	var rec func(i, openRows int)
	rec = func(i, openRows int) {
		if cur.tokens+suffix[i] < best.tokens {
			return // cannot beat the incumbent
		}
		if i == n {
			if cur.tokens > best.tokens ||
				(cur.tokens == best.tokens && cur.count > best.count) {
				best.tokens = cur.tokens
				best.count = cur.count
				copy(best.assign, cur.assign)
			}
			return
		}
		it := items[i]
		// Try placing into each open row (and at most one new row — rows
		// are interchangeable, so opening "the next" row suffices).
		limit := openRows
		if openRows < maxRows {
			limit = openRows + 1
		}
		for r := 0; r < limit; r++ {
			if used[r]+it.Len > rowLen || it.Len > rowLen {
				continue
			}
			used[r] += it.Len
			cur.assign[i] = r
			cur.tokens += it.Len
			cur.count++
			next := openRows
			if r == openRows {
				next = openRows + 1
			}
			rec(i+1, next)
			used[r] -= it.Len
			cur.tokens -= it.Len
			cur.count--
		}
		// Or skip the item.
		cur.assign[i] = -1
		rec(i+1, openRows)
	}
	rec(0, 0)

	b := &Batch{Scheme: Concat}
	var rest []Item
	if best.tokens < 0 {
		return b, append(rest, items...)
	}
	rowsNeeded := 0
	for _, r := range best.assign {
		if r+1 > rowsNeeded {
			rowsNeeded = r + 1
		}
	}
	b.Rows = make([]Row, rowsNeeded)
	for i := range b.Rows {
		b.Rows[i].PadTo = rowLen
	}
	for i, r := range best.assign {
		if r == -1 {
			rest = append(rest, items[i])
		} else {
			b.Rows[r].Items = append(b.Rows[r].Items, items[i])
		}
	}
	return b, rest
}
