package batch

import (
	"testing"
	"testing/quick"

	"tcb/internal/rng"
)

func items(lens ...int) []Item {
	out := make([]Item, len(lens))
	for i, l := range lens {
		out[i] = Item{ID: int64(i + 1), Len: l}
	}
	return out
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		Naive: "naive", Turbo: "turbo", Concat: "concat", SlottedConcat: "slotted-concat",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if Scheme(42).String() == "" {
		t.Fatal("unknown scheme should render")
	}
}

func TestRowAccounting(t *testing.T) {
	r := Row{Items: items(3, 5), PadTo: 10}
	if r.Used() != 8 || r.Padding() != 2 {
		t.Fatalf("used/padding = %d/%d", r.Used(), r.Padding())
	}
}

func TestBatchAccounting(t *testing.T) {
	b := &Batch{Scheme: Concat, Rows: []Row{
		{Items: items(3, 5), PadTo: 10},
		{Items: []Item{{ID: 9, Len: 10}}, PadTo: 10},
	}}
	if b.NumItems() != 3 || b.TotalTokens() != 20 || b.UsedTokens() != 18 || b.PaddedTokens() != 2 {
		t.Fatalf("accounting wrong: %d %d %d %d",
			b.NumItems(), b.TotalTokens(), b.UsedTokens(), b.PaddedTokens())
	}
	if u := b.Utilization(); u != 0.9 {
		t.Fatalf("utilization = %v, want 0.9", u)
	}
	if got := len(b.Items()); got != 3 {
		t.Fatalf("Items() = %d entries", got)
	}
}

func TestEmptyBatchUtilization(t *testing.T) {
	b := &Batch{}
	if b.Utilization() != 1 {
		t.Fatal("empty batch utilization should be 1")
	}
}

func TestScoreAreaDense(t *testing.T) {
	b := &Batch{Scheme: Naive, Rows: []Row{{Items: items(3), PadTo: 5}, {Items: items(5), PadTo: 5}}}
	if a := b.ScoreArea(); a != 50 {
		t.Fatalf("ScoreArea = %d, want 50", a)
	}
}

func TestScoreAreaSlotted(t *testing.T) {
	// Row with items 4,3 in slot size 4 → items land in separate slots.
	b, rest := PackSlotted(items(4, 3), 1, 8, 4)
	if len(rest) != 0 {
		t.Fatalf("rest = %v", rest)
	}
	if a := b.ScoreArea(); a != 32 { // 2 slots × 16
		t.Fatalf("ScoreArea = %d, want 32", a)
	}
	if tok := b.SlottedTokens(); tok != 8 {
		t.Fatalf("SlottedTokens = %d, want 8", tok)
	}
}

func TestValidateCatchesOverflowAndDuplicates(t *testing.T) {
	over := &Batch{Scheme: Concat, Rows: []Row{{Items: items(6, 5), PadTo: 10}}}
	if over.Validate() == nil {
		t.Fatal("overflowing row should fail validation")
	}
	dup := &Batch{Scheme: Concat, Rows: []Row{
		{Items: []Item{{ID: 1, Len: 2}}, PadTo: 5},
		{Items: []Item{{ID: 1, Len: 2}}, PadTo: 5},
	}}
	if dup.Validate() == nil {
		t.Fatal("duplicate ID should fail validation")
	}
	zero := &Batch{Scheme: Concat, Rows: []Row{{Items: []Item{{ID: 1, Len: 0}}, PadTo: 5}}}
	if zero.Validate() == nil {
		t.Fatal("zero-length item should fail validation")
	}
}

func TestPackNaiveBasics(t *testing.T) {
	b, rest := PackNaive(items(5, 3, 9, 2), 3, 100)
	if len(b.Rows) != 3 || len(rest) != 1 || rest[0].Len != 2 {
		t.Fatalf("rows=%d rest=%v", len(b.Rows), rest)
	}
	for _, r := range b.Rows {
		if r.PadTo != 9 {
			t.Fatalf("rows must pad to longest (9), got %d", r.PadTo)
		}
		if len(r.Items) != 1 {
			t.Fatal("naive rows hold exactly one item")
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPackNaiveSkipsOversized(t *testing.T) {
	b, rest := PackNaive(items(5, 200, 3), 10, 100)
	if len(b.Rows) != 2 || len(rest) != 1 || rest[0].Len != 200 {
		t.Fatalf("rows=%d rest=%v", len(b.Rows), rest)
	}
}

func TestPackNaiveEmpty(t *testing.T) {
	b, rest := PackNaive(nil, 4, 100)
	if len(b.Rows) != 0 || len(rest) != 0 {
		t.Fatal("empty input should give empty batch")
	}
}

func TestTurboSplitGroupsSimilarLengths(t *testing.T) {
	// Two obvious clusters: {3,4,5} and {50,51}.
	lengths := []int{50, 3, 51, 4, 5}
	groups, order := TurboSplit(lengths, TurboParams{MaxRows: 64, MaxLen: 100, Overhead: 10})
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2 clusters", groups)
	}
	if groups[0][1]-groups[0][0] != 3 || groups[1][1]-groups[1][0] != 2 {
		t.Fatalf("group sizes wrong: %v", groups)
	}
	// order must sort the lengths.
	prev := -1
	for _, idx := range order {
		if lengths[idx] < prev {
			t.Fatal("order does not sort lengths")
		}
		prev = lengths[idx]
	}
}

func TestTurboSplitRespectsMaxRows(t *testing.T) {
	lengths := []int{5, 5, 5, 5, 5}
	groups, _ := TurboSplit(lengths, TurboParams{MaxRows: 2, MaxLen: 100, Overhead: 0})
	for _, g := range groups {
		if g[1]-g[0] > 2 {
			t.Fatalf("group %v exceeds MaxRows", g)
		}
	}
}

func TestTurboSplitEmpty(t *testing.T) {
	groups, order := TurboSplit(nil, TurboParams{MaxRows: 4, MaxLen: 10})
	if groups != nil || len(order) != 0 {
		t.Fatal("empty input should give no groups")
	}
}

// DP optimality: compare against brute-force enumeration of all contiguous
// partitions for small n.
func TestTurboSplitOptimal(t *testing.T) {
	p := TurboParams{MaxRows: 3, MaxLen: 100, Overhead: 7}
	bruteBest := func(sorted []int) float64 {
		n := len(sorted)
		best := 1e18
		// Enumerate partitions via bitmask of cut positions.
		for mask := 0; mask < 1<<(n-1); mask++ {
			cost := 0.0
			start := 0
			feasible := true
			for i := 0; i < n; i++ {
				end := i == n-1 || mask&(1<<i) != 0
				if end {
					if i-start+1 > p.MaxRows {
						feasible = false
						break
					}
					cost += turboGroupCost(sorted, start, i, p)
					start = i + 1
				}
			}
			if feasible && cost < best {
				best = cost
			}
		}
		return best
	}
	src := rng.New(42)
	for trial := 0; trial < 200; trial++ {
		n := src.IntRange(1, 8)
		lengths := make([]int, n)
		for i := range lengths {
			lengths[i] = src.IntRange(1, 30)
		}
		plan, rest := PackTurbo(items(lengths...), p)
		if len(rest) != 0 {
			t.Fatalf("unexpected rest: %v", rest)
		}
		got := TurboPlanCost(plan, p)
		sorted := make([]int, n)
		for i := range sorted {
			sorted[i] = lengths[i]
		}
		// brute force needs sorted order
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if sorted[j] < sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		want := bruteBest(sorted)
		if got != want {
			t.Fatalf("trial %d: DP cost %v != brute force %v (lengths %v)", trial, got, want, lengths)
		}
	}
}

func TestPackTurboRejectsOversized(t *testing.T) {
	plan, rest := PackTurbo(items(5, 300), TurboParams{MaxRows: 4, MaxLen: 100, Overhead: 1})
	if len(rest) != 1 || rest[0].Len != 300 {
		t.Fatalf("rest = %v", rest)
	}
	total := 0
	for _, b := range plan {
		total += b.NumItems()
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if total != 1 {
		t.Fatalf("plan holds %d items, want 1", total)
	}
}

func TestPackConcatFillsRows(t *testing.T) {
	b, rest := PackConcat(items(4, 4, 4, 4, 4), 2, 10)
	if len(rest) != 1 {
		t.Fatalf("rest = %v, want one leftover", rest)
	}
	if len(b.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(b.Rows))
	}
	if b.UsedTokens() != 16 {
		t.Fatalf("used = %d, want 16", b.UsedTokens())
	}
	for _, r := range b.Rows {
		if r.PadTo != 10 {
			t.Fatalf("concat rows pad to capacity, got %d", r.PadTo)
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPackConcatFirstFitBackfills(t *testing.T) {
	// 7 opens row1, 6 opens row2, 3 backfills row1 (7+3=10).
	b, rest := PackConcat(items(7, 6, 3), 2, 10)
	if len(rest) != 0 {
		t.Fatalf("rest = %v", rest)
	}
	if len(b.Rows[0].Items) != 2 || b.Rows[0].Used() != 10 {
		t.Fatalf("row0 = %+v, want 7+3", b.Rows[0])
	}
}

func TestPackConcatRejectsOverlong(t *testing.T) {
	b, rest := PackConcat(items(11, 5), 2, 10)
	if len(rest) != 1 || rest[0].Len != 11 {
		t.Fatalf("rest = %v", rest)
	}
	if b.NumItems() != 1 {
		t.Fatalf("batch items = %d", b.NumItems())
	}
}

func TestPackConcatFFDBeatsNaiveOrderSometimes(t *testing.T) {
	// Classic bin-packing adversary: FFD packs {6,5,4,3,2} into fewer rows.
	its := items(2, 6, 3, 5, 4)
	ffd, restFFD := PackConcatFFD(its, 2, 10)
	if len(restFFD) != 0 {
		t.Fatalf("FFD rest = %v", restFFD)
	}
	if ffd.UsedTokens() != 20 {
		t.Fatalf("FFD should pack all 20 tokens, got %d", ffd.UsedTokens())
	}
}

func TestPackSlottedBoundaries(t *testing.T) {
	// slotSize 5, rowLen 10 → 2 slots per row. Items 3,3 share slot 1;
	// 4 goes to slot 2; 5 opens row 2.
	b, rest := PackSlotted(items(3, 3, 4, 5), 2, 10, 5)
	if len(rest) != 0 {
		t.Fatalf("rest = %v", rest)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(b.Rows))
	}
	if got := b.occupiedSlots(b.Rows[0]); got != 2 {
		t.Fatalf("row0 slots = %d, want 2", got)
	}
}

func TestPackSlottedRejectsOversizedForSlot(t *testing.T) {
	b, rest := PackSlotted(items(6, 3), 4, 10, 5)
	if len(rest) != 1 || rest[0].Len != 6 {
		t.Fatalf("rest = %v", rest)
	}
	if b.NumItems() != 1 {
		t.Fatalf("items = %d", b.NumItems())
	}
}

func TestPackSlottedDegenerateSlotSize(t *testing.T) {
	// slotSize <= 0 or > rowLen degrades to whole-row slots (pure concat).
	for _, z := range []int{0, -3, 50} {
		b, rest := PackSlotted(items(4, 4), 1, 10, z)
		if len(rest) != 0 || b.SlotSize != 10 {
			t.Fatalf("z=%d: slotSize=%d rest=%v", z, b.SlotSize, rest)
		}
	}
}

func TestSlotSizeFromLengths(t *testing.T) {
	if z := SlotSizeFromLengths(items(3, 9, 5), 100); z != 9 {
		t.Fatalf("slot size = %d, want 9", z)
	}
	if z := SlotSizeFromLengths(nil, 100); z != 100 {
		t.Fatalf("empty set slot size = %d, want rowLen", z)
	}
	if z := SlotSizeFromLengths(items(200), 100); z != 100 {
		t.Fatalf("oversized slot size = %d, want clamp to rowLen", z)
	}
}

// Property: for any items and parameters, every packer produces a valid
// batch, conserves items (batched + rest == input), and never exceeds
// capacities.
func TestPackersConserveItems(t *testing.T) {
	f := func(raw []uint8, rowsRaw, lenRaw, slotRaw uint8) bool {
		maxRows := int(rowsRaw%8) + 1
		rowLen := int(lenRaw%50) + 10
		slotSize := int(slotRaw%20) + 1
		var its []Item
		for i, r := range raw {
			if i >= 40 {
				break
			}
			its = append(its, Item{ID: int64(i + 1), Len: int(r%60) + 1})
		}
		check := func(batched []*Batch, rest []Item) bool {
			count := len(rest)
			seen := make(map[int64]bool)
			for _, b := range batched {
				if b.Validate() != nil {
					return false
				}
				for _, it := range b.Items() {
					if seen[it.ID] {
						return false
					}
					seen[it.ID] = true
					count++
				}
			}
			for _, it := range rest {
				if seen[it.ID] {
					return false
				}
			}
			return count == len(its)
		}
		nb, nrest := PackNaive(its, maxRows, rowLen)
		if !check([]*Batch{nb}, nrest) {
			return false
		}
		plan, trest := PackTurbo(its, TurboParams{MaxRows: maxRows, MaxLen: rowLen, Overhead: 5})
		if !check(plan, trest) {
			return false
		}
		cb, crest := PackConcat(its, maxRows, rowLen)
		if !check([]*Batch{cb}, crest) {
			return false
		}
		sb, srest := PackSlotted(its, maxRows, rowLen, slotSize)
		return check([]*Batch{sb}, srest)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: concat packing wastes no more tokens than naive packing for the
// same admitted set would at equal capacity — utilization of a full concat
// batch is at least the fraction any single row achieves.
func TestConcatUtilizationBound(t *testing.T) {
	f := func(raw []uint8) bool {
		var its []Item
		for i, r := range raw {
			if i >= 30 {
				break
			}
			its = append(its, Item{ID: int64(i + 1), Len: int(r%20) + 1})
		}
		if len(its) == 0 {
			return true
		}
		b, _ := PackConcat(its, 4, 40)
		if len(b.Rows) == 0 {
			return true
		}
		// Each row except possibly the last-opened ones is at least half
		// full is NOT guaranteed by first-fit in general; but total used
		// must be > 0 and utilization within (0, 1].
		u := b.Utilization()
		return u > 0 && u <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TurboSplitFunc must be optimal for an arbitrary (here quadratic) cost
// function, verified against brute-force partition enumeration.
func TestTurboSplitFuncOptimalQuadratic(t *testing.T) {
	costFn := func(count, maxLen int) float64 {
		return 12 + float64(count*maxLen) + 0.05*float64(maxLen*maxLen)
	}
	maxRows := 3
	brute := func(sorted []int) float64 {
		n := len(sorted)
		best := 1e18
		for mask := 0; mask < 1<<(n-1); mask++ {
			cost, start, ok := 0.0, 0, true
			for i := 0; i < n; i++ {
				if i == n-1 || mask&(1<<i) != 0 {
					if i-start+1 > maxRows {
						ok = false
						break
					}
					cost += costFn(i-start+1, sorted[i])
					start = i + 1
				}
			}
			if ok && cost < best {
				best = cost
			}
		}
		return best
	}
	src := rng.New(123)
	for trial := 0; trial < 150; trial++ {
		n := src.IntRange(1, 9)
		lengths := make([]int, n)
		for i := range lengths {
			lengths[i] = src.IntRange(1, 40)
		}
		groups, order := TurboSplitFunc(lengths, maxRows, costFn)
		sorted := make([]int, n)
		for i, idx := range order {
			sorted[i] = lengths[idx]
		}
		var got float64
		for _, g := range groups {
			got += costFn(g[1]-g[0], sorted[g[1]-1])
		}
		if want := brute(sorted); got != want {
			t.Fatalf("trial %d: DP %v != brute %v (lengths %v)", trial, got, want, lengths)
		}
	}
}

func TestTurboSplitFuncUnboundedRows(t *testing.T) {
	// maxRows 0 = unbounded: with zero overhead and linear cost, one group
	// per distinct length is optimal only when padding costs something;
	// with cost == count (ignoring length) a single group wins.
	groups, _ := TurboSplitFunc([]int{3, 9, 4, 7}, 0, func(count, maxLen int) float64 {
		return 100 + float64(count) // huge fixed cost → merge everything
	})
	if len(groups) != 1 {
		t.Fatalf("expected one merged group, got %v", groups)
	}
}
