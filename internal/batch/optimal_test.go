package batch

import (
	"testing"
	"testing/quick"

	"tcb/internal/rng"
)

func TestPackConcatOptimalSimple(t *testing.T) {
	// {6, 5, 4, 3, 2} into 2 rows of 10: optimal packs everything (6+4, 5+3+2).
	b, rest := PackConcatOptimal(items(6, 5, 4, 3, 2), 2, 10)
	if len(rest) != 0 {
		t.Fatalf("rest = %v, optimal should pack all 20 tokens", rest)
	}
	if b.UsedTokens() != 20 {
		t.Fatalf("used = %d", b.UsedTokens())
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPackConcatOptimalSkipsWhenForced(t *testing.T) {
	// One row of 10; items 7, 6, 4: best is 7+? no pair fits except 6+4.
	b, rest := PackConcatOptimal(items(7, 6, 4), 1, 10)
	if b.UsedTokens() != 10 {
		t.Fatalf("used = %d, want 10 (6+4)", b.UsedTokens())
	}
	if len(rest) != 1 || rest[0].Len != 7 {
		t.Fatalf("rest = %v", rest)
	}
}

func TestPackConcatOptimalOversized(t *testing.T) {
	b, rest := PackConcatOptimal(items(20), 2, 10)
	if b.NumItems() != 0 || len(rest) != 1 {
		t.Fatalf("oversized item must be rejected: %v, %v", b.NumItems(), rest)
	}
}

func TestPackConcatOptimalEmpty(t *testing.T) {
	b, rest := PackConcatOptimal(nil, 2, 10)
	if b.NumItems() != 0 || len(rest) != 0 {
		t.Fatal("empty input should give empty outputs")
	}
}

// Property: optimal never packs fewer tokens than first-fit or FFD, and
// stays structurally valid.
func TestOptimalDominatesHeuristics(t *testing.T) {
	src := rng.New(77)
	f := func(raw []uint8, rowsRaw uint8) bool {
		maxRows := int(rowsRaw%3) + 1
		rowLen := 10
		var its []Item
		for i, r := range raw {
			if i >= 9 {
				break
			}
			its = append(its, Item{ID: int64(i + 1), Len: int(r%9) + 1})
		}
		_ = src
		opt, _ := PackConcatOptimal(its, maxRows, rowLen)
		if opt.Validate() != nil {
			return false
		}
		ff, _ := PackConcat(its, maxRows, rowLen)
		ffd, _ := PackConcatFFD(its, maxRows, rowLen)
		return opt.UsedTokens() >= ff.UsedTokens() && opt.UsedTokens() >= ffd.UsedTokens()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Measure the first-fit gap on random paper-like instances: FFD and
// first-fit should be within a few percent of optimal.
func TestHeuristicGapSmall(t *testing.T) {
	src := rng.New(88)
	var optTotal, ffTotal int
	for trial := 0; trial < 50; trial++ {
		var its []Item
		for i := 0; i < 10; i++ {
			its = append(its, Item{ID: int64(i + 1), Len: src.TruncatedNormalInt(20, 4.5, 3, 40)})
		}
		opt, _ := PackConcatOptimal(its, 2, 50)
		ff, _ := PackConcat(its, 2, 50)
		optTotal += opt.UsedTokens()
		ffTotal += ff.UsedTokens()
	}
	ratio := float64(ffTotal) / float64(optTotal)
	if ratio < 0.85 {
		t.Fatalf("first-fit at %.1f%% of optimal — suspiciously poor", 100*ratio)
	}
	t.Logf("first-fit packs %.1f%% of optimal tokens", 100*ratio)
}
