package batch

import "sort"

// TurboParams configures the TurboTransformers dynamic-programming batch
// split (Fig. 1b; [14] §"batch scheduler").
type TurboParams struct {
	MaxRows int // maximum requests per sub-batch (GPU batch dimension)
	MaxLen  int // maximum request length the model supports
	// Overhead is the fixed per-sub-batch cost in token-equivalents
	// (kernel launch, weight reload). A larger overhead makes the DP
	// prefer fewer, more padded groups; 0 degenerates to one group per
	// distinct length.
	Overhead float64
}

// turboGroupCost is the DP's cost for padding group [i..j] of the sorted
// lengths: everyone pads to the group maximum lengths[j].
func turboGroupCost(lengths []int, i, j int, p TurboParams) float64 {
	return p.Overhead + float64((j-i+1)*lengths[j])
}

// TurboSplit partitions the given request lengths (any order) into
// contiguous groups of the sorted sequence so that the total padded-token
// cost plus per-group overhead is minimal, subject to MaxRows per group.
// It returns group boundaries as index ranges over the *sorted* order and
// the permutation that sorts the input.
func TurboSplit(lengths []int, p TurboParams) (groups [][2]int, order []int) {
	return TurboSplitFunc(lengths, p.MaxRows, func(count, maxLen int) float64 {
		return p.Overhead + float64(count*maxLen)
	})
}

// TurboSplitFunc is the generalized TurboTransformers split: it partitions
// the sorted length sequence into contiguous groups minimizing
// Σ costFn(groupSize, groupMaxLen), subject to maxRows per group (0 = no
// bound). costFn lets callers encode measured throughput curves — e.g. a
// quadratic attention term or a lookup table of real batch times — exactly
// as the original system's "happens-before" table does. The DP is optimal
// for any cost function of (count, maxLen).
func TurboSplitFunc(lengths []int, maxRows int, costFn func(count, maxLen int) float64) (groups [][2]int, order []int) {
	n := len(lengths)
	order = make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return lengths[order[a]] < lengths[order[b]] })
	sorted := make([]int, n)
	for i, idx := range order {
		sorted[i] = lengths[idx]
	}
	if n == 0 {
		return nil, order
	}
	// dp[j] = min cost of batching the first j sorted requests.
	const inf = 1e18
	dp := make([]float64, n+1)
	cut := make([]int, n+1)
	for j := 1; j <= n; j++ {
		dp[j] = inf
		lo := 0
		if maxRows > 0 && j-maxRows > 0 {
			lo = j - maxRows
		}
		for i := lo; i < j; i++ {
			c := dp[i] + costFn(j-i, sorted[j-1])
			if c < dp[j] {
				dp[j] = c
				cut[j] = i
			}
		}
	}
	for j := n; j > 0; j = cut[j] {
		groups = append(groups, [2]int{cut[j], j})
	}
	// Reverse into ascending order.
	for l, r := 0, len(groups)-1; l < r; l, r = l+1, r-1 {
		groups[l], groups[r] = groups[r], groups[l]
	}
	return groups, order
}

// PackTurbo builds the TurboBatching (TTB) plan for items: requests are
// sorted by length and split by TurboSplit; each group becomes its own
// sub-batch with one request per row padded to the group maximum. Items
// longer than MaxLen are returned unbatched.
func PackTurbo(items []Item, p TurboParams) ([]*Batch, []Item) {
	var ok []Item
	var rest []Item
	for _, it := range items {
		if it.Len > p.MaxLen {
			rest = append(rest, it)
		} else {
			ok = append(ok, it)
		}
	}
	lengths := make([]int, len(ok))
	for i, it := range ok {
		lengths[i] = it.Len
	}
	groups, order := TurboSplit(lengths, p)
	var plan []*Batch
	for _, g := range groups {
		b := &Batch{Scheme: Turbo}
		padTo := 0
		for k := g[0]; k < g[1]; k++ {
			it := ok[order[k]]
			if it.Len > padTo {
				padTo = it.Len
			}
			b.Rows = append(b.Rows, Row{Items: []Item{it}})
		}
		for i := range b.Rows {
			b.Rows[i].PadTo = padTo
		}
		plan = append(plan, b)
	}
	return plan, rest
}

// TurboPlanCost returns the DP objective value of a plan: padded tokens per
// group plus overhead per group. Exposed for the optimality tests.
func TurboPlanCost(plan []*Batch, p TurboParams) float64 {
	var cost float64
	for _, b := range plan {
		cost += p.Overhead + float64(b.TotalTokens())
	}
	return cost
}
