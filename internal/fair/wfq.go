package fair

import "sync"

// WFQ implements self-clocked weighted fair queueing (SCFQ) over tenants:
// each arriving request is stamped with a virtual finish time
//
//	F = max(V, F_last(tenant)) + cost / weight(tenant)
//
// where V is the virtual clock (the finish tag of the request most
// recently dispatched to the engine) and cost is the request's predicted
// service demand (cost.Params-derived seconds when the caller has a
// calibrated model, raw token count otherwise — only ratios matter).
// Draining stamped requests in ascending F order serves tenants in
// proportion to their weights regardless of how unbalanced their arrival
// rates are: a tenant flooding the queue only stretches its *own* virtual
// horizon, because each of its requests starts at its previous one's
// finish, while a light tenant's next request starts at the shared clock V
// and lands near the front.
//
// The k8s-apiserver fq scheduler (SNIPPETS.md Snippets 1–3) keeps the same
// per-queue virtual start plus J·G finish progression; this version stamps
// requests at admission instead of walking queues at dispatch so the serve
// loop's candidate draw is one sort over stamps, and uses the SCFQ virtual
// clock (finish tag of the packet in service) which needs no per-tick
// bookkeeping and cannot stall when every queue is idle.
//
// All methods are safe for concurrent use; the serve loop stamps from
// Submit while dispatching from the scheduler goroutine.
type WFQ struct {
	// Cost predicts a request's service demand from its token length.
	// Nil means cost = float64(lenTokens).
	Cost func(lenTokens int) float64
	// Weight resolves a tenant's WFQ weight (e.g. Registry.Weight).
	// Nil means every tenant weighs 1.
	Weight func(tenant string) float64

	mu      sync.Mutex
	vclock  float64
	tenants map[string]*wfqTenant
}

type wfqTenant struct {
	lastFinish float64
	// backlog counts stamped-but-undispatched requests; when it drains to
	// zero the tenant's horizon is released so an idle spell cannot bank
	// priority (lastFinish below the clock is clamped up on next stamp).
	backlog int
}

// NewWFQ builds a WFQ with the given cost and weight resolvers (both may
// be nil).
func NewWFQ(cost func(int) float64, weight func(string) float64) *WFQ {
	return &WFQ{Cost: cost, Weight: weight}
}

// Stamp assigns the next virtual finish time for one request of the given
// tenant and token length. Stamps are strictly increasing per tenant.
func (w *WFQ) Stamp(tenant string, lenTokens int) float64 {
	cost := float64(lenTokens)
	if w.Cost != nil {
		cost = w.Cost(lenTokens)
	}
	if cost <= 0 {
		cost = 1e-9 // degenerate predictor: keep stamps strictly increasing
	}
	weight := 1.0
	if w.Weight != nil {
		if v := w.Weight(tenant); v > 0 {
			weight = v
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.tenants == nil {
		w.tenants = make(map[string]*wfqTenant)
	}
	t := w.tenants[tenant]
	if t == nil {
		t = &wfqTenant{}
		w.tenants[tenant] = t
	}
	start := w.vclock
	if t.lastFinish > start {
		start = t.lastFinish
	}
	t.lastFinish = start + cost/weight
	t.backlog++
	return t.lastFinish
}

// Dispatched advances the virtual clock to the finish tag of a request
// handed to the engine (SCFQ: V is the tag of the packet in service) and
// releases one unit of the tenant's backlog.
func (w *WFQ) Dispatched(tenant string, vfinish float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if vfinish > w.vclock {
		w.vclock = vfinish
	}
	w.drop(tenant)
}

// Abandoned releases one unit of the tenant's backlog without advancing
// the clock — for requests that left the queue unserved (deadline expiry,
// shed, terminal failure). Without it a tenant whose requests keep dying
// would carry a permanently inflated horizon.
func (w *WFQ) Abandoned(tenant string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.drop(tenant)
}

// drop decrements the tenant's backlog, resetting its horizon when it
// empties. Callers hold w.mu.
func (w *WFQ) drop(tenant string) {
	t := w.tenants[tenant]
	if t == nil {
		return
	}
	if t.backlog > 0 {
		t.backlog--
	}
	if t.backlog == 0 && t.lastFinish < w.vclock {
		// Fully drained and behind the clock: nothing left to order, so
		// forget the horizon (the next stamp starts at the clock anyway).
		delete(w.tenants, tenant)
	}
}

// VClock returns the current virtual clock (tests and introspection).
func (w *WFQ) VClock() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.vclock
}

// Backlog returns the tenant's stamped-but-undispatched request count.
func (w *WFQ) Backlog(tenant string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if t := w.tenants[tenant]; t != nil {
		return t.backlog
	}
	return 0
}
