// Package fair is the multi-tenant admission-and-fairness layer that
// fronts the scheduler: weighted fair queueing across tenants (wfq.go),
// token-bucket admission control (bucket.go), and per-request SLO classes
// that map to the SLA weights feeding sched.Request.Utility.
//
// The problem it solves is isolation. TCB's §5.1 utility model already
// carries a per-request weight, but the serving queue is one global pool —
// a single tenant flooding requests starves everyone else long before the
// breaker or the queue cap react, and when shedding does kick in it is
// utility-ordered globally, so the flood's victims absorb the losses. The
// fair layer bounds each tenant's claim on three chokepoints:
//
//   - admission: a per-tenant token bucket refuses a tenant's submissions
//     beyond its provisioned rate/burst (HTTP 429 + Retry-After), before
//     they cost the queue anything;
//   - scheduling: every accepted request is stamped with a weighted
//     virtual finish time; the scheduler draws its candidates in virtual
//     time order through a bounded window, so a backlogged tenant's excess
//     waits behind other tenants' heads instead of crowding them out;
//   - shedding: when the breaker opens, eviction is per-tenant-fair — the
//     tenant most over its weighted share of the reduced queue sheds
//     first, lowest utility first within the tenant.
//
// Everything here is mechanism, not policy: tenants and classes are
// configuration (Registry, ClassSet), and the whole layer is disabled by
// construction when a server runs without it — the escape hatch back to
// the single global pool.
package fair

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// DefaultTenant is the tenant identity assigned to untagged traffic.
const DefaultTenant = "default"

// TenantConfig provisions one tenant.
type TenantConfig struct {
	// Name identifies the tenant (the X-Tenant header value).
	Name string `json:"name"`
	// Weight is the tenant's WFQ share and its proportion of the shed
	// budget. Zero or negative means 1.
	Weight float64 `json:"weight"`
	// BucketRate is the admission token-bucket refill rate in request
	// tokens per second. Zero means the registry default; negative means
	// unlimited.
	BucketRate float64 `json:"bucket_rate"`
	// BucketBurst is the bucket capacity in request tokens. Zero means the
	// registry default (or the rate, whichever is larger).
	BucketBurst float64 `json:"bucket_burst"`
}

// normWeight returns the effective WFQ weight.
func (t TenantConfig) normWeight() float64 {
	if t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

// Registry holds the provisioned tenants plus the defaults applied to
// tenants that were never explicitly configured (open registration: an
// unknown X-Tenant is a real tenant with default provisioning, not an
// error — the fairness layer must isolate tenants nobody predicted).
type Registry struct {
	// DefaultRate and DefaultBurst provision unregistered tenants' buckets.
	// Zero rate means unlimited.
	DefaultRate  float64
	DefaultBurst float64

	tenants map[string]TenantConfig
	order   []string // registration order, for deterministic listings
}

// NewRegistry builds a registry over the explicitly provisioned tenants.
func NewRegistry(tenants ...TenantConfig) *Registry {
	r := &Registry{tenants: make(map[string]TenantConfig, len(tenants))}
	for _, t := range tenants {
		if t.Name == "" {
			t.Name = DefaultTenant
		}
		if _, dup := r.tenants[t.Name]; !dup {
			r.order = append(r.order, t.Name)
		}
		r.tenants[t.Name] = t
	}
	return r
}

// Lookup returns the tenant's config, falling back to the registry
// defaults for unregistered names. The empty name is the default tenant.
func (r *Registry) Lookup(name string) TenantConfig {
	if name == "" {
		name = DefaultTenant
	}
	if r != nil {
		if t, ok := r.tenants[name]; ok {
			if t.BucketRate == 0 {
				t.BucketRate = r.DefaultRate
			}
			if t.BucketBurst == 0 {
				t.BucketBurst = r.DefaultBurst
			}
			return t
		}
	}
	cfg := TenantConfig{Name: name, Weight: 1}
	if r != nil {
		cfg.BucketRate = r.DefaultRate
		cfg.BucketBurst = r.DefaultBurst
	}
	return cfg
}

// Weight returns the tenant's effective WFQ weight.
func (r *Registry) Weight(name string) float64 { return r.Lookup(name).normWeight() }

// Names lists the explicitly provisioned tenants in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.order...)
}

// ParseTenants parses a -tenants flag value:
//
//	name[:weight[:rate[:burst]]] , name[:weight[:rate[:burst]]] , ...
//
// e.g. "free:1:200:400,premium:4" — premium inherits the default bucket.
func ParseTenants(spec string) ([]TenantConfig, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []TenantConfig
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) > 4 {
			return nil, fmt.Errorf("fair: tenant %q has %d fields (max name:weight:rate:burst)", part, len(fields))
		}
		t := TenantConfig{Name: strings.TrimSpace(fields[0])}
		if t.Name == "" {
			return nil, fmt.Errorf("fair: tenant entry %q has no name", part)
		}
		var err error
		if len(fields) > 1 && fields[1] != "" {
			if t.Weight, err = strconv.ParseFloat(fields[1], 64); err != nil || t.Weight <= 0 {
				return nil, fmt.Errorf("fair: tenant %s: bad weight %q", t.Name, fields[1])
			}
		}
		if len(fields) > 2 && fields[2] != "" {
			if t.BucketRate, err = strconv.ParseFloat(fields[2], 64); err != nil || t.BucketRate < 0 {
				return nil, fmt.Errorf("fair: tenant %s: bad bucket rate %q", t.Name, fields[2])
			}
		}
		if len(fields) > 3 && fields[3] != "" {
			if t.BucketBurst, err = strconv.ParseFloat(fields[3], 64); err != nil || t.BucketBurst < 0 {
				return nil, fmt.Errorf("fair: tenant %s: bad bucket burst %q", t.Name, fields[3])
			}
		}
		out = append(out, t)
	}
	return out, nil
}

// Class is one SLO class: a named service tier mapping to the SLA weight
// that feeds sched.Request.Utility (vₙ = wₙ/lₙ) and to the deadline a
// request gets when it does not bring its own.
type Class struct {
	Name string `json:"name"`
	// Weight multiplies the request's utility. Zero or negative means 1.
	Weight float64 `json:"weight"`
	// Deadline is the default scheduling deadline for requests of this
	// class that specify none.
	Deadline time.Duration `json:"deadline"`
}

// The built-in SLO classes. Interactive requests are worth 4 standard ones
// of the same length to the utility-maximizing scheduler and get tight
// deadlines; batch requests are background filler that only runs when it
// does not displace anything more valuable.
const (
	ClassInteractive = "interactive"
	ClassStandard    = "standard"
	ClassBatch       = "batch"
)

// ClassSet maps class names to their definitions.
type ClassSet struct {
	classes map[string]Class
	order   []string
}

// DefaultClasses returns the built-in interactive/standard/batch tiers.
func DefaultClasses() *ClassSet {
	return NewClassSet(
		Class{Name: ClassInteractive, Weight: 4, Deadline: 500 * time.Millisecond},
		Class{Name: ClassStandard, Weight: 1, Deadline: 2 * time.Second},
		Class{Name: ClassBatch, Weight: 0.25, Deadline: 10 * time.Second},
	)
}

// NewClassSet builds a class set; the first class is the default for
// unclassified requests.
func NewClassSet(classes ...Class) *ClassSet {
	s := &ClassSet{classes: make(map[string]Class, len(classes))}
	for _, c := range classes {
		if _, dup := s.classes[c.Name]; !dup {
			s.order = append(s.order, c.Name)
		}
		s.classes[c.Name] = c
	}
	return s
}

// Lookup resolves a class name; the empty name means "standard" when
// present, otherwise the first registered class. Unknown names resolve to
// a weight-1 class of that name so misconfigured clients degrade to
// standard service instead of erroring.
func (s *ClassSet) Lookup(name string) Class {
	if s == nil || len(s.order) == 0 {
		if name == "" {
			name = ClassStandard
		}
		return Class{Name: name, Weight: 1, Deadline: 2 * time.Second}
	}
	if name == "" {
		if c, ok := s.classes[ClassStandard]; ok {
			return c
		}
		return s.classes[s.order[0]]
	}
	if c, ok := s.classes[name]; ok {
		return c
	}
	return Class{Name: name, Weight: 1, Deadline: s.Lookup("").Deadline}
}

// Names lists the classes in registration order.
func (s *ClassSet) Names() []string {
	if s == nil {
		return nil
	}
	return append([]string(nil), s.order...)
}

// ParseClasses parses a -slo-classes flag value:
//
//	name:weight:deadline , ...   e.g. "interactive:4:250ms,standard:1:1s,batch:0.25:5s"
func ParseClasses(spec string) (*ClassSet, error) {
	if strings.TrimSpace(spec) == "" {
		return DefaultClasses(), nil
	}
	var classes []Class
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("fair: class %q must be name:weight:deadline", part)
		}
		w, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("fair: class %s: bad weight %q", fields[0], fields[1])
		}
		d, err := time.ParseDuration(fields[2])
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("fair: class %s: bad deadline %q", fields[0], fields[2])
		}
		classes = append(classes, Class{Name: strings.TrimSpace(fields[0]), Weight: w, Deadline: d})
	}
	if len(classes) == 0 {
		return DefaultClasses(), nil
	}
	return NewClassSet(classes...), nil
}

// JainIndex computes Jain's fairness index over per-tenant allocations:
// (Σxᵢ)² / (n·Σxᵢ²). 1.0 is perfect equality; 1/n is one tenant taking
// everything. Zero-valued entries count (a starved tenant drags the index
// down — that is the point); an empty or all-zero input returns 1 (nothing
// was allocated, nobody was treated unfairly).
func JainIndex(alloc []float64) float64 {
	var sum, sumSq float64
	for _, x := range alloc {
		sum += x
		sumSq += x * x
	}
	if len(alloc) == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(alloc)) * sumSq)
}

// JainIndexMap is JainIndex over a map's values (order-independent).
func JainIndexMap[V ~int | ~int64 | ~float64](m map[string]V) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	alloc := make([]float64, 0, len(keys))
	for _, k := range keys {
		alloc = append(alloc, float64(m[k]))
	}
	return JainIndex(alloc)
}
