package fair

import (
	"math"
	"sync"
	"time"
)

// Bucket is a token bucket: capacity Burst tokens, refilled at Rate tokens
// per second. Take is lazy-refill (no background goroutine) and returns
// how long the caller should wait before retrying when it refuses — the
// HTTP front turns that into a 429 with Retry-After.
type Bucket struct {
	rate  float64
	burst float64

	mu     sync.Mutex
	tokens float64
	last   time.Time
	now    func() time.Time // injectable clock for tests
}

// NewBucket builds a full bucket. Rate <= 0 means unlimited (Take always
// succeeds); burst <= 0 defaults to one second of rate (at least 1).
func NewBucket(rate, burst float64) *Bucket {
	if burst <= 0 {
		burst = math.Max(rate, 1)
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
}

// Take attempts to draw n tokens. It returns ok=true when the bucket had
// them; otherwise retryAfter estimates when n tokens will have refilled
// (never less than a millisecond, so clients cannot busy-spin on a zero).
func (b *Bucket) Take(n float64) (ok bool, retryAfter time.Duration) {
	if b == nil || b.rate <= 0 {
		return true, 0
	}
	if n <= 0 {
		n = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	need := n
	if need > b.burst {
		need = b.burst // a request larger than the burst refills to full, at best
	}
	wait := time.Duration((need - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// Limiter keys token buckets by tenant, provisioning them from a Registry
// on first sight, and counts per-tenant admission outcomes.
type Limiter struct {
	registry *Registry

	mu      sync.Mutex
	buckets map[string]*Bucket
	counts  map[string]*AdmissionCounts
}

// AdmissionCounts is one tenant's admission-control tally.
type AdmissionCounts struct {
	Allowed   int64 `json:"allowed"`
	Throttled int64 `json:"throttled"`
}

// NewLimiter builds a limiter over the registry's bucket provisioning.
// A nil registry limits nothing (every Take succeeds).
func NewLimiter(registry *Registry) *Limiter {
	return &Limiter{
		registry: registry,
		buckets:  make(map[string]*Bucket),
		counts:   make(map[string]*AdmissionCounts),
	}
}

// Take draws cost tokens from the tenant's bucket, creating it on first
// sight with the tenant's provisioned (or default) rate and burst.
func (l *Limiter) Take(tenant string, cost int) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	l.mu.Lock()
	b := l.buckets[tenant]
	if b == nil {
		cfg := l.registry.Lookup(tenant)
		rate := cfg.BucketRate
		if rate < 0 {
			rate = 0 // negative = explicitly unlimited
		}
		b = NewBucket(rate, cfg.BucketBurst)
		l.buckets[tenant] = b
	}
	c := l.counts[tenant]
	if c == nil {
		c = &AdmissionCounts{}
		l.counts[tenant] = c
	}
	l.mu.Unlock()

	ok, retryAfter = b.Take(float64(cost))
	l.mu.Lock()
	if ok {
		c.Allowed++
	} else {
		c.Throttled++
	}
	l.mu.Unlock()
	return ok, retryAfter
}

// Counts snapshots the per-tenant admission tallies.
func (l *Limiter) Counts() map[string]AdmissionCounts {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]AdmissionCounts, len(l.counts))
	for k, v := range l.counts {
		out[k] = *v
	}
	return out
}
