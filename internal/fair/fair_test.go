package fair

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestWFQInterleavesFlooder: a flooder with 100 queued requests and a
// light tenant with 2 must drain light's head near the front — WFQ order
// puts the light tenant's requests before almost all of the flood.
func TestWFQInterleavesFlooder(t *testing.T) {
	w := NewWFQ(nil, nil)
	type stamped struct {
		tenant string
		f      float64
	}
	var all []stamped
	for i := 0; i < 100; i++ {
		all = append(all, stamped{"flood", w.Stamp("flood", 10)})
	}
	for i := 0; i < 2; i++ {
		all = append(all, stamped{"light", w.Stamp("light", 10)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].f < all[j].f })
	// Equal weights: light's two requests must appear within the first
	// four positions (behind at most one flood request each).
	pos := map[string][]int{}
	for i, s := range all {
		pos[s.tenant] = append(pos[s.tenant], i)
	}
	if pos["light"][1] > 3 {
		t.Fatalf("light tenant buried at positions %v", pos["light"])
	}
}

// TestWFQWeightsProportional: with weight 3 vs 1 and identical backlogs,
// the first 40 positions in virtual-time order should contain ~3× as many
// heavy-tenant requests.
func TestWFQWeightsProportional(t *testing.T) {
	weights := map[string]float64{"heavy": 3, "light": 1}
	w := NewWFQ(nil, func(name string) float64 { return weights[name] })
	type stamped struct {
		tenant string
		f      float64
	}
	var all []stamped
	for i := 0; i < 60; i++ {
		all = append(all, stamped{"heavy", w.Stamp("heavy", 10)})
		all = append(all, stamped{"light", w.Stamp("light", 10)})
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].f < all[j].f })
	heavy := 0
	for _, s := range all[:40] {
		if s.tenant == "heavy" {
			heavy++
		}
	}
	if heavy < 27 || heavy > 33 { // ideal 30 of 40
		t.Fatalf("heavy got %d of first 40 slots, want ~30", heavy)
	}
}

// TestWFQIdleTenantNoBanking: a tenant idle while the clock advances must
// not accumulate credit — its first request after the idle spell starts at
// the current virtual clock, not at zero.
func TestWFQIdleTenantNoBanking(t *testing.T) {
	w := NewWFQ(nil, nil)
	// Busy tenant pushes the clock forward.
	for i := 0; i < 50; i++ {
		f := w.Stamp("busy", 10)
		w.Dispatched("busy", f)
	}
	clock := w.VClock()
	if clock <= 0 {
		t.Fatal("virtual clock did not advance")
	}
	f := w.Stamp("idle", 10)
	if f < clock {
		t.Fatalf("idle tenant stamped %g before the clock %g (banked credit)", f, clock)
	}
}

// TestWFQAbandonedReleasesHorizon: a tenant whose backlog all expires must
// not keep an inflated horizon once drained.
func TestWFQAbandonedReleasesHorizon(t *testing.T) {
	w := NewWFQ(nil, nil)
	for i := 0; i < 20; i++ {
		w.Stamp("doomed", 100)
	}
	for i := 0; i < 20; i++ {
		w.Abandoned("doomed")
	}
	if got := w.Backlog("doomed"); got != 0 {
		t.Fatalf("backlog = %d after full abandonment", got)
	}
	// Advance the clock past the abandoned horizon; the tenant's next
	// stamp must start at the clock, not its stale lastFinish.
	f := w.Stamp("other", 5000)
	w.Dispatched("other", f)
	g := w.Stamp("doomed", 10)
	if g < w.VClock() {
		t.Fatalf("abandoned tenant stamped %g before clock %g", g, w.VClock())
	}
}

// TestWFQConcurrentStamps: racing stamps/dispatches stay consistent (run
// under -race in CI).
func TestWFQConcurrentStamps(t *testing.T) {
	w := NewWFQ(nil, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%3)
			for i := 0; i < 200; i++ {
				f := w.Stamp(tenant, 7)
				if i%2 == 0 {
					w.Dispatched(tenant, f)
				} else {
					w.Abandoned(tenant)
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 3; g++ {
		if b := w.Backlog(fmt.Sprintf("t%d", g)); b != 0 {
			t.Fatalf("tenant t%d backlog = %d after drain", g, b)
		}
	}
}

func TestBucketTakeAndRefill(t *testing.T) {
	b := NewBucket(100, 50) // 100 tokens/s, burst 50
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }

	if ok, _ := b.Take(50); !ok {
		t.Fatal("full bucket refused its burst")
	}
	ok, retry := b.Take(10)
	if ok {
		t.Fatal("empty bucket granted tokens")
	}
	if retry < time.Millisecond || retry > 200*time.Millisecond {
		t.Fatalf("retryAfter = %v, want ~100ms", retry)
	}
	now = now.Add(100 * time.Millisecond) // refills 10 tokens
	if ok, _ := b.Take(10); !ok {
		t.Fatal("bucket did not refill")
	}
	// Refill caps at burst.
	now = now.Add(time.Hour)
	if ok, _ := b.Take(50); !ok {
		t.Fatal("bucket did not cap refill at burst")
	}
	if ok, _ := b.Take(1); ok {
		t.Fatal("bucket exceeded burst")
	}
}

func TestBucketUnlimitedAndOversized(t *testing.T) {
	if ok, _ := NewBucket(0, 0).Take(1e9); !ok {
		t.Fatal("rate 0 must be unlimited")
	}
	var nilBucket *Bucket
	if ok, _ := nilBucket.Take(1); !ok {
		t.Fatal("nil bucket must be unlimited")
	}
	// A request larger than the burst still gets a finite retry estimate.
	b := NewBucket(10, 5)
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }
	b.Take(5)
	ok, retry := b.Take(100)
	if ok {
		t.Fatal("oversized take granted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("oversized retryAfter = %v", retry)
	}
}

func TestLimiterProvisionsFromRegistry(t *testing.T) {
	reg := NewRegistry(TenantConfig{Name: "paid", BucketRate: 1000, BucketBurst: 1000})
	reg.DefaultRate, reg.DefaultBurst = 10, 10
	l := NewLimiter(reg)

	if ok, _ := l.Take("paid", 500); !ok {
		t.Fatal("paid tenant refused within burst")
	}
	// Unknown tenant gets the default 10-token bucket.
	if ok, _ := l.Take("stranger", 10); !ok {
		t.Fatal("stranger refused its default burst")
	}
	ok, retry := l.Take("stranger", 10)
	if ok {
		t.Fatal("stranger exceeded its default burst")
	}
	if retry <= 0 {
		t.Fatal("throttle must carry a retry hint")
	}
	c := l.Counts()
	if c["stranger"].Allowed != 1 || c["stranger"].Throttled != 1 {
		t.Fatalf("stranger counts = %+v", c["stranger"])
	}
	if c["paid"].Throttled != 0 {
		t.Fatalf("paid throttled = %d", c["paid"].Throttled)
	}
	// Nil limiter is a no-op front.
	var nl *Limiter
	if ok, _ := nl.Take("x", 1); !ok {
		t.Fatal("nil limiter must admit")
	}
}

func TestParseTenants(t *testing.T) {
	ts, err := ParseTenants("free:1:200:400, premium:4 , bulk")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("parsed %d tenants", len(ts))
	}
	if ts[0].Name != "free" || ts[0].Weight != 1 || ts[0].BucketRate != 200 || ts[0].BucketBurst != 400 {
		t.Fatalf("free = %+v", ts[0])
	}
	if ts[1].Name != "premium" || ts[1].Weight != 4 || ts[1].BucketRate != 0 {
		t.Fatalf("premium = %+v", ts[1])
	}
	if ts[2].Name != "bulk" || ts[2].Weight != 0 {
		t.Fatalf("bulk = %+v", ts[2])
	}
	for _, bad := range []string{"a:b", "x:-1", "x:1:nope", "x:1:1:nope", ":2", "a:1:2:3:4"} {
		if _, err := ParseTenants(bad); err == nil {
			t.Fatalf("ParseTenants(%q) accepted", bad)
		}
	}
	if ts, err := ParseTenants("  "); err != nil || ts != nil {
		t.Fatalf("blank spec = %v, %v", ts, err)
	}
}

func TestRegistryLookupDefaults(t *testing.T) {
	reg := NewRegistry(TenantConfig{Name: "a", Weight: 2})
	reg.DefaultRate, reg.DefaultBurst = 7, 14
	if got := reg.Weight("a"); got != 2 {
		t.Fatalf("weight a = %g", got)
	}
	if got := reg.Weight("unknown"); got != 1 {
		t.Fatalf("weight unknown = %g", got)
	}
	cfg := reg.Lookup("a")
	if cfg.BucketRate != 7 || cfg.BucketBurst != 14 {
		t.Fatalf("registered tenant missing default buckets: %+v", cfg)
	}
	if got := reg.Lookup(""); got.Name != DefaultTenant {
		t.Fatalf("empty lookup = %+v", got)
	}
	var nilReg *Registry
	if got := nilReg.Lookup("x"); got.normWeight() != 1 {
		t.Fatalf("nil registry lookup = %+v", got)
	}
	if names := nilReg.Names(); names != nil {
		t.Fatalf("nil registry names = %v", names)
	}
}

func TestParseClasses(t *testing.T) {
	s, err := ParseClasses("gold:8:100ms,bronze:0.5:4s")
	if err != nil {
		t.Fatal(err)
	}
	if c := s.Lookup("gold"); c.Weight != 8 || c.Deadline != 100*time.Millisecond {
		t.Fatalf("gold = %+v", c)
	}
	// Unknown class degrades to weight 1.
	if c := s.Lookup("mystery"); c.Weight != 1 {
		t.Fatalf("mystery = %+v", c)
	}
	// Defaults come back for empty specs.
	d, err := ParseClasses("")
	if err != nil {
		t.Fatal(err)
	}
	if c := d.Lookup(ClassInteractive); c.Weight != 4 {
		t.Fatalf("interactive = %+v", c)
	}
	if c := d.Lookup(""); c.Name != ClassStandard {
		t.Fatalf("default class = %+v", c)
	}
	for _, bad := range []string{"x:1", "x:0:1s", "x:1:0s", "x:1:soon"} {
		if _, err := ParseClasses(bad); err == nil {
			t.Fatalf("ParseClasses(%q) accepted", bad)
		}
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal alloc index = %g", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("one-taker index = %g", got)
	}
	if got := JainIndex(nil); got != 1 {
		t.Fatalf("empty index = %g", got)
	}
	if got := JainIndexMap(map[string]int64{"a": 3, "b": 3}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("map index = %g", got)
	}
}
