package sched

import "fmt"

// DAS is the paper's Online Deadline-Aware Scheduling algorithm
// (Algorithm 1). Per batch row it splits the utility-sorted pending
// sequence into three parts (Fig. 8):
//
//  1. the utility-dominant set N̄ᵁ — the first p = η·s requests by utility,
//     where s is the saturating prefix length;
//  2. the deadline-aware set N̄ᴰ — remaining requests with utility at least
//     q·v̄(N̄ᵁ), taken in earliest-deadline order; and
//  3. the rest, taken greedily in utility order if space remains.
//
// With η + q = 1 the algorithm is ηq/(ηq+1)-competitive (Theorem 5.1);
// η = q = ½ gives the ⅕ bound.
type DAS struct {
	Eta float64 // η ∈ (0, 1); fraction of the saturating prefix taken on utility
	Q   float64 // q ∈ (0, 1); utility threshold factor for the deadline-aware set
}

// NewDAS returns DAS with the paper's default η = q = ½.
func NewDAS() *DAS { return &DAS{Eta: 0.5, Q: 0.5} }

// Name implements Scheduler.
func (d *DAS) Name() string { return "DAS" }

// Validate checks the tunable parameters.
func (d *DAS) Validate() error {
	if d.Eta <= 0 || d.Eta >= 1 || d.Q <= 0 || d.Q >= 1 {
		return fmt.Errorf("sched: DAS parameters η=%g q=%g must lie in (0,1)", d.Eta, d.Q)
	}
	return nil
}

// CompetitiveRatio returns ηq/(ηq+1), the bound of Theorem 5.1.
func (d *DAS) CompetitiveRatio() float64 {
	return d.Eta * d.Q / (d.Eta*d.Q + 1)
}

// Schedule implements Algorithm 1.
func (d *DAS) Schedule(now float64, pending []*Request, B, L int) Decision {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	dec := Decision{Rows: make([][]*Request, B)}
	remaining := append([]*Request(nil), pending...)
	for k := 0; k < B; k++ {
		if len(remaining) == 0 {
			break
		}
		// Line 4–5: if everything fits the row, take it all.
		if TotalLen(remaining) <= L {
			dec.Rows[k] = remaining
			remaining = nil
			break
		}
		row, nu := d.scheduleRow(remaining, L)
		dec.Rows[k] = row
		dec.UtilityDominant = append(dec.UtilityDominant, nu...)
		remaining = subtract(remaining, row)
	}
	return dec
}

// scheduleRow fills one batch row following lines 7–15 of Algorithm 1 and
// returns the row plus its utility-dominant subset N̄ᵁ.
func (d *DAS) scheduleRow(pending []*Request, L int) (row, nu []*Request) {
	// Line 7: sort by utility, non-increasing.
	sorted := append([]*Request(nil), pending...)
	byUtilityDesc(sorted)

	// Line 8: s = length of the saturating prefix.
	s, load := 0, 0
	for _, r := range sorted {
		if load+r.Len > L {
			break
		}
		load += r.Len
		s++
	}
	if s == 0 {
		// Even the shortest request does not fit (all longer than L).
		return nil, nil
	}

	// Line 9–10: take the first p = η·s requests (at least one).
	p := int(d.Eta * float64(s))
	if p < 1 {
		p = 1
	}
	if p > s {
		p = s
	}
	nu = append(nu, sorted[:p]...)
	row = append(row, nu...)
	rowLoad := TotalLen(nu)

	// Line 11: deadline-aware set — utility at least q·v̄(N̄ᵁ).
	vbar := TotalUtility(nu) / float64(len(nu))
	threshold := d.Q * vbar
	var nd []*Request
	inNU := make(map[int64]bool, len(nu))
	for _, r := range nu {
		inNU[r.ID] = true
	}
	for _, r := range sorted[p:] {
		if r.Utility() >= threshold {
			nd = append(nd, r)
		}
	}
	// Line 12: earliest deadline first, greedily.
	byDeadlineAsc(nd)
	inND := make(map[int64]bool, len(nd))
	for _, r := range nd {
		inND[r.ID] = true
		if rowLoad+r.Len <= L {
			row = append(row, r)
			rowLoad += r.Len
		}
	}

	// Lines 13–14: if space remains, fill from the rest in utility order.
	if rowLoad < L {
		for _, r := range sorted[p:] {
			if inND[r.ID] {
				continue
			}
			if rowLoad+r.Len <= L {
				row = append(row, r)
				rowLoad += r.Len
			}
		}
	}
	return row, nu
}

// subtract removes chosen from pending, preserving order.
func subtract(pending, chosen []*Request) []*Request {
	drop := make(map[int64]bool, len(chosen))
	for _, r := range chosen {
		drop[r.ID] = true
	}
	out := pending[:0]
	for _, r := range pending {
		if !drop[r.ID] {
			out = append(out, r)
		}
	}
	return out
}
