package sched

// BruteForceOPT solves the offline scheduling MILP (Eq. 9–13) exactly by
// exhaustive search, for the small instances the competitive-ratio tests
// use. slotTimes lists the batch start times; each slot offers B rows of
// capacity L. A request may go to any (t, k) with aₙ ≤ t ≤ dₙ, or be
// dropped. Returns the maximum achievable total utility.
//
// The search is exponential in len(requests); keep instances tiny (≤ 10
// requests, ≤ 4 slots).
func BruteForceOPT(requests []*Request, slotTimes []float64, B, L int) float64 {
	nCells := len(slotTimes) * B
	capacity := make([]int, nCells)
	for i := range capacity {
		capacity[i] = L
	}
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == len(requests) {
			return 0
		}
		r := requests[i]
		best := rec(i + 1) // drop r
		for t, st := range slotTimes {
			if st < r.Arrival || st > r.Deadline {
				continue
			}
			for k := 0; k < B; k++ {
				cell := t*B + k
				if capacity[cell] < r.Len {
					continue
				}
				capacity[cell] -= r.Len
				if v := r.Utility() + rec(i+1); v > best {
					best = v
				}
				capacity[cell] += r.Len
			}
		}
		return best
	}
	return rec(0)
}

// RunOnline simulates a scheduler over fixed slot times: at each slot, the
// alive pending requests are offered to the scheduler and the chosen ones
// leave the pool. It returns the total utility achieved — the ALG side of
// Theorem 5.1's ALG ≥ α·OPT.
func RunOnline(s Scheduler, requests []*Request, slotTimes []float64, B, L int) float64 {
	pool := append([]*Request(nil), requests...)
	var total float64
	for _, now := range slotTimes {
		alive, _, future := Expire(pool, now)
		dec := s.Schedule(now, alive, B, L)
		total += dec.Utility()
		chosen := make(map[int64]bool)
		for _, r := range dec.Chosen() {
			chosen[r.ID] = true
		}
		var next []*Request
		for _, r := range alive {
			if !chosen[r.ID] {
				next = append(next, r)
			}
		}
		pool = append(next, future...)
	}
	return total
}
