package sched

// SlottedDAS is Algorithm 2: run DAS for candidate selection, derive the
// slot size from the utility-dominant set (its maximum request length, so
// no utility-dominant request is ever discarded by the slot constraint),
// then re-pack each row's candidates into slots greedily. Candidates longer
// than the slot size are dropped back to the pending pool — the capacity
// trade-off §5.3 describes ("a smaller slot can eliminate more redundancy,
// but can accommodate less requests").
type SlottedDAS struct {
	DAS DAS
}

// NewSlottedDAS returns SlottedDAS with the default η = q = ½.
func NewSlottedDAS() *SlottedDAS { return &SlottedDAS{DAS: *NewDAS()} }

// Name implements Scheduler.
func (s *SlottedDAS) Name() string { return "SlottedDAS" }

// Schedule implements Algorithm 2.
func (s *SlottedDAS) Schedule(now float64, pending []*Request, B, L int) Decision {
	// Line 2: invoke DAS.
	base := s.DAS.Schedule(now, pending, B, L)

	// Lines 3–4: slot size = max length in the utility-dominant set.
	// When DAS finished via the everything-fits shortcut, the dominant set
	// is empty; fall back to the longest chosen request so nothing drops.
	z := 0
	for _, r := range base.UtilityDominant {
		if r.Len > z {
			z = r.Len
		}
	}
	if z == 0 {
		for _, r := range base.Chosen() {
			if r.Len > z {
				z = r.Len
			}
		}
	}
	if z == 0 || z > L {
		z = L
	}

	// Lines 5–7: divide each row into ⌊L/z⌋ slots and place the row's
	// candidates greedily, preserving DAS's priority order.
	slotsPerRow := L / z
	out := Decision{
		Rows:            make([][]*Request, len(base.Rows)),
		UtilityDominant: base.UtilityDominant,
		SlotSize:        z,
	}
	for k, row := range base.Rows {
		free := make([]int, slotsPerRow)
		slots := make([][]*Request, slotsPerRow)
		for i := range free {
			free[i] = z
		}
		for _, r := range row {
			if r.Len > z {
				continue // dropped back to pending by omission
			}
			for si := range free {
				if free[si] >= r.Len {
					free[si] -= r.Len
					slots[si] = append(slots[si], r)
					break
				}
			}
		}
		// Flatten in slot order so the row's concatenation order matches
		// the physical slot layout downstream (batch.SlotGroups relies
		// on slot-ordered rows).
		for _, s := range slots {
			out.Rows[k] = append(out.Rows[k], s...)
		}
	}
	return out
}
