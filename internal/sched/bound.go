package sched

import "sort"

// FractionalUpperBound returns an upper bound on the offline optimum of the
// scheduling MILP (Eq. 9–13) that is computable for instances far beyond
// BruteForceOPT's reach: relax integrality and the per-(slot,row) structure
// to a single aggregate token budget numSlots·B·L, then solve the resulting
// fractional knapsack greedily by utility density vₙ/lₙ = 1/lₙ².
//
// Validity: any feasible schedule processes at most numSlots·B·L request
// tokens in total and earns vₙ per fully scheduled request, so it is a
// feasible point of the relaxed problem, whose optimum the greedy
// fractional fill attains exactly. The bound ignores time windows and
// per-row packing, so it can be loose — it is an upper bound, never an
// estimate.
func FractionalUpperBound(requests []*Request, numSlots, B, L int) float64 {
	if numSlots <= 0 || B <= 0 || L <= 0 {
		return 0
	}
	budget := float64(numSlots) * float64(B) * float64(L)
	order := append([]*Request(nil), requests...)
	// Density vₙ/lₙ = 1/lₙ²: shortest first (ties by ID for determinism).
	sort.SliceStable(order, func(a, b int) bool {
		if order[a].Len != order[b].Len {
			return order[a].Len < order[b].Len
		}
		return order[a].ID < order[b].ID
	})
	var total float64
	for _, r := range order {
		if budget <= 0 {
			break
		}
		l := float64(r.Len)
		if l <= budget {
			total += r.Utility()
			budget -= l
		} else {
			total += r.Utility() * budget / l
			budget = 0
		}
	}
	return total
}

// EfficiencyRatio runs scheduler s online over the slot times and reports
// ALG / UB, where UB is the fractional upper bound. The true competitive
// ratio ALG/OPT is at least this value (OPT ≤ UB), so a high ratio here
// certifies near-optimality on the instance.
func EfficiencyRatio(s Scheduler, requests []*Request, slotTimes []float64, B, L int) float64 {
	ub := FractionalUpperBound(requests, len(slotTimes), B, L)
	if ub == 0 {
		return 1
	}
	return RunOnline(s, requests, slotTimes, B, L) / ub
}
