package sched

// FCFS schedules first-come-first-served: requests fill the batch in
// arrival order (§6.2.2, §6.2.4).
type FCFS struct{}

// Name implements Scheduler.
func (FCFS) Name() string { return "FCFS" }

// Schedule implements Scheduler.
func (FCFS) Schedule(now float64, pending []*Request, B, L int) Decision {
	order := append([]*Request(nil), pending...)
	byArrivalAsc(order)
	return Decision{Rows: fillRowsInOrder(order, B, L)}
}

// SJF schedules shortest-job-first: requests fill the batch in increasing
// length order (§6.2.4).
type SJF struct{}

// Name implements Scheduler.
func (SJF) Name() string { return "SJF" }

// Schedule implements Scheduler.
func (SJF) Schedule(now float64, pending []*Request, B, L int) Decision {
	order := append([]*Request(nil), pending...)
	byLenAsc(order)
	return Decision{Rows: fillRowsInOrder(order, B, L)}
}

// DEF schedules deadline-early-first (earliest deadline first, §6.2.4).
type DEF struct{}

// Name implements Scheduler.
func (DEF) Name() string { return "DEF" }

// Schedule implements Scheduler.
func (DEF) Schedule(now float64, pending []*Request, B, L int) Decision {
	order := append([]*Request(nil), pending...)
	byDeadlineAsc(order)
	return Decision{Rows: fillRowsInOrder(order, B, L)}
}
