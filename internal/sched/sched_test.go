package sched

import (
	"math"
	"testing"

	"tcb/internal/rng"
)

func req(id int64, length int, arrival, deadline float64) *Request {
	return &Request{ID: id, Arrival: arrival, Deadline: deadline, Len: length}
}

func TestRequestUtility(t *testing.T) {
	if u := req(1, 4, 0, 10).Utility(); u != 0.25 {
		t.Fatalf("utility = %v, want 0.25", u)
	}
}

func TestRequestValidate(t *testing.T) {
	if req(1, 5, 0, 10).Validate() != nil {
		t.Fatal("valid request rejected")
	}
	if req(1, 0, 0, 10).Validate() == nil {
		t.Fatal("zero length should fail")
	}
	if req(1, 5, 10, 5).Validate() == nil {
		t.Fatal("deadline before arrival should fail")
	}
}

func TestExpire(t *testing.T) {
	pool := []*Request{
		req(1, 5, 0, 10), // alive at t=5
		req(2, 5, 0, 3),  // expired at t=5
		req(3, 5, 8, 20), // future at t=5
		req(4, 5, 5, 5),  // boundary: alive exactly at deadline
	}
	alive, expired, future := Expire(pool, 5)
	if len(alive) != 2 || len(expired) != 1 || len(future) != 1 {
		t.Fatalf("alive/expired/future = %d/%d/%d", len(alive), len(expired), len(future))
	}
	if expired[0].ID != 2 || future[0].ID != 3 {
		t.Fatal("wrong partition membership")
	}
}

func TestTotalHelpers(t *testing.T) {
	rs := []*Request{req(1, 2, 0, 9), req(2, 4, 0, 9)}
	if TotalLen(rs) != 6 {
		t.Fatalf("TotalLen = %d", TotalLen(rs))
	}
	if u := TotalUtility(rs); math.Abs(u-0.75) > 1e-12 {
		t.Fatalf("TotalUtility = %v", u)
	}
}

func TestDecisionValidate(t *testing.T) {
	r1, r2 := req(1, 4, 0, 10), req(2, 5, 0, 10)
	good := Decision{Rows: [][]*Request{{r1, r2}}}
	if err := good.Validate(5, 10); err != nil {
		t.Fatal(err)
	}
	over := Decision{Rows: [][]*Request{{r1, r2, req(3, 3, 0, 10)}}}
	if over.Validate(5, 10) == nil {
		t.Fatal("overloaded row should fail")
	}
	dup := Decision{Rows: [][]*Request{{r1}, {r1}}}
	if dup.Validate(5, 100) == nil {
		t.Fatal("duplicate should fail")
	}
	late := Decision{Rows: [][]*Request{{req(4, 2, 0, 3)}}}
	if late.Validate(5, 100) == nil {
		t.Fatal("scheduling after deadline should fail")
	}
}

func TestDASDefaults(t *testing.T) {
	d := NewDAS()
	if d.Eta != 0.5 || d.Q != 0.5 {
		t.Fatalf("defaults = %v/%v", d.Eta, d.Q)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if r := d.CompetitiveRatio(); math.Abs(r-0.2) > 1e-12 {
		t.Fatalf("competitive ratio = %v, want 0.2 (⅕)", r)
	}
	if d.Name() != "DAS" {
		t.Fatal("name wrong")
	}
}

func TestDASValidateRejectsBadParams(t *testing.T) {
	for _, d := range []*DAS{{Eta: 0, Q: 0.5}, {Eta: 1, Q: 0.5}, {Eta: 0.5, Q: 0}, {Eta: 0.5, Q: 1}} {
		if d.Validate() == nil {
			t.Fatalf("params %+v should be rejected", d)
		}
	}
}

func TestDASEverythingFitsShortcut(t *testing.T) {
	// Line 4–5: total load ≤ L → all requests into one row.
	d := NewDAS()
	pending := []*Request{req(1, 3, 0, 9), req(2, 4, 0, 9)}
	dec := d.Schedule(0, pending, 4, 10)
	if len(dec.Rows[0]) != 2 {
		t.Fatalf("row 0 = %d requests, want 2", len(dec.Rows[0]))
	}
	if err := dec.Validate(0, 10); err != nil {
		t.Fatal(err)
	}
}

func TestDASUtilityDominantFirst(t *testing.T) {
	// Shortest requests carry highest utility; DAS must pick them for NU.
	d := NewDAS()
	pending := []*Request{
		req(1, 10, 0, 100), req(2, 2, 0, 100), req(3, 9, 0, 100),
		req(4, 3, 0, 100), req(5, 8, 0, 100), req(6, 7, 0, 100),
	}
	dec := d.Schedule(0, pending, 1, 10)
	if err := dec.Validate(0, 10); err != nil {
		t.Fatal(err)
	}
	// Sorted by utility: 2,3,7,8,9,10. Saturating prefix: 2+3=5, +7 > 10 → s=2.
	// p = max(1, ⌊0.5·2⌋) = 1 → NU = {len 2}.
	if len(dec.UtilityDominant) != 1 || dec.UtilityDominant[0].ID != 2 {
		t.Fatalf("utility-dominant = %+v, want request 2", dec.UtilityDominant)
	}
	chosen := dec.Chosen()
	if len(chosen) == 0 || chosen[0].ID != 2 {
		t.Fatalf("first chosen = %+v, want request 2", chosen)
	}
}

func TestDASDeadlinePreference(t *testing.T) {
	// Two same-utility candidates compete for remaining space; the one
	// with the closer deadline must win (line 12).
	d := NewDAS()
	pending := []*Request{
		req(1, 2, 0, 100), // NU (highest utility)
		req(2, 5, 0, 50),  // candidate, late deadline
		req(3, 5, 0, 5),   // candidate, urgent
		req(4, 5, 0, 80),  // candidate, late
	}
	dec := d.Schedule(0, pending, 1, 8)
	chosen := dec.Chosen()
	// Row: NU {id1, len2}; remaining capacity 6 fits one len-5 request.
	if len(chosen) != 2 {
		t.Fatalf("chosen = %d requests, want 2", len(chosen))
	}
	if chosen[1].ID != 3 {
		t.Fatalf("second pick = %d, want urgent request 3", chosen[1].ID)
	}
}

func TestDASSkipsTooLongRequests(t *testing.T) {
	d := NewDAS()
	pending := []*Request{req(1, 50, 0, 10), req(2, 60, 0, 10)}
	dec := d.Schedule(0, pending, 2, 10)
	if len(dec.Chosen()) != 0 {
		t.Fatal("requests longer than L must not be scheduled")
	}
}

func TestDASMultiRow(t *testing.T) {
	d := NewDAS()
	var pending []*Request
	for i := int64(1); i <= 20; i++ {
		pending = append(pending, req(i, 5, 0, 100))
	}
	dec := d.Schedule(0, pending, 3, 10)
	if err := dec.Validate(0, 10); err != nil {
		t.Fatal(err)
	}
	if got := len(dec.Chosen()); got != 6 { // 3 rows × 2 requests of len 5
		t.Fatalf("chosen = %d, want 6", got)
	}
}

func TestDASDeterministic(t *testing.T) {
	d := NewDAS()
	mk := func() []*Request {
		return []*Request{
			req(3, 4, 0, 30), req(1, 4, 0, 20), req(2, 4, 0, 20),
			req(5, 6, 0, 10), req(4, 6, 0, 40),
		}
	}
	a := d.Schedule(0, mk(), 2, 10)
	b := d.Schedule(0, mk(), 2, 10)
	ca, cb := a.Chosen(), b.Chosen()
	if len(ca) != len(cb) {
		t.Fatal("nondeterministic count")
	}
	for i := range ca {
		if ca[i].ID != cb[i].ID {
			t.Fatal("nondeterministic order")
		}
	}
}

func TestBaselineOrdering(t *testing.T) {
	pending := []*Request{
		req(1, 9, 3, 100), // late arrival, long, late deadline
		req(2, 2, 2, 50),
		req(3, 5, 1, 10), // earliest deadline
	}
	fc := FCFS{}.Schedule(5, pending, 1, 20)
	if fc.Rows[0][0].ID != 3 || fc.Rows[0][1].ID != 2 {
		t.Fatalf("FCFS order wrong: %v", fc.Rows[0])
	}
	sj := SJF{}.Schedule(5, pending, 1, 20)
	if sj.Rows[0][0].ID != 2 {
		t.Fatalf("SJF should pick shortest first: %v", sj.Rows[0])
	}
	de := DEF{}.Schedule(5, pending, 1, 20)
	if de.Rows[0][0].ID != 3 {
		t.Fatalf("DEF should pick earliest deadline first: %v", de.Rows[0])
	}
	for _, s := range []Scheduler{FCFS{}, SJF{}, DEF{}} {
		if s.Name() == "" {
			t.Fatal("baseline must have a name")
		}
	}
}

func TestBaselinesRespectCapacity(t *testing.T) {
	var pending []*Request
	for i := int64(1); i <= 30; i++ {
		pending = append(pending, req(i, 7, 0, 100))
	}
	for _, s := range []Scheduler{FCFS{}, SJF{}, DEF{}} {
		dec := s.Schedule(0, pending, 2, 10)
		if err := dec.Validate(0, 10); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if got := len(dec.Chosen()); got != 2 {
			t.Fatalf("%s chose %d, want 2 (one len-7 per row)", s.Name(), got)
		}
	}
}

func TestSlottedDASSlotSize(t *testing.T) {
	s := NewSlottedDAS()
	// Force the non-shortcut path with plenty of load.
	var pending []*Request
	for i := int64(1); i <= 30; i++ {
		pending = append(pending, req(i, 4+int(i%3), 0, 100))
	}
	dec := s.Schedule(0, pending, 2, 20)
	if dec.SlotSize <= 0 || dec.SlotSize > 20 {
		t.Fatalf("slot size = %d", dec.SlotSize)
	}
	// Slot size = max length among the utility-dominant picks.
	maxNU := 0
	for _, r := range dec.UtilityDominant {
		if r.Len > maxNU {
			maxNU = r.Len
		}
	}
	if dec.SlotSize != maxNU {
		t.Fatalf("slot size %d != max NU length %d", dec.SlotSize, maxNU)
	}
	// Every scheduled request fits its slot.
	for _, r := range dec.Chosen() {
		if r.Len > dec.SlotSize {
			t.Fatalf("request %d length %d exceeds slot %d", r.ID, r.Len, dec.SlotSize)
		}
	}
	if err := dec.Validate(0, 20); err != nil {
		t.Fatal(err)
	}
}

func TestSlottedDASRespectsSlotCapacity(t *testing.T) {
	s := NewSlottedDAS()
	var pending []*Request
	for i := int64(1); i <= 40; i++ {
		pending = append(pending, req(i, 5, 0, 100))
	}
	dec := s.Schedule(0, pending, 1, 20)
	// Slot size 5, 4 slots per row, each slot fits exactly one len-5.
	if dec.SlotSize != 5 {
		t.Fatalf("slot size = %d, want 5", dec.SlotSize)
	}
	if got := len(dec.Chosen()); got != 4 {
		t.Fatalf("chosen = %d, want 4", got)
	}
}

func TestSlottedDASFallbackWhenEverythingFits(t *testing.T) {
	s := NewSlottedDAS()
	pending := []*Request{req(1, 3, 0, 9), req(2, 4, 0, 9)}
	dec := s.Schedule(0, pending, 2, 10)
	if len(dec.Chosen()) != 2 {
		t.Fatalf("chosen = %d, want all", len(dec.Chosen()))
	}
	if dec.SlotSize != 4 { // longest chosen request
		t.Fatalf("fallback slot size = %d, want 4", dec.SlotSize)
	}
	if s.Name() != "SlottedDAS" {
		t.Fatal("name wrong")
	}
}

// Theorem 5.1 sanity: on exhaustive small instances, DAS achieves at least
// ηq/(ηq+1) of the brute-force optimum.
func TestDASCompetitiveBound(t *testing.T) {
	d := NewDAS()
	ratio := d.CompetitiveRatio()
	src := rng.New(2024)
	slotTimes := []float64{0, 1, 2}
	for trial := 0; trial < 150; trial++ {
		n := src.IntRange(2, 7)
		var reqs []*Request
		for i := 0; i < n; i++ {
			arr := float64(src.IntRange(0, 2))
			reqs = append(reqs, &Request{
				ID:       int64(i + 1),
				Arrival:  arr,
				Deadline: arr + float64(src.IntRange(0, 2)),
				Len:      src.IntRange(1, 8),
			})
		}
		B, L := 1, 10
		alg := RunOnline(d, reqs, slotTimes, B, L)
		opt := BruteForceOPT(reqs, slotTimes, B, L)
		if opt == 0 {
			continue
		}
		if alg < ratio*opt-1e-9 {
			t.Fatalf("trial %d: ALG %v < %v·OPT (%v)", trial, alg, ratio, opt)
		}
	}
}

// The same bound must hold for arbitrary valid η, q with η + q = 1.
func TestDASCompetitiveBoundOtherParams(t *testing.T) {
	src := rng.New(77)
	slotTimes := []float64{0, 1}
	for _, eta := range []float64{0.25, 0.75} {
		d := &DAS{Eta: eta, Q: 1 - eta}
		ratio := d.CompetitiveRatio()
		for trial := 0; trial < 60; trial++ {
			n := src.IntRange(2, 6)
			var reqs []*Request
			for i := 0; i < n; i++ {
				arr := float64(src.IntRange(0, 1))
				reqs = append(reqs, &Request{
					ID: int64(i + 1), Arrival: arr,
					Deadline: arr + float64(src.IntRange(0, 1)),
					Len:      src.IntRange(1, 6),
				})
			}
			alg := RunOnline(d, reqs, slotTimes, 1, 8)
			opt := BruteForceOPT(reqs, slotTimes, 1, 8)
			if opt > 0 && alg < ratio*opt-1e-9 {
				t.Fatalf("η=%v trial %d: ALG %v < %v·OPT (%v)", eta, trial, alg, ratio, opt)
			}
		}
	}
}

// DAS should dominate or match the pure-utility and pure-deadline
// baselines on aggregate over random online instances (the premise of
// §6.2.4's comparison).
func TestDASBeatsBaselinesOnAggregate(t *testing.T) {
	src := rng.New(99)
	slotTimes := []float64{0, 1, 2, 3}
	var dasTotal, sjfTotal, fcfsTotal, defTotal float64
	for trial := 0; trial < 100; trial++ {
		var reqs []*Request
		n := src.IntRange(8, 16)
		for i := 0; i < n; i++ {
			arr := float64(src.IntRange(0, 3))
			reqs = append(reqs, &Request{
				ID: int64(i + 1), Arrival: arr,
				Deadline: arr + float64(src.IntRange(0, 2)),
				Len:      src.IntRange(1, 12),
			})
		}
		dasTotal += RunOnline(NewDAS(), reqs, slotTimes, 1, 12)
		sjfTotal += RunOnline(SJF{}, reqs, slotTimes, 1, 12)
		fcfsTotal += RunOnline(FCFS{}, reqs, slotTimes, 1, 12)
		defTotal += RunOnline(DEF{}, reqs, slotTimes, 1, 12)
	}
	if dasTotal < fcfsTotal || dasTotal < defTotal {
		t.Fatalf("DAS %v should beat FCFS %v and DEF %v on aggregate",
			dasTotal, fcfsTotal, defTotal)
	}
	// SJF is utility-greedy, so DAS should at least stay close (within 2%).
	if dasTotal < 0.98*sjfTotal {
		t.Fatalf("DAS %v too far below SJF %v", dasTotal, sjfTotal)
	}
}

func TestBruteForceOPTSimple(t *testing.T) {
	// Two conflicting requests, one slot of capacity 5: OPT takes the
	// higher-utility (shorter) one.
	reqs := []*Request{req(1, 5, 0, 0), req(2, 3, 0, 0)}
	opt := BruteForceOPT(reqs, []float64{0}, 1, 5)
	if math.Abs(opt-1.0/3) > 1e-12 {
		t.Fatalf("OPT = %v, want 1/3", opt)
	}
	// Two slots: both fit.
	opt = BruteForceOPT(reqs, []float64{0, 0}, 1, 5)
	if math.Abs(opt-(1.0/3+1.0/5)) > 1e-12 {
		t.Fatalf("OPT = %v, want 8/15", opt)
	}
}

func TestRunOnlineRemovesScheduled(t *testing.T) {
	// A request scheduled at slot 0 must not be re-scheduled at slot 1.
	reqs := []*Request{req(1, 3, 0, 10)}
	got := RunOnline(FCFS{}, reqs, []float64{0, 1}, 1, 10)
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("utility = %v, want 1/3 (scheduled once)", got)
	}
}

func TestFractionalUpperBoundDominatesOPT(t *testing.T) {
	src := rng.New(303)
	slotTimes := []float64{0, 1, 2}
	for trial := 0; trial < 100; trial++ {
		n := src.IntRange(2, 7)
		var reqs []*Request
		for i := 0; i < n; i++ {
			arr := float64(src.IntRange(0, 2))
			reqs = append(reqs, &Request{
				ID: int64(i + 1), Arrival: arr,
				Deadline: arr + float64(src.IntRange(0, 2)),
				Len:      src.IntRange(1, 8),
			})
		}
		ub := FractionalUpperBound(reqs, len(slotTimes), 1, 10)
		opt := BruteForceOPT(reqs, slotTimes, 1, 10)
		if ub < opt-1e-9 {
			t.Fatalf("trial %d: UB %v < OPT %v", trial, ub, opt)
		}
	}
}

func TestFractionalUpperBoundSaturatedBudget(t *testing.T) {
	// Budget 10 tokens, requests 6 and 6: full first (higher density is
	// equal; tie by ID) plus 4/6 of the second.
	reqs := []*Request{req(1, 6, 0, 9), req(2, 6, 0, 9)}
	ub := FractionalUpperBound(reqs, 1, 1, 10)
	want := 1.0/6 + (1.0/6)*(4.0/6)
	if math.Abs(ub-want) > 1e-12 {
		t.Fatalf("UB = %v, want %v", ub, want)
	}
}

func TestFractionalUpperBoundAllFit(t *testing.T) {
	reqs := []*Request{req(1, 2, 0, 9), req(2, 3, 0, 9)}
	ub := FractionalUpperBound(reqs, 2, 2, 10)
	if math.Abs(ub-TotalUtility(reqs)) > 1e-12 {
		t.Fatalf("UB = %v, want all utility %v", ub, TotalUtility(reqs))
	}
}

func TestFractionalUpperBoundDegenerate(t *testing.T) {
	if ub := FractionalUpperBound(nil, 0, 1, 10); ub != 0 {
		t.Fatalf("degenerate UB = %v", ub)
	}
}

func TestEfficiencyRatio(t *testing.T) {
	src := rng.New(304)
	var reqs []*Request
	for i := 0; i < 30; i++ {
		arr := float64(src.IntRange(0, 3))
		reqs = append(reqs, &Request{
			ID: int64(i + 1), Arrival: arr,
			Deadline: arr + 2,
			Len:      src.IntRange(2, 10),
		})
	}
	slotTimes := []float64{0, 1, 2, 3, 4}
	r := EfficiencyRatio(NewDAS(), reqs, slotTimes, 2, 20)
	if r <= 0 || r > 1+1e-9 {
		t.Fatalf("efficiency ratio %v out of (0, 1]", r)
	}
	// DAS should certify well above its worst-case ⅕ bound here.
	if r < 0.5 {
		t.Fatalf("DAS efficiency %v suspiciously low on an easy instance", r)
	}
	if e := EfficiencyRatio(NewDAS(), nil, slotTimes, 2, 20); e != 1 {
		t.Fatalf("empty instance efficiency = %v, want 1", e)
	}
}

func TestWeightedUtility(t *testing.T) {
	std := &Request{ID: 1, Len: 10, Deadline: 9}
	premium := &Request{ID: 2, Len: 10, Deadline: 9, Weight: 3}
	if std.Utility() != 0.1 {
		t.Fatalf("default weight utility = %v", std.Utility())
	}
	if premium.Utility() != 0.3 {
		t.Fatalf("weighted utility = %v", premium.Utility())
	}
	if (&Request{ID: 3, Len: 5, Weight: -1, Deadline: 1}).Validate() == nil {
		t.Fatal("negative weight should fail validation")
	}
}

func TestDASPrefersWeightedRequests(t *testing.T) {
	// Same lengths, one premium: DAS's utility sort must favor it.
	d := NewDAS()
	pending := []*Request{
		req(1, 8, 0, 100), req(2, 8, 0, 100),
		{ID: 3, Len: 8, Arrival: 0, Deadline: 100, Weight: 5},
		req(4, 8, 0, 100),
	}
	dec := d.Schedule(0, pending, 1, 8) // one row fits exactly one request
	chosen := dec.Chosen()
	if len(chosen) != 1 || chosen[0].ID != 3 {
		t.Fatalf("chosen = %+v, want the premium request", chosen)
	}
}

func TestSJFIgnoresWeights(t *testing.T) {
	// SJF is literally shortest-first: a heavy long request must not
	// displace a short one.
	pending := []*Request{
		{ID: 1, Len: 9, Arrival: 0, Deadline: 100, Weight: 100},
		req(2, 2, 0, 100),
	}
	dec := SJF{}.Schedule(0, pending, 1, 9)
	if dec.Rows[0][0].ID != 2 {
		t.Fatalf("SJF order wrong: %v", dec.Rows[0])
	}
}

// BenchmarkDASSchedule measures one DAS decision over a paper-scale
// pending pool — the quantity Fig. 16 reports relative to batch time.
func BenchmarkDASSchedule(b *testing.B) {
	src := rng.New(1)
	var pool []*Request
	for i := 0; i < 400; i++ {
		pool = append(pool, &Request{
			ID: int64(i + 1), Arrival: 0, Deadline: float64(src.IntRange(1, 3)),
			Len: src.IntRange(3, 100),
		})
	}
	d := NewDAS()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Schedule(0, pool, 64, 100)
	}
}

// BenchmarkSlottedDASSchedule is the Algorithm 2 counterpart.
func BenchmarkSlottedDASSchedule(b *testing.B) {
	src := rng.New(2)
	var pool []*Request
	for i := 0; i < 400; i++ {
		pool = append(pool, &Request{
			ID: int64(i + 1), Arrival: 0, Deadline: float64(src.IntRange(1, 3)),
			Len: src.IntRange(3, 100),
		})
	}
	s := NewSlottedDAS()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(0, pool, 64, 100)
	}
}
