// Package sched implements the online request-scheduling problem of §5:
// requests with arrival times, deadlines and lengths must be packed into
// per-slot batches of B rows × L tokens to maximize total utility
// Σ vₙ = Σ 1/lₙ over requests scheduled by their deadlines (Eq. 9–13).
//
// The package provides the paper's DAS algorithm (Algorithm 1, proven
// ηq/(ηq+1)-competitive), its slotted extension (Algorithm 2), and the
// three baselines the evaluation compares against: FCFS, SJF and DEF.
package sched

import (
	"fmt"
	"sort"
)

// Request is one inference request in the scheduling problem (§5.1).
type Request struct {
	ID       int64
	Arrival  float64 // aₙ, seconds
	Deadline float64 // dₙ, seconds
	Len      int     // lₙ, tokens
	// Weight scales the request's utility (SLA tiers: a premium request
	// with Weight 2 is worth two standard ones of the same length).
	// Zero means 1 — the paper's unweighted formulation. Theorem 5.1's
	// competitive bound is proven for the unweighted case; with weights
	// DAS remains a well-defined heuristic but carries no guarantee.
	Weight float64
	// Tenant identifies who submitted the request; the fairness layer
	// (package fair) isolates tenants from each other. Empty means the
	// default tenant. Schedulers themselves are tenant-blind — isolation
	// happens in the candidate pool they are handed.
	Tenant string
	// PrefixLen declares that the request's first PrefixLen tokens are a
	// shared prompt prefix (0 = none). Schedulers stay prefix-blind; the
	// serving layer shrinks Len to the uncached suffix on a prefix-cache
	// hit before the request reaches a scheduler, so packing already sees
	// the resident work. Always < Len.
	PrefixLen int
	// PrefixID names which shared prefix PrefixLen refers to (workload
	// traces use it to materialize identical token prefixes across
	// requests; 0 = none).
	PrefixID int64
}

// Utility returns vₙ = wₙ/lₙ — §5.1's vₙ = 1/lₙ generalized with the SLA
// weight. Shorter requests are worth more per token slot, which is what
// lets DAS trade capacity for count.
func (r *Request) Utility() float64 {
	w := r.Weight
	if w <= 0 {
		w = 1
	}
	return w / float64(r.Len)
}

// Validate reports structural problems with the request.
func (r *Request) Validate() error {
	if r.Len <= 0 {
		return fmt.Errorf("sched: request %d has length %d", r.ID, r.Len)
	}
	if r.Deadline < r.Arrival {
		return fmt.Errorf("sched: request %d deadline %g before arrival %g", r.ID, r.Deadline, r.Arrival)
	}
	if r.Weight < 0 {
		return fmt.Errorf("sched: request %d has negative weight %g", r.ID, r.Weight)
	}
	if r.PrefixLen < 0 || r.PrefixLen >= r.Len {
		return fmt.Errorf("sched: request %d declares a %d-token prefix of %d tokens (suffix must be non-empty)", r.ID, r.PrefixLen, r.Len)
	}
	return nil
}

// TotalUtility sums the utility of the given requests.
func TotalUtility(reqs []*Request) float64 {
	var u float64
	for _, r := range reqs {
		u += r.Utility()
	}
	return u
}

// TotalLen sums the lengths of the given requests.
func TotalLen(reqs []*Request) int {
	n := 0
	for _, r := range reqs {
		n += r.Len
	}
	return n
}

// Expire partitions pending into requests still schedulable at time now
// (arrived, deadline not passed) and requests that have expired. Requests
// that have not yet arrived stay in alive=false? No — they are kept in the
// third return so the caller can hold them back.
func Expire(pending []*Request, now float64) (alive, expired, future []*Request) {
	for _, r := range pending {
		switch {
		case r.Arrival > now:
			future = append(future, r)
		case r.Deadline < now:
			expired = append(expired, r)
		default:
			alive = append(alive, r)
		}
	}
	return alive, expired, future
}

// Decision is a scheduler's output for one time slot: a per-row assignment
// of requests in concatenation order, plus the metadata Algorithm 2 needs.
type Decision struct {
	Rows [][]*Request
	// UtilityDominant is the union of the per-row utility-dominant sets
	// N̄ᵁ (Algorithm 1 line 9) — Algorithm 2 derives the slot size from it.
	UtilityDominant []*Request
	// SlotSize is the slot length chosen by Slotted DAS; 0 means pure
	// ConcatBatching (whole-row slots).
	SlotSize int
}

// Chosen returns every scheduled request across rows.
func (d Decision) Chosen() []*Request {
	var out []*Request
	for _, row := range d.Rows {
		out = append(out, row...)
	}
	return out
}

// Utility returns the total utility of the decision.
func (d Decision) Utility() float64 { return TotalUtility(d.Chosen()) }

// Validate checks Eq. 10–12 for the decision: each request at most once,
// row loads within L, every request schedulable at time now.
func (d Decision) Validate(now float64, L int) error {
	seen := make(map[int64]bool)
	for k, row := range d.Rows {
		if TotalLen(row) > L {
			return fmt.Errorf("sched: row %d load %d exceeds L=%d", k, TotalLen(row), L)
		}
		for _, r := range row {
			if seen[r.ID] {
				return fmt.Errorf("sched: request %d scheduled twice", r.ID)
			}
			seen[r.ID] = true
			if now < r.Arrival || now > r.Deadline {
				return fmt.Errorf("sched: request %d scheduled at %g outside [%g, %g]",
					r.ID, now, r.Arrival, r.Deadline)
			}
		}
	}
	return nil
}

// Scheduler selects requests for the batch starting at time now.
// pending must contain only schedulable requests (see Expire); B is the
// number of batch rows and L the per-row token capacity.
type Scheduler interface {
	Name() string
	Schedule(now float64, pending []*Request, B, L int) Decision
}

// fillRowsInOrder greedily concatenates requests into B rows of capacity L
// following the given priority order: each request goes to the first row
// with room (first fit). It returns the per-row assignment.
func fillRowsInOrder(order []*Request, B, L int) [][]*Request {
	rows := make([][]*Request, B)
	used := make([]int, B)
	for _, r := range order {
		if r.Len > L {
			continue
		}
		for k := 0; k < B; k++ {
			if used[k]+r.Len <= L {
				rows[k] = append(rows[k], r)
				used[k] += r.Len
				break
			}
		}
	}
	return rows
}

// byUtilityDesc sorts by non-increasing utility (shortest first in the
// unweighted case), breaking ties by earlier deadline then ID for
// determinism.
func byUtilityDesc(reqs []*Request) {
	sort.SliceStable(reqs, func(a, b int) bool {
		ra, rb := reqs[a], reqs[b]
		ua, ub := ra.Utility(), rb.Utility()
		if ua != ub {
			return ua > ub
		}
		if ra.Deadline != rb.Deadline {
			return ra.Deadline < rb.Deadline
		}
		return ra.ID < rb.ID
	})
}

// byLenAsc sorts shortest job first (SJF's literal meaning, independent of
// weights), tie-breaking by deadline then ID.
func byLenAsc(reqs []*Request) {
	sort.SliceStable(reqs, func(a, b int) bool {
		ra, rb := reqs[a], reqs[b]
		if ra.Len != rb.Len {
			return ra.Len < rb.Len
		}
		if ra.Deadline != rb.Deadline {
			return ra.Deadline < rb.Deadline
		}
		return ra.ID < rb.ID
	})
}

// byDeadlineAsc sorts by earliest deadline, tie-breaking by ID.
func byDeadlineAsc(reqs []*Request) {
	sort.SliceStable(reqs, func(a, b int) bool {
		ra, rb := reqs[a], reqs[b]
		if ra.Deadline != rb.Deadline {
			return ra.Deadline < rb.Deadline
		}
		return ra.ID < rb.ID
	})
}

// byArrivalAsc sorts by earliest arrival, tie-breaking by ID.
func byArrivalAsc(reqs []*Request) {
	sort.SliceStable(reqs, func(a, b int) bool {
		ra, rb := reqs[a], reqs[b]
		if ra.Arrival != rb.Arrival {
			return ra.Arrival < rb.Arrival
		}
		return ra.ID < rb.ID
	})
}
