package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"tcb/internal/batch"
	"tcb/internal/engine"
	"tcb/internal/prefixcache"
	"tcb/internal/sched"
	"tcb/internal/serve"
	"tcb/internal/tensor"
)

// echoRunner is a minimal healthy engine: each request's output is its own
// ID. fail turns it into a hard-down engine; delay simulates a slow one.
type echoRunner struct {
	delay time.Duration

	mu   sync.Mutex
	fail bool
	runs int
}

func (r *echoRunner) Run(b *batch.Batch, _ map[int64][]int) (*engine.Report, error) {
	r.mu.Lock()
	r.runs++
	fail := r.fail
	r.mu.Unlock()
	if r.delay > 0 {
		time.Sleep(r.delay)
	}
	if fail {
		return nil, errors.New("replica engine down")
	}
	rep := &engine.Report{}
	for _, it := range b.Items() {
		rep.Results = append(rep.Results, engine.Result{ID: it.ID, Output: []int{int(it.ID)}})
	}
	return rep, nil
}

// testServe builds a replica server with fast test timings; mod tweaks the
// config before validation.
func testServe(eng serve.Runner, mod func(*serve.Config)) (*serve.Server, error) {
	cfg := serve.Config{
		Engine:    eng,
		Scheduler: sched.NewDAS(),
		Scheme:    batch.Concat,
		B:         4, L: 64,
		Poll:         200 * time.Microsecond,
		Retry:        serve.RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond},
		DrainTimeout: 500 * time.Millisecond,
	}
	if mod != nil {
		mod(&cfg)
	}
	return serve.New(cfg)
}

func echoSpawn(mod func(*serve.Config)) Spawn {
	return func(i int) (*serve.Server, func(), error) {
		srv, err := testServe(&echoRunner{}, mod)
		return srv, nil, err
	}
}

func tokens(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

func waitCluster(t *testing.T, c *Cluster, what string, ok func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := c.Stats()
		if ok(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached; stats = %+v", what, st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestParsePolicy(t *testing.T) {
	for spec, want := range map[string]Policy{
		"rr": RoundRobin, "round-robin": RoundRobin,
		"least": LeastLoaded, "least-loaded": LeastLoaded,
		"length": LengthAffinity, "affinity": LengthAffinity,
	} {
		got, err := ParsePolicy(spec)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", spec, got, err, want)
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Error("unknown policy must fail to parse")
	}
}

// TestRoundRobinSpreads pins the default policy: sequential submissions
// rotate across healthy replicas evenly.
func TestRoundRobinSpreads(t *testing.T) {
	c, err := New(Config{Replicas: 3, Spawn: echoSpawn(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 9; i++ {
		ch, err := c.Submit(tokens(4), 5*time.Second)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if resp := <-ch; resp.Err != nil {
			t.Fatalf("submit %d: %v", i, resp.Err)
		}
	}
	st := c.Stats()
	for _, r := range st.Replicas {
		if r.Stats.Served != 3 {
			t.Fatalf("replica %d served %d, want 3 (round-robin): %+v", r.Index, r.Stats.Served, st)
		}
	}
}

// TestLeastLoadedAvoidsSlowReplica pins queued-cost routing: with one slow
// replica, the fast one absorbs most of a concurrent burst.
func TestLeastLoadedAvoidsSlowReplica(t *testing.T) {
	spawn := func(i int) (*serve.Server, func(), error) {
		eng := &echoRunner{}
		if i == 1 {
			eng.delay = 20 * time.Millisecond
		}
		srv, err := testServe(eng, func(cfg *serve.Config) { cfg.B = 1 })
		return srv, nil, err
	}
	c, err := New(Config{Replicas: 2, Spawn: spawn, Policy: LeastLoaded})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	var chans []<-chan serve.Response
	for i := 0; i < 30; i++ {
		ch, err := c.Submit(tokens(4), 30*time.Second)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans = append(chans, ch)
		time.Sleep(time.Millisecond)
	}
	for i, ch := range chans {
		if resp := <-ch; resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
	}
	st := c.Stats()
	fast, slow := st.Replicas[0].Stats.Served, st.Replicas[1].Stats.Served
	if fast <= slow {
		t.Fatalf("least-loaded sent %d to the fast replica, %d to the slow one: %+v", fast, slow, st)
	}
}

// TestLengthAffinityBands pins length bucketing: short requests land on the
// low-index replica, long requests on the high-index one.
func TestLengthAffinityBands(t *testing.T) {
	c, err := New(Config{Replicas: 2, Spawn: echoSpawn(nil), Policy: LengthAffinity, MaxLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 4; i++ {
		n := 4
		if i%2 == 1 {
			n = 60
		}
		ch, err := c.Submit(tokens(n), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if resp := <-ch; resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	st := c.Stats()
	if st.Replicas[0].Stats.Served != 2 || st.Replicas[1].Stats.Served != 2 {
		t.Fatalf("length bands not respected: %+v", st)
	}
}

// TestFailoverOnEngineError pins the failover path: a request landing on a
// hard-down replica is resubmitted to a live one and still succeeds.
func TestFailoverOnEngineError(t *testing.T) {
	spawn := func(i int) (*serve.Server, func(), error) {
		eng := &echoRunner{}
		if i == 0 {
			eng.fail = true
		}
		srv, err := testServe(eng, func(cfg *serve.Config) {
			cfg.Retry = serve.RetryPolicy{MaxAttempts: 1, Backoff: time.Millisecond}
			cfg.BreakerThreshold = -1
		})
		return srv, nil, err
	}
	c, err := New(Config{Replicas: 2, Spawn: spawn})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for i := 0; i < 4; i++ {
		ch, err := c.Submit(tokens(4), 5*time.Second)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if resp := <-ch; resp.Err != nil {
			t.Fatalf("request %d not failed over: %v", i, resp.Err)
		}
	}
	st := c.Stats()
	if st.Failovers < 2 {
		t.Fatalf("failovers = %d, want >= 2 (round-robin sent half to the dead replica): %+v", st.Failovers, st)
	}
	if st.Delivered != 4 {
		t.Fatalf("delivered = %d, want 4", st.Delivered)
	}
}

// TestZeroLostUnderReplicaKill is the invariant test: with one replica
// hard-killed mid-run by seeded chaos, every accepted submission still gets
// exactly one terminal outcome.
func TestZeroLostUnderReplicaKill(t *testing.T) {
	spawn := func(i int) (*serve.Server, func(), error) {
		var eng serve.Runner = &echoRunner{}
		var cleanup func()
		if i == 1 {
			ch := serve.NewChaosRunner(eng, serve.ChaosConfig{KillAfter: 5, Seed: 7})
			cleanup = ch.Close
			eng = ch
		}
		srv, err := testServe(eng, func(cfg *serve.Config) {
			cfg.BreakerThreshold = 2
			cfg.BreakerCooldown = 10 * time.Millisecond
		})
		return srv, cleanup, err
	}
	c, err := New(Config{Replicas: 3, Spawn: spawn, Policy: LeastLoaded, ProbeInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()

	const n = 200
	var wg sync.WaitGroup
	outcomes := make(chan error, n)
	var accepted, refused int64
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch, err := c.Submit(tokens(3+i%8), 5*time.Second)
			if err != nil {
				mu.Lock()
				refused++
				mu.Unlock()
				return
			}
			mu.Lock()
			accepted++
			mu.Unlock()
			select {
			case resp := <-ch:
				outcomes <- resp.Err
			case <-time.After(20 * time.Second):
				outcomes <- fmt.Errorf("request %d: no terminal outcome", i)
			}
		}(i)
	}
	wg.Wait()
	close(outcomes)
	var terminal int64
	for err := range outcomes {
		if err != nil && err.Error() != "" && err.Error()[0:7] == "request" {
			t.Fatal(err)
		}
		terminal++
	}
	if terminal != accepted {
		t.Fatalf("accepted %d but %d terminal outcomes (%d refused at submit)", accepted, terminal, refused)
	}
	st := c.Stats()
	if st.Delivered != accepted {
		t.Fatalf("delivered = %d, want %d: %+v", st.Delivered, accepted, st)
	}
	c.Drain()
}

// TestWedgedReplicaDrainRespawnReadmit is the tentpole lifecycle test: a
// replica wedges (engine call hangs, no watchdog), the stall detector
// triggers a bounded drain/respawn, the fresh replica passes probation and
// is counter-verified serving again.
func TestWedgedReplicaDrainRespawnReadmit(t *testing.T) {
	var mu sync.Mutex
	gen := make(map[int]int)
	spawn := func(i int) (*serve.Server, func(), error) {
		mu.Lock()
		g := gen[i]
		gen[i]++
		mu.Unlock()
		var eng serve.Runner = &echoRunner{}
		var cleanup func()
		if i == 1 && g == 0 {
			ch := serve.NewChaosRunner(eng, serve.ChaosConfig{WedgeAfter: 1})
			cleanup = ch.Close
			eng = ch
		}
		srv, err := testServe(eng, func(cfg *serve.Config) {
			cfg.B = 1 // one request per engine call, so the wedge lands with work pending
			cfg.BreakerThreshold = -1
			cfg.DrainTimeout = 100 * time.Millisecond
		})
		return srv, cleanup, err
	}
	c, err := New(Config{
		Replicas:        2,
		Spawn:           spawn,
		ProbeInterval:   10 * time.Millisecond,
		StallTimeout:    120 * time.Millisecond,
		RespawnDeadline: 300 * time.Millisecond,
		ReadmitProbes:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Start()

	// Round-robin: request 2 warms replica 1 (its one allowed call),
	// request 4 wedges it with a batch in flight.
	var chans []<-chan serve.Response
	for i := 0; i < 4; i++ {
		ch, err := c.Submit(tokens(40), 10*time.Second)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans = append(chans, ch)
	}

	start := time.Now()
	waitCluster(t, c, "respawn", func(st Stats) bool { return st.Respawns >= 1 })
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("respawn took %v, want well under the configured deadlines", took)
	}
	// Every pre-wedge submission still terminates — the wedged batch fails
	// over once teardown releases it.
	for i, ch := range chans {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				t.Fatalf("request %d: %v (must fail over, not error)", i, resp.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d: lost across the respawn", i)
		}
	}
	// The fresh replica must pass probation (probes) and serve again.
	st := waitCluster(t, c, "readmission", func(st Stats) bool {
		for _, r := range st.Replicas {
			if r.Index == 1 && r.State == "healthy" && r.Respawns == 1 && r.Stats.Served >= 1 {
				return true
			}
		}
		return false
	})
	if st.Respawns != 1 {
		t.Fatalf("respawns = %d, want exactly 1: %+v", st.Respawns, st)
	}
	// And take real traffic: round-robin now lands on it again.
	for i := 0; i < 4; i++ {
		ch, err := c.Submit(tokens(40), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if resp := <-ch; resp.Err != nil {
			t.Fatalf("post-respawn request %d: %v", i, resp.Err)
		}
	}
}

// TestAllEjectedDegradesToShedding pins graceful degradation: with every
// replica's engine down and breakers latched open, the cluster keeps
// accepting what the replicas' reduced queues allow, sheds the excess with
// a typed error, and reports itself unserviceable — nothing hangs.
func TestAllEjectedDegradesToShedding(t *testing.T) {
	spawn := func(i int) (*serve.Server, func(), error) {
		srv, err := testServe(&echoRunner{fail: true}, func(cfg *serve.Config) {
			cfg.BreakerThreshold = 1
			cfg.BreakerCooldown = time.Hour // latch open
			cfg.QueueCap = 8                // OpenQueueCap = 1
			cfg.Retry = serve.RetryPolicy{MaxAttempts: 1, Backoff: time.Millisecond}
		})
		return srv, nil, err
	}
	c, err := New(Config{Replicas: 2, Spawn: spawn, ProbeInterval: 10 * time.Millisecond, ProbeDeadline: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Start()

	// Burst while the breakers are still closed: long requests (one per
	// row) so each replica's first batch fails alone, trips its breaker,
	// and the rest of its queue is shed down to the reduced bound.
	var chans []<-chan serve.Response
	for i := 0; i < 12; i++ {
		ch, err := c.Submit(tokens(40), 2*time.Second)
		if err != nil {
			// Refused outright (reduced queue full): also a clean outcome.
			if !errors.Is(err, serve.ErrBreakerOpen) && !errors.Is(err, serve.ErrServerClosed) {
				t.Fatalf("submit %d: unexpected refusal %v", i, err)
			}
			continue
		}
		chans = append(chans, ch)
	}
	var sawShed bool
	for i, ch := range chans {
		select {
		case resp := <-ch:
			if resp.Err == nil {
				t.Fatalf("request %d: served by a down engine?", i)
			}
			if errors.Is(resp.Err, serve.ErrShed) {
				sawShed = true
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d: hung instead of degrading", i)
		}
	}
	if !sawShed {
		t.Fatal("expected at least one utility-ordered shed outcome after the breakers tripped")
	}
	waitCluster(t, c, "ejection of all replicas", func(st Stats) bool { return st.Ejections >= 2 })
	if h := c.Health(); h.Serviceable {
		t.Fatalf("all-ejected cluster must not report serviceable: %+v", h)
	}
	if st := c.Stats(); st.ProbeFailures == 0 {
		t.Fatalf("probes against down engines must fail and be counted: %+v", st)
	}
}

// TestClusterTeardownNoLeaks pins that a full lifecycle — replicas with
// seeded chaos (one killed, one wedged), live traffic, monitor, Stop —
// leaves no goroutines behind.
func TestClusterTeardownNoLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	spawn := func(i int) (*serve.Server, func(), error) {
		var eng serve.Runner = &echoRunner{}
		var cleanup func()
		switch i {
		case 1:
			ch := serve.NewChaosRunner(eng, serve.ChaosConfig{KillAfter: 3, Seed: 1})
			cleanup, eng = ch.Close, ch
		case 2:
			ch := serve.NewChaosRunner(eng, serve.ChaosConfig{WedgeAfter: 3})
			cleanup, eng = ch.Close, ch
		}
		srv, err := testServe(eng, func(cfg *serve.Config) {
			cfg.BreakerThreshold = 2
			cfg.BreakerCooldown = 10 * time.Millisecond
			cfg.DrainTimeout = 100 * time.Millisecond
		})
		return srv, cleanup, err
	}
	c, err := New(Config{
		Replicas:        3,
		Spawn:           spawn,
		ProbeInterval:   10 * time.Millisecond,
		StallTimeout:    100 * time.Millisecond,
		RespawnDeadline: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	var wg sync.WaitGroup
	for i := 0; i < 60; i++ {
		ch, err := c.Submit(tokens(3+i%6), 3*time.Second)
		if err != nil {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-ch
		}()
	}
	wg.Wait()
	c.Stop()
	// Idempotent teardown must not panic or hang.
	c.Stop()
	c.Drain()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSubmitValidationIsSynchronous pins that request-shaped errors (too
// long, empty) surface at Submit instead of burning failover attempts.
func TestSubmitValidationIsSynchronous(t *testing.T) {
	c, err := New(Config{Replicas: 2, Spawn: echoSpawn(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if _, err := c.Submit(nil, time.Second); err == nil {
		t.Fatal("empty submission must be refused")
	}
	var tl *serve.TooLongError
	if _, err := c.Submit(tokens(65), time.Second); !errors.As(err, &tl) {
		t.Fatalf("oversized submission err = %v, want TooLongError", err)
	}
	if st := c.Stats(); st.Failovers != 0 || st.Submitted != 0 {
		t.Fatalf("validation must not count as traffic: %+v", st)
	}
}

// TestStatsPrefixAggregation sums fabricated per-replica prefix counters —
// the caches are per-replica (respawns start cold), so the cluster view is
// additive with the hit rate recomputed over the summed totals.
func TestStatsPrefixAggregation(t *testing.T) {
	rows := []ReplicaStats{
		{Stats: serve.Stats{PrefixEnabled: true, Prefix: prefixcache.Stats{
			Hits: 6, Misses: 2, Inserts: 2, TokensSaved: 60, ResidentBytes: 100, Entries: 2,
		}}},
		{Stats: serve.Stats{PrefixEnabled: true, Prefix: prefixcache.Stats{
			Hits: 2, Misses: 6, Inserts: 5, Evictions: 1, Rejected: 1, TokensSaved: 20, ResidentBytes: 300, Entries: 4,
		}}},
		{Stats: serve.Stats{}}, // cache off on this replica: contributes nothing
	}
	agg, enabled := prefixTotals(rows)
	if !enabled {
		t.Fatal("two replicas carry caches")
	}
	want := prefixcache.Stats{
		Hits: 8, Misses: 8, Inserts: 7, Evictions: 1, Rejected: 1,
		TokensSaved: 80, ResidentBytes: 400, Entries: 6, HitRate: 0.5,
	}
	if agg != want {
		t.Fatalf("aggregate = %+v, want %+v", agg, want)
	}
	if _, enabled := prefixTotals(rows[2:]); enabled {
		t.Fatal("no cache anywhere must report disabled")
	}
}

// TestStatsKernelsSnapshot: the cluster reports the process-wide dispatch
// counters exactly once at the top level.
func TestStatsKernelsSnapshot(t *testing.T) {
	c, err := New(Config{Replicas: 2, Spawn: echoSpawn(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if got, want := c.Stats().Kernels, tensor.KernelCounters(); got != want {
		t.Fatalf("cluster kernels = %+v, want the process snapshot %+v", got, want)
	}
}
