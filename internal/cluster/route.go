package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// Policy selects how the router orders replicas for a submission. Whatever
// the policy, routing is tiered by health first: healthy replicas are
// preferred, then degraded ones, and ejected-but-alive replicas are the
// last resort (so an all-ejected cluster still degrades gracefully to the
// replicas' own breaker-open shedding instead of refusing outright). The
// policy orders replicas within each tier.
type Policy int

const (
	// RoundRobin rotates submissions across the preferred tier.
	RoundRobin Policy = iota
	// LeastLoaded picks the replica with the smallest outstanding
	// queued-cost (tokens accepted but not yet answered).
	LeastLoaded
	// LengthAffinity maps request length to a replica, so each replica sees
	// a narrow length band and its batches concatenate with less padding
	// spread (short requests to low indices, long to high).
	LengthAffinity
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case LengthAffinity:
		return "length-affinity"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses a -route flag value.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "rr", "round-robin", "roundrobin":
		return RoundRobin, nil
	case "least", "least-loaded", "leastloaded":
		return LeastLoaded, nil
	case "length", "affinity", "length-affinity":
		return LengthAffinity, nil
	default:
		return 0, fmt.Errorf("cluster: unknown routing policy %q (want rr|least|length)", s)
	}
}

// candidate pairs a replica with the server generation routing saw, so a
// concurrent respawn cannot swap the server out from under a submission's
// cost accounting.
type candidate struct {
	r *replica
	h *handle
}

// order returns the replicas a submission of n tokens should try, in order:
// tiered by health state, policy-ordered within each tier. Respawning
// replicas are excluded — their old server is draining and would only burn
// a failover attempt.
func (c *Cluster) order(n int) []candidate {
	c.mu.Lock()
	defer c.mu.Unlock()
	var tiers [3][]candidate
	for _, r := range c.replicas {
		if r.respawning {
			continue
		}
		tiers[r.state] = append(tiers[r.state], candidate{r, r.h})
	}
	rr := int(c.rr.Add(1) - 1)
	out := make([]candidate, 0, len(c.replicas))
	for _, tier := range tiers {
		c.policyOrder(tier, n, rr)
		out = append(out, tier...)
	}
	return out
}

// policyOrder orders one health tier in place under the configured policy.
// Tiers arrive in replica-index order (the iteration order of c.replicas).
func (c *Cluster) policyOrder(tier []candidate, n, rr int) {
	if len(tier) < 2 {
		return
	}
	switch c.cfg.Policy {
	case LeastLoaded:
		sort.SliceStable(tier, func(i, j int) bool {
			return tier[i].h.cost.Load() < tier[j].h.cost.Load()
		})
	case LengthAffinity:
		// Bucket by length: replica k of the tier owns lengths in
		// (k·MaxLen/N, (k+1)·MaxLen/N]; fall outward by distance from the
		// owning bucket so failover stays as close to the band as possible.
		pref := n * len(tier) / (c.cfg.MaxLen + 1)
		if pref >= len(tier) {
			pref = len(tier) - 1
		}
		pos := make(map[*replica]int, len(tier))
		for i, cand := range tier {
			pos[cand.r] = i
		}
		sort.SliceStable(tier, func(i, j int) bool {
			di, dj := abs(pos[tier[i].r]-pref), abs(pos[tier[j].r]-pref)
			if di != dj {
				return di < dj
			}
			return pos[tier[i].r] < pos[tier[j].r]
		})
	default: // RoundRobin
		start := rr % len(tier)
		rot := make([]candidate, 0, len(tier))
		rot = append(rot, tier[start:]...)
		rot = append(rot, tier[:start]...)
		copy(tier, rot)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
