package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tcb/internal/serve"
)

func httpCluster(t *testing.T) (*Cluster, *httptest.Server) {
	t.Helper()
	c, err := New(Config{Replicas: 2, Spawn: echoSpawn(nil)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHTTPHandler(c))
	t.Cleanup(func() {
		ts.Close()
		c.Stop()
	})
	return c, ts
}

func TestHTTPClusterInfer(t *testing.T) {
	_, ts := httpCluster(t)
	body, _ := json.Marshal(serve.InferRequest{Tokens: tokens(5), DeadlineMS: 5000})
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out serve.InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Output) == 0 || out.LatencyMS < 0 {
		t.Fatalf("response = %+v", out)
	}
}

func TestHTTPClusterStatsAndReplicas(t *testing.T) {
	c, ts := httpCluster(t)
	ch, err := c.Submit(tokens(4), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	<-ch

	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var st Stats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 1 || st.Delivered != 1 || len(st.Replicas) != 2 {
		t.Fatalf("stats = %+v", st)
	}

	r2, err := http.Get(ts.URL + "/v1/replicas")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var rows []ReplicaStats
	if err := json.NewDecoder(r2.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].State != "healthy" || rows[1].State != "healthy" {
		t.Fatalf("replica rows = %+v", rows)
	}
}

// TestHTTPClusterHealthz pins the balancer contract: 200 with detail while
// a replica is serviceable, 503 with the same per-replica body after
// teardown.
func TestHTTPClusterHealthz(t *testing.T) {
	c, ts := httpCluster(t)
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(r.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK || !h.Serviceable || h.Healthy != 2 {
		t.Fatalf("healthz status %d body %+v", r.StatusCode, h)
	}

	c.Stop()
	r2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var h2 Health
	if err := json.NewDecoder(r2.Body).Decode(&h2); err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusServiceUnavailable || h2.Serviceable {
		t.Fatalf("healthz after stop: status %d body %+v", r2.StatusCode, h2)
	}
	if len(h2.Replicas) != 2 || h2.Replicas[0].Health.State != "stopped" {
		t.Fatalf("503 body must carry per-replica detail: %+v", h2)
	}
}
