package cluster

import (
	"time"
)

// monitor is the cluster's health loop: every ProbeInterval it runs one
// tick of the per-replica state machine — breaker checks, stall detection,
// synthetic probes of non-healthy replicas — until teardown.
func (c *Cluster) monitor() {
	defer close(c.monitorDone)
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.tick()
		}
	}
}

// tick runs one health round over all replicas. Probes launch after the
// lock drops; respawns are triggered inline (the trigger itself only marks
// and spawns a goroutine).
func (c *Cluster) tick() {
	now := time.Now()
	var probes []candidate
	c.mu.Lock()
	for _, r := range c.replicas {
		if r.respawning {
			continue
		}
		h := r.h
		hl := h.srv.Health()
		st := h.srv.Stats()

		// A stopped server (a Spawn failure left the old one in place, or
		// something outside the cluster killed it) can serve nothing: eject
		// it so probes run, fail fast, and retrigger the respawn.
		if hl.State == "stopped" && r.state != Ejected {
			r.state = Ejected
			r.probeFails, r.probePasses = 0, 0
			c.ejections.Add(1)
		}

		// Breaker open means the replica's own supervision already declared
		// the engine down: degrade immediately, probes take it from there.
		if hl.Breaker == "open" && r.state == Healthy {
			r.state = Degraded
			r.probeFails, r.probePasses = 0, 0
		}

		// Stall detection: work pending but no terminal outcome (served,
		// missed, failed or shed) for StallTimeout means the replica is
		// wedged in a way its own watchdog did not catch — respawn it.
		terminal := st.Served + st.Missed + st.Failed + st.Shed
		busy := st.Queued > 0 || st.InFlight > 0
		if busy && terminal == r.lastTerminal && hl.State == "running" {
			if r.stallSince.IsZero() {
				r.stallSince = now
			} else if now.Sub(r.stallSince) >= c.cfg.StallTimeout {
				r.stallSince = time.Time{}
				c.triggerRespawnLocked(r)
				continue
			}
		} else {
			r.stallSince = time.Time{}
			r.lastTerminal = terminal
		}

		if r.state != Healthy && !r.probing {
			r.probing = true
			probes = append(probes, candidate{r, h})
		}
	}
	c.mu.Unlock()
	for _, p := range probes {
		c.wg.Add(1)
		go c.probe(p.r, p.h)
	}
}

// probe submits one synthetic request to the replica and reports the
// outcome to the state machine. At most one probe is in flight per replica
// (tick's probing flag); a probe outlived by a respawn reports against the
// old generation and is discarded.
func (c *Cluster) probe(r *replica, h *handle) {
	defer c.wg.Done()
	ch, err := h.srv.Submit(c.cfg.ProbeTokens, c.cfg.ProbeDeadline)
	ok := false
	if err == nil {
		select {
		case resp := <-ch:
			ok = resp.Err == nil
		case <-c.stop:
			// Teardown: the replica's failAll will answer the channel;
			// nobody needs the verdict anymore.
			return
		}
	}
	c.onProbeResult(r, h, ok)
}

// onProbeResult advances the replica state machine on a probe verdict:
// consecutive failures eject a degraded replica and respawn a persistently
// ejected one; consecutive passes readmit (the cluster-level analogue of
// the breaker's half-open probation).
func (c *Cluster) onProbeResult(r *replica, h *handle, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.h != h {
		return // respawned while the probe was in flight; verdict is stale
	}
	r.probing = false
	if r.respawning {
		return
	}
	if !ok {
		c.probeFails_.Add(1)
		r.probeFails++
		r.probePasses = 0
		switch {
		case r.state == Degraded && r.probeFails >= c.cfg.EjectAfter:
			r.state = Ejected
			r.probeFails = 0
			c.ejections.Add(1)
		case r.state == Ejected && r.probeFails >= c.cfg.RespawnAfter:
			c.triggerRespawnLocked(r)
		}
		return
	}
	r.probePasses++
	r.probeFails = 0
	breakerOpen := h.srv.Health().Breaker == "open"
	if breakerOpen {
		return // passing probes but the breaker re-opened: stay put
	}
	switch {
	case r.state == Ejected && r.probePasses >= c.cfg.ReadmitProbes:
		r.state = Healthy
		r.resetWindowLocked()
	case r.state == Degraded:
		r.state = Healthy
		r.resetWindowLocked()
	}
}

// triggerRespawnLocked marks the replica respawning (the router skips it
// from here) and hands the blocking work to a goroutine. Callers hold c.mu.
func (c *Cluster) triggerRespawnLocked(r *replica) {
	if r.respawning {
		return
	}
	select {
	case <-c.stop:
		return
	default:
	}
	r.respawning = true
	r.state = Ejected
	h := r.h
	c.wg.Add(1)
	go c.respawnReplica(r, h)
}

// respawnReplica is the failover sequence for a wedged or persistently
// ejected replica: drain the old server under RespawnDeadline, tear it down
// (cleanup releases anything a wedged engine call is blocked on), spawn a
// fresh replacement, and re-admit it through Ejected probation — it serves
// cluster traffic again only after ReadmitProbes consecutive probe passes.
func (c *Cluster) respawnReplica(r *replica, old *handle) {
	defer c.wg.Done()
	drained := make(chan struct{})
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		old.srv.Drain()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(c.cfg.RespawnDeadline):
	case <-c.stop:
	}
	// Teardown order matters: cleanup first unblocks a wedged engine call
	// (watchdog-abandoned goroutines included), which is what lets the
	// server loop exit and Stop return.
	old.cleanup()
	old.srv.Stop()

	select {
	case <-c.stop:
		c.mu.Lock()
		r.respawning = false
		c.mu.Unlock()
		return
	default:
	}
	srv, cleanup, err := c.cfg.Spawn(r.idx)
	if err != nil {
		// Leave the stopped handle in place: ticks see "stopped", keep it
		// ejected, and probe failures retrigger the respawn — a tick-paced
		// retry loop until Spawn succeeds.
		c.mu.Lock()
		r.respawning = false
		r.probeFails, r.probePasses = 0, 0
		c.mu.Unlock()
		return
	}
	srv.Start()
	nh := newHandle(srv, cleanup)

	c.mu.Lock()
	select {
	case <-c.stop:
		// The cluster stopped while we were spawning; this generation is
		// ours to tear down.
		r.respawning = false
		c.mu.Unlock()
		srv.Stop()
		nh.cleanup()
		return
	default:
	}
	r.h = nh
	r.state = Ejected // probation: probes must pass before traffic returns
	r.probing = false
	r.probeFails, r.probePasses = 0, 0
	r.resetWindowLocked()
	r.lastTerminal = 0
	r.stallSince = time.Time{}
	r.respawns++
	r.respawning = false
	c.mu.Unlock()
	c.respawns.Add(1)
}
