package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tcb/internal/fair"
	"tcb/internal/serve"
)

// TestFailoverPreservesTenant: a request failing over to another replica
// must arrive there under the same tenant and SLO class — otherwise a
// failover would launder a flooding tenant's traffic into the default
// tenant's share on the next replica.
func TestFailoverPreservesTenant(t *testing.T) {
	runners := []*echoRunner{{fail: true}, {}}
	c, err := New(Config{
		Replicas: 2,
		Spawn: func(i int) (*serve.Server, func(), error) {
			srv, err := testServe(runners[i], func(cfg *serve.Config) { cfg.Fair = true })
			return srv, nil, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ch, err := c.SubmitOpts(tokens(4), 10*time.Second,
		serve.SubmitOptions{Tenant: "alpha", Class: fair.ClassInteractive})
	if err != nil {
		t.Fatal(err)
	}
	if resp := <-ch; resp.Err != nil {
		t.Fatalf("failover did not rescue the request: %v", resp.Err)
	}
	st := c.Stats()
	if st.Failovers < 1 {
		t.Fatalf("failovers = %d, want at least 1", st.Failovers)
	}
	if st.Tenants["alpha"].Delivered != 1 {
		t.Fatalf("alpha delivered = %+v across cluster", st.Tenants)
	}
	// The healthy replica must have served it under the tenant's name.
	served := st.Replicas[1].Stats.Tenants["alpha"]
	if served.Delivered != 1 {
		t.Fatalf("replica 1 tenant rows = %+v", st.Replicas[1].Stats.Tenants)
	}
}

// TestClusterHTTPTenantThrottle: the cluster front's token bucket refuses a
// tenant over budget with 429 + Retry-After and records the throttle in the
// aggregated tenant stats.
func TestClusterHTTPTenantThrottle(t *testing.T) {
	reg := fair.NewRegistry(fair.TenantConfig{Name: "meter", BucketRate: 1, BucketBurst: 5})
	c, err := New(Config{Replicas: 2, Spawn: echoSpawn(nil), Limiter: fair.NewLimiter(reg)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHTTPHandler(c))
	t.Cleanup(func() { ts.Close(); c.Stop() })

	post := func(tenant string) *http.Response {
		body, _ := json.Marshal(serve.InferRequest{Tokens: tokens(5), DeadlineMS: 5000})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(serve.TenantHeader, tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post("meter"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d", resp.StatusCode)
	}
	resp := post("meter")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained bucket: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	st := c.Stats()
	if st.Tenants["meter"].Throttled != 1 || st.Tenants["meter"].Delivered != 1 {
		t.Fatalf("aggregated tenant rows = %+v", st.Tenants)
	}
}
