package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"tcb/internal/serve"
)

// NewHTTPHandler exposes a cluster over HTTP with the same surface as a
// single server's handler, plus per-replica introspection:
//
//	POST /v1/infer    — submit one request, blocks until the response;
//	                    routed, health-tiered and failed over transparently
//	GET  /v1/stats    — aggregated cluster counters (cluster.Stats)
//	GET  /v1/replicas — per-replica rows: state, health, server counters
//	GET  /healthz     — 200 while at least one replica is fully
//	                    serviceable; 503 with per-replica breaker and
//	                    ejection detail otherwise
//
// The handler does not own the cluster's lifecycle (call Start/Stop
// yourself).
func NewHTTPHandler(c *Cluster) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, serve.MaxInferBody)
		var req serve.InferRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeErr(w, http.StatusRequestEntityTooLarge, fmt.Errorf("body exceeds %d bytes", tooBig.Limit))
				return
			}
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
			return
		}
		if req.DeadlineMS <= 0 && req.Class == "" {
			req.DeadlineMS = 1000
		}
		// Same front contract as the single-server handler: tenant identity
		// on X-Tenant, token-bucket admission before any replica is touched
		// (failover resubmissions inside the cluster are not re-charged).
		tenant := r.Header.Get(serve.TenantHeader)
		if ok, retry := c.cfg.Limiter.Take(tenant, len(req.Tokens)); !ok {
			secs := int64((retry + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
			writeErr(w, http.StatusTooManyRequests,
				fmt.Errorf("cluster: tenant admission rate exceeded, retry in %s", retry))
			return
		}
		ch, err := c.SubmitOpts(req.Tokens, time.Duration(req.DeadlineMS)*time.Millisecond,
			serve.SubmitOptions{Tenant: tenant, Class: req.Class})
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, serve.ErrQueueFull) {
				status = http.StatusTooManyRequests
			} else if errors.Is(err, serve.ErrBreakerOpen) || errors.Is(err, serve.ErrServerClosed) || errors.Is(err, ErrNoReplicas) {
				status = http.StatusServiceUnavailable
			}
			writeErr(w, status, err)
			return
		}
		select {
		case resp := <-ch:
			switch {
			case errors.Is(resp.Err, serve.ErrDeadlineExceeded):
				writeErr(w, http.StatusGatewayTimeout, resp.Err)
			case errors.Is(resp.Err, serve.ErrBreakerOpen):
				writeErr(w, http.StatusServiceUnavailable, resp.Err)
			case resp.Err != nil:
				writeErr(w, http.StatusInternalServerError, resp.Err)
			default:
				writeJSON(w, http.StatusOK, serve.InferResponse{
					Output:    append([]int{}, resp.Output...),
					LatencyMS: resp.Served.Sub(resp.Queued).Seconds() * 1000,
				})
			}
		case <-r.Context().Done():
			writeErr(w, http.StatusRequestTimeout, r.Context().Err())
		}
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
			return
		}
		writeJSON(w, http.StatusOK, c.Stats())
	})
	mux.HandleFunc("/v1/replicas", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
			return
		}
		writeJSON(w, http.StatusOK, c.Stats().Replicas)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := c.Health()
		status := http.StatusOK
		if !h.Serviceable {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, h)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}
