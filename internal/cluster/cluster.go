// Package cluster fronts N serve.Server replicas behind one
// Submit/Drain/Stats surface: pluggable health-tiered routing (round-robin,
// least-loaded, length-affinity), a per-replica health state machine
// (healthy → degraded → ejected) driven by each replica's circuit breaker,
// its observed error rate and periodic synthetic probes, and automatic
// drain/respawn failover when a replica wedges.
//
// The contract is the zero-lost-request invariant: every submission the
// cluster accepts gets exactly one terminal outcome on its response channel
// — a result, a deadline expiry, or an explicit error (shed, closed, engine
// failure after the failover budget). A replica failing mid-request does
// not lose it: the failed attempt fails over to another replica while the
// request's deadline and the cluster's retry budget allow.
//
// Replica servers are expected to carry their own supervision stack
// (watchdog via Config.PredictBatch and a DrainTimeout): the cluster bounds
// a respawn with its own deadline, but a wedged engine with neither
// watchdog nor drain timeout can stall its server's loop forever — the
// Spawn cleanup function is the cluster's escape hatch and must release
// anything the engine is blocked on (serve.ChaosRunner.Close is the chaos
// injector's version).
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tcb/internal/fair"
	"tcb/internal/prefixcache"
	"tcb/internal/serve"
	"tcb/internal/tensor"
)

// State is a replica's position in the cluster health state machine. The
// ordering is load-bearing: routing prefers lower states.
type State int

const (
	// Healthy replicas take normal traffic.
	Healthy State = iota
	// Degraded replicas (breaker open, or error rate over the threshold)
	// are probed and only take traffic when no healthy replica accepts.
	Degraded
	// Ejected replicas (probes keep failing) are the last resort; probes
	// continue, and persistent ejection triggers a drain/respawn.
	Ejected
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Ejected:
		return "ejected"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ErrNoReplicas is returned by Submit when no replica would accept the
// request (all respawning, or every submit refused).
var ErrNoReplicas = errors.New("cluster: no replica available")

// Spawn builds replica i: a configured, unstarted server plus a cleanup
// function run at teardown. The cleanup must release anything a wedged
// engine call is blocked on (for the chaos injector, ChaosRunner.Close);
// it may be nil. The cluster calls Start/Drain/Stop on the server itself.
type Spawn func(i int) (*serve.Server, func(), error)

// Config describes a cluster.
type Config struct {
	// Replicas is the member count; required, at least 1.
	Replicas int
	// Spawn builds each member (and rebuilds it on respawn); required.
	Spawn Spawn
	// Policy orders replicas within a health tier. Default RoundRobin.
	Policy Policy
	// MaxLen is the upper length bound LengthAffinity buckets against
	// (typically the servers' L). Zero means 512.
	MaxLen int

	// MaxFailovers caps how many times one request may be resubmitted to
	// another replica after a retryable failure. Zero means 3; negative
	// disables failover.
	MaxFailovers int

	// ProbeInterval paces the health monitor's tick (state checks, stall
	// detection, synthetic probes of non-healthy replicas). Zero means 25ms.
	ProbeInterval time.Duration
	// ProbeTokens is the synthetic probe input. Default {1, 2, 3}.
	ProbeTokens []int
	// ProbeDeadline is the probe request's scheduling deadline. Zero
	// means 250ms.
	ProbeDeadline time.Duration

	// ErrWindow sizes the per-replica sliding window of real-traffic
	// outcomes behind the error-rate degrade. Zero means 32.
	ErrWindow int
	// DegradeErrRate degrades a healthy replica when its windowed error
	// rate (with at least ErrWindow/2 samples) reaches it. Zero means 0.5.
	DegradeErrRate float64
	// EjectAfter ejects a degraded replica after that many consecutive
	// probe failures. Zero means 3.
	EjectAfter int
	// ReadmitProbes readmits an ejected replica after that many
	// consecutive probe passes (the cluster-level half-open). Zero means 2.
	ReadmitProbes int
	// RespawnAfter triggers a drain/respawn of an ejected replica after
	// that many consecutive probe failures. Zero means 6.
	RespawnAfter int

	// StallTimeout declares a replica wedged when it has work pending but
	// its terminal counters have not moved for this long, triggering a
	// drain/respawn. Zero means 1s.
	StallTimeout time.Duration
	// RespawnDeadline bounds the drain phase of a respawn; past it the old
	// server is torn down regardless. Zero means 2s.
	RespawnDeadline time.Duration

	// Limiter is the cluster-level token-bucket admission front, enforced by
	// the HTTP handler before any replica sees the request (replica servers
	// should NOT carry their own limiter — failover resubmissions must not be
	// double-charged). Nil admits everything.
	Limiter *fair.Limiter
	// Classes resolves SLO class deadline defaults for SubmitOpts calls that
	// pass no deadline. Nil means fair.DefaultClasses. Replica servers should
	// be configured with the same set.
	Classes *fair.ClassSet
}

// handle is one generation of a replica's server. Respawn swaps a fresh
// handle in; in-flight forwarders keep their old generation's pointer so
// cost accounting and outcome attribution stay with the server that
// actually ran the request.
type handle struct {
	srv *serve.Server
	// cost is the outstanding queued-cost routed here: tokens accepted and
	// not yet answered. LeastLoaded routes by it.
	cost      atomic.Int64
	cleanupFn func()
	once      sync.Once
}

func newHandle(srv *serve.Server, cleanup func()) *handle {
	return &handle{srv: srv, cleanupFn: cleanup}
}

// cleanup runs the spawn's teardown hook exactly once.
func (h *handle) cleanup() {
	h.once.Do(func() {
		if h.cleanupFn != nil {
			h.cleanupFn()
		}
	})
}

// replica is one cluster member. All mutable fields are guarded by the
// cluster mutex; the handle's cost is atomic.
type replica struct {
	idx int

	h          *handle
	state      State
	respawning bool
	respawns   int64

	// Probe bookkeeping: at most one probe in flight per replica;
	// consecutive fail/pass streaks drive eject/readmit/respawn.
	probing     bool
	probeFails  int
	probePasses int

	// Sliding window of real-traffic outcomes (true = error) behind the
	// error-rate degrade.
	win      []bool
	winIdx   int
	winCount int
	winErrs  int

	// Stall detection: terminal counter sum at the last tick that made
	// progress, and since when it has been frozen with work pending.
	lastTerminal int64
	stallSince   time.Time
}

func (r *replica) resetWindowLocked() {
	r.winIdx, r.winCount, r.winErrs = 0, 0, 0
}

// Cluster is a running multi-replica serving front.
type Cluster struct {
	cfg Config

	mu       sync.Mutex
	replicas []*replica

	rr     atomic.Uint64 // round-robin cursor
	nextID atomic.Int64  // cluster-level request IDs

	stop        chan struct{}
	stopOnce    sync.Once
	started     atomic.Bool
	monitorDone chan struct{}
	// wg tracks forwarders, probes and respawners so teardown can wait for
	// every outstanding goroutine.
	wg sync.WaitGroup

	submitted, delivered                        atomic.Int64
	failovers, ejections, respawns, probeFails_ atomic.Int64
}

// New validates cfg, spawns and starts all replicas, and returns an
// unmonitored cluster: call Start to launch the health monitor.
func New(cfg Config) (*Cluster, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("cluster: Replicas=%d must be at least 1", cfg.Replicas)
	}
	if cfg.Spawn == nil {
		return nil, fmt.Errorf("cluster: Spawn is required")
	}
	if cfg.MaxLen <= 0 {
		cfg.MaxLen = 512
	}
	if cfg.MaxFailovers == 0 {
		cfg.MaxFailovers = 3
	}
	if cfg.MaxFailovers < 0 {
		cfg.MaxFailovers = 0
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 25 * time.Millisecond
	}
	if len(cfg.ProbeTokens) == 0 {
		cfg.ProbeTokens = []int{1, 2, 3}
	}
	if cfg.ProbeDeadline <= 0 {
		cfg.ProbeDeadline = 250 * time.Millisecond
	}
	if cfg.ErrWindow <= 0 {
		cfg.ErrWindow = 32
	}
	if cfg.DegradeErrRate <= 0 {
		cfg.DegradeErrRate = 0.5
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = 3
	}
	if cfg.ReadmitProbes <= 0 {
		cfg.ReadmitProbes = 2
	}
	if cfg.RespawnAfter <= 0 {
		cfg.RespawnAfter = 6
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = time.Second
	}
	if cfg.RespawnDeadline <= 0 {
		cfg.RespawnDeadline = 2 * time.Second
	}
	if cfg.Classes == nil {
		cfg.Classes = fair.DefaultClasses()
	}

	c := &Cluster{
		cfg:         cfg,
		stop:        make(chan struct{}),
		monitorDone: make(chan struct{}),
	}
	for i := 0; i < cfg.Replicas; i++ {
		srv, cleanup, err := cfg.Spawn(i)
		if err != nil {
			for _, r := range c.replicas {
				r.h.srv.Stop()
				r.h.cleanup()
			}
			return nil, fmt.Errorf("cluster: spawn replica %d: %w", i, err)
		}
		srv.Start()
		c.replicas = append(c.replicas, &replica{
			idx: i,
			h:   newHandle(srv, cleanup),
			win: make([]bool, cfg.ErrWindow),
		})
	}
	return c, nil
}

// Start launches the health monitor (state machine ticks, stall detection,
// synthetic probes, respawn triggers). Replica servers are already running
// from New; without Start the cluster still routes and fails over, but
// nothing degrades, ejects or respawns.
func (c *Cluster) Start() {
	if c.started.CompareAndSwap(false, true) {
		go c.monitor()
	}
}

// flight is one accepted submission moving through (possibly several)
// replica attempts until a terminal outcome. opt (tenant, SLO class) rides
// along so every failover attempt carries the same identity — a resubmitted
// request lands in the next replica's fair queue under its own tenant.
type flight struct {
	id       int64
	tokens   []int
	opt      serve.SubmitOptions
	queued   time.Time
	deadline time.Time
	out      chan serve.Response
	attempts int
	tried    map[int]bool
}

// Submit routes a request to a replica and returns a channel that delivers
// exactly one terminal outcome: a result, a deadline expiry, or an error
// after the failover budget is spent. A synchronous error means no replica
// accepted the request (it was never enqueued anywhere).
func (c *Cluster) Submit(tokens []int, deadline time.Duration) (<-chan serve.Response, error) {
	return c.SubmitOpts(tokens, deadline, serve.SubmitOptions{})
}

// SubmitOpts is Submit with tenant identity and an SLO class attached; both
// survive routing and failover.
func (c *Cluster) SubmitOpts(tokens []int, deadline time.Duration, opt serve.SubmitOptions) (<-chan serve.Response, error) {
	select {
	case <-c.stop:
		return nil, serve.ErrServerClosed
	default:
	}
	if deadline <= 0 && opt.Class != "" {
		// Resolve the class's deadline default here so the flight's own
		// failover deadline matches what the replica applies.
		deadline = c.cfg.Classes.Lookup(opt.Class).Deadline
	}
	r, h, ch, err := c.trySubmit(tokens, deadline, opt, nil)
	if err != nil {
		return nil, err
	}
	now := time.Now()
	f := &flight{
		id:       c.nextID.Add(1),
		tokens:   tokens,
		opt:      opt,
		queued:   now,
		deadline: now.Add(deadline),
		out:      make(chan serve.Response, 1),
		attempts: 1,
		tried:    make(map[int]bool, 2),
	}
	c.submitted.Add(1)
	c.wg.Add(1)
	go c.forward(f, r, h, ch)
	return f.out, nil
}

// trySubmit offers the request to replicas in routing order and returns the
// first acceptor. Replicas in tried are deprioritized (second pass only) so
// a failover lands somewhere new when anywhere new will take it. A
// non-retryable submit error (validation: empty or too long) returns
// immediately — no replica with the same config would accept it either.
func (c *Cluster) trySubmit(tokens []int, deadline time.Duration, opt serve.SubmitOptions, tried map[int]bool) (*replica, *handle, <-chan serve.Response, error) {
	cands := c.order(len(tokens))
	lastErr := error(ErrNoReplicas)
	for pass := 0; pass < 2; pass++ {
		for _, cand := range cands {
			if tried[cand.r.idx] != (pass == 1) {
				continue
			}
			ch, err := cand.h.srv.SubmitOpts(tokens, deadline, opt)
			if err == nil {
				cand.h.cost.Add(int64(len(tokens)))
				return cand.r, cand.h, ch, nil
			}
			if !retryableSubmit(err) {
				return nil, nil, nil, err
			}
			lastErr = err
		}
		if len(tried) == 0 {
			break
		}
	}
	return nil, nil, nil, lastErr
}

// retryableSubmit reports whether a Submit refusal is about the replica
// (try another) rather than the request (give up).
func retryableSubmit(err error) bool {
	return errors.Is(err, serve.ErrQueueFull) ||
		errors.Is(err, serve.ErrBreakerOpen) ||
		errors.Is(err, serve.ErrServerClosed)
}

// terminalOutcome reports whether a response ends the flight: success, the
// request's own deadline, or a validation error. Everything else — engine
// errors, panics, watchdog timeouts, shed, server closed — is the replica's
// fault and eligible for failover.
func terminalOutcome(err error) bool {
	if err == nil || errors.Is(err, serve.ErrDeadlineExceeded) {
		return true
	}
	var tl *serve.TooLongError
	return errors.As(err, &tl)
}

// forward proxies one replica attempt's response to the flight's caller,
// failing the attempt over to another replica while the deadline and the
// failover budget allow. Every path delivers exactly one response.
func (c *Cluster) forward(f *flight, r *replica, h *handle, ch <-chan serve.Response) {
	defer c.wg.Done()
	for {
		resp := <-ch
		h.cost.Add(-int64(len(f.tokens)))
		c.noteOutcome(r, h, resp.Err)
		if terminalOutcome(resp.Err) {
			c.deliver(f, resp)
			return
		}
		f.tried[r.idx] = true
		if time.Now().After(f.deadline) {
			// The replica's failure consumed the request's whole deadline:
			// the honest terminal outcome is an expiry, not a failover.
			c.deliver(f, serve.Response{Err: serve.ErrDeadlineExceeded, Queued: f.queued, Served: time.Now()})
			return
		}
		if f.attempts > c.cfg.MaxFailovers {
			c.deliver(f, resp)
			return
		}
		nr, nh, nch, err := c.trySubmit(f.tokens, time.Until(f.deadline), f.opt, f.tried)
		if err != nil {
			// Nowhere to fail over to; the engine error is the outcome.
			c.deliver(f, resp)
			return
		}
		f.attempts++
		c.failovers.Add(1)
		r, h, ch = nr, nh, nch
	}
}

func (c *Cluster) deliver(f *flight, resp serve.Response) {
	resp.ID = f.id
	f.out <- resp
	c.delivered.Add(1)
}

// noteOutcome records a real-traffic outcome in the replica's error window
// and degrades it when the windowed error rate crosses the threshold.
// Deadline expiries are the request's fault, not the replica's.
func (c *Cluster) noteOutcome(r *replica, h *handle, err error) {
	isErr := err != nil && !errors.Is(err, serve.ErrDeadlineExceeded)
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.h != h {
		return // outcome from a pre-respawn generation
	}
	if r.winCount == len(r.win) {
		if r.win[r.winIdx] {
			r.winErrs--
		}
	} else {
		r.winCount++
	}
	r.win[r.winIdx] = isErr
	if isErr {
		r.winErrs++
	}
	r.winIdx = (r.winIdx + 1) % len(r.win)
	if r.state == Healthy && r.winCount >= len(r.win)/2 &&
		float64(r.winErrs) >= c.cfg.DegradeErrRate*float64(r.winCount) {
		r.state = Degraded
		r.probeFails, r.probePasses = 0, 0
	}
}

// Drain stops the monitor, drains every replica (each under its own
// DrainTimeout), waits for all outstanding flights to deliver, and tears
// the cluster down. Idempotent, and safe to interleave with Stop.
func (c *Cluster) Drain() { c.teardown(true) }

// Stop tears the cluster down immediately: queued requests fail with
// ErrServerClosed, every replica is stopped and cleaned up, and all
// forwarder/probe/respawn goroutines are waited out.
func (c *Cluster) Stop() { c.teardown(false) }

func (c *Cluster) teardown(drain bool) {
	c.stopOnce.Do(func() { close(c.stop) })
	if c.started.Load() {
		<-c.monitorDone
	}
	// Two passes: the first drains/stops the handles visible now; a
	// respawner racing teardown may still swap a fresh handle in before it
	// observes the stop, so after the goroutine wait a second pass stops
	// any straggler. Both serve calls and cleanup are idempotent.
	for pass := 0; pass < 2; pass++ {
		c.mu.Lock()
		handles := make([]*handle, 0, len(c.replicas))
		for _, r := range c.replicas {
			handles = append(handles, r.h)
		}
		c.mu.Unlock()
		var wg sync.WaitGroup
		for _, h := range handles {
			wg.Add(1)
			go func(h *handle) {
				defer wg.Done()
				if drain && pass == 0 {
					h.srv.Drain()
				} else {
					h.srv.Stop()
				}
				h.cleanup()
			}(h)
		}
		wg.Wait()
		if pass == 0 {
			c.wg.Wait()
		}
	}
}

// Stats is a point-in-time snapshot of cluster counters and per-replica
// detail.
type Stats struct {
	Submitted int64 `json:"submitted"` // accepted submissions
	Delivered int64 `json:"delivered"` // terminal outcomes handed to callers

	Failovers     int64 `json:"failovers"`      // attempts resubmitted to another replica
	Ejections     int64 `json:"ejections"`      // degraded→ejected transitions
	Respawns      int64 `json:"respawns"`       // completed replica respawns
	ProbeFailures int64 `json:"probe_failures"` // failed synthetic probes

	// Kernels snapshots the process-wide GEMM dispatch counters exactly once
	// for the whole cluster. The per-replica serve.Stats rows each repeat
	// the same process totals (the counters are global, not per-server);
	// this field is the one to read.
	Kernels tensor.KernelCounts `json:"kernels"`

	// Prefix sums each replica's prefix-cache counters — the caches are
	// per-replica (a respawn starts cold), so the cluster view is additive.
	// HitRate is recomputed over the summed hit/miss totals. Zero when no
	// replica has a cache attached.
	Prefix        prefixcache.Stats `json:"prefix"`
	PrefixEnabled bool              `json:"prefix_enabled"`

	// Tenants sums each tenant's terminal outcomes across replicas, with
	// the cluster-level limiter's throttle counts folded in; JainGoodput is
	// Jain's index over the summed per-tenant deliveries.
	Tenants     map[string]serve.TenantStats `json:"tenants,omitempty"`
	JainGoodput float64                      `json:"jain_goodput"`

	Replicas []ReplicaStats `json:"replicas"`
}

// ReplicaStats is one member's row in Stats.
type ReplicaStats struct {
	Index      int          `json:"index"`
	State      string       `json:"state"` // healthy/degraded/ejected, or respawning
	Respawns   int64        `json:"respawns"`
	QueuedCost int64        `json:"queued_cost"`
	Health     serve.Health `json:"health"`
	Stats      serve.Stats  `json:"stats"`
}

// Stats returns a snapshot of cluster counters and per-replica state.
func (c *Cluster) Stats() Stats {
	st := Stats{
		Submitted:     c.submitted.Load(),
		Delivered:     c.delivered.Load(),
		Failovers:     c.failovers.Load(),
		Ejections:     c.ejections.Load(),
		Respawns:      c.respawns.Load(),
		ProbeFailures: c.probeFails_.Load(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.replicas {
		state := r.state.String()
		if r.respawning {
			state = "respawning"
		}
		st.Replicas = append(st.Replicas, ReplicaStats{
			Index:      r.idx,
			State:      state,
			Respawns:   r.respawns,
			QueuedCost: r.h.cost.Load(),
			Health:     r.h.srv.Health(),
			Stats:      r.h.srv.Stats(),
		})
	}
	st.Tenants, st.JainGoodput = c.tenantTotals(st.Replicas)
	st.Kernels = tensor.KernelCounters()
	st.Prefix, st.PrefixEnabled = prefixTotals(st.Replicas)
	return st
}

// prefixTotals sums per-replica prefix-cache counters and recomputes the
// aggregate hit rate.
func prefixTotals(rows []ReplicaStats) (prefixcache.Stats, bool) {
	var agg prefixcache.Stats
	enabled := false
	for _, row := range rows {
		if !row.Stats.PrefixEnabled {
			continue
		}
		enabled = true
		p := row.Stats.Prefix
		agg.Hits += p.Hits
		agg.Misses += p.Misses
		agg.Inserts += p.Inserts
		agg.Evictions += p.Evictions
		agg.Rejected += p.Rejected
		agg.TokensSaved += p.TokensSaved
		agg.ResidentBytes += p.ResidentBytes
		agg.Entries += p.Entries
	}
	if total := agg.Hits + agg.Misses; total > 0 {
		agg.HitRate = float64(agg.Hits) / float64(total)
	}
	return agg, enabled
}

// tenantTotals sums per-tenant outcomes across replica rows and folds in
// the cluster limiter's throttles. Per-replica Throttled is ignored —
// replicas carry no limiter of their own; admission control happens once,
// at this front.
func (c *Cluster) tenantTotals(rows []ReplicaStats) (map[string]serve.TenantStats, float64) {
	lim := c.cfg.Limiter.Counts()
	total := make(map[string]serve.TenantStats)
	for _, row := range rows {
		for name, t := range row.Stats.Tenants {
			agg := total[name]
			agg.Admitted += t.Admitted
			agg.Delivered += t.Delivered
			agg.Missed += t.Missed
			agg.Failed += t.Failed
			agg.Shed += t.Shed
			total[name] = agg
		}
	}
	for name, cnt := range lim {
		agg := total[name]
		agg.Throttled = cnt.Throttled
		total[name] = agg
	}
	if len(total) == 0 {
		return nil, 1
	}
	goodput := make(map[string]int64, len(total))
	for name, t := range total {
		goodput[name] = t.Delivered
	}
	return total, fair.JainIndexMap(goodput)
}

// Health summarizes cluster serviceability for GET /healthz.
type Health struct {
	// Serviceable reports whether at least one replica is fully
	// serviceable (running, breaker not open). A false cluster may still
	// accept traffic through degraded/ejected replicas — under their own
	// shedding — but an external balancer should rotate it out.
	Serviceable bool            `json:"serviceable"`
	Healthy     int             `json:"healthy"`
	Degraded    int             `json:"degraded"`
	Ejected     int             `json:"ejected"`
	Respawning  int             `json:"respawning"`
	Replicas    []ReplicaHealth `json:"replicas"`
}

// ReplicaHealth is one member's row in Health.
type ReplicaHealth struct {
	Index      int          `json:"index"`
	State      string       `json:"state"`
	Respawning bool         `json:"respawning"`
	Health     serve.Health `json:"health"`
}

// Health returns the cluster's current serviceability.
func (c *Cluster) Health() Health {
	var h Health
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.replicas {
		rh := ReplicaHealth{Index: r.idx, State: r.state.String(), Respawning: r.respawning}
		rh.Health = r.h.srv.Health()
		if r.respawning {
			h.Respawning++
		} else {
			switch r.state {
			case Healthy:
				h.Healthy++
			case Degraded:
				h.Degraded++
			default:
				h.Ejected++
			}
			if r.state == Healthy && rh.Health.Serviceable {
				h.Serviceable = true
			}
		}
		h.Replicas = append(h.Replicas, rh)
	}
	return h
}
