package train

import (
	"fmt"
	"math"

	"tcb/internal/model"
	"tcb/internal/tensor"
)

// Caches hold the intermediates the backward pass needs. Training always
// runs single sequences (one segment per row, dense attention): the
// ConcatBatching machinery is an inference-time optimization and the
// equivalence tests guarantee a model trained here serves identically
// under concatenation.

type linCache struct {
	x *tensor.Matrix // layer input
}

type lnCache struct {
	xhat   *tensor.Matrix // normalized pre-gain activations
	invStd []float32      // per row
}

type attnCache struct {
	xq, xkv        *tensor.Matrix // attention inputs
	q, k, v        *tensor.Matrix // projected, full width
	probs          []*tensor.Matrix
	concat         *tensor.Matrix // pre-WO head concat
	qc, kc, vc, oc linCache
}

type reluCache struct {
	pre *tensor.Matrix // pre-activation
}

type encLayerCache struct {
	attn   attnCache
	norm1  lnCache
	ffnIn  linCache
	relu   reluCache
	ffnOut linCache
	norm2  lnCache
}

type decLayerCache struct {
	self   attnCache
	norm1  lnCache
	cross  attnCache
	norm2  lnCache
	ffnIn  linCache
	relu   reluCache
	ffnOut linCache
	norm3  lnCache
}

// linForward computes y = xW + b, caching x.
func linForward(l *model.Linear, x *tensor.Matrix, c *linCache) *tensor.Matrix {
	c.x = x
	return l.Apply(x)
}

// lnForward normalizes x (returning a new matrix) and caches x̂ and 1/σ.
func lnForward(l *model.LayerNorm, x *tensor.Matrix, c *lnCache) *tensor.Matrix {
	n := x.Cols
	out := tensor.New(x.Rows, n)
	c.xhat = tensor.New(x.Rows, n)
	c.invStd = make([]float32, x.Rows)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var mean float32
		for _, v := range row {
			mean += v
		}
		mean /= float32(n)
		var variance float32
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float32(n)
		inv := 1 / float32(math.Sqrt(float64(variance+l.Eps)))
		c.invStd[i] = inv
		xh := c.xhat.Row(i)
		o := out.Row(i)
		for j, v := range row {
			xh[j] = (v - mean) * inv
			o[j] = xh[j]*l.Gain[j] + l.Bias[j]
		}
	}
	return out
}

// attnForward runs multi-head attention with an optional additive mask,
// caching everything backward needs.
func attnForward(w *model.AttentionWeights, heads int, xq, xkv *tensor.Matrix, mask *tensor.Matrix, c *attnCache) *tensor.Matrix {
	d := w.WQ.W.Cols
	dh := d / heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	c.xq, c.xkv = xq, xkv
	c.q = linForward(w.WQ, xq, &c.qc)
	c.k = linForward(w.WK, xkv, &c.kc)
	c.v = linForward(w.WV, xkv, &c.vc)
	c.concat = tensor.New(xq.Rows, d)
	c.probs = make([]*tensor.Matrix, heads)
	for h := 0; h < heads; h++ {
		c0 := h * dh
		qh := cols(c.q, c0, c0+dh)
		kh := cols(c.k, c0, c0+dh)
		vh := cols(c.v, c0, c0+dh)
		scores := tensor.MatMulT(qh, kh)
		tensor.Scale(scores, scale)
		if mask != nil {
			tensor.AddInPlace(scores, mask)
		}
		tensor.SoftmaxRows(scores)
		c.probs[h] = scores
		out := tensor.MatMul(scores, vh)
		setCols(c.concat, out, c0)
	}
	return linForward(w.WO, c.concat, &c.oc)
}

// reluForward caches the pre-activation and applies ReLU out of place.
func reluForward(x *tensor.Matrix, c *reluCache) *tensor.Matrix {
	c.pre = x
	out := x.Clone()
	tensor.ReLU(out)
	return out
}

// cols copies columns [c0, c1) of m.
func cols(m *tensor.Matrix, c0, c1 int) *tensor.Matrix {
	out := tensor.New(m.Rows, c1-c0)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[c0:c1])
	}
	return out
}

// setCols writes src into columns starting at c0 of dst.
func setCols(dst, src *tensor.Matrix, c0 int) {
	for i := 0; i < src.Rows; i++ {
		copy(dst.Row(i)[c0:c0+src.Cols], src.Row(i))
	}
}

// addCols accumulates src into columns starting at c0 of dst.
func addCols(dst, src *tensor.Matrix, c0 int) {
	for i := 0; i < src.Rows; i++ {
		d := dst.Row(i)[c0 : c0+src.Cols]
		for j, v := range src.Row(i) {
			d[j] += v
		}
	}
}

// causalMask returns the lower-triangular additive mask for n positions.
func causalMask(n int) *tensor.Matrix {
	m := tensor.New(n, n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := i + 1; j < n; j++ {
			row[j] = tensor.NegInf
		}
	}
	return m
}

// embedForward looks up embeddings and adds positional encoding.
func embedForward(p *model.Params, ids []int) (*tensor.Matrix, error) {
	for _, id := range ids {
		if id < 0 || id >= p.Embedding.Rows {
			return nil, fmt.Errorf("train: token %d out of vocabulary", id)
		}
	}
	if len(ids) > p.PosEnc.Rows {
		return nil, fmt.Errorf("train: sequence of %d exceeds MaxLen %d", len(ids), p.PosEnc.Rows)
	}
	x := p.Embed(ids)
	for i := range ids {
		row := x.Row(i)
		pe := p.PosEnc.Row(i)
		for j := range row {
			row[j] += pe[j]
		}
	}
	return x, nil
}

// forwardCaches bundles one example's full forward tape.
type forwardCaches struct {
	srcIDs, decIn []int
	encX          []*tensor.Matrix // input to each encoder layer
	encLayers     []encLayerCache
	encOut        *tensor.Matrix
	decX          []*tensor.Matrix // input to each decoder layer
	decLayers     []decLayerCache
	decOut        *tensor.Matrix
	outCache      linCache
	logits        *tensor.Matrix
}

// forward runs the full teacher-forced pass: encode src, decode decIn.
func forward(m *model.Model, src, decIn []int) (*forwardCaches, error) {
	fc := &forwardCaches{srcIDs: src, decIn: decIn}
	x, err := embedForward(m.P, src)
	if err != nil {
		return nil, err
	}
	heads := m.Cfg.NumHeads
	fc.encLayers = make([]encLayerCache, len(m.P.Encoder))
	for li, layer := range m.P.Encoder {
		fc.encX = append(fc.encX, x)
		c := &fc.encLayers[li]
		attn := attnForward(layer.SelfAttn, heads, x, x, nil, &c.attn)
		x = lnForward(layer.Norm1, tensor.Add(x, attn), &c.norm1)
		h := linForward(layer.FFN.In, x, &c.ffnIn)
		h = reluForward(h, &c.relu)
		ff := linForward(layer.FFN.Out, h, &c.ffnOut)
		x = lnForward(layer.Norm2, tensor.Add(fcLNInput(c), ff), &c.norm2)
	}
	fc.encOut = x

	y, err := embedForward(m.P, decIn)
	if err != nil {
		return nil, err
	}
	mask := causalMask(len(decIn))
	fc.decLayers = make([]decLayerCache, len(m.P.Decoder))
	for li, layer := range m.P.Decoder {
		fc.decX = append(fc.decX, y)
		c := &fc.decLayers[li]
		attn := attnForward(layer.SelfAttn, heads, y, y, mask, &c.self)
		y = lnForward(layer.Norm1, tensor.Add(y, attn), &c.norm1)
		cross := attnForward(layer.CrossAttn, heads, y, fc.encOut, nil, &c.cross)
		y = lnForward(layer.Norm2, tensor.Add(dcNorm1Out(c), cross), &c.norm2)
		h := linForward(layer.FFN.In, y, &c.ffnIn)
		h = reluForward(h, &c.relu)
		ff := linForward(layer.FFN.Out, h, &c.ffnOut)
		y = lnForward(layer.Norm3, tensor.Add(dcNorm2Out(c), ff), &c.norm3)
	}
	fc.decOut = y
	fc.logits = linForward(m.P.OutProj, y, &fc.outCache)
	return fc, nil
}

// fcLNInput returns the encoder layer's post-Norm1 activations, which are
// also the FFN block's residual input (cached as the FFN-In linear input).
func fcLNInput(c *encLayerCache) *tensor.Matrix { return c.ffnIn.x }

// dcNorm1Out returns the decoder layer's post-Norm1 activations (the cross
// attention's query input).
func dcNorm1Out(c *decLayerCache) *tensor.Matrix { return c.cross.xq }

// dcNorm2Out returns the decoder layer's post-Norm2 activations (the FFN
// block's input).
func dcNorm2Out(c *decLayerCache) *tensor.Matrix { return c.ffnIn.x }
