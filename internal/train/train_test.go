package train

import (
	"math"
	"testing"

	"tcb/internal/model"
	"tcb/internal/rng"
	"tcb/internal/vocab"
)

func tinyModel() *model.Model {
	cfg := model.Config{
		VocabSize: 12, DModel: 8, NumHeads: 2, DFF: 16,
		EncLayers: 1, DecLayers: 1, MaxLen: 16, Eps: 1e-5,
	}
	return model.New(cfg, 99)
}

func tinyExample() Example {
	return Example{
		Src: []int{vocab.FirstWordID, vocab.FirstWordID + 2, vocab.FirstWordID + 1},
		Tgt: []int{vocab.FirstWordID + 1, vocab.FirstWordID + 3},
	}
}

// The gold-standard check: every analytic gradient matches the central
// numerical difference of the loss, across a sample of parameters from
// every weight group.
func TestGradCheck(t *testing.T) {
	m := tinyModel()
	ex := tinyExample()
	g := NewGrads(m.P)
	if _, err := Backprop(m, ex, g); err != nil {
		t.Fatal(err)
	}
	const h = 5e-3
	checked, failures := 0, 0
	var worst float64
	visit(m.P, g, func(w, gr []float32) {
		// Probe a few indices per group.
		idxs := []int{0, len(w) / 2, len(w) - 1}
		for _, i := range idxs {
			if i < 0 || i >= len(w) {
				continue
			}
			orig := w[i]
			w[i] = orig + h
			lp, err := Loss(m, ex)
			if err != nil {
				t.Fatal(err)
			}
			w[i] = orig - h
			lm, err := Loss(m, ex)
			if err != nil {
				t.Fatal(err)
			}
			w[i] = orig
			numeric := (lp - lm) / (2 * h)
			analytic := float64(gr[i])
			diff := math.Abs(numeric - analytic)
			// Central differences of a float32 loss carry ~|L|·eps/(2h) ≈
			// 3e-5 of absolute rounding noise; for near-zero gradients the
			// relative test would compare noise, not gradients.
			if diff < 1e-4 {
				checked++
				continue
			}
			rel := diff / (math.Abs(numeric) + math.Abs(analytic) + 1e-4)
			if rel > worst {
				worst = rel
			}
			checked++
			if rel > 0.08 {
				failures++
				t.Logf("grad mismatch: analytic %g vs numeric %g (rel %g)", analytic, numeric, rel)
			}
		}
	})
	if checked < 50 {
		t.Fatalf("only %d parameters probed", checked)
	}
	if failures > 0 {
		t.Fatalf("%d/%d gradient checks failed (worst rel %g)", failures, checked, worst)
	}
	t.Logf("%d gradients verified, worst relative error %g", checked, worst)
}

// Training forward must agree with the inference engine's encoder.
func TestForwardMatchesInferenceEncoder(t *testing.T) {
	m := tinyModel()
	ex := tinyExample()
	fc, err := forward(m, ex.Src, []int{vocab.BosID})
	if err != nil {
		t.Fatal(err)
	}
	layout := model.SingleSegment(len(ex.Src), len(ex.Src))
	want := m.EncodeRow(ex.Src, layout, nil, model.AttDense, true)
	if !fc.encOut.AllClose(want, 1e-4) {
		t.Fatalf("training encoder diverges from inference encoder by %g",
			fc.encOut.MaxAbsDiff(want))
	}
}

func TestBackpropValidation(t *testing.T) {
	m := tinyModel()
	g := NewGrads(m.P)
	if _, err := Backprop(m, Example{}, g); err == nil {
		t.Fatal("empty example should fail")
	}
	if _, err := Backprop(m, Example{Src: []int{999}, Tgt: []int{5}}, g); err == nil {
		t.Fatal("out-of-vocab token should fail")
	}
	long := make([]int, 99)
	for i := range long {
		long[i] = vocab.FirstWordID
	}
	if _, err := Backprop(m, Example{Src: long, Tgt: []int{5}}, g); err == nil {
		t.Fatal("overlong example should fail")
	}
}

func TestGradsZero(t *testing.T) {
	m := tinyModel()
	g := NewGrads(m.P)
	if _, err := Backprop(m, tinyExample(), g); err != nil {
		t.Fatal(err)
	}
	nonzero := false
	visit(m.P, g, func(w, gr []float32) {
		for _, v := range gr {
			if v != 0 {
				nonzero = true
			}
		}
	})
	if !nonzero {
		t.Fatal("backprop produced all-zero gradients")
	}
	g.Zero()
	visit(m.P, g, func(w, gr []float32) {
		for _, v := range gr {
			if v != 0 {
				t.Fatal("Zero left residue")
			}
		}
	})
}

// copyTask builds a tiny copy corpus: target == source.
func copyTask(n, maxLen, vocabSize int, seed uint64) []Example {
	src := rng.New(seed)
	out := make([]Example, n)
	for i := range out {
		l := src.IntRange(2, maxLen)
		seq := make([]int, l)
		for j := range seq {
			seq[j] = src.IntRange(vocab.FirstWordID, vocabSize-1)
		}
		out[i] = Example{Src: seq, Tgt: seq}
	}
	return out
}

func TestFitReducesLoss(t *testing.T) {
	cfg := model.Config{
		VocabSize: 16, DModel: 16, NumHeads: 2, DFF: 32,
		EncLayers: 1, DecLayers: 1, MaxLen: 16, Eps: 1e-5,
	}
	m := model.New(cfg, 7)
	examples := copyTask(32, 5, cfg.VocabSize, 3)
	losses, err := Fit(m, examples, Config{Steps: 60, BatchSize: 8, LR: 3e-3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	first := (losses[0] + losses[1] + losses[2]) / 3
	last := (losses[len(losses)-1] + losses[len(losses)-2] + losses[len(losses)-3]) / 3
	if last >= first*0.7 {
		t.Fatalf("loss did not drop: %v -> %v", first, last)
	}
}

func TestFitValidation(t *testing.T) {
	m := tinyModel()
	if _, err := Fit(m, nil, Config{Steps: 1, BatchSize: 1, LR: 1e-3}); err == nil {
		t.Fatal("no examples should fail")
	}
	if _, err := Fit(m, []Example{tinyExample()}, Config{}); err == nil {
		t.Fatal("zero config should fail")
	}
}

// A trained model must still satisfy the ConcatBatching equivalence — the
// whole point of training on real weights.
func TestTrainedModelConcatEquivalence(t *testing.T) {
	cfg := model.Config{
		VocabSize: 16, DModel: 16, NumHeads: 2, DFF: 32,
		EncLayers: 1, DecLayers: 1, MaxLen: 32, Eps: 1e-5,
	}
	m := model.New(cfg, 8)
	examples := copyTask(16, 4, cfg.VocabSize, 5)
	if _, err := Fit(m, examples, Config{Steps: 20, BatchSize: 4, LR: 3e-3, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	reqA := []int{vocab.FirstWordID + 1, vocab.FirstWordID + 2, vocab.FirstWordID + 3}
	reqB := []int{vocab.FirstWordID + 4, vocab.FirstWordID + 5}
	total := len(reqA) + len(reqB)
	row := append(append([]int{}, reqA...), reqB...)
	layout := model.ConcatLayout([]int{len(reqA), len(reqB)}, total)
	enc := m.EncodeRow(row, layout, nil, model.AttDense, true)
	batched := m.GenerateRow(enc, layout, nil, 4, model.AttDense)

	soloLayout := model.SingleSegment(len(reqA), len(reqA))
	soloEnc := m.EncodeRow(reqA, soloLayout, nil, model.AttDense, true)
	solo := m.GenerateRow(soloEnc, soloLayout, nil, 4, model.AttDense)
	if len(batched[0].Tokens) != len(solo[0].Tokens) {
		t.Fatalf("trained model broke equivalence: %v vs %v", batched[0].Tokens, solo[0].Tokens)
	}
	for i := range solo[0].Tokens {
		if batched[0].Tokens[i] != solo[0].Tokens[i] {
			t.Fatalf("token %d differs on trained model", i)
		}
	}
}
