package train

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"tcb/internal/model"
	"tcb/internal/rng"
	"tcb/internal/tensor"
	"tcb/internal/vocab"
)

// Example is one supervised pair: source token ids and target token ids
// (reserved ids excluded; BOS/EOS are added internally).
type Example struct {
	Src, Tgt []int
}

// Backprop runs one teacher-forced forward/backward pass, accumulating
// gradients of the mean-per-token cross-entropy into g, and returns the
// loss. Call g.Zero() between optimizer steps, not between examples —
// accumulation across examples implements minibatching.
func Backprop(m *model.Model, ex Example, g *Grads) (float64, error) {
	if len(ex.Src) == 0 || len(ex.Tgt) == 0 {
		return 0, fmt.Errorf("train: empty example")
	}
	decIn := append([]int{vocab.BosID}, ex.Tgt...)
	target := append(append([]int{}, ex.Tgt...), vocab.EosID)
	fc, err := forward(m, ex.Src, decIn)
	if err != nil {
		return 0, err
	}
	loss, dLogits := crossEntropy(fc.logits, target)
	backward(m, fc, g, dLogits)
	return loss, nil
}

// Loss computes the teacher-forced loss without touching gradients.
func Loss(m *model.Model, ex Example) (float64, error) {
	decIn := append([]int{vocab.BosID}, ex.Tgt...)
	target := append(append([]int{}, ex.Tgt...), vocab.EosID)
	fc, err := forward(m, ex.Src, decIn)
	if err != nil {
		return 0, err
	}
	loss, _ := crossEntropy(fc.logits, target)
	return loss, nil
}

// crossEntropy returns the mean −log p(target) over positions plus the
// gradient w.r.t. the logits.
func crossEntropy(logits *tensor.Matrix, target []int) (float64, *tensor.Matrix) {
	t := len(target)
	dL := tensor.New(logits.Rows, logits.Cols)
	var loss float64
	for i := 0; i < t; i++ {
		row := logits.Row(i)
		maxv := float32(math.Inf(-1))
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logZ := math.Log(sum) + float64(maxv)
		loss += logZ - float64(row[target[i]])
		dRow := dL.Row(i)
		inv := 1 / float32(t)
		for j, v := range row {
			p := float32(math.Exp(float64(v) - logZ))
			dRow[j] = p * inv
		}
		dRow[target[i]] -= inv
	}
	return loss / float64(t), dL
}

// Adam is the Adam optimizer over a model's parameters.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  *Grads
}

// NewAdam returns Adam with standard defaults (β₁=0.9, β₂=0.999).
func NewAdam(p *model.Params, lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: NewGrads(p), v: NewGrads(p),
	}
}

// Step applies one Adam update from the accumulated gradients.
func (a *Adam) Step(p *model.Params, g *Grads) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	// Walk the three mirrors in lockstep: weights+grads, then moments.
	var mFlat, vFlat [][]float32
	visit(p, a.m, func(w, mo []float32) { mFlat = append(mFlat, mo) })
	visit(p, a.v, func(w, vo []float32) { vFlat = append(vFlat, vo) })
	idx := 0
	visit(p, g, func(w, gr []float32) {
		mo, vo := mFlat[idx], vFlat[idx]
		for i := range w {
			gi := float64(gr[i])
			mi := a.Beta1*float64(mo[i]) + (1-a.Beta1)*gi
			vi := a.Beta2*float64(vo[i]) + (1-a.Beta2)*gi*gi
			mo[i] = float32(mi)
			vo[i] = float32(vi)
			w[i] -= float32(a.LR * (mi / c1) / (math.Sqrt(vi/c2) + a.Eps))
		}
		idx++
	})
}

// Config drives the Fit loop.
type Config struct {
	Steps     int     // optimizer steps
	BatchSize int     // examples per step
	LR        float64 // Adam learning rate
	Seed      uint64  // shuffling seed
	// Progress, if non-nil, receives (step, loss) every step.
	Progress func(step int, loss float64)
}

// Fit trains m on the examples and returns the final per-step losses.
func Fit(m *model.Model, examples []Example, cfg Config) ([]float64, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("train: no examples")
	}
	if cfg.Steps <= 0 || cfg.BatchSize <= 0 || cfg.LR <= 0 {
		return nil, fmt.Errorf("train: invalid config %+v", cfg)
	}
	opt := NewAdam(m.P, cfg.LR)
	src := rng.New(cfg.Seed)

	// Minibatch examples run on parallel workers, each with a private
	// gradient accumulator, reduced before the optimizer step. Results are
	// bit-stable across worker counts up to float32 reduction order; the
	// example *selection* is fixed before dispatch so it never depends on
	// scheduling.
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.BatchSize {
		workers = cfg.BatchSize
	}
	if workers < 1 {
		workers = 1
	}
	workerGrads := make([]*Grads, workers)
	for i := range workerGrads {
		workerGrads[i] = NewGrads(m.P)
	}
	g := NewGrads(m.P)

	losses := make([]float64, 0, cfg.Steps)
	for step := 0; step < cfg.Steps; step++ {
		picked := make([]Example, cfg.BatchSize)
		for b := range picked {
			picked[b] = examples[src.Intn(len(examples))]
		}
		var wg sync.WaitGroup
		lossParts := make([]float64, workers)
		errParts := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				workerGrads[w].Zero()
				for b := w; b < len(picked); b += workers {
					loss, err := Backprop(m, picked[b], workerGrads[w])
					if err != nil {
						errParts[w] = err
						return
					}
					lossParts[w] += loss
				}
			}(w)
		}
		wg.Wait()
		var total float64
		for w := 0; w < workers; w++ {
			if errParts[w] != nil {
				return nil, errParts[w]
			}
			total += lossParts[w]
		}
		// Reduce worker gradients into g, averaging over the minibatch.
		g.Zero()
		for w := 0; w < workers; w++ {
			idx := 0
			var flats [][]float32
			visit(m.P, workerGrads[w], func(_, gr []float32) { flats = append(flats, gr) })
			visit(m.P, g, func(_, gr []float32) {
				for i := range gr {
					gr[i] += flats[idx][i] / float32(cfg.BatchSize)
				}
				idx++
			})
		}
		opt.Step(m.P, g)
		loss := total / float64(cfg.BatchSize)
		losses = append(losses, loss)
		if cfg.Progress != nil {
			cfg.Progress(step, loss)
		}
	}
	return losses, nil
}
